// Command cluster_sweep runs a Figure 2/3-shaped cluster sweep through the
// model-only executor and writes a schema-versioned SWEEP_PR<N>.json
// artifact: the universal algorithm autotuned and replayed over a grid of
// H100 fat-tree clusters (node counts × rail counts × oversubscription,
// with a degraded-rail column), at full MLP scale, with no real arithmetic
// and no tile allocation.
//
//	go run ./cmd/cluster_sweep -pr 10             # writes SWEEP_PR10.json
//	go run ./cmd/cluster_sweep -nodes 2,8 -rails 8 -oversub 1 -degrade 1
//	go run ./cmd/cluster_sweep -crashes 0,1,8     # adds the availability axis
//	go run ./cmd/cluster_sweep -validate SWEEP_PR10.json
//	go run ./cmd/cluster_sweep -plot SWEEP_PR10_AVAIL.json
//
// The sweep is deterministic: the same flags always produce byte-identical
// artifacts (CI diffs two runs), unless -stamp adds a generation
// timestamp. -plancache warm-starts plan compilation from a plan-cache
// file (see internal/serve's PlanCacheFile) and saves what the sweep
// compiled back to it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"slicing/internal/bench"
	"slicing/internal/sweep"
	"slicing/internal/trace"
	"slicing/internal/universal"
)

func ints(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func floats(csv string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(csv, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cluster_sweep:", err)
	os.Exit(1)
}

func main() {
	pr := flag.Int("pr", 10, "PR number for the default output name")
	out := flag.String("out", "", "output path (default SWEEP_PR<pr>.json)")
	layer := flag.String("layer", "mlp1", "MLP layer to sweep: mlp1 or mlp2")
	batch := flag.Int("batch", 0, "global batch size (0: the largest paper batch)")
	nodes := flag.String("nodes", "", "comma-separated node counts (default 2,8,32,128)")
	rails := flag.String("rails", "", "comma-separated rail counts (default 1,4,8)")
	oversub := flag.String("oversub", "", "comma-separated oversubscription ratios (default 1,2)")
	degrade := flag.String("degrade", "", "comma-separated degrade factors (default 1,0.5)")
	crashes := flag.String("crashes", "", "comma-separated crashed-rank counts for the availability axis (default none)")
	seed := flag.Int64("seed", 0, "identity seed recorded in the artifact")
	stamp := flag.Bool("stamp", false, "record the generation time (breaks byte-determinism)")
	planCache := flag.String("plancache", "", "plan-cache file to warm-start from and save back to")
	validate := flag.String("validate", "", "validate an existing artifact file and exit")
	plot := flag.String("plot", "", "render an existing artifact's curves as ASCII and exit")
	flag.Parse()

	if *validate != "" {
		art, err := sweep.ReadFile(*validate)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s: valid %s artifact, %d points\n", *validate, art.Schema, len(art.Points))
		return
	}
	if *plot != "" {
		art, err := sweep.ReadFile(*plot)
		if err != nil {
			fail(err)
		}
		trace.WriteSweepPlot(os.Stdout, art)
		return
	}

	spec := sweep.Spec{
		Name:  fmt.Sprintf("cluster-sweep-pr%d", *pr),
		Batch: *batch,
		Seed:  *seed,
	}
	switch strings.ToLower(*layer) {
	case "mlp1":
		spec.Layer = bench.MLP1
	case "mlp2":
		spec.Layer = bench.MLP2
	default:
		fail(fmt.Errorf("unknown layer %q (want mlp1 or mlp2)", *layer))
	}
	var err error
	if *nodes != "" {
		if spec.NodeCounts, err = ints(*nodes); err != nil {
			fail(fmt.Errorf("-nodes: %w", err))
		}
	}
	if *rails != "" {
		if spec.RailCounts, err = ints(*rails); err != nil {
			fail(fmt.Errorf("-rails: %w", err))
		}
	}
	if *oversub != "" {
		if spec.Oversubs, err = floats(*oversub); err != nil {
			fail(fmt.Errorf("-oversub: %w", err))
		}
	}
	if *degrade != "" {
		if spec.DegradeFactors, err = floats(*degrade); err != nil {
			fail(fmt.Errorf("-degrade: %w", err))
		}
	}
	if *crashes != "" {
		if spec.CrashCounts, err = ints(*crashes); err != nil {
			fail(fmt.Errorf("-crashes: %w", err))
		}
	}

	cache := universal.NewPlanCache(256)
	if *planCache != "" {
		n, err := cache.LoadFile(*planCache)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "warm-started %d plans from %s\n", n, *planCache)
	}

	points := spec.Points()
	fmt.Fprintf(os.Stderr, "sweeping %d cluster points (%s, batch %d)...\n",
		len(points), spec.Layer, specBatch(spec))
	start := time.Now()
	art, err := sweep.Run(spec, cache)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "swept %d points in %v (%d plan builds)\n",
		len(art.Points), time.Since(start).Round(time.Millisecond), art.PlanBuilds)
	if *stamp {
		art.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	}

	path := *out
	if path == "" {
		path = fmt.Sprintf("SWEEP_PR%d.json", *pr)
	}
	if err := art.WriteFile(path); err != nil {
		fail(err)
	}
	if *planCache != "" {
		if err := cache.SaveFile(*planCache); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "saved %d plans to %s\n", cache.Len(), *planCache)
	}

	trace.WriteSweepTable(os.Stdout, art)
	fmt.Printf("\nwrote %s\n", path)
}

// specBatch mirrors the spec's default so the progress line matches what
// Run will actually sweep.
func specBatch(s sweep.Spec) int {
	if s.Batch != 0 {
		return s.Batch
	}
	return bench.Batches[len(bench.Batches)-1]
}
