// Command plot_mlp is the analogue of the paper artifact's plot_mlp1.py /
// plot_mlp2.py (task T4): it regenerates the requested figure's data and
// renders an ASCII approximation of the percent-of-peak-versus-batch-size
// plot from Figures 2-3, with one marker per series and the legend below.
//
//	plot_mlp -system pvc  -layer mlp1
//	plot_mlp -system h100 -layer mlp2 -height 30
package main

import (
	"flag"
	"fmt"
	"os"

	"slicing/internal/bench"
	"slicing/internal/trace"
	"slicing/internal/universal"
)

func main() {
	var (
		sysID  = flag.String("system", "pvc", "pvc | h100")
		layer  = flag.String("layer", "mlp1", "mlp1 | mlp2")
		height = flag.Int("height", 24, "chart height in rows")
		quick  = flag.Bool("quick", false, "restrict the sweep (fewer batches and factors)")
	)
	flag.Parse()

	var sys universal.SimSystem
	withCOSMA := false
	switch *sysID {
	case "pvc":
		sys = universal.PVCSystem()
	case "h100":
		sys = universal.H100System()
		withCOSMA = true
	default:
		fmt.Fprintf(os.Stderr, "plot_mlp: unknown system %q\n", *sysID)
		os.Exit(2)
	}
	var l bench.Layer
	switch *layer {
	case "mlp1":
		l = bench.MLP1
	case "mlp2":
		l = bench.MLP2
	default:
		fmt.Fprintf(os.Stderr, "plot_mlp: unknown layer %q\n", *layer)
		os.Exit(2)
	}

	opt := bench.Options{}
	if *quick {
		opt.Replications = []int{1, 2, 4}
		opt.Batches = []int{1024, 8192}
	}
	fig := bench.RunFigure(sys, l, withCOSMA, opt)
	trace.WriteFigureChart(os.Stdout, fig, *height)
}
