// Command verify_conformance runs the universal algorithm's correctness
// matrix end to end with real arithmetic: every partitioning triple from
// the standard vocabulary (row, column, 2D block, cyclic, misaligned
// custom) × replication factors × stationary strategies × fetch modes,
// each verified against a serial reference GEMM. It is the library's
// self-check artifact: run it after any change to the slicing or execution
// layers.
//
//	verify_conformance             # standard sweep (~hundreds of configs)
//	verify_conformance -quick      # reduced sweep
package main

import (
	"flag"
	"fmt"
	"os"

	"slicing/internal/distmat"
	rt "slicing/internal/runtime"
	"slicing/internal/shmem"
	"slicing/internal/tile"
	"slicing/internal/universal"
)

func main() {
	quick := flag.Bool("quick", false, "reduced sweep")
	flag.Parse()

	const p, m, n, k = 4, 33, 29, 37
	// The custom descriptor's process grid must match the slot count,
	// which depends on the replication factor.
	parts := func(name string, slots int) distmat.Partition {
		pr, pc := distmat.NearSquareFactors(slots)
		switch name {
		case "row":
			return distmat.RowBlock{}
		case "col":
			return distmat.ColBlock{}
		case "block":
			return distmat.Block2D{}
		case "cyclic":
			return distmat.RowCyclic{BlockRows: 3}
		default:
			return distmat.Custom{TileRows: 7, TileCols: 11, ProcRows: pr, ProcCols: pc}
		}
	}
	partNames := []string{"row", "col", "block", "cyclic", "custom"}
	stats := []universal.Stationary{universal.StationaryA, universal.StationaryB, universal.StationaryC}
	repls := [][2]int{{1, 1}, {2, 1}, {1, 2}, {2, 2}}
	if *quick {
		partNames = []string{"row", "block", "custom"}
		repls = [][2]int{{1, 1}, {2, 2}}
	}

	run, failed := 0, 0
	for _, na := range partNames {
		for _, nb := range partNames {
			for _, nc := range partNames {
				for _, cs := range repls {
					for _, stat := range stats {
						for _, subTile := range []bool{false, true} {
							if subTile && (run%3 != 0) {
								continue // sample the sub-tile mode rather than doubling the sweep
							}
							run++
							if !verifyOne(p, m, n, k,
								parts(na, p/cs[0]), parts(nb, p/cs[0]), parts(nc, p/cs[1]),
								cs[0], cs[1], stat, subTile) {
								failed++
								fmt.Printf("FAIL A=%s B=%s C=%s cAB=%d cC=%d %v subtile=%v\n",
									na, nb, nc, cs[0], cs[1], stat, subTile)
							}
						}
					}
				}
			}
		}
	}
	fmt.Printf("%d configurations verified, %d failures\n", run, failed)
	if failed > 0 {
		os.Exit(1)
	}
}

func verifyOne(p, m, n, k int, pa, pb, pc distmat.Partition, cAB, cC int,
	stat universal.Stationary, subTile bool) bool {
	w := shmem.NewWorld(p)
	a := distmat.New(w, m, k, pa, cAB)
	b := distmat.New(w, k, n, pb, cAB)
	c := distmat.New(w, m, n, pc, cC)
	w.Run(func(pe rt.PE) {
		a.FillRandom(pe, 7)
		b.FillRandom(pe, 8)
	})
	var ref, got *tile.Matrix
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			ref = tile.New(m, n)
			tile.GemmNaive(ref, a.Gather(pe, 0), b.Gather(pe, 0))
		}
	})
	cfg := universal.DefaultConfig()
	cfg.Stationary = stat
	cfg.SubTileFetch = subTile
	cfg.SyncReplicas = true
	w.Run(func(pe rt.PE) {
		universal.Multiply(pe, c, a, b, cfg)
	})
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			got = c.Gather(pe, 0)
		}
	})
	return got.AllClose(ref, 1e-3)
}
