// Command bench_baseline measures the repository's execution hot path on
// the current machine and emits a BENCH_PR<N>.json baseline: local GEMM
// kernel throughput (packed vs the seed cache-blocked kernel vs naive),
// PGAS accumulate bandwidth, real-execution throughput and steady-state
// allocation behaviour of the universal algorithm, and the modeled
// percent-of-peak of the headline figures. Future PRs regress against the
// committed baseline to keep the perf trajectory honest:
//
//	go run ./cmd/bench_baseline -pr 4        # writes BENCH_PR4.json
//	go run ./cmd/bench_baseline -out my.json # explicit path
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"slicing/internal/bench"
	"slicing/internal/distmat"
	"slicing/internal/fabric"
	"slicing/internal/gpusim"
	rt "slicing/internal/runtime"
	"slicing/internal/shmem"
	"slicing/internal/simnet"
	"slicing/internal/tile"
	"slicing/internal/universal"
)

// Baseline is the schema of BENCH_PR<N>.json.
type Baseline struct {
	PR        int    `json:"pr"`
	Generated string `json:"generated"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	// GOMAXPROCS is the worker ceiling the parallel numbers below ran
	// under — without it a baseline from a constrained container reads
	// like a kernel regression on a wide machine (and vice versa).
	GOMAXPROCS int `json:"gomaxprocs"`

	// Kernel is the 512x512x512 local GEMM comparison. packed_gflops is the
	// dispatched (best-ISA) single-goroutine packed kernel; avx2_gflops /
	// avx512_gflops force those variants (0 when the CPU lacks them);
	// sse2_gflops forces the baseline 4x8 kernel that packed_gflops meant
	// before runtime dispatch existed. parallel_gflops is the shared-pack
	// GemmParallel crew at GOMAXPROCS workers and parallel_speedup_x its
	// ratio over packed_gflops (≈1 on a single-core box: same kernel plus
	// crew overhead). dispatch records which variant CPUID selected.
	Kernel struct {
		PackedGFlops      float64 `json:"packed_gflops"`
		SeedBlockedGFlops float64 `json:"seed_blocked_gflops"`
		NaiveGFlops       float64 `json:"naive_gflops"`
		PackedOverSeed    float64 `json:"packed_over_seed"`
		Sse2GFlops        float64 `json:"sse2_gflops"`
		Avx2GFlops        float64 `json:"avx2_gflops"`
		Avx512GFlops      float64 `json:"avx512_gflops"`
		ParallelGFlops    float64 `json:"parallel_gflops"`
		ParallelSpeedupX  float64 `json:"parallel_speedup_x"`
		// ParallelSpeedupXWorkers breaks the speedup out per explicit
		// worker count ("1", "2", "4"), so the scaling curve — not just
		// the GOMAXPROCS endpoint — is pinned. Counts above GOMAXPROCS
		// still run (the crew just oversubscribes), which on a 1-CPU box
		// keeps all three near 1.
		ParallelSpeedupXWorkers map[string]float64 `json:"parallel_speedup_x_workers"`
		Dispatch                string             `json:"dispatch"`
	} `json:"kernel"`

	// Accumulate is the PGAS accumulate bandwidth on 1M floats.
	Accumulate struct {
		GetMBs    float64 `json:"get_mbs"`
		AddMBs    float64 `json:"add_mbs"`
		GetPutMBs float64 `json:"getput_mbs"`
	} `json:"accumulate"`

	// Execute is the real-execution universal algorithm (4 PEs, 256^3,
	// fine 32x32 tiles so per-step costs dominate).
	Execute struct {
		GFlops        float64 `json:"gflops"`
		Steps         int     `json:"steps"`
		AllocsPerStep float64 `json:"allocs_per_step"`
	} `json:"execute"`

	// Model is the simulated percent-of-peak of the headline universal-algorithm figure points
	// (quick sweep, matching bench_test.go's quickOpts).
	Model struct {
		Fig2MLP1BestPct float64 `json:"fig2_mlp1_best_pct"`
		Fig3MLP1BestPct float64 `json:"fig3_mlp1_best_pct"`
	} `json:"model"`

	// Fabric anchors the link-graph network model: the predicted slowdown
	// of an 8-node incast storm on a single-NIC fat-tree versus the scalar
	// cluster topology (the regime PR 4's per-link contention exists to
	// expose; the scalar model prices the storm as fully parallel).
	Fabric struct {
		IncastSlowdownX float64 `json:"incast_slowdown_x"`
	} `json:"fabric"`

	// Serve is the PR 7 multiply-as-a-service anchor: throughput and
	// latency of the serving loop (compiled-plan cache + fused batching) at
	// the committed small-GEMM workload, against the naive per-request
	// plan-rebuild loop on the same world and shapes.
	Serve struct {
		RPS             float64 `json:"rps"`
		P50Ms           float64 `json:"p50_ms"`
		P99Ms           float64 `json:"p99_ms"`
		NaiveRPS        float64 `json:"naive_rps"`
		NaiveP50Ms      float64 `json:"naive_p50_ms"`
		SpeedupX        float64 `json:"speedup_x"`
		PlanCacheHitPct float64 `json:"plan_cache_hit_pct"`
		AvgBatch        float64 `json:"avg_batch"`
		Tenants         int     `json:"tenants"`
		Requests        int     `json:"requests"`
	} `json:"serve"`

	// Chaos is the PR 8 resilience anchor: availability and tail latency of
	// the serving loop under the seeded acceptance fault storm (1%
	// transient gets/accumulates, one rail degraded mid-run) against the
	// identical healthy workload, plus the retry bill per request.
	Chaos struct {
		AvailabilityPct float64 `json:"availability_pct"`
		P99MsFaulty     float64 `json:"p99_ms_faulty"`
		P99MsClean      float64 `json:"p99_ms_clean"`
		RetriesPerReq   float64 `json:"retries_per_req"`
		Requests        int     `json:"requests"`
	} `json:"chaos"`

	// Recovery is the PR 10 self-healing anchor: availability of the
	// serving loop with failover enabled while a seeded plan crashes one
	// rank mid-multiply and later heals it — every request that completed,
	// including those absorbed by replan-and-replay, counts as served —
	// plus the plan-repair bill.
	Recovery struct {
		AvailabilityPct float64 `json:"availability_pct"`
		RecoveredReqs   int64   `json:"recovered_reqs"`
		Replans         int64   `json:"replans"`
		ReplanMsP99     float64 `json:"replan_ms_p99"`
		Crashes         int64   `json:"crashes"`
		Heals           int64   `json:"heals"`
		P99Ms           float64 `json:"p99_ms"`
		Requests        int     `json:"requests"`
	} `json:"recovery"`

	// Sim anchors the PR 5 estimator hot path: scheduler throughput of the
	// indexed-heap engine on the 64-PE fat-tree DAG (and its speedup over
	// the legacy list scheduler, which must produce the identical
	// makespan), plus the incast slowdown the fabric-aware plan-replay
	// estimator predicts where the scalar estimator prices the storm
	// near-parallel.
	Sim struct {
		OpsPerSec              float64 `json:"ops_per_sec"`
		OracleOpsPerSec        float64 `json:"oracle_ops_per_sec"`
		SchedSpeedupX          float64 `json:"sched_speedup_x"`
		DagOps                 int     `json:"dag_ops"`
		FabricIncastEstimatorX float64 `json:"fabric_incast_estimator_x"`
	} `json:"sim"`
}

func gflopsOf(res testing.BenchmarkResult, flops float64) float64 {
	if res.T <= 0 {
		return 0
	}
	return flops * float64(res.N) / res.T.Seconds() / 1e9
}

// benchKernel reports the best of three 1-second runs: the baseline is a
// capability number, and on shared machines the first run regularly eats a
// scheduling hiccup or a cold frequency ramp that the kernel is not
// responsible for.
func benchKernel(kernel func(c, a, b *tile.Matrix)) float64 {
	rng := rand.New(rand.NewSource(43))
	a := tile.New(512, 512)
	a.FillRandom(rng)
	bm := tile.New(512, 512)
	bm.FillRandom(rng)
	c := tile.New(512, 512)
	best := 0.0
	for run := 0; run < 3; run++ {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kernel(c, a, bm)
			}
		})
		best = max(best, gflopsOf(res, tile.Flops(512, 512, 512)))
	}
	return best
}

// benchForcedKernel measures the packed kernel with one specific dispatch
// variant forced, restoring the CPUID-selected variant afterwards. Returns
// 0 when this CPU (or a purego build) does not have the variant.
func benchForcedKernel(name string) float64 {
	prev, err := tile.SetKernel(name)
	if err != nil {
		return 0
	}
	defer tile.SetKernel(prev)
	return benchKernel(tile.GemmPacked)
}

func benchAccumulate() (getMBs, addMBs, getPutMBs float64) {
	const elems = 1 << 20
	w := shmem.NewWorld(2)
	seg := w.AllocSymmetric(elems)
	buf := make([]float32, elems)
	mbs := func(op func(pe rt.PE)) float64 {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w.Run(func(pe rt.PE) {
					if pe.Rank() == 0 {
						op(pe)
					}
				})
			}
		})
		if res.T <= 0 {
			return 0
		}
		return float64(res.N) * elems * 4 / res.T.Seconds() / 1e6
	}
	getMBs = mbs(func(pe rt.PE) { pe.Get(buf, seg, 1, 0) })
	addMBs = mbs(func(pe rt.PE) { pe.AccumulateAdd(buf, seg, 1, 0) })
	getPutMBs = mbs(func(pe rt.PE) { pe.AccumulateAddGetPut(buf, seg, 1, 0) })
	return
}

func benchExecute() (gflops float64, steps int, allocsPerStep float64) {
	const p, m, n, k = 4, 256, 256, 256
	w := shmem.NewWorld(p)
	part := distmat.Custom{TileRows: 32, TileCols: 32, ProcRows: 2, ProcCols: 2}
	a := distmat.New(w, m, k, part, 1)
	bm := distmat.New(w, k, n, part, 1)
	c := distmat.New(w, m, n, part, 1)
	cfg := universal.DefaultConfig()
	cfg.Stationary = universal.StationaryC
	cfg.Pool = gpusim.NewPool()
	prob := universal.NewProblem(c, a, bm)
	plans := make([]universal.Plan, p)
	for rank := 0; rank < p; rank++ {
		plans[rank] = universal.BuildPlan(rank, prob, cfg.Stationary, cfg.CacheTiles)
		steps += len(plans[rank].Steps)
	}
	exec := func() {
		w.Run(func(pe rt.PE) {
			universal.ExecutePlan(pe, prob, plans[pe.Rank()], cfg)
			pe.Barrier()
		})
	}
	w.Run(func(pe rt.PE) {
		a.FillRandom(pe, 1)
		bm.FillRandom(pe, 2)
	})
	exec() // warm the pools
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exec()
		}
	})
	gflops = gflopsOf(res, 2*float64(m)*float64(n)*float64(k))
	allocsPerStep = testing.AllocsPerRun(3, exec) / float64(steps)
	return
}

// benchFabricIncast prices the 8→node-0 incast storm (4 MB per flow,
// bench.IncastStorm — the same driver the acceptance test and the
// examples/fabric_incast walkthrough run) on the scalar H100 cluster and
// on the single-NIC fat-tree fabric and returns the predicted slowdown
// ratio — a pure model number, stable across machines.
func benchFabricIncast() float64 {
	const nodes, perNode, elems = 9, 8, 1 << 20
	dev := gpusim.PresetH100Device()
	fromGPU0 := func(int) int { return 0 }
	scalar, _ := bench.IncastStorm(simnet.PresetH100Cluster(nodes), dev, perNode, elems, fromGPU0)
	if scalar <= 0 {
		return 0
	}
	routed, _ := bench.IncastStorm(fabric.H100FatTree(nodes, 1, 1).Topology(), dev, perNode, elems, fromGPU0)
	return routed / scalar
}

// benchScheduler measures scheduled ops/sec of the heap engine and of the
// legacy list scheduler on the shared 64-PE fat-tree DAG
// (bench.FatTree64SchedulerDAG — the same DAG BenchmarkSimulateFatTree64
// times in CI), verifying their makespans agree before reporting.
func benchScheduler() (opsPerSec, oracleOpsPerSec float64, dagOps int) {
	eng, res := bench.FatTree64SchedulerDAG()
	if oracle := eng.RunListOracle(); oracle.Makespan != res.Makespan {
		panic(fmt.Sprintf("bench_baseline: scheduler mismatch (heap %g, oracle %g)", res.Makespan, oracle.Makespan))
	}
	dagOps = eng.NumOps()
	heap := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng.Run()
		}
	})
	oracle := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng.RunListOracle()
		}
	})
	perSec := func(res testing.BenchmarkResult) float64 {
		if res.T <= 0 {
			return 0
		}
		return float64(dagOps) * float64(res.N) / res.T.Seconds()
	}
	return perSec(heap), perSec(oracle), dagOps
}

func main() {
	pr := flag.Int("pr", 10, "PR number for the default output name")
	out := flag.String("out", "", "output path (default BENCH_PR<pr>.json)")
	flag.Parse()
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_PR%d.json", *pr)
	}

	var base Baseline
	base.PR = *pr
	base.Generated = time.Now().UTC().Format(time.RFC3339)
	base.GoVersion = runtime.Version()
	base.GOOS = runtime.GOOS
	base.GOARCH = runtime.GOARCH
	base.CPUs = runtime.NumCPU()
	base.GOMAXPROCS = runtime.GOMAXPROCS(0)

	fmt.Fprintln(os.Stderr, "measuring local GEMM kernels (512x512x512)...")
	base.Kernel.Dispatch = tile.KernelName()
	fmt.Fprintln(os.Stderr, "  dispatch selected:", tile.KernelDescription())
	base.Kernel.PackedGFlops = benchKernel(tile.GemmPacked)
	base.Kernel.SeedBlockedGFlops = benchKernel(tile.GemmBlocked)
	base.Kernel.NaiveGFlops = benchKernel(tile.GemmNaive)
	base.Kernel.ParallelGFlops = benchKernel(func(c, a, b *tile.Matrix) { tile.GemmParallel(c, a, b, 0) })
	if base.Kernel.SeedBlockedGFlops > 0 {
		base.Kernel.PackedOverSeed = base.Kernel.PackedGFlops / base.Kernel.SeedBlockedGFlops
	}
	if base.Kernel.PackedGFlops > 0 {
		base.Kernel.ParallelSpeedupX = base.Kernel.ParallelGFlops / base.Kernel.PackedGFlops
		base.Kernel.ParallelSpeedupXWorkers = make(map[string]float64)
		for _, workers := range []int{1, 2, 4} {
			wk := workers
			g := benchKernel(func(c, a, b *tile.Matrix) { tile.GemmParallel(c, a, b, wk) })
			base.Kernel.ParallelSpeedupXWorkers[strconv.Itoa(wk)] = g / base.Kernel.PackedGFlops
		}
	}
	base.Kernel.Sse2GFlops = benchForcedKernel("sse2")
	base.Kernel.Avx2GFlops = benchForcedKernel("avx2")
	base.Kernel.Avx512GFlops = benchForcedKernel("avx512")

	fmt.Fprintln(os.Stderr, "measuring PGAS accumulate bandwidth...")
	base.Accumulate.GetMBs, base.Accumulate.AddMBs, base.Accumulate.GetPutMBs = benchAccumulate()

	fmt.Fprintln(os.Stderr, "measuring real-execution universal algorithm...")
	base.Execute.GFlops, base.Execute.Steps, base.Execute.AllocsPerStep = benchExecute()

	fmt.Fprintln(os.Stderr, "measuring multiply-as-a-service throughput...")
	serveOpts := bench.ServeOptions{} // the committed defaults
	// Best of three: the serving number is a capability baseline, and on
	// shared machines a single run regularly eats a scheduling hiccup.
	var servedBest, naiveBest bench.ServeResult
	for run := 0; run < 3; run++ {
		if served := bench.RunServeLoad(serveOpts); served.RPS > servedBest.RPS {
			servedBest = served
		}
		if naive := bench.RunServeNaive(serveOpts); naive.RPS > naiveBest.RPS {
			naiveBest = naive
		}
	}
	base.Serve.RPS = servedBest.RPS
	base.Serve.P50Ms = servedBest.P50Ms
	base.Serve.P99Ms = servedBest.P99Ms
	base.Serve.PlanCacheHitPct = servedBest.HitPct
	base.Serve.AvgBatch = servedBest.AvgBatch
	base.Serve.Requests = servedBest.Requests
	base.Serve.Tenants = 4
	base.Serve.NaiveRPS = naiveBest.RPS
	base.Serve.NaiveP50Ms = naiveBest.P50Ms
	if naiveBest.RPS > 0 {
		base.Serve.SpeedupX = servedBest.RPS / naiveBest.RPS
	}

	fmt.Fprintln(os.Stderr, "measuring serving availability under the chaos storm...")
	// Best availability/lowest tail of three, same reasoning as the serve
	// numbers: the storm is seeded and deterministic, but wall-clock tails
	// on a shared machine are not.
	var chaosBest bench.ServeChaosResult
	for run := 0; run < 3; run++ {
		res := bench.RunServeChaos(bench.ServeChaosOptions{})
		if run == 0 || res.P99MsFaulty < chaosBest.P99MsFaulty {
			chaosBest = res
		}
	}
	base.Chaos.AvailabilityPct = chaosBest.AvailabilityPct
	base.Chaos.P99MsFaulty = chaosBest.P99MsFaulty
	base.Chaos.P99MsClean = chaosBest.P99MsClean
	base.Chaos.RetriesPerReq = chaosBest.RetriesPerReq
	base.Chaos.Requests = chaosBest.Requests

	fmt.Fprintln(os.Stderr, "measuring serving failover through a rank crash...")
	// Lowest-tail of three again; availability and the repair counters are
	// seeded and identical across runs, the latencies are not.
	var recovBest bench.ServeRecoveryResult
	for run := 0; run < 3; run++ {
		res := bench.RunServeRecovery(bench.ServeRecoveryOptions{})
		if run == 0 || res.P99Ms < recovBest.P99Ms {
			recovBest = res
		}
	}
	base.Recovery.AvailabilityPct = recovBest.AvailabilityPct
	base.Recovery.RecoveredReqs = recovBest.RecoveredReqs
	base.Recovery.Replans = recovBest.Replans
	base.Recovery.ReplanMsP99 = recovBest.ReplanMsP99
	base.Recovery.Crashes = recovBest.Crashes
	base.Recovery.Heals = recovBest.Heals
	base.Recovery.P99Ms = recovBest.P99Ms
	base.Recovery.Requests = recovBest.Requests

	fmt.Fprintln(os.Stderr, "pricing the fabric incast anchor...")
	base.Fabric.IncastSlowdownX = benchFabricIncast()

	fmt.Fprintln(os.Stderr, "measuring scheduler throughput (64-PE fat-tree DAG)...")
	base.Sim.OpsPerSec, base.Sim.OracleOpsPerSec, base.Sim.DagOps = benchScheduler()
	if base.Sim.OracleOpsPerSec > 0 {
		base.Sim.SchedSpeedupX = base.Sim.OpsPerSec / base.Sim.OracleOpsPerSec
	}
	fmt.Fprintln(os.Stderr, "pricing the estimator incast anchor...")
	if fabricSec, scalarSec := bench.EstimatorIncast(9); scalarSec > 0 {
		base.Sim.FabricIncastEstimatorX = fabricSec / scalarSec
	}

	fmt.Fprintln(os.Stderr, "running quick figure sweeps...")
	opts := bench.Options{Replications: []int{1, 2, 4}, Batches: []int{1024, 8192}}
	fig2 := bench.RunFigure(universal.PVCSystem(), bench.MLP1, false, opts)
	base.Model.Fig2MLP1BestPct = fig2.BestUAPoint().PercentOfPeak
	fig3 := bench.RunFigure(universal.H100System(), bench.MLP1, true, opts)
	base.Model.Fig3MLP1BestPct = fig3.BestUAPoint().PercentOfPeak

	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "encode:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n%s", path, data)
}
