// Command mlp_experiments is the analogue of the paper artifact's
// launch_experiments_mlp1.py / launch_experiments_mlp2.py (task T3): it
// sweeps every universal-algorithm partitioning with all replication
// factors and stationary strategies on the selected system, adds the
// DTensor (and, on H100, COSMA) comparison series, and prints the data
// behind Figures 2 and 3 as an aligned table.
//
// Two annotations ground the estimator curves in real (timed) execution:
//
//   - validation points: each UA series' winning configuration re-runs at
//     1/scale dimensions through both timed backends, and the spread
//     around the estimator is printed as an error bar per series;
//
//   - pipeline tuning: the headline configuration's PrefetchDepth ×
//     MaxInflight grid is swept per timed backend (autotune.TunePipeline),
//     surfacing how the optimum depends on the backend's contention model.
//
//     mlp_experiments -system pvc  -layer mlp1
//     mlp_experiments -system h100 -layer mlp2
//     mlp_experiments -quick           # smaller sweep for smoke testing
//     mlp_experiments -validate=false -tune=false   # estimator table only
package main

import (
	"flag"
	"fmt"
	"os"

	"slicing/internal/autotune"
	"slicing/internal/bench"
	"slicing/internal/gpubackend"
	rt "slicing/internal/runtime"
	"slicing/internal/simbackend"
	"slicing/internal/trace"
	"slicing/internal/universal"
)

func main() {
	var (
		sysID    = flag.String("system", "pvc", "pvc | h100")
		layer    = flag.String("layer", "mlp1", "mlp1 | mlp2")
		quick    = flag.Bool("quick", false, "restrict the sweep (fewer batches and factors)")
		validate = flag.Bool("validate", true, "annotate UA series with timed-backend validation points")
		tune     = flag.Bool("tune", true, "sweep the headline point's pipeline depth per timed backend")
		scale    = flag.Int("scale", 16, "divide dimensions by this factor for timed validation runs")
	)
	flag.Parse()

	var sys universal.SimSystem
	withCOSMA := false
	switch *sysID {
	case "pvc":
		sys = universal.PVCSystem()
	case "h100":
		sys = universal.H100System()
		withCOSMA = true
	default:
		fmt.Fprintf(os.Stderr, "mlp_experiments: unknown system %q\n", *sysID)
		os.Exit(2)
	}

	var l bench.Layer
	switch *layer {
	case "mlp1":
		l = bench.MLP1
	case "mlp2":
		l = bench.MLP2
	default:
		fmt.Fprintf(os.Stderr, "mlp_experiments: unknown layer %q\n", *layer)
		os.Exit(2)
	}

	opt := bench.Options{}
	if *quick {
		opt.Replications = []int{1, 2, 4}
		opt.Batches = []int{1024, 8192}
	}

	fig := bench.RunFigure(sys, l, withCOSMA, opt)
	trace.WriteFigureTable(os.Stdout, fig)
	sum := trace.Summarize(fig)
	fmt.Printf("\nheadline: %s = %.1f%% vs %s = %.1f%% (UA competitive: %v)\n",
		sum.BestUA, sum.BestUAPct, sum.BestOther, sum.BestOtherPct, sum.UAWinsOrTies)

	if *validate {
		fmt.Println()
		trace.WriteValidationTable(os.Stdout, bench.ValidateFigure(sys, fig, *scale))
	}

	if *tune {
		fmt.Println()
		tunePipelines(sys, l, fig, *scale)
	}
}

// tunePipelines sweeps the figure's headline UA configuration over the
// PrefetchDepth × MaxInflight grid on both timed backends and prints the
// per-backend ranking head — the open-ROADMAP comparison of how queue
// depth moves the optimum between the single-clock and stream/event
// contention models.
func tunePipelines(sys universal.SimSystem, l bench.Layer, fig bench.Figure, scale int) {
	pk, pt, ok := headlineUA(fig)
	if !ok {
		return
	}
	if scale <= 0 {
		scale = 16
	}
	m, n, k := l.Dims(pt.Batch)
	m, n, k = m/scale, n/scale, k/scale
	cand := autotune.Candidate{Part: pk, ReplAB: pt.ReplAB, ReplC: pt.ReplC, Stationary: pt.Stationary}
	fmt.Printf("pipeline tuning: UA - %v cAB=%d cC=%d %v @ batch %d (1/%d scale)\n",
		pk, pt.ReplAB, pt.ReplC, pt.Stationary, pt.Batch, scale)
	backends := []rt.Backend{simbackend.New(sys.Topo, sys.Dev), gpubackend.New(sys.Topo, sys.Dev)}
	for _, b := range backends {
		choices := autotune.TunePipeline(b, sys, m, n, k, cand, autotune.PipelineOptions{})
		best := choices[0]
		fmt.Printf("  %-22s best prefetch=%d inflight=%d (%.4gs, queue %.4gs)",
			b.Name(), best.PrefetchDepth, best.MaxInflight, best.Seconds, best.QueueDelaySeconds)
		if len(choices) > 1 {
			worst := choices[len(choices)-1]
			fmt.Printf("  [worst %d/%d: %.4gs]", worst.PrefetchDepth, worst.MaxInflight, worst.Seconds)
		}
		fmt.Println()
	}
}

// headlineUA finds the best UA point in the figure along with its
// partitioning (Figure.BestUAPoint drops the series identity).
func headlineUA(fig bench.Figure) (bench.Partitioning, bench.Point, bool) {
	var bestPk bench.Partitioning
	best := bench.Point{PercentOfPeak: -1}
	found := false
	for _, pk := range bench.UAPartitionings {
		s := fig.ByName("UA - " + pk.String())
		for _, pt := range s.Points {
			if pt.PercentOfPeak > best.PercentOfPeak {
				best, bestPk, found = pt, pk, true
			}
		}
	}
	return bestPk, best, found
}
