// Command mlp_experiments is the analogue of the paper artifact's
// launch_experiments_mlp1.py / launch_experiments_mlp2.py (task T3): it
// sweeps every universal-algorithm partitioning with all replication
// factors and stationary strategies on the selected system, adds the
// DTensor (and, on H100, COSMA) comparison series, and prints the data
// behind Figures 2 and 3 as an aligned table.
//
//	mlp_experiments -system pvc  -layer mlp1
//	mlp_experiments -system h100 -layer mlp2
//	mlp_experiments -quick           # smaller sweep for smoke testing
package main

import (
	"flag"
	"fmt"
	"os"

	"slicing/internal/bench"
	"slicing/internal/trace"
	"slicing/internal/universal"
)

func main() {
	var (
		sysID = flag.String("system", "pvc", "pvc | h100")
		layer = flag.String("layer", "mlp1", "mlp1 | mlp2")
		quick = flag.Bool("quick", false, "restrict the sweep (fewer batches and factors)")
	)
	flag.Parse()

	var sys universal.SimSystem
	withCOSMA := false
	switch *sysID {
	case "pvc":
		sys = universal.PVCSystem()
	case "h100":
		sys = universal.H100System()
		withCOSMA = true
	default:
		fmt.Fprintf(os.Stderr, "mlp_experiments: unknown system %q\n", *sysID)
		os.Exit(2)
	}

	var l bench.Layer
	switch *layer {
	case "mlp1":
		l = bench.MLP1
	case "mlp2":
		l = bench.MLP2
	default:
		fmt.Fprintf(os.Stderr, "mlp_experiments: unknown layer %q\n", *layer)
		os.Exit(2)
	}

	opt := bench.Options{}
	if *quick {
		opt.Replications = []int{1, 2, 4}
		opt.Batches = []int{1024, 8192}
	}

	fig := bench.RunFigure(sys, l, withCOSMA, opt)
	trace.WriteFigureTable(os.Stdout, fig)
	sum := trace.Summarize(fig)
	fmt.Printf("\nheadline: %s = %.1f%% vs %s = %.1f%% (UA competitive: %v)\n",
		sum.BestUA, sum.BestUAPct, sum.BestOther, sum.BestOtherPct, sum.UAWinsOrTies)
}
