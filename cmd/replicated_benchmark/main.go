// Command replicated_benchmark mirrors the paper artifact's
// replicated_benchmark binary (task T1): it runs one distributed matrix
// multiplication with an explicit choice of partitionings, replication
// factors, and data movement strategy, and reports timing.
//
// Modes:
//
//	-mode real        execute with real float32 arithmetic on goroutine
//	                  PEs and verify against the serial reference
//	-mode sim         run the discrete-event performance model on the
//	                  selected system preset and report percent of peak
//	-mode ir-compare  compare direct execution against the greedy,
//	                  cost-greedy, and (small plans) exhaustive IR
//	                  schedules in simulated time (experiment E8)
//	-mode repl-sweep  sweep every valid replication factor for the chosen
//	                  partitioning (experiment E10)
//	-mode gantt       render the simulated schedule as an ASCII timeline
//	                  (one row per compute engine / network port)
//	-mode autotune    search partitionings × replication × stationary for
//	                  the problem size and print the leaders (the paper's
//	                  §6 future-work item)
//
// Example:
//
//	replicated_benchmark -mode sim -system pvc -m 1024 -n 49152 -k 12288 \
//	    -part-a col -part-b col -part-c col -stationary C
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"slicing/internal/autotune"
	"slicing/internal/costmodel"
	"slicing/internal/distmat"
	"slicing/internal/ir"
	rt "slicing/internal/runtime"
	"slicing/internal/shmem"
	"slicing/internal/tile"
	"slicing/internal/trace"
	"slicing/internal/universal"
)

func main() {
	var (
		mode  = flag.String("mode", "sim", "real | sim | ir-compare | repl-sweep | gantt | autotune")
		sysID = flag.String("system", "pvc", "pvc | h100 (sim modes)")
		m     = flag.Int("m", 1024, "rows of A and C")
		n     = flag.Int("n", 1024, "cols of B and C")
		k     = flag.Int("k", 1024, "cols of A / rows of B")
		p     = flag.Int("p", 0, "PE count (0 = system preset size)")
		partA = flag.String("part-a", "row", "partitioning of A: row | col | block")
		partB = flag.String("part-b", "col", "partitioning of B")
		partC = flag.String("part-c", "block", "partitioning of C")
		cA    = flag.Int("repl-a", 1, "replication factor of A")
		cB    = flag.Int("repl-b", 1, "replication factor of B")
		cC    = flag.Int("repl-c", 1, "replication factor of C")
		stat  = flag.String("stationary", "auto", "auto | A | B | C")
	)
	flag.Parse()

	sys := universal.PVCSystem()
	if *sysID == "h100" {
		sys = universal.H100System()
	}
	pes := *p
	if pes == 0 {
		pes = sys.Topo.NumPE()
	}

	w := shmem.NewWorld(pes)
	a := distmat.New(w, *m, *k, parsePart(*partA), *cA)
	b := distmat.New(w, *k, *n, parsePart(*partB), *cB)
	c := distmat.New(w, *m, *n, parsePart(*partC), *cC)
	prob := universal.NewProblem(c, a, b)
	cfg := universal.DefaultConfig()
	cfg.Stationary = parseStat(*stat)
	cfg.SyncReplicas = true

	switch *mode {
	case "real":
		runReal(w, prob, cfg)
	case "sim":
		if pes != sys.Topo.NumPE() {
			fatalf("sim mode needs -p to match the %s preset (%d PEs)", *sysID, sys.Topo.NumPE())
		}
		res := universal.SimulateMultiply(prob, cfg, sys)
		fmt.Printf("system=%s m=%d n=%d k=%d A=%s(c%d) B=%s(c%d) C=%s(c%d)\n",
			sys.Topo.Name(), *m, *n, *k, *partA, *cA, *partB, *cB, *partC, *cC)
		fmt.Printf("stationary=%v ops=%d makespan=%.6fs percent_of_peak=%.1f%%\n",
			res.Stationary, res.Ops, res.Makespan, res.PercentOfPeak)
		fmt.Printf("remote_get=%.1fMB remote_accum=%.1fMB compute_util=%.2f\n",
			float64(res.RemoteGetBytes)/1e6, float64(res.RemoteAccumBytes)/1e6, res.AvgComputeUtil)
	case "ir-compare":
		runIRCompare(prob, cfg, sys, pes)
	case "repl-sweep":
		runReplSweep(*m, *n, *k, pes, *partA, *partB, *partC, cfg, sys)
	case "autotune":
		if pes != sys.Topo.NumPE() {
			fatalf("autotune mode needs -p to match the system preset (%d PEs)", sys.Topo.NumPE())
		}
		cands := autotune.Search(sys, *m, *n, *k, autotune.Options{SimulateTop: 5})
		fmt.Printf("%-14s %-6s %-6s %-6s %14s %14s\n", "partitioning", "c_AB", "c_C", "stat", "cost_est", "sim_refined")
		show := 10
		if show > len(cands) {
			show = len(cands)
		}
		for _, c := range cands[:show] {
			sim := "-"
			if c.SimSeconds > 0 {
				sim = fmt.Sprintf("%.6fs", c.SimSeconds)
			}
			fmt.Printf("%-14v %-6d %-6d %-6v %12.6fs %14s\n", c.Part, c.ReplAB, c.ReplC, c.Stationary, c.CostSeconds, sim)
		}
	case "gantt":
		if pes != sys.Topo.NumPE() {
			fatalf("gantt mode needs -p to match the system preset (%d PEs)", sys.Topo.NumPE())
		}
		res, eng, run := universal.SimulateMultiplyTrace(prob, cfg, sys)
		fmt.Printf("stationary=%v percent_of_peak=%.1f%%\n", res.Stationary, res.PercentOfPeak)
		trace.WriteGantt(os.Stdout, eng, run, 100)
	default:
		fatalf("unknown mode %q", *mode)
	}
}

func runReal(w rt.World, prob universal.Problem, cfg universal.Config) {
	w.Run(func(pe rt.PE) {
		prob.A.FillRandom(pe, 1)
		prob.B.FillRandom(pe, 2)
	})
	var ref *tile.Matrix
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			fa := prob.A.Gather(pe, 0)
			fb := prob.B.Gather(pe, 0)
			ref = tile.New(prob.C.Rows(), prob.C.Cols())
			tile.GemmNaive(ref, fa, fb)
		}
	})
	start := time.Now()
	var stat universal.Stationary
	w.Run(func(pe rt.PE) {
		stat, _ = universal.Multiply(pe, prob.C, prob.A, prob.B, cfg)
	})
	elapsed := time.Since(start)
	var ok bool
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			ok = prob.C.Gather(pe, 0).AllClose(ref, 1e-3)
		}
	})
	fmt.Printf("stationary=%v elapsed=%v verified=%v\n", stat, elapsed, ok)
	if !ok {
		os.Exit(1)
	}
}

func runIRCompare(prob universal.Problem, cfg universal.Config, sys universal.SimSystem, pes int) {
	if pes != sys.Topo.NumPE() {
		fatalf("ir-compare needs -p to match the system preset (%d PEs)", sys.Topo.NumPE())
	}
	md := costmodel.New(sys.Topo, sys.Dev)
	build := func(gen func(universal.Plan) ir.Program) []ir.Program {
		progs := make([]ir.Program, pes)
		for rank := 0; rank < pes; rank++ {
			plan := universal.BuildPlan(rank, prob, cfg.Stationary, cfg.CacheTiles)
			progs[rank] = gen(plan)
		}
		return progs
	}
	direct := ir.Simulate(prob, build(func(pl universal.Plan) ir.Program { return ir.Direct(pl, cfg.PrefetchDepth) }), sys)
	greedy := ir.Simulate(prob, build(func(pl universal.Plan) ir.Program { return ir.Greedy(pl, ir.DefaultLimits()) }), sys)
	costG := ir.Simulate(prob, build(func(pl universal.Plan) ir.Program { return ir.CostGreedy(md, pl, ir.DefaultLimits()) }), sys)
	exh := ir.Simulate(prob, build(func(pl universal.Plan) ir.Program { return ir.Exhaustive(md, pl, ir.DefaultLimits()) }), sys)
	fmt.Printf("%-12s %12s %14s\n", "schedule", "makespan", "pct_of_peak")
	for _, row := range []struct {
		name string
		res  universal.SimResult
	}{{"direct", direct}, {"greedy", greedy}, {"cost-greedy", costG}, {"exhaustive*", exh}} {
		fmt.Printf("%-12s %10.6fs %13.1f%%\n", row.name, row.res.Makespan, row.res.PercentOfPeak)
	}
	fmt.Println("* exhaustive falls back to cost-greedy beyond", ir.ExhaustiveLimit, "ops/rank")
}

func runReplSweep(m, n, k, pes int, pa, pb, pc string, cfg universal.Config, sys universal.SimSystem) {
	if pes != sys.Topo.NumPE() {
		fatalf("repl-sweep needs -p to match the system preset (%d PEs)", sys.Topo.NumPE())
	}
	fmt.Printf("%-6s %-6s %12s %14s %12s\n", "c_AB", "c_C", "makespan", "pct_of_peak", "stationary")
	for cAB := 1; cAB <= pes; cAB++ {
		if pes%cAB != 0 {
			continue
		}
		for cC := 1; cC <= pes; cC++ {
			if pes%cC != 0 {
				continue
			}
			w := shmem.NewWorld(pes)
			a := distmat.New(w, m, k, parsePart(pa), cAB)
			b := distmat.New(w, k, n, parsePart(pb), cAB)
			c := distmat.New(w, m, n, parsePart(pc), cC)
			res := universal.SimulateMultiply(universal.NewProblem(c, a, b), cfg, sys)
			fmt.Printf("%-6d %-6d %10.6fs %13.1f%% %12v\n", cAB, cC, res.Makespan, res.PercentOfPeak, res.Stationary)
		}
	}
}

func parsePart(s string) distmat.Partition {
	switch s {
	case "row":
		return distmat.RowBlock{}
	case "col", "column":
		return distmat.ColBlock{}
	case "block", "2d":
		return distmat.Block2D{}
	default:
		fatalf("unknown partitioning %q (row | col | block)", s)
		return nil
	}
}

func parseStat(s string) universal.Stationary {
	switch s {
	case "auto":
		return universal.StationaryAuto
	case "A", "a":
		return universal.StationaryA
	case "B", "b":
		return universal.StationaryB
	case "C", "c":
		return universal.StationaryC
	default:
		fatalf("unknown stationary %q (auto | A | B | C)", s)
		return universal.StationaryAuto
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "replicated_benchmark: "+format+"\n", args...)
	os.Exit(2)
}
