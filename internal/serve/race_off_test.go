//go:build !race

package serve

// raceEnabled reports whether the race detector instruments this build;
// the stress tests scale their request counts down under -race because the
// instrumentation multiplies the cost of every barrier and channel op.
const raceEnabled = false
