package serve

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"slicing/internal/distmat"
	rt "slicing/internal/runtime"
	"slicing/internal/shmem"
	"slicing/internal/tile"
	"slicing/internal/universal"
)

// tenantFixture is one tenant's workload: shared operands, one result
// matrix per concurrent request, and the serial reference product.
type tenantFixture struct {
	name    string
	a, b    *distmat.Matrix
	cs      []*distmat.Matrix
	ref     *tile.Matrix
	m, n, k int
}

// makeTenant builds and fills a tenant's matrices and reference before the
// server takes ownership of the world's Run.
func makeTenant(w rt.World, name string, m, n, k, requests int, seed int64) *tenantFixture {
	f := &tenantFixture{name: name, m: m, n: n, k: k}
	f.a = distmat.New(w, m, k, distmat.RowBlock{}, 1)
	f.b = distmat.New(w, k, n, distmat.ColBlock{}, 1)
	for i := 0; i < requests; i++ {
		f.cs = append(f.cs, distmat.New(w, m, n, distmat.Block2D{}, 1))
	}
	w.Run(func(pe rt.PE) {
		f.a.FillRandom(pe, seed)
		f.b.FillRandom(pe, seed+1)
		if pe.Rank() == 0 {
			fullA := f.a.Gather(pe, 0)
			fullB := f.b.Gather(pe, 0)
			f.ref = tile.New(m, n)
			tile.GemmNaive(f.ref, fullA, fullB)
		}
	})
	return f
}

func maxRelDiff(x, y *tile.Matrix) float64 {
	worst := 0.0
	for i := range x.Data {
		diff := math.Abs(float64(x.Data[i] - y.Data[i]))
		scale := math.Max(math.Abs(float64(x.Data[i])), 1)
		if d := diff / scale; d > worst {
			worst = d
		}
	}
	return worst
}

// checkResults gathers every result matrix and compares it to the tenant's
// reference. Callers must have quiesced the server (Close) first so the
// gather's world.Run cannot race the dispatcher's.
func checkResults(t *testing.T, w rt.World, fixtures []*tenantFixture) {
	t.Helper()
	w.Run(func(pe rt.PE) {
		if pe.Rank() != 0 {
			return
		}
		for _, f := range fixtures {
			for i, c := range f.cs {
				got := c.Gather(pe, 0)
				if d := maxRelDiff(f.ref, got); d > 1e-4 {
					t.Errorf("tenant %s request %d: max rel diff %g vs GemmNaive", f.name, i, d)
				}
			}
		}
	})
}

func TestServeConcurrentTenantsMatchReference(t *testing.T) {
	const p = 4
	w := shmem.NewWorld(p)
	fixtures := []*tenantFixture{
		makeTenant(w, "alpha", 24, 20, 16, 4, 100),
		makeTenant(w, "beta", 17, 23, 19, 4, 200),
		makeTenant(w, "gamma", 32, 8, 24, 4, 300),
	}
	s := NewServer(w, Config{Batch: 3, Queue: 32})
	var wg sync.WaitGroup
	for _, f := range fixtures {
		for _, c := range f.cs {
			wg.Add(1)
			go func(f *tenantFixture, c *distmat.Matrix) {
				defer wg.Done()
				if _, err := s.Multiply(context.Background(), f.name, c, f.a, f.b); err != nil {
					t.Errorf("tenant %s: %v", f.name, err)
				}
			}(f, c)
		}
	}
	wg.Wait()
	st := s.Stats()
	s.Close()
	checkResults(t, w, fixtures)

	if st.Served != 12 {
		t.Fatalf("served %d requests, want 12", st.Served)
	}
	for _, f := range fixtures {
		ts, ok := st.Tenants[f.name]
		if !ok || ts.Served != 4 {
			t.Fatalf("tenant %s served %d, want 4", f.name, ts.Served)
		}
		if ts.Traffic.LocalOps+ts.Traffic.RemoteOps == 0 {
			t.Fatalf("tenant %s attributed no traffic", f.name)
		}
	}
	// Three distinct shapes → exactly three compilations, everything else
	// served from the cache.
	if st.PlanCache.Builds != 3 {
		t.Fatalf("plan cache compiled %d times, want 3", st.PlanCache.Builds)
	}
	if pct := st.PlanCache.HitPct(); pct < 50 {
		t.Fatalf("plan cache hit pct %g, want the steady state cached", pct)
	}
	if st.Batches == 0 || st.BatchedRequests != 12 {
		t.Fatalf("batching accounting: %d batches, %d requests", st.Batches, st.BatchedRequests)
	}
}

// The admission queue is bounded: a full tenant queue rejects rather than
// buffering, and the rejection is accounted.
func TestServeQueueFull(t *testing.T) {
	const p = 2
	w := shmem.NewWorld(p)
	f := makeTenant(w, "solo", 12, 10, 8, 3, 1)
	s := newServer(w, Config{Queue: 2, Batch: 1}) // paused: nothing drains
	mkReq := func(c *distmat.Matrix) *request {
		return &request{
			ctx:    context.Background(),
			prob:   universal.NewProblem(c, f.a, f.b),
			done:   make(chan struct{}),
			queued: time.Now(),
		}
	}
	r1, r2, r3 := mkReq(f.cs[0]), mkReq(f.cs[1]), mkReq(f.cs[2])
	if err := s.enqueue("solo", r1); err != nil {
		t.Fatal(err)
	}
	if err := s.enqueue("solo", r2); err != nil {
		t.Fatal(err)
	}
	if err := s.enqueue("solo", r3); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third enqueue into capacity-2 queue: %v", err)
	}
	if s.QueuedLen() != 2 {
		t.Fatalf("queued %d, want 2", s.QueuedLen())
	}
	// Un-pause; the two admitted requests must complete.
	s.Start()
	s.wake <- struct{}{}
	<-r1.done
	<-r2.done
	st := s.Stats()
	s.Close()
	if st.Rejected != 1 || st.Tenants["solo"].Rejected != 1 {
		t.Fatalf("rejected accounting: %+v", st)
	}
	checkResults(t, w, []*tenantFixture{{name: "solo", cs: f.cs[:2], ref: f.ref}})
}

// A request whose context is cancelled while queued never executes.
func TestServeCancelWhileQueued(t *testing.T) {
	const p = 2
	w := shmem.NewWorld(p)
	f := makeTenant(w, "slow", 12, 10, 8, 1, 2)
	s := newServer(w, Config{}) // paused: the request stays queued
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Multiply(ctx, "slow", f.cs[0], f.a, f.b)
		errc <- err
	}()
	for s.QueuedLen() != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled queued request returned %v", err)
	}
	if s.QueuedLen() != 0 {
		t.Fatal("cancelled request still queued")
	}
	st := s.Stats()
	if st.Cancelled != 1 || st.Served != 0 {
		t.Fatalf("cancel accounting: %+v", st)
	}
	s.Start()
	s.Close()
}

// An already-expired context fails fast without touching the queue.
func TestServeExpiredContextFailsFast(t *testing.T) {
	w := shmem.NewWorld(2)
	f := makeTenant(w, "late", 8, 8, 8, 1, 3)
	s := NewServer(w, Config{})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Multiply(ctx, "late", f.cs[0], f.a, f.b); !errors.Is(err, context.Canceled) {
		t.Fatalf("expired context returned %v", err)
	}
	if st := s.Stats(); st.Served != 0 || s.QueuedLen() != 0 {
		t.Fatal("expired request reached the queue")
	}
}

// Round-robin admission: a flooding tenant cannot starve others — each
// batch interleaves one request per tenant per ring pass.
func TestServeFairnessRoundRobin(t *testing.T) {
	const p = 2
	w := shmem.NewWorld(p)
	flood := makeTenant(w, "flood", 8, 8, 8, 6, 4)
	meek := makeTenant(w, "meek", 8, 8, 8, 2, 5)
	s := newServer(w, Config{Batch: 4, Queue: 16}) // paused: inspect batches directly
	mkReq := func(f *tenantFixture, c *distmat.Matrix) *request {
		return &request{
			ctx: context.Background(), prob: universal.NewProblem(c, f.a, f.b),
			done: make(chan struct{}), queued: time.Now(),
		}
	}
	for _, c := range flood.cs {
		if err := s.enqueue("flood", mkReq(flood, c)); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range meek.cs {
		if err := s.enqueue("meek", mkReq(meek, c)); err != nil {
			t.Fatal(err)
		}
	}
	order := func(batch []*request) []string {
		var names []string
		for _, r := range batch {
			names = append(names, r.tenant.name)
		}
		return names
	}
	// Pass 1 takes one from each tenant, pass 2 again: flood,meek,flood,meek
	// (ring order is sorted tenant names, start rotates).
	b1 := order(s.nextBatch())
	counts := map[string]int{}
	for _, n := range b1 {
		counts[n]++
	}
	if len(b1) != 4 || counts["meek"] != 2 || counts["flood"] != 2 {
		t.Fatalf("first batch %v: flooding tenant crowded out the meek one", b1)
	}
	b2 := order(s.nextBatch())
	if len(b2) != 4 {
		t.Fatalf("second batch %v, want the remaining 4 flood requests", b2)
	}
	for _, n := range b2 {
		if n != "flood" {
			t.Fatalf("second batch %v contains drained tenant", b2)
		}
	}
	if s.QueuedLen() != 0 {
		t.Fatalf("still queued: %d", s.QueuedLen())
	}
	// The popped requests were never executed; finish them so nothing leaks.
	s.Start()
	s.Close()
}

// Close fails queued requests with ErrClosed and rejects new submissions.
func TestServeClose(t *testing.T) {
	w := shmem.NewWorld(2)
	f := makeTenant(w, "t", 8, 8, 8, 2, 6)
	s := newServer(w, Config{}) // paused so the request is still queued at Close
	errc := make(chan error, 1)
	go func() {
		_, err := s.Multiply(context.Background(), "t", f.cs[0], f.a, f.b)
		errc <- err
	}()
	for s.QueuedLen() != 1 {
		time.Sleep(time.Millisecond)
	}
	s.Start()
	s.Close()
	if err := <-errc; !errors.Is(err, ErrClosed) && err != nil {
		// The dispatcher may legitimately serve the request before seeing
		// quit; both outcomes are correct, anything else is not.
		t.Fatalf("queued request at Close returned %v", err)
	}
	if _, err := s.Multiply(context.Background(), "t", f.cs[1], f.a, f.b); !errors.Is(err, ErrClosed) {
		t.Fatalf("Multiply after Close returned %v", err)
	}
	s.Close() // idempotent
}

// The serving surface returns errors, never panics, on bad operands.
func TestServeValidatesOperands(t *testing.T) {
	w := shmem.NewWorld(2)
	other := shmem.NewWorld(2)
	f := makeTenant(w, "v", 8, 8, 8, 1, 7)
	foreign := distmat.New(other, 8, 8, distmat.RowBlock{}, 1)
	s := NewServer(w, Config{})
	defer s.Close()
	ctx := context.Background()
	if _, err := s.Multiply(ctx, "v", nil, f.a, f.b); err == nil {
		t.Fatal("nil operand accepted")
	}
	if _, err := s.Multiply(ctx, "v", foreign, f.a, f.b); err == nil {
		t.Fatal("foreign-world matrix accepted")
	}
	bad := distmat.New(w, 7, 9, distmat.RowBlock{}, 1) // shape mismatch
	if _, err := s.Multiply(ctx, "v", bad, f.a, f.b); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	if st := s.Stats(); st.Served != 0 {
		t.Fatal("invalid request was served")
	}
}

// NoCache preserves the per-request rebuild behaviour — the benchmark
// baseline — and must still compute the right product.
func TestServeNoCache(t *testing.T) {
	const p = 2
	w := shmem.NewWorld(p)
	f := makeTenant(w, "n", 16, 12, 8, 2, 8)
	before := universal.PlanBuildCount()
	s := NewServer(w, Config{NoCache: true})
	ctx := context.Background()
	for _, c := range f.cs {
		if _, err := s.Multiply(ctx, "n", c, f.a, f.b); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	s.Close()
	checkResults(t, w, []*tenantFixture{f})
	if st.PlanCache.Builds != 0 || st.PlanCache.Hits != 0 {
		t.Fatalf("NoCache server touched the plan cache: %+v", st.PlanCache)
	}
	// Two requests × p ranks, rebuilt every time.
	if got := universal.PlanBuildCount() - before; got != int64(2*p) {
		t.Fatalf("NoCache ran %d slicing passes, want %d", got, 2*p)
	}
}
