package serve

// Failover tests (Config.Recover): a PE crash mid-batch must be absorbed
// by replan-and-replay against the surviving world — every request still
// completes correctly, the breaker never trips, and the recovery shows
// up in Recovered/Replans/ReplanMs. The kill/heal cycle additionally
// re-includes the revived rank.

import (
	"context"
	"testing"
	"time"

	"slicing/internal/chaos"
	"slicing/internal/gpusim"
	"slicing/internal/universal"
)

// TestServeFailoverRecoversCrash is the serving half of the tentpole: a
// rank crashes mid-run under a seeded plan, and the server replays the
// batch against the survivors instead of failing it.
func TestServeFailoverRecoversCrash(t *testing.T) {
	plan := &chaos.Plan{Seed: 11, Rules: []chaos.Rule{
		{Name: "die", Kind: chaos.Crash, Ranks: []int{1}, Rate: 1, After: 6, MaxFires: 1},
	}}
	w, cw := chaosWorld(plan)
	fx := makeTenant(w, "survivor", 24, 20, 16, 6, 77)
	pool := gpusim.NewPool()
	s := NewServer(w, Config{
		Batch: 1, Queue: 16, Recover: true,
		Breaker: BreakerConfig{Threshold: 2, Cooldown: time.Minute},
		Exec:    universal.Config{Pool: pool},
	})
	for i := range fx.cs {
		if _, err := s.Multiply(context.Background(), fx.name, fx.cs[i], fx.a, fx.b); err != nil {
			t.Fatalf("request %d with failover on: %v", i, err)
		}
	}
	st := s.Stats()
	s.Close()
	if !cw.Crashed(1) {
		t.Fatal("crash rule never fired — the test exercised nothing")
	}
	if st.Recovered < 1 || st.Replans < 1 {
		t.Fatalf("recovery accounting: recovered %d replans %d", st.Recovered, st.Replans)
	}
	if int64(len(st.ReplanMs)) != st.Replans {
		t.Fatalf("%d ReplanMs samples for %d replans", len(st.ReplanMs), st.Replans)
	}
	// Absorbed faults must not reach the failure accounting or the breaker.
	if st.Failed != 0 || st.Tripped != 0 || st.Shed != 0 {
		t.Fatalf("absorbed crash leaked into failure accounting: %+v", st)
	}
	ten := st.Tenants["survivor"]
	if ten.Served != int64(len(fx.cs)) || ten.Recovered != st.Recovered {
		t.Fatalf("tenant accounting: %+v", ten)
	}
	checkResults(t, w, []*tenantFixture{fx})
	if live := pool.Stats().Live; live != 0 {
		t.Fatalf("%d pooled elements leaked across the failover", live)
	}
}

// TestServeFailoverKillHealCycle scripts crash → recover-on-survivors →
// heal → re-include: after the Heal rule revives rank 1, the per-batch
// membership sync folds it back into the plans and serving continues on
// the full world.
func TestServeFailoverKillHealCycle(t *testing.T) {
	plan := &chaos.Plan{Seed: 21, Rules: []chaos.Rule{
		{Name: "die", Kind: chaos.Crash, Ranks: []int{1}, Rate: 1, After: 6, MaxFires: 1},
		// Survivor traffic triggers the heal: crashed ranks draw no sequence
		// numbers, so this necessarily fires from another rank's op stream.
		{Name: "mend", Kind: chaos.Heal, Target: 1, Rate: 1, After: 60, MaxFires: 1},
	}}
	w, cw := chaosWorld(plan)
	fx := makeTenant(w, "cycler", 24, 20, 16, 10, 33)
	pool := gpusim.NewPool()
	s := NewServer(w, Config{
		Batch: 1, Queue: 16, Recover: true,
		Breaker: BreakerConfig{Threshold: 2, Cooldown: time.Minute},
		Exec:    universal.Config{Pool: pool},
	})
	for i := range fx.cs {
		if _, err := s.Multiply(context.Background(), fx.name, fx.cs[i], fx.a, fx.b); err != nil {
			t.Fatalf("request %d through the kill/heal cycle: %v", i, err)
		}
	}
	st := s.Stats()
	s.Close()
	inj := cw.Injected()
	if inj.Crashes != 1 || inj.Heals != 1 {
		t.Fatalf("cycle did not complete: %+v", inj)
	}
	if cw.RankFailed(1) {
		t.Fatal("rank 1 still failed after the heal")
	}
	if st.Recovered < 1 {
		t.Fatalf("no batch recovered across the cycle: %+v", st)
	}
	if st.Failed != 0 || st.Tripped != 0 {
		t.Fatalf("cycle leaked into failure accounting: %+v", st)
	}
	checkResults(t, w, []*tenantFixture{fx})
	if live := pool.Stats().Live; live != 0 {
		t.Fatalf("%d pooled elements leaked across the cycle", live)
	}
}

// TestServeRecoverRequiresCache pins that failover is a compiled-plan
// feature: under NoCache the Recover flag is inert and no membership
// view is created.
func TestServeRecoverRequiresCache(t *testing.T) {
	w, _ := chaosWorld(&chaos.Plan{Seed: 1})
	s := NewServer(w, Config{NoCache: true, Recover: true})
	defer s.Close()
	if s.cfg.Recover || s.member != nil {
		t.Fatal("Recover survived NoCache")
	}
}
