package serve

import (
	"errors"
	"time"
)

// Degradation errors returned by Multiply at admission.
var (
	// ErrCircuitOpen reports that the tenant's circuit breaker is open:
	// its recent requests failed consecutively (fatal execution faults or
	// missed deadlines) and the server is refusing new work for the
	// tenant until a half-open probe succeeds. Callers should back off
	// for at least the breaker cooldown.
	ErrCircuitOpen = errors.New("serve: tenant circuit breaker open")
	// ErrShed reports deadline-aware load shedding: the request carries a
	// deadline the server projects it cannot meet from the back of the
	// current queue, so it is rejected immediately instead of burning a
	// batch slot on a result nobody can use.
	ErrShed = errors.New("serve: request shed, projected completion past deadline")
)

// BreakerConfig tunes the per-tenant circuit breakers.
type BreakerConfig struct {
	// Threshold is the number of consecutive failures (fatal execution
	// errors or deadline expiries during execution) that trips a tenant's
	// breaker open. 0 selects the default of 5; negative disables the
	// breakers entirely.
	Threshold int
	// Cooldown is how long a tripped breaker rejects admissions before
	// letting one half-open probe request through. 0 selects the default
	// of 250ms.
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold == 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 250 * time.Millisecond
	}
	return c
}

// breaker state constants: the classic three-state machine.
type breakerState uint8

const (
	brkClosed breakerState = iota
	brkOpen
	brkHalfOpen
)

// breaker is one tenant's circuit breaker. All fields are guarded by the
// server mutex — transitions only happen at admission and at batch
// completion, both already under it.
type breaker struct {
	state       breakerState
	consecFails int
	openedAt    time.Time
	// probing is true while the half-open probe request is in flight;
	// other admissions keep rejecting until it resolves.
	probing bool
}

// admit decides whether the breaker lets a request through at admission
// time; probe reports that the request is the half-open probe (the caller
// must mark the request so cancellation can release the slot).
func (b *breaker) admit(cfg BreakerConfig, now time.Time) (ok, probe bool) {
	switch b.state {
	case brkOpen:
		if now.Sub(b.openedAt) < cfg.Cooldown {
			return false, false
		}
		b.state = brkHalfOpen
		b.probing = true
		return true, true
	case brkHalfOpen:
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	default:
		return true, false
	}
}

// success records a completed request that met its deadline: failure
// streaks reset and a half-open breaker closes.
func (b *breaker) success() {
	b.consecFails = 0
	if b.state != brkClosed {
		b.state = brkClosed
		b.probing = false
	}
}

// failure records a fatal or deadline failure, reporting whether this
// transition tripped the breaker open (from closed via the threshold, or
// a failed half-open probe re-opening).
func (b *breaker) failure(cfg BreakerConfig, now time.Time) (tripped bool) {
	switch b.state {
	case brkHalfOpen:
		b.state = brkOpen
		b.openedAt = now
		b.probing = false
		return true
	case brkClosed:
		b.consecFails++
		if b.consecFails >= cfg.Threshold {
			b.state = brkOpen
			b.openedAt = now
			return true
		}
	}
	return false
}

// releaseProbe undoes a probe admission that never executed (cancelled or
// drained while queued), so the next admission can probe instead.
func (b *breaker) releaseProbe() { b.probing = false }

// ewmaAlpha weights the batch-duration moving average used for load
// shedding: high enough to track a degrading world within a few batches,
// low enough that one slow batch doesn't shed the next wave.
const ewmaAlpha = 0.25

// projectedWait estimates how long a request admitted now will wait until
// its batch completes: the queue ahead of it, in units of batches, each
// costing the observed average batch duration. Zero until the first batch
// has been measured.
func projectedWait(batchEWMA float64, queued, batchSize int) time.Duration {
	if batchEWMA <= 0 {
		return 0
	}
	batches := 1 + queued/batchSize
	return time.Duration(float64(batches) * batchEWMA * float64(time.Second))
}
