package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"slicing/internal/distmat"
	"slicing/internal/gpusim"
	rt "slicing/internal/runtime"
	"slicing/internal/shmem"
	"slicing/internal/simbackend"
	"slicing/internal/simnet"
	"slicing/internal/universal"
)

// hammer drives tenants×perTenant concurrent requests through one server
// and verifies every result against the serial reference. Run with -race:
// this is the concurrency contract of the whole serving stack — admission,
// batching, the shared plan cache, and the pooled executor.
func hammer(t *testing.T, w rt.World, tenants, perTenant int) {
	t.Helper()
	var fixtures []*tenantFixture
	shapes := [][3]int{{24, 20, 16}, {17, 23, 19}, {32, 8, 24}, {11, 13, 29}}
	for i := 0; i < tenants; i++ {
		sh := shapes[i%len(shapes)]
		fixtures = append(fixtures,
			makeTenant(w, fmt.Sprintf("tenant-%d", i), sh[0], sh[1], sh[2], perTenant, int64(100*i+1)))
	}
	pool := gpusim.NewPool()
	s := NewServer(w, Config{
		Batch: 4, Queue: tenants * perTenant,
		Exec: universal.Config{Pool: pool},
	})
	var wg sync.WaitGroup
	for _, f := range fixtures {
		for _, c := range f.cs {
			wg.Add(1)
			go func(f *tenantFixture, c *distmat.Matrix) {
				defer wg.Done()
				if _, err := s.Multiply(context.Background(), f.name, c, f.a, f.b); err != nil {
					t.Errorf("tenant %s: %v", f.name, err)
				}
			}(f, c)
		}
	}
	wg.Wait()
	st := s.Stats()
	s.Close()
	checkResults(t, w, fixtures)
	if want := int64(tenants * perTenant); st.Served != want {
		t.Fatalf("served %d, want %d", st.Served, want)
	}
	if live := pool.Stats().Live; live != 0 {
		t.Fatalf("%d pooled elements leaked across the hammer", live)
	}
}

func hammerScale() (tenants, perTenant int) {
	if raceEnabled || testing.Short() {
		return 3, 3
	}
	return 4, 6
}

func TestServeHammerShmem(t *testing.T) {
	tenants, perTenant := hammerScale()
	hammer(t, shmem.NewWorld(4), tenants, perTenant)
}

func TestServeHammerSimbackend(t *testing.T) {
	const p = 4
	tenants, perTenant := hammerScale()
	topo := simnet.NewUniform(p, 100e9, 1e12, 1e-6, "stress")
	w := simbackend.New(topo, gpusim.PresetPVCDevice()).NewWorld(p)
	hammer(t, w, tenants, perTenant)
}

// A storm of deadline-cancelled requests interleaved with healthy ones must
// never corrupt the cached plan or leak a pooled buffer: afterwards the
// server still serves bit-sane results and the pool balances to zero.
func TestServeCancellationStorm(t *testing.T) {
	const p = 4
	w := shmem.NewWorld(p)
	f := makeTenant(w, "healthy", 24, 20, 16, 3, 900)
	storm := makeTenant(w, "storm", 24, 20, 16, 1, 901)
	pool := gpusim.NewPool()
	s := NewServer(w, Config{
		Batch: 2, Queue: 64,
		Exec: universal.Config{Pool: pool},
	})

	n := 30
	if raceEnabled || testing.Short() {
		n = 12
	}
	var wg sync.WaitGroup
	var cancelled, completed int64
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Deadlines from already-expired to comfortably long: some die
			// in the queue, some mid-wait, some complete.
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%5)*500*time.Microsecond)
			defer cancel()
			_, err := s.Multiply(ctx, "storm", storm.cs[0], storm.a, storm.b)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				completed++
			case errors.Is(err, context.DeadlineExceeded):
				cancelled++
			default:
				t.Errorf("storm request %d: %v", i, err)
			}
		}(i)
	}
	// Healthy traffic through the storm.
	for _, c := range f.cs {
		wg.Add(1)
		go func(c *distmat.Matrix) {
			defer wg.Done()
			if _, err := s.Multiply(context.Background(), "healthy", c, f.a, f.b); err != nil {
				t.Errorf("healthy request: %v", err)
			}
		}(c)
	}
	wg.Wait()

	// The cache must still serve a correct multiply after the storm: a
	// cancelled request must not have poisoned the compiled plan.
	post := distmat.New(w, 24, 20, distmat.Block2D{}, 1)
	// The matrix was created after serving began; quiesce before using it.
	if _, err := s.Multiply(context.Background(), "healthy", post, f.a, f.b); err != nil {
		t.Fatalf("post-storm request: %v", err)
	}
	st := s.Stats()
	s.Close()
	checkResults(t, w, []*tenantFixture{f, {name: "post", cs: []*distmat.Matrix{post}, ref: f.ref}})

	if st.Tenants["healthy"].Served != int64(len(f.cs))+1 {
		t.Fatalf("healthy tenant served %d", st.Tenants["healthy"].Served)
	}
	if completed+cancelled != int64(n) {
		t.Fatalf("storm outcomes: %d completed + %d deadline-exceeded != %d", completed, cancelled, n)
	}
	// Requests that returned nil are exactly the ones served within their
	// deadline. Expired counts both late completions and fast-fails that
	// were already past deadline at admission, and Cancelled the ones
	// removed from the queue, so the count of in-time completions is what
	// remains of the storm after both.
	storm1 := st.Tenants["storm"]
	if got := int64(n) - storm1.Cancelled - storm1.Expired; got != completed {
		t.Fatalf("storm accounting: %d - cancelled %d - expired %d != %d client completions",
			int64(n), storm1.Cancelled, storm1.Expired, completed)
	}
	if live := pool.Stats().Live; live != 0 {
		t.Fatalf("%d pooled elements leaked across the storm", live)
	}
	// Exactly one shape was ever requested → exactly one compilation.
	if st.PlanCache.Builds != 1 {
		t.Fatalf("storm caused %d compilations, want 1", st.PlanCache.Builds)
	}
}
