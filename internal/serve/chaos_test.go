package serve

// Serving-loop chaos acceptance tests (PR 8): the seeded fault storm of
// ISSUE.md — 1% transient get/accumulate failures plus one mid-run
// degraded rail over 4 PEs, 64 clients, 4 tenants — must keep
// availability at 99%+ with every completed result still correct; a
// PE-crash rule must trip the tenant's breaker and drain cleanly with no
// leaked pool slots; shedding and admission fast-fail cover the
// degradation ladder. Run with -race: this is also the concurrency
// contract of the chaos decorator under real serving load.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"slicing/internal/chaos"
	"slicing/internal/distmat"
	"slicing/internal/fabric"
	"slicing/internal/gpusim"
	rt "slicing/internal/runtime"
	"slicing/internal/shmem"
	"slicing/internal/universal"
)

// chaosWorld wraps a fresh 4-PE shmem world in the fault injector. The
// fabric only exists as the DegradeRail target (shmem moves bytes through
// local memory), mirroring a serving deployment where the rail model is
// priced elsewhere.
func chaosWorld(plan *chaos.Plan) (rt.World, *chaos.World) {
	w := chaos.WrapWorld(shmem.NewWorld(4), plan)
	cw, _ := chaos.Of(w)
	return w, cw
}

// TestServeChaosStormAvailability is the headline acceptance storm.
func TestServeChaosStormAvailability(t *testing.T) {
	f := fabric.SingleSwitch(4, 100e9, 1e12, 1e-6, "serve-chaos")
	rail := f.LinkID("pe2.up")
	healthyBW := f.LinkBandwidth(rail)
	plan := &chaos.Plan{
		Seed: 2024,
		Rules: []chaos.Rule{
			{Name: "get-storm", Ops: chaos.OpGet, Rate: 0.01},
			{Name: "accum-storm", Ops: chaos.OpAccum, Rate: 0.01},
			// One rail degrades mid-run: first get past the warm-up on any
			// rank pulls the trigger, the once-latch keeps it single-shot.
			{Name: "rail-down", Kind: chaos.DegradeRail, Ops: chaos.OpGet,
				Rate: 1, After: 20, Link: "pe2.up", Factor: 0.5},
		},
		Fabric: f,
	}
	w, cw := chaosWorld(plan)
	const tenants, perTenant = 4, 16
	shapes := [][3]int{{24, 20, 16}, {17, 23, 19}, {32, 8, 24}, {11, 13, 29}}
	var fixtures []*tenantFixture
	for i := 0; i < tenants; i++ {
		sh := shapes[i%len(shapes)]
		fixtures = append(fixtures,
			makeTenant(w, fmt.Sprintf("tenant-%d", i), sh[0], sh[1], sh[2], perTenant, int64(500*i+7)))
	}
	pool := gpusim.NewPool()
	s := NewServer(w, Config{
		Batch: 8, Queue: tenants * perTenant,
		Exec: universal.Config{Pool: pool},
	})

	// 64 concurrent clients, one request each.
	type outcome struct {
		f   *tenantFixture
		idx int
		err error
	}
	outcomes := make([]outcome, 0, tenants*perTenant)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, fx := range fixtures {
		for i, c := range fx.cs {
			wg.Add(1)
			go func(fx *tenantFixture, i int, c *distmat.Matrix) {
				defer wg.Done()
				_, err := s.Multiply(context.Background(), fx.name, c, fx.a, fx.b)
				mu.Lock()
				outcomes = append(outcomes, outcome{fx, i, err})
				mu.Unlock()
			}(fx, i, c)
		}
	}
	wg.Wait()
	st := s.Stats()
	s.Close()

	total, completed := len(outcomes), 0
	for _, o := range outcomes {
		if o.err == nil {
			completed++
		} else if !errors.Is(o.err, rt.ErrTransient) {
			t.Errorf("tenant %s request %d failed non-transiently: %v", o.f.name, o.idx, o.err)
		}
	}
	if avail := 100 * float64(completed) / float64(total); avail < 99 {
		t.Fatalf("availability %.2f%% under the storm, want >= 99%%", avail)
	}
	// Every completed result must match the serial reference within 1e-4:
	// retries are invisible to correctness.
	w.Run(func(pe rt.PE) {
		if pe.Rank() != 0 {
			return
		}
		for _, o := range outcomes {
			if o.err != nil {
				continue
			}
			if d := maxRelDiff(o.f.ref, o.f.cs[o.idx].Gather(pe, 0)); d > 1e-4 {
				t.Errorf("tenant %s request %d: max rel diff %g under storm", o.f.name, o.idx, d)
			}
		}
	})

	inj := cw.Injected()
	if inj.Transient == 0 || st.Retries == 0 {
		t.Errorf("storm exercised nothing: injected %+v, retries %d", inj, st.Retries)
	}
	if inj.Degrades != 1 {
		t.Errorf("rail degraded %d times, want exactly once", inj.Degrades)
	}
	if got, want := f.LinkBandwidth(rail), healthyBW*0.5; got != want {
		t.Errorf("rail bandwidth %g after storm, want %g", got, want)
	}
	if live := pool.Stats().Live; live != 0 {
		t.Errorf("%d pooled elements leaked across the storm", live)
	}
	// Same seed, same workload: the fault schedule is the set of fired
	// (rule, rank, class, seq) tuples, which a second identical run of the
	// decision function must reproduce exactly.
	for _, fire := range cw.Fires() {
		// Every logged fire must be re-derivable from the pure decision.
		idx := -1
		for i := range plan.Rules {
			if plan.Rules[i].Name == fire.Rule {
				idx = i
			}
		}
		if idx < 0 || !plan.Decide(idx, fire.Rank, fire.Seq) {
			t.Fatalf("logged fire %v is not reproducible from the plan", fire)
		}
	}
}

// TestServeBreakerTripsAndRecovers drives one tenant through fail → trip
// → reject → half-open probe → close, sequentially so the fire budget is
// consumed deterministically: a rate-1 transient rule with 6 fires per
// rank exhausts the 3-attempt retry budget on exactly the first two
// requests.
func TestServeBreakerTripsAndRecovers(t *testing.T) {
	plan := &chaos.Plan{Seed: 9, Rules: []chaos.Rule{
		{Name: "burst", Rate: 1, MaxFires: 6},
	}}
	w, _ := chaosWorld(plan)
	fx := makeTenant(w, "victim", 17, 23, 19, 6, 41)
	pool := gpusim.NewPool()
	s := NewServer(w, Config{
		Batch: 1, Queue: 16,
		Breaker: BreakerConfig{Threshold: 2, Cooldown: 25 * time.Millisecond},
		Exec:    universal.Config{Pool: pool},
	})
	req := func(i int) error {
		_, err := s.Multiply(context.Background(), fx.name, fx.cs[i], fx.a, fx.b)
		return err
	}
	for i := 0; i < 2; i++ {
		if err := req(i); !errors.Is(err, rt.ErrTransient) {
			t.Fatalf("request %d under the burst: %v (want exhausted transient budget)", i, err)
		}
	}
	// Two consecutive fatal failures = Threshold: the breaker is open.
	if err := req(2); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("request while tripped: %v, want ErrCircuitOpen", err)
	}
	time.Sleep(30 * time.Millisecond)
	// Cooldown elapsed: this request is the half-open probe. The burst
	// rule is out of fires, so it succeeds and closes the breaker.
	if err := req(3); err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if err := req(4); err != nil {
		t.Fatalf("request after recovery: %v", err)
	}
	st := s.Stats()
	s.Close()
	ten := st.Tenants["victim"]
	if ten.Failed != 2 || ten.Tripped != 1 || ten.Served != 2 || ten.Shed != 1 {
		t.Fatalf("breaker accounting: %+v", ten)
	}
	if st.Failed != 2 || st.Tripped != 1 {
		t.Fatalf("global accounting: failed %d tripped %d", st.Failed, st.Tripped)
	}
	// The two recovered requests must be correct.
	w.Run(func(pe rt.PE) {
		if pe.Rank() != 0 {
			return
		}
		for _, i := range []int{3, 4} {
			if d := maxRelDiff(fx.ref, fx.cs[i].Gather(pe, 0)); d > 1e-4 {
				t.Errorf("post-recovery request %d: max rel diff %g", i, d)
			}
		}
	})
	if live := pool.Stats().Live; live != 0 {
		t.Fatalf("%d pooled elements leaked across the trip", live)
	}
}

// TestServePECrashTripsBreakerWithoutLeaks pins the acceptance criterion
// verbatim: after a PE-crash rule fires, requests fail with ErrPEFailed,
// the tenant's breaker trips, nothing deadlocks, and the pool balances.
func TestServePECrashTripsBreakerWithoutLeaks(t *testing.T) {
	plan := &chaos.Plan{Seed: 3, Rules: []chaos.Rule{
		{Name: "die", Kind: chaos.Crash, Ranks: []int{1}, Rate: 1, After: 2},
	}}
	w, cw := chaosWorld(plan)
	fx := makeTenant(w, "doomed", 24, 20, 16, 4, 77)
	pool := gpusim.NewPool()
	s := NewServer(w, Config{
		Batch: 1, Queue: 16,
		Breaker: BreakerConfig{Threshold: 2, Cooldown: time.Minute},
		Exec:    universal.Config{Pool: pool},
	})
	var sawCrash bool
	for i := 0; i < 4; i++ {
		_, err := s.Multiply(context.Background(), fx.name, fx.cs[i], fx.a, fx.b)
		switch {
		case errors.Is(err, rt.ErrPEFailed):
			sawCrash = true
		case errors.Is(err, ErrCircuitOpen):
		case err == nil && !cw.Crashed(1):
			// The first request may complete before the crash rule's After
			// threshold is crossed; once the rank is crashed, success is a
			// bug.
		default:
			t.Fatalf("request %d after PE crash: %v", i, err)
		}
	}
	st := s.Stats()
	s.Close() // must return: no wedged batch loop behind the crash
	if !sawCrash || !cw.Crashed(1) {
		t.Fatal("crash rule never surfaced as ErrPEFailed")
	}
	if st.Tenants["doomed"].Tripped != 1 {
		t.Fatalf("breaker accounting after crash: %+v", st.Tenants["doomed"])
	}
	if live := pool.Stats().Live; live != 0 {
		t.Fatalf("%d pooled elements leaked across the crash", live)
	}
}

// TestServeShedsDoomedDeadlines: with shedding on, a request whose
// deadline is closer than one EWMA batch duration is rejected at
// admission with ErrShed instead of burning a batch slot.
func TestServeShedsDoomedDeadlines(t *testing.T) {
	// A delay rule makes the measured batch duration large and reliable:
	// the warm-up request's gets sleep 4ms each.
	plan := &chaos.Plan{Seed: 6, Rules: []chaos.Rule{
		{Name: "slow", Kind: chaos.Delay, Ops: chaos.OpGet, Rate: 1, Delay: 4 * time.Millisecond, MaxFires: 2},
	}}
	w, _ := chaosWorld(plan)
	fx := makeTenant(w, "rush", 17, 23, 19, 3, 55)
	pool := gpusim.NewPool()
	s := NewServer(w, Config{
		Batch: 1, Queue: 16, Shed: true,
		Exec: universal.Config{Pool: pool},
	})
	// Warm-up: measures a batch EWMA of several milliseconds.
	if _, err := s.Multiply(context.Background(), fx.name, fx.cs[0], fx.a, fx.b); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	// A 1ms deadline cannot survive a projected multi-ms wait: shed.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := s.Multiply(ctx, fx.name, fx.cs[1], fx.a, fx.b); !errors.Is(err, ErrShed) {
		t.Fatalf("doomed-deadline request: %v, want ErrShed", err)
	}
	// No deadline, no shedding.
	if _, err := s.Multiply(context.Background(), fx.name, fx.cs[2], fx.a, fx.b); err != nil {
		t.Fatalf("deadline-free request after shed: %v", err)
	}
	st := s.Stats()
	s.Close()
	ten := st.Tenants["rush"]
	if ten.Shed != 1 || ten.Served != 2 {
		t.Fatalf("shed accounting: %+v", ten)
	}
}

// TestServeExpiredAtAdmission: a request already past its deadline (or
// cancelled) fast-fails inside Multiply without touching the queue, and
// lands in Expired.
func TestServeExpiredAtAdmission(t *testing.T) {
	w := shmem.NewWorld(4)
	fx := makeTenant(w, "late", 24, 20, 16, 2, 13)
	s := NewServer(w, Config{Batch: 1, Queue: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Multiply(ctx, fx.name, fx.cs[0], fx.a, fx.b); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled request: %v", err)
	}
	if _, err := s.Multiply(context.Background(), fx.name, fx.cs[1], fx.a, fx.b); err != nil {
		t.Fatalf("healthy request: %v", err)
	}
	st := s.Stats()
	s.Close()
	ten := st.Tenants["late"]
	if ten.Expired != 1 || ten.Served != 1 || st.Expired != 1 {
		t.Fatalf("admission fast-fail accounting: tenant %+v global expired %d", ten, st.Expired)
	}
}
