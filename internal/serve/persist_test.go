package serve

import (
	"context"
	"testing"

	"slicing/internal/shmem"
	"slicing/internal/universal"
)

// A server's compiled plans must survive a restart through PlanCacheFile:
// the first server compiles and saves on Close, the second warm-starts and
// serves the same shapes with zero builds.
func TestServePlanCacheFileWarmStart(t *testing.T) {
	const p = 4
	path := t.TempDir() + "/plans.json"

	w1 := shmem.NewWorld(p)
	f1 := makeTenant(w1, "alpha", 48, 40, 56, 2, 1)
	cache1 := universal.NewPlanCache(16)
	s1 := NewServer(w1, Config{
		Exec:          universal.Config{Plans: cache1},
		PlanCacheFile: path,
	})
	if loaded, err := s1.PlanCachePersistence(); loaded != 0 || err != nil {
		t.Fatalf("cold start reported (%d, %v), want (0, nil)", loaded, err)
	}
	for _, c := range f1.cs {
		if _, err := s1.Multiply(context.Background(), "alpha", c, f1.a, f1.b); err != nil {
			t.Fatalf("Multiply: %v", err)
		}
	}
	builds := cache1.Stats().Builds
	if builds == 0 {
		t.Fatal("first server compiled no plans")
	}
	s1.Close()
	if _, err := s1.PlanCachePersistence(); err != nil {
		t.Fatalf("save on Close failed: %v", err)
	}
	checkResults(t, w1, []*tenantFixture{f1})

	// Second process: same shapes over a fresh world and cache.
	w2 := shmem.NewWorld(p)
	f2 := makeTenant(w2, "alpha", 48, 40, 56, 2, 7)
	cache2 := universal.NewPlanCache(16)
	s2 := NewServer(w2, Config{
		Exec:          universal.Config{Plans: cache2},
		PlanCacheFile: path,
	})
	loaded, err := s2.PlanCachePersistence()
	if err != nil {
		t.Fatalf("warm start: %v", err)
	}
	if int64(loaded) != builds {
		t.Fatalf("warm start loaded %d plans, first server built %d", loaded, builds)
	}
	for _, c := range f2.cs {
		if _, err := s2.Multiply(context.Background(), "alpha", c, f2.a, f2.b); err != nil {
			t.Fatalf("warm Multiply: %v", err)
		}
	}
	if got := cache2.Stats().Builds; got != 0 {
		t.Fatalf("warm server compiled %d plans, want 0", got)
	}
	s2.Close()
	checkResults(t, w2, []*tenantFixture{f2})
}

// NoCache neuters PlanCacheFile: nothing to warm, nothing to save.
func TestServePlanCacheFileNoCache(t *testing.T) {
	path := t.TempDir() + "/plans.json"
	w := shmem.NewWorld(2)
	s := NewServer(w, Config{NoCache: true, PlanCacheFile: path})
	if loaded, err := s.PlanCachePersistence(); loaded != 0 || err != nil {
		t.Fatalf("NoCache persistence = (%d, %v)", loaded, err)
	}
	s.Close()
	if c := universal.NewPlanCache(4); func() int { n, _ := c.LoadFile(path); return n }() != 0 {
		t.Fatal("NoCache server wrote a plan cache file")
	}
}
