// Package serve is the multiply-as-a-service layer: a long-lived Server
// that multiplexes concurrent multiply requests from many tenants over one
// PE world. It is the serving-side counterpart of the compiled-plan cache
// in internal/universal — plans are compiled once per distinct problem
// structure and re-executed for every request that matches, so the steady
// state of a serving workload runs zero slicing work per request.
//
// Architecture (docs/SERVING.md is the prose contract):
//
//   - Admission: each tenant has a bounded FIFO queue (Config.Queue).
//     Multiply enqueues or fails fast with ErrQueueFull — backpressure is
//     explicit, never unbounded buffering.
//   - Fairness: the dispatcher drains tenant queues round-robin (one
//     request per tenant per turn, rotating the starting tenant), so a
//     flooding tenant cannot starve the others.
//   - Batching: up to Config.Batch admitted requests are fused into one
//     collective activation of the world — one World.Run spawning P PEs
//     zeroes every result, barriers once, executes every request's compiled
//     plan back-to-back, and barriers once more. Requests in a batch have
//     distinct result matrices (the dispatcher defers duplicates), so their
//     one-sided accumulates commute and the fused batch needs no
//     per-request synchronization: activation, barrier, and plan-lookup
//     costs amortize across the group's small GEMMs.
//   - Deadlines/cancellation: a request whose context is done while still
//     queued is removed and never executes. Once admitted to a batch the
//     collective execution always runs to completion (a collective cannot
//     be safely aborted per request) — the caller then gets ctx.Err() and
//     the late result is discarded, with no effect on cached plans or
//     pooled buffers.
//   - Accounting: per-tenant traffic is measured through the existing
//     runtime.Stats hooks — rank 0 snapshots the world's counters around
//     each fused batch and attributes the delta to the batch's requests in
//     equal shares (requests inside a fused batch are deliberately not
//     separated by barriers, so finer attribution would cost the very
//     synchronization the fusion removes).
//
// The server owns its world for the duration of serving: no other code may
// call World.Run (or mutate served matrices) while the server is open.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"slicing/internal/distmat"
	"slicing/internal/gpusim"
	rt "slicing/internal/runtime"
	"slicing/internal/universal"
)

// Errors returned by Multiply.
var (
	// ErrQueueFull reports that the tenant's admission queue is at
	// capacity; the caller should back off and retry.
	ErrQueueFull = errors.New("serve: tenant admission queue full")
	// ErrClosed reports that the server is closed.
	ErrClosed = errors.New("serve: server closed")
)

// Config tunes a Server.
type Config struct {
	// Queue bounds each tenant's admission queue (default 64). A full
	// queue rejects with ErrQueueFull rather than buffering unboundedly.
	Queue int
	// Batch is the maximum number of requests fused into one collective
	// world activation (default 8). Within a batch, requests share the
	// activation's two barriers instead of paying their own.
	Batch int
	// Exec is the execution config template for every request. Its Plans
	// and Pool fields are managed by the server: Plans is wired to the
	// world's shared plan cache (universal.PlansOf) unless NoCache is set
	// or Exec.Plans is already non-nil; a nil Pool gets one shared pool
	// for the server's lifetime.
	Exec universal.Config
	// NoCache disables the compiled-plan cache, forcing every request to
	// rebuild its plans per rank — the naive pre-serving behaviour, kept
	// as the benchmark baseline.
	NoCache bool
	// Breaker tunes the per-tenant circuit breakers (docs/RESILIENCE.md):
	// a tenant whose requests keep failing fatally or missing their
	// deadlines is fenced off with ErrCircuitOpen until a half-open probe
	// succeeds, so a poisoned workload cannot keep burning batch slots.
	// Threshold < 0 disables them.
	Breaker BreakerConfig
	// Shed enables deadline-aware load shedding: a request whose context
	// deadline is closer than the projected queue wait (queue depth in
	// batches × the EWMA batch duration) is rejected at admission with
	// ErrShed instead of executing past its deadline.
	Shed bool
	// PlanCacheFile, when non-empty, persists the compiled-plan cache
	// across processes: the server warm-starts by loading the file at
	// construction (a missing file is fine — first run), and saves the
	// cache back on Close. Ignored under NoCache. Load/save outcomes are
	// reported by PlanCachePersistence, not surfaced as serving errors: a
	// cold start is a performance event, never a correctness one.
	PlanCacheFile string
	// Recover enables failover in the serving loop: when a fused batch
	// dies with a fatal PE fault, the dispatcher syncs its membership view
	// against the world's health reporter, recompiles the batch's plans
	// with the crashed ranks excluded (repair plans are ordinary plan-cache
	// entries — PlanKey carries the exclusion set), and replays the whole
	// batch. The replay re-zeroes every result matrix first, so per-tenant
	// order and the disjoint-accumulate invariant hold exactly as on the
	// first attempt. Recovered batches count as Served (plus Recovered);
	// only failures the recovery path could not absorb feed the circuit
	// breakers. Healed ranks are re-included before the next batch.
	// Requires the compiled-plan cache: ignored under NoCache.
	Recover bool
}

func (cfg Config) withDefaults(w rt.World) Config {
	if cfg.Queue <= 0 {
		cfg.Queue = 64
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 8
	}
	cfg.Breaker = cfg.Breaker.withDefaults()
	if cfg.NoCache {
		// Failover recompiles against the surviving world through the
		// compiled-plan cache; the naive path has no plans to repair.
		cfg.Recover = false
	}
	if cfg.Exec.Retry.Retries == nil {
		// The server owns a retry counter so Stats can report the world's
		// transparently-recovered faults (every Config copy shares it).
		cfg.Exec.Retry.Retries = new(atomic.Int64)
	}
	if cfg.NoCache {
		cfg.Exec.Plans = nil
	} else if cfg.Exec.Plans == nil {
		cfg.Exec.Plans = universal.PlansOf(w)
	}
	if cfg.Exec.Pool == nil {
		// One pool for the server's lifetime, shared by all PEs (Pool is
		// mutex-protected): steady-state serving recycles buffers across
		// requests instead of allocating a fresh pool per call.
		cfg.Exec.Pool = gpusim.NewPool()
	}
	return cfg
}

// request is one tenant multiply in flight.
type request struct {
	ctx     context.Context
	tenant  *tenant
	prob    universal.Problem
	stat    universal.Stationary
	traffic rt.Stats
	err     error
	done    chan struct{}
	queued  time.Time
	// inQueue is true while the request sits in its tenant's queue and can
	// still be cancelled; guarded by the server mutex.
	inQueue bool
	// probe marks the tenant breaker's half-open probe request; guarded by
	// the server mutex.
	probe bool
}

// tenant is one traffic source: a bounded FIFO of pending requests plus
// accounting and its circuit breaker.
type tenant struct {
	name  string
	queue []*request
	stats TenantStats
	brk   breaker
}

// TenantStats is one tenant's accounting snapshot.
type TenantStats struct {
	// Served counts requests executed to completion (including ones whose
	// deadline expired mid-execution; those also count in Expired).
	// Rejected counts ErrQueueFull admissions, Cancelled requests removed
	// from the queue before execution, Expired requests whose deadline
	// passed before admission or that completed after their context was
	// done.
	Served, Rejected, Cancelled, Expired int64
	// Failed counts requests whose fused batch hit a fatal one-sided
	// fault the recovery path could not absorb (every request of the
	// batch fails — there is no telling which results the fault
	// poisoned). Shed counts admissions rejected by deadline-aware load
	// shedding or an open circuit breaker. Tripped counts this tenant's
	// breaker trips (including failed half-open probes re-opening it).
	// Recovered counts served requests whose batch hit a fatal fault that
	// failover absorbed (Config.Recover): they also count in Served, and
	// they feed the breaker's success path, not its failure path.
	Failed, Shed, Tripped, Recovered int64
	// Traffic aggregates the runtime.Stats deltas attributed to this
	// tenant's executed requests.
	Traffic rt.Stats
	// QueueSeconds totals time served requests spent from enqueue to
	// completion.
	QueueSeconds float64
}

// Stats is a server-wide accounting snapshot.
type Stats struct {
	Served, Rejected, Cancelled, Expired int64
	// Failed, Shed, Tripped aggregate the per-tenant fault accounting
	// (see TenantStats); Retries counts one-sided op retries the executor
	// performed transparently on the server's behalf — recovered faults
	// that never surfaced to any caller.
	Failed, Shed, Tripped, Retries int64
	// Recovered aggregates per-tenant recovered requests (Config.Recover);
	// Replans counts plan recompilations the failover path performed
	// against a shrunken world, and ReplanMs their individual durations in
	// milliseconds (lookup-through-recompile, per failover attempt) —
	// the recovery cost axis of the availability story.
	Recovered, Replans int64
	ReplanMs           []float64
	// Batches counts collective activations; BatchedRequests their total
	// request count (BatchedRequests/Batches is the realized batch size).
	Batches, BatchedRequests int64
	// PlanCache snapshots the compiled-plan cache (zero when NoCache).
	PlanCache universal.PlanCacheStats
	// Tenants holds per-tenant snapshots keyed by tenant name.
	Tenants map[string]TenantStats
}

// Server multiplexes multiply requests from many tenants over one world.
// Create with NewServer, submit with Multiply (any goroutine), stop with
// Close.
type Server struct {
	world rt.World
	cfg   Config

	mu      sync.Mutex
	tenants map[string]*tenant
	names   []string // sorted tenant names, the round-robin ring
	rrPos   int
	closed  bool

	served, rejected, cancelled, expired int64
	failed, shed, tripped                int64
	recovered, replans                   int64
	replanMs                             []float64
	batches, batchedRequests             int64

	// member is the failover path's health view of the world's ranks,
	// non-nil only under Config.Recover; the dispatcher syncs it against
	// the world's HealthReporter around every batch. Dispatcher-only.
	member *rt.Membership
	// batchEWMA is the exponentially-weighted average batch duration in
	// seconds, the load-shedding wait model; guarded by mu.
	batchEWMA float64

	wake chan struct{}
	quit chan struct{}
	wg   sync.WaitGroup

	// Plan-cache persistence outcome (see Config.PlanCacheFile): how many
	// plans the warm start loaded, and the first load/save error; guarded
	// by mu after construction.
	warmLoaded int
	persistErr error
}

// NewServer creates a server over w and starts its dispatcher. The server
// assumes exclusive use of w until Close.
func NewServer(w rt.World, cfg Config) *Server {
	s := newServer(w, cfg)
	s.Start()
	return s
}

// newServer builds a server without starting the dispatcher; tests use it
// to stage deterministic queue states before serving begins.
func newServer(w rt.World, cfg Config) *Server {
	s := &Server{
		world:   w,
		cfg:     cfg.withDefaults(w),
		tenants: make(map[string]*tenant),
		wake:    make(chan struct{}, 1),
		quit:    make(chan struct{}),
	}
	if s.cfg.PlanCacheFile != "" && s.cfg.Exec.Plans != nil {
		s.warmLoaded, s.persistErr = s.cfg.Exec.Plans.LoadFile(s.cfg.PlanCacheFile)
	}
	if s.cfg.Recover {
		s.member = rt.NewMembership(w.NumPE())
	}
	return s
}

// Start launches the dispatcher. It is called by NewServer; calling it
// twice is a bug.
func (s *Server) Start() {
	s.wg.Add(1)
	go s.loop()
}

// Close stops the server: queued requests fail with ErrClosed, the current
// batch (if any) completes, and the dispatcher exits. Subsequent Multiply
// calls fail with ErrClosed. Close is idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.quit)
	s.wg.Wait()
	if s.cfg.PlanCacheFile != "" && s.cfg.Exec.Plans != nil {
		if err := s.cfg.Exec.Plans.SaveFile(s.cfg.PlanCacheFile); err != nil {
			s.mu.Lock()
			if s.persistErr == nil {
				s.persistErr = err
			}
			s.mu.Unlock()
		}
	}
}

// PlanCachePersistence reports the plan-cache file outcome: how many plans
// the warm start loaded at construction, and the first load or save error
// (nil when persistence is disabled or everything worked).
func (s *Server) PlanCachePersistence() (loaded int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.warmLoaded, s.persistErr
}

// validate checks a request's operands against the server's world before
// Problem construction (which panics on contract violations — a serving
// surface must return errors instead).
func (s *Server) validate(c, a, b *distmat.Matrix) error {
	if c == nil || a == nil || b == nil {
		return errors.New("serve: nil operand matrix")
	}
	if a.World() != s.world || b.World() != s.world || c.World() != s.world {
		return errors.New("serve: operands must live in the server's world")
	}
	if a.Cols() != b.Rows() || c.Rows() != a.Rows() || c.Cols() != b.Cols() {
		return fmt.Errorf("serve: shape mismatch C %dx%d = A %dx%d * B %dx%d",
			c.Rows(), c.Cols(), a.Rows(), a.Cols(), b.Rows(), b.Cols())
	}
	return nil
}

// Multiply submits C = A·B on behalf of tenantName and blocks until the
// result has been computed, the context is done, or the server closes.
// Safe for any number of concurrent callers. The three matrices must live
// in the server's world; C is written in place. When the context is
// already done at admission the request fast-fails with ctx.Err() (and
// counts in the tenant's Expired) without ever occupying a queue slot;
// when it expires while queued, the request is cancelled without
// executing; when it expires after execution has started, the computation
// completes (C is written) but ctx.Err() is returned to signal the missed
// deadline. Under degradation, admission can also fail with ErrShed
// (projected wait past the deadline) or ErrCircuitOpen (the tenant's
// recent requests kept failing).
func (s *Server) Multiply(ctx context.Context, tenantName string, c, a, b *distmat.Matrix) (universal.Stationary, error) {
	if err := s.validate(c, a, b); err != nil {
		return 0, err
	}
	if err := ctx.Err(); err != nil {
		s.countExpired(tenantName)
		return 0, err
	}
	r := &request{
		ctx:    ctx,
		prob:   universal.NewProblem(c, a, b),
		done:   make(chan struct{}),
		queued: time.Now(),
	}
	if err := s.enqueue(tenantName, r); err != nil {
		return 0, err
	}
	select {
	case s.wake <- struct{}{}:
	default:
	}
	select {
	case <-r.done:
		return r.stat, r.err
	case <-ctx.Done():
		if s.tryCancel(r) {
			return 0, ctx.Err()
		}
		// Already admitted: the collective runs to completion; report the
		// missed deadline.
		<-r.done
		if r.err != nil {
			return r.stat, r.err
		}
		s.mu.Lock()
		r.tenant.stats.Expired++
		s.expired++
		s.mu.Unlock()
		return r.stat, ctx.Err()
	}
}

// tenantLocked returns tenantName's record, creating it on first contact.
// Callers hold s.mu.
func (s *Server) tenantLocked(tenantName string) *tenant {
	t, ok := s.tenants[tenantName]
	if !ok {
		t = &tenant{name: tenantName}
		s.tenants[tenantName] = t
		s.names = append(s.names, tenantName)
		sort.Strings(s.names)
	}
	return t
}

// countExpired attributes a request that was already past its deadline at
// admission: it never occupies a queue slot, but the miss still shows in
// the tenant's accounting.
func (s *Server) countExpired(tenantName string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	t := s.tenantLocked(tenantName)
	t.stats.Expired++
	s.expired++
}

// enqueue admits r into tenantName's bounded queue, applying the
// admission-control ladder: deadline-aware shedding first (don't queue
// work that cannot finish in time), then the queue bound, then the
// tenant's circuit breaker (last, so rejections on the earlier rungs
// never consume the half-open probe slot).
func (s *Server) enqueue(tenantName string, r *request) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	t := s.tenantLocked(tenantName)
	if s.cfg.Shed {
		if deadline, ok := r.ctx.Deadline(); ok {
			queued := 0
			for _, qt := range s.tenants {
				queued += len(qt.queue)
			}
			if wait := projectedWait(s.batchEWMA, queued, s.cfg.Batch); wait > time.Until(deadline) {
				t.stats.Shed++
				s.shed++
				return ErrShed
			}
		}
	}
	if len(t.queue) >= s.cfg.Queue {
		t.stats.Rejected++
		s.rejected++
		return ErrQueueFull
	}
	if s.cfg.Breaker.Threshold > 0 {
		ok, probe := t.brk.admit(s.cfg.Breaker, time.Now())
		if !ok {
			t.stats.Shed++
			s.shed++
			return ErrCircuitOpen
		}
		r.probe = probe
	}
	r.tenant = t
	r.inQueue = true
	t.queue = append(t.queue, r)
	return nil
}

// tryCancel removes r from its tenant queue if it has not been admitted to
// a batch yet, reporting whether the cancellation took effect.
func (s *Server) tryCancel(r *request) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !r.inQueue {
		return false
	}
	q := r.tenant.queue
	for i, qr := range q {
		if qr == r {
			r.tenant.queue = append(q[:i], q[i+1:]...)
			r.inQueue = false
			r.tenant.stats.Cancelled++
			s.cancelled++
			if r.probe {
				r.tenant.brk.releaseProbe()
			}
			return true
		}
	}
	return false
}

// conflicts reports whether r touches the result matrix of any request
// already in batch (or vice versa). Such requests cannot share a fused
// batch — their updates would interleave without synchronization — so the
// dispatcher defers them to a later batch, preserving per-tenant FIFO
// order.
func conflicts(batch []*request, r *request) bool {
	for _, q := range batch {
		if r.prob.C == q.prob.C || r.prob.C == q.prob.A || r.prob.C == q.prob.B ||
			r.prob.A == q.prob.C || r.prob.B == q.prob.C {
			return true
		}
	}
	return false
}

// nextBatch admits up to cfg.Batch requests, draining tenant queues
// round-robin from the position after the previous batch's starting
// tenant. Requests whose context is already done are completed with
// ctx.Err() instead of admitted; requests that conflict with an already
// admitted one (shared result matrix) stay queued for the next batch.
func (s *Server) nextBatch() []*request {
	s.mu.Lock()
	var batch []*request
	var cancelled []*request
	n := len(s.names)
	if n > 0 {
		s.rrPos = (s.rrPos + 1) % n
		// Repeated full ring passes, one request per tenant per pass, until
		// the batch fills or a pass makes no progress.
		for len(batch) < s.cfg.Batch {
			took := false
			for scanned := 0; scanned < n && len(batch) < s.cfg.Batch; scanned++ {
				t := s.tenants[s.names[(s.rrPos+scanned)%n]]
				if len(t.queue) == 0 {
					continue
				}
				r := t.queue[0]
				if r.ctx.Err() == nil && conflicts(batch, r) {
					continue // deferred; head-of-line so tenant order holds
				}
				t.queue = t.queue[1:]
				r.inQueue = false
				took = true
				if r.ctx.Err() != nil {
					r.err = r.ctx.Err()
					t.stats.Cancelled++
					s.cancelled++
					if r.probe {
						t.brk.releaseProbe()
					}
					cancelled = append(cancelled, r)
				} else {
					batch = append(batch, r)
				}
			}
			if !took {
				break
			}
		}
	}
	s.mu.Unlock()
	for _, r := range cancelled {
		close(r.done)
	}
	return batch
}

// loop is the dispatcher: it turns queued requests into executed batches
// until Close.
func (s *Server) loop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			s.drainClosed()
			return
		case <-s.wake:
		}
		for {
			select {
			case <-s.quit:
				s.drainClosed()
				return
			default:
			}
			batch := s.nextBatch()
			if len(batch) == 0 {
				break
			}
			s.runBatch(batch)
		}
	}
}

// drainClosed fails every queued request with ErrClosed.
func (s *Server) drainClosed() {
	s.mu.Lock()
	var pending []*request
	for _, t := range s.tenants {
		for _, r := range t.queue {
			r.inQueue = false
			if r.probe {
				t.brk.releaseProbe()
			}
			pending = append(pending, r)
		}
		t.queue = nil
	}
	s.mu.Unlock()
	for _, r := range pending {
		r.err = ErrClosed
		close(r.done)
	}
}

// lookupPlans resolves the batch's compiled plans on the dispatcher
// thread, once per batch rather than P times inside the collective: on a
// hit the PEs receive ready-to-run compiled plans and touch no shared
// cache state at all. cfg.Exclude keys the lookup — a failover replay
// against a shrunken world resolves different (repair) plans from the
// same cache. Returns nils under NoCache.
func (s *Server) lookupPlans(batch []*request, cfg universal.Config) ([]universal.Problem, []*universal.CompiledPlan) {
	if cfg.Plans == nil {
		return nil, nil
	}
	probs := make([]universal.Problem, len(batch))
	cps := make([]*universal.CompiledPlan, len(batch))
	for i, r := range batch {
		probs[i] = r.prob
		cps[i] = cfg.Plans.GetOrCompile(r.prob, cfg)
		r.stat = cps[i].Stationary()
	}
	return probs, cps
}

// executeBatch runs one fused collective activation of the batch: every
// PE zeroes all results, barriers once, runs every request's plan
// back-to-back, and barriers once more. The batch invariant from
// nextBatch — no request touches another's result matrix — makes the
// unsynchronized interleaving safe: all intervening one-sided updates
// target disjoint matrices and commute. Re-zeroing on entry makes the
// activation idempotent, which is what lets failover replay a whole
// batch after a fatal fault without double-counting partial accumulates.
func (s *Server) executeBatch(batch []*request, probs []universal.Problem, cps []*universal.CompiledPlan, cfg universal.Config) error {
	// Any rank's fatal fault fails the whole fused batch: the requests'
	// accumulates interleave without synchronization, so there is no
	// telling which results the aborted rank had already contributed to.
	var execMu sync.Mutex
	var execErr error
	setErr := func(err error) {
		if err == nil {
			return
		}
		execMu.Lock()
		if execErr == nil {
			execErr = err
		}
		execMu.Unlock()
	}
	s.world.Run(func(pe rt.PE) {
		rank0 := pe.Rank() == 0
		var snap rt.Stats
		if rank0 {
			snap = s.world.Stats()
		}
		for _, r := range batch {
			for _, idx := range r.prob.C.OwnedTiles(pe.Rank()) {
				r.prob.C.Tile(pe, idx, distmat.LocalReplica).Zero()
			}
		}
		pe.Barrier() // all results zeroed before any accumulate can land
		if cps != nil {
			setErr(universal.ExecuteCompiledBatch(pe, probs, cps, cfg))
		} else {
			// The naive per-request path: rebuild the rank's plan, replay
			// its fetch schedule from scratch, and pay a full executor
			// setup per request — serving's pre-cache baseline.
			for _, r := range batch {
				plan := universal.BuildPlanMode(pe.Rank(), r.prob, cfg.Stationary, cfg.CacheTiles, cfg.SubTileFetch)
				setErr(universal.ExecutePlan(pe, r.prob, plan, cfg))
				if rank0 {
					r.stat = plan.Stationary
				}
			}
		}
		pe.Barrier() // every request's one-sided updates have landed
		for _, r := range batch {
			if r.prob.C.Replication() > 1 {
				r.prob.C.ReduceReplicas(pe, cfg.ReduceOrigin)
				if cfg.SyncReplicas {
					r.prob.C.BroadcastReplica(pe, cfg.ReduceOrigin)
				}
			}
		}
		if rank0 {
			per := divStats(statsDelta(s.world.Stats(), snap), len(batch))
			for _, r := range batch {
				r.traffic = per
			}
		}
	})
	return execErr
}

// runBatch executes one admitted batch, recovering from fatal PE faults
// when Config.Recover is set: a batch that dies with ErrPEFailed is
// replayed in full against the surviving world — membership re-synced,
// plans recompiled with the crashed ranks excluded, every result
// re-zeroed by executeBatch — until it lands or no repair is possible.
// Because nextBatch admitted these requests in tenant FIFO order and the
// replay keeps the batch intact, recovery preserves per-tenant order; a
// recovered batch is accounted as served (plus Recovered) and never
// feeds the circuit breakers.
func (s *Server) runBatch(batch []*request) {
	start := time.Now()
	cfg := s.cfg.Exec
	if s.member != nil {
		// Pick up heals (and crashes detected since the last batch) before
		// compiling: a revived rank rejoins the plan here.
		s.member.Sync(s.world)
		cfg.Exclude = s.member.Excluded()
	}
	var replans int64
	var replanMs []float64
	recovered := false
	probs, cps := s.lookupPlans(batch, cfg)
	execErr := s.executeBatch(batch, probs, cps, cfg)
	if execErr != nil && s.member != nil && errors.Is(execErr, rt.ErrPEFailed) {
		// Failover: each attempt retires at least one newly crashed rank,
		// so NumPE attempts bound the loop even under a rolling crash storm.
		for attempt := 0; attempt < s.world.NumPE(); attempt++ {
			t0 := time.Now()
			died, _ := s.member.Sync(s.world)
			if died == 0 || s.member.NumAlive() == 0 {
				break // nothing new to exclude, or nobody left to run on
			}
			cfg.Exclude = s.member.Excluded()
			probs, cps = s.lookupPlans(batch, cfg)
			replans++
			replanMs = append(replanMs, time.Since(t0).Seconds()*1e3)
			execErr = s.executeBatch(batch, probs, cps, cfg)
			if execErr == nil {
				recovered = true
				break
			}
			if !errors.Is(execErr, rt.ErrPEFailed) {
				break
			}
		}
	}
	now := time.Now()
	s.mu.Lock()
	if s.batchEWMA == 0 {
		s.batchEWMA = now.Sub(start).Seconds()
	} else {
		s.batchEWMA += ewmaAlpha * (now.Sub(start).Seconds() - s.batchEWMA)
	}
	s.replans += replans
	s.replanMs = append(s.replanMs, replanMs...)
	breakerOn := s.cfg.Breaker.Threshold > 0
	for _, r := range batch {
		t := r.tenant
		if execErr != nil {
			r.err = execErr
			t.stats.Failed++
			s.failed++
			if breakerOn && t.brk.failure(s.cfg.Breaker, now) {
				t.stats.Tripped++
				s.tripped++
			}
			continue
		}
		if recovered {
			t.stats.Recovered++
			s.recovered++
		}
		t.stats.Served++
		addStats(&t.stats.Traffic, r.traffic)
		t.stats.QueueSeconds += now.Sub(r.queued).Seconds()
		s.served++
		if breakerOn {
			// A missed deadline counts against the breaker like a fatal
			// fault: the tenant keeps submitting work the server cannot
			// land in time.
			if r.ctx.Err() != nil {
				if t.brk.failure(s.cfg.Breaker, now) {
					t.stats.Tripped++
					s.tripped++
				}
			} else {
				t.brk.success()
			}
		}
	}
	s.batches++
	s.batchedRequests += int64(len(batch))
	s.mu.Unlock()
	for _, r := range batch {
		close(r.done)
	}
}

func statsDelta(cur, prev rt.Stats) rt.Stats {
	return rt.Stats{
		RemoteGetBytes:   cur.RemoteGetBytes - prev.RemoteGetBytes,
		RemotePutBytes:   cur.RemotePutBytes - prev.RemotePutBytes,
		RemoteAccumBytes: cur.RemoteAccumBytes - prev.RemoteAccumBytes,
		LocalGetBytes:    cur.LocalGetBytes - prev.LocalGetBytes,
		LocalPutBytes:    cur.LocalPutBytes - prev.LocalPutBytes,
		LocalAccumBytes:  cur.LocalAccumBytes - prev.LocalAccumBytes,
		RemoteOps:        cur.RemoteOps - prev.RemoteOps,
		LocalOps:         cur.LocalOps - prev.LocalOps,
	}
}

// divStats splits a fused batch's traffic delta into equal per-request
// shares (integer division; the remainder stays unattributed).
func divStats(d rt.Stats, n int) rt.Stats {
	k := int64(n)
	if k <= 1 {
		return d
	}
	return rt.Stats{
		RemoteGetBytes:   d.RemoteGetBytes / k,
		RemotePutBytes:   d.RemotePutBytes / k,
		RemoteAccumBytes: d.RemoteAccumBytes / k,
		LocalGetBytes:    d.LocalGetBytes / k,
		LocalPutBytes:    d.LocalPutBytes / k,
		LocalAccumBytes:  d.LocalAccumBytes / k,
		RemoteOps:        d.RemoteOps / k,
		LocalOps:         d.LocalOps / k,
	}
}

func addStats(dst *rt.Stats, d rt.Stats) {
	dst.RemoteGetBytes += d.RemoteGetBytes
	dst.RemotePutBytes += d.RemotePutBytes
	dst.RemoteAccumBytes += d.RemoteAccumBytes
	dst.LocalGetBytes += d.LocalGetBytes
	dst.LocalPutBytes += d.LocalPutBytes
	dst.LocalAccumBytes += d.LocalAccumBytes
	dst.RemoteOps += d.RemoteOps
	dst.LocalOps += d.LocalOps
}

// Stats returns a server-wide accounting snapshot, including per-tenant
// traffic and the plan-cache counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	out := Stats{
		Served:          s.served,
		Rejected:        s.rejected,
		Cancelled:       s.cancelled,
		Expired:         s.expired,
		Failed:          s.failed,
		Shed:            s.shed,
		Tripped:         s.tripped,
		Retries:         s.cfg.Exec.Retry.Retries.Load(),
		Recovered:       s.recovered,
		Replans:         s.replans,
		ReplanMs:        append([]float64(nil), s.replanMs...),
		Batches:         s.batches,
		BatchedRequests: s.batchedRequests,
		Tenants:         make(map[string]TenantStats, len(s.tenants)),
	}
	for name, t := range s.tenants {
		out.Tenants[name] = t.stats
	}
	s.mu.Unlock()
	if s.cfg.Exec.Plans != nil {
		out.PlanCache = s.cfg.Exec.Plans.Stats()
	}
	return out
}

// TenantStats returns one tenant's snapshot; ok is false for tenants that
// have never submitted.
func (s *Server) TenantStats(name string) (TenantStats, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[name]
	if !ok {
		return TenantStats{}, false
	}
	return t.stats, true
}

// QueuedLen returns the number of requests currently queued across all
// tenants (diagnostic).
func (s *Server) QueuedLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, t := range s.tenants {
		n += len(t.queue)
	}
	return n
}
