package baselines

import (
	"fmt"
	"math"

	"slicing/internal/distmat"
	"slicing/internal/index"
	rt "slicing/internal/runtime"
	"slicing/internal/tile"
)

// CannonProblem holds the operands of a Cannon multiplication on a square
// q×q process grid (the classical precondition p = q²).
type CannonProblem struct {
	A, B, C *distmat.Matrix
	Q       int
}

// NewCannon allocates operands for an m×n×k Cannon multiply. The world
// size must be a perfect square.
func NewCannon(w rt.World, m, n, k int) CannonProblem {
	q := int(math.Sqrt(float64(w.NumPE())))
	if q*q != w.NumPE() {
		panic(fmt.Sprintf("baselines: Cannon needs a square PE count, got %d", w.NumPE()))
	}
	return CannonProblem{
		A: distmat.New(w, m, k, distmat.Custom{TileRows: ceilDiv(m, q), TileCols: ceilDiv(k, q), ProcRows: q, ProcCols: q}, 1),
		B: distmat.New(w, k, n, distmat.Custom{TileRows: ceilDiv(k, q), TileCols: ceilDiv(n, q), ProcRows: q, ProcCols: q}, 1),
		C: distmat.New(w, m, n, distmat.Block2D{ProcRows: q, ProcCols: q}, 1),
		Q: q,
	}
}

// Multiply runs the generalized (one-sided) Cannon algorithm: instead of
// physically rotating tiles along rows and columns, step t has PE (i, j)
// read A(i, i+j+t mod q) and B(i+j+t mod q, j) directly from their owners —
// the initial skew i+j is Cannon's alignment shuffle expressed as index
// arithmetic, and it doubles as the network load balancer. Collective.
func (cp CannonProblem) Multiply(pe rt.PE) {
	cp.C.Zero(pe)
	q := cp.Q
	i := pe.Rank() / q
	j := pe.Rank() % q
	cIdx := index.TileIdx{Row: i, Col: j}
	cTile := cp.C.Tile(pe, cIdx, distmat.LocalReplica)
	for t := 0; t < q; t++ {
		s := (i + j + t) % q
		aTile := cp.A.GetTile(pe, index.TileIdx{Row: i, Col: s}, distmat.LocalReplica)
		bTile := cp.B.GetTile(pe, index.TileIdx{Row: s, Col: j}, distmat.LocalReplica)
		tile.Gemm(cTile, aTile, bTile)
		rt.ChargeGemm(pe, cTile.Rows, cTile.Cols, aTile.Cols)
	}
	pe.Barrier()
}
