package baselines

import (
	"fmt"
	"math"

	"slicing/internal/distmat"
	"slicing/internal/index"
	rt "slicing/internal/runtime"
	"slicing/internal/tile"
)

// OneDotFiveD is the 1.5D algorithm (Koanantakool et al.): 1D row-block
// partitionings with A and C replicated c times and B split across all p
// processes. Each replica group computes the partial products for its 1/c
// share of the inner dimension; partial C results are reduced across
// replicas.
type OneDotFiveD struct {
	A, B, C *distmat.Matrix
	Repl    int
}

// NewOneDotFiveD allocates operands for an m×n×k 1.5D multiply with
// replication factor c (which must divide the PE count).
func NewOneDotFiveD(w rt.World, m, n, k, c int) OneDotFiveD {
	return OneDotFiveD{
		A:    distmat.New(w, m, k, distmat.RowBlock{}, c),
		B:    distmat.New(w, k, n, distmat.RowBlock{}, 1),
		C:    distmat.New(w, m, n, distmat.RowBlock{}, c),
		Repl: c,
	}
}

// Multiply runs the 1.5D algorithm: each PE walks the B row-blocks
// assigned to its replica (block t goes to replica t mod c), pulls each
// with a one-sided get, multiplies it against the matching column slice of
// its local A band, and accumulates into its local C band; replicas are
// then reduced. Collective.
func (od OneDotFiveD) Multiply(pe rt.PE) {
	od.C.Zero(pe)
	rep := od.C.ReplicaOf(pe.Rank())
	aIdx := od.A.OwnedTiles(pe.Rank())
	// Every slot owns exactly one row band under RowBlock (bands may be
	// empty when m < slots; then there is simply nothing to compute).
	if len(aIdx) == 1 {
		aTile := od.A.Tile(pe, aIdx[0], distmat.LocalReplica)
		cTile := od.C.Tile(pe, aIdx[0], distmat.LocalReplica)
		bRows, _ := od.B.GridShape()
		for t := 0; t < bRows; t++ {
			if t%od.Repl != rep {
				continue
			}
			bIdx := index.TileIdx{Row: t, Col: 0}
			bTile := od.B.GetTile(pe, bIdx, distmat.LocalReplica)
			bb := od.B.TileBounds(bIdx)
			aSlice := aTile.View(0, bb.Rows.Begin, aTile.Rows, bb.Rows.Len())
			tile.Gemm(cTile, aSlice, bTile)
			rt.ChargeGemm(pe, cTile.Rows, cTile.Cols, aSlice.Cols)
		}
	}
	pe.Barrier()
	if od.Repl > 1 {
		od.C.ReduceReplicas(pe, 0)
		od.C.BroadcastReplica(pe, 0)
	}
}

// TwoPointFiveD is the 2.5D algorithm (Solomonik & Demmel): c replicas of
// a q×q 2D grid (p = c·q²). Each replica executes 1/c of the SUMMA-style
// k-stages; partial C results are reduced across replicas. c = 1
// degenerates to 2D SUMMA; c = p/1 would be fully replicated.
type TwoPointFiveD struct {
	A, B, C *distmat.Matrix
	Q, Repl int
}

// NewTwoPointFiveD allocates operands for an m×n×k 2.5D multiply with
// replication c. p/c must be a perfect square.
func NewTwoPointFiveD(w rt.World, m, n, k, c int) TwoPointFiveD {
	p := w.NumPE()
	if c <= 0 || p%c != 0 {
		panic(fmt.Sprintf("baselines: 2.5D replication %d does not divide %d PEs", c, p))
	}
	q := int(math.Sqrt(float64(p / c)))
	if q*q != p/c {
		panic(fmt.Sprintf("baselines: 2.5D needs square replica grids, p/c = %d", p/c))
	}
	mk := func(rows, cols, tr, tc int) *distmat.Matrix {
		return distmat.New(w, rows, cols, distmat.Custom{TileRows: tr, TileCols: tc, ProcRows: q, ProcCols: q}, c)
	}
	return TwoPointFiveD{
		A: mk(m, k, ceilDiv(m, q), ceilDiv(k, q)),
		B: mk(k, n, ceilDiv(k, q), ceilDiv(n, q)),
		C: mk(m, n, ceilDiv(m, q), ceilDiv(n, q)),
		Q: q, Repl: c,
	}
}

// Multiply runs the 2.5D algorithm with one-sided pulls inside each
// replica and a replica reduction at the end. Collective.
func (td TwoPointFiveD) Multiply(pe rt.PE) {
	td.C.Zero(pe)
	q := td.Q
	rep := td.C.ReplicaOf(pe.Rank())
	slot := td.C.SlotOf(pe.Rank())
	i, j := slot/q, slot%q
	cIdx := index.TileIdx{Row: i, Col: j}
	cTile := td.C.Tile(pe, cIdx, distmat.LocalReplica)
	_, kStages := td.A.GridShape()
	// The replica's share of the k-stages, walked with a per-PE offset (the
	// Cannon-style skew) so simultaneous pulls spread across owners.
	var mine []int
	for t := rep; t < kStages; t += td.Repl {
		mine = append(mine, t)
	}
	for idx := range mine {
		s := mine[(idx+i+j)%len(mine)]
		aTile := td.A.GetTile(pe, index.TileIdx{Row: i, Col: s}, distmat.LocalReplica)
		bTile := td.B.GetTile(pe, index.TileIdx{Row: s, Col: j}, distmat.LocalReplica)
		tile.Gemm(cTile, aTile, bTile)
		rt.ChargeGemm(pe, cTile.Rows, cTile.Cols, aTile.Cols)
	}
	pe.Barrier()
	if td.Repl > 1 {
		td.C.ReduceReplicas(pe, 0)
		td.C.BroadcastReplica(pe, 0)
	}
}
