package baselines

import (
	"fmt"
	"testing"

	"slicing/internal/distmat"
	rt "slicing/internal/runtime"
	"slicing/internal/shmem"
	"slicing/internal/tile"
)

// fillAndReference fills A and B and returns the serial product.
func fillAndReference(w rt.World, a, b *distmat.Matrix, m, n int) *tile.Matrix {
	var ref *tile.Matrix
	w.Run(func(pe rt.PE) {
		a.FillRandom(pe, 31)
		b.FillRandom(pe, 32)
	})
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			fullA := a.Gather(pe, 0)
			fullB := b.Gather(pe, 0)
			ref = tile.New(m, n)
			tile.GemmNaive(ref, fullA, fullB)
		}
	})
	return ref
}

func gatherC(w rt.World, c *distmat.Matrix) *tile.Matrix {
	var got *tile.Matrix
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			got = c.Gather(pe, 0)
		}
	})
	return got
}

func TestSUMMACorrect(t *testing.T) {
	cases := []struct{ m, n, k, pr, pc, kb int }{
		{48, 48, 48, 2, 2, 12},
		{48, 48, 48, 2, 3, 8},
		{50, 46, 54, 2, 2, 9},  // ragged everywhere
		{32, 32, 32, 1, 4, 8},  // degenerate 1D grid
		{32, 32, 32, 4, 1, 16}, // degenerate column grid
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%dx%dx%d_grid%dx%d_kb%d", tc.m, tc.n, tc.k, tc.pr, tc.pc, tc.kb), func(t *testing.T) {
			w := shmem.NewWorld(tc.pr * tc.pc)
			sp := NewSUMMA(w, tc.m, tc.n, tc.k, tc.pr, tc.pc, tc.kb)
			ref := fillAndReference(w, sp.A, sp.B, tc.m, tc.n)
			w.Run(sp.Multiply)
			if got := gatherC(w, sp.C); !got.AllClose(ref, 1e-3) {
				t.Fatalf("SUMMA mismatch: %g", got.MaxAbsDiff(ref))
			}
		})
	}
}

func TestSUMMAGridMismatchPanics(t *testing.T) {
	w := shmem.NewWorld(4)
	defer func() {
		if recover() == nil {
			t.Fatal("bad grid should panic")
		}
	}()
	NewSUMMA(w, 16, 16, 16, 3, 2, 4)
}

func TestCannonCorrect(t *testing.T) {
	for _, p := range []int{1, 4, 9} {
		for _, dims := range [][3]int{{36, 36, 36}, {37, 41, 43}} {
			t.Run(fmt.Sprintf("p%d_%dx%dx%d", p, dims[0], dims[1], dims[2]), func(t *testing.T) {
				w := shmem.NewWorld(p)
				cp := NewCannon(w, dims[0], dims[1], dims[2])
				ref := fillAndReference(w, cp.A, cp.B, dims[0], dims[1])
				w.Run(cp.Multiply)
				if got := gatherC(w, cp.C); !got.AllClose(ref, 1e-3) {
					t.Fatalf("Cannon mismatch: %g", got.MaxAbsDiff(ref))
				}
			})
		}
	}
}

func TestCannonNonSquarePanics(t *testing.T) {
	w := shmem.NewWorld(6)
	defer func() {
		if recover() == nil {
			t.Fatal("non-square world should panic")
		}
	}()
	NewCannon(w, 12, 12, 12)
}

func TestOneDotFiveDCorrect(t *testing.T) {
	for _, tc := range []struct{ p, c, m, n, k int }{
		{4, 1, 32, 24, 40},
		{4, 2, 32, 24, 40},
		{12, 3, 36, 30, 48},
		{12, 4, 35, 29, 47}, // ragged
		{4, 4, 20, 20, 20},  // fully replicated A and C
	} {
		t.Run(fmt.Sprintf("p%d_c%d", tc.p, tc.c), func(t *testing.T) {
			w := shmem.NewWorld(tc.p)
			od := NewOneDotFiveD(w, tc.m, tc.n, tc.k, tc.c)
			ref := fillAndReference(w, od.A, od.B, tc.m, tc.n)
			w.Run(od.Multiply)
			if got := gatherC(w, od.C); !got.AllClose(ref, 1e-3) {
				t.Fatalf("1.5D mismatch: %g", got.MaxAbsDiff(ref))
			}
		})
	}
}

func TestTwoPointFiveDCorrect(t *testing.T) {
	for _, tc := range []struct{ p, c, m, n, k int }{
		{4, 1, 32, 32, 32},  // degenerates to SUMMA
		{8, 2, 32, 32, 32},  // 2 replicas of 2x2
		{12, 3, 34, 38, 42}, // 3 replicas of 2x2, ragged
		{16, 4, 32, 32, 64}, // 4 replicas of 2x2
	} {
		t.Run(fmt.Sprintf("p%d_c%d", tc.p, tc.c), func(t *testing.T) {
			w := shmem.NewWorld(tc.p)
			td := NewTwoPointFiveD(w, tc.m, tc.n, tc.k, tc.c)
			ref := fillAndReference(w, td.A, td.B, tc.m, tc.n)
			w.Run(td.Multiply)
			if got := gatherC(w, td.C); !got.AllClose(ref, 1e-3) {
				t.Fatalf("2.5D mismatch: %g", got.MaxAbsDiff(ref))
			}
		})
	}
}

func TestTwoPointFiveDBadReplicationPanics(t *testing.T) {
	w := shmem.NewWorld(12)
	defer func() {
		if recover() == nil {
			t.Fatal("p/c not square should panic")
		}
	}()
	NewTwoPointFiveD(w, 16, 16, 16, 2) // 12/2 = 6 not square
}

// The 2.5D algorithm with c replicas must cut remote get traffic versus
// c=1 on the same problem (the communication-avoiding claim of §2.1).
func TestTwoPointFiveDReducesGets(t *testing.T) {
	run := func(p, c int) int64 {
		w := shmem.NewWorld(p)
		td := NewTwoPointFiveD(w, 64, 64, 64, c)
		w.Run(func(pe rt.PE) {
			td.A.FillRandom(pe, 1)
			td.B.FillRandom(pe, 2)
		})
		w.ResetStats()
		w.Run(td.Multiply)
		return w.Stats().RemoteGetBytes
	}
	gets1 := run(4, 1)  // 2x2, no replication
	gets4 := run(16, 4) // 4 replicas of 2x2: same grid, k-stages split
	if gets4 >= gets1*4 {
		t.Fatalf("2.5D with c=4 should fetch less than 4x the c=1 traffic per replica set: %d vs %d", gets4, gets1)
	}
}
