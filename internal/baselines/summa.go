// Package baselines implements the classical distributed matrix
// multiplication algorithms the paper's universal algorithm generalizes:
// SUMMA (2D, stationary C, broadcast-based), Cannon's algorithm (2D with
// skewed rotation), 1.5D (1D partitioning with replication), and 2.5D
// (replicated 2D grids). Each imposes the preconditions traditional
// implementations impose — aligned tiles, particular grids, divisibility —
// which is exactly the limitation (§1) that motivates the universal
// algorithm. All are built on the same one-sided PGAS substrate and are
// verified against the serial reference, serving both as correctness
// cross-checks and as comparison points in the benchmark harness.
package baselines

import (
	"fmt"

	"slicing/internal/distmat"
	"slicing/internal/index"
	rt "slicing/internal/runtime"
	"slicing/internal/tile"
)

// SUMMAProblem holds the operands of a SUMMA multiplication: A, B, C all
// 2D-partitioned on the same ProcRows×ProcCols grid with a shared k-block
// size, the classical aligned-tiles precondition.
type SUMMAProblem struct {
	A, B, C            *distmat.Matrix
	ProcRows, ProcCols int
	KBlock             int
}

// NewSUMMA allocates operands for an m×n×k SUMMA multiply on a pr×pc
// process grid with k-blocking factor kb. The world must have exactly
// pr*pc PEs.
func NewSUMMA(w rt.World, m, n, k, pr, pc, kb int) SUMMAProblem {
	if pr*pc != w.NumPE() {
		panic(fmt.Sprintf("baselines: SUMMA grid %dx%d over %d PEs", pr, pc, w.NumPE()))
	}
	if kb <= 0 {
		kb = ceilDiv(k, pc)
	}
	return SUMMAProblem{
		A:        distmat.New(w, m, k, distmat.Custom{TileRows: ceilDiv(m, pr), TileCols: kb, ProcRows: pr, ProcCols: pc}, 1),
		B:        distmat.New(w, k, n, distmat.Custom{TileRows: kb, TileCols: ceilDiv(n, pc), ProcRows: pr, ProcCols: pc}, 1),
		C:        distmat.New(w, m, n, distmat.Block2D{ProcRows: pr, ProcCols: pc}, 1),
		ProcRows: pr, ProcCols: pc, KBlock: kb,
	}
}

// Multiply runs one-sided SUMMA (SRUMMA-style): instead of two-sided
// broadcasts, every PE pulls the stage-t panel of A from its row peer and
// of B from its column peer with remote gets, then multiplies into its
// stationary local C tile. Collective.
func (sp SUMMAProblem) Multiply(pe rt.PE) {
	sp.C.Zero(pe)
	slot := pe.Rank()
	myRow := slot / sp.ProcCols
	myCol := slot % sp.ProcCols

	cIdx := index.TileIdx{Row: myRow, Col: myCol}
	cTile := sp.C.Tile(pe, cIdx, distmat.LocalReplica)
	cb := sp.C.TileBounds(cIdx)

	_, kStages := sp.A.GridShape()
	for t := 0; t < kStages; t++ {
		// Skew the stage order per process row/column so pulls of the same
		// panel do not all hit one owner simultaneously (the iteration
		// offset of §4.2, which SUMMA variants also employ).
		stage := (t + myRow + myCol) % kStages
		aIdx := index.TileIdx{Row: myRow, Col: stage}
		bIdx := index.TileIdx{Row: stage, Col: myCol}
		aTile := sp.A.GetTile(pe, aIdx, distmat.LocalReplica)
		bTile := sp.B.GetTile(pe, bIdx, distmat.LocalReplica)

		ab := sp.A.TileBounds(aIdx)
		bb := sp.B.TileBounds(bIdx)
		// Aligned-tile precondition: A row panel matches C rows, B column
		// panel matches C cols, and the k extents agree.
		if ab.Rows != cb.Rows || bb.Cols != cb.Cols || ab.Cols != bb.Rows {
			panic(fmt.Sprintf("baselines: SUMMA misalignment A%v B%v C%v", ab, bb, cb))
		}
		tile.Gemm(cTile, aTile, bTile)
		rt.ChargeGemm(pe, cTile.Rows, cTile.Cols, aTile.Cols)
	}
	pe.Barrier()
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
