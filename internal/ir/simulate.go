package ir

import (
	"slicing/internal/gpusim"
	"slicing/internal/simnet"
	"slicing/internal/universal"
)

// Simulate runs per-rank IR programs through the discrete-event
// performance model, with an IR-op boundary acting as a per-rank
// synchronization point: everything in output op t+1 waits for everything
// in output op t. This gives an apples-to-apples simulated-time comparison
// between direct execution and the lowered schedules (experiment E8).
func Simulate(prob universal.Problem, progs []Program, sys universal.SimSystem) universal.SimResult {
	p := prob.A.World().NumPE()
	if len(progs) != p {
		panic("ir: need one program per rank")
	}
	eng := gpusim.NewEngine()
	compute := make([]gpusim.ResourceID, p)
	egress := make([]gpusim.ResourceID, p)
	ingress := make([]gpusim.ResourceID, p)
	for pe := 0; pe < p; pe++ {
		compute[pe] = eng.AddResource("compute")
		egress[pe] = eng.AddResource("egress")
		ingress[pe] = eng.AddResource("ingress")
	}

	res := universal.SimResult{}
	var lastPerRank []gpusim.OpID
	for rank, prog := range progs {
		res.Ops += len(prog.Plan.Steps)
		var prevOpIDs []gpusim.OpID
		for _, op := range prog.Ops {
			var cur []gpusim.OpID
			for _, c := range op.Comms {
				dur := simnet.TransferTime(sys.Topo, c.Src, rank, float64(c.Bytes)) + sys.Dev.LaunchOverhead
				id := eng.AddOp("get", gpusim.OpComm, dur, prevOpIDs,
					[]gpusim.ResourceID{egress[c.Src], ingress[rank]})
				cur = append(cur, id)
				res.RemoteGetBytes += c.Bytes
			}
			for _, stepIdx := range op.Computes {
				s := prog.Plan.Steps[stepIdx]
				gemmDur := sys.Dev.GemmTime(s.Op.M.Len(), s.Op.N.Len(), s.Op.K.Len()) + sys.Dev.LaunchOverhead
				gemmID := eng.AddOp("gemm", gpusim.OpCompute, gemmDur, prevOpIDs,
					[]gpusim.ResourceID{compute[rank]})
				last := gemmID
				if s.AccumBytes > 0 {
					var dur float64
					var rs []gpusim.ResourceID
					if s.CLocal {
						dur = 2 * float64(s.AccumBytes) / sys.Dev.MemBW
					} else {
						bw := sys.Topo.Bandwidth(rank, s.CDst)
						dur = sys.Dev.AccumTime(float64(s.AccumBytes), bw) + sys.Topo.Latency(rank, s.CDst)
						rs = []gpusim.ResourceID{egress[rank], ingress[s.CDst]}
						if sys.Dev.AccumComputeInterference {
							rs = append(rs, compute[rank])
						}
						res.RemoteAccumBytes += s.AccumBytes
					}
					dur += sys.Dev.LaunchOverhead
					last = eng.AddOp("accum", gpusim.OpAccum, dur, []gpusim.OpID{gemmID}, rs)
				}
				cur = append(cur, last)
			}
			prevOpIDs = cur
		}
		res.Stationary = prog.Plan.Stationary
		lastPerRank = append(lastPerRank, prevOpIDs...)
	}

	// reduce_replicas when C is replicated, gated on every rank finishing.
	if prob.C.Replication() > 1 {
		for rank := 0; rank < p; rank++ {
			if prob.C.ReplicaOf(rank) == 0 {
				continue
			}
			dst := prob.C.RankFor(prob.C.SlotOf(rank), 0)
			for _, idx := range prob.C.OwnedTiles(rank) {
				bytes := prob.C.TileBounds(idx).Area() * 4
				bw := sys.Topo.Bandwidth(rank, dst)
				dur := sys.Dev.AccumTime(float64(bytes), bw) + sys.Topo.Latency(rank, dst) + sys.Dev.LaunchOverhead
				rs := []gpusim.ResourceID{egress[rank], ingress[dst]}
				if sys.Dev.AccumComputeInterference {
					rs = append(rs, compute[rank])
				}
				eng.AddOp("reduce", gpusim.OpAccum, dur, lastPerRank, rs)
				res.RemoteAccumBytes += bytes
			}
		}
	}

	run := eng.Run()
	res.Makespan = run.Makespan
	m, n, k := prob.Dims()
	if run.Makespan > 0 {
		flops := 2 * float64(m) * float64(n) * float64(k)
		res.PercentOfPeak = flops / (float64(p) * sys.Dev.PeakFlops * run.Makespan) * 100
	}
	return res
}
