package ir

import (
	"fmt"
	"math/rand"
	"testing"

	"slicing/internal/costmodel"
	"slicing/internal/distmat"
	"slicing/internal/gpusim"
	rt "slicing/internal/runtime"
	"slicing/internal/shmem"
	"slicing/internal/simnet"
	"slicing/internal/tile"
	"slicing/internal/universal"
)

func testProblem(p, m, n, k int, pa, pb, pc distmat.Partition, cA, cB, cC int) universal.Problem {
	w := shmem.NewWorld(p)
	a := distmat.New(w, m, k, pa, cA)
	b := distmat.New(w, k, n, pb, cB)
	c := distmat.New(w, m, n, pc, cC)
	return universal.NewProblem(c, a, b)
}

func testModel(p int) *costmodel.Model {
	return costmodel.New(simnet.NewUniform(p, 100e9, 1000e9, 1e-6, "test"), gpusim.PresetH100Device())
}

func TestBuildGraphDeps(t *testing.T) {
	prob := testProblem(4, 32, 32, 32, distmat.RowBlock{}, distmat.RowBlock{}, distmat.RowBlock{}, 1, 1, 1)
	plan := universal.BuildPlan(0, prob, universal.StationaryC, 0)
	g := buildGraph(plan)
	if len(g.deps) != len(plan.Steps) {
		t.Fatalf("deps for %d steps, want %d", len(g.deps), len(plan.Steps))
	}
	// Stationary C on row-block everything: A tiles are local (same row
	// band), B tiles are remote except one's own.
	for i, s := range plan.Steps {
		for _, d := range g.deps[i] {
			if d.Mat == 'A' && s.ALocal {
				t.Errorf("step %d lists local A tile as dependency", i)
			}
		}
	}
	// Every remote dep must have a comm descriptor.
	for _, deps := range g.deps {
		for _, d := range deps {
			if _, ok := g.comm[d]; !ok {
				t.Fatalf("no comm descriptor for %v", d)
			}
		}
	}
}

func TestGreedyValidates(t *testing.T) {
	for _, rank := range []int{0, 1, 2, 3} {
		prob := testProblem(4, 48, 48, 48, distmat.Block2D{}, distmat.Block2D{}, distmat.Block2D{}, 1, 1, 1)
		plan := universal.BuildPlan(rank, prob, universal.StationaryC, 0)
		prog := Greedy(plan, DefaultLimits())
		if err := prog.Validate(); err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
		if got := len(progComputes(prog)); got != len(plan.Steps) {
			t.Fatalf("rank %d: program schedules %d steps, plan has %d", rank, got, len(plan.Steps))
		}
	}
}

func progComputes(p Program) []int {
	var out []int
	for _, op := range p.Ops {
		out = append(out, op.Computes...)
	}
	return out
}

func TestCostGreedyValidates(t *testing.T) {
	prob := testProblem(6, 60, 54, 66, distmat.RowBlock{}, distmat.ColBlock{}, distmat.Block2D{}, 1, 1, 1)
	md := testModel(6)
	for rank := 0; rank < 6; rank++ {
		plan := universal.BuildPlan(rank, prob, universal.StationaryB, 0)
		prog := CostGreedy(md, plan, DefaultLimits())
		if err := prog.Validate(); err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

func TestDirectValidates(t *testing.T) {
	prob := testProblem(4, 40, 40, 40, distmat.ColBlock{}, distmat.RowBlock{}, distmat.Block2D{}, 1, 1, 1)
	for _, depth := range []int{0, 1, 2, 5} {
		for rank := 0; rank < 4; rank++ {
			plan := universal.BuildPlan(rank, prob, universal.StationaryC, 0)
			prog := Direct(plan, depth)
			if err := prog.Validate(); err != nil {
				t.Fatalf("depth %d rank %d: %v", depth, rank, err)
			}
		}
	}
}

func TestExhaustiveValidatesAndBeatsOrEqualsGreedy(t *testing.T) {
	// Small problem so the plan has <= ExhaustiveLimit steps.
	prob := testProblem(4, 16, 16, 16, distmat.RowBlock{}, distmat.ColBlock{}, distmat.Block2D{}, 1, 1, 1)
	md := testModel(4)
	for rank := 0; rank < 4; rank++ {
		plan := universal.BuildPlan(rank, prob, universal.StationaryC, 0)
		if len(plan.Steps) > ExhaustiveLimit {
			t.Fatalf("test problem too large for exhaustive: %d steps", len(plan.Steps))
		}
		ex := Exhaustive(md, plan, DefaultLimits())
		if err := ex.Validate(); err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
		gr := Greedy(plan, DefaultLimits())
		if Cost(md, ex) > Cost(md, gr)+1e-12 {
			t.Fatalf("rank %d: exhaustive cost %g worse than greedy %g",
				rank, Cost(md, ex), Cost(md, gr))
		}
	}
}

func TestExhaustiveFallsBackOnLargePlans(t *testing.T) {
	prob := testProblem(4, 128, 128, 128, distmat.Custom{TileRows: 16, TileCols: 16, ProcRows: 2, ProcCols: 2},
		distmat.Custom{TileRows: 16, TileCols: 16, ProcRows: 2, ProcCols: 2}, distmat.Block2D{}, 1, 1, 1)
	md := testModel(4)
	plan := universal.BuildPlan(0, prob, universal.StationaryC, 0)
	if len(plan.Steps) <= ExhaustiveLimit {
		t.Skip("plan unexpectedly small")
	}
	prog := Exhaustive(md, plan, DefaultLimits()) // must not hang
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCostPositiveAndMonotoneInLimits(t *testing.T) {
	prob := testProblem(4, 64, 64, 64, distmat.RowBlock{}, distmat.ColBlock{}, distmat.Block2D{}, 1, 1, 1)
	md := testModel(4)
	plan := universal.BuildPlan(0, prob, universal.StationaryC, 0)
	tight := Greedy(plan, Limits{MaxCompute: 1, MaxComm: 1})
	loose := Greedy(plan, Limits{MaxCompute: 8, MaxComm: 8})
	if Cost(md, tight) <= 0 {
		t.Fatal("cost must be positive")
	}
	if err := tight.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := loose.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: for random partitionings, every generator yields a valid
// program scheduling all steps.
func TestGeneratorsValidOnRandomProblems(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	md := testModel(4)
	for trial := 0; trial < 25; trial++ {
		parts := []distmat.Partition{distmat.RowBlock{}, distmat.ColBlock{}, distmat.Block2D{},
			distmat.Custom{TileRows: 1 + rng.Intn(12), TileCols: 1 + rng.Intn(12), ProcRows: 2, ProcCols: 2}}
		prob := testProblem(4, 1+rng.Intn(30), 1+rng.Intn(30), 1+rng.Intn(30),
			parts[rng.Intn(len(parts))], parts[rng.Intn(len(parts))], parts[rng.Intn(len(parts))], 1, 1, 1)
		stat := []universal.Stationary{universal.StationaryA, universal.StationaryB, universal.StationaryC}[rng.Intn(3)]
		for rank := 0; rank < 4; rank++ {
			plan := universal.BuildPlan(rank, prob, stat, 0)
			for name, prog := range map[string]Program{
				"greedy":      Greedy(plan, DefaultLimits()),
				"cost-greedy": CostGreedy(md, plan, DefaultLimits()),
				"direct":      Direct(plan, 2),
			} {
				if err := prog.Validate(); err != nil {
					t.Fatalf("trial %d rank %d %s: %v", trial, rank, name, err)
				}
				if got := len(progComputes(prog)); got != len(plan.Steps) {
					t.Fatalf("trial %d rank %d %s: scheduled %d of %d steps",
						trial, rank, name, got, len(plan.Steps))
				}
			}
		}
	}
}

// Real execution through the IR must match the serial reference, for all
// three generators.
func TestMultiplyIRCorrect(t *testing.T) {
	const p, m, n, k = 4, 22, 26, 18
	md := testModel(p)
	gens := map[string]func(universal.Plan) Program{
		"greedy":      func(pl universal.Plan) Program { return Greedy(pl, DefaultLimits()) },
		"cost-greedy": func(pl universal.Plan) Program { return CostGreedy(md, pl, DefaultLimits()) },
		"direct":      func(pl universal.Plan) Program { return Direct(pl, 2) },
	}
	for name, gen := range gens {
		t.Run(name, func(t *testing.T) {
			w := shmem.NewWorld(p)
			a := distmat.New(w, m, k, distmat.Custom{TileRows: 5, TileCols: 7, ProcRows: 2, ProcCols: 2}, 1)
			b := distmat.New(w, k, n, distmat.ColBlock{}, 1)
			c := distmat.New(w, m, n, distmat.Block2D{}, 2)
			w.Run(func(pe rt.PE) {
				a.FillRandom(pe, 7)
				b.FillRandom(pe, 8)
			})
			var ref, got *tile.Matrix
			w.Run(func(pe rt.PE) {
				if pe.Rank() == 0 {
					fullA := a.Gather(pe, 0)
					fullB := b.Gather(pe, 0)
					ref = tile.New(m, n)
					tile.GemmNaive(ref, fullA, fullB)
				}
			})
			w.Run(func(pe rt.PE) {
				MultiplyIR(pe, c, a, b, universal.StationaryAuto, gen)
			})
			w.Run(func(pe rt.PE) {
				if pe.Rank() == 0 {
					got = c.Gather(pe, 0)
				}
			})
			if !got.AllClose(ref, 1e-3) {
				t.Fatalf("%s: result mismatch, maxdiff %g", name, got.MaxAbsDiff(ref))
			}
		})
	}
}

// E8 (schedule ablation): after the §4.2 optimizations, direct execution
// should be within a modest factor of the best lowered schedule — the
// paper's conclusion that direct execution is "almost always as efficient
// as the optimal schedule".
func TestDirectCompetitiveWithLoweredSchedules(t *testing.T) {
	prob := testProblem(8, 2048, 2048, 2048,
		distmat.Custom{TileRows: 300, TileCols: 700, ProcRows: 2, ProcCols: 4}, // misaligned
		distmat.ColBlock{}, distmat.Block2D{}, 1, 1, 1)
	sys := universal.H100System()
	md := costmodel.New(sys.Topo, sys.Dev)
	build := func(gen func(universal.Plan) Program) []Program {
		progs := make([]Program, 8)
		for rank := 0; rank < 8; rank++ {
			plan := universal.BuildPlan(rank, prob, universal.StationaryC, universal.DefaultCacheTiles)
			progs[rank] = gen(plan)
		}
		return progs
	}
	direct := Simulate(prob, build(func(pl universal.Plan) Program { return Direct(pl, 2) }), sys)
	greedy := Simulate(prob, build(func(pl universal.Plan) Program { return Greedy(pl, DefaultLimits()) }), sys)
	costG := Simulate(prob, build(func(pl universal.Plan) Program { return CostGreedy(md, pl, DefaultLimits()) }), sys)

	best := greedy.Makespan
	if costG.Makespan < best {
		best = costG.Makespan
	}
	if direct.Makespan > 1.5*best {
		t.Fatalf("direct execution (%.4gs) far worse than best lowered schedule (%.4gs)",
			direct.Makespan, best)
	}
	fmt.Printf("E8 ablation: direct=%.4gs greedy=%.4gs cost-greedy=%.4gs\n",
		direct.Makespan, greedy.Makespan, costG.Makespan)
}

func TestSimulateNeedsAllRanks(t *testing.T) {
	prob := testProblem(4, 32, 32, 32, distmat.RowBlock{}, distmat.RowBlock{}, distmat.RowBlock{}, 1, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Simulate with missing programs should panic")
		}
	}()
	Simulate(prob, []Program{}, universal.SimSystem{Topo: simnet.NewUniform(4, 1e9, 1e9, 0, "t"), Dev: gpusim.PresetH100Device()})
}

func TestValidateCatchesBadPrograms(t *testing.T) {
	prob := testProblem(4, 32, 32, 32, distmat.RowBlock{}, distmat.ColBlock{}, distmat.Block2D{}, 1, 1, 1)
	plan := universal.BuildPlan(0, prob, universal.StationaryC, 0)
	good := Greedy(plan, DefaultLimits())

	// Duplicate a compute.
	dup := good
	dup.Ops = append([]IROp(nil), good.Ops...)
	dup.Ops = append(dup.Ops, IROp{Computes: []int{0}})
	if dup.Validate() == nil {
		t.Fatal("duplicate compute not caught")
	}

	// Run a compute before its fetch.
	var remoteStep = -1
	for i, s := range plan.Steps {
		if !s.ALocal || !s.BLocal {
			remoteStep = i
			break
		}
	}
	if remoteStep >= 0 {
		bad := Program{PE: 0, Plan: plan, Ops: []IROp{{Computes: []int{remoteStep}}}}
		if bad.Validate() == nil {
			t.Fatal("unsatisfied dependency not caught")
		}
	}
}
