// Package ir implements the §4.3 alternative to direct execution: lowering
// the generated local ops into an intermediate representation in which
// communication is explicit.
//
// The lowering builds a bipartite computation graph — compute operations on
// one side, matrix tiles (data) on the other — with data-dependency edges
// that start satisfied for local tiles and unsatisfied for remote ones.
// Traversing the graph produces a Program: a list of output IR ops, each
// bundling up to maxCompute compute operations whose dependencies are
// satisfied with up to maxComm communication operations that satisfy
// further dependencies for subsequent IR ops.
//
// Three generators are provided, mirroring the paper: a plain greedy
// traversal, a cost-model-guided greedy traversal, and an exhaustive search
// (over schedulable orderings, feasible for small op counts) that picks the
// cheapest program under the cost model.
package ir

import (
	"fmt"

	"slicing/internal/index"
	"slicing/internal/universal"
)

// DataKey identifies a tile node in the computation graph.
type DataKey struct {
	Mat byte // 'A' or 'B'
	Idx index.TileIdx
}

func (k DataKey) String() string { return fmt.Sprintf("%c%v", k.Mat, k.Idx) }

// Comm is one explicit communication operation: fetch a tile from a rank.
type Comm struct {
	Key   DataKey
	Src   int
	Bytes int
}

// IROp is one output IR op: a set of compute operations (indices into the
// plan's steps) overlapped with a set of communication operations. All
// computes' dependencies are satisfied when the op begins; communications
// become satisfied when the op ends.
type IROp struct {
	Computes []int
	Comms    []Comm
}

// Program is a per-rank schedule in the explicit-communication IR.
type Program struct {
	Rank string // generator name, for reporting
	PE   int
	Plan universal.Plan
	Ops  []IROp
}

// Limits bounds the concurrency within each output IR op, the
// hyperparameters of §4.3.
type Limits struct {
	MaxCompute int
	MaxComm    int
}

// DefaultLimits matches the paper's modest per-op concurrency.
func DefaultLimits() Limits { return Limits{MaxCompute: 2, MaxComm: 2} }

func (l Limits) withDefaults() Limits {
	if l.MaxCompute <= 0 {
		l.MaxCompute = 2
	}
	if l.MaxComm <= 0 {
		l.MaxComm = 2
	}
	return l
}

// graph is the bipartite computation graph for one rank's plan.
type graph struct {
	plan universal.Plan
	// deps[i] lists the data nodes compute i requires.
	deps [][]DataKey
	// comm maps each remote data node to its fetch descriptor.
	comm map[DataKey]Comm
}

// buildGraph constructs the computation graph: one compute node per step,
// one data node per distinct tile, edges labelled satisfied for local
// tiles (omitted — only unsatisfied edges are recorded).
func buildGraph(plan universal.Plan) *graph {
	g := &graph{plan: plan, comm: map[DataKey]Comm{}}
	g.deps = make([][]DataKey, len(plan.Steps))
	for i, s := range plan.Steps {
		if !s.ALocal {
			key := DataKey{'A', s.Op.AIdx}
			g.deps[i] = append(g.deps[i], key)
			if _, ok := g.comm[key]; !ok {
				g.comm[key] = Comm{Key: key, Src: s.ASrc, Bytes: s.ABytes}
			}
		}
		if !s.BLocal {
			key := DataKey{'B', s.Op.BIdx}
			g.deps[i] = append(g.deps[i], key)
			if _, ok := g.comm[key]; !ok {
				g.comm[key] = Comm{Key: key, Src: s.BSrc, Bytes: s.BBytes}
			}
		}
	}
	return g
}

// eligible reports whether compute i can run given the satisfied set.
func (g *graph) eligible(i int, satisfied map[DataKey]bool) bool {
	for _, d := range g.deps[i] {
		if !satisfied[d] {
			return false
		}
	}
	return true
}

// Greedy lowers a plan with the plain greedy traversal: each output op
// first schedules any eligible compute (in plan order), then any pending
// communication (in first-use order), both up to the limits.
func Greedy(plan universal.Plan, lim Limits) Program {
	lim = lim.withDefaults()
	g := buildGraph(plan)
	return traverse(g, lim, func(cands []int) []int { return cands }, func(cands []DataKey) []DataKey { return cands })
}

// traverse runs the generic graph traversal; pickCompute and pickComm may
// reorder candidate lists to implement scheduling policies.
func traverse(g *graph, lim Limits, pickCompute func([]int) []int, pickComm func([]DataKey) []DataKey) Program {
	n := len(g.plan.Steps)
	scheduled := make([]bool, n)
	fetched := map[DataKey]bool{}
	satisfied := map[DataKey]bool{}
	var ops []IROp
	remaining := n
	for remaining > 0 {
		var op IROp
		// Eligible computes, in plan order.
		var cands []int
		for i := 0; i < n; i++ {
			if !scheduled[i] && g.eligible(i, satisfied) {
				cands = append(cands, i)
			}
		}
		cands = pickCompute(cands)
		for _, i := range cands {
			if len(op.Computes) >= lim.MaxCompute {
				break
			}
			op.Computes = append(op.Computes, i)
			scheduled[i] = true
			remaining--
		}
		// Pending communications: unsatisfied deps of unscheduled computes,
		// in first-use order, deduplicated.
		var commCands []DataKey
		seen := map[DataKey]bool{}
		for i := 0; i < n; i++ {
			if scheduled[i] {
				continue
			}
			for _, d := range g.deps[i] {
				if !satisfied[d] && !fetched[d] && !seen[d] {
					seen[d] = true
					commCands = append(commCands, d)
				}
			}
		}
		commCands = pickComm(commCands)
		for _, d := range commCands {
			if len(op.Comms) >= lim.MaxComm {
				break
			}
			op.Comms = append(op.Comms, g.comm[d])
			fetched[d] = true
		}
		if len(op.Computes) == 0 && len(op.Comms) == 0 {
			panic("ir: traversal stalled with work remaining (graph inconsistency)")
		}
		// Communications land at the end of the op: satisfy their edges for
		// the next op.
		for _, c := range op.Comms {
			satisfied[c.Key] = true
		}
		ops = append(ops, op)
	}
	return Program{PE: g.plan.Rank, Plan: g.plan, Ops: ops}
}

// Validate checks that a program schedules every step exactly once and
// never runs a compute before its data dependencies are satisfied. It
// returns an error describing the first violation.
func (p Program) Validate() error {
	g := buildGraph(p.Plan)
	satisfied := map[DataKey]bool{}
	count := make([]int, len(p.Plan.Steps))
	for opIdx, op := range p.Ops {
		for _, i := range op.Computes {
			if i < 0 || i >= len(count) {
				return fmt.Errorf("ir: op %d references unknown step %d", opIdx, i)
			}
			count[i]++
			for _, d := range g.deps[i] {
				if !satisfied[d] {
					return fmt.Errorf("ir: op %d runs step %d before %v is satisfied", opIdx, i, d)
				}
			}
		}
		for _, c := range op.Comms {
			satisfied[c.Key] = true
		}
	}
	for i, n := range count {
		if n != 1 {
			return fmt.Errorf("ir: step %d scheduled %d times", i, n)
		}
	}
	return nil
}

// NumComms returns the total communications in the program.
func (p Program) NumComms() int {
	total := 0
	for _, op := range p.Ops {
		total += len(op.Comms)
	}
	return total
}
