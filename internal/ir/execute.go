package ir

import (
	"fmt"
	"sync"

	"slicing/internal/distmat"
	"slicing/internal/gpusim"
	rt "slicing/internal/runtime"
	"slicing/internal/tile"
	"slicing/internal/universal"
)

// Execute runs a lowered program with real arithmetic over the PGAS world:
// each output IR op launches its communications asynchronously, runs its
// computes concurrently, and then waits for both before advancing — the
// explicit overlap structure of §4.3. It performs no collective
// synchronization; callers barrier afterwards (and reduce replicas of C if
// replicated).
func Execute(pe rt.PE, prob universal.Problem, prog Program, pool *gpusim.Pool) {
	if prog.PE != pe.Rank() {
		panic(fmt.Sprintf("ir: program for rank %d executed by rank %d", prog.PE, pe.Rank()))
	}
	if pool == nil {
		pool = gpusim.NewPool()
	}
	tiles := map[DataKey]*tile.Matrix{}
	localTile := func(key DataKey) *tile.Matrix {
		switch key.Mat {
		case 'A':
			return prob.A.Tile(pe, key.Idx, distmat.LocalReplica)
		case 'B':
			return prob.B.Tile(pe, key.Idx, distmat.LocalReplica)
		default:
			panic(fmt.Sprintf("ir: unknown matrix %c", key.Mat))
		}
	}
	for _, op := range prog.Ops {
		// Launch communications for this op.
		type inflight struct {
			key DataKey
			fut *distmat.TileFuture
		}
		fetches := make([]inflight, 0, len(op.Comms))
		for _, c := range op.Comms {
			var f *distmat.TileFuture
			switch c.Key.Mat {
			case 'A':
				f = prob.A.GetTileAsync(pe, c.Key.Idx, distmat.LocalReplica)
			case 'B':
				f = prob.B.GetTileAsync(pe, c.Key.Idx, distmat.LocalReplica)
			default:
				panic(fmt.Sprintf("ir: unknown matrix %c", c.Key.Mat))
			}
			fetches = append(fetches, inflight{c.Key, f})
		}
		// Run this op's computes concurrently; their dependencies were
		// satisfied by earlier ops.
		var wg sync.WaitGroup
		for _, stepIdx := range op.Computes {
			s := prog.Plan.Steps[stepIdx]
			var aTile, bTile *tile.Matrix
			if s.ALocal {
				aTile = localTile(DataKey{'A', s.Op.AIdx})
			} else {
				var ok bool
				if aTile, ok = tiles[DataKey{'A', s.Op.AIdx}]; !ok {
					panic(fmt.Sprintf("ir: step %d runs before A%v fetched (invalid program)", stepIdx, s.Op.AIdx))
				}
			}
			if s.BLocal {
				bTile = localTile(DataKey{'B', s.Op.BIdx})
			} else {
				var ok bool
				if bTile, ok = tiles[DataKey{'B', s.Op.BIdx}]; !ok {
					panic(fmt.Sprintf("ir: step %d runs before B%v fetched (invalid program)", stepIdx, s.Op.BIdx))
				}
			}
			wg.Add(1)
			go func(s universal.Step, aTile, bTile *tile.Matrix) {
				defer wg.Done()
				universal.RunStep(pe, prob, s, aTile, bTile, pool)
			}(s, aTile, bTile)
		}
		wg.Wait()
		// Communications complete at the end of the op; their tiles become
		// available to subsequent ops.
		for _, f := range fetches {
			tiles[f.key] = f.fut.Wait()
		}
	}
}

// MultiplyIR computes C = A·B by lowering each rank's plan with the given
// generator and executing the resulting programs. Collective. It returns
// the resolved stationary strategy.
func MultiplyIR(pe rt.PE, c, a, b *distmat.Matrix, stat universal.Stationary,
	lower func(universal.Plan) Program) universal.Stationary {
	prob := universal.NewProblem(c, a, b)
	c.Zero(pe)
	plan := universal.BuildPlan(pe.Rank(), prob, stat, universal.DefaultCacheTiles)
	prog := lower(plan)
	if err := prog.Validate(); err != nil {
		panic(err)
	}
	Execute(pe, prob, prog, nil)
	pe.Barrier()
	if c.Replication() > 1 {
		c.ReduceReplicas(pe, 0)
		c.BroadcastReplica(pe, 0)
	}
	return plan.Stationary
}
