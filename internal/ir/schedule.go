package ir

import (
	"sort"

	"slicing/internal/costmodel"
	"slicing/internal/universal"
)

// Cost prices a program under the cost model: each output IR op costs the
// maximum of its total communication time and total computation time (§4.3
// — overlapped execution within an op), and ops run back to back.
func Cost(md *costmodel.Model, p Program) float64 {
	var total float64
	for _, op := range p.Ops {
		var comm, compute float64
		for _, c := range op.Comms {
			comm += md.FetchCost(c.Src, p.PE, c.Bytes)
		}
		for _, i := range op.Computes {
			s := p.Plan.Steps[i]
			compute += md.GemmCost(s.Op.M.Len(), s.Op.N.Len(), s.Op.K.Len())
			if s.CLocal {
				compute += md.AccumCost(p.PE, p.PE, s.AccumBytes)
			} else {
				comm += md.AccumCost(p.PE, s.CDst, s.AccumBytes)
			}
		}
		if comm > compute {
			total += comm
		} else {
			total += compute
		}
	}
	return total
}

// CostGreedy lowers a plan with cost-model-guided selection: the most
// expensive eligible computes are scheduled first (so long poles overlap
// with as much communication as possible), and communications that unblock
// the most expensive pending computes are preferred.
func CostGreedy(md *costmodel.Model, plan universal.Plan, lim Limits) Program {
	lim = lim.withDefaults()
	g := buildGraph(plan)

	stepCost := make([]float64, len(plan.Steps))
	for i, s := range plan.Steps {
		stepCost[i] = md.GemmCost(s.Op.M.Len(), s.Op.N.Len(), s.Op.K.Len())
	}
	// unblockValue[d] is the cost of the most expensive compute needing d.
	unblockValue := map[DataKey]float64{}
	for i, deps := range g.deps {
		for _, d := range deps {
			if stepCost[i] > unblockValue[d] {
				unblockValue[d] = stepCost[i]
			}
		}
	}

	prog := traverse(g, lim,
		func(cands []int) []int {
			sort.SliceStable(cands, func(a, b int) bool { return stepCost[cands[a]] > stepCost[cands[b]] })
			return cands
		},
		func(cands []DataKey) []DataKey {
			sort.SliceStable(cands, func(a, b int) bool {
				return unblockValue[cands[a]] > unblockValue[cands[b]]
			})
			return cands
		})
	prog.Rank = "cost-greedy"
	return prog
}

// ExhaustiveLimit is the largest op count Exhaustive will search; beyond
// it the search space (all orderings) is infeasible and callers should use
// CostGreedy. The paper reaches the same conclusion: after the §4.2
// optimizations, direct execution is almost always as good as the optimal
// schedule, so the exhaustive search is a verification tool for small
// problems, not a production path.
const ExhaustiveLimit = 8

// Exhaustive searches every schedulable ordering of the plan's steps (up
// to ExhaustiveLimit steps), greedily packing each ordering into IR ops and
// scoring with the cost model; it returns the cheapest program found.
func Exhaustive(md *costmodel.Model, plan universal.Plan, lim Limits) Program {
	lim = lim.withDefaults()
	if len(plan.Steps) > ExhaustiveLimit {
		return CostGreedy(md, plan, lim)
	}
	n := len(plan.Steps)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := Program{}
	bestCost := -1.0
	var recurse func(k int)
	recurse = func(k int) {
		if k == n {
			prog := packOrdering(plan, perm, lim)
			if c := Cost(md, prog); bestCost < 0 || c < bestCost {
				bestCost = c
				best = prog
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			recurse(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	recurse(0)
	best.Rank = "exhaustive"
	return best
}

// packOrdering greedily packs steps in the given order into IR ops,
// inserting each step's communications in the op before its compute.
func packOrdering(plan universal.Plan, order []int, lim Limits) Program {
	g := buildGraph(plan)
	satisfied := map[DataKey]bool{}
	fetched := map[DataKey]bool{}
	var ops []IROp
	var cur IROp
	flush := func() {
		if len(cur.Computes) > 0 || len(cur.Comms) > 0 {
			for _, c := range cur.Comms {
				satisfied[c.Key] = true
			}
			ops = append(ops, cur)
			cur = IROp{}
		}
	}
	for _, i := range order {
		// Fetch missing deps first; they land at the end of the op carrying
		// them, so the compute goes into a later op.
		needed := false
		for _, d := range g.deps[i] {
			if satisfied[d] {
				continue
			}
			needed = true
			if !fetched[d] {
				if len(cur.Comms) >= lim.MaxComm {
					flush()
				}
				cur.Comms = append(cur.Comms, g.comm[d])
				fetched[d] = true
			}
		}
		if needed {
			flush()
		}
		if len(cur.Computes) >= lim.MaxCompute {
			flush()
		}
		cur.Computes = append(cur.Computes, i)
	}
	flush()
	return Program{PE: plan.Rank, Plan: plan, Ops: ops}
}

// Direct lowers a plan into the IR the way direct execution behaves: one
// compute per op with its fetches issued PrefetchDepth ops earlier. Used as
// the baseline in the E8 schedule ablation.
func Direct(plan universal.Plan, prefetchDepth int) Program {
	if prefetchDepth < 0 {
		prefetchDepth = 2
	}
	fetched := map[DataKey]bool{}
	n := len(plan.Steps)
	ops := make([]IROp, n)
	place := func(stepIdx int, key DataKey, src, bytes int) {
		if fetched[key] {
			return
		}
		fetched[key] = true
		at := stepIdx - prefetchDepth - 1
		if at < 0 {
			at = 0
		}
		// A fetch in op t is satisfied for op t+1; clamp so the data is
		// ready before its compute.
		if at >= stepIdx && stepIdx > 0 {
			at = stepIdx - 1
		}
		ops[at].Comms = append(ops[at].Comms, Comm{Key: key, Src: src, Bytes: bytes})
	}
	for i, s := range plan.Steps {
		if s.FetchA {
			place(i, DataKey{'A', s.Op.AIdx}, s.ASrc, s.ABytes)
		}
		if s.FetchB {
			place(i, DataKey{'B', s.Op.BIdx}, s.BSrc, s.BBytes)
		}
	}
	for i := range plan.Steps {
		ops[i].Computes = append(ops[i].Computes, i)
	}
	// Steps whose fetch lands in the same op as the compute (step 0 with
	// prefetch 0) violate the end-of-op rule; prepend a fetch-only op.
	if n > 0 && len(ops[0].Comms) > 0 && len(ops[0].Computes) > 0 {
		needs := false
		for _, c := range ops[0].Comms {
			key := c.Key
			s := plan.Steps[0]
			if (key == DataKey{'A', s.Op.AIdx}) || (key == DataKey{'B', s.Op.BIdx}) {
				needs = true
			}
		}
		if needs {
			head := IROp{Comms: ops[0].Comms}
			ops[0].Comms = nil
			ops = append([]IROp{head}, ops...)
		}
	}
	return Program{Rank: "direct", PE: plan.Rank, Plan: plan, Ops: ops}
}
