// Package dtensor implements an SPMD distributed-tensor system in the
// mold of PyTorch DTensor, the paper's primary comparison point (§5): users
// annotate tensors with placements (Shard/Replicate/Partial over a 1-D
// device mesh), matmuls dispatch against a fixed registry of sharding
// rules, and unsupported placement combinations force a redistribute
// (reshard) of one operand — the exact "limited set of implementations plus
// resharding overhead" behaviour the universal algorithm removes.
//
// The system is functional (real arithmetic over the PGAS world, verified
// against the serial reference) and deliberately restricted: 2-D mesh
// placements and mixed replication factors are rejected the way the paper
// observed DTensor rejecting them.
package dtensor

import (
	"fmt"

	"slicing/internal/distmat"
	rt "slicing/internal/runtime"
	"slicing/internal/tile"
)

// Placement describes how a tensor is laid out across the device mesh.
type Placement int

const (
	// Shard0 splits dimension 0 (rows) into contiguous bands, one per device.
	Shard0 Placement = iota
	// Shard1 splits dimension 1 (columns).
	Shard1
	// Replicate stores the full tensor on every device.
	Replicate
	// Partial stores a full-size partial term on every device; the logical
	// tensor is the element-wise sum across devices.
	Partial
)

func (p Placement) String() string {
	switch p {
	case Shard0:
		return "Shard(0)"
	case Shard1:
		return "Shard(1)"
	case Replicate:
		return "Replicate"
	case Partial:
		return "Partial"
	}
	return "?"
}

// DTensor is a distributed tensor: a global shape, a placement, and
// backing storage in symmetric memory.
type DTensor struct {
	Rows, Cols int
	Place      Placement
	Mat        *distmat.Matrix
	world      rt.World
}

// New allocates a DTensor with the given placement over the world's 1-D
// mesh. The allocator is either the rt.World (before Run) or a
// *shmem.PE (collectively, from inside a PE body).
func New(alloc rt.Allocator, rows, cols int, place Placement) *DTensor {
	w := alloc.World()
	var m *distmat.Matrix
	switch place {
	case Shard0:
		m = distmat.New(alloc, rows, cols, distmat.RowBlock{}, 1)
	case Shard1:
		m = distmat.New(alloc, rows, cols, distmat.ColBlock{}, 1)
	case Replicate, Partial:
		// One slot per replica: every device holds the full tensor.
		m = distmat.New(alloc, rows, cols, distmat.RowBlock{}, w.NumPE())
	default:
		panic(fmt.Sprintf("dtensor: unknown placement %v", place))
	}
	return &DTensor{Rows: rows, Cols: cols, Place: place, Mat: m, world: w}
}

// World returns the tensor's world.
func (t *DTensor) World() rt.World { return t.world }

// FillRandom deterministically fills the tensor (replicas identical;
// Partial tensors get the value only on device 0 so the logical sum is the
// filled matrix). Collective.
func (t *DTensor) FillRandom(pe rt.PE, seed int64) {
	t.Mat.FillRandom(pe, seed)
	if t.Place == Partial && pe.Rank() != 0 {
		// Only device 0 contributes the payload; the rest hold zero terms.
		t.zeroLocal(pe)
	}
	pe.Barrier()
}

func (t *DTensor) zeroLocal(pe rt.PE) {
	for _, idx := range t.Mat.OwnedTiles(pe.Rank()) {
		t.Mat.Tile(pe, idx, distmat.LocalReplica).Zero()
	}
}

// Full materializes the logical tensor on the calling PE: a gather for
// sharded/replicated tensors, a sum of all devices' terms for Partial.
func (t *DTensor) Full(pe rt.PE) *tile.Matrix {
	if t.Place != Partial {
		return t.Mat.Gather(pe, 0)
	}
	out := t.Mat.Gather(pe, 0)
	for rep := 1; rep < t.Mat.Replication(); rep++ {
		out.AddFrom(t.Mat.Gather(pe, rep))
	}
	return out
}
