package dtensor

import (
	"math"

	"slicing/internal/universal"
)

// SimResult reports one simulated DTensor matmul.
type SimResult struct {
	Seconds       float64
	PercentOfPeak float64
	CommBytes     float64
	Supported     bool
}

// ringBW returns the bandwidth of the slowest hop on the natural ring over
// the topology, which bottlenecks ring-based collectives (the oneCCL/NCCL
// implementations DTensor dispatches to).
func ringBW(sys universal.SimSystem) float64 {
	p := sys.Topo.NumPE()
	bw := math.Inf(1)
	for i := 0; i < p; i++ {
		if b := sys.Topo.Bandwidth(i, (i+1)%p); b < bw {
			bw = b
		}
	}
	return bw
}

// SimulateMatmul estimates the time of one DTensor matmul with the given
// input placements on the simulated system: the dispatched local GEMM
// (roofline with shape efficiency) plus the collectives the dispatch rule
// implies (ring all-reduce for Partial outputs — the redistribute() the
// paper issues to complete the reduction — or ring all-gather when an
// operand must be resharded first). Unsupported combinations return
// Supported == false.
func SimulateMatmul(sys universal.SimSystem, m, n, k int, pa, pb Placement) SimResult {
	p := sys.Topo.NumPE()
	bw := ringBW(sys)
	fp := float64(p)

	// Ring collective costs over x bytes.
	allReduce := func(bytes float64) float64 { return 2 * (fp - 1) / fp * bytes / bw }
	allGather := func(bytes float64) float64 { return (fp - 1) / fp * bytes / bw }

	var gemmT, commT, commBytes float64
	supported := true
	ceil := func(a, b int) int { return (a + b - 1) / b }

	switch {
	case pa == Shard0 && pb == Replicate:
		gemmT = sys.Dev.GemmTime(ceil(m, p), n, k)
	case pa == Replicate && pb == Shard1:
		gemmT = sys.Dev.GemmTime(m, ceil(n, p), k)
	case pa == Shard1 && pb == Shard0:
		// Outer product: Partial output, completed with an all-reduce of C.
		gemmT = sys.Dev.GemmTime(m, n, ceil(k, p))
		commBytes = 4 * float64(m) * float64(n)
		commT = allReduce(commBytes)
	case pa == Replicate && pb == Shard0:
		gemmT = sys.Dev.GemmTime(m, n, ceil(k, p))
		commBytes = 4 * float64(m) * float64(n)
		commT = allReduce(commBytes)
	case pa == Shard1 && pb == Replicate:
		gemmT = sys.Dev.GemmTime(m, n, ceil(k, p))
		commBytes = 4 * float64(m) * float64(n)
		commT = allReduce(commBytes)
	case pa == Replicate && pb == Replicate:
		gemmT = sys.Dev.GemmTime(m, n, k)
	case pa == Shard0 && (pb == Shard0 || pb == Shard1):
		// Reshard B to Replicate (all-gather), then row-parallel GEMM.
		commBytes = 4 * float64(k) * float64(n)
		commT = allGather(commBytes)
		gemmT = sys.Dev.GemmTime(ceil(m, p), n, k)
	case pa == Shard1 && pb == Shard1:
		commBytes = 4 * float64(m) * float64(k)
		commT = allGather(commBytes)
		gemmT = sys.Dev.GemmTime(m, ceil(n, p), k)
	default:
		supported = false
	}

	res := SimResult{Supported: supported}
	if !supported {
		return res
	}
	res.Seconds = gemmT + commT + sys.Dev.LaunchOverhead
	res.CommBytes = commBytes
	flops := 2 * float64(m) * float64(n) * float64(k)
	res.PercentOfPeak = flops / (fp * sys.Dev.PeakFlops * res.Seconds) * 100
	return res
}

// SimulateRowPartitioning is the "DT - Row" series of Figures 2-3: the
// weight matrix row-sharded (over k), the activation column-sharded to
// match, producing a Partial output completed by an all-reduce.
func SimulateRowPartitioning(sys universal.SimSystem, m, n, k int) SimResult {
	return SimulateMatmul(sys, m, n, k, Shard1, Shard0)
}

// SimulateColPartitioning is the "DT - Column" series: the weight matrix
// column-sharded with the activation replicated (Megatron-style), which
// needs no communication inside the matmul.
func SimulateColPartitioning(sys universal.SimSystem, m, n, k int) SimResult {
	return SimulateMatmul(sys, m, n, k, Replicate, Shard1)
}
