package dtensor

import (
	"fmt"

	"slicing/internal/collectives"
	"slicing/internal/distmat"
	rt "slicing/internal/runtime"
	"slicing/internal/tile"
)

// ErrUnsupported is returned (as a panic payload of type UnsupportedError)
// when no sharding rule matches and resharding is disabled — reproducing
// DTensor's behaviour for placements with no registered algorithm.
type UnsupportedError struct {
	PlaceA, PlaceB Placement
}

func (e UnsupportedError) Error() string {
	return fmt.Sprintf("dtensor: no matmul rule for (%v, %v)", e.PlaceA, e.PlaceB)
}

// Matmul multiplies two DTensors with the SPMD dispatch discipline:
//
//	(Shard0,    Replicate) -> Shard0    local row-band GEMM, no comm
//	(Replicate, Shard1)    -> Shard1    local column-band GEMM, no comm
//	(Shard1,    Shard0)    -> Partial   outer-product partial terms
//	(Replicate, Shard0)    -> Partial   k-sliced partial terms
//	(Shard1,    Replicate) -> Partial   k-sliced partial terms
//	(Replicate, Replicate) -> Replicate full local GEMM
//
// Any other combination has no registered algorithm: one operand is
// redistributed first (allgather to Replicate, or allreduce for Partial
// inputs), mirroring the resharding overhead the paper attributes to
// dispatch-based systems. Collective.
func Matmul(pe rt.PE, x, w *DTensor) *DTensor {
	if x.Cols != w.Rows {
		panic(fmt.Sprintf("dtensor: shape mismatch %dx%d @ %dx%d", x.Rows, x.Cols, w.Rows, w.Cols))
	}
	// Partial inputs must be completed before they can be consumed.
	if x.Place == Partial {
		x = Redistribute(pe, x, Replicate)
	}
	if w.Place == Partial {
		w = Redistribute(pe, w, Replicate)
	}

	switch {
	case x.Place == Shard0 && w.Place == Replicate:
		return matmulRowParallel(pe, x, w)
	case x.Place == Replicate && w.Place == Shard1:
		return matmulColParallel(pe, x, w)
	case x.Place == Shard1 && w.Place == Shard0:
		return matmulOuterProduct(pe, x, w)
	case x.Place == Replicate && w.Place == Shard0:
		return matmulKSlicedA(pe, x, w)
	case x.Place == Shard1 && w.Place == Replicate:
		return matmulKSlicedB(pe, x, w)
	case x.Place == Replicate && w.Place == Replicate:
		return matmulReplicated(pe, x, w)
	// No registered rule: reshard the right operand and retry, the
	// redistribute() fallback of §5.2.
	case x.Place == Shard0:
		return matmulRowParallel(pe, x, Redistribute(pe, w, Replicate))
	case x.Place == Shard1 && w.Place == Shard1:
		return matmulColParallel(pe, Redistribute(pe, x, Replicate), w)
	default:
		panic(UnsupportedError{x.Place, w.Place})
	}
}

// bandFor returns this PE's band interval under a RowBlock/ColBlock split
// of extent over the world.
func bandFor(pe rt.PE, extent int) (begin, end int) {
	p := pe.NumPE()
	size := (extent + p - 1) / p
	begin = pe.Rank() * size
	if begin > extent {
		begin = extent
	}
	end = begin + size
	if end > extent {
		end = extent
	}
	return begin, end
}

func localFull(pe rt.PE, t *DTensor) *tile.Matrix {
	tiles := t.Mat.OwnedTiles(pe.Rank())
	if len(tiles) != 1 {
		panic(fmt.Sprintf("dtensor: replicated tensor owns %d tiles", len(tiles)))
	}
	return t.Mat.Tile(pe, tiles[0], distmat.LocalReplica)
}

func localBand(pe rt.PE, t *DTensor) *tile.Matrix {
	tiles := t.Mat.OwnedTiles(pe.Rank())
	if len(tiles) == 0 {
		return tile.New(0, 0)
	}
	if len(tiles) != 1 {
		panic(fmt.Sprintf("dtensor: sharded tensor owns %d tiles", len(tiles)))
	}
	return t.Mat.Tile(pe, tiles[0], distmat.LocalReplica)
}

func matmulRowParallel(pe rt.PE, x, w *DTensor) *DTensor {
	out := New(pe, x.Rows, w.Cols, Shard0)
	xBand := localBand(pe, x)
	if xBand.Rows > 0 {
		cBand := localBand(pe, out)
		cBand.Zero()
		tile.Gemm(cBand, xBand, localFull(pe, w))
	}
	pe.Barrier()
	return out
}

func matmulColParallel(pe rt.PE, x, w *DTensor) *DTensor {
	out := New(pe, x.Rows, w.Cols, Shard1)
	wBand := localBand(pe, w)
	if wBand.Cols > 0 {
		cBand := localBand(pe, out)
		cBand.Zero()
		tile.Gemm(cBand, localFull(pe, x), wBand)
	}
	pe.Barrier()
	return out
}

func matmulOuterProduct(pe rt.PE, x, w *DTensor) *DTensor {
	out := New(pe, x.Rows, w.Cols, Partial)
	xBand := localBand(pe, x) // my k-columns of X
	wBand := localBand(pe, w) // my k-rows of W
	mine := localFull(pe, out)
	mine.Zero()
	if xBand.Cols > 0 && wBand.Rows > 0 {
		tile.Gemm(mine, xBand, wBand)
	}
	pe.Barrier()
	return out
}

func matmulKSlicedA(pe rt.PE, x, w *DTensor) *DTensor {
	out := New(pe, x.Rows, w.Cols, Partial)
	begin, end := bandFor(pe, x.Cols)
	mine := localFull(pe, out)
	mine.Zero()
	if end > begin {
		xFull := localFull(pe, x)
		xSlice := xFull.View(0, begin, x.Rows, end-begin)
		tile.Gemm(mine, xSlice, localBand(pe, w))
	}
	pe.Barrier()
	return out
}

func matmulKSlicedB(pe rt.PE, x, w *DTensor) *DTensor {
	out := New(pe, x.Rows, w.Cols, Partial)
	begin, end := bandFor(pe, w.Rows)
	mine := localFull(pe, out)
	mine.Zero()
	if end > begin {
		wFull := localFull(pe, w)
		wSlice := wFull.View(begin, 0, end-begin, w.Cols)
		tile.Gemm(mine, localBand(pe, x), wSlice)
	}
	pe.Barrier()
	return out
}

func matmulReplicated(pe rt.PE, x, w *DTensor) *DTensor {
	out := New(pe, x.Rows, w.Cols, Replicate)
	mine := localFull(pe, out)
	mine.Zero()
	tile.Gemm(mine, localFull(pe, x), localFull(pe, w))
	pe.Barrier()
	return out
}

// Redistribute converts a DTensor to the target placement using
// collectives over the one-sided substrate: Partial→Replicate is an
// all-reduce, Shard→Replicate an all-gather (one-sided pulls),
// Replicate→Shard a local slice, Partial→Shard an all-reduce followed by a
// slice, and Shard0↔Shard1 goes through Replicate. Collective.
func Redistribute(pe rt.PE, t *DTensor, target Placement) *DTensor {
	if t.Place == target {
		return t
	}
	w := t.world
	group := collectives.WorldGroup(w.NumPE())
	switch {
	case t.Place == Partial && target == Replicate:
		collectives.AllReduce(pe, group, t.Mat.Segment(), 0, t.Rows*t.Cols)
		out := *t
		out.Place = Replicate
		return &out
	case t.Place == Partial: // Partial -> Shard*
		return Redistribute(pe, Redistribute(pe, t, Replicate), target)
	case (t.Place == Shard0 || t.Place == Shard1) && target == Replicate:
		out := New(pe, t.Rows, t.Cols, Replicate)
		full := t.Full(pe) // one-sided all-gather: every PE pulls all bands
		localFull(pe, out).CopyFrom(full)
		pe.Barrier()
		return out
	case t.Place == Replicate && (target == Shard0 || target == Shard1):
		out := New(pe, t.Rows, t.Cols, target)
		band := localBand(pe, out)
		if band.Rows > 0 && band.Cols > 0 {
			src := localFull(pe, t)
			if target == Shard0 {
				begin, _ := bandFor(pe, t.Rows)
				band.CopyFrom(src.View(begin, 0, band.Rows, band.Cols))
			} else {
				begin, _ := bandFor(pe, t.Cols)
				band.CopyFrom(src.View(0, begin, band.Rows, band.Cols))
			}
		}
		pe.Barrier()
		return out
	default: // Shard0 <-> Shard1
		return Redistribute(pe, Redistribute(pe, t, Replicate), target)
	}
}
