package dtensor

import (
	"fmt"
	"testing"

	rt "slicing/internal/runtime"
	"slicing/internal/shmem"
	"slicing/internal/tile"
	"slicing/internal/universal"
)

// checkMatmul runs Matmul with the given placements and verifies against
// the serial product.
func checkMatmul(t *testing.T, p, m, n, k int, pa, pb Placement) {
	t.Helper()
	w := shmem.NewWorld(p)
	x := New(w, m, k, pa)
	wt := New(w, k, n, pb)
	var ref, got *tile.Matrix
	w.Run(func(pe rt.PE) {
		x.FillRandom(pe, 51)
		wt.FillRandom(pe, 52)
	})
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			fx := x.Full(pe)
			fw := wt.Full(pe)
			ref = tile.New(m, n)
			tile.GemmNaive(ref, fx, fw)
		}
	})
	var outPlace Placement
	w.Run(func(pe rt.PE) {
		out := Matmul(pe, x, wt)
		if pe.Rank() == 0 {
			got = out.Full(pe)
			outPlace = out.Place
		}
	})
	if !got.AllClose(ref, 1e-3) {
		t.Fatalf("(%v,%v): mismatch %g", pa, pb, got.MaxAbsDiff(ref))
	}
	_ = outPlace
}

func TestMatmulAllPlacementPairs(t *testing.T) {
	places := []Placement{Shard0, Shard1, Replicate}
	for _, pa := range places {
		for _, pb := range places {
			t.Run(fmt.Sprintf("%v_%v", pa, pb), func(t *testing.T) {
				checkMatmul(t, 4, 18, 22, 26, pa, pb)
			})
		}
	}
}

func TestMatmulPartialInputsCompleted(t *testing.T) {
	checkMatmul(t, 4, 12, 14, 16, Partial, Replicate)
	checkMatmul(t, 4, 12, 14, 16, Replicate, Partial)
}

func TestMatmulOutputPlacements(t *testing.T) {
	w := shmem.NewWorld(4)
	cases := []struct {
		pa, pb, want Placement
	}{
		{Shard0, Replicate, Shard0},
		{Replicate, Shard1, Shard1},
		{Shard1, Shard0, Partial},
		{Replicate, Shard0, Partial},
		{Shard1, Replicate, Partial},
		{Replicate, Replicate, Replicate},
	}
	for _, tc := range cases {
		x := New(w, 16, 16, tc.pa)
		wt := New(w, 16, 16, tc.pb)
		var got Placement
		w.Run(func(pe rt.PE) {
			x.FillRandom(pe, 1)
			wt.FillRandom(pe, 2)
			out := Matmul(pe, x, wt)
			if pe.Rank() == 0 {
				got = out.Place
			}
		})
		if got != tc.want {
			t.Errorf("(%v,%v) -> %v, want %v", tc.pa, tc.pb, got, tc.want)
		}
	}
}

func TestRedistributeRoundTrips(t *testing.T) {
	const p, m, n = 4, 15, 21
	targets := []Placement{Shard0, Shard1, Replicate}
	for _, from := range targets {
		for _, to := range targets {
			t.Run(fmt.Sprintf("%v_to_%v", from, to), func(t *testing.T) {
				w := shmem.NewWorld(p)
				src := New(w, m, n, from)
				var ref, got *tile.Matrix
				w.Run(func(pe rt.PE) {
					src.FillRandom(pe, 77)
					if pe.Rank() == 0 {
						ref = src.Full(pe)
					}
				})
				w.Run(func(pe rt.PE) {
					out := Redistribute(pe, src, to)
					if out.Place != to {
						t.Errorf("placement = %v", out.Place)
					}
					if pe.Rank() == 1 {
						got = out.Full(pe)
					}
				})
				if !got.Equal(ref) {
					t.Fatalf("redistribute %v->%v corrupted data", from, to)
				}
			})
		}
	}
}

func TestRedistributePartialToShard(t *testing.T) {
	w := shmem.NewWorld(4)
	src := New(w, 12, 12, Partial)
	var ref, got *tile.Matrix
	w.Run(func(pe rt.PE) {
		src.FillRandom(pe, 3)
		if pe.Rank() == 0 {
			ref = src.Full(pe)
		}
	})
	w.Run(func(pe rt.PE) {
		out := Redistribute(pe, src, Shard0)
		if pe.Rank() == 2 {
			got = out.Full(pe)
		}
	})
	if !got.AllClose(ref, 1e-4) {
		t.Fatal("partial->shard lost the reduction")
	}
}

func TestMatmulShapeMismatchPanics(t *testing.T) {
	w := shmem.NewWorld(2)
	x := New(w, 4, 5, Replicate)
	wt := New(w, 6, 4, Replicate)
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch should panic")
		}
	}()
	w.Run(func(pe rt.PE) {
		Matmul(pe, x, wt)
	})
}

func TestUnsupportedErrorMessage(t *testing.T) {
	err := UnsupportedError{Shard0, Partial}
	if err.Error() == "" {
		t.Fatal("empty error message")
	}
}

func TestSimulateMatmulColumnNoComm(t *testing.T) {
	sys := universal.H100System()
	res := SimulateColPartitioning(sys, 4096, 49152, 12288)
	if !res.Supported {
		t.Fatal("column partitioning must be supported")
	}
	if res.CommBytes != 0 {
		t.Fatalf("Megatron-style column matmul should need no comm, got %g bytes", res.CommBytes)
	}
	if res.PercentOfPeak <= 0 || res.PercentOfPeak > 100 {
		t.Fatalf("percent of peak = %g", res.PercentOfPeak)
	}
}

func TestSimulateMatmulRowPaysAllReduce(t *testing.T) {
	sys := universal.PVCSystem()
	row := SimulateRowPartitioning(sys, 1024, 49152, 12288)
	col := SimulateColPartitioning(sys, 1024, 49152, 12288)
	if row.CommBytes == 0 {
		t.Fatal("row partitioning must all-reduce the output")
	}
	if row.Seconds <= col.Seconds {
		t.Fatalf("on MLP-1 with slow links, DT-Row (%.4g) should be slower than DT-Column (%.4g)",
			row.Seconds, col.Seconds)
	}
}

func TestSimulateMatmulReshardCost(t *testing.T) {
	sys := universal.H100System()
	direct := SimulateMatmul(sys, 2048, 2048, 2048, Shard0, Replicate)
	reshard := SimulateMatmul(sys, 2048, 2048, 2048, Shard0, Shard0)
	if !reshard.Supported {
		t.Fatal("shard0/shard0 should dispatch via reshard")
	}
	if reshard.Seconds <= direct.Seconds {
		t.Fatalf("resharding must cost something: %g vs %g", reshard.Seconds, direct.Seconds)
	}
}
