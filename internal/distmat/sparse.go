package distmat

import (
	"fmt"

	"slicing/internal/index"
	rt "slicing/internal/runtime"
	"slicing/internal/tile"
)

// Sparse is a distributed sparse matrix in tiled CSR form: the same
// partition/replication machinery as Matrix (the slicing pass is
// format-agnostic), with each tile stored in symmetric memory as an
// encoded CSR buffer sized to its actual nnz. Construction happens from a
// global CSR whose sparsity pattern therefore determines the layout; this
// matches how sparse solvers distribute an assembled matrix.
type Sparse struct {
	meta       *Matrix // shape/partition/ownership metadata (no dense data)
	seg        rt.SegmentID
	tileOffset [][]int
	tileNNZ    [][]int
}

// NewSparse distributes the global CSR matrix over the world with the
// given partition and replication factor.
func NewSparse(alloc rt.Allocator, global *tile.CSR, part Partition, replication int) *Sparse {
	meta := New(alloc, global.Rows, global.Cols, part, replication)
	tr, tc := meta.GridShape()
	s := &Sparse{meta: meta}
	s.tileOffset = make([][]int, tr)
	s.tileNNZ = make([][]int, tr)
	slotSize := make([]int, meta.Slots())
	tiles := make([][]*tile.CSR, tr)
	for r := 0; r < tr; r++ {
		s.tileOffset[r] = make([]int, tc)
		s.tileNNZ[r] = make([]int, tc)
		tiles[r] = make([]*tile.CSR, tc)
		for c := 0; c < tc; c++ {
			idx := index.TileIdx{Row: r, Col: c}
			b := meta.TileBounds(idx)
			t := global.Window(b.Rows.Begin, b.Rows.End, b.Cols.Begin, b.Cols.End)
			tiles[r][c] = t
			slot := meta.OwnerSlot(idx)
			s.tileOffset[r][c] = slotSize[slot]
			s.tileNNZ[r][c] = t.NNZ()
			slotSize[slot] += tile.EncodedCSRLen(t.Rows, t.NNZ())
		}
	}
	maxSize := 0
	for _, sz := range slotSize {
		if sz > maxSize {
			maxSize = sz
		}
	}
	s.seg = alloc.AllocSymmetric(maxSize)

	// Populate every owner's buffer on every rank (host-side init: the
	// world is not running yet, or callers init collectively; writing
	// direct through the world keeps this constructor PE-free).
	w := meta.World()
	for r := 0; r < tr; r++ {
		for c := 0; c < tc; c++ {
			idx := index.TileIdx{Row: r, Col: c}
			enc := tile.EncodeCSR(tiles[r][c])
			for rep := 0; rep < meta.Replication(); rep++ {
				rank := meta.RankFor(meta.OwnerSlot(idx), rep)
				dst := w.SegmentStorage(s.seg, rank)
				copy(dst[s.tileOffset[r][c]:s.tileOffset[r][c]+len(enc)], enc)
			}
		}
	}
	return s
}

// Meta returns the metadata matrix carrying the grid, partition, and
// ownership of the sparse matrix; its element storage is never touched.
func (s *Sparse) Meta() *Matrix { return s.meta }

// Rows returns the global row count.
func (s *Sparse) Rows() int { return s.meta.Rows() }

// Cols returns the global column count.
func (s *Sparse) Cols() int { return s.meta.Cols() }

// GridShape returns the tile grid shape.
func (s *Sparse) GridShape() (int, int) { return s.meta.GridShape() }

// TileBounds returns the bounds of tile idx.
func (s *Sparse) TileBounds(idx index.TileIdx) index.Rect { return s.meta.TileBounds(idx) }

// TileNNZ returns the stored entries of tile idx.
func (s *Sparse) TileNNZ(idx index.TileIdx) int { return s.tileNNZ[idx.Row][idx.Col] }

// GetTile fetches tile idx from the given replica with a one-sided read
// and decodes it to CSR.
func (s *Sparse) GetTile(pe rt.PE, idx index.TileIdx, replica int) *tile.CSR {
	b := s.meta.TileBounds(idx)
	rows, cols := b.Shape()
	n := tile.EncodedCSRLen(rows, s.tileNNZ[idx.Row][idx.Col])
	buf := make([]float32, n)
	owner := s.meta.OwnerRank(idx, replica, pe.Rank())
	pe.Get(buf, s.seg, owner, s.tileOffset[idx.Row][idx.Col])
	return tile.DecodeCSR(buf, rows, cols)
}

// Gather assembles the full sparse matrix (as dense, for verification)
// from the given replica.
func (s *Sparse) Gather(pe rt.PE, replica int) *tile.Matrix {
	out := tile.New(s.Rows(), s.Cols())
	tr, tc := s.meta.GridShape()
	for r := 0; r < tr; r++ {
		for c := 0; c < tc; c++ {
			idx := index.TileIdx{Row: r, Col: c}
			t := s.GetTile(pe, idx, replica)
			b := s.meta.TileBounds(idx)
			out.View(b.Rows.Begin, b.Cols.Begin, b.Rows.Len(), b.Cols.Len()).CopyFrom(t.ToDense())
		}
	}
	return out
}

func (s *Sparse) String() string {
	return fmt.Sprintf("SparseDistMatrix{%dx%d, %s, c=%d}",
		s.Rows(), s.Cols(), s.meta.Partition().Name(), s.meta.Replication())
}
