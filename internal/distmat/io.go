package distmat

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	rt "slicing/internal/runtime"
	"slicing/internal/tile"
)

// ioMagic identifies the serialized matrix format ("SLCM" + version 1).
var ioMagic = [8]byte{'S', 'L', 'C', 'M', 0, 0, 0, 1}

// WriteTo serializes the matrix's logical contents (replica 0, gathered
// with one-sided reads by the calling PE) in a simple self-describing
// binary format: magic, shape, then row-major float32 data. Any single PE
// may call it; it is not collective. The partitioning is deliberately not
// serialized — a checkpoint can be restored into any distribution.
func (m *Matrix) WriteTo(pe rt.PE, w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	if err := binary.Write(bw, binary.LittleEndian, ioMagic); err != nil {
		return written, fmt.Errorf("distmat: writing header: %w", err)
	}
	written += int64(len(ioMagic))
	dims := [2]int64{int64(m.rows), int64(m.cols)}
	if err := binary.Write(bw, binary.LittleEndian, dims); err != nil {
		return written, fmt.Errorf("distmat: writing shape: %w", err)
	}
	written += 16
	full := m.Gather(pe, 0)
	if err := binary.Write(bw, binary.LittleEndian, full.Data); err != nil {
		return written, fmt.Errorf("distmat: writing data: %w", err)
	}
	written += int64(len(full.Data)) * 4
	return written, bw.Flush()
}

// ReadInto deserializes a matrix written by WriteTo into this matrix,
// which must have the same global shape (any partitioning/replication).
// Collective: every PE must call it with an identical reader's content —
// in practice each PE opens its own copy — or call it via ScatterFrom
// after a single-PE ReadMatrix.
func (m *Matrix) ReadInto(pe rt.PE, r io.Reader) error {
	full, err := ReadDense(r)
	if err != nil {
		return err
	}
	if full.Rows != m.rows || full.Cols != m.cols {
		return fmt.Errorf("distmat: checkpoint is %dx%d, matrix is %dx%d",
			full.Rows, full.Cols, m.rows, m.cols)
	}
	m.ScatterFrom(pe, full)
	return nil
}

// ReadDense reads a serialized matrix into a local dense matrix.
func ReadDense(r io.Reader) (*tile.Matrix, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("distmat: reading header: %w", err)
	}
	if magic != ioMagic {
		return nil, fmt.Errorf("distmat: bad magic %v", magic)
	}
	var dims [2]int64
	if err := binary.Read(br, binary.LittleEndian, &dims); err != nil {
		return nil, fmt.Errorf("distmat: reading shape: %w", err)
	}
	rows, cols := int(dims[0]), int(dims[1])
	if rows < 0 || cols < 0 || (cols != 0 && rows > (1<<31)/max(cols, 1)) {
		return nil, fmt.Errorf("distmat: implausible shape %dx%d", rows, cols)
	}
	out := tile.New(rows, cols)
	if err := binary.Read(br, binary.LittleEndian, out.Data); err != nil {
		return nil, fmt.Errorf("distmat: reading data: %w", err)
	}
	return out, nil
}
