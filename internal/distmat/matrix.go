package distmat

import (
	"fmt"
	"math/rand"

	"slicing/internal/index"
	rt "slicing/internal/runtime"
	"slicing/internal/tile"
)

// LocalReplica selects the calling PE's own replica in primitives that take
// a replica index, matching the optional replica_idx of Table 1.
const LocalReplica = -1

// Matrix is a distributed dense matrix: a shape, a Partition, and a
// replication factor c. The world's p PEs are divided into c replica groups
// of p/c slots each; every replica holds a complete copy of the matrix
// partitioned across its slots. Tiles live in symmetric memory and are
// accessed with one-sided operations only.
type Matrix struct {
	world       rt.World
	rows, cols  int
	part        Partition
	replication int
	slots       int
	grid        index.Grid

	seg        rt.SegmentID
	tileOffset [][]int // [tileRow][tileCol] -> offset in owner slot's segment
	ownerSlot  [][]int // [tileRow][tileCol] -> slot
}

// New allocates a distributed rows×cols matrix with the given partition
// and replication factor. The replication factor must divide the number of
// PEs. The allocator is either the rt.World (host-side allocation
// before World.Run) or a *shmem.PE (collective allocation from inside a PE
// body, in which case every PE must call New in the same order).
func New(alloc rt.Allocator, rows, cols int, part Partition, replication int) *Matrix {
	w := alloc.World()
	p := w.NumPE()
	if replication <= 0 || p%replication != 0 {
		panic(fmt.Sprintf("distmat: replication %d does not divide %d PEs", replication, p))
	}
	slots := p / replication
	grid := part.Grid(rows, cols, slots)
	tr, tc := grid.GridShape()

	tileOffset := make([][]int, tr)
	ownerSlot := make([][]int, tr)
	slotSize := make([]int, slots)
	for r := 0; r < tr; r++ {
		tileOffset[r] = make([]int, tc)
		ownerSlot[r] = make([]int, tc)
		for c := 0; c < tc; c++ {
			idx := index.TileIdx{Row: r, Col: c}
			slot := part.OwnerSlot(grid, idx, slots)
			if slot < 0 || slot >= slots {
				panic(fmt.Sprintf("distmat: partition %s assigned tile %v to slot %d of %d",
					part.Name(), idx, slot, slots))
			}
			ownerSlot[r][c] = slot
			tileOffset[r][c] = slotSize[slot]
			slotSize[slot] += grid.TileBounds(idx).Area()
		}
	}
	maxSize := 0
	for _, s := range slotSize {
		if s > maxSize {
			maxSize = s
		}
	}

	return &Matrix{
		world: w, rows: rows, cols: cols, part: part, replication: replication,
		slots: slots, grid: grid,
		seg:        alloc.AllocSymmetric(maxSize),
		tileOffset: tileOffset, ownerSlot: ownerSlot,
	}
}

// Rows returns the global row count.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the global column count.
func (m *Matrix) Cols() int { return m.cols }

// Partition returns the matrix's partition object.
func (m *Matrix) Partition() Partition { return m.part }

// Replication returns the replication factor c.
func (m *Matrix) Replication() int { return m.replication }

// Slots returns the number of replica-local slots (p / c).
func (m *Matrix) Slots() int { return m.slots }

// World returns the world the matrix is distributed over.
func (m *Matrix) World() rt.World { return m.world }

// GridShape returns the tile-grid shape (the grid_shape() primitive).
func (m *Matrix) GridShape() (tileRows, tileCols int) { return m.grid.GridShape() }

// Grid returns the matrix's tile grid.
func (m *Matrix) Grid() index.Grid { return m.grid }

// TileBounds returns the global index rectangle of tile idx (tile_bounds).
func (m *Matrix) TileBounds(idx index.TileIdx) index.Rect { return m.grid.TileBounds(idx) }

// OverlappingTiles returns the tiles intersecting slice (overlapping_tiles).
func (m *Matrix) OverlappingTiles(slice index.Rect) []index.TileIdx {
	return m.grid.OverlappingTiles(slice)
}

// ReplicaOf returns the replica group a rank belongs to.
func (m *Matrix) ReplicaOf(rank int) int { return rank / m.slots }

// SlotOf returns a rank's replica-local slot.
func (m *Matrix) SlotOf(rank int) int { return rank % m.slots }

// RankFor returns the rank holding (slot, replica).
func (m *Matrix) RankFor(slot, replica int) int { return replica*m.slots + slot }

// OwnerSlot returns the replica-local slot owning tile idx.
func (m *Matrix) OwnerSlot(idx index.TileIdx) int {
	m.checkTile(idx)
	return m.ownerSlot[idx.Row][idx.Col]
}

// OwnerRank returns the rank holding tile idx in the given replica. A
// replica of LocalReplica is resolved against callerRank's replica.
func (m *Matrix) OwnerRank(idx index.TileIdx, replica, callerRank int) int {
	rep := m.resolveReplica(replica, callerRank)
	return m.RankFor(m.OwnerSlot(idx), rep)
}

// Owns reports whether rank holds tile idx within its own replica.
func (m *Matrix) Owns(rank int, idx index.TileIdx) bool {
	return m.SlotOf(rank) == m.OwnerSlot(idx)
}

// OwnedTiles returns, in row-major order, the tiles rank holds in its own
// replica.
func (m *Matrix) OwnedTiles(rank int) []index.TileIdx {
	tr, tc := m.grid.GridShape()
	var out []index.TileIdx
	slot := m.SlotOf(rank)
	for r := 0; r < tr; r++ {
		for c := 0; c < tc; c++ {
			if m.ownerSlot[r][c] == slot {
				out = append(out, index.TileIdx{Row: r, Col: c})
			}
		}
	}
	return out
}

// TileOffset returns the element offset of tile idx inside its owner's
// segment. Exposed for the communication backends.
func (m *Matrix) TileOffset(idx index.TileIdx) int {
	m.checkTile(idx)
	return m.tileOffset[idx.Row][idx.Col]
}

// Segment returns the matrix's symmetric segment ID.
func (m *Matrix) Segment() rt.SegmentID { return m.seg }

// Tile returns a zero-copy view of tile idx (the tile() primitive). The
// tile must be owned by pe within the requested replica; remote tiles need
// GetTile. Writes through the view modify symmetric memory directly.
func (m *Matrix) Tile(pe rt.PE, idx index.TileIdx, replica int) *tile.Matrix {
	owner := m.OwnerRank(idx, replica, pe.Rank())
	if owner != pe.Rank() {
		panic(fmt.Sprintf("distmat: Tile(%v) is held by rank %d, not caller %d; use GetTile",
			idx, owner, pe.Rank()))
	}
	b := m.grid.TileBounds(idx)
	rows, cols := b.Shape()
	off := m.tileOffset[idx.Row][idx.Col]
	return tile.FromSlice(rows, cols, pe.Local(m.seg)[off:off+rows*cols])
}

// TileInto fills dst with the zero-copy view of tile idx (the same view
// Tile returns) without allocating, for hot paths that keep tile headers in
// recycled storage. The tile must be owned by pe within the requested
// replica.
func (m *Matrix) TileInto(pe rt.PE, dst *tile.Matrix, idx index.TileIdx, replica int) {
	owner := m.OwnerRank(idx, replica, pe.Rank())
	if owner != pe.Rank() {
		panic(fmt.Sprintf("distmat: TileInto(%v) is held by rank %d, not caller %d; use GetTile",
			idx, owner, pe.Rank()))
	}
	b := m.grid.TileBounds(idx)
	rows, cols := b.Shape()
	off := m.tileOffset[idx.Row][idx.Col]
	*dst = tile.Matrix{Rows: rows, Cols: cols, Stride: cols, Data: pe.Local(m.seg)[off : off+rows*cols]}
}

// GetTile returns a fresh local copy of tile idx from the given replica
// (get_tile). Pass LocalReplica to read from the caller's own replica.
func (m *Matrix) GetTile(pe rt.PE, idx index.TileIdx, replica int) *tile.Matrix {
	b := m.grid.TileBounds(idx)
	rows, cols := b.Shape()
	dst := tile.New(rows, cols)
	owner := m.OwnerRank(idx, replica, pe.Rank())
	pe.Get(dst.Data, m.seg, owner, m.tileOffset[idx.Row][idx.Col])
	return dst
}

// GetTileInto copies tile idx into a caller-provided buffer matrix of the
// right shape, allowing pooled allocation in the hot path.
func (m *Matrix) GetTileInto(pe rt.PE, dst *tile.Matrix, idx index.TileIdx, replica int) {
	b := m.grid.TileBounds(idx)
	rows, cols := b.Shape()
	if dst.Rows != rows || dst.Cols != cols || !dst.IsDense() {
		panic(fmt.Sprintf("distmat: GetTileInto needs dense %dx%d buffer, got %v", rows, cols, dst))
	}
	owner := m.OwnerRank(idx, replica, pe.Rank())
	pe.Get(dst.Data, m.seg, owner, m.tileOffset[idx.Row][idx.Col])
}

// TileFuture is an in-flight asynchronous tile copy: Wait, then read Tile.
type TileFuture struct {
	Tile   *tile.Matrix
	future rt.Future
}

// Wait blocks until the tile copy has landed and returns the tile.
func (f *TileFuture) Wait() *tile.Matrix {
	f.future.Wait()
	return f.Tile
}

// Done reports whether the copy has completed.
func (f *TileFuture) Done() bool { return f.future.Done() }

// GetTileAsync starts an asynchronous copy of tile idx (get_tile_async) and
// returns a future. If the tile is local the future is already complete and
// the Tile is a zero-copy view, mirroring the local fast path of §4.2.
func (m *Matrix) GetTileAsync(pe rt.PE, idx index.TileIdx, replica int) *TileFuture {
	owner := m.OwnerRank(idx, replica, pe.Rank())
	if owner == pe.Rank() {
		return &TileFuture{Tile: m.Tile(pe, idx, replica), future: rt.CompletedFuture()}
	}
	b := m.grid.TileBounds(idx)
	rows, cols := b.Shape()
	dst := tile.New(rows, cols)
	f := pe.GetAsync(dst.Data, m.seg, owner, m.tileOffset[idx.Row][idx.Col])
	return &TileFuture{Tile: dst, future: f}
}

// GetTileIntoAsync starts an asynchronous copy of tile idx into dst — a
// dense buffer matrix of the tile's exact shape, typically recycled from a
// pool — and fills f with the in-flight future. It is the allocation-free
// variant of GetTileAsync: both the destination buffer and the future
// header are caller-owned, so the steady-state execution loop performs no
// per-fetch allocation. Unlike GetTileAsync there is no zero-copy local
// shortcut; the tile always lands in dst.
func (m *Matrix) GetTileIntoAsync(pe rt.PE, f *TileFuture, dst *tile.Matrix, idx index.TileIdx, replica int) {
	b := m.grid.TileBounds(idx)
	rows, cols := b.Shape()
	if dst.Rows != rows || dst.Cols != cols || !dst.IsDense() {
		panic(fmt.Sprintf("distmat: GetTileIntoAsync needs dense %dx%d buffer, got %v", rows, cols, dst))
	}
	owner := m.OwnerRank(idx, replica, pe.Rank())
	f.Tile = dst
	f.future = pe.GetAsync(dst.Data, m.seg, owner, m.tileOffset[idx.Row][idx.Col])
}

// GetSubTileIntoAsync starts an asynchronous copy of the sub-rectangle sub
// (global coordinates) of tile idx into dst, the caller-owned counterpart
// of GetSubTileAsync (see GetTileIntoAsync). dst must be dense with sub's
// exact shape.
func (m *Matrix) GetSubTileIntoAsync(pe rt.PE, f *TileFuture, dst *tile.Matrix, idx index.TileIdx, replica int, sub index.Rect) {
	b := m.grid.TileBounds(idx)
	if !b.ContainsRect(sub) {
		panic(fmt.Sprintf("distmat: sub-rect %v outside tile %v bounds %v", sub, idx, b))
	}
	rows, cols := sub.Shape()
	if dst.Rows != rows || dst.Cols != cols || !dst.IsDense() {
		panic(fmt.Sprintf("distmat: GetSubTileIntoAsync needs dense %dx%d buffer, got %v", rows, cols, dst))
	}
	f.Tile = dst
	if rows == 0 || cols == 0 {
		f.future = rt.CompletedFuture()
		return
	}
	_, tileCols := b.Shape()
	local := sub.Localize(b.Rows.Begin, b.Cols.Begin)
	owner := m.OwnerRank(idx, replica, pe.Rank())
	off := m.tileOffset[idx.Row][idx.Col] + local.Rows.Begin*tileCols + local.Cols.Begin
	f.future = pe.GetStridedAsync(dst.Data, cols, m.seg, owner, off, tileCols, rows, cols)
}

// AccumulateTile atomically adds view into tile idx of the given replica
// (accumulate_tile). The view must match the tile's shape.
func (m *Matrix) AccumulateTile(pe rt.PE, idx index.TileIdx, replica int, view *tile.Matrix) {
	b := m.grid.TileBounds(idx)
	rows, cols := b.Shape()
	if view.Rows != rows || view.Cols != cols {
		panic(fmt.Sprintf("distmat: accumulate shape %dx%d into %dx%d tile %v",
			view.Rows, view.Cols, rows, cols, idx))
	}
	owner := m.OwnerRank(idx, replica, pe.Rank())
	off := m.tileOffset[idx.Row][idx.Col]
	if view.IsDense() && view.Rows > 0 {
		pe.AccumulateAdd(view.Data[:rows*cols], m.seg, owner, off)
		return
	}
	pe.AccumulateAddStrided(view.Data, view.Stride, m.seg, owner, off, cols, rows, cols)
}

// AccumulateSubTile atomically adds view into the sub-rectangle sub (in
// global coordinates) of tile idx. This is the misaligned-tile accumulate
// path: when C's tiles do not align with the op's m×n bounds only a slice
// of the destination tile is updated.
func (m *Matrix) AccumulateSubTile(pe rt.PE, idx index.TileIdx, replica int, sub index.Rect, view *tile.Matrix) {
	b := m.grid.TileBounds(idx)
	if !b.ContainsRect(sub) {
		panic(fmt.Sprintf("distmat: sub-rect %v outside tile %v bounds %v", sub, idx, b))
	}
	rows, cols := sub.Shape()
	if view.Rows != rows || view.Cols != cols {
		panic(fmt.Sprintf("distmat: accumulate view %dx%d into %dx%d sub-rect", view.Rows, view.Cols, rows, cols))
	}
	if rows == 0 || cols == 0 {
		return
	}
	_, tileCols := b.Shape()
	local := sub.Localize(b.Rows.Begin, b.Cols.Begin)
	owner := m.OwnerRank(idx, replica, pe.Rank())
	off := m.tileOffset[idx.Row][idx.Col] + local.Rows.Begin*tileCols + local.Cols.Begin
	pe.AccumulateAddStrided(view.Data, view.Stride, m.seg, owner, off, tileCols, rows, cols)
}

// GetSubTile copies the sub-rectangle sub (global coordinates) of tile idx
// into a fresh local matrix.
func (m *Matrix) GetSubTile(pe rt.PE, idx index.TileIdx, replica int, sub index.Rect) *tile.Matrix {
	b := m.grid.TileBounds(idx)
	if !b.ContainsRect(sub) {
		panic(fmt.Sprintf("distmat: sub-rect %v outside tile %v bounds %v", sub, idx, b))
	}
	rows, cols := sub.Shape()
	dst := tile.New(rows, cols)
	if rows == 0 || cols == 0 {
		return dst
	}
	_, tileCols := b.Shape()
	local := sub.Localize(b.Rows.Begin, b.Cols.Begin)
	owner := m.OwnerRank(idx, replica, pe.Rank())
	off := m.tileOffset[idx.Row][idx.Col] + local.Rows.Begin*tileCols + local.Cols.Begin
	pe.GetStrided(dst.Data, cols, m.seg, owner, off, tileCols, rows, cols)
	return dst
}

// GetSubTileAsync starts an asynchronous copy of the sub-rectangle sub
// (global coordinates) of tile idx and returns a future. Local tiles
// return an immediate strided view-copy.
func (m *Matrix) GetSubTileAsync(pe rt.PE, idx index.TileIdx, replica int, sub index.Rect) *TileFuture {
	b := m.grid.TileBounds(idx)
	if !b.ContainsRect(sub) {
		panic(fmt.Sprintf("distmat: sub-rect %v outside tile %v bounds %v", sub, idx, b))
	}
	rows, cols := sub.Shape()
	dst := tile.New(rows, cols)
	if rows == 0 || cols == 0 {
		return &TileFuture{Tile: dst, future: rt.CompletedFuture()}
	}
	_, tileCols := b.Shape()
	local := sub.Localize(b.Rows.Begin, b.Cols.Begin)
	owner := m.OwnerRank(idx, replica, pe.Rank())
	off := m.tileOffset[idx.Row][idx.Col] + local.Rows.Begin*tileCols + local.Cols.Begin
	f := pe.GetStridedAsync(dst.Data, cols, m.seg, owner, off, tileCols, rows, cols)
	return &TileFuture{Tile: dst, future: f}
}

func (m *Matrix) resolveReplica(replica, callerRank int) int {
	if replica == LocalReplica {
		return m.ReplicaOf(callerRank)
	}
	if replica < 0 || replica >= m.replication {
		panic(fmt.Sprintf("distmat: replica %d out of %d replicas", replica, m.replication))
	}
	return replica
}

func (m *Matrix) checkTile(idx index.TileIdx) {
	if !m.grid.Valid(idx) {
		tr, tc := m.grid.GridShape()
		panic(fmt.Sprintf("distmat: tile %v outside %dx%d grid", idx, tr, tc))
	}
}

// FillRandom deterministically fills the matrix with uniform values in
// [-1, 1). Every PE fills the tiles its slot owns; tile content depends only
// on (seed, tile index) so all replicas hold identical data. Collective:
// all PEs must call it, and it ends with a barrier.
func (m *Matrix) FillRandom(pe rt.PE, seed int64) {
	for _, idx := range m.OwnedTiles(pe.Rank()) {
		t := m.Tile(pe, idx, LocalReplica)
		rng := rand.New(rand.NewSource(seed ^ int64(idx.Row)<<32 ^ int64(idx.Col)<<16))
		t.FillRandom(rng)
	}
	pe.Barrier()
}

// Zero clears the caller's owned tiles in its replica. Collective.
func (m *Matrix) Zero(pe rt.PE) {
	for _, idx := range m.OwnedTiles(pe.Rank()) {
		m.Tile(pe, idx, LocalReplica).Zero()
	}
	pe.Barrier()
}

// ScatterFrom distributes a full global matrix into the caller's owned
// tiles (all replicas fill from the same source, so replicas stay
// identical). Collective.
func (m *Matrix) ScatterFrom(pe rt.PE, src *tile.Matrix) {
	if src.Rows != m.rows || src.Cols != m.cols {
		panic(fmt.Sprintf("distmat: scatter source %dx%d into %dx%d matrix", src.Rows, src.Cols, m.rows, m.cols))
	}
	for _, idx := range m.OwnedTiles(pe.Rank()) {
		b := m.grid.TileBounds(idx)
		t := m.Tile(pe, idx, LocalReplica)
		t.CopyFrom(src.View(b.Rows.Begin, b.Cols.Begin, b.Rows.Len(), b.Cols.Len()))
	}
	pe.Barrier()
}

// Gather assembles the full matrix from the given replica using one-sided
// reads. Any PE may call it independently; it is not collective.
func (m *Matrix) Gather(pe rt.PE, replica int) *tile.Matrix {
	out := tile.New(m.rows, m.cols)
	tr, tc := m.grid.GridShape()
	for r := 0; r < tr; r++ {
		for c := 0; c < tc; c++ {
			idx := index.TileIdx{Row: r, Col: c}
			t := m.GetTile(pe, idx, replica)
			b := m.grid.TileBounds(idx)
			out.View(b.Rows.Begin, b.Cols.Begin, b.Rows.Len(), b.Cols.Len()).CopyFrom(t)
		}
	}
	return out
}

func (m *Matrix) String() string {
	tr, tc := m.grid.GridShape()
	return fmt.Sprintf("DistMatrix{%dx%d, %s, c=%d, grid %dx%d}",
		m.rows, m.cols, m.part.Name(), m.replication, tr, tc)
}
