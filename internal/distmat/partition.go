// Package distmat implements the distributed matrix data structure of §3 of
// the paper: a matrix shape, a partition object, and a replication factor,
// with tiles held in symmetric memory and accessed exclusively through the
// one-sided primitives of Table 1 (get_tile, get_tile_async,
// accumulate_tile, broadcast_replica, reduce_replicas, overlapping_tiles,
// tile_bounds, grid_shape).
package distmat

import (
	"fmt"
	"math"

	"slicing/internal/index"
)

// Partition defines how a matrix is tiled within one replica and which
// replica-local slot owns each tile. Slots are numbered [0, slots) where
// slots = worldPEs / replicationFactor.
type Partition interface {
	// Grid returns the tile grid used for a rows×cols matrix split across
	// the given number of slots.
	Grid(rows, cols, slots int) index.Grid
	// OwnerSlot returns the slot owning tile idx of the given grid.
	OwnerSlot(g index.Grid, idx index.TileIdx, slots int) int
	// Name returns the partitioning's conventional name.
	Name() string
}

// RowBlock is a 1-D block distribution across rows: slot i owns the i-th
// contiguous band of rows (the "Row" partitioning in Figures 2-3; sequence-
// parallel–style for activations).
type RowBlock struct{}

func (RowBlock) Grid(rows, cols, slots int) index.Grid {
	return index.NewGrid(rows, cols, ceilDiv(rows, slots), cols)
}

func (RowBlock) OwnerSlot(g index.Grid, idx index.TileIdx, slots int) int {
	return idx.Row % slots
}

func (RowBlock) Name() string { return "row" }

// ColBlock is a 1-D block distribution across columns (the "Column"
// partitioning; Megatron-style for the first MLP weight).
type ColBlock struct{}

func (ColBlock) Grid(rows, cols, slots int) index.Grid {
	return index.NewGrid(rows, cols, rows, ceilDiv(cols, slots))
}

func (ColBlock) OwnerSlot(g index.Grid, idx index.TileIdx, slots int) int {
	return idx.Col % slots
}

func (ColBlock) Name() string { return "column" }

// Block2D is a 2-D block distribution over a ProcRows×ProcCols slot grid.
// Zero values pick a near-square factorization of the slot count.
type Block2D struct {
	ProcRows, ProcCols int
}

func (b Block2D) dims(slots int) (pr, pc int) {
	pr, pc = b.ProcRows, b.ProcCols
	if pr == 0 && pc == 0 {
		pr, pc = NearSquareFactors(slots)
	} else if pr == 0 {
		pr = slots / pc
	} else if pc == 0 {
		pc = slots / pr
	}
	if pr*pc != slots {
		panic(fmt.Sprintf("distmat: block2d grid %dx%d does not cover %d slots", pr, pc, slots))
	}
	return pr, pc
}

func (b Block2D) Grid(rows, cols, slots int) index.Grid {
	pr, pc := b.dims(slots)
	return index.NewGrid(rows, cols, ceilDiv(rows, pr), ceilDiv(cols, pc))
}

func (b Block2D) OwnerSlot(g index.Grid, idx index.TileIdx, slots int) int {
	pr, pc := b.dims(slots)
	return (idx.Row%pr)*pc + idx.Col%pc
}

func (b Block2D) Name() string { return "block2d" }

// Custom is a ScaLAPACK-style descriptor: an explicit tile shape and an
// explicit ProcRows×ProcCols process grid with block-cyclic ownership. It
// expresses blocked, cyclic, and block-cyclic distributions, including
// deliberately misaligned tilings (Figure 1).
type Custom struct {
	TileRows, TileCols int
	ProcRows, ProcCols int
}

func (c Custom) Grid(rows, cols, slots int) index.Grid {
	if c.ProcRows*c.ProcCols != slots {
		panic(fmt.Sprintf("distmat: custom grid %dx%d does not cover %d slots", c.ProcRows, c.ProcCols, slots))
	}
	return index.NewGrid(rows, cols, c.TileRows, c.TileCols)
}

func (c Custom) OwnerSlot(g index.Grid, idx index.TileIdx, slots int) int {
	return (idx.Row%c.ProcRows)*c.ProcCols + idx.Col%c.ProcCols
}

func (c Custom) Name() string { return "custom" }

// NearSquareFactors returns the factor pair (pr, pc) of p with pr <= pc and
// pr as close to sqrt(p) as possible, the conventional process-grid choice.
func NearSquareFactors(p int) (pr, pc int) {
	if p <= 0 {
		panic(fmt.Sprintf("distmat: cannot factor %d", p))
	}
	pr = int(math.Sqrt(float64(p)))
	for pr > 1 && p%pr != 0 {
		pr--
	}
	return pr, p / pr
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
