package distmat

import rt "slicing/internal/runtime"

// BroadcastReplica copies every tile from the origin replica into all other
// replicas (the broadcast_replica primitive). Collective: every PE must
// call it. Each PE pulls its own slot's tiles from the corresponding rank in
// the origin replica with one-sided gets, so no two-sided messaging is
// involved.
func (m *Matrix) BroadcastReplica(pe rt.PE, origin int) {
	if origin < 0 || origin >= m.replication {
		panic("distmat: broadcast origin replica out of range")
	}
	pe.Barrier() // origin data must be complete before anyone reads it
	if m.ReplicaOf(pe.Rank()) != origin {
		src := m.RankFor(m.SlotOf(pe.Rank()), origin)
		for _, idx := range m.OwnedTiles(pe.Rank()) {
			t := m.Tile(pe, idx, LocalReplica)
			pe.Get(t.Data, m.seg, src, m.TileOffset(idx))
		}
	}
	pe.Barrier()
}

// ReduceReplicas accumulates every replica's tiles into the origin replica
// (the reduce_replicas primitive): after the call, the origin replica holds
// the element-wise sum across all replicas. Other replicas are left with
// their partial values; follow with BroadcastReplica to make all replicas
// consistent. Collective.
func (m *Matrix) ReduceReplicas(pe rt.PE, origin int) {
	if origin < 0 || origin >= m.replication {
		panic("distmat: reduce origin replica out of range")
	}
	pe.Barrier() // all partial results must be in place
	if m.ReplicaOf(pe.Rank()) != origin {
		dst := m.RankFor(m.SlotOf(pe.Rank()), origin)
		for _, idx := range m.OwnedTiles(pe.Rank()) {
			t := m.Tile(pe, idx, LocalReplica)
			pe.AccumulateAdd(t.Data, m.seg, dst, m.TileOffset(idx))
		}
	}
	pe.Barrier()
}

// AllReduceReplicas reduces into the origin replica and re-broadcasts so
// every replica ends with the summed result. Collective.
func (m *Matrix) AllReduceReplicas(pe rt.PE, origin int) {
	m.ReduceReplicas(pe, origin)
	m.BroadcastReplica(pe, origin)
}
