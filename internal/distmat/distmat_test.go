package distmat

import (
	"bytes"
	"math/rand"
	"testing"

	"slicing/internal/index"
	rt "slicing/internal/runtime"
	"slicing/internal/shmem"
	"slicing/internal/tile"
)

func TestNearSquareFactors(t *testing.T) {
	cases := map[int][2]int{1: {1, 1}, 2: {1, 2}, 4: {2, 2}, 6: {2, 3}, 8: {2, 4}, 12: {3, 4}, 16: {4, 4}, 7: {1, 7}}
	for p, want := range cases {
		pr, pc := NearSquareFactors(p)
		if pr != want[0] || pc != want[1] {
			t.Errorf("NearSquareFactors(%d) = (%d,%d), want %v", p, pr, pc, want)
		}
		if pr*pc != p {
			t.Errorf("factors of %d do not multiply back", p)
		}
	}
}

func TestRowBlockPartition(t *testing.T) {
	g := RowBlock{}.Grid(100, 60, 4)
	tr, tc := g.GridShape()
	if tr != 4 || tc != 1 {
		t.Fatalf("row block grid = %dx%d, want 4x1", tr, tc)
	}
	for r := 0; r < 4; r++ {
		if got := (RowBlock{}).OwnerSlot(g, index.TileIdx{Row: r}, 4); got != r {
			t.Errorf("row tile %d owner = %d", r, got)
		}
	}
}

func TestColBlockPartition(t *testing.T) {
	g := ColBlock{}.Grid(60, 100, 4)
	tr, tc := g.GridShape()
	if tr != 1 || tc != 4 {
		t.Fatalf("col block grid = %dx%d, want 1x4", tr, tc)
	}
}

func TestBlock2DPartition(t *testing.T) {
	b := Block2D{}
	g := b.Grid(120, 120, 12)
	tr, tc := g.GridShape()
	if tr != 3 || tc != 4 {
		t.Fatalf("block2d grid = %dx%d, want 3x4", tr, tc)
	}
	seen := map[int]bool{}
	for r := 0; r < tr; r++ {
		for c := 0; c < tc; c++ {
			seen[b.OwnerSlot(g, index.TileIdx{Row: r, Col: c}, 12)] = true
		}
	}
	if len(seen) != 12 {
		t.Fatalf("block2d uses %d slots, want 12", len(seen))
	}
}

func TestBlock2DExplicitGridMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("3x3 grid for 12 slots should panic")
		}
	}()
	Block2D{ProcRows: 3, ProcCols: 3}.Grid(100, 100, 12)
}

func TestCustomBlockCyclic(t *testing.T) {
	// 2x2 process grid, small tiles: ownership should cycle.
	c := Custom{TileRows: 10, TileCols: 10, ProcRows: 2, ProcCols: 2}
	g := c.Grid(40, 40, 4)
	if got := c.OwnerSlot(g, index.TileIdx{Row: 0, Col: 0}, 4); got != 0 {
		t.Errorf("tile (0,0) owner = %d", got)
	}
	if got := c.OwnerSlot(g, index.TileIdx{Row: 2, Col: 3}, 4); got != 0*2+1 {
		t.Errorf("tile (2,3) owner = %d, want 1", got)
	}
	if got := c.OwnerSlot(g, index.TileIdx{Row: 3, Col: 2}, 4); got != 2 {
		t.Errorf("tile (3,2) owner = %d, want 2", got)
	}
}

func newTestMatrix(t *testing.T, p int, rows, cols int, part Partition, c int) (rt.World, *Matrix) {
	t.Helper()
	w := shmem.NewWorld(p)
	return w, New(w, rows, cols, part, c)
}

func TestNewReplicationMustDivide(t *testing.T) {
	w := shmem.NewWorld(4)
	defer func() {
		if recover() == nil {
			t.Fatal("replication 3 over 4 PEs should panic")
		}
	}()
	New(w, 10, 10, RowBlock{}, 3)
}

func TestOwnedTilesCoverGridOnce(t *testing.T) {
	parts := []Partition{RowBlock{}, ColBlock{}, Block2D{}, Custom{TileRows: 7, TileCols: 9, ProcRows: 2, ProcCols: 2}}
	for _, part := range parts {
		w := shmem.NewWorld(4)
		m := New(w, 53, 47, part, 1)
		counts := map[index.TileIdx]int{}
		for rank := 0; rank < 4; rank++ {
			for _, idx := range m.OwnedTiles(rank) {
				counts[idx]++
			}
		}
		if len(counts) != m.Grid().NumTiles() {
			t.Errorf("%s: %d distinct owned tiles, want %d", part.Name(), len(counts), m.Grid().NumTiles())
		}
		for idx, n := range counts {
			if n != 1 {
				t.Errorf("%s: tile %v owned %d times", part.Name(), idx, n)
			}
		}
	}
}

func TestReplicaSlotMapping(t *testing.T) {
	_, m := newTestMatrix(t, 12, 60, 60, RowBlock{}, 3)
	if m.Slots() != 4 {
		t.Fatalf("slots = %d, want 4", m.Slots())
	}
	if m.ReplicaOf(0) != 0 || m.ReplicaOf(4) != 1 || m.ReplicaOf(11) != 2 {
		t.Fatal("ReplicaOf wrong")
	}
	if m.SlotOf(5) != 1 || m.SlotOf(11) != 3 {
		t.Fatal("SlotOf wrong")
	}
	if m.RankFor(1, 2) != 9 {
		t.Fatalf("RankFor(1,2) = %d, want 9", m.RankFor(1, 2))
	}
}

func TestTileViewAndGetTile(t *testing.T) {
	w, m := newTestMatrix(t, 4, 40, 40, RowBlock{}, 1)
	w.Run(func(pe rt.PE) {
		owned := m.OwnedTiles(pe.Rank())
		if len(owned) != 1 {
			t.Errorf("rank %d owns %d tiles, want 1", pe.Rank(), len(owned))
			return
		}
		v := m.Tile(pe, owned[0], LocalReplica)
		v.Fill(float32(pe.Rank() + 1))
		pe.Barrier()
		// Every PE reads rank 2's tile through get_tile.
		got := m.GetTile(pe, index.TileIdx{Row: 2, Col: 0}, LocalReplica)
		if got.At(0, 0) != 3 {
			t.Errorf("rank %d read %v from tile (2,0)", pe.Rank(), got.At(0, 0))
		}
	})
}

func TestTilePanicsWhenRemote(t *testing.T) {
	w, m := newTestMatrix(t, 2, 20, 20, RowBlock{}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Tile on remote tile should panic")
		}
	}()
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			m.Tile(pe, index.TileIdx{Row: 1, Col: 0}, LocalReplica)
		}
	})
}

func TestGetTileAsyncLocalFastPath(t *testing.T) {
	w, m := newTestMatrix(t, 2, 20, 20, RowBlock{}, 1)
	w.Run(func(pe rt.PE) {
		local := m.OwnedTiles(pe.Rank())[0]
		f := m.GetTileAsync(pe, local, LocalReplica)
		if !f.Done() {
			t.Error("local tile future should be complete immediately")
		}
		v := f.Wait()
		v.Fill(9) // zero-copy view: writes hit symmetric memory
		direct := m.Tile(pe, local, LocalReplica)
		if direct.At(0, 0) != 9 {
			t.Error("local async tile should be a view, not a copy")
		}
	})
}

func TestGetTileAsyncRemote(t *testing.T) {
	w, m := newTestMatrix(t, 4, 40, 40, ColBlock{}, 1)
	w.Run(func(pe rt.PE) {
		m.Tile(pe, m.OwnedTiles(pe.Rank())[0], LocalReplica).Fill(float32(pe.Rank()))
		pe.Barrier()
		idx := index.TileIdx{Row: 0, Col: (pe.Rank() + 1) % 4}
		f := m.GetTileAsync(pe, idx, LocalReplica)
		got := f.Wait()
		want := float32((pe.Rank() + 1) % 4)
		if got.At(3, 3) != want {
			t.Errorf("rank %d async-got %v, want %v", pe.Rank(), got.At(3, 3), want)
		}
	})
}

func TestAccumulateTileConcurrent(t *testing.T) {
	w, m := newTestMatrix(t, 4, 8, 8, RowBlock{}, 1)
	w.Run(func(pe rt.PE) {
		update := tile.New(2, 8)
		update.Fill(1)
		// Everyone accumulates into tile (0,0), owned by rank 0.
		m.AccumulateTile(pe, index.TileIdx{}, LocalReplica, update)
		pe.Barrier()
		if pe.Rank() == 0 {
			v := m.Tile(pe, index.TileIdx{}, LocalReplica)
			if v.At(1, 5) != 4 {
				t.Errorf("accumulated value = %v, want 4", v.At(1, 5))
			}
		}
	})
}

func TestAccumulateTileShapeMismatchPanics(t *testing.T) {
	w, m := newTestMatrix(t, 2, 20, 20, RowBlock{}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-shape accumulate should panic")
		}
	}()
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			m.AccumulateTile(pe, index.TileIdx{}, LocalReplica, tile.New(3, 3))
		}
	})
}

func TestSubTileRoundTrip(t *testing.T) {
	w, m := newTestMatrix(t, 2, 20, 20, RowBlock{}, 1)
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 1 {
			// Accumulate a 3x4 block into global rect rows 2..5, cols 6..10 of
			// tile (0,0) (owned by rank 0).
			v := tile.New(3, 4)
			v.Fill(2)
			sub := index.NewRect(2, 5, 6, 10)
			m.AccumulateSubTile(pe, index.TileIdx{}, LocalReplica, sub, v)
		}
		pe.Barrier()
		got := m.GetSubTile(pe, index.TileIdx{}, LocalReplica, index.NewRect(2, 5, 6, 10))
		if got.At(0, 0) != 2 || got.At(2, 3) != 2 {
			t.Errorf("rank %d sub-tile = %v", pe.Rank(), got.Data)
		}
		full := m.GetTile(pe, index.TileIdx{}, LocalReplica)
		if full.At(0, 0) != 0 || full.At(9, 19) != 0 {
			t.Error("accumulate leaked outside sub-rect")
		}
	})
}

func TestFillRandomReplicasIdentical(t *testing.T) {
	w, m := newTestMatrix(t, 6, 30, 30, RowBlock{}, 2)
	w.Run(func(pe rt.PE) {
		m.FillRandom(pe, 42)
		if pe.Rank() == 0 {
			r0 := m.Gather(pe, 0)
			r1 := m.Gather(pe, 1)
			if !r0.Equal(r1) {
				t.Error("replicas differ after FillRandom")
			}
			if r0.Norm1() == 0 {
				t.Error("FillRandom left zeros")
			}
		}
	})
}

func TestScatterGatherRoundTrip(t *testing.T) {
	parts := []Partition{RowBlock{}, ColBlock{}, Block2D{}, Custom{TileRows: 7, TileCols: 11, ProcRows: 2, ProcCols: 3}}
	for _, part := range parts {
		w := shmem.NewWorld(6)
		m := New(w, 37, 41, part, 1)
		src := tile.New(37, 41)
		src.FillRandom(rand.New(rand.NewSource(3)))
		w.Run(func(pe rt.PE) {
			m.ScatterFrom(pe, src)
			if pe.Rank() == 3 {
				got := m.Gather(pe, 0)
				if !got.Equal(src) {
					t.Errorf("%s: scatter/gather round trip failed", part.Name())
				}
			}
		})
	}
}

func TestScatterGatherWithReplication(t *testing.T) {
	w := shmem.NewWorld(8)
	m := New(w, 24, 24, Block2D{}, 4) // 2 slots per replica
	src := tile.New(24, 24)
	src.FillRandom(rand.New(rand.NewSource(5)))
	w.Run(func(pe rt.PE) {
		m.ScatterFrom(pe, src)
		for rep := 0; rep < 4; rep++ {
			got := m.Gather(pe, rep)
			if !got.Equal(src) {
				t.Errorf("replica %d gather mismatch on rank %d", rep, pe.Rank())
				return
			}
		}
	})
}

func TestReduceReplicas(t *testing.T) {
	w, m := newTestMatrix(t, 6, 12, 12, RowBlock{}, 3)
	w.Run(func(pe rt.PE) {
		// Each replica writes its replica number + 1 into all its tiles.
		rep := m.ReplicaOf(pe.Rank())
		for _, idx := range m.OwnedTiles(pe.Rank()) {
			m.Tile(pe, idx, LocalReplica).Fill(float32(rep + 1))
		}
		m.ReduceReplicas(pe, 0)
		if pe.Rank() == 0 {
			got := m.Gather(pe, 0)
			if got.At(0, 0) != 6 { // 1 + 2 + 3
				t.Errorf("reduced value = %v, want 6", got.At(0, 0))
			}
		}
		// Non-origin replicas keep their partials.
		pe.Barrier()
		if pe.Rank() == 2 { // replica 1's slot 0
			got := m.Gather(pe, 1)
			if got.At(0, 0) != 2 {
				t.Errorf("replica 1 partial = %v, want 2", got.At(0, 0))
			}
		}
	})
}

func TestBroadcastReplica(t *testing.T) {
	w, m := newTestMatrix(t, 4, 16, 16, ColBlock{}, 2)
	w.Run(func(pe rt.PE) {
		rep := m.ReplicaOf(pe.Rank())
		for _, idx := range m.OwnedTiles(pe.Rank()) {
			m.Tile(pe, idx, LocalReplica).Fill(float32(100 * (rep + 1)))
		}
		m.BroadcastReplica(pe, 0)
		got := m.Gather(pe, 1)
		if got.At(0, 0) != 100 {
			t.Errorf("after broadcast, replica 1 holds %v, want 100", got.At(0, 0))
		}
	})
}

func TestAllReduceReplicas(t *testing.T) {
	w, m := newTestMatrix(t, 4, 8, 8, RowBlock{}, 2)
	w.Run(func(pe rt.PE) {
		for _, idx := range m.OwnedTiles(pe.Rank()) {
			m.Tile(pe, idx, LocalReplica).Fill(1)
		}
		m.AllReduceReplicas(pe, 0)
		for rep := 0; rep < 2; rep++ {
			got := m.Gather(pe, rep)
			if got.At(3, 3) != 2 {
				t.Errorf("replica %d after allreduce = %v, want 2", rep, got.At(3, 3))
			}
		}
	})
}

func TestOwnerRankAcrossReplicas(t *testing.T) {
	_, m := newTestMatrix(t, 8, 32, 32, RowBlock{}, 2)
	idx := index.TileIdx{Row: 2, Col: 0}
	// Slot of tile row 2 is 2; replica 1 starts at rank 4.
	if got := m.OwnerRank(idx, 1, 0); got != 6 {
		t.Fatalf("OwnerRank(replica 1) = %d, want 6", got)
	}
	// LocalReplica resolves by caller rank.
	if got := m.OwnerRank(idx, LocalReplica, 5); got != 6 {
		t.Fatalf("OwnerRank(local from rank 5) = %d, want 6", got)
	}
	if got := m.OwnerRank(idx, LocalReplica, 1); got != 2 {
		t.Fatalf("OwnerRank(local from rank 1) = %d, want 2", got)
	}
}

func TestInvalidReplicaPanics(t *testing.T) {
	w, m := newTestMatrix(t, 2, 10, 10, RowBlock{}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid replica index should panic")
		}
	}()
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			m.GetTile(pe, index.TileIdx{}, 3)
		}
	})
}

func TestRaggedEdgeTiles(t *testing.T) {
	// 50x50 over 4 row blocks: ceil(50/4)=13, so tiles are 13,13,13,11 rows.
	w, m := newTestMatrix(t, 4, 50, 50, RowBlock{}, 1)
	src := tile.New(50, 50)
	src.FillRandom(rand.New(rand.NewSource(9)))
	w.Run(func(pe rt.PE) {
		m.ScatterFrom(pe, src)
		if pe.Rank() == 0 {
			last := m.GetTile(pe, index.TileIdx{Row: 3, Col: 0}, LocalReplica)
			if last.Rows != 11 || last.Cols != 50 {
				t.Errorf("ragged tile shape = %dx%d, want 11x50", last.Rows, last.Cols)
			}
			if got := m.Gather(pe, 0); !got.Equal(src) {
				t.Error("ragged gather mismatch")
			}
		}
	})
}

func TestTransposeIntoAllPartitionings(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	parts := []Partition{RowBlock{}, ColBlock{}, Block2D{}, Custom{TileRows: 5, TileCols: 8, ProcRows: 2, ProcCols: 2}}
	for _, srcPart := range parts {
		for _, dstPart := range parts {
			w := shmem.NewWorld(4)
			src := New(w, 23, 31, srcPart, 1)
			dst := New(w, 31, 23, dstPart, 1)
			full := tile.New(23, 31)
			full.FillRandom(rng)
			w.Run(func(pe rt.PE) {
				src.ScatterFrom(pe, full)
				src.TransposeInto(pe, dst)
				if pe.Rank() == 0 {
					got := dst.Gather(pe, 0)
					if !got.Equal(full.Transpose()) {
						t.Errorf("%s -> %s: transpose mismatch", srcPart.Name(), dstPart.Name())
					}
				}
			})
		}
	}
}

func TestTransposeIntoWithReplication(t *testing.T) {
	w := shmem.NewWorld(8)
	src := New(w, 16, 24, RowBlock{}, 2)
	dst := New(w, 24, 16, ColBlock{}, 4)
	full := tile.New(16, 24)
	full.FillRandom(rand.New(rand.NewSource(14)))
	w.Run(func(pe rt.PE) {
		src.ScatterFrom(pe, full)
		src.TransposeInto(pe, dst)
	})
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			for rep := 0; rep < 4; rep++ {
				if got := dst.Gather(pe, rep); !got.Equal(full.Transpose()) {
					t.Errorf("replica %d transpose mismatch", rep)
				}
			}
		}
	})
}

func TestTransposeIntoShapeMismatchPanics(t *testing.T) {
	w := shmem.NewWorld(2)
	src := New(w, 10, 12, RowBlock{}, 1)
	dst := New(w, 10, 12, RowBlock{}, 1) // not transposed shape
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch should panic")
		}
	}()
	w.Run(func(pe rt.PE) {
		src.TransposeInto(pe, dst)
	})
}

func TestWriteReadRoundTrip(t *testing.T) {
	w := shmem.NewWorld(4)
	src := New(w, 19, 27, Block2D{}, 1)
	dst := New(w, 19, 27, ColBlock{}, 2) // restore into a different distribution
	full := tile.New(19, 27)
	full.FillRandom(rand.New(rand.NewSource(15)))
	var buf bytes.Buffer
	w.Run(func(pe rt.PE) {
		src.ScatterFrom(pe, full)
		if pe.Rank() == 0 {
			if _, err := src.WriteTo(pe, &buf); err != nil {
				t.Errorf("WriteTo: %v", err)
			}
		}
	})
	data := buf.Bytes()
	w.Run(func(pe rt.PE) {
		if err := dst.ReadInto(pe, bytes.NewReader(data)); err != nil {
			t.Errorf("ReadInto: %v", err)
		}
		if pe.Rank() == 2 {
			if got := dst.Gather(pe, 1); !got.Equal(full) {
				t.Error("round trip corrupted data")
			}
		}
	})
}

func TestReadDenseRejectsGarbage(t *testing.T) {
	if _, err := ReadDense(bytes.NewReader([]byte("not a matrix file....."))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadDense(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReadIntoShapeMismatch(t *testing.T) {
	w := shmem.NewWorld(2)
	src := New(w, 4, 4, RowBlock{}, 1)
	dst := New(w, 5, 5, RowBlock{}, 1)
	var buf bytes.Buffer
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			src.WriteTo(pe, &buf)
		}
	})
	data := buf.Bytes()
	sawErr := make([]bool, 2)
	w.Run(func(pe rt.PE) {
		if err := dst.ReadInto(pe, bytes.NewReader(data)); err != nil {
			sawErr[pe.Rank()] = true
			pe.Barrier() // match ScatterFrom's barrier on the success path
		}
	})
	if !sawErr[0] || !sawErr[1] {
		t.Fatal("shape mismatch not reported")
	}
}

func TestRowCyclicOwnership(t *testing.T) {
	rc := RowCyclic{BlockRows: 2}
	g := rc.Grid(20, 6, 3)
	tr, _ := g.GridShape()
	if tr != 10 {
		t.Fatalf("grid rows = %d, want 10", tr)
	}
	// Blocks cycle 0,1,2,0,1,2,...
	for r := 0; r < tr; r++ {
		if got := rc.OwnerSlot(g, index.TileIdx{Row: r}, 3); got != r%3 {
			t.Fatalf("block %d owner = %d, want %d", r, got, r%3)
		}
	}
}

func TestCyclicDefaultsToBlockOne(t *testing.T) {
	g := RowCyclic{}.Grid(7, 4, 2)
	tr, _ := g.GridShape()
	if tr != 7 {
		t.Fatalf("pure cyclic should have one row per block, got %d blocks", tr)
	}
	g2 := ColCyclic{}.Grid(4, 7, 2)
	_, tc := g2.GridShape()
	if tc != 7 {
		t.Fatalf("pure col-cyclic should have one col per block, got %d", tc)
	}
}

func TestCyclicScatterGather(t *testing.T) {
	w := shmem.NewWorld(3)
	m := New(w, 17, 13, RowCyclic{BlockRows: 2}, 1)
	src := tile.New(17, 13)
	src.FillRandom(rand.New(rand.NewSource(20)))
	w.Run(func(pe rt.PE) {
		m.ScatterFrom(pe, src)
		if pe.Rank() == 1 {
			if got := m.Gather(pe, 0); !got.Equal(src) {
				t.Error("cyclic scatter/gather round trip failed")
			}
		}
	})
}

func TestGetTileInto(t *testing.T) {
	w, m := newTestMatrix(t, 4, 40, 40, RowBlock{}, 1)
	w.Run(func(pe rt.PE) {
		m.Tile(pe, m.OwnedTiles(pe.Rank())[0], LocalReplica).Fill(float32(pe.Rank()))
		pe.Barrier()
		dst := tile.New(10, 40)
		m.GetTileInto(pe, dst, index.TileIdx{Row: 3, Col: 0}, LocalReplica)
		if dst.At(0, 0) != 3 {
			t.Errorf("GetTileInto read %v", dst.At(0, 0))
		}
	})
}

func TestGetTileIntoWrongShapePanics(t *testing.T) {
	w, m := newTestMatrix(t, 2, 20, 20, RowBlock{}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-shape buffer should panic")
		}
	}()
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			m.GetTileInto(pe, tile.New(3, 3), index.TileIdx{}, LocalReplica)
		}
	})
}

func TestSparseTileNNZAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	global := tile.RandomCSR(rng, 24, 24, 0.2)
	w := shmem.NewWorld(4)
	s := NewSparse(w, global, Block2D{}, 1)
	tr, tc := s.GridShape()
	total := 0
	for r := 0; r < tr; r++ {
		for c := 0; c < tc; c++ {
			total += s.TileNNZ(index.TileIdx{Row: r, Col: c})
		}
	}
	if total != global.NNZ() {
		t.Fatalf("tile nnz sums to %d, global has %d", total, global.NNZ())
	}
	if s.Rows() != 24 || s.Cols() != 24 {
		t.Fatal("sparse shape wrong")
	}
}

func TestSparseReplicasIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	global := tile.RandomCSR(rng, 16, 16, 0.3)
	w := shmem.NewWorld(4)
	s := NewSparse(w, global, RowBlock{}, 2)
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			d0 := s.Gather(pe, 0)
			d1 := s.Gather(pe, 1)
			if !d0.Equal(d1) {
				t.Error("sparse replicas differ")
			}
			if !d0.Equal(global.ToDense()) {
				t.Error("sparse replica 0 does not match the source")
			}
		}
	})
}

// The Into variants (TileInto, GetTileIntoAsync, GetSubTileIntoAsync) are
// the allocation-free fetch primitives of the execution hot path: they must
// land the same data as their allocating counterparts, in caller-owned
// buffers, and reject wrongly shaped buffers.
func TestIntoVariantsMatchAllocatingOnes(t *testing.T) {
	w := shmem.NewWorld(4)
	m := New(w, 24, 24, Block2D{}, 1)
	w.Run(func(pe rt.PE) {
		m.FillRandom(pe, 7)
		idx := index.TileIdx{Row: 1, Col: 1}
		owner := m.OwnerRank(idx, LocalReplica, pe.Rank())
		b := m.TileBounds(idx)
		rows, cols := b.Shape()

		if owner == pe.Rank() {
			var v tile.Matrix
			m.TileInto(pe, &v, idx, LocalReplica)
			if !v.Equal(m.Tile(pe, idx, LocalReplica)) {
				t.Error("TileInto differs from Tile")
			}
			if &v.Data[0] != &m.Tile(pe, idx, LocalReplica).Data[0] {
				t.Error("TileInto must be zero-copy")
			}
		} else {
			var f TileFuture
			dst := tile.New(rows, cols)
			m.GetTileIntoAsync(pe, &f, dst, idx, LocalReplica)
			got := f.Wait()
			if got != dst {
				t.Error("future must resolve to the caller's buffer")
			}
			if !got.Equal(m.GetTile(pe, idx, LocalReplica)) {
				t.Error("GetTileIntoAsync data mismatch")
			}

			sub := index.NewRect(b.Rows.Begin+1, b.Rows.End, b.Cols.Begin, b.Cols.End-1)
			sr, sc := sub.Shape()
			var sf TileFuture
			sdst := tile.New(sr, sc)
			m.GetSubTileIntoAsync(pe, &sf, sdst, idx, LocalReplica, sub)
			if !sf.Wait().Equal(m.GetSubTile(pe, idx, LocalReplica, sub)) {
				t.Error("GetSubTileIntoAsync data mismatch")
			}
		}
	})
}

func TestGetTileIntoAsyncRejectsWrongShape(t *testing.T) {
	w := shmem.NewWorld(2)
	m := New(w, 16, 16, RowBlock{}, 1)
	w.Run(func(pe rt.PE) {
		if pe.Rank() != 0 {
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("wrong-shape buffer should panic")
			}
		}()
		var f TileFuture
		m.GetTileIntoAsync(pe, &f, tile.New(3, 3), index.TileIdx{Row: 1, Col: 0}, LocalReplica)
	})
}
