package distmat

import "slicing/internal/index"

// RowCyclic distributes row-blocks of the given height cyclically across
// slots (ScaLAPACK 1-D block-cyclic over rows). BlockRows of 1 is a pure
// cyclic distribution; larger blocks trade load balance for locality.
type RowCyclic struct {
	BlockRows int
}

func (rc RowCyclic) blockRows() int {
	if rc.BlockRows <= 0 {
		return 1
	}
	return rc.BlockRows
}

func (rc RowCyclic) Grid(rows, cols, slots int) index.Grid {
	return index.NewGrid(rows, cols, rc.blockRows(), cols)
}

func (rc RowCyclic) OwnerSlot(g index.Grid, idx index.TileIdx, slots int) int {
	return idx.Row % slots
}

func (RowCyclic) Name() string { return "row-cyclic" }

// ColCyclic distributes column-blocks cyclically across slots (1-D
// block-cyclic over columns).
type ColCyclic struct {
	BlockCols int
}

func (cc ColCyclic) blockCols() int {
	if cc.BlockCols <= 0 {
		return 1
	}
	return cc.BlockCols
}

func (cc ColCyclic) Grid(rows, cols, slots int) index.Grid {
	return index.NewGrid(rows, cols, rows, cc.blockCols())
}

func (cc ColCyclic) OwnerSlot(g index.Grid, idx index.TileIdx, slots int) int {
	return idx.Col % slots
}

func (ColCyclic) Name() string { return "col-cyclic" }
