package distmat

import (
	"fmt"

	"slicing/internal/index"
	rt "slicing/internal/runtime"
)

// TransposeInto writes this matrix's transpose into dst, which must have
// the transposed global shape but may use any partitioning and replication
// factor. Each PE fills the dst tiles it owns by pulling the corresponding
// sub-tiles of the source with one-sided reads and transposing locally, so
// the operation is a pure-get redistribution — the pattern a backward pass
// needs for dW = Xᵀ·dY when the forward partitionings don't line up.
// Collective: every PE must call it; it ends with a barrier.
func (m *Matrix) TransposeInto(pe rt.PE, dst *Matrix) {
	if dst.rows != m.cols || dst.cols != m.rows {
		panic(fmt.Sprintf("distmat: transpose of %dx%d into %dx%d", m.rows, m.cols, dst.rows, dst.cols))
	}
	if dst.world != m.world {
		panic("distmat: transpose across worlds")
	}
	for _, dIdx := range dst.OwnedTiles(pe.Rank()) {
		db := dst.TileBounds(dIdx)
		out := dst.Tile(pe, dIdx, LocalReplica)
		// The dst tile covers (rows R, cols C) of the transposed matrix,
		// i.e. (rows C, cols R) of the source.
		srcRect := index.Rect{Rows: db.Cols, Cols: db.Rows}
		for _, sIdx := range m.OverlappingTiles(srcRect) {
			sb := m.TileBounds(sIdx)
			part := sb.Intersect(srcRect)
			chunk := m.GetSubTile(pe, sIdx, LocalReplica, part)
			// part (r, c) in the source lands at (c - dRow0, r - dCol0) in
			// the dst tile.
			for r := 0; r < chunk.Rows; r++ {
				srcRow := part.Rows.Begin + r
				for c := 0; c < chunk.Cols; c++ {
					srcCol := part.Cols.Begin + c
					out.Set(srcCol-db.Rows.Begin, srcRow-db.Cols.Begin, chunk.At(r, c))
				}
			}
		}
	}
	pe.Barrier()
}
