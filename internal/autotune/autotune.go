// Package autotune addresses the problem the paper explicitly defers to
// future work (§6): selecting an optimal partitioning and replication
// factor for a particular problem. In the spirit of COSMA's
// red-blue-pebbling-derived search [18], but targeting the universal
// algorithm, it enumerates candidate (partitioning triple, replication
// pair, stationary strategy) configurations under a per-PE memory budget,
// prices each with the §4.3 cost model, optionally re-ranks the leaders
// with the discrete-event simulator, and returns the best configuration
// ready to instantiate.
package autotune

import (
	"fmt"
	"math"
	"sort"

	"slicing/internal/bench"
	"slicing/internal/costmodel"
	"slicing/internal/distmat"
	"slicing/internal/modelworld"
	rt "slicing/internal/runtime"
	"slicing/internal/universal"
)

// Candidate is one fully specified configuration.
type Candidate struct {
	Part       bench.Partitioning
	ReplAB     int
	ReplC      int
	Stationary universal.Stationary
	// CostSeconds is the cost-model estimate; SimSeconds the discrete-event
	// refinement (zero when the candidate was not simulated).
	CostSeconds float64
	SimSeconds  float64
	// MemElems is the per-PE memory footprint in elements.
	MemElems float64
}

func (c Candidate) String() string {
	return fmt.Sprintf("%v cAB=%d cC=%d %v (est %.4gs)", c.Part, c.ReplAB, c.ReplC, c.Stationary, c.CostSeconds)
}

// Options bounds the search.
type Options struct {
	// MemBudgetElems is the per-PE memory budget in float32 elements; 0
	// means unlimited.
	MemBudgetElems float64
	// SimulateTop re-ranks this many cost-model leaders with the
	// discrete-event simulator (0 disables the refinement).
	SimulateTop int
	// AllowZeroComm permits configurations that eliminate communication
	// entirely (full input replication). Off by default, matching the
	// paper's evaluation methodology (§5.2.1).
	AllowZeroComm bool
	// Partitionings restricts the enumeration to the given partitionings;
	// nil enumerates all of bench.UAPartitionings. Cluster-scale sweeps use
	// this: pricing every partitioning × divisor pair at thousands of PEs is
	// wasted work when a figure compares two or three layouts.
	Partitionings []bench.Partitioning
	// Replications restricts the replication factors considered for both
	// the input pair and C to the listed values (non-divisors of p are
	// skipped); nil enumerates every divisor of p.
	Replications []int
}

// memElems estimates a configuration's per-PE footprint: each matrix's
// elements divided by its replica's slot count.
func memElems(m, n, k, p, cAB, cC int) float64 {
	slotsAB := float64(p / cAB)
	slotsC := float64(p / cC)
	return float64(m)*float64(k)/slotsAB + float64(k)*float64(n)/slotsAB + float64(m)*float64(n)/slotsC
}

// Search enumerates configurations for an m×n×k multiply over a system
// and returns candidates sorted best-first. It never returns an empty
// slice: if the memory budget excludes everything, it panics with a
// diagnostic, since no valid configuration exists.
func Search(sys universal.SimSystem, m, n, k int, opt Options) []Candidate {
	p := sys.Topo.NumPE()
	// The search is single-goroutine, so memoizing GEMM pricing is safe —
	// and essential at cluster scale, where candidates × ranks × steps
	// share a handful of tile shapes.
	md := costmodel.New(sys.Topo, sys.Dev).Memoize()
	budget := opt.MemBudgetElems
	if budget <= 0 {
		budget = math.Inf(1)
	}

	var divisors []int
	for c := 1; c <= p; c++ {
		if p%c != 0 {
			continue
		}
		if opt.Replications != nil && !containsInt(opt.Replications, c) {
			continue
		}
		divisors = append(divisors, c)
	}
	parts := opt.Partitionings
	if parts == nil {
		parts = bench.UAPartitionings
	}

	// Enumerate the (cheap) layout specs sequentially, then price them —
	// plan construction plus the §4.3 cost model, the expensive part —
	// concurrently, both stationary strategies per spec so each Problem is
	// built once and shared. Every spec owns its problem metadata, so
	// pricing shares nothing; slot-indexed writes keep the result order
	// (and therefore the sort's tie-breaking) identical to a sequential
	// sweep.
	stats := []universal.Stationary{universal.StationaryB, universal.StationaryC}
	type spec struct {
		part     bench.Partitioning
		cAB, cC  int
		mem      float64
		cands    [2]Candidate
		eligible [2]bool
	}
	var specs []spec
	for _, part := range parts {
		for _, cAB := range divisors {
			for _, cC := range divisors {
				mem := memElems(m, n, k, p, cAB, cC)
				if mem > budget {
					continue
				}
				specs = append(specs, spec{part: part, cAB: cAB, cC: cC, mem: mem})
			}
		}
	}
	rt.ForEachIndex(len(specs), func(i int) {
		sp := &specs[i]
		prob := buildProblem(sys, m, n, k, sp.part, sp.cAB, sp.cC)
		for si, stat := range stats {
			if !opt.AllowZeroComm && zeroComm(prob, stat) {
				continue
			}
			sp.cands[si] = Candidate{
				Part: sp.part, ReplAB: sp.cAB, ReplC: sp.cC, Stationary: stat,
				CostSeconds: md.ProblemCost(prob, stat), MemElems: sp.mem,
			}
			sp.eligible[si] = true
		}
	})
	out := make([]Candidate, 0, 2*len(specs))
	for i := range specs {
		for si := range stats {
			if specs[i].eligible[si] {
				out = append(out, specs[i].cands[si])
			}
		}
	}
	if len(out) == 0 {
		panic(fmt.Sprintf("autotune: no configuration of %d PEs fits %g elements", p, budget))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CostSeconds < out[j].CostSeconds })

	if opt.SimulateTop > 0 {
		top := opt.SimulateTop
		if top > len(out) {
			top = len(out)
		}
		// Each refinement builds and runs its own discrete-event engine, so
		// the leaders simulate concurrently; the stable re-sort on the
		// deterministic per-slot results keeps the ranking reproducible.
		rt.ForEachIndex(top, func(i int) {
			c := &out[i]
			prob := buildProblem(sys, m, n, k, c.Part, c.ReplAB, c.ReplC)
			cfg := universal.DefaultConfig()
			cfg.Stationary = c.Stationary
			c.SimSeconds = universal.SimulateMultiply(prob, cfg, sys).Makespan
		})
		sort.SliceStable(out[:top], func(i, j int) bool { return out[i].SimSeconds < out[j].SimSeconds })
	}
	return out
}

// Best returns the single best configuration.
func Best(sys universal.SimSystem, m, n, k int, opt Options) Candidate {
	return Search(sys, m, n, k, opt)[0]
}

// Instantiate allocates the candidate's three matrices over a world of the
// system's size, ready for universal.Multiply with the candidate's
// stationary strategy.
func (c Candidate) Instantiate(alloc rt.Allocator, m, n, k int) (a, b, cm *distmat.Matrix) {
	pa, pb, pc := c.Part.Parts()
	a = distmat.New(alloc, m, k, pa, c.ReplAB)
	b = distmat.New(alloc, k, n, pb, c.ReplAB)
	cm = distmat.New(alloc, m, n, pc, c.ReplC)
	return a, b, cm
}

// Config returns the execution config matching the candidate.
func (c Candidate) Config() universal.Config {
	cfg := universal.DefaultConfig()
	cfg.Stationary = c.Stationary
	cfg.SyncReplicas = true
	return cfg
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// buildProblem lays the three matrices out over a model-only world: the
// search reads nothing but metadata (shapes, ownership, replication), so
// backing the candidates with real storage — gigabytes per candidate at
// cluster scale — would be pure waste. Candidates are instantiated on a
// real backend only after selection (Candidate.Instantiate).
func buildProblem(sys universal.SimSystem, m, n, k int, part bench.Partitioning, cAB, cC int) universal.Problem {
	w := modelworld.NewWorld(sys.Topo.NumPE())
	pa, pb, pc := part.Parts()
	a := distmat.New(w, m, k, pa, cAB)
	b := distmat.New(w, k, n, pb, cAB)
	c := distmat.New(w, m, n, pc, cC)
	return universal.NewProblem(c, a, b)
}

// PipelineChoice is one (PrefetchDepth, MaxInflight) point of a pipeline
// sweep, with the modeled wall-clock the timed backend observed for it and
// the stream-level delay signals when the backend exposes them.
type PipelineChoice struct {
	PrefetchDepth int
	MaxInflight   int
	Seconds       float64
	// QueueDelaySeconds is the time ops queued behind busy engines (zero on
	// single-clock backends, which cannot observe it).
	QueueDelaySeconds float64
}

func (pc PipelineChoice) String() string {
	return fmt.Sprintf("prefetch=%d inflight=%d (%.4gs, queue %.4gs)",
		pc.PrefetchDepth, pc.MaxInflight, pc.Seconds, pc.QueueDelaySeconds)
}

// PipelineOptions bounds a pipeline sweep; nil slices sweep {1, 2, 4, 8}.
type PipelineOptions struct {
	Depths    []int
	Inflights []int
}

func (o PipelineOptions) withDefaults() PipelineOptions {
	if o.Depths == nil {
		o.Depths = []int{1, 2, 4, 8}
	}
	if o.Inflights == nil {
		o.Inflights = []int{1, 2, 4, 8}
	}
	return o
}

// TunePipeline sweeps the async pipeline depth — PrefetchDepth ×
// MaxInflight — for one candidate configuration by executing the multiply
// for real on the given timed backend (simbackend or gpubackend) and
// ranking the observed modeled wall-clocks. This is the per-backend
// refinement the cost model cannot provide: queue-depth contention makes
// the optimum backend-dependent (a deeper pipeline that is free on a
// single-clock model can queue on a copy engine), so the same candidate is
// tuned separately per backend and topology. Choices return sorted
// best-first.
func TunePipeline(b rt.Backend, sys universal.SimSystem, m, n, k int, c Candidate, opt PipelineOptions) []PipelineChoice {
	opt = opt.withDefaults()
	out := make([]PipelineChoice, len(opt.Depths)*len(opt.Inflights))
	// Every grid point executes the multiply on its own world (the backend
	// only carries the immutable topology and device models), so the sweep
	// runs concurrently; slot-indexed results plus the stable final sort
	// keep the ranking deterministic.
	rt.ForEachIndex(len(out), func(i int) {
		d := opt.Depths[i/len(opt.Inflights)]
		fl := opt.Inflights[i%len(opt.Inflights)]
		cfg := c.Config()
		cfg.PrefetchDepth = d
		cfg.MaxInflight = fl
		res := bench.RunUATimedOn(b, sys, m, n, k, c.Part, c.ReplAB, c.ReplC, cfg)
		out[i] = PipelineChoice{
			PrefetchDepth:     d,
			MaxInflight:       fl,
			Seconds:           res.Makespan,
			QueueDelaySeconds: res.QueueDelaySeconds,
		}
	})
	sort.SliceStable(out, func(i, j int) bool { return out[i].Seconds < out[j].Seconds })
	return out
}

func zeroComm(prob universal.Problem, stat universal.Stationary) bool {
	p := prob.A.World().NumPE()
	for rank := 0; rank < p; rank++ {
		plan := universal.BuildPlan(rank, prob, stat, 0)
		if plan.RemoteFetchBytes()+plan.RemoteAccumBytes() > 0 {
			return false
		}
	}
	return prob.C.Replication() == 1 // a replicated C still pays reduce_replicas
}
