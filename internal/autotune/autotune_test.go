package autotune

import (
	"math"
	"testing"

	"slicing/internal/bench"
	"slicing/internal/gpubackend"
	rt "slicing/internal/runtime"
	"slicing/internal/shmem"
	"slicing/internal/simbackend"
	"slicing/internal/tile"
	"slicing/internal/universal"
)

func TestSearchReturnsSortedCandidates(t *testing.T) {
	cands := Search(universal.H100System(), 2048, 2048, 2048, Options{})
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for i := 1; i < len(cands); i++ {
		if cands[i].CostSeconds < cands[i-1].CostSeconds {
			t.Fatalf("candidates not sorted at %d", i)
		}
	}
	for _, c := range cands {
		if c.CostSeconds <= 0 {
			t.Fatalf("non-positive cost: %v", c)
		}
	}
}

func TestSearchExcludesZeroComm(t *testing.T) {
	// With fully replicated inputs and unreplicated C, Stationary C needs
	// no communication at all; that configuration must be excluded. (The
	// Stationary B variant still accumulates remotely and stays eligible.)
	for _, c := range Search(universal.H100System(), 1024, 1024, 1024, Options{}) {
		if c.ReplAB == 8 && c.ReplC == 1 && c.Stationary == universal.StationaryC {
			t.Fatalf("zero-communication configuration %v not excluded", c)
		}
	}
}

func TestSearchMemoryBudget(t *testing.T) {
	const m, n, k = 4096, 4096, 4096
	// A budget that only fits unreplicated layouts.
	minMem := memElems(m, n, k, 8, 1, 1)
	cands := Search(universal.H100System(), m, n, k, Options{MemBudgetElems: minMem * 1.01})
	for _, c := range cands {
		if c.MemElems > minMem*1.01 {
			t.Fatalf("candidate %v exceeds the budget", c)
		}
		if c.ReplAB != 1 || c.ReplC != 1 {
			t.Fatalf("replication slipped past a tight budget: %v", c)
		}
	}
}

func TestSearchImpossibleBudgetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("impossible budget should panic")
		}
	}()
	Search(universal.H100System(), 4096, 4096, 4096, Options{MemBudgetElems: 10})
}

func TestBestAvoidsMovingGiantMatrix(t *testing.T) {
	// MLP-2 shape: B is enormous; the winner must not pick a configuration
	// whose plan moves it wholesale. A proxy check: the winner's estimate
	// must be within 2x of the overall cost-model floor.
	cands := Search(universal.PVCSystem(), 1024, 12288, 49152, Options{})
	best := cands[0]
	if best.CostSeconds > 2*cands[0].CostSeconds {
		t.Fatalf("best candidate inconsistent: %v", best)
	}
	// And the sweep's worst should be measurably worse than the best.
	worst := cands[len(cands)-1]
	if worst.CostSeconds < best.CostSeconds*1.2 {
		t.Logf("sweep is flat (best %.4g, worst %.4g) — acceptable but unusual", best.CostSeconds, worst.CostSeconds)
	}
}

func TestSimulateTopRefinement(t *testing.T) {
	cands := Search(universal.H100System(), 2048, 2048, 2048, Options{SimulateTop: 3})
	refined := 0
	for _, c := range cands {
		if c.SimSeconds > 0 {
			refined++
		}
	}
	if refined != 3 {
		t.Fatalf("expected 3 simulated candidates, got %d", refined)
	}
	if cands[0].SimSeconds <= 0 {
		t.Fatal("winner missing simulation refinement")
	}
}

// End-to-end: instantiate the winner and verify a real multiply through it.
func TestBestInstantiateAndMultiply(t *testing.T) {
	sys := universal.SimSystem{Topo: uniformTestTopo(4), Dev: universal.H100System().Dev}
	best := Best(sys, 48, 40, 56, Options{SimulateTop: 2})
	w := shmem.NewWorld(4)
	a, b, c := best.Instantiate(w, 48, 40, 56)
	w.Run(func(pe rt.PE) {
		a.FillRandom(pe, 1)
		b.FillRandom(pe, 2)
	})
	var ref, got *tile.Matrix
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			ref = tile.New(48, 40)
			tile.GemmNaive(ref, a.Gather(pe, 0), b.Gather(pe, 0))
		}
	})
	w.Run(func(pe rt.PE) {
		universal.Multiply(pe, c, a, b, best.Config())
	})
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			got = c.Gather(pe, 0)
		}
	})
	if !got.AllClose(ref, 1e-3) {
		t.Fatalf("autotuned multiply mismatch: %g", got.MaxAbsDiff(ref))
	}
}

func TestMemElems(t *testing.T) {
	// 4 PEs, no replication: each matrix split 4 ways.
	got := memElems(100, 100, 100, 4, 1, 1)
	want := 3.0 * 100 * 100 / 4
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("memElems = %g, want %g", got, want)
	}
	// Full replication of C: each PE holds all of C.
	got = memElems(100, 100, 100, 4, 1, 4)
	want = 2.0*100*100/4 + 100*100
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("memElems with cC=4 = %g, want %g", got, want)
	}
}

func uniformTestTopo(p int) interface {
	NumPE() int
	Bandwidth(int, int) float64
	Latency(int, int) float64
	Name() string
} {
	return testTopo{p}
}

type testTopo struct{ p int }

func (t testTopo) NumPE() int { return t.p }
func (t testTopo) Bandwidth(src, dst int) float64 {
	if src == dst {
		return 2000e9
	}
	return 100e9
}
func (t testTopo) Latency(src, dst int) float64 { return 1e-6 }
func (t testTopo) Name() string                 { return "test" }

// TestTunePipelineSweepsPerBackend runs the PrefetchDepth/MaxInflight
// sweep on both timed backends for the same candidate and checks the
// returned choices are complete, sorted best-first, and carry the
// stream-level queue-delay signal only on the stream/event backend.
func TestTunePipelineSweepsPerBackend(t *testing.T) {
	sys := universal.H100System()
	const m, n, k = 256, 256, 256
	cand := Candidate{
		Part: bench.PartOuterProd, ReplAB: 1, ReplC: 1,
		Stationary: universal.StationaryA,
	}
	opt := PipelineOptions{Depths: []int{1, 4}, Inflights: []int{1, 4}}

	run := func(b rt.Backend) []PipelineChoice {
		choices := TunePipeline(b, sys, m, n, k, cand, opt)
		if len(choices) != 4 {
			t.Fatalf("%s: expected 4 choices, got %d", b.Name(), len(choices))
		}
		for i, c := range choices {
			if c.Seconds <= 0 {
				t.Fatalf("%s: choice %v has non-positive runtime", b.Name(), c)
			}
			if i > 0 && c.Seconds < choices[i-1].Seconds {
				t.Fatalf("%s: choices not sorted best-first at %d", b.Name(), i)
			}
		}
		return choices
	}

	simChoices := run(simbackend.New(sys.Topo, sys.Dev))
	for _, c := range simChoices {
		if c.QueueDelaySeconds != 0 {
			t.Fatalf("single-clock backend reported queue delay %g", c.QueueDelaySeconds)
		}
	}
	gpuChoices := run(gpubackend.New(sys.Topo, sys.Dev))
	sawQueue := false
	for _, c := range gpuChoices {
		if c.QueueDelaySeconds > 0 {
			sawQueue = true
		}
	}
	if !sawQueue {
		t.Fatal("stream/event backend observed no queue delay in any swept config")
	}
}

// PR 5: candidate pricing, simulator refinement, and pipeline sweeps run
// concurrently now; repeated searches must stay bit-identical (slot-indexed
// writes plus stable sorts — completion order must not leak into results).
func TestSearchDeterministicUnderConcurrency(t *testing.T) {
	opt := Options{SimulateTop: 4}
	want := Search(universal.PVCSystem(), 1024, 768, 512, opt)
	for trial := 0; trial < 3; trial++ {
		got := Search(universal.PVCSystem(), 1024, 768, 512, opt)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d candidates, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d candidate %d: %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestTunePipelineConcurrentSweepCoversGridSorted(t *testing.T) {
	// The measured Seconds of a timed execution depend on the real run's
	// dynamic schedule (they always have), so the concurrency contract is
	// structural: the concurrent sweep must return every grid point exactly
	// once, sorted best-first — never a dropped, duplicated, or misfiled
	// slot from a racing worker.
	sys := universal.H100System()
	c := Best(sys, 256, 256, 256, Options{})
	opt := PipelineOptions{Depths: []int{1, 4}, Inflights: []int{1, 2, 4}}
	for trial := 0; trial < 3; trial++ {
		got := TunePipeline(simbackend.New(sys.Topo, sys.Dev), sys, 256, 256, 256, c, opt)
		if len(got) != len(opt.Depths)*len(opt.Inflights) {
			t.Fatalf("trial %d: %d choices, want %d", trial, len(got), len(opt.Depths)*len(opt.Inflights))
		}
		seen := map[[2]int]bool{}
		for i, ch := range got {
			if ch.Seconds <= 0 {
				t.Fatalf("trial %d: choice %v has non-positive seconds", trial, ch)
			}
			if i > 0 && got[i-1].Seconds > ch.Seconds {
				t.Fatalf("trial %d: choices not sorted at %d", trial, i)
			}
			seen[[2]int{ch.PrefetchDepth, ch.MaxInflight}] = true
		}
		if len(seen) != len(got) {
			t.Fatalf("trial %d: grid points dropped or duplicated: %v", trial, got)
		}
	}
}

// Options.Partitionings and Options.Replications restrict the search to
// the requested families and replication factors — the knob cluster sweeps
// use to keep the per-point search bounded at thousands of PEs.
func TestSearchRestrictedOptions(t *testing.T) {
	sys := universal.H100System()
	cands := Search(sys, 2048, 2048, 2048, Options{
		Partitionings: []bench.Partitioning{bench.PartBlock},
		Replications:  []int{1},
	})
	if len(cands) == 0 {
		t.Fatal("restricted search returned no candidates")
	}
	for _, c := range cands {
		if c.Part != bench.PartBlock {
			t.Fatalf("partitioning %v slipped past the restriction", c.Part)
		}
		if c.ReplAB != 1 || c.ReplC != 1 {
			t.Fatalf("replication (%d, %d) slipped past the restriction", c.ReplAB, c.ReplC)
		}
	}
	// The restricted winner must equal the matching candidate of the full
	// search: restriction filters, it does not re-rank.
	full := Search(sys, 2048, 2048, 2048, Options{})
	for _, c := range full {
		if c.Part == bench.PartBlock && c.ReplAB == 1 && c.ReplC == 1 {
			if c != cands[0] {
				t.Fatalf("restricted winner %+v differs from full-search candidate %+v", cands[0], c)
			}
			break
		}
	}
}
