package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ArtifactSchema versions the sweep artifact format. Tooling that reads
// SWEEP_*.json rejects any other value rather than guessing at fields.
const ArtifactSchema = "sweep/v1"

// Artifact is the machine-readable result of one sweep: the problem, the
// identity fields that make runs comparable, and every evaluated point in
// the spec's deterministic expansion order. Everything here is a pure
// function of (Spec, code version) — no timestamps, no map iteration, no
// scheduler-dependent counters — so equal specs produce byte-identical
// files, which CI checks. GeneratedAt is the one exception: it is stamped
// only on explicit request (cmd/cluster_sweep -stamp) and omitted
// otherwise.
type Artifact struct {
	Schema string `json:"schema"`
	Name   string `json:"name"`
	Seed   int64  `json:"seed"`

	// The swept problem.
	Layer string `json:"layer"`
	Batch int    `json:"batch"`
	M     int    `json:"m"`
	N     int    `json:"n"`
	K     int    `json:"k"`

	// PlanBuilds counts the distinct plans compiled for this sweep —
	// deterministic because the plan cache's single-flight path builds
	// each key exactly once no matter how points are scheduled.
	PlanBuilds int64 `json:"plan_builds"`

	Points []Point `json:"points"`

	// GeneratedAt is an RFC 3339 stamp, present only when explicitly
	// requested; determinism checks run without it.
	GeneratedAt string `json:"generated_at,omitempty"`
}

// Validate checks an artifact against the sweep/v1 schema contract: the
// schema tag, non-empty points, and per-point invariants (positive PE
// counts and makespans, percent-of-peak within (0, 100], degraded rails
// carrying a factor < 1 and healthy points exactly 1). It is shared by
// cmd/cluster_sweep -validate and the CI smoke test so "valid" means one
// thing.
func Validate(a *Artifact) error {
	if a == nil {
		return fmt.Errorf("sweep: nil artifact")
	}
	if a.Schema != ArtifactSchema {
		return fmt.Errorf("sweep: artifact schema %q, want %q", a.Schema, ArtifactSchema)
	}
	if a.Name == "" {
		return fmt.Errorf("sweep: artifact has no name")
	}
	if a.Batch <= 0 || a.M <= 0 || a.N <= 0 || a.K <= 0 {
		return fmt.Errorf("sweep: artifact problem %dx%dx%d batch %d is not positive", a.M, a.N, a.K, a.Batch)
	}
	if len(a.Points) == 0 {
		return fmt.Errorf("sweep: artifact has no points")
	}
	if a.PlanBuilds < 0 {
		return fmt.Errorf("sweep: negative plan_builds %d", a.PlanBuilds)
	}
	for i, pt := range a.Points {
		if err := validatePoint(pt); err != nil {
			return fmt.Errorf("sweep: point %d (%d nodes, %d rails, %gx oversub): %w", i, pt.Nodes, pt.Rails, pt.Oversub, err)
		}
	}
	return nil
}

func validatePoint(pt Point) error {
	switch {
	case pt.Nodes < 2:
		return fmt.Errorf("nodes %d < 2", pt.Nodes)
	case pt.PEs != 8*pt.Nodes:
		return fmt.Errorf("%d PEs on %d nodes, want %d", pt.PEs, pt.Nodes, 8*pt.Nodes)
	case pt.Rails < 1 || pt.Rails > 8 || 8%pt.Rails != 0:
		return fmt.Errorf("rail count %d does not divide 8", pt.Rails)
	case pt.Oversub < 1:
		return fmt.Errorf("oversubscription %g < 1", pt.Oversub)
	case pt.DegradedRail == "" && pt.DegradeFactor != 1:
		return fmt.Errorf("healthy point carries degrade factor %g", pt.DegradeFactor)
	case pt.DegradedRail != "" && (pt.DegradeFactor <= 0 || pt.DegradeFactor >= 1):
		return fmt.Errorf("degraded rail %q with factor %g outside (0, 1)", pt.DegradedRail, pt.DegradeFactor)
	case pt.Partitioning == "":
		return fmt.Errorf("no partitioning recorded")
	case pt.ReplAB < 1 || pt.ReplC < 1:
		return fmt.Errorf("replication (%d, %d) not positive", pt.ReplAB, pt.ReplC)
	case pt.CostSeconds <= 0:
		return fmt.Errorf("cost estimate %g not positive", pt.CostSeconds)
	case pt.MakespanSeconds <= 0:
		return fmt.Errorf("makespan %g not positive", pt.MakespanSeconds)
	case pt.PercentOfPeak <= 0 || pt.PercentOfPeak > 100:
		return fmt.Errorf("percent of peak %g outside (0, 100]", pt.PercentOfPeak)
	case pt.AvgComputeUtil < 0 || pt.AvgComputeUtil > 1:
		return fmt.Errorf("compute utilization %g outside [0, 1]", pt.AvgComputeUtil)
	case pt.Ops <= 0:
		return fmt.Errorf("op count %d not positive", pt.Ops)
	case pt.RemoteGetBytes < 0 || pt.RemoteAccumBytes < 0:
		return fmt.Errorf("negative traffic (%d get, %d accum)", pt.RemoteGetBytes, pt.RemoteAccumBytes)
	}
	// The availability axis is optional (classic artifacts carry none of
	// its fields); when any of them is set, all must be coherent.
	if pt.AvailabilityPct != 0 || pt.DegradationX != 0 || pt.CrashedRanks != 0 {
		switch {
		case pt.AvailabilityPct <= 0 || pt.AvailabilityPct > 100:
			return fmt.Errorf("availability %g%% outside (0, 100]", pt.AvailabilityPct)
		case pt.DegradationX < 1:
			return fmt.Errorf("degradation %gx below 1", pt.DegradationX)
		case pt.CrashedRanks < 0 || pt.CrashedRanks >= pt.PEs:
			return fmt.Errorf("%d crashed ranks on %d PEs", pt.CrashedRanks, pt.PEs)
		}
	}
	return nil
}

// Encode renders the artifact as indented JSON with a trailing newline —
// the exact bytes WriteFile commits, exposed so determinism checks can
// compare in memory.
func (a *Artifact) Encode() ([]byte, error) {
	if err := Validate(a); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(a); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteFile atomically persists the artifact (temp file + rename, like the
// plan cache) after re-validating it.
func (a *Artifact) WriteFile(path string) error {
	data, err := a.Encode()
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadFile loads and validates an artifact written by WriteFile.
func ReadFile(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := Validate(&a); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &a, nil
}
