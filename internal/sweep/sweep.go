// Package sweep is the cluster-sweep subsystem: it evaluates the
// universal algorithm over a declarative grid of H100 fat-tree clusters —
// node counts, rail counts, leaf→spine oversubscription, and degraded
// rails, the axes of the paper's Figures 2-3 — entirely through the
// model-only execution mode. Every grid point autotunes its partitioning,
// compiles (or re-uses) a cached plan, and replays it through
// universal.ModelExecutor over the point's fabric, so a sweep across
// thousands of PEs runs in seconds with no tile allocation and no real
// arithmetic. Results are frozen into a schema-versioned, machine-readable
// Artifact (SWEEP_*.json) that internal/trace renders as a summary table.
//
// The design follows the "precompute so the inner loop is milliseconds"
// discipline: plan compilation is the expensive step, and PlanKey excludes
// topology, so every fabric variant at a fixed (world size, shapes,
// partitioning, replication, stationary) shares one CompiledPlan through
// the PlanCache — rails, oversubscription, and degradation then reprice
// the same schedule instead of recompiling it.
package sweep

import (
	"fmt"
	"sync"

	"slicing/internal/autotune"
	"slicing/internal/bench"
	"slicing/internal/chaos"
	"slicing/internal/fabric"
	"slicing/internal/gpusim"
	"slicing/internal/modelworld"
	rt "slicing/internal/runtime"
	"slicing/internal/universal"
)

// DegradedRailName is the rail NIC a degraded sweep column downtrains
// (both directions): node 0's first InfiniBand port pair.
const DegradedRailName = "n0.nic0.ib"

// Spec declares a sweep: the problem (one MLP layer at one batch size) and
// the cluster grid. The grid is the cross product NodeCounts × RailCounts
// × Oversubs × DegradeFactors, minus combinations the fat-tree preset
// rejects (a single-rail node has no spine to oversubscribe), expanded in
// that nesting order — deterministically, which is what makes two runs of
// one spec byte-identical.
type Spec struct {
	// Name labels the sweep in the artifact ("figure2-mlp1" style).
	Name string
	// Layer and Batch pick the GEMM shape via bench.Layer.Dims.
	Layer bench.Layer
	// Batch is the global batch size (rows of A); 0 means the largest
	// paper batch, 8192.
	Batch int
	// NodeCounts are the cluster sizes to sweep (8 PEs per node); each
	// must be ≥ 2.
	NodeCounts []int
	// RailCounts are NICs per node; each must divide 8.
	RailCounts []int
	// Oversubs are leaf→spine oversubscription ratios (≥ 1).
	Oversubs []float64
	// DegradeFactors multiply DegradedRailName's bandwidth per column;
	// 1 is the healthy fabric, values in (0, 1) add a degraded-rail
	// column to the figure.
	DegradeFactors []float64
	// CrashCounts, when non-empty, adds the availability axis: each count
	// crashes that many ranks — picked deterministically from (Seed, point
	// index) via chaos.PickRanks — and re-prices the point's plan with the
	// crashed ranks excluded (universal.Config.Exclude), the survivors
	// having adopted their work. The point then carries availability
	// (healthy-vs-degraded makespan ratio) and degradation fields. Counts
	// must lie in [0, PEs); 0 is the explicit 100%-availability baseline.
	// Nil keeps the classic grid and artifact byte-layout unchanged.
	CrashCounts []int
	// Autotune bounds the per-point search. Partitionings nil searches
	// every family (expensive at cluster scale); Replications nil every
	// divisor of p. MemBudgetElems 0 is unlimited. SimulateTop re-ranks
	// that many cost-model leaders with the discrete-event simulator.
	Partitionings  []bench.Partitioning
	Replications   []int
	MemBudgetElems float64
	SimulateTop    int
	// Seed identifies the run for reproducibility checks; the sweep is
	// fully deterministic, so equal (Spec, Seed) must produce
	// byte-identical artifacts.
	Seed int64
}

func (s Spec) withDefaults() Spec {
	if s.Name == "" {
		s.Name = "cluster-sweep"
	}
	if s.Batch == 0 {
		s.Batch = bench.Batches[len(bench.Batches)-1]
	}
	if s.NodeCounts == nil {
		s.NodeCounts = []int{2, 8, 32, 128}
	}
	if s.RailCounts == nil {
		s.RailCounts = []int{1, 4, 8}
	}
	if s.Oversubs == nil {
		s.Oversubs = []float64{1, 2}
	}
	if s.DegradeFactors == nil {
		s.DegradeFactors = []float64{1, 0.5}
	}
	if s.Partitionings == nil {
		// The figure's contenders: 2D block and the outer-product layout.
		// A full six-family search at thousands of PEs belongs to offline
		// autotuning, not a sweep's inner loop.
		s.Partitionings = []bench.Partitioning{bench.PartBlock, bench.PartOuterProd}
	}
	if s.Replications == nil {
		s.Replications = []int{1, 2}
	}
	return s
}

// PointSpec is one expanded grid point. Crashes is the availability
// axis: -1 when the axis is absent (classic sweeps), otherwise the
// number of ranks to crash at this point.
type PointSpec struct {
	Nodes   int
	Rails   int
	Oversub float64
	Degrade float64
	Crashes int
}

// valid reports whether the fat-tree preset accepts the combination.
func (ps PointSpec) valid() bool {
	return ps.Nodes >= 2 && ps.Rails >= 1 && ps.Rails <= 8 && 8%ps.Rails == 0 &&
		ps.Oversub >= 1 && !(ps.Rails == 1 && ps.Oversub != 1) &&
		ps.Degrade > 0 && ps.Degrade <= 1 &&
		ps.Crashes >= -1 && ps.Crashes < 8*ps.Nodes
}

// Points expands the spec's grid in deterministic nesting order
// (nodes, rails, oversub, degrade, crashes), skipping invalid
// combinations. Without CrashCounts the crash axis collapses to the
// -1 sentinel, leaving classic expansions unchanged.
func (s Spec) Points() []PointSpec {
	s = s.withDefaults()
	crashes := s.CrashCounts
	if len(crashes) == 0 {
		crashes = []int{-1}
	}
	var out []PointSpec
	for _, nodes := range s.NodeCounts {
		for _, rails := range s.RailCounts {
			for _, ov := range s.Oversubs {
				for _, dg := range s.DegradeFactors {
					for _, cr := range crashes {
						ps := PointSpec{Nodes: nodes, Rails: rails, Oversub: ov, Degrade: dg, Crashes: cr}
						if ps.valid() {
							out = append(out, ps)
						}
					}
				}
			}
		}
	}
	return out
}

// Point is one evaluated grid point of the artifact.
type Point struct {
	Nodes   int     `json:"nodes"`
	PEs     int     `json:"pes"`
	Rails   int     `json:"rails"`
	Oversub float64 `json:"oversub"`
	// DegradedRail names the downtrained rail ("" for the healthy
	// column); DegradeFactor is the bandwidth multiplier applied to it.
	DegradedRail  string  `json:"degraded_rail,omitempty"`
	DegradeFactor float64 `json:"degrade_factor"`

	// The autotuned configuration.
	Partitioning string  `json:"partitioning"`
	ReplAB       int     `json:"repl_ab"`
	ReplC        int     `json:"repl_c"`
	Stationary   string  `json:"stationary"`
	CostSeconds  float64 `json:"cost_seconds"`

	// The model-only execution's prediction.
	MakespanSeconds  float64 `json:"makespan_seconds"`
	PercentOfPeak    float64 `json:"percent_of_peak"`
	RemoteGetBytes   int     `json:"remote_get_bytes"`
	RemoteAccumBytes int     `json:"remote_accum_bytes"`
	AvgComputeUtil   float64 `json:"avg_compute_util"`
	Ops              int     `json:"ops"`

	// The availability axis (Spec.CrashCounts), absent — and omitted from
	// the JSON — on classic sweeps. CrashedRanks is how many ranks this
	// point crashed; AvailabilityPct is the fraction of healthy throughput
	// the surviving ranks retain, 100·healthy/degraded makespan capped at
	// 100 (work conservation means survivors can only slow down, but the
	// cap keeps a pathologically better balance from reading as >100%
	// availability); DegradationX is the makespan stretch, floored at 1
	// symmetrically. MakespanSeconds stays the healthy baseline so the
	// classic columns remain comparable across specs.
	CrashedRanks    int     `json:"crashed_ranks,omitempty"`
	AvailabilityPct float64 `json:"availability_pct,omitempty"`
	DegradationX    float64 `json:"degradation_x,omitempty"`
}

// Run evaluates every grid point concurrently and freezes the results into
// an artifact. Points are independent — each builds its own fabric and
// model-world problem — except for the shared plan cache, whose
// single-flight compilation deduplicates the expensive slicing work across
// points that share a plan key; pass nil to use a private cache. Results
// are written slot-indexed, so the artifact's point order equals the
// spec's deterministic expansion order regardless of scheduling.
func Run(spec Spec, cache *universal.PlanCache) (*Artifact, error) {
	spec = spec.withDefaults()
	points := spec.Points()
	if len(points) == 0 {
		return nil, fmt.Errorf("sweep: spec %q expands to zero valid points", spec.Name)
	}
	if cache == nil {
		cache = universal.NewPlanCache(4 * len(points))
	}
	m, n, k := spec.Layer.Dims(spec.Batch)
	buildsBefore := cache.Stats().Builds

	// Executors are reusable but not concurrency-safe; a pool hands each
	// in-flight point one without pinning executors to pool workers.
	var executors sync.Pool
	results := make([]Point, len(points))
	rt.ForEachIndex(len(points), func(i int) {
		results[i] = evalPoint(points[i], i, spec, m, n, k, cache, &executors)
	})

	art := &Artifact{
		Schema: ArtifactSchema,
		Name:   spec.Name,
		Seed:   spec.Seed,
		Layer:  spec.Layer.String(),
		Batch:  spec.Batch,
		M:      m, N: n, K: k,
		Points: results,
		// Builds is the number of distinct plans compiled for this sweep —
		// a deterministic measure of how much work the cache deduplicated
		// (hit/coalesced splits depend on scheduling; builds do not).
		PlanBuilds: cache.Stats().Builds - buildsBefore,
	}
	if err := Validate(art); err != nil {
		return nil, err
	}
	return art, nil
}

// evalPoint prices one grid point: build the fabric, autotune the layout,
// compile or fetch the plan, and replay it through the model executor.
// idx is the point's position in the deterministic expansion order; it
// salts the crash picker so different grid points crash different rank
// sets under one seed.
func evalPoint(ps PointSpec, idx int, spec Spec, m, n, k int, cache *universal.PlanCache, executors *sync.Pool) Point {
	fab := fabric.H100FatTree(ps.Nodes, ps.Rails, ps.Oversub)
	degraded := ""
	if ps.Degrade < 1 {
		fab.Degrade(fab.LinkID(DegradedRailName+">"), ps.Degrade)
		fab.Degrade(fab.LinkID(DegradedRailName+"<"), ps.Degrade)
		degraded = DegradedRailName
	}
	sys := universal.SimSystem{Topo: fab.Topology(), Dev: gpusim.PresetH100Device()}
	p := sys.Topo.NumPE()

	cand := autotune.Search(sys, m, n, k, autotune.Options{
		MemBudgetElems: spec.MemBudgetElems,
		SimulateTop:    spec.SimulateTop,
		Partitionings:  spec.Partitionings,
		Replications:   spec.Replications,
	})[0]

	w := modelworld.NewWorld(p)
	a, b, c := cand.Instantiate(w, m, n, k)
	prob := universal.NewProblem(c, a, b)
	cfg := cand.Config()
	cp := cache.GetOrCompile(prob, cfg)

	x, _ := executors.Get().(*universal.ModelExecutor)
	if x == nil {
		x = universal.NewModelExecutor()
	}
	res := x.Simulate(prob, cp, cfg, sys)

	pt := Point{
		Nodes: ps.Nodes, PEs: p, Rails: ps.Rails, Oversub: ps.Oversub,
		DegradedRail: degraded, DegradeFactor: ps.Degrade,
		Partitioning: cand.Part.String(), ReplAB: cand.ReplAB, ReplC: cand.ReplC,
		Stationary: res.Stationary.String(), CostSeconds: cand.CostSeconds,
		MakespanSeconds: res.Makespan, PercentOfPeak: res.PercentOfPeak,
		RemoteGetBytes: res.RemoteGetBytes, RemoteAccumBytes: res.RemoteAccumBytes,
		AvgComputeUtil: res.AvgComputeUtil, Ops: res.Ops,
	}
	if ps.Crashes >= 0 {
		pt.CrashedRanks = ps.Crashes
		pt.AvailabilityPct, pt.DegradationX = 100, 1
		if ps.Crashes > 0 {
			// Re-price the same schedule with the crashed ranks excluded:
			// the exclusion set is part of the plan key, so the repair plan
			// is an ordinary cache entry shared across points that agree on
			// everything including which ranks died.
			cfgx := cfg
			cfgx.Exclude = chaos.PickRanks(spec.Seed, uint64(idx), ps.Crashes, p)
			cpx := cache.GetOrCompile(prob, cfgx)
			resx := x.Simulate(prob, cpx, cfgx, sys)
			if resx.Makespan > res.Makespan {
				pt.AvailabilityPct = 100 * res.Makespan / resx.Makespan
				pt.DegradationX = resx.Makespan / res.Makespan
			}
		}
	}
	executors.Put(x)
	return pt
}
