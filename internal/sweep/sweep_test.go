package sweep

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"slicing/internal/bench"
	"slicing/internal/universal"
)

// smallSpec is a cheap grid for tests: 16- and 32-PE clusters at batch
// 1024 with one healthy and one degraded column.
func smallSpec() Spec {
	return Spec{
		Name:           "test-sweep",
		Batch:          1024,
		NodeCounts:     []int{2, 4},
		RailCounts:     []int{4},
		Oversubs:       []float64{1},
		DegradeFactors: []float64{1, 0.25},
	}
}

func TestPointsExpansion(t *testing.T) {
	pts := Spec{}.Points()
	if len(pts) < 24 {
		t.Fatalf("default grid has %d points, want >= 24 for a figure-shaped sweep", len(pts))
	}
	degraded := 0
	for _, ps := range pts {
		if ps.Rails == 1 && ps.Oversub != 1 {
			t.Fatalf("invalid point survived expansion: %+v", ps)
		}
		if ps.Degrade < 1 {
			degraded++
		}
	}
	if degraded == 0 {
		t.Fatal("default grid has no degraded-rail column")
	}
	// Expansion must be deterministic: same spec, same order.
	again := Spec{}.Points()
	if len(again) != len(pts) {
		t.Fatalf("expansion not stable: %d then %d points", len(pts), len(again))
	}
	for i := range pts {
		if pts[i] != again[i] {
			t.Fatalf("point %d differs across expansions: %+v vs %+v", i, pts[i], again[i])
		}
	}
}

func TestRunSmallGrid(t *testing.T) {
	cache := universal.NewPlanCache(16)
	art, err := Run(smallSpec(), cache)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := Validate(art); err != nil {
		t.Fatalf("artifact invalid: %v", err)
	}
	if len(art.Points) != 4 {
		t.Fatalf("got %d points, want 4", len(art.Points))
	}
	if art.PlanBuilds == 0 {
		t.Fatal("sweep compiled no plans")
	}
	m, n, k := bench.MLP1.Dims(1024)
	if art.M != m || art.N != n || art.K != k {
		t.Fatalf("artifact problem %dx%dx%d, want %dx%dx%d", art.M, art.N, art.K, m, n, k)
	}
	// Points come back in expansion order, pairing each healthy point with
	// its degraded twin; crippling a rail must never make the model faster.
	for i := 0; i < len(art.Points); i += 2 {
		healthy, degraded := art.Points[i], art.Points[i+1]
		if healthy.DegradedRail != "" || degraded.DegradedRail != DegradedRailName {
			t.Fatalf("points %d/%d not a healthy/degraded pair: %q %q",
				i, i+1, healthy.DegradedRail, degraded.DegradedRail)
		}
		if degraded.MakespanSeconds < healthy.MakespanSeconds {
			t.Fatalf("%d nodes: degraded rail faster than healthy (%.6g < %.6g)",
				healthy.Nodes, degraded.MakespanSeconds, healthy.MakespanSeconds)
		}
	}
}

// Equal specs must produce byte-identical artifacts — the property CI's
// determinism check enforces on the committed SWEEP_*.json.
func TestRunDeterministic(t *testing.T) {
	first, err := Run(smallSpec(), nil)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	second, err := Run(smallSpec(), nil)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	a, err := first.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := second.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same spec produced different artifact bytes")
	}
}

// A shared warm cache must change plan_builds but nothing else.
func TestRunWarmCacheSameResults(t *testing.T) {
	cache := universal.NewPlanCache(16)
	cold, err := Run(smallSpec(), cache)
	if err != nil {
		t.Fatal(err)
	}
	if cold.PlanBuilds == 0 {
		t.Fatal("cold run built no plans")
	}
	warm, err := Run(smallSpec(), cache)
	if err != nil {
		t.Fatal(err)
	}
	if warm.PlanBuilds != 0 {
		t.Fatalf("warm run built %d plans, want 0", warm.PlanBuilds)
	}
	for i := range cold.Points {
		if cold.Points[i] != warm.Points[i] {
			t.Fatalf("point %d differs between cold and warm cache:\n%+v\n%+v",
				i, cold.Points[i], warm.Points[i])
		}
	}
}

func TestArtifactFileRoundTrip(t *testing.T) {
	art, err := Run(smallSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "SWEEP_test.json")
	if err := art.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	a, _ := art.Encode()
	b, _ := back.Encode()
	if !bytes.Equal(a, b) {
		t.Fatal("artifact changed across a file round trip")
	}
}

func TestValidateRejects(t *testing.T) {
	art, err := Run(smallSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	breakages := map[string]func(a *Artifact){
		"wrong schema":      func(a *Artifact) { a.Schema = "sweep/v0" },
		"no points":         func(a *Artifact) { a.Points = nil },
		"pe mismatch":       func(a *Artifact) { a.Points[0].PEs++ },
		"zero makespan":     func(a *Artifact) { a.Points[0].MakespanSeconds = 0 },
		"peak over 100":     func(a *Artifact) { a.Points[0].PercentOfPeak = 101 },
		"healthy w/ factor": func(a *Artifact) { a.Points[0].DegradeFactor = 0.5 },
		"degraded w/ 1.0":   func(a *Artifact) { a.Points[1].DegradeFactor = 1 },
		"bad rails":         func(a *Artifact) { a.Points[0].Rails = 3 },
	}
	for name, sabotage := range breakages {
		bad := *art
		bad.Points = append([]Point(nil), art.Points...)
		sabotage(&bad)
		if err := Validate(&bad); err == nil {
			t.Errorf("%s: Validate accepted a broken artifact", name)
		}
	}
}

// ReadFile must reject artifacts with unknown fields (schema drift) and
// junk — sharing Validate with the writer is the point.
func TestReadFileRejectsJunk(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"junk":          "not json",
		"unknown field": `{"schema":"sweep/v1","name":"x","surprise":1}`,
		"empty":         `{}`,
	}
	for name, content := range cases {
		path := filepath.Join(dir, strings.ReplaceAll(name, " ", "_")+".json")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadFile(path); err == nil {
			t.Errorf("%s: ReadFile accepted it", name)
		}
	}
}

// availSpec is smallSpec plus the availability axis: a crash grid over
// one healthy column.
func availSpec() Spec {
	return Spec{
		Name:           "test-availability",
		Batch:          1024,
		Seed:           42,
		NodeCounts:     []int{2},
		RailCounts:     []int{4},
		Oversubs:       []float64{1},
		DegradeFactors: []float64{1, 0.5},
		CrashCounts:    []int{0, 1, 4},
	}
}

func TestRunAvailabilityAxis(t *testing.T) {
	art, err := Run(availSpec(), nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(art.Points) != 6 {
		t.Fatalf("got %d points, want 2 degrade columns x 3 crash counts", len(art.Points))
	}
	for i, pt := range art.Points {
		if pt.CrashedRanks == 0 {
			if pt.AvailabilityPct != 100 || pt.DegradationX != 1 {
				t.Errorf("point %d: 0-crash baseline availability %g%% degradation %gx", i, pt.AvailabilityPct, pt.DegradationX)
			}
			continue
		}
		if pt.AvailabilityPct <= 0 || pt.AvailabilityPct > 100 {
			t.Errorf("point %d: availability %g%% outside (0, 100]", i, pt.AvailabilityPct)
		}
		if pt.DegradationX < 1 {
			t.Errorf("point %d: degradation %gx below 1", i, pt.DegradationX)
		}
		// Losing ranks on a fixed problem must cost throughput: the
		// survivors carry the dead ranks' adopted ops on top of their own.
		if pt.AvailabilityPct >= 100 {
			t.Errorf("point %d: %d crashed ranks yet availability %g%%", i, pt.CrashedRanks, pt.AvailabilityPct)
		}
	}
	// Any crash must cost availability relative to the 0-crash baseline
	// (crash counts are not mutually monotone: each count picks its own
	// rank set, and which ranks die moves the adopted ops' locality).
	for i := 0; i+2 < len(art.Points); i += 3 {
		p0, p1, p4 := art.Points[i], art.Points[i+1], art.Points[i+2]
		if p1.AvailabilityPct >= p0.AvailabilityPct || p4.AvailabilityPct >= p0.AvailabilityPct {
			t.Errorf("crashes did not cost availability at points %d..%d: %g%% %g%% %g%%",
				i, i+2, p0.AvailabilityPct, p1.AvailabilityPct, p4.AvailabilityPct)
		}
	}
}

func TestRunAvailabilityDeterministic(t *testing.T) {
	a1, err := Run(availSpec(), nil)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	a2, err := Run(availSpec(), nil)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	b1, err := a1.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	b2, _ := a2.Encode()
	if !bytes.Equal(b1, b2) {
		t.Fatal("availability sweep is not byte-deterministic")
	}
	// A different seed must crash different ranks somewhere and move the
	// numbers (PickRanks is seed-sensitive).
	spec := availSpec()
	spec.Seed = 43
	a3, err := Run(spec, nil)
	if err != nil {
		t.Fatalf("reseeded run: %v", err)
	}
	a3.Seed = a1.Seed // neutralize the recorded seed field itself
	b3, _ := a3.Encode()
	if bytes.Equal(b1, b3) {
		t.Log("note: seeds 42 and 43 picked identical crash sets on this grid")
	}
}

// TestAvailabilityFieldsRoundTrip pins that availability artifacts
// survive the file round trip (DisallowUnknownFields must accept the new
// fields) and that classic artifacts without them still validate.
func TestAvailabilityFieldsRoundTrip(t *testing.T) {
	art, err := Run(availSpec(), nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	path := filepath.Join(t.TempDir(), "avail.json")
	if err := art.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if len(back.Points) != len(art.Points) {
		t.Fatalf("round trip lost points: %d vs %d", len(back.Points), len(art.Points))
	}
	for i := range back.Points {
		if back.Points[i] != art.Points[i] {
			t.Fatalf("point %d changed across the round trip", i)
		}
	}
}
