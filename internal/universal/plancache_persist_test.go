package universal

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"slicing/internal/distmat"
	"slicing/internal/modelworld"
)

func persistProblem(p, m, n, k, cC int) Problem {
	w := modelworld.NewWorld(p)
	a := distmat.New(w, m, k, distmat.RowBlock{}, 1)
	b := distmat.New(w, k, n, distmat.ColBlock{}, 1)
	c := distmat.New(w, m, n, distmat.Block2D{}, cC)
	return NewProblem(c, a, b)
}

// SaveFile → LoadFile must reproduce the cache: same plans, same recency
// order (the file stores LRU→MRU so replaying Puts restores it).
func TestPlanCacheSaveLoadRoundTrip(t *testing.T) {
	src := NewPlanCache(8)
	cfg := DefaultConfig()
	probs := []Problem{
		persistProblem(4, 64, 64, 64, 1),
		persistProblem(4, 96, 64, 128, 1),
		persistProblem(8, 128, 96, 64, 2),
	}
	var keys []PlanKey
	for _, prob := range probs {
		cp := src.GetOrCompile(prob, cfg)
		keys = append(keys, cp.Key)
	}

	path := filepath.Join(t.TempDir(), "plans.json")
	if err := src.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}

	dst := NewPlanCache(8)
	n, err := dst.LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if n != len(probs) {
		t.Fatalf("loaded %d plans, want %d", n, len(probs))
	}
	for i, key := range keys {
		cp, ok := dst.Get(key)
		if !ok {
			t.Fatalf("plan %d missing after round trip", i)
		}
		if cp.Key != key || len(cp.Plans) != key.NumPE {
			t.Fatalf("plan %d corrupted: key %+v", i, cp.Key)
		}
	}
	// The loaded plans must execute through the cache hit path identically:
	// compile fresh and compare step-for-step.
	for _, prob := range probs {
		want := CompilePlans(prob, cfg)
		got, _ := dst.Get(want.Key)
		for r := range want.Plans {
			if len(got.Plans[r].Steps) != len(want.Plans[r].Steps) {
				t.Fatalf("rank %d: loaded %d steps, fresh %d", r, len(got.Plans[r].Steps), len(want.Plans[r].Steps))
			}
			for i := range want.Plans[r].Steps {
				if got.Plans[r].Steps[i] != want.Plans[r].Steps[i] {
					t.Fatalf("rank %d step %d differs after round trip", r, i)
				}
			}
		}
	}
}

// Loading into a smaller cache keeps the most recently used tail.
func TestPlanCacheLoadRespectsCapacity(t *testing.T) {
	src := NewPlanCache(8)
	cfg := DefaultConfig()
	var keys []PlanKey
	for _, mk := range []int{64, 96, 128} {
		cp := src.GetOrCompile(persistProblem(4, mk, 64, 64, 1), cfg)
		keys = append(keys, cp.Key)
	}
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	dst := NewPlanCache(1)
	if n, err := dst.Load(&buf); err != nil || n != 3 {
		t.Fatalf("Load = (%d, %v)", n, err)
	}
	if dst.Len() != 1 {
		t.Fatalf("capacity-1 cache holds %d plans", dst.Len())
	}
	if _, ok := dst.Get(keys[2]); !ok {
		t.Fatal("most recently used plan should survive a capacity-1 load")
	}
}

func TestPlanCacheLoadRejectsBadInput(t *testing.T) {
	c := NewPlanCache(4)
	cases := map[string]string{
		"bad schema":   `{"schema":"plancache/v0","plans":[]}`,
		"not json":     `{"schema":`,
		"null plan":    `{"schema":"plancache/v1","plans":[null]}`,
		"invalid plan": `{"schema":"plancache/v1","plans":[{"key":{"NumPE":-1},"plans":[]}]}`,
	}
	for name, in := range cases {
		if _, err := c.Load(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Load accepted malformed input", name)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("failed loads leaked %d entries", c.Len())
	}
}

// LoadFile on a missing path is a cold start, not an error.
func TestPlanCacheLoadFileMissing(t *testing.T) {
	c := NewPlanCache(4)
	n, err := c.LoadFile(filepath.Join(t.TempDir(), "nope.json"))
	if n != 0 || err != nil {
		t.Fatalf("missing file: (%d, %v), want (0, nil)", n, err)
	}
}
