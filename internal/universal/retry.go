package universal

import (
	"sync/atomic"
	"time"

	rt "slicing/internal/runtime"
)

// RetryConfig is the executor's recovery budget for one-sided operation
// faults (docs/RESILIENCE.md). It only matters on fault-capable backends
// (the chaos decorator; a future real-network backend): on backends whose
// ops cannot fail the retry sites cost one open-coded deferred recover
// per op and nothing else.
type RetryConfig struct {
	// Attempts is the total tries per one-sided op (first attempt
	// included). <= 0 selects the default of 3. Transient failures past
	// the budget escalate to fatal; fatal failures never retry.
	Attempts int
	// BaseDelay is the first retry's backoff; successive retries double
	// it, each jittered uniformly in [0.5, 1.5)× so lockstep PEs don't
	// reissue in phase. <= 0 selects the default of 50µs.
	BaseDelay time.Duration
	// OpTimeout bounds a single one-sided op on backends with the
	// OpDeadliner capability; an op stalled past it fails with
	// ErrOpTimeout (fatal — a hung op that ate its deadline is assumed
	// wedged). Zero leaves ops unbounded.
	OpTimeout time.Duration
	// Retries, when non-nil, is incremented once per retry actually
	// performed — the serving layer's fault accounting hook. A pointer so
	// every copy of a Config shares one counter.
	Retries *atomic.Int64
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.Attempts <= 0 {
		c.Attempts = 3
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 50 * time.Microsecond
	}
	return c
}

// tryOp runs one one-sided op, converting a *runtime.Fault unwind into an
// error. The deferred CatchFault in a named function compiles to an
// open-coded defer, so the no-fault path allocates nothing.
func tryOp(op func()) (err error) {
	defer rt.CatchFault(&err)
	op()
	return nil
}

// retrier is one goroutine's retry state: the budget plus a private
// xorshift64 stream for backoff jitter. Each feeder and each crew worker
// owns its own, so retries never contend on shared PRNG state.
type retrier struct {
	attempts int
	base     time.Duration
	counter  *atomic.Int64
	rng      uint64
}

func newRetrier(cfg RetryConfig, seed uint64) retrier {
	return retrier{attempts: cfg.Attempts, base: cfg.BaseDelay, counter: cfg.Retries, rng: seed*0x9e3779b97f4a7c15 | 1}
}

// do runs op under the retry budget: transient failures back off and
// reissue, fatal failures and exhausted budgets return the error. op must
// be idempotent-on-failure, which one-sided ops are: a failed op is
// defined to have moved no data.
func (r *retrier) do(op func()) error {
	for attempt := 1; ; attempt++ {
		err := tryOp(op)
		if err == nil || rt.IsFatal(err) || attempt >= r.attempts {
			return err
		}
		if r.counter != nil {
			r.counter.Add(1)
		}
		r.backoff(attempt)
	}
}

// backoff sleeps the attempt's jittered exponential delay.
func (r *retrier) backoff(attempt int) {
	if r.base <= 0 {
		return
	}
	d := r.base << uint(attempt-1)
	r.rng ^= r.rng << 13
	r.rng ^= r.rng >> 7
	r.rng ^= r.rng << 17
	jitter := 0.5 + float64(r.rng>>11)/float64(1<<53)
	time.Sleep(time.Duration(float64(d) * jitter))
}

// errBox is the crew's first-error-wins abort flag: the feeder and every
// worker publish fatal errors into it and poll it before starting new
// work, so one rank's failed step drains the crew cleanly instead of
// deadlocking it. The no-error path is a single atomic load; the error
// path allocates once.
type errBox struct {
	p atomic.Pointer[boxedErr]
}

type boxedErr struct{ err error }

func (b *errBox) set(err error) {
	if err == nil {
		return
	}
	b.p.CompareAndSwap(nil, &boxedErr{err: err})
}

func (b *errBox) err() error {
	if w := b.p.Load(); w != nil {
		return w.err
	}
	return nil
}
