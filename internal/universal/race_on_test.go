//go:build race

package universal

// raceEnabled: see race_off_test.go.
const raceEnabled = true
