package universal

import (
	"math"
	"testing"

	"slicing/internal/distmat"
	"slicing/internal/fabric"
	"slicing/internal/gpusim"
	"slicing/internal/modelworld"
	"slicing/internal/simnet"
)

// modelProblem lays a problem out over a model-only world: no storage is
// allocated, which is the point — the executor under test must never need
// any.
func modelProblem(p, m, n, k int, pa, pb, pc distmat.Partition, cAB, cC int) Problem {
	w := modelworld.NewWorld(p)
	a := distmat.New(w, m, k, pa, cAB)
	b := distmat.New(w, k, n, pb, cAB)
	c := distmat.New(w, m, n, pc, cC)
	return NewProblem(c, a, b)
}

func requireSimResultsEqual(t *testing.T, got, want SimResult) {
	t.Helper()
	if got.Makespan != want.Makespan {
		t.Fatalf("makespan: model %v, trace %v", got.Makespan, want.Makespan)
	}
	if got.PercentOfPeak != want.PercentOfPeak {
		t.Fatalf("percent of peak: model %v, trace %v", got.PercentOfPeak, want.PercentOfPeak)
	}
	if got.RemoteGetBytes != want.RemoteGetBytes || got.RemoteAccumBytes != want.RemoteAccumBytes {
		t.Fatalf("traffic: model (%d,%d), trace (%d,%d)",
			got.RemoteGetBytes, got.RemoteAccumBytes, want.RemoteGetBytes, want.RemoteAccumBytes)
	}
	if got.Ops != want.Ops || got.Stationary != want.Stationary {
		t.Fatalf("ops/stationary: model (%d,%v), trace (%d,%v)", got.Ops, got.Stationary, want.Ops, want.Stationary)
	}
	if got.AvgComputeUtil != want.AvgComputeUtil {
		t.Fatalf("compute util: model %v, trace %v", got.AvgComputeUtil, want.AvgComputeUtil)
	}
}

// On a degenerate fabric (scalar port model re-expressed as links) the
// model-only executor must reproduce SimulateMultiplyTrace bit for bit:
// both run the same planReplayer over the same plans.
func TestModelExecutorMatchesTraceDegenerate(t *testing.T) {
	sys := SimSystem{
		Topo: fabric.Degenerate(simnet.PresetH100()).Topology(),
		Dev:  gpusim.PresetH100Device(),
	}
	prob := modelProblem(8, 1024, 12288, 3072, distmat.RowBlock{}, distmat.ColBlock{}, distmat.Block2D{}, 1, 1)
	cfg := DefaultConfig()

	want := SimulateMultiply(prob, cfg, sys)
	cp := CompilePlans(prob, cfg)
	got := NewModelExecutor().Simulate(prob, cp, cfg, sys)
	requireSimResultsEqual(t, got, want)
}

// On a routed fat-tree at 1/16 scale the predictions must agree within
// 1e-9 relative — and in fact bit for bit, which the equality helper pins.
// Includes a replicated C so the reduce_replicas path replays too.
func TestModelExecutorMatchesTraceRoutedFatTree(t *testing.T) {
	sys := H100FatTreeSystem(2, 4, 2.0) // 16 PEs
	for _, cC := range []int{1, 2} {
		prob := modelProblem(16, 1024, 12288, 3072, distmat.RowBlock{}, distmat.ColBlock{}, distmat.Block2D{}, 1, cC)
		cfg := DefaultConfig()

		want := SimulateMultiply(prob, cfg, sys)
		cp := CompilePlans(prob, cfg)
		got := NewModelExecutor().Simulate(prob, cp, cfg, sys)

		if rel := math.Abs(got.Makespan-want.Makespan) / want.Makespan; rel > 1e-9 {
			t.Fatalf("cC=%d: relative makespan error %g > 1e-9", cC, rel)
		}
		requireSimResultsEqual(t, got, want)
	}
}

// One executor must serve many sweep points (different topologies, same or
// different plans) and still agree with the one-shot path after resets.
func TestModelExecutorReusedAcrossSystems(t *testing.T) {
	x := NewModelExecutor()
	systems := []SimSystem{
		H100FatTreeSystem(2, 1, 1.0),
		H100FatTreeSystem(2, 4, 2.0),
		H100FatTreeSystem(2, 8, 1.0),
	}
	prob := modelProblem(16, 512, 768, 3072, distmat.RowBlock{}, distmat.ColBlock{}, distmat.Block2D{}, 1, 1)
	cfg := DefaultConfig()
	cp := CompilePlans(prob, cfg)
	for i, sys := range systems {
		want := SimulateMultiply(prob, cfg, sys)
		got := x.Simulate(prob, cp, cfg, sys)
		requireSimResultsEqual(t, got, want)
		if i > 0 && got.Makespan == 0 {
			t.Fatal("degenerate zero makespan")
		}
	}
}

func TestModelExecutorTopologyMismatchPanics(t *testing.T) {
	prob := modelProblem(16, 512, 768, 3072, distmat.RowBlock{}, distmat.ColBlock{}, distmat.Block2D{}, 1, 1)
	cfg := DefaultConfig()
	cp := CompilePlans(prob, cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("16-PE plan on 32-PE topology should panic")
		}
	}()
	NewModelExecutor().Simulate(prob, cp, cfg, H100FatTreeSystem(4, 4, 2.0))
}

// The sweep-point hot path: after warmup, replaying a compiled plan on a
// routed fat-tree allocates nothing — no tiles (there is no storage at
// all), and no per-replay bookkeeping either.
func TestModelExecutorSimulateZeroAllocs(t *testing.T) {
	sys := H100FatTreeSystem(2, 4, 2.0)
	prob := modelProblem(16, 512, 768, 3072, distmat.RowBlock{}, distmat.ColBlock{}, distmat.Block2D{}, 1, 1)
	cfg := DefaultConfig()
	cp := CompilePlans(prob, cfg)

	x := NewModelExecutor()
	x.Simulate(prob, cp, cfg, sys)
	x.Simulate(prob, cp, cfg, sys)

	allocs := testing.AllocsPerRun(10, func() {
		x.Simulate(prob, cp, cfg, sys)
	})
	if allocs != 0 {
		t.Fatalf("Simulate allocates %.0f per sweep point, want 0", allocs)
	}
}
