package universal

import (
	"sync/atomic"

	rt "slicing/internal/runtime"
)

// Checkpoint is the step-granular progress record of one plan execution:
// one flag per plan step, set by the worker crew at the instant the
// step's single one-sided accumulate lands (gemmAccumulateChain issues
// exactly one accumulate per step, and a failed op moves no data, so
// "marked" is precisely "this step's C contribution is durable"). Marks
// happen at the same point the step's tileSlot references retire, so a
// checkpointed run keeps the executor's pooled-buffer balance intact.
//
// After a fatal fault the unmarked steps are exactly the replay set of
// plan repair: re-executing them — and only them — on any surviving rank
// accumulates each elementary product exactly once (docs/RESILIENCE.md,
// "Recovery contract"). The flags are atomics because MaxInflight crew
// workers mark concurrently; readers inspect them after the crew drains.
type Checkpoint struct {
	landed []atomic.Bool
}

// Reset sizes the checkpoint for an n-step plan with every step unmarked,
// reusing storage across repair rounds.
func (c *Checkpoint) Reset(n int) {
	if cap(c.landed) < n {
		c.landed = make([]atomic.Bool, n)
		return
	}
	c.landed = c.landed[:n]
	for i := range c.landed {
		c.landed[i].Store(false)
	}
}

// Steps returns the number of steps tracked.
func (c *Checkpoint) Steps() int { return len(c.landed) }

// mark records step i's accumulate as landed. Crew-side.
func (c *Checkpoint) mark(i int) { c.landed[i].Store(true) }

// Landed reports whether step i's accumulate landed.
func (c *Checkpoint) Landed(i int) bool { return c.landed[i].Load() }

// LandedCount returns how many steps have landed.
func (c *Checkpoint) LandedCount() int {
	n := 0
	for i := range c.landed {
		if c.landed[i].Load() {
			n++
		}
	}
	return n
}

// ExecutePlanCheckpointed is ExecutePlan with progress checkpointing:
// ckpt is Reset to the plan's length and records every step whose
// accumulate lands, so on a fatal error the caller can replay exactly the
// unfinished steps. Same synchronization and error contract as
// ExecutePlan.
func ExecutePlanCheckpointed(pe rt.PE, prob Problem, plan Plan, cfg Config, ckpt *Checkpoint) error {
	cfg = cfg.withDefaults()
	ckpt.Reset(len(plan.Steps))
	sched := planFetchSchedule(plan, cfg.CacheTiles)
	return executePlanCkpt(pe, prob, plan, &sched, cfg, ckpt)
}
