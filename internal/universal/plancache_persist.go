package universal

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// PlanCacheFileSchema versions the plan-cache disk format. Readers reject
// files carrying any other value rather than guessing.
const PlanCacheFileSchema = "plancache/v1"

// planCacheFile is the serialized form: the schema tag and every cached
// plan in LRU→MRU order, so replaying the list through Put reproduces the
// source cache's recency order exactly (the last Put is the most recent).
type planCacheFile struct {
	Schema string          `json:"schema"`
	Plans  []*CompiledPlan `json:"plans"`
}

// Save writes the cache's current contents to w as schema-versioned JSON.
// Compiled plans are immutable, so the snapshot taken under the lock is
// consistent even while other goroutines keep hitting the cache.
func (c *PlanCache) Save(w io.Writer) error {
	c.mu.Lock()
	plans := make([]*CompiledPlan, 0, len(c.entries))
	for e := c.tail; e != nil; e = e.prev {
		plans = append(plans, e.cp)
	}
	c.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(planCacheFile{Schema: PlanCacheFileSchema, Plans: plans})
}

// SaveFile persists the cache to path, writing a temporary file in the
// same directory and renaming it into place so a crash mid-save never
// leaves a truncated cache for the next warm start to choke on.
func (c *PlanCache) SaveFile(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if err := c.Save(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Load reads a schema-versioned plan file and seeds the cache with every
// plan it holds, in file (LRU→MRU) order. Each plan passes the full
// CompiledPlan validation on decode, so a corrupted or hand-edited file
// fails loudly instead of poisoning later executions. Returns the number
// of plans inserted (bounded by the cache capacity — a small cache keeps
// only the most recent tail of a larger file).
func (c *PlanCache) Load(r io.Reader) (int, error) {
	var file planCacheFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&file); err != nil {
		return 0, fmt.Errorf("universal: decoding plan cache: %w", err)
	}
	if file.Schema != PlanCacheFileSchema {
		return 0, fmt.Errorf("universal: plan cache schema %q, want %q", file.Schema, PlanCacheFileSchema)
	}
	for i, cp := range file.Plans {
		if cp == nil {
			return 0, fmt.Errorf("universal: plan cache entry %d is null", i)
		}
	}
	for _, cp := range file.Plans {
		c.Put(cp)
	}
	return len(file.Plans), nil
}

// LoadFile is Load over a file path. A missing file is not an error of the
// warm-start protocol — it returns (0, nil) so first runs and warm runs
// share one call site; any other failure (unreadable file, bad schema,
// invalid plan) is returned as-is.
func (c *PlanCache) LoadFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	n, err := c.Load(f)
	if err != nil {
		return n, fmt.Errorf("%s: %w", path, err)
	}
	return n, nil
}
