package universal

import (
	"fmt"
	"testing"

	"slicing/internal/distmat"
	"slicing/internal/gpusim"
	"slicing/internal/shmem"
	"slicing/internal/simnet"
)

// uniformTopo builds an all-to-all test topology with the given link BW.
func uniformTopo(p int, linkBW float64) simnet.Topology {
	return simnet.NewUniform(p, linkBW, 2000e9, 3e-6, "test")
}

// simProblem builds a problem over a p-PE world without running real
// compute (the sim backend only reads metadata).
func simProblem(p, m, n, k int, pa, pb, pc distmat.Partition, cA, cB, cC int) Problem {
	w := shmem.NewWorld(p)
	a := distmat.New(w, m, k, pa, cA)
	b := distmat.New(w, k, n, pb, cB)
	c := distmat.New(w, m, n, pc, cC)
	return NewProblem(c, a, b)
}

func TestSimulateMultiplyBasic(t *testing.T) {
	prob := simProblem(8, 4096, 4096, 4096, distmat.RowBlock{}, distmat.ColBlock{}, distmat.Block2D{}, 1, 1, 1)
	res := SimulateMultiply(prob, DefaultConfig(), H100System())
	if res.Makespan <= 0 {
		t.Fatalf("makespan = %g", res.Makespan)
	}
	if res.PercentOfPeak <= 0 || res.PercentOfPeak > 100 {
		t.Fatalf("percent of peak = %g, must be in (0, 100]", res.PercentOfPeak)
	}
	if res.Ops == 0 {
		t.Fatal("no ops simulated")
	}
}

func TestSimulateMakespanAtLeastComputeBound(t *testing.T) {
	prob := simProblem(8, 2048, 2048, 2048, distmat.RowBlock{}, distmat.ColBlock{}, distmat.Block2D{}, 1, 1, 1)
	sys := H100System()
	res := SimulateMultiply(prob, DefaultConfig(), sys)
	flops := 2.0 * 2048 * 2048 * 2048
	bound := flops / (8 * sys.Dev.PeakFlops)
	if res.Makespan < bound {
		t.Fatalf("makespan %g below perfect-peak bound %g", res.Makespan, bound)
	}
}

func TestSimulateWorldMismatchPanics(t *testing.T) {
	prob := simProblem(4, 64, 64, 64, distmat.RowBlock{}, distmat.RowBlock{}, distmat.RowBlock{}, 1, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("4-PE problem on 8-PE topology should panic")
		}
	}()
	SimulateMultiply(prob, DefaultConfig(), H100System())
}

// Higher link bandwidth must never make the simulated multiply slower:
// H100-class links beat PVC-class links for the same problem and device.
func TestSimulateFasterLinksHelp(t *testing.T) {
	mk := func() Problem {
		return simProblem(8, 1024, 12288, 49152, distmat.RowBlock{}, distmat.ColBlock{}, distmat.Block2D{}, 1, 1, 1)
	}
	dev := gpusim.PresetPVCDevice()
	slow := SimulateMultiply(mk(), DefaultConfig(), SimSystem{Topo: uniformTopo(8, 26.5e9), Dev: dev})
	fast := SimulateMultiply(mk(), DefaultConfig(), SimSystem{Topo: uniformTopo(8, 450e9), Dev: dev})
	if fast.Makespan > slow.Makespan {
		t.Fatalf("faster links slower: %g vs %g", fast.Makespan, slow.Makespan)
	}
}

// The iteration offset must improve (or at least not hurt) simulated time
// versus a deliberately hot-spotted schedule. We approximate the ablation
// by comparing a column-block schedule (all PEs want A tiles from the same
// few owners) against itself — covered more directly in the engine test —
// so here we check stationary-choice consistency instead: moving the
// biggest matrix is worse.
func TestSimulateStationaryChoiceMatters(t *testing.T) {
	// MLP-2 shape: m=1024, n=12K, k=48K. B (48K x 12K) is the largest
	// matrix; keeping it stationary should beat keeping C stationary when C
	// is small, for a partitioning that forces B movement otherwise.
	mk := func() Problem {
		return simProblem(12, 1024, 12288, 49152,
			distmat.ColBlock{}, distmat.RowBlock{}, distmat.Block2D{}, 1, 1, 1)
	}
	cfgB := DefaultConfig()
	cfgB.Stationary = StationaryB
	resB := SimulateMultiply(mk(), cfgB, PVCSystem())
	cfgC := DefaultConfig()
	cfgC.Stationary = StationaryC
	resC := SimulateMultiply(mk(), cfgC, PVCSystem())
	if resB.Makespan > resC.Makespan {
		t.Fatalf("stationary-B (%.4gs) should beat stationary-C (%.4gs) when B is the giant matrix",
			resB.Makespan, resC.Makespan)
	}
}

// Replication of a heavily-moved matrix must reduce remote get traffic.
func TestSimulateReplicationCutsTraffic(t *testing.T) {
	base := simProblem(12, 1024, 49152, 12288, distmat.RowBlock{}, distmat.RowBlock{}, distmat.RowBlock{}, 1, 1, 1)
	repl := simProblem(12, 1024, 49152, 12288, distmat.RowBlock{}, distmat.RowBlock{}, distmat.RowBlock{}, 1, 3, 1)
	cfg := DefaultConfig()
	cfg.Stationary = StationaryB
	resBase := SimulateMultiply(base, cfg, PVCSystem())
	resRepl := SimulateMultiply(repl, cfg, PVCSystem())
	if resRepl.RemoteGetBytes >= resBase.RemoteGetBytes {
		t.Fatalf("replication did not cut get traffic: %d vs %d",
			resRepl.RemoteGetBytes, resBase.RemoteGetBytes)
	}
}

// Fully replicating every matrix eliminates remote traffic entirely.
func TestSimulateFullReplicationNoTraffic(t *testing.T) {
	prob := simProblem(4, 256, 256, 256, distmat.RowBlock{}, distmat.RowBlock{}, distmat.RowBlock{}, 4, 4, 1)
	res := SimulateMultiply(prob, DefaultConfig(), SimSystem{Topo: uniformTopo(4, 100e9), Dev: PVCSystem().Dev})
	if res.RemoteGetBytes != 0 {
		t.Fatalf("fully replicated inputs still fetched %d bytes", res.RemoteGetBytes)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	mk := func() Problem {
		return simProblem(8, 512, 512, 512, distmat.Block2D{}, distmat.Block2D{}, distmat.Block2D{}, 1, 1, 1)
	}
	r1 := SimulateMultiply(mk(), DefaultConfig(), H100System())
	r2 := SimulateMultiply(mk(), DefaultConfig(), H100System())
	if r1.Makespan != r2.Makespan {
		t.Fatalf("simulation not deterministic: %g vs %g", r1.Makespan, r2.Makespan)
	}
}

func TestSimulateReplicatedCPaysReduction(t *testing.T) {
	noRep := simProblem(8, 2048, 2048, 2048, distmat.RowBlock{}, distmat.ColBlock{}, distmat.Block2D{}, 1, 1, 1)
	rep := simProblem(8, 2048, 2048, 2048, distmat.RowBlock{}, distmat.ColBlock{}, distmat.Block2D{}, 1, 1, 2)
	cfg := DefaultConfig()
	cfg.Stationary = StationaryC
	resNo := SimulateMultiply(noRep, cfg, H100System())
	resRep := SimulateMultiply(rep, cfg, H100System())
	if resRep.RemoteAccumBytes <= resNo.RemoteAccumBytes {
		t.Fatalf("replicated C should add reduce_replicas accumulate traffic: %d vs %d",
			resRep.RemoteAccumBytes, resNo.RemoteAccumBytes)
	}
}

func ExampleSimulateMultiply() {
	prob := simProblem(8, 1024, 1024, 1024, distmat.RowBlock{}, distmat.ColBlock{}, distmat.Block2D{}, 1, 1, 1)
	res := SimulateMultiply(prob, DefaultConfig(), H100System())
	fmt.Println(res.Stationary, res.Ops > 0)
	// Output: S-C true
}

// Multi-node scaling: on a cluster, a partitioning that keeps traffic
// inside nodes (2D block aligned with node boundaries via replication)
// beats one that sprays traffic across the slow inter-node fabric. Also a
// basic sanity check: more nodes with the same per-PE work must not make
// the percent of peak negative or above 100.
func TestSimulateMultiNodeCluster(t *testing.T) {
	topo := simnet.PresetH100Cluster(2) // 16 PEs
	sys := SimSystem{Topo: topo, Dev: gpusim.PresetH100Device()}
	prob := simProblem(16, 4096, 12288, 12288, distmat.RowBlock{}, distmat.ColBlock{}, distmat.Block2D{}, 1, 1, 1)
	res := SimulateMultiply(prob, DefaultConfig(), sys)
	if res.PercentOfPeak <= 0 || res.PercentOfPeak > 100 {
		t.Fatalf("cluster percent of peak = %g", res.PercentOfPeak)
	}
	// Replicating the moved matrix once per node eliminates inter-node
	// fetch traffic and should not be slower.
	probRepl := simProblem(16, 4096, 12288, 12288, distmat.RowBlock{}, distmat.ColBlock{}, distmat.Block2D{}, 2, 2, 1)
	resRepl := SimulateMultiply(probRepl, DefaultConfig(), sys)
	if resRepl.RemoteGetBytes >= res.RemoteGetBytes {
		t.Fatalf("per-node replication did not cut fetch traffic: %d vs %d",
			resRepl.RemoteGetBytes, res.RemoteGetBytes)
	}
}
