package universal

import (
	"fmt"

	"slicing/internal/gpusim"
)

// ModelExecutor is the model-only execution mode — the fourth next to
// shmem, simbackend, and gpubackend: it replays a CompiledPlan's
// fetch/evict/accumulate schedule through the discrete-event engine and
// the system's fabric pricing with no real arithmetic and no tile
// allocation, so validation points run at full MLP scale (thousands of
// PEs) instead of 1/16. It shares the planReplayer with
// SimulateMultiplyTrace, so for matching (problem, config) the two paths
// produce bit-for-bit identical predictions — the agreement the sweep
// subsystem's tests pin at 1/16 scale before trusting full-scale numbers.
//
// The executor owns one engine and one replayer and reuses both across
// Simulate calls (Engine.Reset keeps all storage), so a sweep evaluating
// hundreds of points performs zero steady-state allocations per point
// once the largest point has been seen. Not safe for concurrent use; give
// each worker its own executor.
type ModelExecutor struct {
	eng *gpusim.Engine
	r   planReplayer
}

// NewModelExecutor returns an executor with an empty engine.
func NewModelExecutor() *ModelExecutor {
	return &ModelExecutor{eng: gpusim.NewEngine()}
}

// Simulate replays cp over sys and returns the modeled run. prob supplies
// the problem metadata the replay reads (dimensions, C replication and
// ownership for reduce_replicas); it may live on any backend — including a
// modelworld world that holds no data — but must match the compiled plan's
// key under cfg, and the topology must match the plan's world size.
func (x *ModelExecutor) Simulate(prob Problem, cp *CompiledPlan, cfg Config, sys SimSystem) SimResult {
	res, _ := x.simulate(prob, cp, cfg, sys)
	return res
}

func (x *ModelExecutor) simulate(prob Problem, cp *CompiledPlan, cfg Config, sys SimSystem) (SimResult, gpusim.Result) {
	cfg = cfg.withDefaults()
	p := cp.Key.NumPE
	if sys.Topo.NumPE() != p {
		panic(fmt.Sprintf("universal: compiled plan for %d PEs replayed on %d-PE topology", p, sys.Topo.NumPE()))
	}
	if !cp.Matches(prob, cfg) {
		panic("universal: problem/config does not match compiled plan key")
	}
	x.eng.Reset()
	return x.r.replay(prob, cfg, sys, cp.Plans, x.eng)
}

// SimulateCompiledTrace is the one-shot form of ModelExecutor.Simulate
// that additionally returns the engine and raw schedule, mirroring
// SimulateMultiplyTrace, so callers can render a full-scale timeline
// (trace.WriteGantt) from a compiled plan. The returned Result's slices
// are owned by the engine (see gpusim.Result).
func SimulateCompiledTrace(prob Problem, cp *CompiledPlan, cfg Config, sys SimSystem) (SimResult, *gpusim.Engine, gpusim.Result) {
	x := NewModelExecutor()
	res, run := x.simulate(prob, cp, cfg, sys)
	return res, x.eng, run
}
