package universal

import (
	"fmt"
	"sort"

	"slicing/internal/distmat"
	rt "slicing/internal/runtime"
)

// RecoveryReport summarizes what the resilient multiply had to do.
type RecoveryReport struct {
	// Recovered is true when at least one rank failed fatally mid-run and
	// the replay completed: the result is correct, computed by a shrunken
	// world.
	Recovered bool
	// Rounds is the number of repair rounds executed (0 = clean run).
	Rounds int
	// FailedRanks lists every rank that failed during this call, sorted
	// ascending. Ranks excluded upfront via Config.Exclude are not listed.
	FailedRanks []int
	// ReplayedOps counts the ops adopted from failed ranks across all
	// rounds — the unfinished work the checkpoint identified.
	ReplayedOps int
}

// MultiplyResilient computes C = A·B like Multiply, but turns fatal PE
// loss into a degraded-but-correct continuation: execution is
// checkpointed per step, and when ranks fail (ErrPEFailed, exhausted
// retry budgets, per-op deadline blowouts) the survivors adopt exactly
// the unfinished steps and replay them, repeating until a round completes
// with no new failures. Collective; every PE must call it with the same
// arguments. On global success every rank returns a nil error — including
// crashed ranks, whose work the survivors absorbed — with the report
// describing the recovery; the error is non-nil only when recovery is
// impossible (every rank failed).
func MultiplyResilient(pe rt.PE, c, a, b *distmat.Matrix, cfg Config) (Stationary, RecoveryReport, error) {
	prob := NewProblem(c, a, b)
	c.Zero(pe) // includes a barrier
	return MultiplyAccumulateResilient(pe, prob, cfg)
}

// MultiplyAccumulateResilient is MultiplyResilient over an existing
// Problem, accumulating onto C's current values.
//
// The recovery protocol leans on the documented fault model
// (docs/RESILIENCE.md): a crashed rank's *initiations* fail, but its
// symmetric memory stays reachable and it keeps participating in
// barriers. Each round, every rank executes its assignment under a
// Checkpoint, publishes (failed?, landed-bitmap) into a symmetric status
// segment outside any fault scope, barriers, and reads everyone else's
// status one-sidedly. All ranks therefore compute the identical failure
// set and the identical round-robin redistribution of leftover ops
// (adoptedOps' deal), so control flow — and barrier counts — never
// diverge. Completed steps are never replayed: each step lands its C
// contribution exactly once, preserving the disjoint-accumulate
// invariant the correctness bound relies on.
func MultiplyAccumulateResilient(pe rt.PE, prob Problem, cfg Config) (Stationary, RecoveryReport, error) {
	cfg = cfg.withDefaults()
	rank, p := pe.Rank(), pe.NumPE()
	var cp *CompiledPlan
	if cfg.Plans != nil {
		cp = cfg.Plans.GetOrCompile(prob, cfg)
	} else {
		cp = CompilePlans(prob, cfg)
	}
	stat := cp.Key.Stationary

	// Status segment layout, per rank: word 0 is the failed flag, then 16
	// landed bits per float32 word (exact in a float32 mantissa). Any
	// round's assignment is at most the whole plan's step count, so one
	// stride covers every round.
	totalSteps := cp.Steps()
	words := 1 + (totalSteps+15)/16
	seg := pe.AllocSymmetric(words)
	scratch := make([]float32, words)

	curOps := make([][]LocalOp, p)
	for r := 0; r < p; r++ {
		steps := cp.Plans[r].Steps
		ops := make([]LocalOp, len(steps))
		for i := range steps {
			ops[i] = steps[i].Op
		}
		curOps[r] = ops
	}
	failedSet := make([]bool, p)
	for _, r := range cfg.Exclude {
		failedSet[r] = true // known-dead upfront; cp gave them empty plans
	}

	var report RecoveryReport
	var finalErr error
	landed := make([][]bool, p)
	var ckpt Checkpoint
	for round := 0; ; round++ {
		// Execute this round's assignment under the checkpoint. Round 0
		// reuses the compiled plan and its frozen fetch schedule (zero
		// slicing work on a cache hit); repair rounds lower the adopted op
		// lists with locality re-resolved for this rank.
		var execErr error
		if round == 0 {
			ckpt.Reset(len(cp.Plans[rank].Steps))
			execErr = executePlanCkpt(pe, prob, cp.Plans[rank], &cp.scheds[rank], cfg, &ckpt)
		} else {
			pl := buildStepsFromOps(rank, prob, stat, curOps[rank], cfg.CacheTiles, cfg.SubTileFetch)
			sched := planFetchSchedule(pl, cfg.CacheTiles)
			ckpt.Reset(len(pl.Steps))
			execErr = executePlanCkpt(pe, prob, pl, &sched, cfg, &ckpt)
		}

		// Status exchange, outside any fault scope: local writes, a
		// barrier, one-sided reads of every peer, and a second barrier so
		// no rank overwrites its status while a slower peer still reads it.
		packStatus(pe.Local(seg), execErr != nil, &ckpt)
		pe.Barrier()
		var newly []int
		for r := 0; r < p; r++ {
			var rFailed bool
			if r == rank {
				rFailed, landed[r] = unpackStatus(pe.Local(seg), len(curOps[r]), landed[r])
			} else {
				pe.Get(scratch, seg, r, 0)
				rFailed, landed[r] = unpackStatus(scratch, len(curOps[r]), landed[r])
			}
			if rFailed && !failedSet[r] {
				newly = append(newly, r)
			}
		}
		pe.Barrier()

		if len(newly) == 0 {
			break // a full round with no new failures: done
		}
		report.Rounds++
		report.FailedRanks = append(report.FailedRanks, newly...)

		// The newly failed ranks' unfinished ops — exactly the unmarked
		// checkpoint steps — become the next round's work, dealt
		// round-robin across the survivors. Every rank computes the same
		// deal from the same exchanged state.
		var leftover []LocalOp
		for _, r := range newly {
			failedSet[r] = true
			for i, op := range curOps[r] {
				if !landed[r][i] {
					leftover = append(leftover, op)
				}
			}
		}
		report.ReplayedOps += len(leftover)
		var survivors []int
		for r := 0; r < p; r++ {
			if !failedSet[r] {
				survivors = append(survivors, r)
			}
		}
		if len(survivors) == 0 {
			finalErr = fmt.Errorf("universal: resilient multiply: all %d ranks failed: %w", p, rt.ErrPEFailed)
			break
		}
		for r := 0; r < p; r++ {
			curOps[r] = curOps[r][:0]
		}
		for i, op := range leftover {
			s := survivors[i%len(survivors)]
			curOps[s] = append(curOps[s], op)
		}
		if round > p {
			// Unreachable — every repair round permanently retires at least
			// one rank — but bound the loop against a misbehaving backend.
			finalErr = fmt.Errorf("universal: resilient multiply: no progress after %d rounds: %w", round, rt.ErrPEFailed)
			break
		}
	}
	report.Recovered = finalErr == nil && len(report.FailedRanks) > 0
	sort.Ints(report.FailedRanks)

	pe.Barrier() // all one-sided updates must land before replica reduction
	if prob.C.Replication() > 1 {
		// Outside any fault scope, so crashed ranks participate and the
		// collective stays barrier-matched (MultiplyAccumulate's contract).
		prob.C.ReduceReplicas(pe, cfg.ReduceOrigin)
		if cfg.SyncReplicas {
			prob.C.BroadcastReplica(pe, cfg.ReduceOrigin)
		}
	}
	return stat, report, finalErr
}

// packStatus writes one rank's round status into its status-segment
// slice: word 0 the failed flag, then the checkpoint's landed bits packed
// 16 per word (16-bit integers are exact in float32, the only symmetric
// element type).
func packStatus(dst []float32, failed bool, ckpt *Checkpoint) {
	for i := range dst {
		dst[i] = 0
	}
	if failed {
		dst[0] = 1
	}
	n := ckpt.Steps()
	for w := 1; w < len(dst); w++ {
		base := (w - 1) * 16
		if base >= n {
			break
		}
		var bits uint32
		for b := 0; b < 16 && base+b < n; b++ {
			if ckpt.Landed(base + b) {
				bits |= 1 << b
			}
		}
		dst[w] = float32(bits)
	}
}

// unpackStatus decodes a peer's status: its failed flag and the first
// nsteps landed bits. buf is reused across rounds.
func unpackStatus(src []float32, nsteps int, buf []bool) (failed bool, landed []bool) {
	failed = src[0] != 0
	if cap(buf) < nsteps {
		buf = make([]bool, nsteps)
	}
	landed = buf[:nsteps]
	for i := 0; i < nsteps; i++ {
		landed[i] = uint32(src[1+i/16])&(1<<(i%16)) != 0
	}
	return failed, landed
}
