package universal

// PR 5 estimator tests: the heap scheduler must stay pinned to the legacy
// list scheduler across the conformance systems, the fabric-aware plan
// replay must collapse to the scalar port model on a degenerate fabric
// (within 1e-9), reproduce the incast regime the scalar estimator cannot
// see, and re-running a built simulation must be allocation-free.

import (
	"math"
	"testing"

	"slicing/internal/distmat"
	"slicing/internal/fabric"
	"slicing/internal/gpusim"
	"slicing/internal/simnet"
)

// estimatorSystems mirrors the 5-system backend conformance suite
// (internal/simbackend/conformance_test.go): the two scalar Table 2 nodes,
// their link-routed fabric forms, and a 2-node rail-optimized fat-tree.
func estimatorSystems() []struct {
	name string
	sys  SimSystem
} {
	return []struct {
		name string
		sys  SimSystem
	}{
		{"pvc", PVCSystem()},
		{"h100", H100System()},
		{"pvc-fabric", PVCFabricSystem()},
		{"h100-fabric", H100FabricSystem()},
		{"h100-fattree", H100FatTreeSystem(2, 8, 1)},
	}
}

// estimatorProblems builds the scenarios each system's equivalence check
// replays: an aligned 2D problem, a misaligned one, and a replicated-C one
// (which exercises the reduce_replicas ops, including the §3 get+put pairs
// on the fat-tree).
func estimatorProblems(p int) []Problem {
	pr, pc := distmat.NearSquareFactors(p)
	return []Problem{
		simProblem(p, 96, 80, 64, distmat.Block2D{}, distmat.Block2D{}, distmat.Block2D{}, 1, 1, 1),
		simProblem(p, 90, 70, 50, distmat.RowBlock{}, distmat.ColBlock{},
			distmat.Custom{TileRows: 13, TileCols: 11, ProcRows: pr, ProcCols: pc}, 1, 1, 1),
		simProblem(p, 64, 64, 96, distmat.RowBlock{}, distmat.RowBlock{}, distmat.RowBlock{}, 1, 1, 2),
	}
}

// TestSchedulerEquivalenceAcrossConformanceSystems pins the indexed-heap
// scheduler to the legacy list scheduler on every estimator DAG the
// 5-system suite generates: identical makespans and per-op timings,
// program-order tie-breaks included. Exact float comparison is
// intentional — both schedulers fold the same numbers in the same order.
func TestSchedulerEquivalenceAcrossConformanceSystems(t *testing.T) {
	for _, system := range estimatorSystems() {
		p := system.sys.Topo.NumPE()
		for pi, prob := range estimatorProblems(p) {
			_, eng, run := SimulateMultiplyTrace(prob, DefaultConfig(), system.sys)
			oracle := eng.RunListOracle()
			if oracle.Makespan != run.Makespan {
				t.Fatalf("%s/problem%d: oracle makespan %g, heap %g",
					system.name, pi, oracle.Makespan, run.Makespan)
			}
			for i := range oracle.Timings {
				w, g := oracle.Timings[i], run.Timings[i]
				if w.Start != g.Start || w.End != g.End {
					t.Fatalf("%s/problem%d op %d (%s): oracle [%g,%g], heap [%g,%g]",
						system.name, pi, i, w.Label, w.Start, w.End, g.Start, g.End)
				}
			}
		}
	}
}

// TestFabricEstimatorDegeneratePin: replaying plans over fabric.Degenerate
// (every PE pair as a dedicated egress→pair→ingress link route) must
// reproduce the scalar port model's makespan within 1e-9, on single-node
// topologies and — with the §3 round-trip pricing now shared by both
// paths — on a multi-node cluster too.
func TestFabricEstimatorDegeneratePin(t *testing.T) {
	cases := []struct {
		name string
		topo simnet.Topology
		dev  gpusim.Device
	}{
		{"h100", simnet.PresetH100(), gpusim.PresetH100Device()},
		{"pvc", simnet.PresetPVC(), gpusim.PresetPVCDevice()},
		{"h100-cluster", simnet.PresetH100Cluster(2), gpusim.PresetH100Device()},
	}
	for _, tc := range cases {
		p := tc.topo.NumPE()
		for pi, mk := range []func() Problem{
			func() Problem {
				return simProblem(p, 96, 80, 64, distmat.Block2D{}, distmat.Block2D{}, distmat.Block2D{}, 1, 1, 1)
			},
			func() Problem {
				return simProblem(p, 64, 64, 96, distmat.RowBlock{}, distmat.RowBlock{}, distmat.RowBlock{}, 1, 1, 2)
			},
		} {
			scalar := SimulateMultiply(mk(), DefaultConfig(), SimSystem{Topo: tc.topo, Dev: tc.dev})
			degen := SimulateMultiply(mk(), DefaultConfig(),
				SimSystem{Topo: fabric.Degenerate(tc.topo).Topology(), Dev: tc.dev})
			if d := math.Abs(scalar.Makespan - degen.Makespan); d > 1e-9 {
				t.Fatalf("%s/problem%d: degenerate fabric diverges from scalar ports by %g (scalar %g, degenerate %g)",
					tc.name, pi, d, scalar.Makespan, degen.Makespan)
			}
		}
	}
}

// incastReduceProblem is the estimator-level single-NIC incast storm: C is
// replicated once per node of a fat-tree cluster, so reduce_replicas sends
// every non-origin rank's C share into node 0's GPUs. On the scalar
// cluster topology those flows have distinct endpoint pairs and mostly run
// in parallel; on a single-NIC fat-tree they all squeeze through node 0's
// one NIC downlink.
func incastReduceProblem(p, nodes int) Problem {
	return simProblem(p, 4096, 4096, 64,
		distmat.Block2D{}, distmat.Block2D{}, distmat.Block2D{}, 1, 1, nodes)
}

// TestFabricEstimatorSeesIncast: the fabric-aware estimator must price the
// single-NIC reduce storm at least 2× the scalar estimator's number for
// the same problem — the regime PR 4's timed backends expose and the
// plan-replay estimator previously could not see.
func TestFabricEstimatorSeesIncast(t *testing.T) {
	const nodes = 3
	p := nodes * 8
	cfg := DefaultConfig()
	cfg.Stationary = StationaryC
	fab := SimulateMultiply(incastReduceProblem(p, nodes), cfg, H100FatTreeSystem(nodes, 1, 1))
	scalar := SimulateMultiply(incastReduceProblem(p, nodes), cfg,
		SimSystem{Topo: simnet.PresetH100Cluster(nodes), Dev: gpusim.PresetH100Device()})
	if fab.Makespan < 2*scalar.Makespan {
		t.Fatalf("fabric estimator %.6g should price the single-NIC storm >= 2x the scalar estimator's %.6g (got %.2fx)",
			fab.Makespan, scalar.Makespan, fab.Makespan/scalar.Makespan)
	}
}

// TestSimulateRunReuseAllocFree: re-running the built simulation of a
// multiply (the steady state of sweep loops that re-Run a DAG) must not
// allocate — the engine's run scratch is reused in place.
func TestSimulateRunReuseAllocFree(t *testing.T) {
	prob := simProblem(8, 512, 512, 512, distmat.Block2D{}, distmat.Block2D{}, distmat.Block2D{}, 1, 1, 1)
	_, eng, _ := SimulateMultiplyTrace(prob, DefaultConfig(), H100System())
	if allocs := testing.AllocsPerRun(10, func() { eng.Run() }); allocs != 0 {
		t.Fatalf("steady-state re-Run of a built simulation allocates %.1f times, want 0", allocs)
	}
}

// TestSimulateParallelPlansDeterministic: plans are built on a worker pool
// now; the assembled schedule must not depend on completion order.
func TestSimulateParallelPlansDeterministic(t *testing.T) {
	sys := H100FatTreeSystem(2, 8, 1)
	mk := func() Problem {
		return simProblem(16, 1024, 768, 512, distmat.RowBlock{}, distmat.ColBlock{}, distmat.Block2D{}, 2, 2, 1)
	}
	r1 := SimulateMultiply(mk(), DefaultConfig(), sys)
	for i := 0; i < 5; i++ {
		r2 := SimulateMultiply(mk(), DefaultConfig(), sys)
		if r1.Makespan != r2.Makespan || r1.RemoteGetBytes != r2.RemoteGetBytes {
			t.Fatalf("parallel plan building is nondeterministic: %+v vs %+v", r1, r2)
		}
	}
}
