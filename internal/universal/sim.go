package universal

import (
	"slicing/internal/fabric"
	"slicing/internal/gpusim"
	rt "slicing/internal/runtime"
	"slicing/internal/simnet"
)

// SimSystem bundles the interconnect and device models of one evaluation
// system (Table 2).
type SimSystem struct {
	Topo simnet.Topology
	Dev  gpusim.Device
}

// PVCSystem returns the 12-tile Intel PVC node of Table 2.
func PVCSystem() SimSystem {
	return SimSystem{Topo: simnet.PresetPVC(), Dev: gpusim.PresetPVCDevice()}
}

// H100System returns the 8-GPU Nvidia H100 node of Table 2.
func H100System() SimSystem {
	return SimSystem{Topo: simnet.PresetH100(), Dev: gpusim.PresetH100Device()}
}

// PVCFabricSystem is PVCSystem with the link-routed fabric installed:
// per-package MDFI bridges and per-tile Xe Link ports are individual
// links, so timed backends observe per-link contention (and, unlike the
// scalar model, a tile's inter-tile and Xe Link traffic no longer share
// one egress port).
func PVCFabricSystem() SimSystem {
	return SimSystem{Topo: fabric.PVCNode().Topology(), Dev: gpusim.PresetPVCDevice()}
}

// H100FabricSystem is H100System with the link-routed fabric installed:
// each GPU's NVLink port pair into the node's NVSwitch is a link.
func H100FabricSystem() SimSystem {
	return SimSystem{Topo: fabric.H100Node().Topology(), Dev: gpusim.PresetH100Device()}
}

// H100FatTreeSystem is a cluster of H100 nodes behind a rail-optimized IB
// fat-tree (see fabric.H100FatTree): nodes×8 PEs, railsPerNode NICs per
// node, leaf→spine uplinks oversubscribed by oversub. Timed backends over
// this system congest on individual NICs, rails, and spine uplinks, and
// route cross-node accumulates through the §3 get+put path.
func H100FatTreeSystem(nodes, railsPerNode int, oversub float64) SimSystem {
	return SimSystem{
		Topo: fabric.H100FatTree(nodes, railsPerNode, oversub).Topology(),
		Dev:  gpusim.PresetH100Device(),
	}
}

// SimResult reports one simulated distributed multiply.
type SimResult struct {
	// Makespan is the simulated wall-clock in seconds.
	Makespan float64
	// PercentOfPeak is 2mnk / (p · peak · makespan) · 100, the metric of
	// Figures 2-3.
	PercentOfPeak float64
	// RemoteGetBytes / RemoteAccumBytes total the one-sided traffic.
	RemoteGetBytes, RemoteAccumBytes int
	// Stationary is the resolved data movement strategy.
	Stationary Stationary
	// Ops is the total number of local GEMM operations executed.
	Ops int
	// AvgComputeUtil is the mean per-PE compute engine utilization.
	AvgComputeUtil float64
	// QueueDelaySeconds and AccumInterferenceSeconds carry the stream-level
	// delay signals when the run came from a stream/event-timed backend
	// (bench.RunUATimedOn on gpubackend); zero elsewhere.
	QueueDelaySeconds        float64
	AccumInterferenceSeconds float64
}

// SimulateMultiply runs the universal algorithm's direct execution (§4.2)
// through the discrete-event performance model instead of real arithmetic:
// the same per-rank plans (iteration offset, tile cache, prefetch depth,
// bounded GEMM/accumulate concurrency) drive a schedule over compute
// engines and the network, reproducing the overlap behaviour that
// determines percent-of-peak in Figures 2-3.
func SimulateMultiply(prob Problem, cfg Config, sys SimSystem) SimResult {
	res, _, _ := SimulateMultiplyTrace(prob, cfg, sys)
	return res
}

// buildPlans constructs every rank's plan. The calls are independent and
// touch only immutable problem metadata, so they fan out across a worker
// pool (cluster-scale sweeps build hundreds of plans per estimate); each
// worker writes its rank's slot, keeping the result deterministic, and the
// single-threaded engine assembly that follows consumes them in rank
// order.
func buildPlans(prob Problem, cfg Config, p int) []Plan {
	plans := make([]Plan, p)
	rt.ForEachIndex(p, func(rank int) {
		plans[rank] = BuildPlanMode(rank, prob, cfg.Stationary, cfg.CacheTiles, cfg.SubTileFetch)
	})
	return plans
}

// simBuilder maps the estimator's transfers onto engine resources the same
// way the timed backends do: on a scalar topology a src→dst transfer
// occupies the source's egress port and the destination's ingress port; on
// a link-routed topology (simnet.Routed) it occupies every link of the
// static src→dst route, so transfers that share a NIC, a rail, or a spine
// uplink contend even when their endpoints differ. Across a node boundary
// (simnet.NodeMapper) accumulates decompose into the §3 get+put round
// trip — two chained transfers, each claiming its own route — matching
// both timed backends and costmodel.AccumCost.
type simBuilder struct {
	eng     *gpusim.Engine
	sys     SimSystem
	compute []gpusim.ResourceID
	// Scalar port model (routed == nil).
	egress, ingress []gpusim.ResourceID
	// Link-routed model.
	routed  simnet.Routed
	linkRes []gpusim.ResourceID
	nodes   simnet.NodeMapper

	scratch []gpusim.ResourceID // reused per-op resource list (AddOp copies)
	getDep  [1]gpusim.OpID      // reused dep list for the §3 put-after-get edge
}

func newSimBuilder(eng *gpusim.Engine, sys SimSystem, p int) *simBuilder {
	b := &simBuilder{}
	b.reset(eng, sys, p)
	return b
}

// reset rebinds the builder to an engine/system pair and registers the
// system's resources, reusing the builder's slices so a long-lived builder
// (ModelExecutor) re-registers each sweep point's resources without
// allocating once capacities have grown to the largest point seen.
func (b *simBuilder) reset(eng *gpusim.Engine, sys SimSystem, p int) {
	b.eng, b.sys = eng, sys
	b.routed, _ = sys.Topo.(simnet.Routed)
	b.nodes, _ = sys.Topo.(simnet.NodeMapper)
	b.compute = b.compute[:0]
	b.egress = b.egress[:0]
	b.ingress = b.ingress[:0]
	b.linkRes = b.linkRes[:0]
	for pe := 0; pe < p; pe++ {
		b.compute = append(b.compute, eng.AddResource("compute"))
		if b.routed == nil {
			b.egress = append(b.egress, eng.AddResource("egress"))
			b.ingress = append(b.ingress, eng.AddResource("ingress"))
		}
	}
	if b.routed != nil {
		for li := 0; li < b.routed.NumLinks(); li++ {
			b.linkRes = append(b.linkRes, eng.AddResource(b.routed.LinkName(li)))
		}
	}
}

// netRes returns the engine resources a src→dst transfer occupies. The
// returned slice is the builder's scratch, valid until the next call
// (AddOp copies it into the engine's CSR storage).
func (b *simBuilder) netRes(src, dst int) []gpusim.ResourceID {
	b.scratch = b.scratch[:0]
	if src == dst {
		return b.scratch // device-local copies use no network
	}
	if b.routed == nil {
		b.scratch = append(b.scratch, b.egress[src], b.ingress[dst])
		return b.scratch
	}
	for _, li := range b.routed.RouteIDs(src, dst) {
		b.scratch = append(b.scratch, b.linkRes[li])
	}
	return b.scratch
}

// crossNode reports whether two PEs live on different machines, past which
// the RDMA fabric offers no remote atomics (§3).
func (b *simBuilder) crossNode(x, y int) bool {
	return b.nodes != nil && b.nodes.NodeOf(x) != b.nodes.NodeOf(y)
}

// transferDur prices a src→dst copy of bytes, matching the timed backends'
// costmodel.FetchCost for remote transfers.
func (b *simBuilder) transferDur(src, dst, bytes int) float64 {
	return simnet.TransferTime(b.sys.Topo, src, dst, float64(bytes)) + b.sys.Dev.LaunchOverhead
}

// addAccum appends the engine ops for an accumulate of bytes from rank
// into dst's memory, gated on deps, and returns the op that completes it.
// Within a node it is a single accumulate at the measured fraction of copy
// bandwidth (claiming the initiator's compute engine too on devices that
// model accumulate/GEMM interference); across nodes it is the §3 get+put
// round trip, the put gated on the get as the coarse lock requires. The
// cross-node labels are passed in pre-concatenated ("accum_get", ...) so
// the hot replay path builds no strings.
func (b *simBuilder) addAccum(label, getLabel, putLabel string, rank, dst, bytes int, deps []gpusim.OpID) gpusim.OpID {
	if b.crossNode(rank, dst) {
		get := b.eng.AddOp(getLabel, gpusim.OpAccum, b.transferDur(dst, rank, bytes),
			deps, b.netRes(dst, rank))
		b.getDep[0] = get
		return b.eng.AddOp(putLabel, gpusim.OpAccum, b.transferDur(rank, dst, bytes),
			b.getDep[:], b.netRes(rank, dst))
	}
	bw := b.sys.Topo.Bandwidth(rank, dst)
	dur := b.sys.Dev.AccumTime(float64(bytes), bw) + b.sys.Topo.Latency(rank, dst) + b.sys.Dev.LaunchOverhead
	res := b.netRes(rank, dst)
	if b.sys.Dev.AccumComputeInterference {
		res = append(res, b.compute[rank])
	}
	return b.eng.AddOp(label, gpusim.OpAccum, dur, deps, res)
}

// SimulateMultiplyTrace is SimulateMultiply but additionally returns the
// discrete-event engine and raw schedule, so callers can render the
// timeline (trace.WriteGantt) or inspect per-op timings. The returned
// Result's slices are owned by the engine (see gpusim.Result).
func SimulateMultiplyTrace(prob Problem, cfg Config, sys SimSystem) (SimResult, *gpusim.Engine, gpusim.Result) {
	cfg = cfg.withDefaults()
	p := prob.A.World().NumPE()
	if p != sys.Topo.NumPE() {
		panic("universal: world size does not match topology")
	}
	plans := buildPlans(prob, cfg, p)
	eng := gpusim.NewEngine()
	var r planReplayer
	res, run := r.replay(prob, cfg, sys, plans, eng)
	return res, eng, run
}

// planReplayer maps per-rank plans onto a discrete-event DAG and runs it.
// It is the single replay implementation behind both SimulateMultiplyTrace
// (fresh plans, fresh engine) and ModelExecutor (compiled plans, reused
// engine), so the two paths agree bit for bit by construction: same op
// insertion order, same resources, same durations, same scheduler.
//
// All scratch lives on the replayer and is grown once, so a reused
// replayer performs zero steady-state allocations per replay.
type planReplayer struct {
	b simBuilder

	// Per-rank step scratch. fetchA/fetchB replace the old per-step fetch
	// slice-of-slices: a step issues at most one A fetch and one B fetch,
	// always in that order, so two flat arrays with a -1 sentinel carry the
	// same information without per-step allocations.
	gemmIDs  []gpusim.OpID
	chainEnd []gpusim.OpID // gemm or accum, whichever finishes the chain
	fetchA   []gpusim.OpID
	fetchB   []gpusim.OpID

	lastOpPerRank []gpusim.OpID
	deps          []gpusim.OpID // reused dependency scratch (AddOp copies)
}

// growOps reslices s to length n, reallocating only when capacity is
// insufficient; contents are not preserved.
func growOps(s []gpusim.OpID, n int) []gpusim.OpID {
	if cap(s) < n {
		return make([]gpusim.OpID, n)
	}
	return s[:n]
}

// addFetch issues the fetch for step i of rank's plan. Fetches are issued
// in program order with a lookahead window of PrefetchDepth: the fetch for
// step i may not start before the GEMM of step i-1-PrefetchDepth has been
// issued (§4.2 prefetches the next two tiles while computing the current
// one).
func (r *planReplayer) addFetch(cfg Config, rank, i, src, bytes int) gpusim.OpID {
	r.deps = r.deps[:0]
	if gate := i - 1 - cfg.PrefetchDepth; gate >= 0 {
		r.deps = append(r.deps, r.gemmIDs[gate])
	}
	return r.b.eng.AddOp("get", gpusim.OpComm, r.b.transferDur(src, rank, bytes),
		r.deps, r.b.netRes(src, rank))
}

// replay builds the engine DAG for plans over sys, runs it, and summarizes.
// cfg must already have defaults applied; the engine must be empty (fresh
// or Reset). plans must hold exactly sys.Topo.NumPE() rank plans.
func (r *planReplayer) replay(prob Problem, cfg Config, sys SimSystem, plans []Plan, eng *gpusim.Engine) (SimResult, gpusim.Result) {
	p := len(plans)
	r.b.reset(eng, sys, p)

	result := SimResult{}
	r.lastOpPerRank = r.lastOpPerRank[:0]
	var resolved Stationary

	for rank := 0; rank < p; rank++ {
		plan := &plans[rank]
		resolved = plan.Stationary
		result.Ops += len(plan.Steps)
		result.RemoteGetBytes += plan.RemoteFetchBytes()
		result.RemoteAccumBytes += plan.RemoteAccumBytes()

		n := len(plan.Steps)
		r.gemmIDs = growOps(r.gemmIDs, n)
		r.chainEnd = growOps(r.chainEnd, n)
		r.fetchA = growOps(r.fetchA, n)
		r.fetchB = growOps(r.fetchB, n)

		for i, s := range plan.Steps {
			r.fetchA[i], r.fetchB[i] = -1, -1
			if s.FetchA {
				r.fetchA[i] = r.addFetch(cfg, rank, i, s.ASrc, s.ABytes)
			}
			if s.FetchB {
				r.fetchB[i] = r.addFetch(cfg, rank, i, s.BSrc, s.BBytes)
			}
			r.deps = r.deps[:0]
			if r.fetchA[i] >= 0 {
				r.deps = append(r.deps, r.fetchA[i])
			}
			if r.fetchB[i] >= 0 {
				r.deps = append(r.deps, r.fetchB[i])
			}
			// Tile-cache hits must still wait for the step that fetched the
			// tile; the engine's per-resource serialization of fetches on
			// rank's ingress side plus program order makes that fetch precede
			// this GEMM's other dependencies in practice, so an explicit edge
			// to the earlier fetch is redundant for timing.
			// Bounded chain concurrency: the semaphore of §4.2.
			if gate := i - cfg.MaxInflight; gate >= 0 {
				r.deps = append(r.deps, r.chainEnd[gate])
			}
			op := s.Op
			gemmDur := sys.Dev.GemmTime(op.M.Len(), op.N.Len(), op.K.Len()) + sys.Dev.LaunchOverhead
			r.gemmIDs[i] = eng.AddOp("gemm", gpusim.OpCompute, gemmDur, r.deps,
				r.b.compute[rank:rank+1])
			r.chainEnd[i] = r.gemmIDs[i]

			if s.AccumBytes > 0 {
				r.deps = append(r.deps[:0], r.gemmIDs[i])
				if s.CLocal {
					// Local accumulate: read-modify-write in HBM.
					accDur := 2*float64(s.AccumBytes)/sys.Dev.MemBW + sys.Dev.LaunchOverhead
					r.chainEnd[i] = eng.AddOp("accum", gpusim.OpAccum, accDur, r.deps, nil)
				} else {
					r.chainEnd[i] = r.b.addAccum("accum", "accum_get", "accum_put", rank, s.CDst, s.AccumBytes, r.deps)
				}
			}
		}
		if n > 0 {
			r.lastOpPerRank = append(r.lastOpPerRank, r.chainEnd[n-1])
		}
	}

	// reduce_replicas for a replicated C: after a barrier (modelled as a
	// dependency on every rank's last chain), each non-origin rank
	// accumulates its owned C tiles into the origin replica.
	if prob.C.Replication() > 1 {
		origin := cfg.ReduceOrigin
		for rank := 0; rank < p; rank++ {
			if prob.C.ReplicaOf(rank) == origin {
				continue
			}
			dst := prob.C.RankFor(prob.C.SlotOf(rank), origin)
			for _, idx := range prob.C.OwnedTiles(rank) {
				bytes := prob.C.TileBounds(idx).Area() * 4
				r.b.addAccum("reduce", "reduce_get", "reduce_put", rank, dst, bytes, r.lastOpPerRank)
				result.RemoteAccumBytes += bytes
			}
		}
	}

	run := eng.Run()
	result.Makespan = run.Makespan
	result.Stationary = resolved
	m, n, k := prob.Dims()
	if run.Makespan > 0 {
		flops := 2 * float64(m) * float64(n) * float64(k)
		result.PercentOfPeak = flops / (float64(p) * sys.Dev.PeakFlops * run.Makespan) * 100
	}
	var util float64
	for pe := 0; pe < p; pe++ {
		util += run.Utilization(r.b.compute[pe])
	}
	result.AvgComputeUtil = util / float64(p)
	return result, run
}
