package universal

import (
	"slicing/internal/fabric"
	"slicing/internal/gpusim"
	"slicing/internal/simnet"
)

// SimSystem bundles the interconnect and device models of one evaluation
// system (Table 2).
type SimSystem struct {
	Topo simnet.Topology
	Dev  gpusim.Device
}

// PVCSystem returns the 12-tile Intel PVC node of Table 2.
func PVCSystem() SimSystem {
	return SimSystem{Topo: simnet.PresetPVC(), Dev: gpusim.PresetPVCDevice()}
}

// H100System returns the 8-GPU Nvidia H100 node of Table 2.
func H100System() SimSystem {
	return SimSystem{Topo: simnet.PresetH100(), Dev: gpusim.PresetH100Device()}
}

// PVCFabricSystem is PVCSystem with the link-routed fabric installed:
// per-package MDFI bridges and per-tile Xe Link ports are individual
// links, so timed backends observe per-link contention (and, unlike the
// scalar model, a tile's inter-tile and Xe Link traffic no longer share
// one egress port).
func PVCFabricSystem() SimSystem {
	return SimSystem{Topo: fabric.PVCNode().Topology(), Dev: gpusim.PresetPVCDevice()}
}

// H100FabricSystem is H100System with the link-routed fabric installed:
// each GPU's NVLink port pair into the node's NVSwitch is a link.
func H100FabricSystem() SimSystem {
	return SimSystem{Topo: fabric.H100Node().Topology(), Dev: gpusim.PresetH100Device()}
}

// H100FatTreeSystem is a cluster of H100 nodes behind a rail-optimized IB
// fat-tree (see fabric.H100FatTree): nodes×8 PEs, railsPerNode NICs per
// node, leaf→spine uplinks oversubscribed by oversub. Timed backends over
// this system congest on individual NICs, rails, and spine uplinks, and
// route cross-node accumulates through the §3 get+put path.
func H100FatTreeSystem(nodes, railsPerNode int, oversub float64) SimSystem {
	return SimSystem{
		Topo: fabric.H100FatTree(nodes, railsPerNode, oversub).Topology(),
		Dev:  gpusim.PresetH100Device(),
	}
}

// SimResult reports one simulated distributed multiply.
type SimResult struct {
	// Makespan is the simulated wall-clock in seconds.
	Makespan float64
	// PercentOfPeak is 2mnk / (p · peak · makespan) · 100, the metric of
	// Figures 2-3.
	PercentOfPeak float64
	// RemoteGetBytes / RemoteAccumBytes total the one-sided traffic.
	RemoteGetBytes, RemoteAccumBytes int
	// Stationary is the resolved data movement strategy.
	Stationary Stationary
	// Ops is the total number of local GEMM operations executed.
	Ops int
	// AvgComputeUtil is the mean per-PE compute engine utilization.
	AvgComputeUtil float64
	// QueueDelaySeconds and AccumInterferenceSeconds carry the stream-level
	// delay signals when the run came from a stream/event-timed backend
	// (bench.RunUATimedOn on gpubackend); zero elsewhere.
	QueueDelaySeconds        float64
	AccumInterferenceSeconds float64
}

// SimulateMultiply runs the universal algorithm's direct execution (§4.2)
// through the discrete-event performance model instead of real arithmetic:
// the same per-rank plans (iteration offset, tile cache, prefetch depth,
// bounded GEMM/accumulate concurrency) drive a schedule over compute
// engines and network ports, reproducing the overlap behaviour that
// determines percent-of-peak in Figures 2-3.
func SimulateMultiply(prob Problem, cfg Config, sys SimSystem) SimResult {
	res, _, _ := SimulateMultiplyTrace(prob, cfg, sys)
	return res
}

// SimulateMultiplyTrace is SimulateMultiply but additionally returns the
// discrete-event engine and raw schedule, so callers can render the
// timeline (trace.WriteGantt) or inspect per-op timings.
func SimulateMultiplyTrace(prob Problem, cfg Config, sys SimSystem) (SimResult, *gpusim.Engine, gpusim.Result) {
	cfg = cfg.withDefaults()
	p := prob.A.World().NumPE()
	if p != sys.Topo.NumPE() {
		panic("universal: world size does not match topology")
	}
	eng := gpusim.NewEngine()
	compute := make([]gpusim.ResourceID, p)
	egress := make([]gpusim.ResourceID, p)
	ingress := make([]gpusim.ResourceID, p)
	for pe := 0; pe < p; pe++ {
		compute[pe] = eng.AddResource("compute")
		egress[pe] = eng.AddResource("egress")
		ingress[pe] = eng.AddResource("ingress")
	}

	result := SimResult{}
	lastOpPerRank := make([]gpusim.OpID, 0, p)
	var resolved Stationary

	for rank := 0; rank < p; rank++ {
		plan := BuildPlanMode(rank, prob, cfg.Stationary, cfg.CacheTiles, cfg.SubTileFetch)
		resolved = plan.Stationary
		result.Ops += len(plan.Steps)
		result.RemoteGetBytes += plan.RemoteFetchBytes()
		result.RemoteAccumBytes += plan.RemoteAccumBytes()

		gemmIDs := make([]gpusim.OpID, len(plan.Steps))
		chainEnd := make([]gpusim.OpID, len(plan.Steps)) // gemm or accum, whichever finishes the chain
		fetchFor := make([][]gpusim.OpID, len(plan.Steps))

		// Fetches are issued in program order with a lookahead window of
		// PrefetchDepth: the fetch for step i may not start before the GEMM
		// of step i-1-PrefetchDepth has been issued (§4.2 prefetches the
		// next two tiles while computing the current one).
		addFetch := func(i int, src, bytes int) gpusim.OpID {
			var deps []gpusim.OpID
			if gate := i - 1 - cfg.PrefetchDepth; gate >= 0 {
				deps = append(deps, gemmIDs[gate])
			}
			dur := simnet.TransferTime(sys.Topo, src, rank, float64(bytes)) + sys.Dev.LaunchOverhead
			return eng.AddOp("get", gpusim.OpComm, dur, deps,
				[]gpusim.ResourceID{egress[src], ingress[rank]})
		}

		for i, s := range plan.Steps {
			if s.FetchA {
				fetchFor[i] = append(fetchFor[i], addFetch(i, s.ASrc, s.ABytes))
			}
			if s.FetchB {
				fetchFor[i] = append(fetchFor[i], addFetch(i, s.BSrc, s.BBytes))
			}
			deps := append([]gpusim.OpID(nil), fetchFor[i]...)
			// Tile-cache hits must still wait for the step that fetched the
			// tile; the engine's per-resource serialization of fetches on
			// ingress[rank] plus program order makes that fetch precede this
			// GEMM's other dependencies in practice, so an explicit edge to
			// the earlier fetch is redundant for timing.
			// Bounded chain concurrency: the semaphore of §4.2.
			if gate := i - cfg.MaxInflight; gate >= 0 {
				deps = append(deps, chainEnd[gate])
			}
			op := s.Op
			gemmDur := sys.Dev.GemmTime(op.M.Len(), op.N.Len(), op.K.Len()) + sys.Dev.LaunchOverhead
			gemmIDs[i] = eng.AddOp("gemm", gpusim.OpCompute, gemmDur, deps,
				[]gpusim.ResourceID{compute[rank]})
			chainEnd[i] = gemmIDs[i]

			if s.AccumBytes > 0 {
				var accDur float64
				var accRes []gpusim.ResourceID
				if s.CLocal {
					// Local accumulate: read-modify-write in HBM.
					accDur = 2 * float64(s.AccumBytes) / sys.Dev.MemBW
				} else {
					bw := sys.Topo.Bandwidth(rank, s.CDst)
					accDur = sys.Dev.AccumTime(float64(s.AccumBytes), bw) + sys.Topo.Latency(rank, s.CDst)
					accRes = []gpusim.ResourceID{egress[rank], ingress[s.CDst]}
					if sys.Dev.AccumComputeInterference {
						accRes = append(accRes, compute[rank])
					}
				}
				accDur += sys.Dev.LaunchOverhead
				chainEnd[i] = eng.AddOp("accum", gpusim.OpAccum, accDur,
					[]gpusim.OpID{gemmIDs[i]}, accRes)
			}
		}
		if n := len(plan.Steps); n > 0 {
			lastOpPerRank = append(lastOpPerRank, chainEnd[n-1])
		}
	}

	// reduce_replicas for a replicated C: after a barrier (modelled as a
	// dependency on every rank's last chain), each non-origin rank
	// accumulates its owned C tiles into the origin replica.
	if prob.C.Replication() > 1 {
		origin := cfg.ReduceOrigin
		for rank := 0; rank < p; rank++ {
			if prob.C.ReplicaOf(rank) == origin {
				continue
			}
			dst := prob.C.RankFor(prob.C.SlotOf(rank), origin)
			for _, idx := range prob.C.OwnedTiles(rank) {
				bytes := prob.C.TileBounds(idx).Area() * 4
				bw := sys.Topo.Bandwidth(rank, dst)
				dur := sys.Dev.AccumTime(float64(bytes), bw) + sys.Topo.Latency(rank, dst) + sys.Dev.LaunchOverhead
				res := []gpusim.ResourceID{egress[rank], ingress[dst]}
				if sys.Dev.AccumComputeInterference {
					res = append(res, compute[rank])
				}
				eng.AddOp("reduce", gpusim.OpAccum, dur, lastOpPerRank, res)
				result.RemoteAccumBytes += bytes
			}
		}
	}

	run := eng.Run()
	result.Makespan = run.Makespan
	result.Stationary = resolved
	m, n, k := prob.Dims()
	if run.Makespan > 0 {
		flops := 2 * float64(m) * float64(n) * float64(k)
		result.PercentOfPeak = flops / (float64(p) * sys.Dev.PeakFlops * run.Makespan) * 100
	}
	var util float64
	for pe := 0; pe < p; pe++ {
		util += run.Utilization(compute[pe])
	}
	result.AvgComputeUtil = util / float64(p)
	return result, eng, run
}
