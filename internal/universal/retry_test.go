package universal

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	rt "slicing/internal/runtime"
)

// failNTimes returns an op that raises a transient fault on its first n
// invocations and succeeds afterwards.
func failNTimes(n int) (op func(), calls *int) {
	calls = new(int)
	return func() {
		*calls++
		if *calls <= n {
			rt.Fail(rt.ErrTransient, "Get", 0)
		}
	}, calls
}

func testRetrier(attempts int, counter *atomic.Int64) retrier {
	// Nanosecond base keeps the backoff real but the test instant.
	return newRetrier(RetryConfig{Attempts: attempts, BaseDelay: time.Nanosecond, Retries: counter}.withDefaults(), 1)
}

func TestRetrierAbsorbsTransientsWithinBudget(t *testing.T) {
	var n atomic.Int64
	r := testRetrier(3, &n)
	op, calls := failNTimes(2)
	if err := r.do(op); err != nil {
		t.Fatalf("2 transients under a 3-attempt budget: %v", err)
	}
	if *calls != 3 {
		t.Fatalf("op called %d times, want 3", *calls)
	}
	if n.Load() != 2 {
		t.Fatalf("counted %d retries, want 2", n.Load())
	}
}

func TestRetrierExhaustsBudget(t *testing.T) {
	var n atomic.Int64
	r := testRetrier(3, &n)
	op, calls := failNTimes(99)
	err := r.do(op)
	if !rt.IsTransient(err) {
		t.Fatalf("exhausted budget returned %v, want the transient error", err)
	}
	if *calls != 3 {
		t.Fatalf("op called %d times, want exactly the budget", *calls)
	}
	if n.Load() != 2 {
		t.Fatalf("counted %d retries, want 2 (the reissues, not the first try)", n.Load())
	}
}

func TestRetrierFatalNeverRetries(t *testing.T) {
	var n atomic.Int64
	r := testRetrier(5, &n)
	calls := 0
	err := r.do(func() {
		calls++
		rt.Fail(rt.ErrPEFailed, "Put", 1)
	})
	if !errors.Is(err, rt.ErrPEFailed) || calls != 1 || n.Load() != 0 {
		t.Fatalf("fatal fault: err=%v calls=%d retries=%d", err, calls, n.Load())
	}
}

func TestRetrierRepanicsNonFaults(t *testing.T) {
	r := testRetrier(3, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("non-fault panic was swallowed")
		}
	}()
	r.do(func() { panic("index out of range") })
}

func TestRetryConfigDefaults(t *testing.T) {
	c := RetryConfig{}.withDefaults()
	if c.Attempts != 3 || c.BaseDelay != 50*time.Microsecond {
		t.Fatalf("defaults: %+v", c)
	}
	keep := RetryConfig{Attempts: 7, BaseDelay: time.Millisecond}.withDefaults()
	if keep.Attempts != 7 || keep.BaseDelay != time.Millisecond {
		t.Fatalf("explicit values overridden: %+v", keep)
	}
}

func TestErrBoxFirstErrorWins(t *testing.T) {
	var b errBox
	if b.err() != nil {
		t.Fatal("fresh box not empty")
	}
	b.set(nil) // nil never occupies the box
	if b.err() != nil {
		t.Fatal("set(nil) occupied the box")
	}
	first := errors.New("first")
	b.set(first)
	b.set(errors.New("second"))
	if b.err() != first {
		t.Fatalf("box holds %v, want the first error", b.err())
	}
}

// TestRetrierNoFaultAllocFree guards the retry wrapper's hot path: on a
// backend that never faults, routing every one-sided op through
// retrier.do must not allocate (the CatchFault defer is open-coded and
// the op closure does not escape).
func TestRetrierNoFaultAllocFree(t *testing.T) {
	r := testRetrier(3, nil)
	op := func() {}
	r.do(op) // warm
	allocs := testing.AllocsPerRun(100, func() {
		if err := r.do(op); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("no-fault retrier.do allocates %v objects per op, want 0", allocs)
	}
}
