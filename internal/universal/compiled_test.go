package universal

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"slicing/internal/distmat"
	rt "slicing/internal/runtime"
	"slicing/internal/shmem"
)

// draw is one random configuration of the plan-key property tests: enough
// structure to build a problem, plus config fields both structural and
// runtime-only.
type planDraw struct {
	p, m, n, k          int
	partA, partB, partC distmat.Partition
	cA, cB, cC          int
	cfg                 Config
}

func divisorsOf(p int) []int {
	var ds []int
	for d := 1; d <= p; d++ {
		if p%d == 0 {
			ds = append(ds, d)
		}
	}
	return ds
}

func randPartition(rng *rand.Rand, slots int) distmat.Partition {
	switch rng.Intn(4) {
	case 0:
		return distmat.RowBlock{}
	case 1:
		return distmat.ColBlock{}
	case 2:
		return distmat.Block2D{}
	default:
		pr, pc := distmat.NearSquareFactors(slots)
		return distmat.Custom{
			TileRows: 1 + rng.Intn(9), TileCols: 1 + rng.Intn(13),
			ProcRows: pr, ProcCols: pc,
		}
	}
}

func randomPlanDraw(rng *rand.Rand) planDraw {
	ps := []int{1, 2, 4, 6}
	d := planDraw{
		p: ps[rng.Intn(len(ps))],
		m: 1 + rng.Intn(40),
		n: 1 + rng.Intn(40),
		k: 1 + rng.Intn(40),
	}
	divs := divisorsOf(d.p)
	d.cA = divs[rng.Intn(len(divs))]
	d.cB = divs[rng.Intn(len(divs))]
	d.cC = divs[rng.Intn(len(divs))]
	d.partA = randPartition(rng, d.p/d.cA)
	d.partB = randPartition(rng, d.p/d.cB)
	d.partC = randPartition(rng, d.p/d.cC)
	d.cfg = Config{
		Stationary:   Stationary(rng.Intn(4)), // Auto, A, B, or C
		CacheTiles:   rng.Intn(9),             // 0 exercises normalization
		SubTileFetch: rng.Intn(2) == 0,
		// Runtime-only fields, randomized to prove they never reach the key.
		PrefetchDepth: rng.Intn(5),
		MaxInflight:   rng.Intn(5),
		KernelWorkers: rng.Intn(3),
		SyncReplicas:  rng.Intn(2) == 0,
	}
	return d
}

// buildDraw materializes a draw into a fresh world + problem.
func buildDraw(d planDraw) Problem {
	w := shmem.NewWorld(d.p)
	a := distmat.New(w, d.m, d.k, d.partA, d.cA)
	b := distmat.New(w, d.k, d.n, d.partB, d.cB)
	c := distmat.New(w, d.m, d.n, d.partC, d.cC)
	return NewProblem(c, a, b)
}

// Property: structurally identical problems built from independent worlds
// and matrices canonicalize to equal keys, and equal keys compile to
// step-for-step identical plans (key-equality ⇒ plan-equality); perturbing
// any structural input changes the key (plan-relevant inputs are injective
// into the key up to canonicalization).
func TestPlanKeyPropertyRandomDraws(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		d := randomPlanDraw(rng)
		p1 := buildDraw(d)
		p2 := buildDraw(d) // independent world, same structure
		k1, k2 := PlanKeyOf(p1, d.cfg), PlanKeyOf(p2, d.cfg)
		if k1 != k2 {
			t.Fatalf("trial %d: same draw produced different keys\n%+v\n%+v", trial, k1, k2)
		}
		cp1, cp2 := CompilePlans(p1, d.cfg), CompilePlans(p2, d.cfg)
		if !reflect.DeepEqual(cp1.Plans, cp2.Plans) {
			t.Fatalf("trial %d: equal keys compiled to different plans", trial)
		}
		if !reflect.DeepEqual(cp1.scheds, cp2.scheds) {
			t.Fatalf("trial %d: equal keys produced different fetch schedules", trial)
		}

		// Structural perturbations must change the key.
		bigger := d
		bigger.m++
		if PlanKeyOf(buildDraw(bigger), d.cfg) == k1 {
			t.Fatalf("trial %d: m+1 did not change the key", trial)
		}
		flipped := d.cfg
		flipped.SubTileFetch = !flipped.SubTileFetch
		if PlanKeyOf(p1, flipped) == k1 {
			t.Fatalf("trial %d: flipping SubTileFetch did not change the key", trial)
		}
		cached := d.cfg
		cached.CacheTiles = k1.CacheTiles + 1
		if PlanKeyOf(p1, cached) == k1 {
			t.Fatalf("trial %d: changing CacheTiles did not change the key", trial)
		}

		// Runtime-only perturbations must NOT change the key.
		runtimeOnly := d.cfg
		runtimeOnly.PrefetchDepth += 3
		runtimeOnly.MaxInflight += 7
		runtimeOnly.KernelWorkers += 2
		runtimeOnly.SyncReplicas = !runtimeOnly.SyncReplicas
		runtimeOnly.ReduceOrigin = 1
		if PlanKeyOf(p1, runtimeOnly) != k1 {
			t.Fatalf("trial %d: runtime-only config fields leaked into the key", trial)
		}
	}
}

// Different Partition implementations that reproduce the same grid and
// ownership are the same structure to the slicing pass; the key must not
// see the implementation's identity.
func TestPlanKeyCanonicalizesEquivalentPartitions(t *testing.T) {
	const p, m, n, k = 4, 23, 29, 31
	rowAsCustom := func(rows, cols int) distmat.Partition {
		return distmat.Custom{
			TileRows: (rows + p - 1) / p, TileCols: cols,
			ProcRows: p, ProcCols: 1,
		}
	}
	w1 := shmem.NewWorld(p)
	prob1 := NewProblem(
		distmat.New(w1, m, n, distmat.RowBlock{}, 1),
		distmat.New(w1, m, k, distmat.RowBlock{}, 1),
		distmat.New(w1, k, n, distmat.RowBlock{}, 1),
	)
	w2 := shmem.NewWorld(p)
	prob2 := NewProblem(
		distmat.New(w2, m, n, rowAsCustom(m, n), 1),
		distmat.New(w2, m, k, rowAsCustom(m, k), 1),
		distmat.New(w2, k, n, rowAsCustom(k, n), 1),
	)
	cfg := DefaultConfig()
	k1, k2 := PlanKeyOf(prob1, cfg), PlanKeyOf(prob2, cfg)
	if k1 != k2 {
		t.Fatalf("RowBlock and its Custom spelling keyed differently:\n%+v\n%+v", k1, k2)
	}
	if !reflect.DeepEqual(CompilePlans(prob1, cfg).Plans, CompilePlans(prob2, cfg).Plans) {
		t.Fatal("equivalent partitions compiled to different plans")
	}

	// A partition sharing the grid but not the ownership (cyclic vs blocked
	// column assignment) must key differently via the owner hash.
	w3 := shmem.NewWorld(p)
	cyc := distmat.Custom{TileRows: m, TileCols: 3, ProcRows: 1, ProcCols: p}
	prob3 := NewProblem(
		distmat.New(w3, m, n, cyc, 1),
		distmat.New(w3, m, k, distmat.RowBlock{}, 1),
		distmat.New(w3, k, n, distmat.RowBlock{}, 1),
	)
	w4 := shmem.NewWorld(p)
	swapped := distmat.Custom{TileRows: m, TileCols: 3, ProcRows: p, ProcCols: 1}
	prob4 := NewProblem(
		distmat.New(w4, m, n, swapped, 1),
		distmat.New(w4, m, k, distmat.RowBlock{}, 1),
		distmat.New(w4, k, n, distmat.RowBlock{}, 1),
	)
	if PlanKeyOf(prob3, cfg) == PlanKeyOf(prob4, cfg) {
		t.Fatal("partitions with equal grids but different ownership share a key")
	}
}

// Zero-value and explicitly-defaulted configs spell the same effective
// configuration and must share a key.
func TestPlanKeyNormalizesConfigSpellings(t *testing.T) {
	prob := buildDraw(planDraw{
		p: 4, m: 20, n: 24, k: 28,
		partA: distmat.RowBlock{}, partB: distmat.ColBlock{}, partC: distmat.Block2D{},
		cA: 1, cB: 1, cC: 1,
	})
	zero := PlanKeyOf(prob, Config{})
	dflt := PlanKeyOf(prob, DefaultConfig())
	if zero != dflt {
		t.Fatalf("zero config %+v != default config %+v", zero, dflt)
	}
	if zero.CacheTiles != DefaultCacheTiles {
		t.Fatalf("key did not normalize CacheTiles: %d", zero.CacheTiles)
	}
	if zero.Stationary == StationaryAuto {
		t.Fatal("key did not resolve StationaryAuto")
	}
}

// Serialize → deserialize must reproduce bit-identical step schedules and
// fetch schedules, and the reloaded plan must execute.
func TestCompiledPlanJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		d := randomPlanDraw(rng)
		prob := buildDraw(d)
		cp := CompilePlans(prob, d.cfg)
		blob, err := json.Marshal(cp)
		if err != nil {
			t.Fatalf("trial %d: marshal: %v", trial, err)
		}
		var back CompiledPlan
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("trial %d: unmarshal: %v", trial, err)
		}
		if back.Key != cp.Key {
			t.Fatalf("trial %d: key changed across round trip", trial)
		}
		if !reflect.DeepEqual(back.Plans, cp.Plans) {
			t.Fatalf("trial %d: step schedules not bit-identical across round trip", trial)
		}
		if !reflect.DeepEqual(back.scheds, cp.scheds) {
			t.Fatalf("trial %d: recompiled fetch schedules differ", trial)
		}
	}
}

// A serialized plan seeded into a fresh cache (the restart path) must serve
// Multiply without a single slicing pass and still produce the right C.
func TestCompiledPlanSurvivesRestart(t *testing.T) {
	const p, m, n, k = 4, 23, 29, 31
	w := shmem.NewWorld(p)
	a := distmat.New(w, m, k, distmat.RowBlock{}, 1)
	b := distmat.New(w, k, n, distmat.ColBlock{}, 1)
	c := distmat.New(w, m, n, distmat.Block2D{}, 1)
	w.Run(func(pe rt.PE) {
		a.FillRandom(pe, 101)
		b.FillRandom(pe, 202)
	})
	ref := referenceProduct(m, n, k, 101, 202, a, b, w)
	prob := NewProblem(c, a, b)
	cfg := DefaultConfig()

	blob, err := json.Marshal(CompilePlans(prob, cfg))
	if err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh cache seeded only from the serialized bytes.
	var loaded CompiledPlan
	if err := json.Unmarshal(blob, &loaded); err != nil {
		t.Fatal(err)
	}
	if !loaded.Matches(prob, cfg) {
		t.Fatal("reloaded plan does not match the problem it was compiled for")
	}
	cache := NewPlanCache(4)
	cache.Put(&loaded)
	cfg.Plans = cache

	before := PlanBuildCount()
	w.Run(func(pe rt.PE) {
		Multiply(pe, c, a, b, cfg)
	})
	if got := PlanBuildCount() - before; got != 0 {
		t.Fatalf("seeded cache still ran %d slicing passes", got)
	}
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			got := c.Gather(pe, 0)
			if !got.AllClose(ref, 1e-3) {
				t.Errorf("restart-path multiply wrong: maxdiff %g", got.MaxAbsDiff(ref))
			}
		}
	})
}

// corruptCase mutates a valid plan so the deserializer must reject it.
type corruptCase struct {
	name string
	mut  func(cp *CompiledPlan)
}

func TestCompiledPlanValidateRejects(t *testing.T) {
	prob := buildDraw(planDraw{
		p: 2, m: 12, n: 10, k: 8,
		partA: distmat.RowBlock{}, partB: distmat.ColBlock{}, partC: distmat.RowBlock{},
		cA: 1, cB: 1, cC: 1,
	})
	base := CompilePlans(prob, DefaultConfig())
	blob, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}

	cases := []corruptCase{
		{"zero world", func(cp *CompiledPlan) { cp.Key.NumPE = 0 }},
		{"huge world", func(cp *CompiledPlan) { cp.Key.NumPE = 1 << 21 }},
		{"rank count mismatch", func(cp *CompiledPlan) { cp.Plans = cp.Plans[:1] }},
		{"unnormalized cache", func(cp *CompiledPlan) { cp.Key.CacheTiles = 0 }},
		{"unresolved stationary", func(cp *CompiledPlan) { cp.Key.Stationary = StationaryAuto }},
		{"bad replication", func(cp *CompiledPlan) { cp.Key.A.Replication = 5 }},
		{"zero tile shape", func(cp *CompiledPlan) { cp.Key.B.TileRows = 0 }},
		{"rank renumbered", func(cp *CompiledPlan) { cp.Plans[1].Rank = 0 }},
		{"plan stationary disagrees", func(cp *CompiledPlan) { cp.Plans[0].Stationary = (cp.Key.Stationary % 3) + 1 }},
		{"tile index out of grid", func(cp *CompiledPlan) { cp.Plans[0].Steps[0].Op.AIdx.Row = 99 }},
		{"negative tile index", func(cp *CompiledPlan) { cp.Plans[0].Steps[0].Op.CIdx.Col = -1 }},
		{"inverted interval", func(cp *CompiledPlan) {
			cp.Plans[0].Steps[0].Op.M.Begin = 5
			cp.Plans[0].Steps[0].Op.M.End = 2
		}},
		{"source rank out of world", func(cp *CompiledPlan) { cp.Plans[0].Steps[0].ASrc = 7 }},
		{"negative bytes", func(cp *CompiledPlan) { cp.Plans[0].Steps[0].BBytes = -4 }},
		{"fetch mode disagrees", func(cp *CompiledPlan) { cp.Plans[0].Steps[0].SubTile = !cp.Key.SubTile }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var cp CompiledPlan
			if err := json.Unmarshal(blob, &cp); err != nil {
				t.Fatal(err)
			}
			tc.mut(&cp)
			bad, err := json.Marshal(&cp)
			if err != nil {
				t.Fatal(err)
			}
			var back CompiledPlan
			if err := json.Unmarshal(bad, &back); err == nil {
				t.Fatal("deserializer accepted corrupted plan")
			}
		})
	}
	// And the untouched blob must still load.
	var ok CompiledPlan
	if err := json.Unmarshal(blob, &ok); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

// FuzzCompiledPlanJSON hammers the deserializer with arbitrary bytes: it
// must never panic, and anything it accepts must round-trip and satisfy the
// validator's invariants.
func FuzzCompiledPlanJSON(f *testing.F) {
	prob := buildDraw(planDraw{
		p: 2, m: 9, n: 7, k: 5,
		partA: distmat.RowBlock{}, partB: distmat.ColBlock{}, partC: distmat.RowBlock{},
		cA: 1, cB: 1, cC: 1,
	})
	for _, cfg := range []Config{{}, {SubTileFetch: true}, {Stationary: StationaryA, CacheTiles: 2}} {
		blob, err := json.Marshal(CompilePlans(prob, cfg))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"key":{"NumPE":-1}}`))
	f.Add([]byte(`{"key":{"NumPE":2,"Stationary":3,"CacheTiles":8},"plans":[]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var cp CompiledPlan
		if err := json.Unmarshal(data, &cp); err != nil {
			return
		}
		if err := cp.validate(); err != nil {
			t.Fatalf("accepted plan fails validate: %v", err)
		}
		again, err := json.Marshal(&cp)
		if err != nil {
			t.Fatalf("accepted plan fails to re-marshal: %v", err)
		}
		var back CompiledPlan
		if err := json.Unmarshal(again, &back); err != nil {
			t.Fatalf("accepted plan fails round trip: %v", err)
		}
	})
}

// ExecuteCompiled must agree with the per-rank rebuild path on the same
// problem (within accumulate-order tolerance).
func TestExecuteCompiledMatchesDirect(t *testing.T) {
	const p, m, n, k = 4, 25, 17, 21
	for _, sub := range []bool{false, true} {
		t.Run(fmt.Sprintf("subtile=%v", sub), func(t *testing.T) {
			w := shmem.NewWorld(p)
			a := distmat.New(w, m, k, distmat.RowBlock{}, 1)
			b := distmat.New(w, k, n, distmat.ColBlock{}, 1)
			c := distmat.New(w, m, n, distmat.Block2D{}, 1)
			w.Run(func(pe rt.PE) {
				a.FillRandom(pe, 11)
				b.FillRandom(pe, 22)
			})
			ref := referenceProduct(m, n, k, 11, 22, a, b, w)
			prob := NewProblem(c, a, b)
			cfg := DefaultConfig()
			cfg.SubTileFetch = sub
			cp := CompilePlans(prob, cfg)
			w.Run(func(pe rt.PE) {
				c.Zero(pe)
				ExecuteCompiled(pe, prob, cp, cfg)
				pe.Barrier()
				if pe.Rank() == 0 {
					got := c.Gather(pe, 0)
					if !got.AllClose(ref, 1e-3) {
						t.Errorf("compiled execution wrong: maxdiff %g", got.MaxAbsDiff(ref))
					}
				}
			})
		})
	}
}
