package universal

import (
	"sort"
	"sync/atomic"

	"slicing/internal/distmat"
	"slicing/internal/index"
)

// planBuilds counts executed slicing passes (BuildPlanMode calls), the
// observable for pass-count tests proving a plan-cache hit re-runs zero
// slicing work.
var planBuilds atomic.Int64

// PlanBuildCount returns the number of slicing passes run so far in this
// process. Diagnostic/test hook: the delta across a cached Multiply must be
// zero on a plan-cache hit.
func PlanBuildCount() int64 { return planBuilds.Load() }

// Step is one scheduled local operation in an execution plan: the op plus
// the communication it requires, with tile-cache hits already resolved so
// the real executor and the simulated-time executor make identical
// fetch decisions.
type Step struct {
	Op LocalOp
	// FetchA / FetchB indicate the tile must be copied over the network
	// (it is neither local to the rank nor present in the tile cache).
	FetchA, FetchB bool
	// ALocal / BLocal / CLocal indicate the tile lives in this rank's own
	// replica slot (zero-copy access).
	ALocal, BLocal, CLocal bool
	// ASrc, BSrc, CDst are the resolved owner ranks within the executing
	// rank's local replicas.
	ASrc, BSrc, CDst int
	// ABytes / BBytes are the transfer sizes when fetched: whole tiles in
	// the default mode, exact op slices in sub-tile mode.
	ABytes, BBytes int
	// AccumBytes is the size of the C update the op produces (M×N floats).
	AccumBytes int
	// SubTile marks the bandwidth-optimal fetch mode: only the op's (M,K)
	// and (K,N) slices move, at the cost of losing cross-op tile reuse.
	SubTile bool
}

// Plan is the per-rank execution plan for one distributed multiply.
type Plan struct {
	Rank       int
	Stationary Stationary
	Steps      []Step
}

// TotalFlops sums the floating-point work of all steps.
func (pl Plan) TotalFlops() float64 {
	var f float64
	for _, s := range pl.Steps {
		f += s.Op.Flops()
	}
	return f
}

// RemoteFetchBytes sums the bytes of remote get traffic the plan issues.
func (pl Plan) RemoteFetchBytes() int {
	var b int
	for _, s := range pl.Steps {
		if s.FetchA {
			b += s.ABytes
		}
		if s.FetchB {
			b += s.BBytes
		}
	}
	return b
}

// RemoteAccumBytes sums the bytes of remote accumulate traffic.
func (pl Plan) RemoteAccumBytes() int {
	var b int
	for _, s := range pl.Steps {
		if !s.CLocal {
			b += s.AccumBytes
		}
	}
	return b
}

// DefaultCacheTiles is how many recently fetched tiles a process keeps
// for reuse across consecutive ops, bounding the memory-pool footprint the
// same way the paper's configurable concurrency limits do.
const DefaultCacheTiles = 8

type cacheKey struct {
	mat byte // 'A' or 'B'
	idx index.TileIdx
}

// tileLRU tracks which fetched tiles are still resident. Both the plan
// builder (for fetch decisions) and the real executor (for the actual tile
// buffers) use it, so their behaviour matches by construction.
type tileLRU struct {
	cap  int
	keys []cacheKey
}

func newTileLRU(capacity int) *tileLRU {
	if capacity <= 0 {
		capacity = DefaultCacheTiles
	}
	return &tileLRU{cap: capacity}
}

// touch marks key as most recently used. It returns whether the key was
// already resident and, when an insertion overflows capacity, the evicted
// key.
func (l *tileLRU) touch(k cacheKey) (hit bool, evicted cacheKey, didEvict bool) {
	for i, existing := range l.keys {
		if existing == k {
			copy(l.keys[i:], l.keys[i+1:])
			l.keys[len(l.keys)-1] = k
			return true, cacheKey{}, false
		}
	}
	l.keys = append(l.keys, k)
	if len(l.keys) > l.cap {
		evicted = l.keys[0]
		l.keys = append(l.keys[:0], l.keys[1:]...)
		return false, evicted, true
	}
	return false, cacheKey{}, false
}

// fetchRef names one fetch in a plan: the step that issued it and the
// operand matrix it was issued for.
type fetchRef struct {
	step int
	mat  byte // 'A' or 'B'
}

// fetchEvict records that a fetch's cache residency ends once step atStep
// has been dispatched; atStep == len(steps) marks fetches still resident at
// the end of the plan.
type fetchEvict struct {
	atStep int
	ref    fetchRef
}

// fetchSchedule is the executor's precomputed view of the plan-time tile
// LRU: where each step's non-local full-tile operand comes from, and when
// each fetched buffer's cache residency ends. Replaying the same LRU the
// plan builder used makes the executor's buffer lifetimes mirror the plan's
// fetch decisions by construction — a tile buffer is recycled exactly when
// the plan would have re-fetched it — so steady-state execution holds at
// most CacheTiles tile buffers per operand instead of retaining every fetch
// for the whole plan.
type fetchSchedule struct {
	// srcA[i] / srcB[i] give the step whose fetch serves step i's operand
	// (srcX[i] == i when the step fetches it itself); -1 marks operands
	// with no backing fetch: local tiles, sub-tile steps, and — if the
	// plan was built with a different cache capacity than the executor's —
	// hits the replay cannot resolve, which fall back to a synchronous get.
	srcA, srcB []int
	// evictions lists every fetch's residency end in non-decreasing atStep
	// order (each fetch appears exactly once), so the executor retires
	// buffers by walking a cursor instead of per-step slices.
	evictions []fetchEvict
}

// planFetchSchedule replays the tile LRU over a plan's steps. cacheTiles
// must match the capacity the plan was built with for the replay to mirror
// its fetch decisions exactly.
func planFetchSchedule(pl Plan, cacheTiles int) fetchSchedule {
	n := len(pl.Steps)
	sched := fetchSchedule{
		srcA: make([]int, n),
		srcB: make([]int, n),
	}
	cache := newTileLRU(cacheTiles)
	lastFetch := map[cacheKey]fetchRef{}
	resolve := func(i int, src *int, fetched, local bool, key cacheKey) {
		*src = -1
		if local {
			return
		}
		if fetched {
			// A re-fetch while the replay still holds the key only happens
			// when the executor's cache capacity exceeds the plan's; end
			// the shadowed fetch's residency here so its buffer is not
			// leaked (every fetch must appear in evictions exactly once).
			if old, ok := lastFetch[key]; ok {
				sched.evictions = append(sched.evictions, fetchEvict{atStep: i, ref: old})
			}
			lastFetch[key] = fetchRef{step: i, mat: key.mat}
		}
		if ref, ok := lastFetch[key]; ok {
			*src = ref.step
		}
		if _, evicted, did := cache.touch(key); did {
			if ref, ok := lastFetch[evicted]; ok {
				sched.evictions = append(sched.evictions, fetchEvict{atStep: i, ref: ref})
				delete(lastFetch, evicted)
			}
		}
	}
	for i, s := range pl.Steps {
		sched.srcA[i], sched.srcB[i] = -1, -1
		if s.SubTile {
			continue
		}
		resolve(i, &sched.srcA[i], s.FetchA, s.ALocal, cacheKey{'A', s.Op.AIdx})
		resolve(i, &sched.srcB[i], s.FetchB, s.BLocal, cacheKey{'B', s.Op.BIdx})
	}
	// Fetches still resident at plan end are retired together; emit them in
	// step order (not map order) so identical plans always produce
	// bit-identical schedules.
	tail := len(sched.evictions)
	for _, ref := range lastFetch {
		sched.evictions = append(sched.evictions, fetchEvict{atStep: n, ref: ref})
	}
	sort.Slice(sched.evictions[tail:], func(i, j int) bool {
		a, b := sched.evictions[tail+i].ref, sched.evictions[tail+j].ref
		if a.step != b.step {
			return a.step < b.step
		}
		return a.mat < b.mat
	})
	return sched
}

// BuildPlan resolves the ops rank must execute into a Step sequence:
// which tiles are local, which fetches hit the tile cache, where updates
// go, and how many bytes move.
func BuildPlan(rank int, p Problem, stat Stationary, cacheTiles int) Plan {
	return BuildPlanMode(rank, p, stat, cacheTiles, false)
}

// BuildPlanMode is BuildPlan with an explicit fetch-mode choice. With
// subTile true the plan fetches only each op's exact (M,K) and (K,N)
// slices — minimal bytes, no cross-op reuse; with subTile false it fetches
// whole tiles through the LRU cache — more bytes, amortized across the ops
// sharing a tile. The tradeoff is benchmarked in BenchmarkFetchModeAblation.
func BuildPlanMode(rank int, p Problem, stat Stationary, cacheTiles int, subTile bool) Plan {
	resolved := p.ResolveStationary(stat)
	return buildStepsFromOps(rank, p, resolved, GenerateOps(rank, p, resolved), cacheTiles, subTile)
}

// buildStepsFromOps lowers an explicit op list into a Step sequence with
// locality, fetch decisions, and byte counts resolved for the executing
// rank. BuildPlanMode feeds it the rank's own generated ops; the recovery
// path feeds it ops adopted from a failed rank (plan repair), where the
// adopting rank's own replica placement — not the dead rank's — must
// drive the source/destination resolution. stat must already be resolved.
func buildStepsFromOps(rank int, p Problem, resolved Stationary, ops []LocalOp, cacheTiles int, subTile bool) Plan {
	planBuilds.Add(1)
	cache := newTileLRU(cacheTiles)
	steps := make([]Step, 0, len(ops))
	for _, op := range ops {
		s := Step{Op: op, SubTile: subTile}
		s.ASrc = p.A.OwnerRank(op.AIdx, distmat.LocalReplica, rank)
		s.BSrc = p.B.OwnerRank(op.BIdx, distmat.LocalReplica, rank)
		s.CDst = p.C.OwnerRank(op.CIdx, distmat.LocalReplica, rank)
		s.ALocal = s.ASrc == rank
		s.BLocal = s.BSrc == rank
		s.CLocal = s.CDst == rank
		s.AccumBytes = op.M.Len() * op.N.Len() * 4
		if subTile {
			s.ABytes = op.M.Len() * op.K.Len() * 4
			s.BBytes = op.K.Len() * op.N.Len() * 4
			s.FetchA = !s.ALocal
			s.FetchB = !s.BLocal
		} else {
			s.ABytes = p.A.TileBounds(op.AIdx).Area() * 4
			s.BBytes = p.B.TileBounds(op.BIdx).Area() * 4
			if !s.ALocal {
				hit, _, _ := cache.touch(cacheKey{'A', op.AIdx})
				s.FetchA = !hit
			}
			if !s.BLocal {
				hit, _, _ := cache.touch(cacheKey{'B', op.BIdx})
				s.FetchB = !hit
			}
		}
		steps = append(steps, s)
	}
	return Plan{Rank: rank, Stationary: resolved, Steps: steps}
}
