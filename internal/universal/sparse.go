package universal

import (
	"slicing/internal/distmat"
	"slicing/internal/index"
	rt "slicing/internal/runtime"
	"slicing/internal/tile"
)

// MultiplySparse computes C = A·B where A is a distributed sparse (CSR)
// matrix and B, C are dense — the sparse-times-dense workload (SpMM) of
// the paper's related work ([5], [16]). The slicing pass is identical to
// the dense case: ops are generated from A's tile grid metadata, so any
// partitioning/replication combination works. Execution fetches sparse A
// tiles (nnz-sized one-sided reads), slices them with CSR windowing, and
// accumulates dense partial results into C. Collective; zeroes C first.
func MultiplySparse(pe rt.PE, c *distmat.Matrix, a *distmat.Sparse, b *distmat.Matrix, cfg Config) Stationary {
	cfg = cfg.withDefaults()
	prob := NewProblem(c, a.Meta(), b)
	c.Zero(pe)
	// Stationary A would keep the sparse matrix in place; the auto rule
	// compares dense element counts, which is still a reasonable proxy.
	plan := BuildPlan(pe.Rank(), prob, cfg.Stationary, cfg.CacheTiles)

	aCache := map[index.TileIdx]*tile.CSR{}
	fetched := map[cacheKey]*distmat.TileFuture{}
	for _, s := range plan.Steps {
		// Sparse A tile: local decode or one-sided fetch, memoized (sparse
		// tiles are immutable during the multiply).
		aTile, ok := aCache[s.Op.AIdx]
		if !ok {
			aTile = a.GetTile(pe, s.Op.AIdx, distmat.LocalReplica)
			aCache[s.Op.AIdx] = aTile
		}
		// Dense B tile through the usual async path.
		var bTile *tile.Matrix
		if s.BLocal {
			bTile = prob.B.Tile(pe, s.Op.BIdx, distmat.LocalReplica)
		} else {
			key := cacheKey{'B', s.Op.BIdx}
			f, ok := fetched[key]
			if !ok {
				f = prob.B.GetTileAsync(pe, s.Op.BIdx, distmat.LocalReplica)
				fetched[key] = f
			}
			bTile = f.Wait()
		}

		ab := prob.A.TileBounds(s.Op.AIdx)
		bb := prob.B.TileBounds(s.Op.BIdx)
		aSlice := aTile.Window(
			s.Op.M.Begin-ab.Rows.Begin, s.Op.M.End-ab.Rows.Begin,
			s.Op.K.Begin-ab.Cols.Begin, s.Op.K.End-ab.Cols.Begin)
		bSlice := bTile.View(s.Op.K.Begin-bb.Rows.Begin, s.Op.N.Begin-bb.Cols.Begin, s.Op.K.Len(), s.Op.N.Len())

		rows, cols := s.Op.M.Len(), s.Op.N.Len()
		buf := cfg.Pool.Get(rows * cols)
		partial := tile.FromSlice(rows, cols, buf)
		tile.SpMM(partial, aSlice, bSlice)
		// Timed backends price the SpMM as its dense-equivalent GEMM, an
		// upper bound until the device model grows a sparse roofline.
		rt.ChargeGemm(pe, rows, cols, s.Op.K.Len())
		c.AccumulateSubTile(pe, s.Op.CIdx, distmat.LocalReplica, subRect(s.Op), partial)
		cfg.Pool.Put(buf)
	}
	pe.Barrier()
	if c.Replication() > 1 {
		c.ReduceReplicas(pe, cfg.ReduceOrigin)
		if cfg.SyncReplicas {
			c.BroadcastReplica(pe, cfg.ReduceOrigin)
		}
	}
	return plan.Stationary
}
