package universal

import (
	"sync"
	"sync/atomic"

	rt "slicing/internal/runtime"
)

// DefaultPlanCacheSize is the per-world compiled-plan LRU capacity used
// when a cache is created implicitly (PlansOf).
const DefaultPlanCacheSize = 32

// PlanCache is an LRU cache of CompiledPlans keyed by canonical PlanKey.
// It is safe for concurrent use by every PE of a world: a collective
// Multiply's P ranks race to GetOrCompile the same key, and the cache
// coalesces them onto one compilation (the remaining ranks block until the
// leader finishes, then share the immutable result). A cache hit allocates
// nothing — the key is a comparable struct, the LRU links are intrusive,
// and the counters are atomics — which is what keeps the serving hot path's
// allocation budget identical to executing a prebuilt plan.
//
// A capacity of zero (or negative) disables storage entirely: every lookup
// misses and compiled plans are dropped after use, but concurrent identical
// requests still coalesce onto one compilation in flight.
type PlanCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[PlanKey]*planEntry
	// Intrusive LRU list: head is most recently used.
	head, tail *planEntry
	inflight   map[PlanKey]*planFlight

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	builds    atomic.Int64
	coalesced atomic.Int64
}

type planEntry struct {
	key        PlanKey
	cp         *CompiledPlan
	prev, next *planEntry
}

type planFlight struct {
	done chan struct{}
	cp   *CompiledPlan
}

// NewPlanCache returns an empty cache holding at most capacity compiled
// plans; capacity <= 0 disables storage (see type docs).
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 0 {
		capacity = 0
	}
	return &PlanCache{
		capacity: capacity,
		entries:  make(map[PlanKey]*planEntry),
		inflight: make(map[PlanKey]*planFlight),
	}
}

// Capacity returns the maximum number of plans the cache retains.
func (c *PlanCache) Capacity() int { return c.capacity }

// Len returns the number of plans currently cached.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// unlink removes e from the LRU list. Caller holds mu.
func (c *PlanCache) unlink(e *planEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most recently used entry. Caller holds mu.
func (c *PlanCache) pushFront(e *planEntry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// Get returns the cached plan for key, marking it most recently used.
// Allocation-free on both hit and miss.
func (c *PlanCache) Get(key PlanKey) (*CompiledPlan, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	if c.head != e {
		c.unlink(e)
		c.pushFront(e)
	}
	cp := e.cp
	c.mu.Unlock()
	c.hits.Add(1)
	return cp, true
}

// Put inserts (or refreshes) a compiled plan under its own key, evicting
// the least recently used entry when over capacity. Use it to seed a cache
// with a deserialized plan from a previous process.
func (c *PlanCache) Put(cp *CompiledPlan) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	if e, ok := c.entries[cp.Key]; ok {
		e.cp = cp
		if c.head != e {
			c.unlink(e)
			c.pushFront(e)
		}
		c.mu.Unlock()
		return
	}
	e := &planEntry{key: cp.Key, cp: cp}
	c.entries[cp.Key] = e
	c.pushFront(e)
	for len(c.entries) > c.capacity {
		victim := c.tail
		c.unlink(victim)
		delete(c.entries, victim.key)
		c.evictions.Add(1)
	}
	c.mu.Unlock()
}

// GetOrCompile returns the compiled plan for (problem, config), compiling
// and caching it on a miss. Concurrent callers with the same key — the P
// ranks of one collective Multiply, or many serving requests with the same
// shapes — coalesce onto a single compilation. The hit path allocates
// nothing.
func (c *PlanCache) GetOrCompile(prob Problem, cfg Config) *CompiledPlan {
	key := PlanKeyOf(prob, cfg)
	if cp, ok := c.Get(key); ok {
		return cp
	}
	c.mu.Lock()
	// Re-check under the lock: another caller may have completed the build
	// between our miss and acquiring the lock.
	if e, ok := c.entries[key]; ok {
		if c.head != e {
			c.unlink(e)
			c.pushFront(e)
		}
		cp := e.cp
		c.mu.Unlock()
		c.hits.Add(1)
		return cp
	}
	if fl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		c.coalesced.Add(1)
		<-fl.done
		return fl.cp
	}
	fl := &planFlight{done: make(chan struct{})}
	c.inflight[key] = fl
	c.mu.Unlock()

	fl.cp = CompilePlans(prob, cfg)
	c.builds.Add(1)
	c.Put(fl.cp)
	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	close(fl.done)
	return fl.cp
}

// PlanCacheStats is a snapshot of cache behaviour. HitPct is the hit rate
// over all Get lookups (coalesced waiters count as neither hit nor miss of
// the storage layer; they are reported separately).
type PlanCacheStats struct {
	Hits, Misses, Evictions int64
	// Builds counts actual slicing-pass compilations; Coalesced counts
	// callers that waited on another caller's in-flight build instead of
	// compiling themselves.
	Builds, Coalesced int64
	Len, Capacity     int
}

// HitPct returns the hit percentage over all lookups, 0 when none occurred.
func (s PlanCacheStats) HitPct() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return 100 * float64(s.Hits) / float64(total)
}

// Stats returns a snapshot of the cache counters.
func (c *PlanCache) Stats() PlanCacheStats {
	return PlanCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Builds:    c.builds.Load(),
		Coalesced: c.coalesced.Load(),
		Len:       c.Len(),
		Capacity:  c.capacity,
	}
}

// worldPlans maps each world to its shared plan cache. Worlds are compared
// by interface identity, so every consumer of one world sees one cache.
var worldPlans sync.Map // rt.World -> *PlanCache

// PlansOf returns the plan cache attached to a world, creating it with
// DefaultPlanCacheSize on first use. This is how long-lived consumers (the
// serving loop, repeated benchmark harnesses) share compiled plans without
// threading a cache through every call site.
func PlansOf(w rt.World) *PlanCache {
	if c, ok := worldPlans.Load(w); ok {
		return c.(*PlanCache)
	}
	c, _ := worldPlans.LoadOrStore(w, NewPlanCache(DefaultPlanCacheSize))
	return c.(*PlanCache)
}
