package universal

import (
	"fmt"
	"math/rand"
	"testing"

	"slicing/internal/distmat"
	"slicing/internal/index"
	rt "slicing/internal/runtime"
	"slicing/internal/shmem"
	"slicing/internal/tile"
)

// testParts is a representative set of partitionings, including a
// deliberately misaligned ScaLAPACK-style descriptor (prime tile shapes).
func testParts(slots int) map[string]distmat.Partition {
	parts := map[string]distmat.Partition{
		"row":   distmat.RowBlock{},
		"col":   distmat.ColBlock{},
		"block": distmat.Block2D{},
	}
	pr, pc := distmat.NearSquareFactors(slots)
	parts["misaligned"] = distmat.Custom{TileRows: 7, TileCols: 11, ProcRows: pr, ProcCols: pc}
	return parts
}

func referenceProduct(m, n, k int, seedA, seedB int64, a, b *distmat.Matrix, w rt.World) *tile.Matrix {
	// Gather A and B (replica 0) on a fresh single-PE pass and multiply
	// serially. Uses a dedicated world run to own a PE handle.
	var ref *tile.Matrix
	w.Run(func(pe rt.PE) {
		if pe.Rank() != 0 {
			return
		}
		fullA := a.Gather(pe, 0)
		fullB := b.Gather(pe, 0)
		ref = tile.New(m, n)
		tile.GemmNaive(ref, fullA, fullB)
	})
	return ref
}

// runMultiply builds the three distributed matrices, fills them, runs the
// universal algorithm, and compares against the serial reference.
func runMultiply(t *testing.T, p, m, n, k int, partA, partB, partC distmat.Partition,
	cA, cB, cC int, stat Stationary) {
	t.Helper()
	w := shmem.NewWorld(p)
	a := distmat.New(w, m, k, partA, cA)
	b := distmat.New(w, k, n, partB, cB)
	c := distmat.New(w, m, n, partC, cC)
	w.Run(func(pe rt.PE) {
		a.FillRandom(pe, 101)
		b.FillRandom(pe, 202)
	})
	ref := referenceProduct(m, n, k, 101, 202, a, b, w)

	cfg := DefaultConfig()
	cfg.Stationary = stat
	cfg.SyncReplicas = true
	w.Run(func(pe rt.PE) {
		Multiply(pe, c, a, b, cfg)
	})

	var got *tile.Matrix
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			got = c.Gather(pe, 0)
		}
	})
	if !got.AllClose(ref, 1e-3) {
		t.Errorf("p=%d %dx%dx%d A=%s(c%d) B=%s(c%d) C=%s(c%d) %v: maxdiff %g",
			p, m, n, k, partA.Name(), cA, partB.Name(), cB, partC.Name(), cC, stat,
			got.MaxAbsDiff(ref))
	}
}

func TestMultiplyAllPartitioningPairs(t *testing.T) {
	const p, m, n, k = 4, 23, 29, 31 // prime dims exercise ragged tiles
	parts := testParts(p)
	for nameA, partA := range parts {
		for nameB, partB := range parts {
			for nameC, partC := range parts {
				name := fmt.Sprintf("A=%s/B=%s/C=%s", nameA, nameB, nameC)
				t.Run(name, func(t *testing.T) {
					runMultiply(t, p, m, n, k, partA, partB, partC, 1, 1, 1, StationaryAuto)
				})
			}
		}
	}
}

func TestMultiplyAllStationaryStrategies(t *testing.T) {
	const p, m, n, k = 4, 20, 24, 28
	parts := testParts(p)
	for _, stat := range []Stationary{StationaryA, StationaryB, StationaryC} {
		for nameA, partA := range parts {
			name := fmt.Sprintf("%v/A=%s", stat, nameA)
			t.Run(name, func(t *testing.T) {
				runMultiply(t, p, m, n, k, partA, distmat.ColBlock{}, distmat.RowBlock{}, 1, 1, 1, stat)
			})
		}
	}
}

func TestMultiplyWithReplication(t *testing.T) {
	// 12 PEs allow replication factors 1, 2, 3, 4, 6, 12.
	const p, m, n, k = 12, 26, 22, 30
	cases := []struct {
		cA, cB, cC int
		stat       Stationary
	}{
		{2, 1, 1, StationaryC},
		{1, 2, 1, StationaryC},
		{1, 1, 2, StationaryC}, // stationary C replicated: 1/c k-split
		{1, 1, 3, StationaryC},
		{2, 2, 1, StationaryB},
		{1, 3, 1, StationaryB}, // stationary B replicated: 1/c m-split
		{3, 1, 1, StationaryA}, // stationary A replicated: 1/c n-split
		{2, 2, 2, StationaryAuto},
		{12, 1, 1, StationaryC},   // fully replicated A
		{1, 1, 12, StationaryC},   // fully replicated C
		{4, 6, 2, StationaryAuto}, // mixed, unusual combination
	}
	for _, tc := range cases {
		name := fmt.Sprintf("cA%d_cB%d_cC%d_%v", tc.cA, tc.cB, tc.cC, tc.stat)
		t.Run(name, func(t *testing.T) {
			runMultiply(t, p, m, n, k, distmat.RowBlock{}, distmat.ColBlock{}, distmat.Block2D{},
				tc.cA, tc.cB, tc.cC, tc.stat)
		})
	}
}

func TestMultiplyMisalignedWithReplication(t *testing.T) {
	const p, m, n, k = 4, 23, 29, 31
	mis := distmat.Custom{TileRows: 5, TileCols: 13, ProcRows: 2, ProcCols: 1}
	for _, stat := range []Stationary{StationaryA, StationaryB, StationaryC} {
		t.Run(stat.String(), func(t *testing.T) {
			runMultiply(t, p, m, n, k, mis, distmat.RowBlock{}, distmat.ColBlock{}, 2, 1, 2, stat)
		})
	}
}

func TestMultiplyTinyAndDegenerate(t *testing.T) {
	cases := [][3]int{{1, 1, 1}, {1, 16, 16}, {16, 1, 16}, {16, 16, 1}, {2, 3, 5}}
	for _, d := range cases {
		t.Run(fmt.Sprintf("%dx%dx%d", d[0], d[1], d[2]), func(t *testing.T) {
			runMultiply(t, 4, d[0], d[1], d[2], distmat.RowBlock{}, distmat.ColBlock{}, distmat.Block2D{}, 1, 1, 1, StationaryAuto)
		})
	}
}

func TestMultiplyShapeMismatchPanics(t *testing.T) {
	w := shmem.NewWorld(2)
	a := distmat.New(w, 10, 12, distmat.RowBlock{}, 1)
	b := distmat.New(w, 13, 8, distmat.RowBlock{}, 1) // k mismatch
	c := distmat.New(w, 10, 8, distmat.RowBlock{}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch should panic")
		}
	}()
	NewProblem(c, a, b)
}

func TestResolveStationaryPicksLargest(t *testing.T) {
	w := shmem.NewWorld(2)
	newProb := func(m, n, k int) Problem {
		a := distmat.New(w, m, k, distmat.RowBlock{}, 1)
		b := distmat.New(w, k, n, distmat.RowBlock{}, 1)
		c := distmat.New(w, m, n, distmat.RowBlock{}, 1)
		return NewProblem(c, a, b)
	}
	if got := newProb(100, 4, 100).ResolveStationary(StationaryAuto); got != StationaryA {
		t.Errorf("large A should resolve to StationaryA, got %v", got)
	}
	if got := newProb(4, 4, 100).ResolveStationary(StationaryAuto); got != StationaryC {
		t.Errorf("tie between A and B should fall to StationaryC, got %v", got)
	}
	if got := newProb(4, 100, 100).ResolveStationary(StationaryAuto); got != StationaryB {
		t.Errorf("large B should resolve to StationaryB, got %v", got)
	}
	if got := newProb(100, 100, 4).ResolveStationary(StationaryAuto); got != StationaryC {
		t.Errorf("large C should resolve to StationaryC, got %v", got)
	}
	if got := newProb(10, 10, 10).ResolveStationary(StationaryB); got != StationaryB {
		t.Errorf("explicit strategy must pass through, got %v", got)
	}
}

// TestOpCoverageExactlyOnce is the core slicing invariant: across all
// ranks, the generated ops' M×K×N boxes tile the full computation space
// [0,m)×[0,k)×[0,n) exactly once — no missing and no duplicated elementary
// products — for every partitioning, replication, and stationary choice.
func TestOpCoverageExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	partsFor := func(slots int) []distmat.Partition {
		pr, pc := distmat.NearSquareFactors(slots)
		return []distmat.Partition{
			distmat.RowBlock{}, distmat.ColBlock{}, distmat.Block2D{},
			distmat.Custom{TileRows: 1 + rng.Intn(9), TileCols: 1 + rng.Intn(9), ProcRows: pr, ProcCols: pc},
		}
	}
	stats := []Stationary{StationaryA, StationaryB, StationaryC}
	for trial := 0; trial < 60; trial++ {
		p := []int{4, 6, 12}[rng.Intn(3)]
		divisors := []int{1, 2}
		if p%3 == 0 {
			divisors = append(divisors, 3)
		}
		cA := divisors[rng.Intn(len(divisors))]
		cB := divisors[rng.Intn(len(divisors))]
		cC := divisors[rng.Intn(len(divisors))]
		m, n, k := 1+rng.Intn(24), 1+rng.Intn(24), 1+rng.Intn(24)
		w := shmem.NewWorld(p)
		pa := partsFor(p / cA)[rng.Intn(4)]
		pb := partsFor(p / cB)[rng.Intn(4)]
		pc2 := partsFor(p / cC)[rng.Intn(4)]
		a := distmat.New(w, m, k, pa, cA)
		b := distmat.New(w, k, n, pb, cB)
		c := distmat.New(w, m, n, pc2, cC)
		prob := NewProblem(c, a, b)
		stat := stats[rng.Intn(3)]

		counts := make([]int, m*n*k)
		for rank := 0; rank < p; rank++ {
			for _, op := range GenerateOps(rank, prob, stat) {
				for i := op.M.Begin; i < op.M.End; i++ {
					for l := op.K.Begin; l < op.K.End; l++ {
						for j := op.N.Begin; j < op.N.End; j++ {
							counts[(i*k+l)*n+j]++
						}
					}
				}
			}
		}
		for pos, cnt := range counts {
			if cnt != 1 {
				i := pos / (k * n)
				l := pos / n % k
				j := pos % n
				t.Fatalf("trial %d (p=%d %dx%dx%d A=%s c%d B=%s c%d C=%s c%d %v): element (%d,%d,%d) covered %d times",
					trial, p, m, n, k, pa.Name(), cA, pb.Name(), cB, pc2.Name(), cC, stat, i, l, j, cnt)
			}
		}
	}
}

// Ops must stay within their tiles' bounds so slicing into views is safe.
func TestOpsWithinTileBounds(t *testing.T) {
	w := shmem.NewWorld(6)
	a := distmat.New(w, 25, 17, distmat.Custom{TileRows: 4, TileCols: 6, ProcRows: 2, ProcCols: 3}, 1)
	b := distmat.New(w, 17, 21, distmat.RowBlock{}, 1)
	c := distmat.New(w, 25, 21, distmat.ColBlock{}, 2)
	prob := NewProblem(c, a, b)
	for _, stat := range []Stationary{StationaryA, StationaryB, StationaryC} {
		for rank := 0; rank < 6; rank++ {
			for _, op := range GenerateOps(rank, prob, stat) {
				ab := a.TileBounds(op.AIdx)
				bb := b.TileBounds(op.BIdx)
				cb := c.TileBounds(op.CIdx)
				if !ab.Rows.ContainsInterval(op.M) || !ab.Cols.ContainsInterval(op.K) {
					t.Fatalf("%v rank %d: op %v exceeds A tile %v", stat, rank, op, ab)
				}
				if !bb.Rows.ContainsInterval(op.K) || !bb.Cols.ContainsInterval(op.N) {
					t.Fatalf("%v rank %d: op %v exceeds B tile %v", stat, rank, op, bb)
				}
				if !cb.Rows.ContainsInterval(op.M) || !cb.Cols.ContainsInterval(op.N) {
					t.Fatalf("%v rank %d: op %v exceeds C tile %v", stat, rank, op, cb)
				}
			}
		}
	}
}

// The iteration offset must only reorder ops, never change the set.
func TestRotatePreservesOps(t *testing.T) {
	ops := []LocalOp{}
	for i := 0; i < 5; i++ {
		ops = append(ops, LocalOp{M: index.NewInterval(i, i+1)})
	}
	rot := rotate(append([]LocalOp(nil), ops...), 2)
	if len(rot) != 5 {
		t.Fatalf("rotate changed length: %d", len(rot))
	}
	if rot[0] != ops[2] || rot[4] != ops[1] {
		t.Fatalf("rotate order wrong: %v", rot)
	}
	if got := rotate(nil, 3); len(got) != 0 {
		t.Fatal("rotate of empty should be empty")
	}
}

func TestPlanTrafficAccounting(t *testing.T) {
	w := shmem.NewWorld(4)
	a := distmat.New(w, 16, 16, distmat.RowBlock{}, 1)
	b := distmat.New(w, 16, 16, distmat.ColBlock{}, 1)
	c := distmat.New(w, 16, 16, distmat.Block2D{}, 1)
	prob := NewProblem(c, a, b)
	plan := BuildPlan(0, prob, StationaryC, 0)
	if plan.Stationary != StationaryC {
		t.Fatalf("plan stationary = %v", plan.Stationary)
	}
	if len(plan.Steps) == 0 {
		t.Fatal("plan has no steps")
	}
	// Flops across all ranks must equal 2*m*n*k.
	var total float64
	for rank := 0; rank < 4; rank++ {
		total += BuildPlan(rank, prob, StationaryC, 0).TotalFlops()
	}
	if want := 2.0 * 16 * 16 * 16; total != want {
		t.Fatalf("total flops = %g, want %g", total, want)
	}
	if plan.RemoteFetchBytes() < 0 || plan.RemoteAccumBytes() < 0 {
		t.Fatal("negative traffic")
	}
}

// Cache hits: with column-block A times row-block B stationary C on one
// PE's tile, consecutive ops reuse the same A tile; the plan must not
// re-fetch it.
func TestPlanCachesRepeatedTiles(t *testing.T) {
	w := shmem.NewWorld(4)
	a := distmat.New(w, 32, 32, distmat.RowBlock{}, 1)
	b := distmat.New(w, 32, 32, distmat.RowBlock{}, 1)
	c := distmat.New(w, 32, 32, distmat.RowBlock{}, 1)
	prob := NewProblem(c, a, b)
	plan := BuildPlan(0, prob, StationaryC, 8)
	fetches := map[cacheKey]int{}
	for _, s := range plan.Steps {
		if s.FetchB {
			fetches[cacheKey{'B', s.Op.BIdx}]++
		}
	}
	for key, n := range fetches {
		if n > 1 {
			t.Errorf("tile %v fetched %d times despite cache", key.idx, n)
		}
	}
}

func TestTileLRU(t *testing.T) {
	l := newTileLRU(2)
	k1 := cacheKey{'A', index.TileIdx{Row: 0, Col: 0}}
	k2 := cacheKey{'A', index.TileIdx{Row: 0, Col: 1}}
	k3 := cacheKey{'A', index.TileIdx{Row: 0, Col: 2}}
	if hit, _, _ := l.touch(k1); hit {
		t.Fatal("first touch should miss")
	}
	if hit, _, _ := l.touch(k1); !hit {
		t.Fatal("second touch should hit")
	}
	l.touch(k2)
	_, evicted, did := l.touch(k3) // k1 is LRU? k1 was touched twice, then k2; LRU is k1
	if !did || evicted != k1 {
		t.Fatalf("expected k1 evicted, got %v (evicted=%v)", evicted, did)
	}
	if hit, _, _ := l.touch(k2); !hit {
		t.Fatal("k2 should still be resident")
	}
}

// Sub-tile fetch mode must produce identical results for every stationary
// strategy and misaligned tilings.
func TestMultiplySubTileFetchCorrect(t *testing.T) {
	const p, m, n, k = 4, 23, 29, 31
	mis := distmat.Custom{TileRows: 5, TileCols: 13, ProcRows: 2, ProcCols: 2}
	for _, stat := range []Stationary{StationaryA, StationaryB, StationaryC} {
		t.Run(stat.String(), func(t *testing.T) {
			w := shmem.NewWorld(p)
			a := distmat.New(w, m, k, mis, 1)
			b := distmat.New(w, k, n, distmat.RowBlock{}, 1)
			c := distmat.New(w, m, n, distmat.ColBlock{}, 2)
			w.Run(func(pe rt.PE) {
				a.FillRandom(pe, 101)
				b.FillRandom(pe, 202)
			})
			ref := referenceProduct(m, n, k, 101, 202, a, b, w)
			cfg := DefaultConfig()
			cfg.Stationary = stat
			cfg.SubTileFetch = true
			cfg.SyncReplicas = true
			w.Run(func(pe rt.PE) {
				Multiply(pe, c, a, b, cfg)
			})
			var got *tile.Matrix
			w.Run(func(pe rt.PE) {
				if pe.Rank() == 0 {
					got = c.Gather(pe, 0)
				}
			})
			if !got.AllClose(ref, 1e-3) {
				t.Errorf("sub-tile fetch mismatch: %g", got.MaxAbsDiff(ref))
			}
		})
	}
}

// With a replicated stationary C (k-range split), sub-tile fetches move
// strictly fewer bytes than whole-tile fetches of boundary tiles.
func TestSubTilePlanMovesFewerBytes(t *testing.T) {
	w := shmem.NewWorld(4)
	// A's row-block tiles span the full k dimension, but C is replicated
	// (c=2) so each replica's k-share needs only half of every A tile:
	// whole-tile fetches over-fetch 2x where sub-tile fetches do not.
	a := distmat.New(w, 64, 60, distmat.RowBlock{}, 1)
	b := distmat.New(w, 60, 64, distmat.RowBlock{}, 1)
	c := distmat.New(w, 64, 64, distmat.Block2D{}, 2)
	prob := NewProblem(c, a, b)
	fullBytes, subBytes := 0, 0
	for rank := 0; rank < 4; rank++ {
		fullBytes += BuildPlanMode(rank, prob, StationaryC, 0, false).RemoteFetchBytes()
		subBytes += BuildPlanMode(rank, prob, StationaryC, 0, true).RemoteFetchBytes()
	}
	if subBytes >= fullBytes {
		t.Fatalf("sub-tile fetches (%d B) should undercut full-tile fetches (%d B) on misaligned k-split tiles",
			subBytes, fullBytes)
	}
}

// And conversely: when many ops share one tile, full-tile fetching with
// the cache can move fewer bytes than per-op sub-tile fetching.
func TestFullTilePlanWinsOnReuse(t *testing.T) {
	w := shmem.NewWorld(4)
	// Column-block A against a finely tiled B: each fetched B tile is
	// reused across the ops of the same stationary tile.
	a := distmat.New(w, 48, 48, distmat.RowBlock{}, 1)
	b := distmat.New(w, 48, 48, distmat.Custom{TileRows: 48, TileCols: 12, ProcRows: 1, ProcCols: 4}, 1)
	c := distmat.New(w, 48, 48, distmat.Custom{TileRows: 6, TileCols: 12, ProcRows: 4, ProcCols: 1}, 1)
	prob := NewProblem(c, a, b)
	fullBytes, subBytes := 0, 0
	for rank := 0; rank < 4; rank++ {
		fullBytes += BuildPlanMode(rank, prob, StationaryC, DefaultCacheTiles, false).RemoteFetchBytes()
		subBytes += BuildPlanMode(rank, prob, StationaryC, DefaultCacheTiles, true).RemoteFetchBytes()
	}
	if fullBytes > subBytes {
		t.Fatalf("full-tile+cache (%d B) should beat sub-tile (%d B) when ops share tiles",
			fullBytes, subBytes)
	}
}

// The universal algorithm must also handle block-cyclic 1-D distributions
// (many small tiles cycling over slots).
func TestMultiplyCyclicDistributions(t *testing.T) {
	runMultiply(t, 4, 27, 25, 29, distmat.RowCyclic{BlockRows: 3}, distmat.ColCyclic{BlockCols: 2},
		distmat.Block2D{}, 1, 1, 1, StationaryAuto)
	runMultiply(t, 4, 27, 25, 29, distmat.RowCyclic{}, distmat.RowBlock{},
		distmat.ColCyclic{BlockCols: 4}, 1, 1, 1, StationaryB)
}

// Execution must be correct for every configuration-knob setting, not just
// the defaults: degenerate prefetch, serialized chains, a tiny tile cache,
// and combinations thereof.
func TestMultiplyConfigKnobs(t *testing.T) {
	const p, m, n, k = 4, 25, 21, 33
	knobs := []Config{
		{PrefetchDepth: 1, MaxInflight: 1, CacheTiles: 1},
		{PrefetchDepth: 8, MaxInflight: 2, CacheTiles: 2},
		{PrefetchDepth: 1, MaxInflight: 16, CacheTiles: 64},
		{PrefetchDepth: 3, MaxInflight: 4, CacheTiles: 8, SubTileFetch: true},
		{PrefetchDepth: 2, MaxInflight: 1, CacheTiles: 8, KernelWorkers: 4},
		{PrefetchDepth: 2, MaxInflight: 4, CacheTiles: 8, KernelWorkers: 3, SubTileFetch: true},
	}
	w := shmem.NewWorld(p)
	a := distmat.New(w, m, k, distmat.Block2D{}, 1)
	b := distmat.New(w, k, n, distmat.RowBlock{}, 1)
	w.Run(func(pe rt.PE) {
		a.FillRandom(pe, 301)
		b.FillRandom(pe, 302)
	})
	ref := referenceProduct(m, n, k, 301, 302, a, b, w)
	for i, cfg := range knobs {
		c := distmat.New(w, m, n, distmat.ColBlock{}, 1)
		cfg.SyncReplicas = true
		w.Run(func(pe rt.PE) {
			Multiply(pe, c, a, b, cfg)
		})
		var got *tile.Matrix
		w.Run(func(pe rt.PE) {
			if pe.Rank() == 0 {
				got = c.Gather(pe, 0)
			}
		})
		if !got.AllClose(ref, 1e-3) {
			t.Errorf("knob set %d (%+v): mismatch %g", i, knobs[i], got.MaxAbsDiff(ref))
		}
	}
}

// KernelWorkers > 1 must route each step's local GEMM through the
// shared-pack parallel kernel and still match the serial reference on a
// problem large enough that the parallel path actually engages (the tiny
// knob-matrix above falls back to the single-goroutine kernel).
func TestMultiplyKernelWorkersParallelPath(t *testing.T) {
	const p, m, n, k = 2, 192, 192, 192
	w := shmem.NewWorld(p)
	a := distmat.New(w, m, k, distmat.RowBlock{}, 1)
	b := distmat.New(w, k, n, distmat.RowBlock{}, 1)
	w.Run(func(pe rt.PE) {
		a.FillRandom(pe, 401)
		b.FillRandom(pe, 402)
	})
	ref := referenceProduct(m, n, k, 401, 402, a, b, w)
	for _, workers := range []int{2, 4} {
		c := distmat.New(w, m, n, distmat.Block2D{}, 1)
		cfg := DefaultConfig()
		cfg.KernelWorkers = workers
		w.Run(func(pe rt.PE) {
			Multiply(pe, c, a, b, cfg)
		})
		var got *tile.Matrix
		w.Run(func(pe rt.PE) {
			if pe.Rank() == 0 {
				got = c.Gather(pe, 0)
			}
		})
		if !got.AllClose(ref, 1e-3) {
			t.Errorf("KernelWorkers=%d: mismatch %g", workers, got.MaxAbsDiff(ref))
		}
	}
}

// Fuzz-style end-to-end test: random partitionings (including cyclic and
// misaligned custom), random replication, random stationary strategy, and
// random fetch mode, always verified against the serial reference.
func TestMultiplyRandomizedEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	partFor := func(slots int) distmat.Partition {
		pr, pc := distmat.NearSquareFactors(slots)
		switch rng.Intn(6) {
		case 0:
			return distmat.RowBlock{}
		case 1:
			return distmat.ColBlock{}
		case 2:
			return distmat.Block2D{}
		case 3:
			return distmat.RowCyclic{BlockRows: 1 + rng.Intn(4)}
		case 4:
			return distmat.ColCyclic{BlockCols: 1 + rng.Intn(4)}
		default:
			return distmat.Custom{TileRows: 1 + rng.Intn(10), TileCols: 1 + rng.Intn(10), ProcRows: pr, ProcCols: pc}
		}
	}
	for trial := 0; trial < 20; trial++ {
		p := []int{2, 4, 6}[rng.Intn(3)]
		divs := []int{1}
		for d := 2; d <= p; d++ {
			if p%d == 0 {
				divs = append(divs, d)
			}
		}
		cA := divs[rng.Intn(len(divs))]
		cB := divs[rng.Intn(len(divs))]
		cC := divs[rng.Intn(len(divs))]
		m, n, k := 1+rng.Intn(30), 1+rng.Intn(30), 1+rng.Intn(30)
		w := shmem.NewWorld(p)
		a := distmat.New(w, m, k, partFor(p/cA), cA)
		b := distmat.New(w, k, n, partFor(p/cB), cB)
		c := distmat.New(w, m, n, partFor(p/cC), cC)
		w.Run(func(pe rt.PE) {
			a.FillRandom(pe, int64(trial))
			b.FillRandom(pe, int64(trial)+1000)
		})
		ref := referenceProduct(m, n, k, 0, 0, a, b, w)
		cfg := DefaultConfig()
		cfg.Stationary = []Stationary{StationaryAuto, StationaryA, StationaryB, StationaryC}[rng.Intn(4)]
		cfg.SubTileFetch = rng.Intn(2) == 0
		cfg.SyncReplicas = true
		w.Run(func(pe rt.PE) {
			Multiply(pe, c, a, b, cfg)
		})
		var got *tile.Matrix
		w.Run(func(pe rt.PE) {
			if pe.Rank() == 0 {
				got = c.Gather(pe, 0)
			}
		})
		if !got.AllClose(ref, 1e-3) {
			t.Fatalf("trial %d (p=%d %dx%dx%d A=%s c%d B=%s c%d C=%s c%d %v subtile=%v): mismatch %g",
				trial, p, m, n, k, a.Partition().Name(), cA, b.Partition().Name(), cB,
				c.Partition().Name(), cC, cfg.Stationary, cfg.SubTileFetch, got.MaxAbsDiff(ref))
		}
	}
}

// Distributed SpMM must match the dense reference for every partitioning,
// replication, and stationary combination (sampled).
func TestMultiplySparseCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	const p, m, n, k = 4, 26, 22, 30
	for _, tc := range []struct {
		density    float64
		pa, pb, pc distmat.Partition
		cA, cB, cC int
		stat       Stationary
	}{
		{0.15, distmat.RowBlock{}, distmat.ColBlock{}, distmat.Block2D{}, 1, 1, 1, StationaryC},
		{0.3, distmat.Block2D{}, distmat.RowBlock{}, distmat.RowBlock{}, 1, 1, 1, StationaryB},
		{0.1, distmat.ColBlock{}, distmat.RowBlock{}, distmat.ColBlock{}, 2, 1, 2, StationaryC},
		{0.5, distmat.Custom{TileRows: 7, TileCols: 9, ProcRows: 2, ProcCols: 2}, distmat.RowBlock{}, distmat.Block2D{}, 1, 1, 1, StationaryA},
		{0.0, distmat.RowBlock{}, distmat.ColBlock{}, distmat.Block2D{}, 1, 1, 1, StationaryC}, // all-zero A
	} {
		global := tile.RandomCSR(rng, m, k, tc.density)
		w := shmem.NewWorld(p)
		a := distmat.NewSparse(w, global, tc.pa, tc.cA)
		b := distmat.New(w, k, n, tc.pb, tc.cB)
		c := distmat.New(w, m, n, tc.pc, tc.cC)
		w.Run(func(pe rt.PE) {
			b.FillRandom(pe, 77)
		})
		var ref, got *tile.Matrix
		w.Run(func(pe rt.PE) {
			if pe.Rank() == 0 {
				fullB := b.Gather(pe, 0)
				ref = tile.New(m, n)
				tile.SpMM(ref, global, fullB)
				// The distributed sparse matrix must hold the same data.
				if !a.Gather(pe, 0).Equal(global.ToDense()) {
					t.Error("sparse scatter corrupted A")
				}
			}
		})
		cfg := DefaultConfig()
		cfg.Stationary = tc.stat
		cfg.SyncReplicas = true
		w.Run(func(pe rt.PE) {
			MultiplySparse(pe, c, a, b, cfg)
		})
		w.Run(func(pe rt.PE) {
			if pe.Rank() == 0 {
				got = c.Gather(pe, 0)
			}
		})
		if !got.AllClose(ref, 1e-3) {
			t.Errorf("density %g %v: sparse multiply mismatch %g", tc.density, tc.stat, got.MaxAbsDiff(ref))
		}
	}
}
