package universal

import (
	"encoding/json"
	"fmt"
	"sort"

	"slicing/internal/distmat"
	"slicing/internal/index"
	rt "slicing/internal/runtime"
)

// MatrixKey is the canonical structural fingerprint of one distributed
// matrix for plan keying: everything the slicing pass reads from a matrix —
// global shape, effective tile shape, replication, and the tile→slot
// ownership table (folded into OwnerHash) — and nothing it doesn't (the
// Partition implementation's identity, the backing segment, the data).
// Two matrices with equal MatrixKeys are indistinguishable to BuildPlan:
// a RowBlock partition and a Custom descriptor that reproduces the same
// grid and ownership canonicalize to the same key.
type MatrixKey struct {
	Rows, Cols int
	// TileRows/TileCols are the shape of tile (0,0) — for the uniform
	// clipped-edge grids distmat builds, this plus the global shape
	// determines every tile's bounds.
	TileRows, TileCols int
	Replication        int
	// OwnerHash is an FNV-1a fold of the grid shape and the row-major
	// tile→owner-slot table, distinguishing partitions that share a grid
	// but assign tiles differently (blocked vs cyclic).
	OwnerHash uint64
}

// PlanKey canonically identifies one compiled plan: the world size, the
// resolved stationary choice, the Config fields that alter plan structure
// (CacheTiles changes fetch decisions, SubTileFetch changes step shapes),
// and the three operands' structural fingerprints. Purely-runtime Config
// fields (PrefetchDepth, MaxInflight, KernelWorkers, Pool, reduce options)
// deliberately do not appear: they tune execution of a plan, not the plan.
// PlanKey is comparable, so cache lookups allocate nothing.
type PlanKey struct {
	NumPE      int
	Stationary Stationary
	CacheTiles int
	SubTile    bool
	// Excluded fingerprints Config.Exclude — the set of ranks the plan
	// assigns no work (their ops are adopted by the survivors). 0 means no
	// exclusions, so plans serialized before the recovery subsystem existed
	// deserialize to the same key they were compiled under. Distinct
	// excluded sets get distinct keys, which is what makes repair plans
	// ordinary PlanCache entries: a second crash of the same rank hits the
	// cache instead of re-running the slicing pass.
	Excluded uint64
	A, B, C  MatrixKey
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvMix folds one 64-bit word into an FNV-1a running hash, byte by byte.
func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// matrixKeyOf computes a matrix's canonical fingerprint. It allocates
// nothing, so key computation stays off the Multiply hot path's allocation
// budget.
func matrixKeyOf(m *distmat.Matrix) MatrixKey {
	tr, tc := m.GridShape()
	r0, c0 := m.TileBounds(index.TileIdx{}).Shape()
	h := fnvMix(fnvMix(uint64(fnvOffset64), uint64(tr)), uint64(tc))
	for r := 0; r < tr; r++ {
		for c := 0; c < tc; c++ {
			h = fnvMix(h, uint64(m.OwnerSlot(index.TileIdx{Row: r, Col: c})))
		}
	}
	return MatrixKey{
		Rows: m.Rows(), Cols: m.Cols(),
		TileRows: r0, TileCols: c0,
		Replication: m.Replication(),
		OwnerHash:   h,
	}
}

// PlanKeyOf computes the canonical cache key for (problem, config). It
// resolves StationaryAuto against the problem's shapes and normalizes
// CacheTiles, so every spelling of the same effective configuration maps to
// the same key. Allocation-free.
func PlanKeyOf(prob Problem, cfg Config) PlanKey {
	ct := cfg.CacheTiles
	if ct <= 0 {
		ct = DefaultCacheTiles
	}
	p := prob.C.World().NumPE()
	return PlanKey{
		NumPE:      p,
		Stationary: prob.ResolveStationary(cfg.Stationary),
		CacheTiles: ct,
		SubTile:    cfg.SubTileFetch,
		Excluded:   excludedHashOf(cfg.Exclude, p),
		A:          matrixKeyOf(prob.A),
		B:          matrixKeyOf(prob.B),
		C:          matrixKeyOf(prob.C),
	}
}

// excludedHashOf canonicalizes an excluded-rank set into the key's
// Excluded fingerprint: 0 for the empty set, otherwise an FNV-1a fold of
// the sorted distinct ranks, so permutations and duplicates spell the same
// key. Out-of-range ranks panic — an exclusion list that names ranks the
// world doesn't have is a membership bug, not a cache miss. Allocation-free
// when exclude is already sorted and duplicate-free (the form
// runtime.Membership.Excluded returns), keeping PlanKeyOf off the serving
// hot path's allocation budget.
func excludedHashOf(exclude []int, p int) uint64 {
	if len(exclude) == 0 {
		return 0
	}
	sorted := true
	for i, r := range exclude {
		if r < 0 || r >= p {
			panic(fmt.Sprintf("universal: excluded rank %d outside world of %d PEs", r, p))
		}
		if i > 0 && r <= exclude[i-1] {
			sorted = false
		}
	}
	if !sorted {
		exclude = normalizeExclude(exclude)
	}
	h := uint64(fnvOffset64)
	for _, r := range exclude {
		h = fnvMix(h, uint64(r))
	}
	return h
}

// normalizeExclude returns the sorted duplicate-free copy of exclude.
func normalizeExclude(exclude []int) []int {
	out := append([]int(nil), exclude...)
	sort.Ints(out)
	n := 0
	for i, r := range out {
		if i == 0 || r != out[n-1] {
			out[n] = r
			n++
		}
	}
	return out[:n]
}

// CompiledPlan is the immutable, world-level compiled artifact of the §4.1
// slicing pass: every rank's Step sequence plus the precomputed executor
// fetch schedule (the plan-time tile-LRU replay) for each. Once compiled it
// is never mutated, so any number of concurrent multiplies — different PEs
// of one collective call, or successive serving requests — may execute it
// simultaneously. Plans depend only on structure (shapes, partitionings,
// replication, world size), never on matrix contents or identity, so one
// CompiledPlan serves every problem whose PlanKey matches.
type CompiledPlan struct {
	Key   PlanKey
	Plans []Plan // indexed by rank
	// scheds mirrors Plans: the executor's precomputed tile-LRU replay.
	// Recomputed deterministically from (Plans, Key.CacheTiles) after
	// deserialization.
	scheds []fetchSchedule
}

// Stationary returns the resolved data-movement strategy the plan encodes.
func (cp *CompiledPlan) Stationary() Stationary { return cp.Key.Stationary }

// Steps returns the total step count across all ranks.
func (cp *CompiledPlan) Steps() int {
	n := 0
	for i := range cp.Plans {
		n += len(cp.Plans[i].Steps)
	}
	return n
}

// CompilePlans runs the slicing pass for every rank and freezes the result
// into a CompiledPlan. Rank plans are independent, so they fan out across a
// worker pool exactly like the estimator's plan replay.
//
// When cfg.Exclude names ranks, the compiled plan covers the shrunken
// world: excluded ranks get empty plans (they still barrier, so the
// collective shape is unchanged) and their ops are adopted round-robin by
// the survivors with locality re-resolved per adopter — the plan-repair
// primitive the recovery subsystem builds on. At least one rank must
// survive.
func CompilePlans(prob Problem, cfg Config) *CompiledPlan {
	key := PlanKeyOf(prob, cfg)
	cp := &CompiledPlan{
		Key:    key,
		Plans:  make([]Plan, key.NumPE),
		scheds: make([]fetchSchedule, key.NumPE),
	}
	if key.Excluded == 0 {
		rt.ForEachIndex(key.NumPE, func(rank int) {
			cp.Plans[rank] = BuildPlanMode(rank, prob, key.Stationary, key.CacheTiles, key.SubTile)
			cp.scheds[rank] = planFetchSchedule(cp.Plans[rank], key.CacheTiles)
		})
		return cp
	}
	excl := normalizeExclude(cfg.Exclude)
	dead := make([]bool, key.NumPE)
	for _, r := range excl {
		dead[r] = true
	}
	survivors := make([]int, 0, key.NumPE-len(excl))
	for r := 0; r < key.NumPE; r++ {
		if !dead[r] {
			survivors = append(survivors, r)
		}
	}
	if len(survivors) == 0 {
		panic(fmt.Sprintf("universal: all %d ranks excluded", key.NumPE))
	}
	rt.ForEachIndex(key.NumPE, func(rank int) {
		if dead[rank] {
			cp.Plans[rank] = Plan{Rank: rank, Stationary: key.Stationary}
		} else {
			ops := GenerateOps(rank, prob, key.Stationary)
			ops = append(ops, adoptedOps(rank, prob, key.Stationary, excl, survivors)...)
			cp.Plans[rank] = buildStepsFromOps(rank, prob, key.Stationary, ops, key.CacheTiles, key.SubTile)
		}
		cp.scheds[rank] = planFetchSchedule(cp.Plans[rank], key.CacheTiles)
	})
	return cp
}

// adoptedOps returns the slice of the excluded ranks' ops that rank adopts
// under the deterministic round-robin redistribution: the excluded ranks'
// generated ops, concatenated in (excluded rank, op index) order, dealt
// one at a time across the sorted survivors. Every rank — with no
// communication — computes the same global deal, which is what lets both
// the whole-world compile above and the per-rank repair path hand out
// consistent assignments. Ops adopted by a survivor in another replica
// group still land each elementary product exactly once: A/B replica
// reads are identical copies, and ReduceReplicas sums whichever replica
// slot an accumulate reached into the origin.
func adoptedOps(rank int, prob Problem, stat Stationary, excl, survivors []int) []LocalOp {
	pos := -1
	for i, s := range survivors {
		if s == rank {
			pos = i
			break
		}
	}
	if pos < 0 {
		return nil
	}
	var out []LocalOp
	next := 0
	for _, f := range excl {
		for _, op := range GenerateOps(f, prob, stat) {
			if next%len(survivors) == pos {
				out = append(out, op)
			}
			next++
		}
	}
	return out
}

// buildRankPlan builds one rank's plan honoring cfg.Exclude — the
// per-rank (cacheless) counterpart of CompilePlans' exclusion path, used
// by MultiplyAccumulate when no plan cache is configured. cfg must
// already have defaults applied.
func buildRankPlan(rank int, prob Problem, cfg Config) Plan {
	if len(cfg.Exclude) == 0 {
		return BuildPlanMode(rank, prob, cfg.Stationary, cfg.CacheTiles, cfg.SubTileFetch)
	}
	p := prob.C.World().NumPE()
	excl := normalizeExclude(cfg.Exclude)
	stat := prob.ResolveStationary(cfg.Stationary)
	dead := make([]bool, p)
	for _, r := range excl {
		if r < 0 || r >= p {
			panic(fmt.Sprintf("universal: excluded rank %d outside world of %d PEs", r, p))
		}
		dead[r] = true
	}
	if dead[rank] {
		return Plan{Rank: rank, Stationary: stat}
	}
	survivors := make([]int, 0, p-len(excl))
	for r := 0; r < p; r++ {
		if !dead[r] {
			survivors = append(survivors, r)
		}
	}
	ops := GenerateOps(rank, prob, stat)
	ops = append(ops, adoptedOps(rank, prob, stat, excl, survivors)...)
	return buildStepsFromOps(rank, prob, stat, ops, cfg.CacheTiles, cfg.SubTileFetch)
}

// compiledPlanJSON is the serialized form: the key and the step schedules.
// Fetch schedules are derived data and are recompiled on load.
type compiledPlanJSON struct {
	Key   PlanKey `json:"key"`
	Plans []Plan  `json:"plans"`
}

// MarshalJSON serializes the compiled plan so a tuned plan survives process
// restarts (load it back with UnmarshalJSON and seed a PlanCache via Put).
func (cp *CompiledPlan) MarshalJSON() ([]byte, error) {
	return json.Marshal(compiledPlanJSON{Key: cp.Key, Plans: cp.Plans})
}

// UnmarshalJSON deserializes and validates a compiled plan, then recompiles
// the per-rank fetch schedules. Malformed input — wrong rank count,
// out-of-range tile indices or owner ranks, negative extents — returns an
// error rather than panicking later in execution; the package fuzz target
// hammers this path.
func (cp *CompiledPlan) UnmarshalJSON(data []byte) error {
	var raw compiledPlanJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	out := CompiledPlan{Key: raw.Key, Plans: raw.Plans}
	if err := out.validate(); err != nil {
		return err
	}
	out.scheds = make([]fetchSchedule, len(out.Plans))
	for r := range out.Plans {
		out.scheds[r] = planFetchSchedule(out.Plans[r], out.Key.CacheTiles)
	}
	*cp = out
	return nil
}

// gridShapeOf derives a matrix key's tile-grid shape from its global and
// first-tile shapes (uniform clipped-edge grids).
func gridShapeOf(mk MatrixKey) (tr, tc int, err error) {
	if mk.Rows <= 0 || mk.Cols <= 0 || mk.TileRows <= 0 || mk.TileCols <= 0 {
		return 0, 0, fmt.Errorf("universal: invalid matrix key shape %dx%d tiles %dx%d",
			mk.Rows, mk.Cols, mk.TileRows, mk.TileCols)
	}
	return (mk.Rows + mk.TileRows - 1) / mk.TileRows, (mk.Cols + mk.TileCols - 1) / mk.TileCols, nil
}

func checkInterval(iv index.Interval, what string) error {
	if iv.End < iv.Begin || iv.Begin < 0 {
		return fmt.Errorf("universal: invalid %s interval [%d,%d)", what, iv.Begin, iv.End)
	}
	return nil
}

// validate checks the structural invariants execution relies on.
func (cp *CompiledPlan) validate() error {
	k := cp.Key
	if k.NumPE <= 0 || k.NumPE > 1<<20 {
		return fmt.Errorf("universal: compiled plan has invalid world size %d", k.NumPE)
	}
	if len(cp.Plans) != k.NumPE {
		return fmt.Errorf("universal: compiled plan has %d rank plans for %d PEs", len(cp.Plans), k.NumPE)
	}
	if k.CacheTiles <= 0 {
		return fmt.Errorf("universal: compiled plan has non-normalized cache capacity %d", k.CacheTiles)
	}
	if k.Stationary != StationaryA && k.Stationary != StationaryB && k.Stationary != StationaryC {
		return fmt.Errorf("universal: compiled plan has unresolved stationary %v", k.Stationary)
	}
	for _, mk := range [...]MatrixKey{k.A, k.B, k.C} {
		if mk.Replication <= 0 || k.NumPE%mk.Replication != 0 {
			return fmt.Errorf("universal: replication %d does not divide %d PEs", mk.Replication, k.NumPE)
		}
		if _, _, err := gridShapeOf(mk); err != nil {
			return err
		}
	}
	atr, atc, _ := gridShapeOf(k.A)
	btr, btc, _ := gridShapeOf(k.B)
	ctr, ctc, _ := gridShapeOf(k.C)
	for r := range cp.Plans {
		pl := &cp.Plans[r]
		if pl.Rank != r {
			return fmt.Errorf("universal: plan slot %d claims rank %d", r, pl.Rank)
		}
		if pl.Stationary != k.Stationary {
			return fmt.Errorf("universal: rank %d plan stationary %v != key %v", r, pl.Stationary, k.Stationary)
		}
		for i, s := range pl.Steps {
			op := s.Op
			if op.AIdx.Row < 0 || op.AIdx.Row >= atr || op.AIdx.Col < 0 || op.AIdx.Col >= atc {
				return fmt.Errorf("universal: rank %d step %d A tile %v outside %dx%d grid", r, i, op.AIdx, atr, atc)
			}
			if op.BIdx.Row < 0 || op.BIdx.Row >= btr || op.BIdx.Col < 0 || op.BIdx.Col >= btc {
				return fmt.Errorf("universal: rank %d step %d B tile %v outside %dx%d grid", r, i, op.BIdx, btr, btc)
			}
			if op.CIdx.Row < 0 || op.CIdx.Row >= ctr || op.CIdx.Col < 0 || op.CIdx.Col >= ctc {
				return fmt.Errorf("universal: rank %d step %d C tile %v outside %dx%d grid", r, i, op.CIdx, ctr, ctc)
			}
			for _, iv := range [...]struct {
				iv   index.Interval
				name string
			}{{op.M, "M"}, {op.K, "K"}, {op.N, "N"}} {
				if err := checkInterval(iv.iv, iv.name); err != nil {
					return fmt.Errorf("universal: rank %d step %d: %w", r, i, err)
				}
			}
			for _, src := range [...]int{s.ASrc, s.BSrc, s.CDst} {
				if src < 0 || src >= k.NumPE {
					return fmt.Errorf("universal: rank %d step %d names rank %d of %d", r, i, src, k.NumPE)
				}
			}
			if s.ABytes < 0 || s.BBytes < 0 || s.AccumBytes < 0 {
				return fmt.Errorf("universal: rank %d step %d has negative byte counts", r, i)
			}
			if s.SubTile != k.SubTile {
				return fmt.Errorf("universal: rank %d step %d fetch mode disagrees with key", r, i)
			}
		}
	}
	return nil
}

// Matches reports whether the compiled plan is valid for (problem, config):
// the problem/config pair canonicalizes to the plan's key.
func (cp *CompiledPlan) Matches(prob Problem, cfg Config) bool {
	return PlanKeyOf(prob, cfg) == cp.Key
}

// ExecuteCompiled runs the calling rank's slice of a compiled plan with the
// precompiled fetch schedule — the plan-cache hit path of Multiply, which
// re-runs zero slicing work. The problem must match the plan's key (checked
// in MultiplyAccumulate's cache path by construction; direct callers can
// assert with Matches). It performs no collective synchronization; callers
// barrier afterwards, exactly like ExecutePlan — and shares ExecutePlan's
// error contract: the returned error is the rank's first fatal one-sided
// fault after retries, with pooled buffers balanced either way.
func ExecuteCompiled(pe rt.PE, prob Problem, cp *CompiledPlan, cfg Config) error {
	rank := pe.Rank()
	return executePlanSched(pe, prob, cp.Plans[rank], &cp.scheds[rank], cfg.withDefaults())
}

// ExecuteCompiledBatch executes several compiled plans as one fused group:
// a single worker crew per PE drains every plan's GEMM→accumulate chains
// back-to-back, so a batch of small multiplies pays one crew spawn and one
// drain instead of one per request — the serving layer's grouped-plan
// batching. probs[i] must match cps[i], and the problems' result matrices
// must be pairwise distinct from each other and from every operand (their
// interleaved one-sided accumulates are unsynchronized and must commute).
// Performs no collective synchronization; callers barrier afterwards.
//
// Fault semantics: the fused plans share one crew and one abort flag, so
// this rank's first fatal fault stops dispatch across the WHOLE batch and
// is returned once — the serving layer fails every fused request on it,
// since there is no telling which plans' accumulates had already landed.
func ExecuteCompiledBatch(pe rt.PE, probs []Problem, cps []*CompiledPlan, cfg Config) error {
	if len(probs) != len(cps) {
		panic("universal: ExecuteCompiledBatch problem/plan count mismatch")
	}
	cfg = cfg.withDefaults()
	rank := pe.Rank()
	rt.PushFaultScope(pe)
	defer rt.PopFaultScope(pe)
	rt.SetOpDeadline(pe, cfg.Retry.OpTimeout)
	defer rt.SetOpDeadline(pe, 0)
	var box errBox
	tasks, wg := startChainCrew(pe, cfg, &box)
	finishers := make([]func(), len(cps))
	for i, cp := range cps {
		finishers[i] = feedPlanSched(pe, probs[i], cp.Plans[rank], &cp.scheds[rank], cfg, tasks, &box, nil)
	}
	close(tasks)
	wg.Wait()
	for _, finish := range finishers {
		finish()
	}
	return box.err()
}
