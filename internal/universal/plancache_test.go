package universal

import (
	"fmt"
	"sync"
	"testing"

	"slicing/internal/distmat"
	rt "slicing/internal/runtime"
	"slicing/internal/shmem"
)

// cacheProb builds a small problem whose key varies with m, giving tests a
// cheap supply of distinct plan keys over one world size.
func cacheProb(m int) Problem {
	w := shmem.NewWorld(2)
	a := distmat.New(w, m, 8, distmat.RowBlock{}, 1)
	b := distmat.New(w, 8, 6, distmat.ColBlock{}, 1)
	c := distmat.New(w, m, 6, distmat.RowBlock{}, 1)
	return NewProblem(c, a, b)
}

func TestPlanCacheHitMissEviction(t *testing.T) {
	cache := NewPlanCache(2)
	cfg := DefaultConfig()
	probs := []Problem{cacheProb(4), cacheProb(8), cacheProb(12)}
	keys := make([]PlanKey, len(probs))
	for i, p := range probs {
		keys[i] = PlanKeyOf(p, cfg)
		cache.Put(CompilePlans(p, cfg)) // fills, then evicts keys[0]
	}
	st := cache.Stats()
	if st.Len != 2 || st.Evictions != 1 {
		t.Fatalf("after 3 puts into capacity 2: len %d evictions %d", st.Len, st.Evictions)
	}
	if _, ok := cache.Get(keys[0]); ok {
		t.Fatal("LRU victim still cached")
	}
	if _, ok := cache.Get(keys[1]); !ok {
		t.Fatal("recent entry missing")
	}
	if _, ok := cache.Get(keys[2]); !ok {
		t.Fatal("most recent entry missing")
	}
	st = cache.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("counters: hits %d misses %d", st.Hits, st.Misses)
	}
	if pct := st.HitPct(); pct < 66 || pct > 67 {
		t.Fatalf("hit pct %g", pct)
	}

	// Touching keys[1] makes keys[2] the LRU victim of the next insert.
	cache.Get(keys[1])
	cache.Put(CompilePlans(probs[0], cfg))
	if _, ok := cache.Get(keys[2]); ok {
		t.Fatal("LRU order ignored recency: untouched entry survived")
	}
	if _, ok := cache.Get(keys[1]); !ok {
		t.Fatal("recently touched entry evicted")
	}
}

func TestPlanCacheCapacityOne(t *testing.T) {
	cache := NewPlanCache(1)
	cfg := DefaultConfig()
	p1, p2 := cacheProb(4), cacheProb(8)
	cp1 := cache.GetOrCompile(p1, cfg)
	if got := cache.GetOrCompile(p1, cfg); got != cp1 {
		t.Fatal("capacity-1 cache did not serve the hit")
	}
	cache.GetOrCompile(p2, cfg)
	if cache.Len() != 1 {
		t.Fatalf("capacity-1 cache holds %d entries", cache.Len())
	}
	if _, ok := cache.Get(PlanKeyOf(p1, cfg)); ok {
		t.Fatal("capacity-1 cache kept the evicted entry")
	}
	// Re-inserting the same key must refresh, not duplicate.
	cp2 := CompilePlans(p2, cfg)
	cache.Put(cp2)
	if cache.Len() != 1 {
		t.Fatalf("refresh grew the cache to %d", cache.Len())
	}
	if got, _ := cache.Get(cp2.Key); got != cp2 {
		t.Fatal("refresh did not replace the stored plan")
	}
}

func TestPlanCacheCapacityZero(t *testing.T) {
	for _, capacity := range []int{0, -3} {
		t.Run(fmt.Sprintf("capacity=%d", capacity), func(t *testing.T) {
			cache := NewPlanCache(capacity)
			cfg := DefaultConfig()
			prob := cacheProb(4)
			cp := cache.GetOrCompile(prob, cfg)
			if cp == nil {
				t.Fatal("disabled cache must still compile")
			}
			if cache.Len() != 0 {
				t.Fatalf("disabled cache stored %d entries", cache.Len())
			}
			if _, ok := cache.Get(PlanKeyOf(prob, cfg)); ok {
				t.Fatal("disabled cache served a hit")
			}
			st := cache.Stats()
			if st.Hits != 0 || st.Evictions != 0 || st.Capacity != 0 {
				t.Fatalf("disabled cache stats %+v", st)
			}
		})
	}
}

// Concurrent lookups racing evictions must stay consistent: every lookup
// either hits an immutable plan with the right key or misses; the cache
// never exceeds capacity. Run under -race.
func TestPlanCacheConcurrentLookupWhileEvicting(t *testing.T) {
	const capacity, keysN, workers, iters = 3, 8, 8, 200
	cache := NewPlanCache(capacity)
	cfg := DefaultConfig()
	plans := make([]*CompiledPlan, keysN)
	for i := range plans {
		plans[i] = CompilePlans(cacheProb(4*(i+1)), cfg)
	}
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				j := (seed*31 + i*7) % keysN
				if i%3 == 0 {
					cache.Put(plans[j])
				} else if cp, ok := cache.Get(plans[j].Key); ok {
					if cp.Key != plans[j].Key {
						t.Errorf("lookup returned plan with wrong key")
						return
					}
				}
			}
		}(wkr)
	}
	wg.Wait()
	if n := cache.Len(); n > capacity {
		t.Fatalf("cache holds %d entries over capacity %d", n, capacity)
	}
	st := cache.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
}

// GetOrCompile must coalesce concurrent identical requests onto a single
// compilation — the P ranks of one collective Multiply race here.
func TestPlanCacheCoalescesConcurrentBuilds(t *testing.T) {
	cache := NewPlanCache(4)
	cfg := DefaultConfig()
	prob := cacheProb(16)
	const callers = 8
	results := make([]*CompiledPlan, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = cache.GetOrCompile(prob, cfg)
		}(i)
	}
	wg.Wait()
	st := cache.Stats()
	if st.Builds != 1 {
		t.Fatalf("%d concurrent identical requests ran %d compilations", callers, st.Builds)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatal("coalesced callers received different plan instances")
		}
	}
}

// The serving hot path's allocation budget: computing the canonical key and
// hitting the cache must allocate nothing.
func TestPlanCacheHitZeroAllocs(t *testing.T) {
	cache := NewPlanCache(4)
	cfg := DefaultConfig()
	prob := cacheProb(8)
	cache.Put(CompilePlans(prob, cfg))
	allocs := testing.AllocsPerRun(100, func() {
		key := PlanKeyOf(prob, cfg)
		if _, ok := cache.Get(key); !ok {
			t.Fatal("unexpected miss")
		}
	})
	if allocs != 0 {
		t.Fatalf("cache hit allocates %.1f objects per lookup", allocs)
	}
}

// A cached Multiply must re-run zero slicing passes: the §4.1 pass count is
// unchanged across the hit-path call.
func TestCachedMultiplyRunsZeroSlicingWork(t *testing.T) {
	const p, m, n, k = 4, 23, 29, 31
	w := shmem.NewWorld(p)
	a := distmat.New(w, m, k, distmat.RowBlock{}, 1)
	b := distmat.New(w, k, n, distmat.ColBlock{}, 1)
	c := distmat.New(w, m, n, distmat.Block2D{}, 1)
	w.Run(func(pe rt.PE) {
		a.FillRandom(pe, 101)
		b.FillRandom(pe, 202)
	})
	cfg := DefaultConfig()
	cfg.Plans = NewPlanCache(4)

	// Cold call: exactly one compilation of p rank plans, coalesced across
	// the world's PEs.
	before := PlanBuildCount()
	w.Run(func(pe rt.PE) {
		Multiply(pe, c, a, b, cfg)
	})
	if got := PlanBuildCount() - before; got != int64(p) {
		t.Fatalf("cold cached multiply ran %d slicing passes, want %d (one per rank)", got, p)
	}

	// Warm calls: zero slicing passes, pure plan re-execution.
	before = PlanBuildCount()
	for i := 0; i < 3; i++ {
		w.Run(func(pe rt.PE) {
			Multiply(pe, c, a, b, cfg)
		})
	}
	if got := PlanBuildCount() - before; got != 0 {
		t.Fatalf("warm cached multiply ran %d slicing passes, want 0", got)
	}
	st := cfg.Plans.Stats()
	if st.Builds != 1 {
		t.Fatalf("world-wide compilations: %d, want 1", st.Builds)
	}

	// And the uncached path really does rebuild per rank per call — the
	// contrast that makes the counter meaningful.
	before = PlanBuildCount()
	uncached := cfg
	uncached.Plans = nil
	w.Run(func(pe rt.PE) {
		Multiply(pe, c, a, b, uncached)
	})
	if got := PlanBuildCount() - before; got != int64(p) {
		t.Fatalf("uncached multiply ran %d slicing passes, want %d", got, p)
	}
}

// Cached and uncached execution must agree numerically.
func TestCachedMultiplyMatchesUncached(t *testing.T) {
	const p, m, n, k = 4, 25, 22, 27
	for _, sub := range []bool{false, true} {
		t.Run(fmt.Sprintf("subtile=%v", sub), func(t *testing.T) {
			w := shmem.NewWorld(p)
			a := distmat.New(w, m, k, distmat.RowBlock{}, 1)
			b := distmat.New(w, k, n, distmat.ColBlock{}, 1)
			c := distmat.New(w, m, n, distmat.Block2D{}, 2)
			w.Run(func(pe rt.PE) {
				a.FillRandom(pe, 31)
				b.FillRandom(pe, 32)
			})
			ref := referenceProduct(m, n, k, 31, 32, a, b, w)
			cfg := DefaultConfig()
			cfg.SubTileFetch = sub
			cfg.SyncReplicas = true
			cfg.Plans = NewPlanCache(4)
			for pass := 0; pass < 2; pass++ { // miss then hit
				w.Run(func(pe rt.PE) {
					Multiply(pe, c, a, b, cfg)
				})
				w.Run(func(pe rt.PE) {
					if pe.Rank() == 0 {
						got := c.Gather(pe, 0)
						if !got.AllClose(ref, 1e-3) {
							t.Errorf("pass %d: maxdiff %g", pass, got.MaxAbsDiff(ref))
						}
					}
				})
			}
		})
	}
}

// PlansOf must hand every consumer of one world the same cache, and
// different worlds different caches.
func TestPlansOfPerWorldIdentity(t *testing.T) {
	w1, w2 := shmem.NewWorld(2), shmem.NewWorld(2)
	if PlansOf(w1) != PlansOf(w1) {
		t.Fatal("same world produced different caches")
	}
	if PlansOf(w1) == PlansOf(w2) {
		t.Fatal("different worlds share a cache")
	}
	if PlansOf(w1).Capacity() != DefaultPlanCacheSize {
		t.Fatalf("implicit cache capacity %d", PlansOf(w1).Capacity())
	}
}
