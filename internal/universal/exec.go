package universal

import (
	"sync"

	"slicing/internal/distmat"
	"slicing/internal/gpusim"
	"slicing/internal/index"
	rt "slicing/internal/runtime"
	"slicing/internal/tile"
)

// Config tunes the direct-execution engine of §4.2.
type Config struct {
	// Stationary selects the data movement strategy; StationaryAuto picks
	// the largest matrix.
	Stationary Stationary
	// PrefetchDepth is how many steps ahead tile fetches are issued
	// (get_tile_async). The paper prefetches the next two tiles.
	PrefetchDepth int
	// MaxInflight bounds concurrent GEMM+accumulate chains, the paper's
	// configurable concurrency limit trading asynchrony for memory.
	MaxInflight int
	// CacheTiles bounds the recently-fetched tile cache used for reuse
	// across consecutive ops.
	CacheTiles int
	// SubTileFetch switches to the bandwidth-optimal fetch mode: each op
	// pulls only its exact (M,K)/(K,N) slices instead of whole tiles. It
	// saves bytes for misaligned tilings and replicated stationary
	// matrices, but gives up cross-op tile reuse (see the fetch-mode
	// ablation benchmark).
	SubTileFetch bool
	// Pool supplies scratch buffers for partial results; nil allocates one
	// internally.
	Pool *gpusim.Pool
	// ReduceOrigin is the replica partial C results are reduced into when C
	// is replicated.
	ReduceOrigin int
	// SyncReplicas re-broadcasts the reduced C so every replica holds the
	// final result. The paper's algorithm only reduces; enabling this adds
	// a broadcast_replica for API convenience.
	SyncReplicas bool
}

// DefaultConfig mirrors the paper's direct-execution settings: prefetch
// depth 2 and a small bounded accumulate/GEMM concurrency.
func DefaultConfig() Config {
	return Config{
		Stationary:    StationaryAuto,
		PrefetchDepth: 2,
		MaxInflight:   4,
		CacheTiles:    DefaultCacheTiles,
	}
}

func (cfg Config) withDefaults() Config {
	if cfg.PrefetchDepth <= 0 {
		cfg.PrefetchDepth = 2
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 4
	}
	if cfg.CacheTiles <= 0 {
		cfg.CacheTiles = DefaultCacheTiles
	}
	if cfg.Pool == nil {
		cfg.Pool = gpusim.NewPool()
	}
	return cfg
}

// Multiply computes C = A·B with the universal one-sided algorithm,
// zeroing C first. Collective: every PE of the world must call it with the
// same arguments. It returns the resolved stationary strategy.
func Multiply(pe rt.PE, c, a, b *distmat.Matrix, cfg Config) Stationary {
	prob := NewProblem(c, a, b)
	c.Zero(pe) // includes a barrier
	return MultiplyAccumulate(pe, prob, cfg)
}

// MultiplyAccumulate computes C += A·B assuming C already holds the values
// to accumulate onto (zeroed for a plain product). Collective.
func MultiplyAccumulate(pe rt.PE, prob Problem, cfg Config) Stationary {
	cfg = cfg.withDefaults()
	plan := BuildPlanMode(pe.Rank(), prob, cfg.Stationary, cfg.CacheTiles, cfg.SubTileFetch)
	ExecutePlan(pe, prob, plan, cfg)
	pe.Barrier() // all one-sided updates must land before replica reduction
	if prob.C.Replication() > 1 {
		prob.C.ReduceReplicas(pe, cfg.ReduceOrigin)
		if cfg.SyncReplicas {
			prob.C.BroadcastReplica(pe, cfg.ReduceOrigin)
		}
	}
	return plan.Stationary
}

// ExecutePlan runs a per-rank plan with the §4.2 optimizations: iteration
// offset (already baked into the op order), prefetching via
// get_tile_async, asynchronous GEMM→accumulate chains with bounded
// concurrency, and pooled scratch memory. It performs no collective
// synchronization; callers barrier afterwards.
func ExecutePlan(pe rt.PE, prob Problem, plan Plan, cfg Config) {
	cfg = cfg.withDefaults()
	fetched := map[cacheKey]*distmat.TileFuture{}
	subA := map[int]*distmat.TileFuture{}
	subB := map[int]*distmat.TileFuture{}

	// issueFetches starts the async copies needed by steps [from, to).
	issueFetches := func(from, to int) {
		for i := from; i < to && i < len(plan.Steps); i++ {
			s := plan.Steps[i]
			if s.SubTile {
				if s.FetchA {
					subA[i] = prob.A.GetSubTileAsync(pe, s.Op.AIdx, distmat.LocalReplica,
						index.Rect{Rows: s.Op.M, Cols: s.Op.K})
				}
				if s.FetchB {
					subB[i] = prob.B.GetSubTileAsync(pe, s.Op.BIdx, distmat.LocalReplica,
						index.Rect{Rows: s.Op.K, Cols: s.Op.N})
				}
				continue
			}
			if s.FetchA {
				key := cacheKey{'A', s.Op.AIdx}
				fetched[key] = prob.A.GetTileAsync(pe, s.Op.AIdx, distmat.LocalReplica)
			}
			if s.FetchB {
				key := cacheKey{'B', s.Op.BIdx}
				fetched[key] = prob.B.GetTileAsync(pe, s.Op.BIdx, distmat.LocalReplica)
			}
		}
	}

	acquire := func(m *distmat.Matrix, local bool, key cacheKey) *tile.Matrix {
		if local {
			return m.Tile(pe, key.idx, distmat.LocalReplica)
		}
		f, ok := fetched[key]
		if !ok {
			// The plan marked this a cache hit of an earlier fetch; the
			// future map retains completed fetches, so absence means the
			// fetch was never issued — fall back to a synchronous get.
			return m.GetTile(pe, key.idx, distmat.LocalReplica)
		}
		return f.Wait()
	}

	sem := make(chan struct{}, cfg.MaxInflight)
	var wg sync.WaitGroup

	issueFetches(0, 1+cfg.PrefetchDepth)
	for i, s := range plan.Steps {
		issueFetches(i+1+cfg.PrefetchDepth, i+2+cfg.PrefetchDepth)

		var aSlice, bSlice *tile.Matrix
		if s.SubTile {
			aSlice = acquireSub(pe, prob.A, s.ALocal, s.Op.AIdx, index.Rect{Rows: s.Op.M, Cols: s.Op.K}, subA, i)
			bSlice = acquireSub(pe, prob.B, s.BLocal, s.Op.BIdx, index.Rect{Rows: s.Op.K, Cols: s.Op.N}, subB, i)
		} else {
			aTile := acquire(prob.A, s.ALocal, cacheKey{'A', s.Op.AIdx})
			bTile := acquire(prob.B, s.BLocal, cacheKey{'B', s.Op.BIdx})
			// Slice the tiles down to the op's global (M, K, N) bounds.
			ab := prob.A.TileBounds(s.Op.AIdx)
			bb := prob.B.TileBounds(s.Op.BIdx)
			aSlice = aTile.View(s.Op.M.Begin-ab.Rows.Begin, s.Op.K.Begin-ab.Cols.Begin, s.Op.M.Len(), s.Op.K.Len())
			bSlice = bTile.View(s.Op.K.Begin-bb.Rows.Begin, s.Op.N.Begin-bb.Cols.Begin, s.Op.K.Len(), s.Op.N.Len())
		}

		op := s.Op
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			gemmAccumulate(pe, prob, op, aSlice, bSlice, cfg.Pool)
		}()
	}
	wg.Wait()
}

// acquireSub resolves one operand in sub-tile mode: a strided view of the
// local tile, or the per-step prefetched slice (falling back to a
// synchronous sub-tile get if the prefetch was never issued).
func acquireSub(pe rt.PE, m *distmat.Matrix, local bool, idx index.TileIdx,
	sub index.Rect, prefetched map[int]*distmat.TileFuture, step int) *tile.Matrix {
	if local {
		b := m.TileBounds(idx)
		t := m.Tile(pe, idx, distmat.LocalReplica)
		loc := sub.Localize(b.Rows.Begin, b.Cols.Begin)
		return t.View(loc.Rows.Begin, loc.Cols.Begin, sub.Rows.Len(), sub.Cols.Len())
	}
	if f, ok := prefetched[step]; ok {
		delete(prefetched, step)
		return f.Wait()
	}
	return m.GetSubTile(pe, idx, distmat.LocalReplica, sub)
}

// gemmAccumulate multiplies the sliced tiles into a pooled scratch buffer
// and atomically accumulates the result into C — the GEMM→accumulate chain
// of §4.2. aSlice and bSlice must already be sliced to the op's (M,K) and
// (K,N) bounds.
func gemmAccumulate(pe rt.PE, prob Problem, op LocalOp, aSlice, bSlice *tile.Matrix, pool *gpusim.Pool) {
	rows, cols := op.M.Len(), op.N.Len()
	buf := pool.Get(rows * cols)
	partial := tile.FromSlice(rows, cols, buf)
	tile.Gemm(partial, aSlice, bSlice)
	rt.ChargeGemm(pe, rows, cols, op.K.Len())
	prob.C.AccumulateSubTile(pe, op.CIdx, distmat.LocalReplica, subRect(op), partial)
	pool.Put(buf)
}

// RunStep executes one plan step given its (full) A and B tiles: it slices
// the tiles to the op's bounds, multiplies, and accumulates into C. It is
// shared by the direct executor and the IR executor.
func RunStep(pe rt.PE, prob Problem, s Step, aTile, bTile *tile.Matrix, pool *gpusim.Pool) {
	ab := prob.A.TileBounds(s.Op.AIdx)
	bb := prob.B.TileBounds(s.Op.BIdx)
	aSlice := aTile.View(s.Op.M.Begin-ab.Rows.Begin, s.Op.K.Begin-ab.Cols.Begin, s.Op.M.Len(), s.Op.K.Len())
	bSlice := bTile.View(s.Op.K.Begin-bb.Rows.Begin, s.Op.N.Begin-bb.Cols.Begin, s.Op.K.Len(), s.Op.N.Len())
	gemmAccumulate(pe, prob, s.Op, aSlice, bSlice, pool)
}

func subRect(op LocalOp) (r index.Rect) {
	r.Rows = op.M
	r.Cols = op.N
	return r
}
