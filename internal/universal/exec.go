package universal

import (
	"sync"
	"sync/atomic"

	"slicing/internal/distmat"
	"slicing/internal/gpusim"
	"slicing/internal/index"
	rt "slicing/internal/runtime"
	"slicing/internal/tile"
)

// Config tunes the direct-execution engine of §4.2.
type Config struct {
	// Stationary selects the data movement strategy; StationaryAuto picks
	// the largest matrix.
	Stationary Stationary
	// PrefetchDepth is how many steps ahead tile fetches are issued
	// (get_tile_async). The paper prefetches the next two tiles.
	PrefetchDepth int
	// MaxInflight bounds concurrent GEMM+accumulate chains, the paper's
	// configurable concurrency limit trading asynchrony for memory.
	MaxInflight int
	// KernelWorkers parallelizes each local GEMM inside the PE across this
	// many goroutines (tile.GemmParallel's shared-pack crew). 1 (or 0, the
	// default) keeps local GEMMs single-threaded, leaving MaxInflight as the
	// only concurrency axis; set it when PEs are few and cores are many, so
	// a single large per-step GEMM can use the whole socket.
	KernelWorkers int
	// CacheTiles bounds the recently-fetched tile cache used for reuse
	// across consecutive ops. It also bounds the executor's resident tile
	// buffers: a fetched tile's buffer returns to the pool when the
	// plan-time LRU would have evicted it.
	CacheTiles int
	// SubTileFetch switches to the bandwidth-optimal fetch mode: each op
	// pulls only its exact (M,K)/(K,N) slices instead of whole tiles. It
	// saves bytes for misaligned tilings and replicated stationary
	// matrices, but gives up cross-op tile reuse (see the fetch-mode
	// ablation benchmark).
	SubTileFetch bool
	// Pool supplies scratch buffers for partial results and fetched tiles;
	// nil allocates one internally.
	Pool *gpusim.Pool
	// Plans, when non-nil, makes Multiply/MultiplyAccumulate look up the
	// problem's CompiledPlan in this cache instead of re-running the §4.1
	// slicing pass per call: a hit executes the precompiled per-rank plan
	// and fetch schedule directly (zero slicing work, zero additional
	// allocations), a miss compiles once for the whole world and caches
	// the result. Use PlansOf(world) for the world's shared cache. Nil
	// preserves the per-rank rebuild-every-call behaviour.
	Plans *PlanCache
	// ReduceOrigin is the replica partial C results are reduced into when C
	// is replicated.
	ReduceOrigin int
	// SyncReplicas re-broadcasts the reduced C so every replica holds the
	// final result. The paper's algorithm only reduces; enabling this adds
	// a broadcast_replica for API convenience.
	SyncReplicas bool
	// Retry budgets recovery from one-sided op faults on fault-capable
	// backends: per-op attempts, backoff, and the per-op deadline
	// (docs/RESILIENCE.md). The zero value selects the defaults.
	Retry RetryConfig
	// Exclude names ranks this multiply assigns no work — the shrunken
	// world of PE-loss recovery (docs/RESILIENCE.md). Excluded ranks still
	// call the collective and participate in its barriers and reductions
	// (their memory stays reachable); their ops are adopted round-robin by
	// the surviving ranks. Entries must be valid ranks and at least one
	// rank must survive. The set is part of the PlanKey, so exclusion
	// plans are ordinary PlanCache entries; pass it sorted and
	// duplicate-free (runtime.Membership.Excluded's form) to keep
	// PlanKeyOf allocation-free.
	Exclude []int
}

// DefaultConfig mirrors the paper's direct-execution settings: prefetch
// depth 2 and a small bounded accumulate/GEMM concurrency.
func DefaultConfig() Config {
	return Config{
		Stationary:    StationaryAuto,
		PrefetchDepth: 2,
		MaxInflight:   4,
		CacheTiles:    DefaultCacheTiles,
	}
}

func (cfg Config) withDefaults() Config {
	if cfg.PrefetchDepth <= 0 {
		cfg.PrefetchDepth = 2
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 4
	}
	if cfg.KernelWorkers <= 0 {
		cfg.KernelWorkers = 1
	}
	if cfg.CacheTiles <= 0 {
		cfg.CacheTiles = DefaultCacheTiles
	}
	if cfg.Pool == nil {
		cfg.Pool = gpusim.NewPool()
	}
	cfg.Retry = cfg.Retry.withDefaults()
	return cfg
}

// Multiply computes C = A·B with the universal one-sided algorithm,
// zeroing C first. Collective: every PE of the world must call it with the
// same arguments. It returns the resolved stationary strategy and the
// first fatal one-sided fault of this rank's slice of the work, nil on
// fault-free backends. An erroring rank still participates in every
// collective (the crew drains, the barrier and replica reduction run), so
// a fault never wedges the world — but its C contribution is incomplete,
// so the result is only meaningful when every rank returns nil.
func Multiply(pe rt.PE, c, a, b *distmat.Matrix, cfg Config) (Stationary, error) {
	prob := NewProblem(c, a, b)
	c.Zero(pe) // includes a barrier
	return MultiplyAccumulate(pe, prob, cfg)
}

// MultiplyAccumulate computes C += A·B assuming C already holds the values
// to accumulate onto (zeroed for a plain product). Collective. With
// cfg.Plans set, the plan comes from the compiled-plan cache (built once
// per world on a miss, re-executed with zero slicing work on a hit);
// otherwise each rank rebuilds its plan per call as before. Error
// semantics are Multiply's.
func MultiplyAccumulate(pe rt.PE, prob Problem, cfg Config) (Stationary, error) {
	cfg = cfg.withDefaults()
	var stat Stationary
	var err error
	if cfg.Plans != nil {
		cp := cfg.Plans.GetOrCompile(prob, cfg)
		rank := pe.Rank()
		err = executePlanSched(pe, prob, cp.Plans[rank], &cp.scheds[rank], cfg)
		stat = cp.Key.Stationary
	} else {
		plan := buildRankPlan(pe.Rank(), prob, cfg)
		sched := planFetchSchedule(plan, cfg.CacheTiles)
		err = executePlanSched(pe, prob, plan, &sched, cfg)
		stat = plan.Stationary
	}
	pe.Barrier() // all one-sided updates must land before replica reduction
	if prob.C.Replication() > 1 {
		// The collectives run outside the executor's fault scope, so they
		// proceed (and stay barrier-matched across ranks) even after an
		// error; the reduced values are only meaningful if no rank failed.
		prob.C.ReduceReplicas(pe, cfg.ReduceOrigin)
		if cfg.SyncReplicas {
			prob.C.BroadcastReplica(pe, cfg.ReduceOrigin)
		}
	}
	return stat, err
}

// tileSlot is one fetched tile buffer with its in-flight future and a
// reference count. A slot is born with one reference held by the tile
// cache (its plan-time LRU residency); every step using the tile takes a
// reference for the duration of its GEMM→accumulate chain. When the count
// reaches zero — the LRU residency has ended and no in-flight chain still
// reads the buffer — the buffer returns to the pool for the next fetch.
type tileSlot struct {
	fut  distmat.TileFuture
	mat  tile.Matrix
	buf  []float32
	pool *gpusim.Pool
	refs atomic.Int32
}

// acquire takes a user reference and blocks until the fetch has landed.
func (s *tileSlot) acquire() *tile.Matrix {
	s.refs.Add(1)
	return s.fut.Wait()
}

// release drops one reference, recycling the buffer on the last one.
func (s *tileSlot) release() {
	if s.refs.Add(-1) == 0 && s.buf != nil {
		s.pool.Put(s.buf)
		s.buf = nil
	}
}

// stepOperands holds one step's sliced operand views. They live in a
// per-plan array so slicing allocates nothing per step.
type stepOperands struct {
	a, b tile.Matrix
}

// ExecutePlan runs a per-rank plan with the §4.2 optimizations: iteration
// offset (already baked into the op order), prefetching via
// get_tile_async, asynchronous GEMM→accumulate chains with bounded
// concurrency, and pooled scratch memory. The loop is allocation-free in
// the steady state: fetched tiles land in pooled buffers held in
// refcounted slots whose eviction mirrors the plan-time tile LRU
// (planFetchSchedule), operand views live in per-plan arrays, and GEMM
// partials come from the same pool. It performs no collective
// synchronization; callers barrier afterwards. The returned error is the
// rank's first fatal one-sided fault (after per-op retries), with every
// pooled buffer back in the pool either way.
func ExecutePlan(pe rt.PE, prob Problem, plan Plan, cfg Config) error {
	cfg = cfg.withDefaults()
	sched := planFetchSchedule(plan, cfg.CacheTiles)
	return executePlanSched(pe, prob, plan, &sched, cfg)
}

// startChainCrew spawns the bounded GEMM→accumulate worker crew (§4.2's
// configurable chain-concurrency limit): MaxInflight workers drain a channel
// of ready chains. Tasks are plain values, so dispatching a step allocates
// nothing; the unbuffered send blocks exactly when all workers are busy,
// which is the same admission control as a counting semaphore. The crew is
// problem-agnostic (each task carries its own Problem), so one crew can
// drain the chains of many fused multiplies.
//
// box is the crew's abort flag: a worker whose accumulate fails fatally
// (after its retry budget) publishes the error, and every worker keeps
// draining tasks — releasing their slots so pooled buffers balance — but
// skips their compute. The feeder polls the same box and stops
// dispatching, so a failed step ends the run cleanly instead of
// deadlocking the channel.
func startChainCrew(pe rt.PE, cfg Config, box *errBox) (chan<- chainTask, *sync.WaitGroup) {
	tasks := make(chan chainTask)
	wg := new(sync.WaitGroup)
	for w := 0; w < cfg.MaxInflight; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			ret := newRetrier(cfg.Retry, seed)
			for t := range tasks {
				if box.err() == nil {
					err := gemmAccumulateChain(pe, t.prob, t.op, &t.ops.a, &t.ops.b, cfg.Pool, cfg.KernelWorkers, &ret)
					if err == nil && t.ckpt != nil {
						// The chain's single accumulate landed (a failed op
						// moves no data, so this is exactly the step's C
						// contribution becoming durable): checkpoint it at
						// the same point the step's slot references retire.
						t.ckpt.mark(t.step)
					}
					box.set(err)
				}
				if t.aSlot != nil {
					t.aSlot.release()
				}
				if t.bSlot != nil {
					t.bSlot.release()
				}
			}
		}(uint64(pe.Rank())<<16 | uint64(w+1))
	}
	return tasks, wg
}

// executePlanSched is ExecutePlan with the plan-time LRU replay already
// computed — the shared body of the direct path (which derives sched per
// call) and the compiled-plan path (which reuses the schedule frozen at
// compile time, so a plan-cache hit re-runs zero slicing work). cfg must
// already have defaults applied. sched is read-only: concurrent executions
// of one CompiledPlan share it.
//
// It brackets the run in a fault scope with the configured per-op
// deadline: on fault-capable backends this is the recoverable region
// (injected faults fire only here, retried per Config.Retry), and the
// collectives around it stay fault-free so ranks never diverge on
// barrier counts.
func executePlanSched(pe rt.PE, prob Problem, plan Plan, sched *fetchSchedule, cfg Config) error {
	return executePlanCkpt(pe, prob, plan, sched, cfg, nil)
}

// executePlanCkpt is executePlanSched with an optional step checkpoint:
// with ckpt non-nil (already Reset to the plan's length) every step whose
// accumulate lands is marked, so after a fatal fault the caller knows
// exactly which C contributions are durable and which steps a repair plan
// must replay.
func executePlanCkpt(pe rt.PE, prob Problem, plan Plan, sched *fetchSchedule, cfg Config, ckpt *Checkpoint) error {
	rt.PushFaultScope(pe)
	defer rt.PopFaultScope(pe)
	rt.SetOpDeadline(pe, cfg.Retry.OpTimeout)
	defer rt.SetOpDeadline(pe, 0)
	var box errBox
	tasks, wg := startChainCrew(pe, cfg, &box)
	finish := feedPlanSched(pe, prob, plan, sched, cfg, tasks, &box, ckpt)
	close(tasks)
	wg.Wait()
	finish()
	return box.err()
}

// feedPlanSched walks one per-rank plan, issuing prefetches and handing each
// ready GEMM→accumulate chain to an already-running crew. It owns the
// plan's slot arrays; the refcounts keep pooled buffers alive until the last
// in-flight chain using them retires, so the caller may feed further plans
// to the same crew before this one's chains drain. The returned finish func
// drops the residual plan-time LRU residencies; callers run it after the
// crew drains so the final pool returns happen deterministically on the
// feeder, not racing worker releases mid-execution.
//
// Fault handling: fetch issues and synchronous fallback gets run under the
// retry budget; a fatal failure (or one published by a worker, or by a
// fused sibling plan sharing the crew) stops dispatch at that step.
// Already-issued fetches are safe to abandon — every backend completes
// the data movement of an async get at issue time — so finish can return
// their buffers to the pool unconditionally.
func feedPlanSched(pe rt.PE, prob Problem, plan Plan, sched *fetchSchedule, cfg Config, tasks chan<- chainTask, box *errBox, ckpt *Checkpoint) (finish func()) {
	if box.err() != nil {
		// A fused sibling plan already failed; skip this one entirely.
		return func() {}
	}
	pool := cfg.Pool
	ret := newRetrier(cfg.Retry, uint64(pe.Rank())<<16|0xfeed)
	nsteps := len(plan.Steps)
	aSlots := make([]tileSlot, nsteps)
	bSlots := make([]tileSlot, nsteps)
	operands := make([]stepOperands, nsteps)
	slotFor := func(ref fetchRef) *tileSlot {
		if ref.mat == 'A' {
			return &aSlots[ref.step]
		}
		return &bSlots[ref.step]
	}

	// issueTileFetch starts the async whole-tile copy for step i's operand
	// into a recycled pooled buffer, retrying transient issue failures.
	issueTileFetch := func(s *tileSlot, m *distmat.Matrix, idx index.TileIdx) error {
		b := m.TileBounds(idx)
		rows, cols := b.Shape()
		s.pool = pool
		s.buf = pool.GetUninit(rows * cols)
		s.mat = tile.Matrix{Rows: rows, Cols: cols, Stride: cols, Data: s.buf}
		s.refs.Store(1) // the cache's residency reference
		return ret.do(func() { m.GetTileIntoAsync(pe, &s.fut, &s.mat, idx, distmat.LocalReplica) })
	}
	// issueSubFetch starts the async exact-slice copy for a sub-tile step.
	// Sub-tile fetches are single-use, so their residency reference is
	// dropped as soon as the step's chain holds its own.
	issueSubFetch := func(s *tileSlot, m *distmat.Matrix, idx index.TileIdx, sub index.Rect) error {
		rows, cols := sub.Shape()
		s.pool = pool
		s.buf = pool.GetUninit(rows * cols)
		s.mat = tile.Matrix{Rows: rows, Cols: cols, Stride: cols, Data: s.buf}
		s.refs.Store(1)
		return ret.do(func() { m.GetSubTileIntoAsync(pe, &s.fut, &s.mat, idx, distmat.LocalReplica, sub) })
	}

	// issueFetches starts the async copies needed by steps [from, to).
	issueFetches := func(from, to int) error {
		for i := from; i < to && i < nsteps; i++ {
			s := plan.Steps[i]
			if s.SubTile {
				if s.FetchA {
					if err := issueSubFetch(&aSlots[i], prob.A, s.Op.AIdx, index.Rect{Rows: s.Op.M, Cols: s.Op.K}); err != nil {
						return err
					}
				}
				if s.FetchB {
					if err := issueSubFetch(&bSlots[i], prob.B, s.Op.BIdx, index.Rect{Rows: s.Op.K, Cols: s.Op.N}); err != nil {
						return err
					}
				}
				continue
			}
			if s.FetchA {
				if err := issueTileFetch(&aSlots[i], prob.A, s.Op.AIdx); err != nil {
					return err
				}
			}
			if s.FetchB {
				if err := issueTileFetch(&bSlots[i], prob.B, s.Op.BIdx); err != nil {
					return err
				}
			}
		}
		return nil
	}

	// acquireTile resolves a full-tile operand: a zero-copy local view, the
	// refcounted slot of the fetch serving this step (waiting for it to
	// land), or — if the plan's fetch decisions don't match the replayed
	// schedule (plan built with a different cache capacity) — a synchronous
	// fallback get. Each operand gets its own local-view header (reused
	// across steps, so slicing allocates nothing) so a step with two local
	// tiles never aliases them.
	var aLocalView, bLocalView tile.Matrix
	acquireTile := func(m *distmat.Matrix, local bool, src int, idx index.TileIdx, slots []tileSlot, localView *tile.Matrix) (*tile.Matrix, *tileSlot, error) {
		if local {
			m.TileInto(pe, localView, idx, distmat.LocalReplica)
			return localView, nil, nil
		}
		if src >= 0 {
			slot := &slots[src]
			return slot.acquire(), slot, nil
		}
		var t *tile.Matrix
		err := ret.do(func() { t = m.GetTile(pe, idx, distmat.LocalReplica) })
		return t, nil, err
	}

	evictCursor := 0
	abortAt := -1 // first step never dispatched; -1 = ran to completion
	if err := issueFetches(0, 1+cfg.PrefetchDepth); err != nil {
		box.set(err)
	}
	for i, s := range plan.Steps {
		if box.err() != nil {
			abortAt = i
			break
		}
		if err := issueFetches(i+1+cfg.PrefetchDepth, i+2+cfg.PrefetchDepth); err != nil {
			box.set(err)
			abortAt = i
			break
		}

		ops := &operands[i]
		var aSlot, bSlot *tileSlot
		var err error
		if s.SubTile {
			aSlot, err = acquireSub(pe, prob.A, s.ALocal, s.Op.AIdx, index.Rect{Rows: s.Op.M, Cols: s.Op.K}, &aSlots[i], &ops.a, &ret)
			if err == nil {
				bSlot, err = acquireSub(pe, prob.B, s.BLocal, s.Op.BIdx, index.Rect{Rows: s.Op.K, Cols: s.Op.N}, &bSlots[i], &ops.b, &ret)
			}
		} else {
			var aTile, bTile *tile.Matrix
			aTile, aSlot, err = acquireTile(prob.A, s.ALocal, sched.srcA[i], s.Op.AIdx, aSlots, &aLocalView)
			if err == nil {
				bTile, bSlot, err = acquireTile(prob.B, s.BLocal, sched.srcB[i], s.Op.BIdx, bSlots, &bLocalView)
			}
			if err == nil {
				// Slice the tiles down to the op's global (M, K, N) bounds.
				ab := prob.A.TileBounds(s.Op.AIdx)
				aTile.ViewInto(&ops.a, s.Op.M.Begin-ab.Rows.Begin, s.Op.K.Begin-ab.Cols.Begin, s.Op.M.Len(), s.Op.K.Len())
				bb := prob.B.TileBounds(s.Op.BIdx)
				bTile.ViewInto(&ops.b, s.Op.K.Begin-bb.Rows.Begin, s.Op.N.Begin-bb.Cols.Begin, s.Op.K.Len(), s.Op.N.Len())
			}
		}
		if err != nil {
			// Drop the chain references taken before the failure; the
			// residency references fall to finish.
			box.set(err)
			if aSlot != nil {
				aSlot.release()
			}
			if bSlot != nil {
				bSlot.release()
			}
			abortAt = i
			break
		}

		tasks <- chainTask{prob: prob, op: s.Op, ops: ops, aSlot: aSlot, bSlot: bSlot, ckpt: ckpt, step: i}

		// Sub-tile fetches are single-use: drop their residency reference
		// now that the chain holds its own.
		if s.SubTile {
			if aSlot != nil {
				aSlot.release()
			}
			if bSlot != nil {
				bSlot.release()
			}
		}
		// Retire buffers whose plan-time LRU residency ended at this step.
		for evictCursor < len(sched.evictions) && sched.evictions[evictCursor].atStep == i {
			slotFor(sched.evictions[evictCursor].ref).release()
			evictCursor++
		}
	}
	return func() {
		// Full-tile fetches (issued or not) all appear in the eviction
		// list; releasing an unissued slot is a no-op, so the walk is
		// correct on the abort path as well.
		for ; evictCursor < len(sched.evictions); evictCursor++ {
			slotFor(sched.evictions[evictCursor].ref).release()
		}
		if abortAt < 0 {
			return
		}
		// Sub-tile fetches are not in the eviction list (their residency
		// ends at dispatch), so on abort the issued-but-never-dispatched
		// ones still hold their single-use reference.
		for j := abortAt; j < nsteps; j++ {
			if !plan.Steps[j].SubTile {
				continue
			}
			if aSlots[j].buf != nil {
				aSlots[j].release()
			}
			if bSlots[j].buf != nil {
				bSlots[j].release()
			}
		}
	}
}

// chainTask is one ready GEMM→accumulate chain handed to the worker crew.
// It carries its own Problem so one crew can serve a fused batch of
// multiplies.
type chainTask struct {
	prob         Problem
	op           LocalOp
	ops          *stepOperands
	aSlot, bSlot *tileSlot
	// ckpt/step checkpoint the chain's accumulate when it lands (nil = no
	// checkpointing; the common fault-free entry points pay nothing).
	ckpt *Checkpoint
	step int
}

// acquireSub resolves one operand in sub-tile mode, filling view: a strided
// view of the local tile, or the step's prefetched slice (falling back to a
// synchronous sub-tile get, under the retry budget, if the prefetch was
// never issued). It returns the slot whose chain reference the caller must
// release, nil for local operands.
func acquireSub(pe rt.PE, m *distmat.Matrix, local bool, idx index.TileIdx,
	sub index.Rect, slot *tileSlot, view *tile.Matrix, ret *retrier) (*tileSlot, error) {
	if local {
		b := m.TileBounds(idx)
		var t tile.Matrix
		m.TileInto(pe, &t, idx, distmat.LocalReplica)
		loc := sub.Localize(b.Rows.Begin, b.Cols.Begin)
		t.ViewInto(view, loc.Rows.Begin, loc.Cols.Begin, sub.Rows.Len(), sub.Cols.Len())
		return nil, nil
	}
	if slot.buf != nil || slot.fut.Tile != nil {
		*view = *slot.acquire()
		return slot, nil
	}
	var t *tile.Matrix
	if err := ret.do(func() { t = m.GetSubTile(pe, idx, distmat.LocalReplica, sub) }); err != nil {
		return nil, err
	}
	*view = *t
	return nil, nil
}

// gemmAccumulate multiplies the sliced tiles into a pooled scratch buffer
// and atomically accumulates the result into C — the GEMM→accumulate chain
// of §4.2. aSlice and bSlice must already be sliced to the op's (M,K) and
// (K,N) bounds. It performs no heap allocation in the steady state: the
// partial lives in a pooled buffer and its header on the stack.
func gemmAccumulate(pe rt.PE, prob Problem, op LocalOp, aSlice, bSlice *tile.Matrix, pool *gpusim.Pool) {
	gemmAccumulateWorkers(pe, prob, op, aSlice, bSlice, pool, 1)
}

// gemmAccumulateWorkers is gemmAccumulate with the local GEMM spread across
// workers goroutines (Config.KernelWorkers); workers <= 1 stays on the
// single-goroutine packed kernel.
func gemmAccumulateWorkers(pe rt.PE, prob Problem, op LocalOp, aSlice, bSlice *tile.Matrix, pool *gpusim.Pool, workers int) {
	gemmAccumulateChain(pe, prob, op, aSlice, bSlice, pool, workers, nil)
}

// gemmAccumulateChain is the crew's chain body. With ret non-nil the
// accumulate runs under the retry budget and a fatal fault comes back as
// an error with the scratch buffer already back in the pool; with ret nil
// faults panic through unchanged (the IR path's contract).
func gemmAccumulateChain(pe rt.PE, prob Problem, op LocalOp, aSlice, bSlice *tile.Matrix, pool *gpusim.Pool, workers int, ret *retrier) error {
	rows, cols := op.M.Len(), op.N.Len()
	buf := pool.Get(rows * cols)
	partial := tile.Matrix{Rows: rows, Cols: cols, Stride: cols, Data: buf}
	if workers > 1 {
		tile.GemmParallel(&partial, aSlice, bSlice, workers)
	} else {
		tile.Gemm(&partial, aSlice, bSlice)
	}
	rt.ChargeGemm(pe, rows, cols, op.K.Len())
	var err error
	if ret != nil {
		err = ret.do(func() { prob.C.AccumulateSubTile(pe, op.CIdx, distmat.LocalReplica, subRect(op), &partial) })
	} else {
		prob.C.AccumulateSubTile(pe, op.CIdx, distmat.LocalReplica, subRect(op), &partial)
	}
	pool.Put(buf)
	return err
}

// RunStep executes one plan step given its (full) A and B tiles: it slices
// the tiles to the op's bounds, multiplies, and accumulates into C. It is
// shared by the direct executor and the IR executor.
func RunStep(pe rt.PE, prob Problem, s Step, aTile, bTile *tile.Matrix, pool *gpusim.Pool) {
	ab := prob.A.TileBounds(s.Op.AIdx)
	bb := prob.B.TileBounds(s.Op.BIdx)
	aSlice := aTile.View(s.Op.M.Begin-ab.Rows.Begin, s.Op.K.Begin-ab.Cols.Begin, s.Op.M.Len(), s.Op.K.Len())
	bSlice := bTile.View(s.Op.K.Begin-bb.Rows.Begin, s.Op.N.Begin-bb.Cols.Begin, s.Op.K.Len(), s.Op.N.Len())
	gemmAccumulate(pe, prob, s.Op, aSlice, bSlice, pool)
}

func subRect(op LocalOp) (r index.Rect) {
	r.Rows = op.M
	r.Cols = op.N
	return r
}
