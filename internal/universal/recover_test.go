package universal

// White-box tests of the exclusion/repair plan machinery and the
// step-granular checkpoint. The cross-backend crash-recovery matrix
// lives in internal/chaos/recovery_conformance_test.go.

import (
	"testing"

	"slicing/internal/distmat"
	rt "slicing/internal/runtime"
	"slicing/internal/shmem"
	"slicing/internal/tile"
)

// excludeProblem builds a 4-PE problem with deliberately misaligned C
// tiles so every rank owns stationary work an exclusion must re-deal.
func excludeProblem(w rt.World, m, n, k int) (prob Problem, a, b, c *distmat.Matrix) {
	a = distmat.New(w, m, k, distmat.RowBlock{}, 1)
	b = distmat.New(w, k, n, distmat.ColBlock{}, 1)
	c = distmat.New(w, m, n, distmat.Custom{TileRows: 13, TileCols: 11, ProcRows: 2, ProcCols: 2}, 1)
	return NewProblem(c, a, b), a, b, c
}

// TestExcludePlansConserveWork pins the repair-plan invariant: excluding
// ranks moves their ops to survivors without creating or losing any —
// same total step count and flops, empty plans on the excluded ranks.
func TestExcludePlansConserveWork(t *testing.T) {
	const p, m, n, k = 4, 90, 70, 50
	w := shmem.NewWorld(p)
	prob, _, _, _ := excludeProblem(w, m, n, k)
	cfg := DefaultConfig()
	healthy := CompilePlans(prob, cfg)
	for _, exclude := range [][]int{{2}, {0, 3}, {0, 1, 2}} {
		cfgx := cfg
		cfgx.Exclude = exclude
		cpx := CompilePlans(prob, cfgx)
		if cpx.Steps() != healthy.Steps() {
			t.Errorf("exclude %v: %d steps, healthy has %d", exclude, cpx.Steps(), healthy.Steps())
		}
		var hf, xf float64
		for r := 0; r < p; r++ {
			hf += healthy.Plans[r].TotalFlops()
			xf += cpx.Plans[r].TotalFlops()
		}
		if hf != xf {
			t.Errorf("exclude %v: flops %g, healthy %g", exclude, xf, hf)
		}
		for _, r := range exclude {
			if len(cpx.Plans[r].Steps) != 0 {
				t.Errorf("excluded rank %d still has %d steps", r, len(cpx.Plans[r].Steps))
			}
		}
		// buildRankPlan (the cacheless per-rank path) must agree with the
		// collective compilation step-for-step in count.
		for r := 0; r < p; r++ {
			pl := buildRankPlan(r, prob, cfgx)
			if len(pl.Steps) != len(cpx.Plans[r].Steps) {
				t.Errorf("exclude %v rank %d: buildRankPlan %d steps, CompilePlans %d",
					exclude, r, len(pl.Steps), len(cpx.Plans[r].Steps))
			}
		}
	}
}

// TestExcludeKeysDistinct pins that exclusion sets key the plan cache:
// distinct sets get distinct keys (repair plans are ordinary cache
// entries), while nil, empty, unsorted, and duplicated spellings of the
// same set collapse to one key.
func TestExcludeKeysDistinct(t *testing.T) {
	const p, m, n, k = 4, 90, 70, 50
	w := shmem.NewWorld(p)
	prob, _, _, _ := excludeProblem(w, m, n, k)
	cfg := DefaultConfig()
	key := func(exclude []int) PlanKey {
		c := cfg
		c.Exclude = exclude
		return PlanKeyOf(prob, c)
	}
	base := key(nil)
	if key([]int{}) != base {
		t.Error("nil and empty Exclude produced different keys")
	}
	if base.Excluded != 0 {
		t.Errorf("healthy key has Excluded hash %#x, want 0", base.Excluded)
	}
	seen := map[uint64][]int{0: nil}
	for _, exclude := range [][]int{{0}, {1}, {2}, {3}, {0, 1}, {1, 2}, {0, 3}, {1, 2, 3}} {
		kx := key(exclude)
		if prev, dup := seen[kx.Excluded]; dup {
			t.Errorf("exclude %v collides with %v on hash %#x", exclude, prev, kx.Excluded)
		}
		seen[kx.Excluded] = exclude
	}
	if key([]int{2, 1}) != key([]int{1, 2}) || key([]int{1, 1, 2}) != key([]int{1, 2}) {
		t.Error("unsorted/duplicated Exclude spellings did not canonicalize")
	}
}

// TestExcludeExecutionMatchesReference runs a multiply with ranks
// excluded on a healthy world — the serving loop's failover situation,
// where crashed ranks still barrier but are assigned no steps — and
// checks the survivors' adopted work lands the exact product.
func TestExcludeExecutionMatchesReference(t *testing.T) {
	const p, m, n, k = 4, 90, 70, 50
	w := shmem.NewWorld(p)
	_, a, b, c := excludeProblem(w, m, n, k)
	w.Run(func(pe rt.PE) {
		a.FillRandom(pe, 101)
		b.FillRandom(pe, 202)
	})
	ref := referenceProduct(m, n, k, 101, 202, a, b, w)
	for _, exclude := range [][]int{{1}, {0, 2}, {1, 2, 3}} {
		cfg := DefaultConfig()
		cfg.Exclude = exclude
		var got *tile.Matrix
		w.Run(func(pe rt.PE) {
			if _, err := Multiply(pe, c, a, b, cfg); err != nil {
				t.Errorf("exclude %v rank %d: %v", exclude, pe.Rank(), err)
			}
			pe.Barrier()
			if pe.Rank() == 0 {
				got = c.Gather(pe, 0)
			}
		})
		if !got.AllClose(ref, 1e-3) {
			t.Errorf("exclude %v: maxdiff %g vs reference", exclude, got.MaxAbsDiff(ref))
		}
	}
}

// TestCheckpointCleanRunLandsEverything pins the checkpoint contract on
// the happy path: a fault-free checkpointed execution marks every step.
func TestCheckpointCleanRunLandsEverything(t *testing.T) {
	const p, m, n, k = 4, 60, 50, 40
	w := shmem.NewWorld(p)
	prob, a, b, c := excludeProblem(w, m, n, k)
	cfg := DefaultConfig().withDefaults()
	w.Run(func(pe rt.PE) {
		a.FillRandom(pe, 11)
		b.FillRandom(pe, 12)
		c.Zero(pe)
		plan := BuildPlan(pe.Rank(), prob, cfg.Stationary, cfg.CacheTiles)
		var ckpt Checkpoint
		if err := ExecutePlanCheckpointed(pe, prob, plan, cfg, &ckpt); err != nil {
			t.Errorf("rank %d: %v", pe.Rank(), err)
		}
		if got, want := ckpt.LandedCount(), len(plan.Steps); got != want {
			t.Errorf("rank %d: %d of %d steps landed", pe.Rank(), got, want)
		}
		pe.Barrier()
	})
}
