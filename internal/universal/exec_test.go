package universal

import (
	"testing"

	"slicing/internal/distmat"
	"slicing/internal/gpusim"
	rt "slicing/internal/runtime"
	"slicing/internal/shmem"
	"slicing/internal/tile"
)

// The fetch schedule must mirror the plan builder's LRU exactly: every
// step's non-local full-tile operand resolves to a step that actually
// fetched it, and every fetch's residency is released exactly once.
func TestPlanFetchScheduleMirrorsPlan(t *testing.T) {
	w := shmem.NewWorld(4)
	a := distmat.New(w, 96, 96, distmat.RowBlock{}, 1)
	b := distmat.New(w, 96, 96, distmat.ColBlock{}, 1)
	c := distmat.New(w, 96, 96, distmat.Block2D{}, 1)
	prob := NewProblem(c, a, b)
	for _, cacheTiles := range []int{1, 2, DefaultCacheTiles} {
		for rank := 0; rank < 4; rank++ {
			plan := BuildPlan(rank, prob, StationaryC, cacheTiles)
			sched := planFetchSchedule(plan, cacheTiles)
			released := map[fetchRef]int{}
			prevStep := 0
			for _, ev := range sched.evictions {
				released[ev.ref]++
				if ev.atStep < prevStep {
					t.Fatalf("evictions out of order: step %d after %d", ev.atStep, prevStep)
				}
				prevStep = ev.atStep
				if ev.atStep < len(plan.Steps) && ev.ref.step > ev.atStep {
					t.Fatalf("rank %d cache %d: fetch %+v released at step %d before it was used",
						rank, cacheTiles, ev.ref, ev.atStep)
				}
			}
			fetches := 0
			for i, s := range plan.Steps {
				if s.SubTile {
					continue
				}
				if s.FetchA {
					fetches++
					if sched.srcA[i] != i {
						t.Fatalf("step %d fetches A but srcA = %d", i, sched.srcA[i])
					}
				}
				if s.FetchB {
					fetches++
				}
				if !s.ALocal && !s.FetchA {
					f := sched.srcA[i]
					if f < 0 || f >= i || !plan.Steps[f].FetchA {
						t.Fatalf("step %d cache-hit A resolves to invalid fetch step %d", i, f)
					}
				}
				if !s.BLocal && !s.FetchB {
					f := sched.srcB[i]
					if f < 0 || f >= i || !plan.Steps[f].FetchB {
						t.Fatalf("step %d cache-hit B resolves to invalid fetch step %d", i, f)
					}
				}
			}
			total := 0
			for ref, n := range released {
				if n != 1 {
					t.Fatalf("fetch %+v released %d times", ref, n)
				}
				total++
			}
			if total != fetches {
				t.Fatalf("rank %d cache %d: %d fetches but %d releases", rank, cacheTiles, fetches, total)
			}
		}
	}
}

// The executor's resident tile memory must be bounded by the LRU capacity,
// not by the number of fetches in the plan: on a many-tile problem, running
// with a tiny tile cache must peak well below running with a cache big
// enough that nothing is ever evicted (which is what the seed executor
// did for every cache size — it retained all fetched tiles until the end).
func TestExecutePoolBoundedByTileCache(t *testing.T) {
	const p, n = 4, 256
	run := func(cacheTiles int) int {
		w := shmem.NewWorld(p)
		part := distmat.Custom{TileRows: 32, TileCols: 32, ProcRows: 2, ProcCols: 2}
		a := distmat.New(w, n, n, part, 1)
		b := distmat.New(w, n, n, part, 1)
		c := distmat.New(w, n, n, distmat.Block2D{}, 1)
		pool := gpusim.NewPool()
		cfg := DefaultConfig()
		cfg.Stationary = StationaryC
		cfg.CacheTiles = cacheTiles
		cfg.Pool = pool
		w.Run(func(pe rt.PE) {
			a.FillRandom(pe, 1)
			b.FillRandom(pe, 2)
			Multiply(pe, c, a, b, cfg)
		})
		return pool.Stats().HighWater
	}
	small := run(2)
	unbounded := run(1 << 20) // nothing ever evicted: the seed behaviour
	if small == 0 || unbounded == 0 {
		t.Fatal("pool was never used")
	}
	if small >= unbounded {
		t.Fatalf("high water with 2-tile cache (%d elems) not below unbounded cache (%d elems): eviction is not recycling buffers",
			small, unbounded)
	}
}

// Executing the same multiply twice over one shared pool must not grow the
// pool on the second pass: the steady state reuses recycled tile buffers
// and partials instead of allocating (the allocation-free hot path).
func TestExecuteSteadyStateReusesPool(t *testing.T) {
	const p, n = 4, 192
	w := shmem.NewWorld(p)
	a := distmat.New(w, n, n, distmat.RowBlock{}, 1)
	b := distmat.New(w, n, n, distmat.ColBlock{}, 1)
	c := distmat.New(w, n, n, distmat.Block2D{}, 1)
	pool := gpusim.NewPool()
	cfg := DefaultConfig()
	cfg.Pool = pool
	cfg.Stationary = StationaryC
	w.Run(func(pe rt.PE) {
		a.FillRandom(pe, 1)
		b.FillRandom(pe, 2)
		Multiply(pe, c, a, b, cfg)
	})
	after1 := pool.Stats()
	w.Run(func(pe rt.PE) {
		Multiply(pe, c, a, b, cfg)
	})
	after2 := pool.Stats()
	if after2.Allocs != after1.Allocs {
		t.Fatalf("second multiply allocated %d fresh pool buffers (want 0: all recycled)",
			after2.Allocs-after1.Allocs)
	}
	if after2.Live != 0 {
		t.Fatalf("%d pool elements still live after execution", after2.Live)
	}
}

// gemmAccumulate — the per-step GEMM→accumulate chain — must be heap
// allocation free in the steady state: pooled partial buffer, stack view
// headers, chunked in-place accumulate.
func TestGemmAccumulateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc counts only meaningful without -race")
	}
	const p, n = 2, 128
	w := shmem.NewWorld(p)
	a := distmat.New(w, n, n, distmat.RowBlock{}, 1)
	b := distmat.New(w, n, n, distmat.RowBlock{}, 1)
	c := distmat.New(w, n, n, distmat.RowBlock{}, 1)
	prob := NewProblem(c, a, b)
	pool := gpusim.NewPool()
	w.Run(func(pe rt.PE) {
		a.FillRandom(pe, 1)
		b.FillRandom(pe, 2)
		pe.Barrier()
		if pe.Rank() != 0 {
			return
		}
		plan := BuildPlan(0, prob, StationaryC, DefaultCacheTiles)
		var op LocalOp
		found := false
		for _, s := range plan.Steps {
			if s.ALocal && s.BLocal {
				op, found = s.Op, true
				break
			}
		}
		if !found {
			t.Fatal("no fully local step in plan")
		}
		var aT, bT, aSlice, bSlice tile.Matrix
		prob.A.TileInto(pe, &aT, op.AIdx, distmat.LocalReplica)
		prob.B.TileInto(pe, &bT, op.BIdx, distmat.LocalReplica)
		ab := prob.A.TileBounds(op.AIdx)
		bb := prob.B.TileBounds(op.BIdx)
		aT.ViewInto(&aSlice, op.M.Begin-ab.Rows.Begin, op.K.Begin-ab.Cols.Begin, op.M.Len(), op.K.Len())
		bT.ViewInto(&bSlice, op.K.Begin-bb.Rows.Begin, op.N.Begin-bb.Cols.Begin, op.K.Len(), op.N.Len())
		gemmAccumulate(pe, prob, op, &aSlice, &bSlice, pool) // warm pools
		allocs := testing.AllocsPerRun(10, func() {
			gemmAccumulate(pe, prob, op, &aSlice, &bSlice, pool)
		})
		if allocs > 0 {
			t.Errorf("gemmAccumulate allocates %v objects per call in steady state, want 0", allocs)
		}
	})
}

// ExecutePlan run with a cache capacity different from the one the plan
// was built with (legal: both are exported) must stay correct and must not
// leak pooled buffers — a plan re-fetch of a tile the executor's larger
// replay cache still holds shadows the old slot, whose residency must end
// there and then (the planFetchSchedule shadowed-fetch eviction).
func TestExecuteWithMismatchedCacheCapacity(t *testing.T) {
	const p, m, n, k = 4, 100, 90, 110
	for _, caps := range [][2]int{{1, 8}, {8, 1}, {2, 1 << 10}} {
		planCap, execCap := caps[0], caps[1]
		w := shmem.NewWorld(p)
		a := distmat.New(w, m, k, distmat.Custom{TileRows: 7, TileCols: 11, ProcRows: 2, ProcCols: 2}, 1)
		b := distmat.New(w, k, n, distmat.ColBlock{}, 1)
		c := distmat.New(w, m, n, distmat.Block2D{}, 1)
		prob := NewProblem(c, a, b)
		pool := gpusim.NewPool()
		cfg := DefaultConfig()
		cfg.CacheTiles = execCap
		cfg.Pool = pool
		var got, want *tile.Matrix
		w.Run(func(pe rt.PE) {
			a.FillRandom(pe, 8)
			b.FillRandom(pe, 9)
			c.Zero(pe)
			plan := BuildPlan(pe.Rank(), prob, StationaryC, planCap)
			ExecutePlan(pe, prob, plan, cfg)
			pe.Barrier()
			if pe.Rank() == 0 {
				got = c.Gather(pe, 0)
				want = tile.New(m, n)
				tile.GemmNaive(want, a.Gather(pe, 0), b.Gather(pe, 0))
			}
		})
		if !got.AllClose(want, 1e-4) {
			t.Fatalf("plan cache %d / exec cache %d: mismatch %g", planCap, execCap, got.MaxAbsDiff(want))
		}
		if live := pool.Stats().Live; live != 0 {
			t.Fatalf("plan cache %d / exec cache %d: %d pool elements leaked", planCap, execCap, live)
		}
	}
}

// Multiplies driven through the slot-based executor must stay correct when
// evictions are frequent (CacheTiles=1) and in sub-tile mode, where every
// step's slices are single-use pooled buffers.
func TestExecuteCorrectUnderEvictionPressure(t *testing.T) {
	const p, m, n, k = 4, 100, 90, 110
	for _, sub := range []bool{false, true} {
		w := shmem.NewWorld(p)
		a := distmat.New(w, m, k, distmat.Custom{TileRows: 7, TileCols: 11, ProcRows: 2, ProcCols: 2}, 1)
		b := distmat.New(w, k, n, distmat.ColBlock{}, 1)
		c := distmat.New(w, m, n, distmat.Block2D{}, 1)
		cfg := DefaultConfig()
		cfg.CacheTiles = 1
		cfg.SubTileFetch = sub
		cfg.Stationary = StationaryC
		var got, want *tile.Matrix
		w.Run(func(pe rt.PE) {
			a.FillRandom(pe, 5)
			b.FillRandom(pe, 6)
			Multiply(pe, c, a, b, cfg)
			pe.Barrier()
			if pe.Rank() == 0 {
				got = c.Gather(pe, 0)
				want = tile.New(m, n)
				tile.GemmNaive(want, a.Gather(pe, 0), b.Gather(pe, 0))
			}
		})
		if !got.AllClose(want, 1e-4) {
			t.Fatalf("subTile=%v: executor mismatch under eviction pressure: %g", sub, got.MaxAbsDiff(want))
		}
	}
}
