package gpusim

import (
	"fmt"
	"sort"
	"sync"
)

// Pool is a size-bucketed float32 buffer pool modelling the GPU memory pool
// of §4.2: the paper performs one large device allocation up front and then
// sub-allocates from the host to avoid device-wide synchronization on every
// cudaMalloc/zeMemAlloc. Here the pool additionally removes Go allocator /
// GC churn from the real-execution hot path and tracks a high-water mark so
// tests can assert on memory behaviour.
type Pool struct {
	mu        sync.Mutex
	buckets   map[int][][]float32
	live      int   // elements currently handed out
	highWater int   // max live elements ever
	allocs    int64 // fresh allocations (pool misses)
	hits      int64 // reuses (pool hits)
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{buckets: map[int][][]float32{}}
}

// roundSize buckets requests to limit fragmentation: sizes round up to the
// next power-of-two-ish bucket (1.5x steps above 4096).
func roundSize(n int) int {
	if n <= 0 {
		return 0
	}
	size := 64
	for size < n {
		if size < 4096 {
			size *= 2
		} else {
			size += size / 2
		}
	}
	return size
}

// Get returns a zeroed buffer of at least n elements (len == n).
func (p *Pool) Get(n int) []float32 {
	buf, recycled := p.get(n)
	if recycled {
		for i := range buf {
			buf[i] = 0
		}
	}
	return buf
}

// GetUninit returns a buffer of at least n elements (len == n) without
// zeroing recycled contents. Use it for destinations that are fully
// overwritten before being read — tile-fetch targets in the execution hot
// path — where Get's clearing pass would be pure overhead.
func (p *Pool) GetUninit(n int) []float32 {
	buf, _ := p.get(n)
	return buf
}

// get pops a bucketed buffer, reporting whether it was recycled (and may
// therefore hold stale contents); fresh make() allocations are already
// zero.
func (p *Pool) get(n int) (buf []float32, recycled bool) {
	if n == 0 {
		return nil, false
	}
	bucket := roundSize(n)
	p.mu.Lock()
	if stack := p.buckets[bucket]; len(stack) > 0 {
		buf = stack[len(stack)-1]
		p.buckets[bucket] = stack[:len(stack)-1]
		p.hits++
		recycled = true
	} else {
		p.allocs++
	}
	p.live += bucket
	if p.live > p.highWater {
		p.highWater = p.live
	}
	p.mu.Unlock()
	if buf == nil {
		buf = make([]float32, bucket)
	}
	return buf[:n], recycled
}

// Put returns a buffer obtained from Get to the pool. Passing a foreign
// slice is allowed as long as its capacity matches a bucket size; otherwise
// it is dropped.
func (p *Pool) Put(buf []float32) {
	if buf == nil {
		return
	}
	bucket := cap(buf)
	if roundSize(bucket) != bucket {
		return // not one of ours; let the GC have it
	}
	p.mu.Lock()
	p.buckets[bucket] = append(p.buckets[bucket], buf[:bucket])
	p.live -= bucket
	p.mu.Unlock()
}

// Stats reports pool behaviour.
type PoolStats struct {
	Live      int
	HighWater int
	Allocs    int64
	Hits      int64
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{Live: p.live, HighWater: p.highWater, Allocs: p.allocs, Hits: p.hits}
}

func (s PoolStats) String() string {
	return fmt.Sprintf("pool{live %d, highwater %d, allocs %d, hits %d}", s.Live, s.HighWater, s.Allocs, s.Hits)
}

// BucketSizes returns the distinct bucket sizes currently cached, sorted.
// Exposed for tests.
func (p *Pool) BucketSizes() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, 0, len(p.buckets))
	for s, stack := range p.buckets {
		if len(stack) > 0 {
			out = append(out, s)
		}
	}
	sort.Ints(out)
	return out
}
