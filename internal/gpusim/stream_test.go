package gpusim

import "testing"

// TestStreamEventOrdering is the event-ordering contract test: overlapping
// copy and compute ops on one device must respect event-wait edges across
// streams and in-order serialization within an engine, while genuinely
// independent ops overlap.
//
// Schedule under test (one device, a copy engine and a compute engine):
//
//	copyA  [0,2]  copy engine
//	copyB  [2,5]  copy engine         (queues behind copyA)
//	gemm1  [2,7]  compute, waits copyA (event edge; overlaps copyB)
//	gemm2  [7,8]  compute, waits copyB (ready at 5, queues behind gemm1)
func TestStreamEventOrdering(t *testing.T) {
	tl := NewTimeline()
	copyEng := tl.NewStream("copy")
	compute := tl.NewStream("compute")

	eA := copyEng.Enqueue(StreamOp{Label: "copyA", Kind: OpComm, Duration: 2})
	eB := copyEng.Enqueue(StreamOp{Label: "copyB", Kind: OpComm, Duration: 3})
	g1 := compute.Enqueue(StreamOp{Label: "gemm1", Kind: OpCompute, Duration: 5, Waits: []Event{eA}})
	g2 := compute.Enqueue(StreamOp{Label: "gemm2", Kind: OpCompute, Duration: 1, Waits: []Event{eB}})

	if eA.Time() != 2 || eB.Time() != 5 {
		t.Fatalf("copy engine must serialize in order: copyA end %g (want 2), copyB end %g (want 5)", eA.Time(), eB.Time())
	}
	if g1.Time() != 7 {
		t.Fatalf("gemm1 must start at copyA's event (2) and end at 7, ended %g", g1.Time())
	}
	if g2.Time() != 8 {
		t.Fatalf("gemm2 must queue behind gemm1 despite copyB's event firing at 5; ended %g (want 8)", g2.Time())
	}

	timings := tl.Timings()
	byLabel := map[string]OpTiming{}
	for _, ot := range timings {
		byLabel[ot.Label] = ot
	}
	if s := byLabel["gemm1"].Start; s != 2 {
		t.Fatalf("gemm1 start %g, want 2 (copyA's event-wait edge)", s)
	}
	if s := byLabel["copyB"].Start; s != 2 {
		t.Fatalf("copyB start %g, want 2 (copy engine serialization)", s)
	}
	// The event edge must not serialize the two engines: gemm1 runs while
	// copyB is still in flight.
	if byLabel["gemm1"].Start >= byLabel["copyB"].End {
		t.Fatal("gemm1 failed to overlap copyB; streams must be independent")
	}
	if s := byLabel["gemm2"].Start; s != 7 {
		t.Fatalf("gemm2 start %g, want 7 (in-order issue on the compute engine)", s)
	}

	// Queue-delay accounting: copyB queued 2s on the copy engine, gemm2
	// queued 2s on the compute engine (ready at 5, started at 7).
	if d := tl.QueueDelayFor(copyEng.Resource()); d != 2 {
		t.Fatalf("copy engine queue delay %g, want 2", d)
	}
	if d := tl.QueueDelayFor(compute.Resource()); d != 2 {
		t.Fatalf("compute engine queue delay %g, want 2", d)
	}
	if d := tl.QueueDelay(); d != 4 {
		t.Fatalf("total queue delay %g, want 4", d)
	}
	if end := tl.End(); end != 8 {
		t.Fatalf("timeline end %g, want 8", end)
	}
	if n := tl.NumOps(); n != 4 {
		t.Fatalf("NumOps %d, want 4", n)
	}
	if b := tl.BusyFor(copyEng.Resource()); b != 5 {
		t.Fatalf("copy engine busy %g, want 5", b)
	}
}

// TestStreamNotBeforeAndZeroEvent pins two edge rules: NotBefore delays an
// op past an idle engine (host-issue time), and the zero Event waits for
// nothing, so optional dependencies can be passed unconditionally.
func TestStreamNotBeforeAndZeroEvent(t *testing.T) {
	tl := NewTimeline()
	s := tl.NewStream("engine")
	var none Event
	if none.Valid() {
		t.Fatal("zero Event must be invalid")
	}
	e := s.Enqueue(StreamOp{Label: "late", Duration: 1, NotBefore: 3, Waits: []Event{none}})
	if e.Time() != 4 {
		t.Fatalf("op with NotBefore 3 on an idle engine must run [3,4], ended %g", e.Time())
	}
	if d := tl.QueueDelay(); d != 0 {
		t.Fatalf("host-issue delay is not queue delay, recorded %g", d)
	}
	if got := s.LastEvent(); got.Time() != e.Time() || !got.Valid() {
		t.Fatalf("LastEvent %+v does not match the stream tail %+v", got, e)
	}
}

// TestTimelineReset checks Reset rewinds schedules and accounting so one
// timeline can time successive measurements.
func TestTimelineReset(t *testing.T) {
	tl := NewTimeline()
	s := tl.NewStream("engine")
	s.Enqueue(StreamOp{Label: "a", Duration: 2})
	s.Enqueue(StreamOp{Label: "b", Duration: 2})
	tl.Reset()
	if tl.End() != 0 || tl.NumOps() != 0 || tl.QueueDelay() != 0 {
		t.Fatalf("Reset left state: end %g, ops %d, queue %g", tl.End(), tl.NumOps(), tl.QueueDelay())
	}
	if tail := s.LastEvent(); tail.Valid() {
		t.Fatalf("Reset left the stream tail at %g; waiting on it would leak pre-reset time", tail.Time())
	}
	if e := s.Enqueue(StreamOp{Label: "c", Duration: 1}); e.Time() != 1 {
		t.Fatalf("post-Reset op should run [0,1], ended %g", e.Time())
	}
}

// TestTimelineRejectsInvalidOps pins the validation panics.
func TestTimelineRejectsInvalidOps(t *testing.T) {
	tl := NewTimeline()
	tl.AddResource("r")
	mustPanic(t, "negative duration", func() {
		tl.Submit(StreamOp{Label: "bad", Duration: -1})
	})
	mustPanic(t, "unknown resource", func() {
		tl.Submit(StreamOp{Label: "bad", Duration: 1, Resources: []ResourceID{99}})
	})
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic: %s", what)
		}
	}()
	f()
}
