package gpusim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDevicePresetsMatchTable2(t *testing.T) {
	pvc := PresetPVCDevice()
	if pvc.PeakFlops != 22.7e12 {
		t.Fatalf("PVC peak = %g, want 22.7 TFLOPs", pvc.PeakFlops)
	}
	h := PresetH100Device()
	if h.PeakFlops != 67e12 {
		t.Fatalf("H100 peak = %g, want 67 TFLOPs", h.PeakFlops)
	}
	if !h.AccumComputeInterference {
		t.Fatal("H100 preset should model accumulate/GEMM interference (§5.2)")
	}
	if pvc.AccumComputeInterference {
		t.Fatal("PVC preset should not model accumulate/GEMM interference")
	}
	if pvc.AccumBWFactor != 0.8 {
		t.Fatalf("PVC accumulate factor = %g, want 0.8 (§5.1)", pvc.AccumBWFactor)
	}
}

func TestGemmTimeLowerBoundedByRoofline(t *testing.T) {
	d := PresetH100Device()
	m, n, k := 4096, 4096, 4096
	flops := 2.0 * 4096 * 4096 * 4096
	if got := d.GemmTime(m, n, k); got < flops/d.PeakFlops {
		t.Fatalf("GemmTime %g below compute roofline %g", got, flops/d.PeakFlops)
	}
}

func TestGemmEfficiencyShapePenalty(t *testing.T) {
	d := PresetPVCDevice()
	square := d.GemmEfficiency(4096, 4096, 4096)
	thin := d.GemmEfficiency(64, 64, 49152)
	if square <= thin {
		t.Fatalf("square GEMM efficiency %g should beat thin-panel %g", square, thin)
	}
	if square < 0.8 {
		t.Fatalf("large square GEMM should be near peak, got %g", square)
	}
	if square > 1.0+1e-9 {
		t.Fatalf("efficiency cannot exceed 1, got %g", square)
	}
}

func TestGemmTimeZeroForDegenerateShapes(t *testing.T) {
	d := PresetPVCDevice()
	if d.GemmTime(0, 10, 10) != 0 || d.GemmTime(10, 0, 10) != 0 || d.GemmTime(10, 10, 0) != 0 {
		t.Fatal("degenerate GEMM should take zero time")
	}
}

// Property: GEMM time is monotone in each dimension.
func TestGemmTimeMonotone(t *testing.T) {
	d := PresetH100Device()
	f := func(m0, n0, k0 uint8) bool {
		m, n, k := int(m0)+1, int(n0)+1, int(k0)+1
		return d.GemmTime(m+64, n, k) >= d.GemmTime(m, n, k) &&
			d.GemmTime(m, n+64, k) >= d.GemmTime(m, n, k) &&
			d.GemmTime(m, n, k+64) >= d.GemmTime(m, n, k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAccumTimeSlowerThanCopy(t *testing.T) {
	d := PresetPVCDevice()
	bytes, linkBW := 1e9, 26.5e9
	copyT := bytes / linkBW
	accumT := d.AccumTime(bytes, linkBW)
	ratio := copyT / accumT
	if math.Abs(ratio-0.8) > 1e-9 {
		t.Fatalf("accumulate should run at 0.8x copy bandwidth, ratio = %g", ratio)
	}
}

func TestEngineEmptyRun(t *testing.T) {
	e := NewEngine()
	r := e.Run()
	if r.Makespan != 0 {
		t.Fatalf("empty makespan = %g", r.Makespan)
	}
}

func TestEngineSerialChain(t *testing.T) {
	e := NewEngine()
	res := e.AddResource("compute")
	a := e.AddOp("a", OpCompute, 1.0, nil, []ResourceID{res})
	b := e.AddOp("b", OpCompute, 2.0, []OpID{a}, []ResourceID{res})
	e.AddOp("c", OpCompute, 3.0, []OpID{b}, []ResourceID{res})
	r := e.Run()
	if r.Makespan != 6.0 {
		t.Fatalf("chain makespan = %g, want 6", r.Makespan)
	}
	if r.Timings[1].Start != 1.0 || r.Timings[2].Start != 3.0 {
		t.Fatalf("chain starts wrong: %+v", r.Timings)
	}
}

func TestEngineIndependentOpsOverlapOnDistinctResources(t *testing.T) {
	e := NewEngine()
	r1 := e.AddResource("compute")
	r2 := e.AddResource("net")
	e.AddOp("gemm", OpCompute, 5.0, nil, []ResourceID{r1})
	e.AddOp("fetch", OpComm, 5.0, nil, []ResourceID{r2})
	r := e.Run()
	if r.Makespan != 5.0 {
		t.Fatalf("overlapped makespan = %g, want 5 (full overlap)", r.Makespan)
	}
}

func TestEngineResourceSerialization(t *testing.T) {
	e := NewEngine()
	link := e.AddResource("link")
	e.AddOp("x1", OpComm, 2.0, nil, []ResourceID{link})
	e.AddOp("x2", OpComm, 2.0, nil, []ResourceID{link})
	e.AddOp("x3", OpComm, 2.0, nil, []ResourceID{link})
	r := e.Run()
	if r.Makespan != 6.0 {
		t.Fatalf("serialized makespan = %g, want 6", r.Makespan)
	}
	if got := r.Utilization(link); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("link utilization = %g, want 1.0", got)
	}
}

func TestEngineMultiResourceOp(t *testing.T) {
	// A transfer occupies both egress and ingress; a second transfer sharing
	// only the egress must wait.
	e := NewEngine()
	eg := e.AddResource("egress0")
	in1 := e.AddResource("ingress1")
	in2 := e.AddResource("ingress2")
	e.AddOp("t1", OpComm, 3.0, nil, []ResourceID{eg, in1})
	e.AddOp("t2", OpComm, 3.0, nil, []ResourceID{eg, in2})
	r := e.Run()
	if r.Makespan != 6.0 {
		t.Fatalf("shared-egress makespan = %g, want 6", r.Makespan)
	}
}

func TestEngineHotSpotVsOffsetSchedules(t *testing.T) {
	// Reproduces the iteration-offset effect of §4.2 in miniature: 3 PEs
	// each fetch one tile from sources (0,0,0) [hot spot] vs (0,1,2)
	// [offset]. The hot-spot schedule serializes on PE0's egress port.
	build := func(sources []int) float64 {
		e := NewEngine()
		egress := make([]ResourceID, 3)
		ingress := make([]ResourceID, 3)
		for i := 0; i < 3; i++ {
			egress[i] = e.AddResource("eg")
			ingress[i] = e.AddResource("in")
		}
		for pe, src := range sources {
			e.AddOp("get", OpComm, 1.0, nil, []ResourceID{egress[src], ingress[pe]})
		}
		return e.Run().Makespan
	}
	hot := build([]int{0, 0, 0})
	offset := build([]int{0, 1, 2})
	if hot != 3.0 || offset != 1.0 {
		t.Fatalf("hot-spot = %g (want 3), offset = %g (want 1)", hot, offset)
	}
}

func TestEngineDiamondDependencies(t *testing.T) {
	e := NewEngine()
	r1 := e.AddResource("a")
	r2 := e.AddResource("b")
	src := e.AddOp("src", OpOther, 1.0, nil, nil)
	l := e.AddOp("left", OpCompute, 2.0, []OpID{src}, []ResourceID{r1})
	rt := e.AddOp("right", OpCompute, 4.0, []OpID{src}, []ResourceID{r2})
	e.AddOp("sink", OpOther, 1.0, []OpID{l, rt}, nil)
	r := e.Run()
	if r.Makespan != 6.0 { // 1 + max(2,4) + 1
		t.Fatalf("diamond makespan = %g, want 6", r.Makespan)
	}
}

func TestEngineProgramOrderTieBreak(t *testing.T) {
	e := NewEngine()
	res := e.AddResource("r")
	first := e.AddOp("first", OpCompute, 1.0, nil, []ResourceID{res})
	second := e.AddOp("second", OpCompute, 1.0, nil, []ResourceID{res})
	r := e.Run()
	if r.Timings[first].Start != 0 || r.Timings[second].Start != 1 {
		t.Fatalf("program order not respected: %+v", r.Timings)
	}
}

func TestEngineInvalidDepPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("forward dep should panic")
		}
	}()
	e.AddOp("bad", OpCompute, 1.0, []OpID{5}, nil)
}

func TestEngineNegativeDurationPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("negative duration should panic")
		}
	}()
	e.AddOp("bad", OpCompute, -1.0, nil, nil)
}

// Property: makespan is at least the critical path length and at least the
// busiest resource's total work.
func TestEngineMakespanLowerBounds(t *testing.T) {
	e := NewEngine()
	res := []ResourceID{e.AddResource("r0"), e.AddResource("r1"), e.AddResource("r2")}
	var prev OpID = -1
	totalPerRes := make([]float64, 3)
	critical := 0.0
	for i := 0; i < 30; i++ {
		dur := float64(i%5) * 0.5
		r := res[i%3]
		var deps []OpID
		if i%4 == 0 && prev >= 0 {
			deps = []OpID{prev}
		}
		id := e.AddOp("op", OpCompute, dur, deps, []ResourceID{r})
		totalPerRes[r] += dur
		if i%4 == 0 {
			critical += dur
		}
		prev = id
	}
	result := e.Run()
	for r, busy := range totalPerRes {
		if result.Makespan < busy-1e-9 {
			t.Fatalf("makespan %g below resource %d busy time %g", result.Makespan, r, busy)
		}
	}
	// Timings must respect dependencies and resource exclusivity.
	for i, tm := range result.Timings {
		if tm.End < tm.Start {
			t.Fatalf("op %d ends before it starts", i)
		}
	}
}

func TestEngineRunTwiceSameResult(t *testing.T) {
	e := NewEngine()
	r := e.AddResource("r")
	e.AddOp("a", OpCompute, 1.5, nil, []ResourceID{r})
	e.AddOp("b", OpCompute, 2.5, nil, []ResourceID{r})
	m1 := e.Run().Makespan
	m2 := e.Run().Makespan
	if m1 != m2 {
		t.Fatalf("Run not deterministic: %g vs %g", m1, m2)
	}
}

func TestPoolReuse(t *testing.T) {
	p := NewPool()
	b1 := p.Get(100)
	if len(b1) != 100 {
		t.Fatalf("Get len = %d", len(b1))
	}
	b1[0] = 42
	p.Put(b1)
	b2 := p.Get(100)
	if b2[0] != 0 {
		t.Fatal("pool must return zeroed buffers")
	}
	s := p.Stats()
	if s.Hits != 1 || s.Allocs != 1 {
		t.Fatalf("stats = %+v, want 1 hit 1 alloc", s)
	}
}

func TestPoolHighWater(t *testing.T) {
	p := NewPool()
	a := p.Get(1000)
	b := p.Get(1000)
	p.Put(a)
	p.Put(b)
	s := p.Stats()
	if s.Live != 0 {
		t.Fatalf("live = %d after returning all", s.Live)
	}
	if s.HighWater < 2000 {
		t.Fatalf("high water = %d, want >= 2000", s.HighWater)
	}
}

func TestPoolZeroAndNil(t *testing.T) {
	p := NewPool()
	if buf := p.Get(0); buf != nil {
		t.Fatal("Get(0) should be nil")
	}
	p.Put(nil) // must not panic
}

func TestPoolDropsForeignBuffers(t *testing.T) {
	p := NewPool()
	p.Put(make([]float32, 100)) // 100 is not a bucket size
	if got := p.BucketSizes(); len(got) != 0 {
		t.Fatalf("foreign buffer entered pool: %v", got)
	}
}

func TestRoundSizeBuckets(t *testing.T) {
	if roundSize(1) != 64 {
		t.Fatalf("roundSize(1) = %d", roundSize(1))
	}
	if roundSize(64) != 64 {
		t.Fatalf("roundSize(64) = %d", roundSize(64))
	}
	if roundSize(65) != 128 {
		t.Fatalf("roundSize(65) = %d", roundSize(65))
	}
	f := func(n uint16) bool {
		return roundSize(int(n)+1) >= int(n)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
