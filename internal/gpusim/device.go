// Package gpusim simulates the GPU devices of the paper's evaluation
// systems: a roofline compute model (Device), a memory pool (Pool), and
// two schedulers over exclusive resources that account for overlap
// between communication and computation:
//
//   - Engine is the offline discrete-event simulator: build a whole DAG
//     of ops with AddOp (dependencies are event edges by OpID), then Run
//     list-schedules it. The plan-replay estimators
//     (universal.SimulateMultiply, ir.Simulate) use it.
//   - Timeline is the online stream/event layer: ops are scheduled the
//     moment they are submitted, so real execution can interleave with
//     the model. Stream gives in-order command queues bound to an engine
//     (the analogue of CUDA / Level Zero streams), Event the cross-stream
//     dependency handles, and the Timeline records queue delay — time ops
//     sat behind busy engines. internal/gpubackend builds a
//     runtime.Backend from it.
//
// The paper reports performance as percent of theoretical FP32 peak
// (Figures 2-3). This package provides the device half of that model; the
// link half lives in package simnet. Together they let the benchmark
// harness regenerate the figures' shape without the authors' hardware.
package gpusim

import "fmt"

// Device describes one simulated GPU's compute characteristics.
type Device struct {
	// Name identifies the device model.
	Name string
	// PeakFlops is the theoretical FP32 peak in FLOP/s (Table 2).
	PeakFlops float64
	// MemBW is the HBM bandwidth in bytes/s used by the roofline model.
	MemBW float64
	// AccumBWFactor is the fraction of copy bandwidth the accumulate kernel
	// achieves. The paper measures ~0.8 on PVC (§5.1).
	AccumBWFactor float64
	// AccumComputeInterference, when true, makes remote accumulates into a
	// device also occupy that device's compute engine, modelling the
	// accumulate-kernel/GEMM interference the paper observes on H100 (§5.2).
	AccumComputeInterference bool
	// GranM, GranN, GranK are the kernel-granularity half-points of the
	// shape-efficiency model: a GEMM dimension d achieves d/(d+gran) of the
	// ideal throughput in that dimension, capturing the thin-panel GEMM
	// inefficiency the paper discusses for inner-product partitionings.
	GranM, GranN, GranK float64
	// LaunchOverhead is the fixed host-side cost of launching one kernel or
	// copy, which penalizes schedules with many tiny operations.
	LaunchOverhead float64
	// CopyInEngines and CopyOutEngines count the device's DMA engines per
	// direction: how many gets (respectively puts/accumulate egress) the
	// device can have in flight before they queue on an engine. H100s carry
	// more copy engines than a PVC tile. Zero means one (the historical
	// single engine pair), so hand-built devices keep their behaviour.
	CopyInEngines, CopyOutEngines int
}

// NumCopyInEngines returns the copy-in engine count (minimum 1).
func (d Device) NumCopyInEngines() int { return engineCount(d.CopyInEngines) }

// NumCopyOutEngines returns the copy-out engine count (minimum 1).
func (d Device) NumCopyOutEngines() int { return engineCount(d.CopyOutEngines) }

func engineCount(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// PresetPVCDevice returns an Intel Data Center GPU Max 1550 tile from
// Table 2: 22.7 TFLOPs FP32 peak per tile, HBM2e-class bandwidth.
func PresetPVCDevice() Device {
	return Device{
		Name:          "PVC tile",
		PeakFlops:     22.7e12,
		MemBW:         1.6e12,
		AccumBWFactor: 0.8,
		GranM:         48, GranN: 48, GranK: 48,
		LaunchOverhead: 5e-6,
		// One main copy engine per direction per tile (the blitter).
		CopyInEngines: 1, CopyOutEngines: 1,
	}
}

// PresetH100Device returns an Nvidia H100 from Table 2: 67 TFLOPs FP32
// peak, HBM3-class bandwidth. Accumulate kernels interfere with concurrent
// GEMMs on this device, as observed in §5.2 of the paper.
func PresetH100Device() Device {
	return Device{
		Name:                     "H100",
		PeakFlops:                67e12,
		MemBW:                    3.35e12,
		AccumBWFactor:            0.8,
		AccumComputeInterference: true,
		GranM:                    48, GranN: 48, GranK: 48,
		LaunchOverhead: 5e-6,
		// Hopper exposes several async copy engines per direction; three
		// per direction is what concurrent NVLink + PCIe/IB traffic can
		// actually drive.
		CopyInEngines: 3, CopyOutEngines: 3,
	}
}

// GemmTime returns the simulated seconds for a local m×k × k×n FP32 GEMM on
// the device: a roofline bound (max of compute time and memory time)
// inflated by the shape-granularity efficiency of the kernel.
func (d Device) GemmTime(m, n, k int) float64 {
	if m <= 0 || n <= 0 || k <= 0 {
		return 0
	}
	flops := 2 * float64(m) * float64(n) * float64(k)
	bytes := 4 * (float64(m)*float64(k) + float64(k)*float64(n) + 2*float64(m)*float64(n))
	eff := d.shapeEfficiency(m, n, k)
	computeT := flops / (d.PeakFlops * eff)
	memT := bytes / d.MemBW
	return maxf(computeT, memT)
}

// GemmEfficiency returns the fraction of peak the device achieves on an
// m×n×k GEMM in isolation (used by the cost model and for reporting).
func (d Device) GemmEfficiency(m, n, k int) float64 {
	t := d.GemmTime(m, n, k)
	if t == 0 {
		return 1
	}
	flops := 2 * float64(m) * float64(n) * float64(k)
	return flops / d.PeakFlops / t
}

func (d Device) shapeEfficiency(m, n, k int) float64 {
	em := float64(m) / (float64(m) + d.GranM)
	en := float64(n) / (float64(n) + d.GranN)
	ek := float64(k) / (float64(k) + d.GranK)
	// Geometric-style combination: one generous dimension cannot fully
	// compensate a degenerate one, but the penalty is softer than a product.
	e := cbrt(em * en * ek)
	if e <= 0 {
		return 1e-6
	}
	return e
}

// AccumTime returns the simulated seconds for the device-side accumulate
// kernel to apply bytes of updates arriving at full link bandwidth linkBW.
// The kernel achieves AccumBWFactor of the copy rate.
func (d Device) AccumTime(bytes, linkBW float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return bytes / (linkBW * d.AccumBWFactor)
}

func (d Device) String() string {
	return fmt.Sprintf("%s (%.1f TFLOPs, %.2f TB/s)", d.Name, d.PeakFlops/1e12, d.MemBW/1e12)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// cbrt is a small positive-domain cube root (avoids importing math for one
// call site and keeps the efficiency model self-contained).
func cbrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton iterations from a decent seed converge fast in (0, 1].
	// Stop as soon as the iterate is stationary: once next == g every
	// remaining iteration would reproduce g, so the early exit returns
	// bit-identical results to the fixed 40-pass loop it replaced — it
	// just skips the dead spins (the loop is on the cost model's hottest
	// path, one call per plan step per rank per autotune candidate).
	g := x
	if g > 1 {
		g = 1
	}
	for i := 0; i < 40; i++ {
		next := (2*g + x/(g*g)) / 3
		if next == g {
			break
		}
		g = next
	}
	return g
}
