package gpusim

// Scheduler equivalence and reuse tests for the PR 5 engine rebuild: the
// indexed-heap scheduler (Run) must produce bit-identical schedules to the
// legacy O(ready)-scan list scheduler (RunListOracle) — same makespans,
// same per-op start/end times, same program-order tie-breaks — and
// repeated Runs of a built DAG must not allocate.

import (
	"math/rand"
	"testing"
)

// assertSameSchedule fails unless the two results describe the identical
// schedule. Exact float equality is intentional: both schedulers compute
// the same max/add chains over the same values in the same order.
func assertSameSchedule(t *testing.T, want, got Result) {
	t.Helper()
	if want.Makespan != got.Makespan {
		t.Fatalf("makespan: oracle %g, heap %g", want.Makespan, got.Makespan)
	}
	if len(want.Timings) != len(got.Timings) {
		t.Fatalf("timing count: oracle %d, heap %d", len(want.Timings), len(got.Timings))
	}
	for i := range want.Timings {
		w, g := want.Timings[i], got.Timings[i]
		if w.Start != g.Start || w.End != g.End {
			t.Fatalf("op %d (%s): oracle [%g,%g], heap [%g,%g]",
				i, w.Label, w.Start, w.End, g.Start, g.End)
		}
	}
	for r := range want.BusyTime {
		if want.BusyTime[r] != got.BusyTime[r] {
			t.Fatalf("resource %d busy: oracle %g, heap %g", r, want.BusyTime[r], got.BusyTime[r])
		}
	}
}

// copyResult deep-copies a Result out of the engine-owned buffers so a
// later Run cannot overwrite it.
func copyResult(r Result) Result {
	out := Result{Makespan: r.Makespan}
	out.Timings = append([]OpTiming(nil), r.Timings...)
	out.BusyTime = append([]float64(nil), r.BusyTime...)
	return out
}

// randomDAG builds an engine with n ops over nres resources: random
// durations (including zero-duration ties), random dependency fan-in to
// earlier ops, random 0-3 resource sets, and duplicate labels to exercise
// interning.
func randomDAG(rng *rand.Rand, n, nres int) *Engine {
	e := NewEngine()
	res := make([]ResourceID, nres)
	for i := range res {
		res[i] = e.AddResource("r")
	}
	labels := []string{"get", "gemm", "accum", "reduce"}
	var deps []OpID
	var rs []ResourceID
	for i := 0; i < n; i++ {
		deps = deps[:0]
		for d := 0; d < rng.Intn(4) && i > 0; d++ {
			deps = append(deps, OpID(rng.Intn(i)))
		}
		rs = rs[:0]
		for r := 0; r < rng.Intn(4); r++ {
			rs = append(rs, res[rng.Intn(nres)])
		}
		// Quantized durations force plenty of exact start-time ties, the
		// regime where tie-break order is observable.
		dur := float64(rng.Intn(5)) * 0.25
		e.AddOp(labels[rng.Intn(len(labels))], OpKind(rng.Intn(4)), dur, deps, rs)
	}
	return e
}

func TestHeapSchedulerMatchesListOracleRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(400)
		nres := 1 + rng.Intn(12)
		e := randomDAG(rng, n, nres)
		oracle := e.RunListOracle()
		got := copyResult(e.Run())
		assertSameSchedule(t, oracle, got)
	}
}

// TestHeapSchedulerMatchesOracleOnStorms drives the parking-lot machinery
// hard: hundreds of identical-duration ops contending on one shared
// resource (with random second resources and a shared barrier dep), the
// incast shape where program-order ties decide everything.
func TestHeapSchedulerMatchesOracleOnStorms(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		e := NewEngine()
		hot := e.AddResource("nic")
		side := make([]ResourceID, 4)
		for i := range side {
			side[i] = e.AddResource("side")
		}
		barrier := e.AddOp("barrier", OpOther, 1.0, nil, nil)
		for i := 0; i < 300; i++ {
			rs := []ResourceID{hot}
			if rng.Intn(2) == 0 {
				rs = append(rs, side[rng.Intn(len(side))])
			}
			// Identical durations: every waiter ties, ids must decide.
			e.AddOp("flow", OpComm, 0.5, []OpID{barrier}, rs)
		}
		assertSameSchedule(t, e.RunListOracle(), copyResult(e.Run()))
	}
}

func TestHeapSchedulerMatchesOracleAfterIncrementalAdds(t *testing.T) {
	// Run, add more ops, Run again: the reverse CSR must be rebuilt and the
	// schedule stay pinned to the oracle.
	rng := rand.New(rand.NewSource(7))
	e := randomDAG(rng, 100, 4)
	assertSameSchedule(t, e.RunListOracle(), copyResult(e.Run()))
	for i := 0; i < 50; i++ {
		e.AddOp("late", OpComm, 0.5, []OpID{OpID(i * 2)}, nil)
	}
	assertSameSchedule(t, e.RunListOracle(), copyResult(e.Run()))
}

func TestHeapSchedulerProgramOrderTies(t *testing.T) {
	// All ops contend on one resource with identical durations: the
	// schedule must be exactly program order, the tie-break the estimator
	// relies on for in-order issue semantics.
	e := NewEngine()
	r := e.AddResource("r")
	for i := 0; i < 64; i++ {
		e.AddOp("op", OpCompute, 1.0, nil, []ResourceID{r})
	}
	run := e.Run()
	for i := 0; i < 64; i++ {
		if run.Timings[i].Start != float64(i) {
			t.Fatalf("op %d starts at %g, want %d (program order violated)", i, run.Timings[i].Start, i)
		}
	}
}

func TestEngineRunReuseAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	e := randomDAG(rng, 500, 8)
	e.Run() // warm the scratch (reverse CSR, heap, timings)
	if allocs := testing.AllocsPerRun(10, func() { e.Run() }); allocs != 0 {
		t.Fatalf("steady-state Engine.Run allocates %.1f times, want 0", allocs)
	}
}

func TestEngineCSRStorageViews(t *testing.T) {
	e := NewEngine()
	r0 := e.AddResource("a")
	r1 := e.AddResource("b")
	x := e.AddOp("x", OpCompute, 1, nil, []ResourceID{r0})
	y := e.AddOp("y", OpComm, 2, []OpID{x}, []ResourceID{r0, r1})
	if got := e.depsOf(y); len(got) != 1 || got[0] != x {
		t.Fatalf("depsOf(y) = %v", got)
	}
	if got := e.resourcesOf(y); len(got) != 2 || got[0] != r0 || got[1] != r1 {
		t.Fatalf("resourcesOf(y) = %v", got)
	}
	if got := e.resourcesOf(x); len(got) != 1 || got[0] != r0 {
		t.Fatalf("resourcesOf(x) = %v", got)
	}
	// Labels are interned: adding many ops with the same label must not
	// grow the table.
	for i := 0; i < 100; i++ {
		e.AddOp("x", OpCompute, 1, nil, nil)
	}
	if len(e.labels) != 2 {
		t.Fatalf("label table has %d entries, want 2 (interning broken)", len(e.labels))
	}
}
