package gpusim

import (
	"fmt"
	"math"
	"sync"
)

// Event is a handle to a completion point on a Timeline: the modeled
// instant an operation finished. Events are the dependency currency of the
// stream model — an op that lists an Event in its Waits may not start
// before that instant, the analogue of cudaStreamWaitEvent /
// zeCommandListAppendWaitOnEvents. The zero Event is "no event" and waits
// for nothing, so optional dependencies can be passed unconditionally.
type Event struct {
	at    float64
	valid bool
}

// Time returns the modeled completion time the event fired at (seconds).
// The zero Event reports 0.
func (e Event) Time() float64 { return e.at }

// Valid reports whether the event was recorded by a Timeline. The zero
// Event is invalid and imposes no ordering.
func (e Event) Valid() bool { return e.valid }

// eventAt builds a fired event (used by Timeline and tests).
func eventAt(t float64) Event { return Event{at: t, valid: true} }

// StreamOp describes one operation submitted to a Timeline.
type StreamOp struct {
	// Label names the op for reporting.
	Label string
	// Kind classifies the op (compute, comm, accum).
	Kind OpKind
	// NotBefore is the host-issue time: the op may not start earlier even
	// if every engine is idle, modelling that a stream op cannot run before
	// the host thread has enqueued it.
	NotBefore float64
	// Duration is the op's modeled service time in seconds.
	Duration float64
	// Waits are event-wait edges: the op may not start before every listed
	// (valid) event has fired.
	Waits []Event
	// Resources are the exclusive engines and ports the op occupies for its
	// whole duration: a copy engine, a compute engine, network ports.
	Resources []ResourceID
}

// Timeline is the online counterpart of Engine: where Engine builds a whole
// DAG first and list-schedules it in Run, a Timeline schedules each op the
// moment it is submitted, which is what a runtime backend needs — real
// execution interleaves with the model, and barriers and future waits must
// read modeled times mid-run.
//
// Submission order is issue order: an op starts at the earliest instant at
// which (1) its NotBefore host-issue time has passed, (2) every event it
// waits on has fired, and (3) every resource it occupies is free. Resources
// only ever become free later as ops are submitted, so ops sharing a
// resource serialize in submission order — in-order issue, exactly the
// guarantee a hardware queue gives. The gap between (1)+(2) and the actual
// start is queue delay: time the op sat ready in a queue behind earlier
// work, the signal a single-clock model cannot see.
//
// A Timeline is safe for concurrent use; concurrent submitters are
// serialized in an unspecified order (matching the nondeterminism of real
// multi-threaded enqueue).
type Timeline struct {
	mu        sync.Mutex
	names     []string
	free      []float64 // per-resource availability
	busy      []float64 // per-resource occupied seconds
	queueWait []float64 // per-resource queue delay imposed on ops
	streams   []*Stream // registered streams, so Reset can rewind their tails
	timings   []OpTiming
	end       float64 // latest op end scheduled so far
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return &Timeline{} }

// AddResource registers an exclusive resource (an engine or a port) and
// returns its ID. Resources must be registered before ops that use them.
func (tl *Timeline) AddResource(name string) ResourceID {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	tl.names = append(tl.names, name)
	tl.free = append(tl.free, 0)
	tl.busy = append(tl.busy, 0)
	tl.queueWait = append(tl.queueWait, 0)
	return ResourceID(len(tl.names) - 1)
}

// ResourceName returns the name a resource was registered with.
func (tl *Timeline) ResourceName(r ResourceID) string {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.names[r]
}

// Submit schedules op immediately and returns the event marking its
// completion. See the Timeline doc for the start-time rule.
func (tl *Timeline) Submit(op StreamOp) Event {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.submitLocked(op)
}

func (tl *Timeline) submitLocked(op StreamOp) Event {
	if op.Duration < 0 || math.IsNaN(op.Duration) {
		panic(fmt.Sprintf("gpusim: stream op %q has invalid duration %g", op.Label, op.Duration))
	}
	ready := op.NotBefore
	for _, e := range op.Waits {
		if e.valid && e.at > ready {
			ready = e.at
		}
	}
	start := ready
	blocker := ResourceID(-1)
	for _, r := range op.Resources {
		if int(r) < 0 || int(r) >= len(tl.names) {
			panic(fmt.Sprintf("gpusim: stream op %q uses unknown resource %d", op.Label, r))
		}
		if tl.free[r] > start {
			start = tl.free[r]
			blocker = r
		}
	}
	if blocker >= 0 {
		// The op sat queued for start-ready seconds; attribute the whole
		// wait to the last resource to free up (the binding constraint).
		tl.queueWait[blocker] += start - ready
	}
	end := start + op.Duration
	for _, r := range op.Resources {
		tl.free[r] = end
		tl.busy[r] += op.Duration
	}
	if end > tl.end {
		tl.end = end
	}
	tl.timings = append(tl.timings, OpTiming{
		ID: OpID(len(tl.timings)), Label: op.Label, Kind: op.Kind,
		Start: start, End: end,
		Resources: append([]ResourceID(nil), op.Resources...),
	})
	return eventAt(end)
}

// NumResources returns the number of registered resources (engines and
// ports/links), so renderers can walk them with ResourceName/BusyFor.
func (tl *Timeline) NumResources() int {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return len(tl.names)
}

// NumOps returns the number of ops submitted so far.
func (tl *Timeline) NumOps() int {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return len(tl.timings)
}

// End returns the latest modeled completion time of any submitted op.
func (tl *Timeline) End() float64 {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.end
}

// QueueDelay returns the total seconds ops spent queued behind busy
// resources after their host-issue time and event waits were satisfied —
// the aggregate queue-depth contention of the run.
func (tl *Timeline) QueueDelay() float64 {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	total := 0.0
	for _, w := range tl.queueWait {
		total += w
	}
	return total
}

// QueueDelayFor returns the queue delay attributed to one resource.
func (tl *Timeline) QueueDelayFor(r ResourceID) float64 {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.queueWait[r]
}

// BusyFor returns the total seconds a resource was occupied.
func (tl *Timeline) BusyFor(r ResourceID) float64 {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.busy[r]
}

// Timings returns the per-op schedule in submission order. The slice is a
// copy and safe to retain.
func (tl *Timeline) Timings() []OpTiming {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return append([]OpTiming(nil), tl.timings...)
}

// Reset zeroes every resource's availability, busy time, and queue delay,
// drops recorded timings, and rewinds every registered stream's tail
// event, so one timeline can time successive independent measurements
// (the Timeline analogue of a timed world's ResetTime).
func (tl *Timeline) Reset() {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	for i := range tl.free {
		tl.free[i] = 0
		tl.busy[i] = 0
		tl.queueWait[i] = 0
	}
	for _, s := range tl.streams {
		s.last = Event{}
	}
	tl.timings = tl.timings[:0]
	tl.end = 0
}

// Stream is an in-order command queue bound to one exclusive engine — the
// modeled analogue of a CUDA / Level Zero stream. Ops enqueued on a stream
// occupy the stream's engine, whose availability only moves forward, so a
// stream issues strictly in order; time an op spends behind earlier queued
// work is recorded as queue delay (it is queueing, not a data dependency).
// Extra resources (network ports, a victim device's compute engine) and
// cross-stream event waits compose per op.
type Stream struct {
	tl   *Timeline
	res  ResourceID
	last Event
	name string
}

// NewStream registers a fresh engine resource and returns a stream bound
// to it. The timeline keeps a reference so Reset can rewind the stream's
// tail along with the schedule.
func (tl *Timeline) NewStream(name string) *Stream {
	s := &Stream{tl: tl, res: tl.AddResource(name), name: name}
	tl.mu.Lock()
	tl.streams = append(tl.streams, s)
	tl.mu.Unlock()
	return s
}

// Resource returns the engine the stream issues to.
func (s *Stream) Resource() ResourceID { return s.res }

// Name returns the stream's name.
func (s *Stream) Name() string { return s.name }

// Enqueue submits op onto the stream: the stream's engine is appended to
// op.Resources, then the op is scheduled and becomes the stream's new
// tail. It returns the op's completion event.
func (s *Stream) Enqueue(op StreamOp) Event {
	s.tl.mu.Lock()
	defer s.tl.mu.Unlock()
	op.Resources = append(op.Resources, s.res)
	e := s.tl.submitLocked(op)
	s.last = e
	return e
}

// LastEvent returns the stream's current tail event — a record of "all work
// enqueued so far", the analogue of cudaEventRecord at the stream head.
func (s *Stream) LastEvent() Event {
	s.tl.mu.Lock()
	defer s.tl.mu.Unlock()
	return s.last
}
