package gpusim

import (
	"fmt"
	"math"
)

// ResourceID names an exclusive resource in the discrete-event engine: a
// device's compute engine, a PE's network egress or ingress port, a copy
// engine. An op occupies all its resources for its whole duration.
type ResourceID int

// OpID names a scheduled operation.
type OpID int

// OpKind classifies operations for reporting.
type OpKind int

const (
	OpCompute OpKind = iota
	OpComm
	OpAccum
	OpOther
)

func (k OpKind) String() string {
	switch k {
	case OpCompute:
		return "compute"
	case OpComm:
		return "comm"
	case OpAccum:
		return "accum"
	default:
		return "other"
	}
}

type op struct {
	id        OpID
	label     string
	kind      OpKind
	duration  float64
	deps      []OpID
	resources []ResourceID
}

// OpTiming reports when an op ran in the simulated schedule and which
// resources it occupied.
type OpTiming struct {
	ID         OpID
	Label      string
	Kind       OpKind
	Start, End float64
	Resources  []ResourceID
}

// Result summarizes a simulation run.
type Result struct {
	// Makespan is the simulated end-to-end time in seconds.
	Makespan float64
	// Timings holds per-op start/end times, indexed by OpID.
	Timings []OpTiming
	// BusyTime maps each resource to its total occupied seconds.
	BusyTime []float64
}

// Utilization returns the fraction of the makespan a resource was busy.
func (r Result) Utilization(res ResourceID) float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return r.BusyTime[res] / r.Makespan
}

// Engine is a discrete-event simulator over exclusive resources. Build a
// DAG of ops with AddOp, then Run computes a list schedule: each op starts
// at the earliest time all its dependencies have finished and all its
// resources are free, with ties broken by insertion (program) order.
type Engine struct {
	ops       []op
	resources []string
}

// NewEngine returns an empty engine.
func NewEngine() *Engine { return &Engine{} }

// AddResource registers an exclusive resource and returns its ID.
func (e *Engine) AddResource(name string) ResourceID {
	e.resources = append(e.resources, name)
	return ResourceID(len(e.resources) - 1)
}

// NumResources returns the number of registered resources.
func (e *Engine) NumResources() int { return len(e.resources) }

// ResourceName returns the name a resource was registered with.
func (e *Engine) ResourceName(r ResourceID) string { return e.resources[r] }

// AddOp appends an operation. Dependencies must reference ops already
// added, which guarantees the graph is acyclic by construction.
func (e *Engine) AddOp(label string, kind OpKind, duration float64, deps []OpID, resources []ResourceID) OpID {
	id := OpID(len(e.ops))
	if duration < 0 || math.IsNaN(duration) {
		panic(fmt.Sprintf("gpusim: op %q has invalid duration %g", label, duration))
	}
	for _, d := range deps {
		if d < 0 || d >= id {
			panic(fmt.Sprintf("gpusim: op %q depends on unknown op %d", label, d))
		}
	}
	for _, r := range resources {
		if int(r) < 0 || int(r) >= len(e.resources) {
			panic(fmt.Sprintf("gpusim: op %q uses unknown resource %d", label, r))
		}
	}
	e.ops = append(e.ops, op{
		id: id, label: label, kind: kind, duration: duration,
		deps: append([]OpID(nil), deps...), resources: append([]ResourceID(nil), resources...),
	})
	return id
}

// NumOps returns the number of ops added so far.
func (e *Engine) NumOps() int { return len(e.ops) }

// Run simulates the DAG and returns the schedule. The engine may be Run
// multiple times; each Run recomputes from scratch.
func (e *Engine) Run() Result {
	n := len(e.ops)
	res := Result{
		Timings:  make([]OpTiming, n),
		BusyTime: make([]float64, len(e.resources)),
	}
	if n == 0 {
		return res
	}

	depEnd := make([]float64, n)    // latest finish among scheduled deps
	remaining := make([]int, n)     // unscheduled dep count
	dependents := make([][]OpID, n) // reverse edges
	for _, o := range e.ops {
		remaining[o.id] = len(o.deps)
		for _, d := range o.deps {
			dependents[d] = append(dependents[d], o.id)
		}
	}
	resAvail := make([]float64, len(e.resources))

	// ready holds ops whose deps are all scheduled, in program order.
	ready := make([]OpID, 0, n)
	inReady := make([]bool, n)
	for _, o := range e.ops {
		if remaining[o.id] == 0 {
			ready = append(ready, o.id)
			inReady[o.id] = true
		}
	}

	scheduled := 0
	for scheduled < n {
		if len(ready) == 0 {
			panic("gpusim: no ready ops but schedule incomplete (dependency cycle?)")
		}
		// Pick the ready op with the earliest feasible start; ties go to the
		// op added first (program order), matching in-order issue per stream.
		bestIdx := -1
		bestStart := math.Inf(1)
		for idx, id := range ready {
			o := &e.ops[id]
			start := depEnd[id]
			for _, r := range o.resources {
				if resAvail[r] > start {
					start = resAvail[r]
				}
			}
			if start < bestStart || (start == bestStart && (bestIdx == -1 || id < ready[bestIdx])) {
				bestStart = start
				bestIdx = idx
			}
		}
		id := ready[bestIdx]
		ready = append(ready[:bestIdx], ready[bestIdx+1:]...)
		o := &e.ops[id]
		end := bestStart + o.duration
		res.Timings[id] = OpTiming{ID: id, Label: o.label, Kind: o.kind, Start: bestStart, End: end, Resources: o.resources}
		for _, r := range o.resources {
			resAvail[r] = end
			res.BusyTime[r] += o.duration
		}
		if end > res.Makespan {
			res.Makespan = end
		}
		for _, dep := range dependents[id] {
			if depEnd[dep] < end {
				depEnd[dep] = end
			}
			remaining[dep]--
			if remaining[dep] == 0 && !inReady[dep] {
				ready = append(ready, dep)
				inReady[dep] = true
			}
		}
		scheduled++
	}
	return res
}
