package gpusim

import (
	"fmt"
	"math"
)

// ResourceID names an exclusive resource in the discrete-event engine: a
// device's compute engine, a PE's network egress or ingress port, a copy
// engine, a fabric link. An op occupies all its resources for its whole
// duration.
type ResourceID int

// OpID names a scheduled operation.
type OpID int

// OpKind classifies operations for reporting.
type OpKind int

const (
	OpCompute OpKind = iota
	OpComm
	OpAccum
	OpOther
)

func (k OpKind) String() string {
	switch k {
	case OpCompute:
		return "compute"
	case OpComm:
		return "comm"
	case OpAccum:
		return "accum"
	default:
		return "other"
	}
}

// op is the per-op header; deps and resources live in the engine's flat
// CSR arrays (depFlat/resFlat indexed by depOff/resOff), and the label in
// the interned label table, so adding an op copies no per-op slices.
type op struct {
	label    int32
	kind     OpKind
	duration float64
}

// OpTiming reports when an op ran in the simulated schedule and which
// resources it occupied. Resources aliases the engine's storage; callers
// must not modify it.
type OpTiming struct {
	ID         OpID
	Label      string
	Kind       OpKind
	Start, End float64
	Resources  []ResourceID
}

// Result summarizes a simulation run.
//
// The slices are owned by the engine and reused by its next Run (that is
// what makes repeated Runs allocation-free); callers that need a Result to
// survive a later Run must copy them.
type Result struct {
	// Makespan is the simulated end-to-end time in seconds.
	Makespan float64
	// Timings holds per-op start/end times, indexed by OpID.
	Timings []OpTiming
	// BusyTime maps each resource to its total occupied seconds.
	BusyTime []float64
}

// Utilization returns the fraction of the makespan a resource was busy.
func (r Result) Utilization(res ResourceID) float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return r.BusyTime[res] / r.Makespan
}

// Engine is a discrete-event simulator over exclusive resources. Build a
// DAG of ops with AddOp, then Run computes a list schedule: each op starts
// at the earliest time all its dependencies have finished and all its
// resources are free, with ties broken by insertion (program) order.
//
// Ops are stored in flat CSR form — one shared array each for dependency
// and resource lists, indexed by per-op offsets — and labels are interned,
// so the builder does O(1) amortized appends per op with no per-op slice
// copies. Run schedules through an indexed min-heap of cached feasible
// start times with lazy invalidation (see run), visiting O(log n) heap
// entries per scheduled op instead of rescanning the whole ready set, and
// keeps its scratch state on the engine so repeated Runs of the same DAG
// allocate nothing.
type Engine struct {
	ops       []op
	depOff    []int32 // len(ops)+1 once any op exists
	depFlat   []OpID
	resOff    []int32
	resFlat   []ResourceID
	resources []string
	labels    []string
	labelIdx  map[string]int32

	sched runScratch
}

// NewEngine returns an empty engine.
func NewEngine() *Engine { return &Engine{} }

// AddResource registers an exclusive resource and returns its ID.
func (e *Engine) AddResource(name string) ResourceID {
	e.resources = append(e.resources, name)
	return ResourceID(len(e.resources) - 1)
}

// NumResources returns the number of registered resources.
func (e *Engine) NumResources() int { return len(e.resources) }

// ResourceName returns the name a resource was registered with.
func (e *Engine) ResourceName(r ResourceID) string { return e.resources[r] }

// intern returns the index of label in the label table, adding it on first
// sight. Estimator DAGs use a handful of distinct labels ("get", "gemm",
// "accum") across millions of ops, so ops store a 4-byte index.
func (e *Engine) intern(label string) int32 {
	if idx, ok := e.labelIdx[label]; ok {
		return idx
	}
	if e.labelIdx == nil {
		e.labelIdx = make(map[string]int32)
	}
	idx := int32(len(e.labels))
	e.labels = append(e.labels, label)
	e.labelIdx[label] = idx
	return idx
}

// AddOp appends an operation. Dependencies must reference ops already
// added, which guarantees the graph is acyclic by construction. The deps
// and resources slices are copied into the engine's flat storage, so the
// caller may reuse them across calls.
func (e *Engine) AddOp(label string, kind OpKind, duration float64, deps []OpID, resources []ResourceID) OpID {
	id := OpID(len(e.ops))
	if duration < 0 || math.IsNaN(duration) {
		panic(fmt.Sprintf("gpusim: op %q has invalid duration %g", label, duration))
	}
	for _, d := range deps {
		if d < 0 || d >= id {
			panic(fmt.Sprintf("gpusim: op %q depends on unknown op %d", label, d))
		}
	}
	for _, r := range resources {
		if int(r) < 0 || int(r) >= len(e.resources) {
			panic(fmt.Sprintf("gpusim: op %q uses unknown resource %d", label, r))
		}
	}
	if len(e.depFlat)+len(deps) > math.MaxInt32 || len(e.resFlat)+len(resources) > math.MaxInt32 {
		panic("gpusim: CSR edge storage exceeds 2^31 entries")
	}
	if len(e.depOff) == 0 {
		e.depOff = append(e.depOff, 0)
		e.resOff = append(e.resOff, 0)
	}
	e.depFlat = append(e.depFlat, deps...)
	e.resFlat = append(e.resFlat, resources...)
	e.depOff = append(e.depOff, int32(len(e.depFlat)))
	e.resOff = append(e.resOff, int32(len(e.resFlat)))
	e.ops = append(e.ops, op{label: e.intern(label), kind: kind, duration: duration})
	return id
}

// NumOps returns the number of ops added so far.
func (e *Engine) NumOps() int { return len(e.ops) }

// Reset discards every op and resource so the engine can host a fresh DAG,
// keeping all storage — the CSR arrays, the interned label table, and the
// scheduler scratch — at capacity. A long-lived engine can therefore replay
// one DAG per sweep point with zero steady-state allocations once the
// largest point has been seen. The next Run rebuilds the reverse CSR
// unconditionally: builtOps is poisoned rather than zeroed, because a new
// DAG with the same op count as the old one would otherwise satisfy the
// "already built" check and reuse stale reverse edges.
func (e *Engine) Reset() {
	e.ops = e.ops[:0]
	e.depOff = e.depOff[:0]
	e.depFlat = e.depFlat[:0]
	e.resOff = e.resOff[:0]
	e.resFlat = e.resFlat[:0]
	e.resources = e.resources[:0]
	e.sched.builtOps = -1
}

// depsOf returns op id's dependency list (a view into the CSR storage).
func (e *Engine) depsOf(id OpID) []OpID {
	return e.depFlat[e.depOff[id]:e.depOff[id+1]]
}

// resourcesOf returns op id's resource list (a view into the CSR storage).
func (e *Engine) resourcesOf(id OpID) []ResourceID {
	return e.resFlat[e.resOff[id]:e.resOff[id+1]]
}

// runScratch is the engine-owned state a Run needs: the reverse-edge CSR
// (rebuilt only when ops were added since the last Run) and the per-run
// arrays, all grown once and reused so steady-state Runs allocate nothing.
type runScratch struct {
	builtOps int     // ops covered by the reverse CSR below
	rdepOff  []int32 // reverse (dependents) CSR
	rdepFlat []OpID

	depEnd    []float64 // latest finish among scheduled deps
	remaining []int32   // unscheduled dep count
	resAvail  []float64 // per-resource availability
	key       []float64 // cached feasible start of heap entries
	heap      []OpID    // indexed binary min-heap ordered by (key, id)
	pos       []int32   // op -> heap slot, -1 when absent
	rep       []int32   // per-resource lot representative op, -1 when none
	lotOf     []int32   // op -> resource lot it is rep of / parked in, -1
	lots      [][]OpID  // per-resource parked ops, min-heaps ordered by OpID
	timings   []OpTiming
	busy      []float64
}

// ensureReverse (re)builds the dependents CSR when ops were added since
// the last build. AddOp only appends, so a stale reverse CSR is simply
// rebuilt in two passes (count, fill) over the forward CSR.
func (e *Engine) ensureReverse() {
	n := len(e.ops)
	s := &e.sched
	if s.builtOps == n {
		return
	}
	s.rdepOff = grow(s.rdepOff, n+1)
	for i := range s.rdepOff {
		s.rdepOff[i] = 0
	}
	for _, d := range e.depFlat {
		s.rdepOff[d+1]++
	}
	for i := 1; i <= n; i++ {
		s.rdepOff[i] += s.rdepOff[i-1]
	}
	s.rdepFlat = grow(s.rdepFlat, len(e.depFlat))
	// Fill using a moving cursor per source op: walk ops in order, and for
	// each dep edge place the dependent at the next free slot of the dep's
	// bucket. Reuse the remaining array as the per-op cursor scratch (Run
	// re-initializes it afterwards).
	s.remaining = grow(s.remaining, n)
	fill := s.remaining[:n]
	for i := range fill {
		fill[i] = 0
	}
	for id := 0; id < n; id++ {
		for _, d := range e.depsOf(OpID(id)) {
			s.rdepFlat[s.rdepOff[d]+fill[d]] = OpID(id)
			fill[d]++
		}
	}
	s.builtOps = n
}

// grow reslices s to length n, reallocating (without preserving contents)
// only when the capacity is insufficient — the scratch-reuse primitive
// behind allocation-free repeated Runs.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// feasibleStart returns the earliest instant op id could start given the
// current dependency ends and resource availability.
func (e *Engine) feasibleStart(id OpID) float64 {
	s := &e.sched
	start := s.depEnd[id]
	for _, r := range e.resourcesOf(id) {
		if s.resAvail[r] > start {
			start = s.resAvail[r]
		}
	}
	return start
}

// feasibleStartBinding is feasibleStart plus the binding resource: the
// first resource whose availability equals the start (preferring a
// resource over the dependency bound on ties, since only resource
// releases can push the start further). -1 when the dependency bound
// strictly dominates or the op uses no resources.
func (e *Engine) feasibleStartBinding(id OpID) (float64, int32) {
	s := &e.sched
	start := s.depEnd[id]
	binding := int32(-1)
	for _, r := range e.resourcesOf(id) {
		if s.resAvail[r] >= start {
			if s.resAvail[r] > start || binding < 0 {
				start = s.resAvail[r]
				binding = int32(r)
			}
		}
	}
	return start, binding
}

// heap ordering: by cached feasible start, ties to the lower OpID
// (program order, matching in-order issue per stream).
func (s *runScratch) heapLess(a, b OpID) bool {
	return s.key[a] < s.key[b] || (s.key[a] == s.key[b] && a < b)
}

func (s *runScratch) heapSwap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.pos[s.heap[i]] = int32(i)
	s.pos[s.heap[j]] = int32(j)
}

func (s *runScratch) heapPush(id OpID) {
	s.heap = append(s.heap, id)
	i := len(s.heap) - 1
	s.pos[id] = int32(i)
	s.heapUp(i)
}

func (s *runScratch) heapUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.heapLess(s.heap[i], s.heap[parent]) {
			return
		}
		s.heapSwap(i, parent)
		i = parent
	}
}

func (s *runScratch) heapDown(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.heapLess(s.heap[l], s.heap[smallest]) {
			smallest = l
		}
		if r < n && s.heapLess(s.heap[r], s.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		s.heapSwap(i, smallest)
		i = smallest
	}
}

func (s *runScratch) heapPopRoot() OpID {
	id := s.heap[0]
	last := len(s.heap) - 1
	s.heapSwap(0, last)
	s.heap = s.heap[:last]
	s.pos[id] = -1
	if last > 0 {
		s.heapDown(0)
	}
	return id
}

// heapRemove deletes an arbitrary entry (used when a lot representative is
// displaced by a lower-id arrival) — the operation the heap is indexed for.
func (s *runScratch) heapRemove(id OpID) {
	i := int(s.pos[id])
	last := len(s.heap) - 1
	s.heapSwap(i, last)
	s.heap = s.heap[:last]
	s.pos[id] = -1
	if i < last {
		s.heapDown(i)
		s.heapUp(i)
	}
}

// Parking lots: per-resource min-heaps of parked ops ordered by OpID
// alone. Every parked op's true feasible start is at least its lot
// resource's availability (availability only advances), and ops bound by
// the same resource tie at exactly that availability, so program order —
// the id — is the only ordering that matters inside a lot.

func (s *runScratch) lotPush(r int32, id OpID) {
	lot := append(s.lots[r], id)
	i := len(lot) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if lot[parent] <= lot[i] {
			break
		}
		lot[parent], lot[i] = lot[i], lot[parent]
		i = parent
	}
	s.lots[r] = lot
}

func (s *runScratch) lotPop(r int32) OpID {
	lot := s.lots[r]
	id := lot[0]
	last := len(lot) - 1
	lot[0] = lot[last]
	lot = lot[:last]
	i := 0
	for {
		l, rr := 2*i+1, 2*i+2
		smallest := i
		if l < last && lot[l] < lot[smallest] {
			smallest = l
		}
		if rr < last && lot[rr] < lot[smallest] {
			smallest = rr
		}
		if smallest == i {
			break
		}
		lot[i], lot[smallest] = lot[smallest], lot[i]
		i = smallest
	}
	s.lots[r] = lot
	return id
}

// enqueue makes a ready op a scheduling candidate. Ops whose feasible
// start is bound by a resource join that resource's lot: the lot keeps
// exactly one representative — the lowest-id member, since members bound
// by the same resource tie at its availability — in the heap, and parks
// the rest, so a resource release re-keys one candidate instead of every
// waiter. Unbound ops (dependency-limited or resource-free) enter the
// heap directly; their key is exact until some resource passes it.
func (e *Engine) enqueue(id OpID, start float64, binding int32) {
	s := &e.sched
	if binding < 0 {
		s.key[id] = start
		s.heapPush(id)
		return
	}
	w := s.rep[binding]
	switch {
	case w < 0:
		s.rep[binding] = int32(id)
		s.lotOf[id] = binding
		s.key[id] = start
		s.heapPush(id)
	case id < OpID(w):
		// Program order outranks the sitting representative: swap roles.
		s.heapRemove(OpID(w))
		s.lotPush(binding, OpID(w))
		s.rep[binding] = int32(id)
		s.lotOf[id] = binding
		s.key[id] = start
		s.heapPush(id)
	default:
		s.lotOf[id] = binding
		s.lotPush(binding, id)
	}
}

// promote refills lot r's representative after the sitting one left:
// parked members are revisited in id order; the first still bound by r
// becomes the representative, members bound elsewhere move to their new
// lot, and unbound members enter the heap with their (exact) start.
func (e *Engine) promote(r int32) {
	s := &e.sched
	s.rep[r] = -1
	for len(s.lots[r]) > 0 {
		m := s.lotPop(r)
		start, binding := e.feasibleStartBinding(m)
		if binding == r {
			s.rep[r] = int32(m)
			s.key[m] = start
			s.heapPush(m)
			return
		}
		s.lotOf[m] = -1
		e.enqueue(m, start, binding)
	}
}

// Run simulates the DAG and returns the schedule.
//
// The scheduler is event-driven: candidate ops (dependencies all
// scheduled) sit in an indexed min-heap keyed by their cached feasible
// start. Cached keys go stale only by becoming too small — scheduling an
// op can only push resource availability forward, and dependency end
// times are final once an op is ready — so a key is a lower bound and
// lazy invalidation on resource release is sound: pop the minimum,
// recompute its feasible start, and either schedule it (key exact — it is
// the true minimum, program-order ties included) or re-key it. Ops
// blocked behind the same resource are parked in that resource's lot with
// a single heap representative (see enqueue), so a release costs O(log n)
// instead of re-keying every waiter — the incast/reduce storms of
// cluster-scale sweeps are exactly that shape. The legacy O(ready)-rescan
// scheduler survives as RunListOracle and the equivalence tests pin the
// two schedules to each other bit for bit.
//
// The engine may be Run multiple times; each Run recomputes from scratch
// into reused engine-owned buffers (see Result), so steady-state Runs
// perform zero heap allocations.
func (e *Engine) Run() Result {
	n := len(e.ops)
	s := &e.sched
	e.ensureReverse() // may reuse s.remaining as scratch; reset below

	s.timings = grow(s.timings, n)
	s.busy = grow(s.busy, len(e.resources))
	res := Result{Timings: s.timings[:n], BusyTime: s.busy[:len(e.resources)]}
	for i := range res.BusyTime {
		res.BusyTime[i] = 0
	}
	if n == 0 {
		return res
	}

	s.depEnd = grow(s.depEnd, n)
	s.remaining = grow(s.remaining, n)
	s.resAvail = grow(s.resAvail, len(e.resources))
	s.key = grow(s.key, n)
	s.pos = grow(s.pos, n)
	s.rep = grow(s.rep, len(e.resources))
	s.lotOf = grow(s.lotOf, n)
	if cap(s.lots) < len(e.resources) {
		old := s.lots
		s.lots = make([][]OpID, len(e.resources))
		copy(s.lots, old)
	}
	s.lots = s.lots[:len(e.resources)]
	for i := range s.lots {
		s.lots[i] = s.lots[i][:0]
	}
	if cap(s.heap) < n {
		s.heap = make([]OpID, 0, n)
	}
	s.heap = s.heap[:0]
	for i := 0; i < n; i++ {
		s.depEnd[i] = 0
		s.remaining[i] = int32(e.depOff[i+1] - e.depOff[i])
		s.key[i] = 0
		s.pos[i] = -1
		s.lotOf[i] = -1
	}
	for i := range s.resAvail {
		s.resAvail[i] = 0
		s.rep[i] = -1
	}
	// Seed in program order: every op with no dependencies has feasible
	// start 0 on an idle machine (no resource is busy yet, so none binds).
	for i := 0; i < n; i++ {
		if s.remaining[i] == 0 {
			s.heapPush(OpID(i))
		}
	}

	scheduled := 0
	for scheduled < n {
		if len(s.heap) == 0 {
			panic("gpusim: no ready ops but schedule incomplete (dependency cycle?)")
		}
		id := s.heap[0]
		start, binding := e.feasibleStartBinding(id)
		if start > s.key[id] {
			// Stale key: a resource this op needs was claimed since the key
			// was cached.
			if s.lotOf[id] == binding {
				// Still representing the same lot (the storm fast path):
				// correct the key in place and re-sink.
				s.key[id] = start
				s.heapDown(0)
				continue
			}
			oldLot := s.lotOf[id]
			s.heapPopRoot()
			s.lotOf[id] = -1
			e.enqueue(id, start, binding)
			if oldLot >= 0 {
				e.promote(oldLot)
			}
			continue
		}
		s.heapPopRoot()
		if lot := s.lotOf[id]; lot >= 0 {
			s.lotOf[id] = -1
			e.promote(lot)
		}
		o := &e.ops[id]
		end := start + o.duration
		rs := e.resourcesOf(id)
		s.timings[id] = OpTiming{
			ID: id, Label: e.labels[o.label], Kind: o.kind,
			Start: start, End: end, Resources: rs,
		}
		for _, r := range rs {
			s.resAvail[r] = end
			res.BusyTime[r] += o.duration
		}
		if end > res.Makespan {
			res.Makespan = end
		}
		for _, dep := range s.rdepFlat[s.rdepOff[id]:s.rdepOff[id+1]] {
			if s.depEnd[dep] < end {
				s.depEnd[dep] = end
			}
			s.remaining[dep]--
			if s.remaining[dep] == 0 {
				ds, db := e.feasibleStartBinding(dep)
				e.enqueue(dep, ds, db)
			}
		}
		scheduled++
	}
	return res
}

// RunListOracle is the legacy O(ready)-scan list scheduler, kept verbatim
// as the reference implementation: Run must produce the identical schedule
// (makespans, per-op timings, program-order tie-breaks), which the
// equivalence tests pin across the conformance systems. Unlike Run it
// allocates fresh result and bookkeeping state on every call; use it for
// verification, not in hot paths.
func (e *Engine) RunListOracle() Result {
	n := len(e.ops)
	res := Result{
		Timings:  make([]OpTiming, n),
		BusyTime: make([]float64, len(e.resources)),
	}
	if n == 0 {
		return res
	}

	depEnd := make([]float64, n)    // latest finish among scheduled deps
	remaining := make([]int, n)     // unscheduled dep count
	dependents := make([][]OpID, n) // reverse edges
	for id := 0; id < n; id++ {
		deps := e.depsOf(OpID(id))
		remaining[id] = len(deps)
		for _, d := range deps {
			dependents[d] = append(dependents[d], OpID(id))
		}
	}
	resAvail := make([]float64, len(e.resources))

	// ready holds ops whose deps are all scheduled, in program order.
	ready := make([]OpID, 0, n)
	inReady := make([]bool, n)
	for id := 0; id < n; id++ {
		if remaining[id] == 0 {
			ready = append(ready, OpID(id))
			inReady[id] = true
		}
	}

	scheduled := 0
	for scheduled < n {
		if len(ready) == 0 {
			panic("gpusim: no ready ops but schedule incomplete (dependency cycle?)")
		}
		// Pick the ready op with the earliest feasible start; ties go to the
		// op added first (program order), matching in-order issue per stream.
		bestIdx := -1
		bestStart := math.Inf(1)
		for idx, id := range ready {
			start := depEnd[id]
			for _, r := range e.resourcesOf(id) {
				if resAvail[r] > start {
					start = resAvail[r]
				}
			}
			if start < bestStart || (start == bestStart && (bestIdx == -1 || id < ready[bestIdx])) {
				bestStart = start
				bestIdx = idx
			}
		}
		id := ready[bestIdx]
		ready = append(ready[:bestIdx], ready[bestIdx+1:]...)
		o := &e.ops[id]
		end := bestStart + o.duration
		res.Timings[id] = OpTiming{
			ID: id, Label: e.labels[o.label], Kind: o.kind,
			Start: bestStart, End: end, Resources: e.resourcesOf(id),
		}
		for _, r := range e.resourcesOf(id) {
			resAvail[r] = end
			res.BusyTime[r] += o.duration
		}
		if end > res.Makespan {
			res.Makespan = end
		}
		for _, dep := range dependents[id] {
			if depEnd[dep] < end {
				depEnd[dep] = end
			}
			remaining[dep]--
			if remaining[dep] == 0 && !inReady[dep] {
				ready = append(ready, dep)
				inReady[dep] = true
			}
		}
		scheduled++
	}
	return res
}
