package gpusim

import (
	"math/rand"
	"testing"
)

// buildChainGrid adds a w-wide, d-deep grid of ops over w resources with
// cross-links, a small DAG with genuine contention.
func buildChainGrid(e *Engine, w, d int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	res := make([]ResourceID, w)
	for i := range res {
		res[i] = e.AddResource("r")
	}
	prev := make([]OpID, w)
	for i := range prev {
		prev[i] = -1
	}
	deps := make([]OpID, 0, 2)
	for step := 0; step < d; step++ {
		for lane := 0; lane < w; lane++ {
			deps = deps[:0]
			if prev[lane] >= 0 {
				deps = append(deps, prev[lane])
			}
			if other := (lane + 1) % w; step > 0 && prev[other] >= 0 && rng.Intn(2) == 0 {
				deps = append(deps, prev[other])
			}
			prev[lane] = e.AddOp("op", OpCompute, 1+rng.Float64(), deps, res[lane:lane+1])
		}
	}
}

// Reset must let one engine host a sequence of different DAGs, each run
// matching what a fresh engine (and the list oracle) produces.
func TestEngineResetRebuildMatchesFresh(t *testing.T) {
	reused := NewEngine()
	for seed := int64(1); seed <= 6; seed++ {
		reused.Reset()
		buildChainGrid(reused, 4, 20, seed)
		got := reused.Run()

		fresh := NewEngine()
		buildChainGrid(fresh, 4, 20, seed)
		want := fresh.Run()

		if got.Makespan != want.Makespan {
			t.Fatalf("seed %d: reset engine makespan %g, fresh %g", seed, got.Makespan, want.Makespan)
		}
		oracle := fresh.RunListOracle()
		if got.Makespan != oracle.Makespan {
			t.Fatalf("seed %d: reset engine makespan %g, oracle %g", seed, got.Makespan, oracle.Makespan)
		}
		for i := range got.Timings {
			if got.Timings[i].Start != want.Timings[i].Start || got.Timings[i].End != want.Timings[i].End {
				t.Fatalf("seed %d: op %d timing (%g,%g) != fresh (%g,%g)", seed, i,
					got.Timings[i].Start, got.Timings[i].End, want.Timings[i].Start, want.Timings[i].End)
			}
		}
	}
}

// The trap Reset must not fall into: a new DAG with the SAME op count as
// the previous one must not reuse the stale reverse CSR. The two DAGs here
// have identical sizes but different edges, so a stale reverse CSR would
// produce a wrong (or deadlocked) schedule.
func TestEngineResetSameSizeDifferentEdges(t *testing.T) {
	e := NewEngine()
	r := e.AddResource("r")
	a := e.AddOp("a", OpCompute, 1, nil, []ResourceID{r})
	e.AddOp("b", OpCompute, 1, []OpID{a}, []ResourceID{r})
	e.Run() // builds the reverse CSR for DAG 1

	e.Reset()
	r = e.AddResource("r")
	e.AddOp("a", OpCompute, 1, nil, []ResourceID{r})
	e.AddOp("b", OpCompute, 1, nil, []ResourceID{r}) // independent this time
	got := e.Run()
	want := e.RunListOracle()
	if got.Makespan != want.Makespan {
		t.Fatalf("same-size rebuild: heap %g, oracle %g", got.Makespan, want.Makespan)
	}
	if got.Timings[1].Start != 1 {
		t.Fatalf("op b should start at 1 (resource serialization), got %g", got.Timings[1].Start)
	}
}

// After one warmup build at a given size, a Reset → rebuild → Run cycle
// must not allocate: the CSR arrays, label table, and scheduler scratch
// all persist across Reset. This is the property that makes a long-lived
// engine free to replay one DAG per sweep point.
func TestEngineResetRebuildAllocFree(t *testing.T) {
	e := NewEngine()
	var res [2]ResourceID
	var deps [1]OpID
	build := func() {
		res[0] = e.AddResource("r0")
		res[1] = e.AddResource("r1")
		prev := OpID(-1)
		for i := 0; i < 200; i++ {
			var d []OpID
			if prev >= 0 {
				deps[0] = prev
				d = deps[:1]
			}
			lane := i % 2
			prev = e.AddOp("op", OpCompute, 1, d, res[lane:lane+1])
		}
	}
	build()
	e.Run()

	allocs := testing.AllocsPerRun(20, func() {
		e.Reset()
		build()
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("reset+rebuild+run allocates %.0f, want 0", allocs)
	}
}
