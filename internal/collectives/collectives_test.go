package collectives

import (
	"testing"

	rt "slicing/internal/runtime"
	"slicing/internal/shmem"
)

func TestGroupBasics(t *testing.T) {
	g := WorldGroup(4)
	if g.Size() != 4 || g.IndexOf(2) != 2 || !g.Contains(3) {
		t.Fatalf("world group wrong: %+v", g)
	}
	sub := NewGroup(3, 1)
	if sub.IndexOf(3) != 0 || sub.IndexOf(1) != 1 || sub.IndexOf(0) != -1 {
		t.Fatalf("subgroup indexing wrong: %+v", sub)
	}
}

func TestNewGroupEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty group should panic")
		}
	}()
	NewGroup()
}

func TestBroadcastWorld(t *testing.T) {
	w := shmem.NewWorld(4)
	seg := w.AllocSymmetric(8)
	g := WorldGroup(4)
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			local := pe.Local(seg)
			for i := range local {
				local[i] = float32(i + 1)
			}
		}
		Broadcast(pe, g, seg, 0, 8, 0)
		local := pe.Local(seg)
		for i := 0; i < 8; i++ {
			if local[i] != float32(i+1) {
				t.Errorf("rank %d elem %d = %v", pe.Rank(), i, local[i])
			}
		}
	})
}

func TestBroadcastSubgroupAndOffset(t *testing.T) {
	w := shmem.NewWorld(4)
	seg := w.AllocSymmetric(8)
	g := NewGroup(1, 3) // root is member 0 == rank 1
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 1 {
			pe.Local(seg)[4] = 42
		}
		if pe.Rank() == 0 {
			pe.Local(seg)[4] = 7 // non-member, must be untouched
		}
		Broadcast(pe, g, seg, 4, 2, 0)
		switch pe.Rank() {
		case 3:
			if pe.Local(seg)[4] != 42 {
				t.Errorf("member rank 3 did not receive broadcast")
			}
		case 0:
			if pe.Local(seg)[4] != 7 {
				t.Errorf("non-member rank 0 was modified")
			}
		}
	})
}

func TestReduceSumsToRoot(t *testing.T) {
	w := shmem.NewWorld(6)
	seg := w.AllocSymmetric(4)
	g := WorldGroup(6)
	w.Run(func(pe rt.PE) {
		local := pe.Local(seg)
		for i := range local {
			local[i] = float32(pe.Rank() + 1)
		}
		Reduce(pe, g, seg, 0, 4, 0)
		if pe.Rank() == 0 {
			if local[0] != 21 { // 1+2+...+6
				t.Errorf("reduced value = %v, want 21", local[0])
			}
		} else if local[0] != float32(pe.Rank()+1) {
			t.Errorf("non-root rank %d modified: %v", pe.Rank(), local[0])
		}
	})
}

func TestAllReduce(t *testing.T) {
	w := shmem.NewWorld(4)
	seg := w.AllocSymmetric(3)
	g := WorldGroup(4)
	w.Run(func(pe rt.PE) {
		local := pe.Local(seg)
		for i := range local {
			local[i] = 1
		}
		AllReduce(pe, g, seg, 0, 3)
		for i := range local {
			if local[i] != 4 {
				t.Errorf("rank %d elem %d = %v, want 4", pe.Rank(), i, local[i])
			}
		}
	})
}

func TestReduceScatter(t *testing.T) {
	const p = 4
	const n = 10 // 10/4 = chunks of 2,2,2,4
	w := shmem.NewWorld(p)
	seg := w.AllocSymmetric(n)
	g := WorldGroup(p)
	w.Run(func(pe rt.PE) {
		local := pe.Local(seg)
		for i := range local {
			local[i] = float32(i)
		}
		ReduceScatter(pe, g, seg, 0, n, nil)
		idx := g.IndexOf(pe.Rank())
		chunk := n / p
		begin := idx * chunk
		size := chunk
		if idx == p-1 {
			size = n - (p-1)*chunk
		}
		for i := begin; i < begin+size; i++ {
			if local[i] != float32(i*p) {
				t.Errorf("rank %d chunk elem %d = %v, want %v", pe.Rank(), i, local[i], float32(i*p))
			}
		}
	})
}

func TestAllGather(t *testing.T) {
	const p = 4
	const n = 9 // chunks 2,2,2,3
	w := shmem.NewWorld(p)
	seg := w.AllocSymmetric(n)
	g := WorldGroup(p)
	w.Run(func(pe rt.PE) {
		idx := g.IndexOf(pe.Rank())
		chunk := n / p
		begin := idx * chunk
		size := chunk
		if idx == p-1 {
			size = n - (p-1)*chunk
		}
		local := pe.Local(seg)
		for i := begin; i < begin+size; i++ {
			local[i] = float32(100*idx + i)
		}
		AllGather(pe, g, seg, 0, n)
		for srcIdx := 0; srcIdx < p; srcIdx++ {
			b := srcIdx * chunk
			s := chunk
			if srcIdx == p-1 {
				s = n - (p-1)*chunk
			}
			for i := b; i < b+s; i++ {
				if local[i] != float32(100*srcIdx+i) {
					t.Errorf("rank %d elem %d = %v, want %v", pe.Rank(), i, local[i], float32(100*srcIdx+i))
				}
			}
		}
	})
}

func TestReduceInvalidRootPanics(t *testing.T) {
	w := shmem.NewWorld(2)
	seg := w.AllocSymmetric(2)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid root should panic")
		}
	}()
	w.Run(func(pe rt.PE) {
		Reduce(pe, WorldGroup(2), seg, 0, 2, 5)
	})
}

func TestCollectivesComposable(t *testing.T) {
	// Two disjoint subgroups all-reducing concurrently must not interfere.
	w := shmem.NewWorld(4)
	seg := w.AllocSymmetric(2)
	g0 := NewGroup(0, 1)
	g1 := NewGroup(2, 3)
	w.Run(func(pe rt.PE) {
		local := pe.Local(seg)
		local[0] = float32(pe.Rank() + 1)
		if g0.Contains(pe.Rank()) {
			AllReduce(pe, g0, seg, 0, 1)
		} else {
			AllReduce(pe, g1, seg, 0, 1)
		}
		want := float32(3) // 1+2
		if g1.Contains(pe.Rank()) {
			want = 7 // 3+4
		}
		if local[0] != want {
			t.Errorf("rank %d = %v, want %v", pe.Rank(), local[0], want)
		}
	})
}
