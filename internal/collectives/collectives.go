// Package collectives implements the collective operations classical
// distributed matrix multiplication algorithms depend on — broadcast,
// reduce, all-reduce, all-gather, and reduce-scatter — built exclusively on
// the one-sided primitives of package shmem (ring algorithms using remote
// get and accumulate).
//
// The universal algorithm itself needs none of these; they exist for the
// baselines the paper compares against (SUMMA's row/column broadcasts,
// 2.5D replica reductions, DTensor's redistribute, COSMA's group
// all-reduce), exactly the "packed collectives" dependency the paper calls
// out as a vendor-support burden (§1, §5.2).
package collectives

import (
	"fmt"
	rt "slicing/internal/runtime"
)

// Group identifies a subset of world ranks that participate in a
// collective, with a fixed ordering. All members must call the collective;
// member index 0 plays the root role unless stated otherwise.
type Group struct {
	Ranks []int
}

// WorldGroup returns the group of all ranks in ascending order.
func WorldGroup(p int) Group {
	g := Group{Ranks: make([]int, p)}
	for i := range g.Ranks {
		g.Ranks[i] = i
	}
	return g
}

// NewGroup builds a group from explicit ranks.
func NewGroup(ranks ...int) Group {
	if len(ranks) == 0 {
		panic("collectives: empty group")
	}
	return Group{Ranks: append([]int(nil), ranks...)}
}

// Size returns the number of members.
func (g Group) Size() int { return len(g.Ranks) }

// IndexOf returns the member index of rank, or -1 if rank is not a member.
func (g Group) IndexOf(rank int) int {
	for i, r := range g.Ranks {
		if r == rank {
			return i
		}
	}
	return -1
}

// Contains reports whether rank is in the group.
func (g Group) Contains(rank int) bool { return g.IndexOf(rank) >= 0 }

// Broadcast copies the root member's region [offset, offset+n) of seg into
// every other member's same region. One-sided pull implementation: each
// non-root member gets the data directly from the root after a barrier.
// Collective over the whole world (the barrier is global, which is the
// only synchronization primitive the PGAS layer exposes).
func Broadcast(pe rt.PE, g Group, seg rt.SegmentID, offset, n int, rootIdx int) {
	checkRoot(g, rootIdx)
	pe.Barrier() // root data complete
	if idx := g.IndexOf(pe.Rank()); idx >= 0 && idx != rootIdx {
		local := pe.Local(seg)
		pe.Get(local[offset:offset+n], seg, g.Ranks[rootIdx], offset)
	}
	pe.Barrier()
}

// Reduce sums every member's region of seg into the root member's region.
// Non-root contributions are accumulated with one-sided atomic adds; the
// non-root regions keep their original values.
func Reduce(pe rt.PE, g Group, seg rt.SegmentID, offset, n int, rootIdx int) {
	checkRoot(g, rootIdx)
	pe.Barrier() // all contributions in place
	if idx := g.IndexOf(pe.Rank()); idx >= 0 && idx != rootIdx {
		local := pe.Local(seg)
		pe.AccumulateAdd(local[offset:offset+n], seg, g.Ranks[rootIdx], offset)
	}
	pe.Barrier()
}

// AllReduce sums every member's region and leaves the result on all
// members (reduce to member 0, then broadcast).
func AllReduce(pe rt.PE, g Group, seg rt.SegmentID, offset, n int) {
	Reduce(pe, g, seg, offset, n, 0)
	Broadcast(pe, g, seg, offset, n, 0)
}

// ReduceScatter sums every member's region and leaves member i with the
// i-th of Size() equal chunks of the sum (the remainder goes to the last
// member). Each member pulls and sums its own chunk from all peers, which
// spreads network load the way a ring reduce-scatter does.
func ReduceScatter(pe rt.PE, g Group, seg rt.SegmentID, offset, n int, scratch []float32) {
	p := g.Size()
	pe.Barrier()
	if idx := g.IndexOf(pe.Rank()); idx >= 0 {
		chunk := n / p
		begin := offset + idx*chunk
		size := chunk
		if idx == p-1 {
			size = n - (p-1)*chunk
		}
		if len(scratch) < size {
			scratch = make([]float32, size)
		}
		local := pe.Local(seg)
		mine := local[begin : begin+size]
		for step := 1; step < p; step++ {
			peer := g.Ranks[(idx+step)%p]
			pe.Get(scratch[:size], seg, peer, begin)
			for i := range mine {
				mine[i] += scratch[i]
			}
		}
	}
	pe.Barrier()
}

// AllGather concatenates each member's chunk into every member's full
// region: member i owns chunk i of n/Size() elements (remainder on the
// last member); afterwards all members hold all chunks. Pull-based.
func AllGather(pe rt.PE, g Group, seg rt.SegmentID, offset, n int) {
	p := g.Size()
	pe.Barrier()
	if idx := g.IndexOf(pe.Rank()); idx >= 0 {
		chunk := n / p
		local := pe.Local(seg)
		for step := 1; step < p; step++ {
			srcIdx := (idx + step) % p
			peer := g.Ranks[srcIdx]
			begin := offset + srcIdx*chunk
			size := chunk
			if srcIdx == p-1 {
				size = n - (p-1)*chunk
			}
			pe.Get(local[begin:begin+size], seg, peer, begin)
		}
	}
	pe.Barrier()
}

func checkRoot(g Group, rootIdx int) {
	if rootIdx < 0 || rootIdx >= g.Size() {
		panic(fmt.Sprintf("collectives: root index %d out of group of %d", rootIdx, g.Size()))
	}
}
