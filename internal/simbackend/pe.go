package simbackend

import rt "slicing/internal/runtime"

// pe is a timed processing element: every one-sided operation delegates the
// real data movement to the inner shmem PE and charges its modeled duration
// to the PE's virtual clock and the involved network ports or fabric links.
type pe struct {
	inner rt.PE
	w     *World
	rank  int
}

func (p *pe) Rank() int  { return p.rank }
func (p *pe) NumPE() int { return p.w.NumPE() }

// World returns the timed world, satisfying runtime.Allocator.
func (p *pe) World() rt.World { return p.w }

// AllocSymmetric performs a collective symmetric allocation (free in the
// timing model, as allocation is in the real runtimes' setup phase).
func (p *pe) AllocSymmetric(n int) rt.SegmentID { return p.inner.AllocSymmetric(n) }

// Local returns the zero-copy view of this PE's segment storage. Reading
// through it is device-local and free, like dereferencing HBM.
func (p *pe) Local(seg rt.SegmentID) []float32 { return p.inner.Local(seg) }

func (p *pe) Get(dst []float32, seg rt.SegmentID, remote, offset int) {
	p.inner.Get(dst, seg, remote, offset)
	p.w.chargeTransfer(p.rank, remote, p.rank, len(dst), p.w.transferDur(remote, p.rank, len(dst)), 0, true)
}

func (p *pe) Put(src []float32, seg rt.SegmentID, remote, offset int) {
	p.inner.Put(src, seg, remote, offset)
	p.w.chargeTransfer(p.rank, p.rank, remote, len(src), p.w.transferDur(p.rank, remote, len(src)), 0, true)
}

func (p *pe) AccumulateAdd(src []float32, seg rt.SegmentID, remote, offset int) {
	if p.w.crossNode(p.rank, remote) {
		// §3: across a node boundary the RDMA fabric offers no remote
		// atomics, so the accumulate is automatically rerouted through the
		// coarse-lock get+put scheme and priced as the round trip it is.
		p.AccumulateAddGetPut(src, seg, remote, offset)
		return
	}
	p.inner.AccumulateAdd(src, seg, remote, offset)
	p.w.chargeTransfer(p.rank, p.rank, remote, len(src), p.w.accumDur(p.rank, remote, len(src)), 0, true)
}

// AccumulateAddGetPut is the inter-node path (§3): priced as the full
// get + put round trip it performs on RDMA-only fabrics, the put gated on
// the get's completion as the coarse lock requires.
func (p *pe) AccumulateAddGetPut(src []float32, seg rt.SegmentID, remote, offset int) {
	p.inner.AccumulateAddGetPut(src, seg, remote, offset)
	n := len(src)
	p.w.chargeTransfer(p.rank, remote, p.rank, n, p.w.transferDur(remote, p.rank, n), 0, true)
	p.w.chargeTransfer(p.rank, p.rank, remote, n, p.w.transferDur(p.rank, remote, n), 0, true)
}

func (p *pe) GetStrided(dst []float32, dstStride int, seg rt.SegmentID, remote, offset, srcStride, rows, cols int) {
	p.inner.GetStrided(dst, dstStride, seg, remote, offset, srcStride, rows, cols)
	p.w.chargeTransfer(p.rank, remote, p.rank, rows*cols, p.w.transferDur(remote, p.rank, rows*cols), 0, true)
}

func (p *pe) PutStrided(src []float32, srcStride int, seg rt.SegmentID, remote, offset, dstStride, rows, cols int) {
	p.inner.PutStrided(src, srcStride, seg, remote, offset, dstStride, rows, cols)
	p.w.chargeTransfer(p.rank, p.rank, remote, rows*cols, p.w.transferDur(p.rank, remote, rows*cols), 0, true)
}

func (p *pe) AccumulateAddStrided(src []float32, srcStride int, seg rt.SegmentID, remote, offset, dstStride, rows, cols int) {
	if p.w.crossNode(p.rank, remote) {
		// §3 applies to strided accumulates too: each destination row is a
		// contiguous range, so the block decomposes into per-row get+put
		// round trips under the same stripe locks, and the whole block is
		// priced as one rows×cols round trip (matching the strided get/put
		// transfers, which also move the block as one DMA).
		for r := 0; r < rows; r++ {
			p.inner.AccumulateAddGetPut(src[r*srcStride:r*srcStride+cols], seg, remote, offset+r*dstStride)
		}
		n := rows * cols
		p.w.chargeTransfer(p.rank, remote, p.rank, n, p.w.transferDur(remote, p.rank, n), 0, true)
		p.w.chargeTransfer(p.rank, p.rank, remote, n, p.w.transferDur(p.rank, remote, n), 0, true)
		return
	}
	p.inner.AccumulateAddStrided(src, srcStride, seg, remote, offset, dstStride, rows, cols)
	p.w.chargeTransfer(p.rank, p.rank, remote, rows*cols, p.w.accumDur(p.rank, remote, rows*cols), 0, true)
}

// GetAsync performs the copy immediately (any moment between issue and Wait
// is a legal completion time for a one-sided read, and the source region is
// stable under the algorithms' barrier discipline) but reserves the network
// ports/links now and defers the clock charge to Wait — the timed analogue
// of get_tile_async overlapping transfers with compute.
func (p *pe) GetAsync(dst []float32, seg rt.SegmentID, remote, offset int) rt.Future {
	p.inner.Get(dst, seg, remote, offset)
	end := p.w.chargeTransfer(p.rank, remote, p.rank, len(dst), p.w.transferDur(remote, p.rank, len(dst)), 0, false)
	return &timedFuture{w: p.w, rank: p.rank, end: end}
}

func (p *pe) GetStridedAsync(dst []float32, dstStride int, seg rt.SegmentID, remote, offset, srcStride, rows, cols int) rt.Future {
	p.inner.GetStrided(dst, dstStride, seg, remote, offset, srcStride, rows, cols)
	end := p.w.chargeTransfer(p.rank, remote, p.rank, rows*cols, p.w.transferDur(remote, p.rank, rows*cols), 0, false)
	return &timedFuture{w: p.w, rank: p.rank, end: end}
}

func (p *pe) AccumulateAddAsync(src []float32, seg rt.SegmentID, remote, offset int) rt.Future {
	n := len(src)
	if p.w.crossNode(p.rank, remote) {
		// §3 inter-node path, asynchronous flavour: the data movement is
		// the get+put scheme, the get is reserved at issue, and the put may
		// not start before the get's modeled completion.
		p.inner.AccumulateAddGetPut(src, seg, remote, offset)
		getEnd := p.w.chargeTransfer(p.rank, remote, p.rank, n, p.w.transferDur(remote, p.rank, n), 0, false)
		end := p.w.chargeTransfer(p.rank, p.rank, remote, n, p.w.transferDur(p.rank, remote, n), getEnd, false)
		return &timedFuture{w: p.w, rank: p.rank, end: end}
	}
	p.inner.AccumulateAdd(src, seg, remote, offset)
	end := p.w.chargeTransfer(p.rank, p.rank, remote, n, p.w.accumDur(p.rank, remote, n), 0, false)
	return &timedFuture{w: p.w, rank: p.rank, end: end}
}

// Barrier synchronizes real execution and virtual clocks: after the
// barrier every PE's clock is the maximum clock any PE had on entry, the
// same semantics a hardware barrier has for wall time.
func (p *pe) Barrier() {
	w := p.w
	w.mu.Lock()
	w.snapshot[p.rank] = w.clock[p.rank]
	w.mu.Unlock()
	p.inner.Barrier() // all snapshots published
	w.mu.Lock()
	worst := 0.0
	for _, c := range w.snapshot {
		if c > worst {
			worst = c
		}
	}
	if worst > w.clock[p.rank] {
		w.clock[p.rank] = worst
	}
	w.mu.Unlock()
	p.inner.Barrier() // all clocks synced before anyone re-publishes
}

// Now returns this PE's virtual time (runtime.Clock).
func (p *pe) Now() float64 { return p.w.PETime(p.rank) }

// Elapse charges local busy time (runtime.Clock).
func (p *pe) Elapse(seconds float64) {
	if seconds > 0 {
		p.w.chargeLocal(p.rank, seconds)
	}
}

// ElapseGemm charges a roofline-priced m×n×k local GEMM plus launch
// overhead (runtime.GemmTimer).
func (p *pe) ElapseGemm(m, n, k int) {
	p.w.chargeLocal(p.rank, p.w.dev.GemmTime(m, n, k)+p.w.dev.LaunchOverhead)
}

// timedFuture is an already-materialized transfer whose modeled completion
// time is end; waiting advances the waiter's clock to it.
type timedFuture struct {
	w    *World
	rank int
	end  float64
}

func (f *timedFuture) Wait() { f.w.advanceTo(f.rank, f.end) }

// Done reports data completion, which on this backend is immediate (the
// copy happens at issue); only Wait charges the modeled completion time.
// Returning true keeps backend-portable polling loops terminating.
func (f *timedFuture) Done() bool { return true }
