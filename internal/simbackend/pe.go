package simbackend

import rt "slicing/internal/runtime"

// pe is a timed processing element: every one-sided operation delegates the
// real data movement to the inner shmem PE and charges its modeled duration
// to the PE's virtual clock and the involved network ports.
type pe struct {
	inner rt.PE
	w     *World
	rank  int
}

func (p *pe) Rank() int  { return p.rank }
func (p *pe) NumPE() int { return p.w.NumPE() }

// World returns the timed world, satisfying runtime.Allocator.
func (p *pe) World() rt.World { return p.w }

// AllocSymmetric performs a collective symmetric allocation (free in the
// timing model, as allocation is in the real runtimes' setup phase).
func (p *pe) AllocSymmetric(n int) rt.SegmentID { return p.inner.AllocSymmetric(n) }

// Local returns the zero-copy view of this PE's segment storage. Reading
// through it is device-local and free, like dereferencing HBM.
func (p *pe) Local(seg rt.SegmentID) []float32 { return p.inner.Local(seg) }

func (p *pe) Get(dst []float32, seg rt.SegmentID, remote, offset int) {
	p.inner.Get(dst, seg, remote, offset)
	p.w.chargeTransfer(p.rank, remote, p.rank, p.w.transferDur(remote, p.rank, len(dst)), true)
}

func (p *pe) Put(src []float32, seg rt.SegmentID, remote, offset int) {
	p.inner.Put(src, seg, remote, offset)
	p.w.chargeTransfer(p.rank, p.rank, remote, p.w.transferDur(p.rank, remote, len(src)), true)
}

func (p *pe) AccumulateAdd(src []float32, seg rt.SegmentID, remote, offset int) {
	p.inner.AccumulateAdd(src, seg, remote, offset)
	p.w.chargeTransfer(p.rank, p.rank, remote, p.w.accumDur(p.rank, remote, len(src)), true)
}

// AccumulateAddGetPut is the inter-node path (§3): priced as the full
// get + put round trip it performs on RDMA-only fabrics.
func (p *pe) AccumulateAddGetPut(src []float32, seg rt.SegmentID, remote, offset int) {
	p.inner.AccumulateAddGetPut(src, seg, remote, offset)
	n := len(src)
	p.w.chargeTransfer(p.rank, remote, p.rank, p.w.transferDur(remote, p.rank, n), true)
	p.w.chargeTransfer(p.rank, p.rank, remote, p.w.transferDur(p.rank, remote, n), true)
}

func (p *pe) GetStrided(dst []float32, dstStride int, seg rt.SegmentID, remote, offset, srcStride, rows, cols int) {
	p.inner.GetStrided(dst, dstStride, seg, remote, offset, srcStride, rows, cols)
	p.w.chargeTransfer(p.rank, remote, p.rank, p.w.transferDur(remote, p.rank, rows*cols), true)
}

func (p *pe) PutStrided(src []float32, srcStride int, seg rt.SegmentID, remote, offset, dstStride, rows, cols int) {
	p.inner.PutStrided(src, srcStride, seg, remote, offset, dstStride, rows, cols)
	p.w.chargeTransfer(p.rank, p.rank, remote, p.w.transferDur(p.rank, remote, rows*cols), true)
}

func (p *pe) AccumulateAddStrided(src []float32, srcStride int, seg rt.SegmentID, remote, offset, dstStride, rows, cols int) {
	p.inner.AccumulateAddStrided(src, srcStride, seg, remote, offset, dstStride, rows, cols)
	p.w.chargeTransfer(p.rank, p.rank, remote, p.w.accumDur(p.rank, remote, rows*cols), true)
}

// GetAsync performs the copy immediately (any moment between issue and Wait
// is a legal completion time for a one-sided read, and the source region is
// stable under the algorithms' barrier discipline) but reserves the network
// ports now and defers the clock charge to Wait — the timed analogue of
// get_tile_async overlapping transfers with compute.
func (p *pe) GetAsync(dst []float32, seg rt.SegmentID, remote, offset int) rt.Future {
	p.inner.Get(dst, seg, remote, offset)
	end := p.w.chargeTransfer(p.rank, remote, p.rank, p.w.transferDur(remote, p.rank, len(dst)), false)
	return &timedFuture{w: p.w, rank: p.rank, end: end}
}

func (p *pe) GetStridedAsync(dst []float32, dstStride int, seg rt.SegmentID, remote, offset, srcStride, rows, cols int) rt.Future {
	p.inner.GetStrided(dst, dstStride, seg, remote, offset, srcStride, rows, cols)
	end := p.w.chargeTransfer(p.rank, remote, p.rank, p.w.transferDur(remote, p.rank, rows*cols), false)
	return &timedFuture{w: p.w, rank: p.rank, end: end}
}

func (p *pe) AccumulateAddAsync(src []float32, seg rt.SegmentID, remote, offset int) rt.Future {
	p.inner.AccumulateAdd(src, seg, remote, offset)
	end := p.w.chargeTransfer(p.rank, p.rank, remote, p.w.accumDur(p.rank, remote, len(src)), false)
	return &timedFuture{w: p.w, rank: p.rank, end: end}
}

// Barrier synchronizes real execution and virtual clocks: after the
// barrier every PE's clock is the maximum clock any PE had on entry, the
// same semantics a hardware barrier has for wall time.
func (p *pe) Barrier() {
	w := p.w
	w.mu.Lock()
	w.snapshot[p.rank] = w.clock[p.rank]
	w.mu.Unlock()
	p.inner.Barrier() // all snapshots published
	w.mu.Lock()
	worst := 0.0
	for _, c := range w.snapshot {
		if c > worst {
			worst = c
		}
	}
	if worst > w.clock[p.rank] {
		w.clock[p.rank] = worst
	}
	w.mu.Unlock()
	p.inner.Barrier() // all clocks synced before anyone re-publishes
}

// Now returns this PE's virtual time (runtime.Clock).
func (p *pe) Now() float64 { return p.w.PETime(p.rank) }

// Elapse charges local busy time (runtime.Clock).
func (p *pe) Elapse(seconds float64) {
	if seconds > 0 {
		p.w.chargeLocal(p.rank, seconds)
	}
}

// ElapseGemm charges a roofline-priced m×n×k local GEMM plus launch
// overhead (runtime.GemmTimer).
func (p *pe) ElapseGemm(m, n, k int) {
	p.w.chargeLocal(p.rank, p.w.dev.GemmTime(m, n, k)+p.w.dev.LaunchOverhead)
}

// timedFuture is an already-materialized transfer whose modeled completion
// time is end; waiting advances the waiter's clock to it.
type timedFuture struct {
	w    *World
	rank int
	end  float64
}

func (f *timedFuture) Wait() { f.w.advanceTo(f.rank, f.end) }

// Done reports data completion, which on this backend is immediate (the
// copy happens at issue); only Wait charges the modeled completion time.
// Returning true keeps backend-portable polling loops terminating.
func (f *timedFuture) Done() bool { return true }
