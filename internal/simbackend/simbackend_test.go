package simbackend

import (
	"math"
	"testing"

	"slicing/internal/gpusim"
	rt "slicing/internal/runtime"
	"slicing/internal/simnet"
)

// testDevice is a device with round numbers and no launch overhead so
// expected durations are exact.
func testDevice() gpusim.Device {
	return gpusim.Device{
		Name:          "test",
		PeakFlops:     1e12,
		MemBW:         1e12,
		AccumBWFactor: 1,
		GranM:         1, GranN: 1, GranK: 1,
	}
}

// testWorld returns a timed world over a p-PE uniform fabric of 1 GB/s
// links with zero latency: moving n float32 remotely takes 4n nanoseconds.
func testWorld(t *testing.T, p int) *World {
	t.Helper()
	topo := simnet.NewUniform(p, 1e9, 1e12, 0, "test-fabric")
	return New(topo, testDevice()).NewWorld(p).(*World)
}

const secPerFloat = 4e-9 // 4 bytes over 1 GB/s

func TestSyncGetAdvancesClock(t *testing.T) {
	w := testWorld(t, 2)
	seg := w.AllocSymmetric(1000)
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			dst := make([]float32, 1000)
			pe.Get(dst, seg, 1, 0)
		}
	})
	want := 1000 * secPerFloat
	if got := w.PETime(0); math.Abs(got-want) > want*1e-9 {
		t.Fatalf("clock after sync get = %g, want %g", got, want)
	}
	if got := w.PETime(1); got != 0 {
		t.Fatalf("target clock moved to %g; one-sided ops must not consume target time", got)
	}
}

func TestRemoteOpsMoveRealData(t *testing.T) {
	w := testWorld(t, 2)
	seg := w.AllocSymmetric(4)
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			pe.Put([]float32{1, 2, 3, 4}, seg, 1, 0)
			pe.AccumulateAdd([]float32{10, 10, 10, 10}, seg, 1, 0)
		}
		pe.Barrier()
		got := make([]float32, 4)
		pe.Get(got, seg, 1, 0)
		if got[0] != 11 || got[3] != 14 {
			t.Errorf("rank %d read %v, want [11 12 13 14]", pe.Rank(), got)
		}
	})
}

func TestEgressPortContentionSerializes(t *testing.T) {
	// Ranks 1 and 2 both pull 1000 floats from rank 0: the two transfers
	// share rank 0's egress port, so one of them finishes at 2× the
	// contention-free time.
	w := testWorld(t, 3)
	seg := w.AllocSymmetric(1000)
	w.Run(func(pe rt.PE) {
		if pe.Rank() != 0 {
			dst := make([]float32, 1000)
			pe.Get(dst, seg, 0, 0)
		}
	})
	one := 1000 * secPerFloat
	if got, want := w.PredictedSeconds(), 2*one; math.Abs(got-want) > want*1e-9 {
		t.Fatalf("contended makespan = %g, want %g (two serialized transfers)", got, want)
	}
	first, second := w.PETime(1), w.PETime(2)
	if first > second {
		first, second = second, first
	}
	if math.Abs(first-one) > one*1e-9 || math.Abs(second-2*one) > one*1e-9 {
		t.Fatalf("per-PE completion times %g, %g; want %g and %g", first, second, one, 2*one)
	}
}

func TestLocalOpsBypassPorts(t *testing.T) {
	// A local get is priced on device memory bandwidth (1 TB/s here) and
	// must not reserve network ports.
	w := testWorld(t, 2)
	seg := w.AllocSymmetric(1000)
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			dst := make([]float32, 1000)
			pe.Get(dst, seg, 0, 0)
		}
	})
	want := 4000 / 1e12
	if got := w.PETime(0); math.Abs(got-want) > want*1e-6 {
		t.Fatalf("local get time = %g, want %g", got, want)
	}
}

func TestAsyncGetDefersClockToWait(t *testing.T) {
	w := testWorld(t, 2)
	seg := w.AllocSymmetric(1000)
	var atIssue, afterWait float64
	w.Run(func(pe rt.PE) {
		if pe.Rank() != 0 {
			return
		}
		dst := make([]float32, 1000)
		f := pe.GetAsync(dst, seg, 1, 0)
		atIssue = w.PETime(0)
		f.Wait()
		afterWait = w.PETime(0)
	})
	if atIssue != 0 {
		t.Fatalf("clock advanced to %g at issue; async ops must charge at Wait", atIssue)
	}
	want := 1000 * secPerFloat
	if math.Abs(afterWait-want) > want*1e-9 {
		t.Fatalf("clock after Wait = %g, want %g", afterWait, want)
	}
}

func TestAsyncOverlapsWithCompute(t *testing.T) {
	// Issue a 1000-float fetch, do 1 ms of modeled compute, then wait: the
	// transfer (4 µs) hides entirely under the compute.
	w := testWorld(t, 2)
	seg := w.AllocSymmetric(1000)
	w.Run(func(pe rt.PE) {
		if pe.Rank() != 0 {
			return
		}
		dst := make([]float32, 1000)
		f := pe.GetAsync(dst, seg, 1, 0)
		rt.Elapse(pe, 1e-3)
		f.Wait()
	})
	if got := w.PETime(0); math.Abs(got-1e-3) > 1e-12 {
		t.Fatalf("overlapped time = %g, want 1e-3 (transfer hidden)", got)
	}
}

func TestBarrierSyncsClocks(t *testing.T) {
	w := testWorld(t, 4)
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 2 {
			rt.Elapse(pe, 0.5)
		}
		pe.Barrier()
		if now := pe.(rt.Clock).Now(); now < 0.5 {
			t.Errorf("rank %d clock %g after barrier, want >= 0.5", pe.Rank(), now)
		}
	})
	if got := w.PredictedSeconds(); got != 0.5 {
		t.Fatalf("makespan = %g, want 0.5", got)
	}
}

func TestChargeGemmUsesDeviceRoofline(t *testing.T) {
	w := testWorld(t, 1)
	dev := testDevice()
	w.Run(func(pe rt.PE) {
		rt.ChargeGemm(pe, 64, 64, 64)
	})
	want := dev.GemmTime(64, 64, 64) + dev.LaunchOverhead
	if got := w.PETime(0); math.Abs(got-want) > want*1e-9 {
		t.Fatalf("gemm charge = %g, want %g", got, want)
	}
}

func TestAccumulateGetPutPricedAsRoundTrip(t *testing.T) {
	w := testWorld(t, 2)
	seg := w.AllocSymmetric(1000)
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			pe.AccumulateAddGetPut(make([]float32, 1000), seg, 1, 0)
		}
	})
	want := 2 * 1000 * secPerFloat
	if got := w.PETime(0); math.Abs(got-want) > want*1e-9 {
		t.Fatalf("get+put accumulate = %g, want %g (full round trip)", got, want)
	}
}

func TestResetTime(t *testing.T) {
	w := testWorld(t, 2)
	seg := w.AllocSymmetric(100)
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			pe.Get(make([]float32, 100), seg, 1, 0)
		}
	})
	if w.PredictedSeconds() == 0 {
		t.Fatal("expected nonzero time before reset")
	}
	w.ResetTime()
	if got := w.PredictedSeconds(); got != 0 {
		t.Fatalf("time after reset = %g", got)
	}
}

func TestStatsDelegateToRealTraffic(t *testing.T) {
	w := testWorld(t, 2)
	seg := w.AllocSymmetric(8)
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			pe.Get(make([]float32, 8), seg, 1, 0)
			pe.AccumulateAdd(make([]float32, 4), seg, 1, 0)
		}
	})
	s := w.Stats()
	if s.RemoteGetBytes != 32 || s.RemoteAccumBytes != 16 {
		t.Fatalf("stats = %+v, want 32 get / 16 accum bytes", s)
	}
}

func TestWorldSizeMustMatchTopology(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched world size should panic")
		}
	}()
	New(simnet.PresetH100(), testDevice()).NewWorld(12)
}

func TestBackendName(t *testing.T) {
	b := New(simnet.PresetPVC(), gpusim.PresetPVCDevice())
	if b.Name() != "simnet:12xPVC XeLink" {
		t.Fatalf("backend name = %q", b.Name())
	}
}
