// Package simbackend is the simnet-timed execution backend: a
// runtime.Backend that performs the same real data movement as the
// in-process shmem backend while weaving link-level timing from package
// simnet (Xe Link / NVLink topologies, per-PE egress/ingress port
// contention) and device timing from package gpusim (roofline GEMMs,
// accumulate-kernel bandwidth, launch overhead) into every operation.
//
// One run of an algorithm on this backend therefore produces both a
// numeric result — bit-for-bit the computation the shmem backend performs —
// and a modeled wall-clock for the chosen system, closing the gap between
// real execution and the side-channel estimators (universal.SimulateMultiply,
// ir.Simulate, costmodel): those replay plans; this backend times what the
// executor actually did, including its dynamic scheduling decisions.
//
// Timing model. Every PE carries a virtual clock. A remote transfer
// src→dst may not start before the initiating PE's clock, the source's
// egress port, and the destination's ingress port are all free; it then
// occupies both ports for latency + bytes/bandwidth (+ kernel-launch
// overhead), the same serialization that produces the network hot-spotting
// the paper's iteration offset (§4.2) exists to avoid. When the topology
// is link-routed (internal/fabric via simnet.Routed), the two ports are
// replaced by the transfer's whole route: every link on the static
// src→dst path is reserved for the transfer's duration, so transfers with
// different endpoints still contend when they share a switch uplink, a
// NIC, or a rail, and per-link busy/queue/byte accounting is reported
// through runtime.FabricStatsOf. On multi-node topologies
// (simnet.NodeMapper), AccumulateAdd between PEs on different machines is
// automatically routed through the §3 get+put path — RDMA-only inter-node
// fabrics offer no remote atomics — and priced as the full round trip it
// performs. Synchronous
// operations advance the caller's clock to the transfer's end; asynchronous
// operations reserve the ports at issue and advance the clock only when the
// future is waited on, which is what lets prefetch depth and bounded chain
// concurrency overlap communication with compute in the modeled timeline
// exactly as they do in the real one. Local operations (src == dst and
// same-device accumulates) are priced against the device's memory
// bandwidth and bypass the ports. Compute is reported by executors through
// runtime.ChargeGemm and priced with the gpusim roofline. Barriers
// synchronize every PE's clock to the global maximum.
//
// Durations come from the shared §4.3 cost tables (internal/costmodel), so
// this backend, internal/gpubackend, and the plan-replay estimators all
// price a given transfer, accumulate, or GEMM identically; the backends
// differ only in how operations contend. The single clock per PE means
// operations issued by one PE serialize in the model even when a deeper
// pipeline would queue them — queue-depth contention and accumulate/GEMM
// interference are invisible here and are what internal/gpubackend adds.
package simbackend

import (
	"fmt"
	"sync"

	"slicing/internal/costmodel"
	"slicing/internal/fabric"
	"slicing/internal/gpusim"
	rt "slicing/internal/runtime"
	"slicing/internal/shmem"
	"slicing/internal/simnet"
)

// Backend builds simnet-timed worlds over one evaluation system (an
// interconnect topology plus a device model, e.g. Table 2's PVC or H100
// node).
type Backend struct {
	Topo simnet.Topology
	Dev  gpusim.Device
}

// New returns a backend for the given system.
func New(topo simnet.Topology, dev gpusim.Device) Backend {
	return Backend{Topo: topo, Dev: dev}
}

// Name identifies the backend.
func (b Backend) Name() string { return "simnet:" + b.Topo.Name() }

// NewWorld creates a timed world of p PEs. p must match the topology.
func (b Backend) NewWorld(p int) rt.World {
	if p != b.Topo.NumPE() {
		panic(fmt.Sprintf("simbackend: world of %d PEs over %d-PE topology %s",
			p, b.Topo.NumPE(), b.Topo.Name()))
	}
	w := &World{
		inner:       shmem.NewWorld(p),
		topo:        b.Topo,
		dev:         b.Dev,
		cost:        costmodel.New(b.Topo, b.Dev),
		clock:       make([]float64, p),
		egressFree:  make([]float64, p),
		ingressFree: make([]float64, p),
		snapshot:    make([]float64, p),
	}
	if routed, ok := b.Topo.(simnet.Routed); ok {
		w.routed = routed
		w.links = fabric.NewQueues(routed.NumLinks())
	}
	w.nodes, _ = b.Topo.(simnet.NodeMapper)
	return w
}

// World is a timed world: real symmetric memory (delegated to an inner
// shmem world) plus per-PE virtual clocks and network port (or, on
// link-routed topologies, per-link) schedules.
type World struct {
	inner  *shmem.World
	topo   simnet.Topology
	dev    gpusim.Device
	cost   *costmodel.Model  // the shared §4.3 pricing of transfers/accumulates/GEMMs
	routed simnet.Routed     // non-nil when topo models individual links
	nodes  simnet.NodeMapper // non-nil when topo spans machines

	mu          sync.Mutex     // protects all timing state below
	clock       []float64      // per-PE virtual time, seconds
	egressFree  []float64      // per-PE egress port availability (scalar topologies)
	ingressFree []float64      // per-PE ingress port availability (scalar topologies)
	links       *fabric.Queues // per-link availability (routed topologies)
	snapshot    []float64      // clock snapshots for barrier time-sync
}

// Compile-time checks against the runtime contract. Note the absence of
// rt.StreamTimer: this backend's single clock per PE cannot observe queue
// depth or accumulate/GEMM interference; internal/gpubackend exists for
// that.
var (
	_ rt.Backend      = Backend{}
	_ rt.World        = (*World)(nil)
	_ rt.TimedWorld   = (*World)(nil)
	_ rt.FabricTimer  = (*World)(nil)
	_ rt.LinkDegrader = (*World)(nil)
	_ rt.PE           = (*pe)(nil)
	_ rt.Clock        = (*pe)(nil)
	_ rt.GemmTimer    = (*pe)(nil)
)

// World returns the world itself, satisfying runtime.Allocator.
func (w *World) World() rt.World { return w }

// NumPE returns the number of processing elements.
func (w *World) NumPE() int { return w.inner.NumPE() }

// AllocSymmetric reserves a segment of n float32 on every PE.
func (w *World) AllocSymmetric(n int) rt.SegmentID { return w.inner.AllocSymmetric(n) }

// SegmentStorage returns rank's backing array for host-side initialization.
func (w *World) SegmentStorage(seg rt.SegmentID, rank int) []float32 {
	return w.inner.SegmentStorage(seg, rank)
}

// SegmentLen returns the per-PE length of a segment.
func (w *World) SegmentLen(seg rt.SegmentID) int { return w.inner.SegmentLen(seg) }

// Stats returns the world's traffic counters (identical to what the shmem
// backend would count for the same run).
func (w *World) Stats() rt.Stats { return w.inner.Stats() }

// ResetStats zeroes the traffic counters.
func (w *World) ResetStats() { w.inner.ResetStats() }

// Run executes body on every PE. Virtual clocks persist across calls so a
// multi-phase workload accumulates one timeline; use ResetTime between
// independent measurements.
func (w *World) Run(body func(pe rt.PE)) {
	w.inner.Run(func(inner rt.PE) {
		body(&pe{inner: inner, w: w, rank: inner.Rank()})
	})
}

// PredictedSeconds returns the modeled wall-clock so far: the maximum
// virtual time reached by any PE. Call it after Run.
func (w *World) PredictedSeconds() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	worst := 0.0
	for _, c := range w.clock {
		if c > worst {
			worst = c
		}
	}
	return worst
}

// PETime returns one rank's virtual time.
func (w *World) PETime(rank int) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.clock[rank]
}

// ResetTime zeroes all clocks and port/link schedules.
func (w *World) ResetTime() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := range w.clock {
		w.clock[i] = 0
		w.egressFree[i] = 0
		w.ingressFree[i] = 0
	}
	if w.links != nil {
		w.links.Reset()
	}
}

// FabricLinkStats reports per-link busy/queue/byte accounting
// (runtime.FabricTimer). It returns nil on scalar topologies, whose ports
// are not links — absence is information, like StreamStatsOf.
func (w *World) FabricLinkStats() []rt.LinkStats {
	if w.links == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]rt.LinkStats, w.routed.NumLinks())
	for i := range out {
		out[i] = rt.LinkStats{
			Link:              w.routed.LinkName(i),
			BusySeconds:       w.links.BusyFor(i),
			QueueDelaySeconds: w.links.QueueDelayFor(i),
			Bytes:             w.links.BytesFor(i),
		}
	}
	return out
}

// DegradeLink downtrains the named fabric link mid-run
// (runtime.LinkDegrader): on a link-routed topology it multiplies the
// link's effective bandwidth by factor through the race-safe
// fabric.DegradeAt path, so transfers priced after the call see the
// degraded rail while in-flight reservations keep their old durations.
// Returns false on scalar topologies or unknown link names.
func (w *World) DegradeLink(name string, factor float64) bool {
	ft, ok := w.topo.(interface{ Fabric() *fabric.Fabric })
	if !ok {
		return false
	}
	f := ft.Fabric()
	for li := 0; li < f.NumLinks(); li++ {
		if f.LinkAt(li).Name == name {
			f.DegradeAt(li, factor)
			return true
		}
	}
	return false
}

// crossNode reports whether two PEs live on different machines of a
// multi-node topology — the boundary past which remote atomics are
// unavailable and AccumulateAdd must take the §3 get+put path.
func (w *World) crossNode(a, b int) bool {
	return w.nodes != nil && w.nodes.NodeOf(a) != w.nodes.NodeOf(b)
}

// Topology returns the modeled interconnect.
func (w *World) Topology() simnet.Topology { return w.topo }

// Device returns the modeled device.
func (w *World) Device() gpusim.Device { return w.dev }

// transferDur prices moving n float32 from src to dst (a get or a put)
// through the shared §4.3 cost tables, so this backend, gpubackend, and the
// plan-replay estimators price a given transfer identically.
func (w *World) transferDur(src, dst, n int) float64 {
	return w.cost.FetchCost(src, dst, 4*n)
}

// accumDur prices an n-float32 accumulate from rank into dst's memory via
// the shared cost model.
func (w *World) accumDur(rank, dst, n int) float64 {
	return w.cost.AccumCost(rank, dst, 4*n)
}

// chargeTransfer schedules a contended transfer of n float32 initiated by
// rank, with data flowing src→dst: on scalar topologies it reserves the
// source's egress and the destination's ingress port; on link-routed
// topologies it reserves every link of the static src→dst route, so the
// busiest link on the route governs the start time. The transfer may not
// start before floor (used to serialize the get and put halves of the §3
// inter-node accumulate); pass 0 when only the initiator's clock gates
// it. It returns the transfer's modeled end time; when sync is true the
// initiator's clock advances to it.
func (w *World) chargeTransfer(rank, src, dst, n int, dur, floor float64, sync bool) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	start := w.clock[rank]
	if floor > start {
		start = floor
	}
	var end float64
	switch {
	case src == dst:
		end = start + dur
	case w.links != nil:
		_, end = w.links.Reserve(w.routed.RouteIDs(src, dst), start, dur, int64(4*n))
	default:
		if w.egressFree[src] > start {
			start = w.egressFree[src]
		}
		if w.ingressFree[dst] > start {
			start = w.ingressFree[dst]
		}
		end = start + dur
		w.egressFree[src] = end
		w.ingressFree[dst] = end
	}
	if sync && end > w.clock[rank] {
		w.clock[rank] = end
	}
	return end
}

// chargeLocal advances rank's clock by dur of device-local busy time.
func (w *World) chargeLocal(rank int, dur float64) {
	w.mu.Lock()
	w.clock[rank] += dur
	w.mu.Unlock()
}

// advanceTo raises rank's clock to at least t (used by future waits).
func (w *World) advanceTo(rank int, t float64) {
	w.mu.Lock()
	if t > w.clock[rank] {
		w.clock[rank] = t
	}
	w.mu.Unlock()
}
