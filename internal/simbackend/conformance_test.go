package simbackend_test

// The backend conformance suite: the universal algorithm must run
// unmodified on every runtime.Backend and produce the same C (within 1e-4
// relative tolerance), the timed backends must emit modeled wall-clocks
// comparable with the §4.3 cost model's estimate for the same problem, and
// the stream/event-timed gpubackend must observe queue-depth and
// accumulate/GEMM interference delays that the single-clock simbackend
// structurally cannot. docs/BACKENDS.md points new backends at this file:
// add the backend to conformanceBackends and the whole matrix applies.

import (
	"math"
	"testing"

	"slicing/internal/costmodel"
	"slicing/internal/distmat"
	"slicing/internal/gpubackend"
	"slicing/internal/gpusim"
	rt "slicing/internal/runtime"
	"slicing/internal/shmem"
	"slicing/internal/simbackend"
	"slicing/internal/simnet"
	"slicing/internal/tile"
	"slicing/internal/universal"
)

// conformanceBackends lists every backend the suite runs for a system: the
// untimed reference plus both timed flavours.
func conformanceBackends(sys universal.SimSystem) []rt.Backend {
	return []rt.Backend{
		shmem.Backend{},
		simbackend.New(sys.Topo, sys.Dev),
		gpubackend.New(sys.Topo, sys.Dev),
	}
}

// scenario is one partitioning/replication combination exercised on every
// backend.
type scenario struct {
	name                string
	m, n, k             int
	partA, partB, partC distmat.Partition
	ca, cb, cc          int
}

func scenarios(slots int) []scenario {
	pr, pc := distmat.NearSquareFactors(slots)
	return []scenario{
		{"aligned-2d", 96, 80, 64,
			distmat.Block2D{}, distmat.Block2D{}, distmat.Block2D{}, 1, 1, 1},
		{"misaligned", 90, 70, 50,
			distmat.RowBlock{}, distmat.ColBlock{},
			distmat.Custom{TileRows: 13, TileCols: 11, ProcRows: pr, ProcCols: pc}, 1, 1, 1},
		{"replicated-c", 64, 64, 96,
			distmat.RowBlock{}, distmat.RowBlock{}, distmat.RowBlock{}, 1, 1, 2},
	}
}

// runScenario executes sc's universal multiply on an existing world with
// the given config and returns the gathered C and the resolved stationary.
// Every conformance test drives worlds through it, so the setup (operands,
// seeds, gather) stays identical across backends and configs.
func runScenario(w rt.World, sc scenario, cfg universal.Config) (*tile.Matrix, universal.Stationary) {
	a := distmat.New(w, sc.m, sc.k, sc.partA, sc.ca)
	bm := distmat.New(w, sc.k, sc.n, sc.partB, sc.cb)
	c := distmat.New(w, sc.m, sc.n, sc.partC, sc.cc)
	var out *tile.Matrix
	var stat universal.Stationary
	w.Run(func(pe rt.PE) {
		a.FillRandom(pe, 11)
		bm.FillRandom(pe, 22)
		s, _ := universal.Multiply(pe, c, a, bm, cfg)
		pe.Barrier()
		if pe.Rank() == 0 {
			stat = s
			out = c.Gather(pe, 0)
		}
	})
	return out, stat
}

// runUniversal is runScenario on a fresh world with the default config.
func runUniversal(b rt.Backend, p int, sc scenario) (*tile.Matrix, universal.Stationary) {
	cfg := universal.DefaultConfig()
	cfg.SyncReplicas = true
	return runScenario(b.NewWorld(p), sc, cfg)
}

func maxRelDiff(x, y *tile.Matrix) float64 {
	worst := 0.0
	for i := range x.Data {
		diff := math.Abs(float64(x.Data[i] - y.Data[i]))
		scale := math.Max(math.Abs(float64(x.Data[i])), 1)
		if d := diff / scale; d > worst {
			worst = d
		}
	}
	return worst
}

// TestUniversalConformanceAcrossBackends runs the same problems on all
// three backends — shmem, simnet-timed, gpusim stream/event-timed — for
// both Table 2 systems and requires identical results within 1e-4 relative
// tolerance.
func TestUniversalConformanceAcrossBackends(t *testing.T) {
	systems := []struct {
		name string
		sys  universal.SimSystem
	}{
		{"pvc", universal.PVCSystem()},
		{"h100", universal.H100System()},
		// The same systems with the link-routed fabric installed: the timed
		// backends reserve individual links instead of per-PE ports, and the
		// numeric results must not move at all.
		{"pvc-fabric", universal.PVCFabricSystem()},
		{"h100-fabric", universal.H100FabricSystem()},
		// A 2-node rail-optimized fat-tree: cross-node accumulates take the
		// §3 get+put path on the timed backends, which must stay numerically
		// identical to the shmem reference's atomic accumulates.
		{"h100-fattree", universal.H100FatTreeSystem(2, 8, 1)},
	}
	for _, system := range systems {
		p := system.sys.Topo.NumPE()
		backends := conformanceBackends(system.sys)
		for _, sc := range scenarios(p) {
			t.Run(system.name+"/"+sc.name, func(t *testing.T) {
				want, _ := runUniversal(backends[0], p, sc)
				for _, b := range backends[1:] {
					got, _ := runUniversal(b, p, sc)
					if d := maxRelDiff(want, got); d > 1e-4 {
						t.Fatalf("C differs between %s and %s: max rel diff %g",
							backends[0].Name(), b.Name(), d)
					}
				}
			})
		}
	}
}

// TestTimedBackendsPredictRuntimeComparableToEachOther pins the two timed
// backends to the same order of magnitude for an identical run: they share
// the §4.3 cost tables, so the stream model's extra contention may slow
// (never accelerate by more than overlap allows) the single-clock
// estimate, within a small factor.
func TestTimedBackendsPredictRuntimeComparableToEachOther(t *testing.T) {
	sys := universal.H100System()
	p := sys.Topo.NumPE()
	sc := scenarios(p)[0]

	predicted := func(b rt.Backend) float64 {
		w := b.NewWorld(p)
		cfg := universal.DefaultConfig()
		cfg.SyncReplicas = true
		runScenario(w, sc, cfg)
		sec, ok := rt.PredictedTimeOf(w)
		if !ok {
			t.Fatalf("backend %s did not report a predicted time", b.Name())
		}
		return sec
	}
	simT := predicted(simbackend.New(sys.Topo, sys.Dev))
	gpuT := predicted(gpubackend.New(sys.Topo, sys.Dev))
	if simT <= 0 || gpuT <= 0 {
		t.Fatalf("timed backends predicted nonpositive runtimes: simnet %g, gpusim %g", simT, gpuT)
	}
	ratio := gpuT / simT
	t.Logf("simnet %.3gs, gpusim %.3gs (ratio %.2f)", simT, gpuT, ratio)
	if ratio < 0.5 || ratio > 10 {
		t.Fatalf("timed backends disagree beyond modeling differences: ratio %.2f", ratio)
	}
}

// TestGpuBackendObservesDelaysSimbackendCannot is the acceptance test for
// the stream/event backend: on a workload with deep prefetch and remote
// accumulates (outer-product partitioning on the H100 system, whose device
// models accumulate/GEMM interference), the gpubackend reports nonzero
// queue-depth and interference delay, while the simbackend — asked through
// the same runtime.StreamStatsOf hook — reports none, because a
// single-clock model cannot represent either effect.
func TestGpuBackendObservesDelaysSimbackendCannot(t *testing.T) {
	sys := universal.H100System()
	p := sys.Topo.NumPE()
	// Column-block A times row-block B: every rank's GEMM results land in
	// remote C tiles, so the run is accumulate-heavy; prefetch depth 4 keeps
	// several async fetches in flight per PE.
	sc := scenario{"outer-product", 128, 128, 128,
		distmat.ColBlock{}, distmat.RowBlock{}, distmat.Block2D{}, 1, 1, 1}

	stats := func(b rt.Backend) (rt.StreamStats, bool) {
		w := b.NewWorld(p)
		cfg := universal.DefaultConfig()
		cfg.PrefetchDepth = 4
		cfg.MaxInflight = 4
		// Stationary A keeps A in place, so every rank pushes its partial C
		// results to their owners — remote accumulates into busy devices.
		cfg.Stationary = universal.StationaryA
		runScenario(w, sc, cfg)
		return rt.StreamStatsOf(w)
	}

	if ss, ok := stats(simbackend.New(sys.Topo, sys.Dev)); ok {
		t.Fatalf("single-clock simbackend claims stream stats %+v; it cannot observe them", ss)
	}
	ss, ok := stats(gpubackend.New(sys.Topo, sys.Dev))
	if !ok {
		t.Fatal("gpubackend did not report stream stats")
	}
	t.Logf("gpubackend: %d stream ops, queue delay %.3gs, interference %.3gs",
		ss.StreamOps, ss.QueueDelaySeconds, ss.AccumInterferenceSeconds)
	if ss.StreamOps == 0 {
		t.Fatal("gpubackend scheduled no stream ops for a real multiply")
	}
	if ss.QueueDelaySeconds <= 0 {
		t.Fatal("gpubackend observed no queue delay despite prefetch depth 4")
	}
	if ss.AccumInterferenceSeconds <= 0 {
		t.Fatal("gpubackend observed no accumulate/GEMM interference on H100")
	}
}

// TestSimnetBackendPredictsRuntimeComparableToCostModel checks the timed
// backend's modeled wall-clock against the §4.3 cost model: both price the
// same plans over the same topology and device, so they must land within a
// small factor of each other (the cost model assumes perfect overlap and no
// port contention; the timed run observes the executor's real schedule).
func TestSimnetBackendPredictsRuntimeComparableToCostModel(t *testing.T) {
	sys := universal.PVCSystem()
	p := sys.Topo.NumPE()
	sc := scenarios(p)[0]

	backend := simbackend.New(sys.Topo, sys.Dev)
	w := backend.NewWorld(p).(*simbackend.World)
	a := distmat.New(w, sc.m, sc.k, sc.partA, 1)
	b := distmat.New(w, sc.k, sc.n, sc.partB, 1)
	c := distmat.New(w, sc.m, sc.n, sc.partC, 1)
	cfg := universal.DefaultConfig()
	var stat universal.Stationary
	w.Run(func(pe rt.PE) {
		a.FillRandom(pe, 1)
		b.FillRandom(pe, 2)
		s, _ := universal.Multiply(pe, c, a, b, cfg)
		if pe.Rank() == 0 {
			stat = s
		}
	})
	// Setup (FillRandom barriers) charges no time, so the whole timeline is
	// the multiply.
	pred := w.PredictedSeconds()
	if pred <= 0 {
		t.Fatal("timed backend predicted no runtime for a real multiply")
	}

	prob := universal.NewProblem(c, a, b)
	est := costmodel.New(sys.Topo, sys.Dev).ProblemCost(prob, stat)
	if est <= 0 {
		t.Fatal("cost model priced the problem at zero")
	}
	ratio := pred / est
	t.Logf("predicted %.3gs, cost model %.3gs (ratio %.2f)", pred, est, ratio)
	if ratio < 0.2 || ratio > 20 {
		t.Fatalf("predicted runtime %g not comparable to cost model %g (ratio %.2f)", pred, est, ratio)
	}
}

// TestTimedBackendCountsSameTrafficAsShmem pins the two backends to
// identical one-sided traffic for an identical run: the timed backend adds
// a clock, never communication.
func TestTimedBackendCountsSameTrafficAsShmem(t *testing.T) {
	sys := universal.H100System()
	p := sys.Topo.NumPE()
	sc := scenarios(p)[1]

	traffic := func(b rt.Backend) rt.Stats {
		w := b.NewWorld(p)
		a := distmat.New(w, sc.m, sc.k, sc.partA, 1)
		bm := distmat.New(w, sc.k, sc.n, sc.partB, 1)
		c := distmat.New(w, sc.m, sc.n, sc.partC, 1)
		cfg := universal.DefaultConfig()
		cfg.PrefetchDepth = 1
		cfg.MaxInflight = 1
		w.Run(func(pe rt.PE) {
			a.FillRandom(pe, 5)
			bm.FillRandom(pe, 6)
			universal.Multiply(pe, c, a, bm, cfg)
		})
		return w.Stats()
	}

	s1 := traffic(shmem.Backend{})
	s2 := traffic(simbackend.New(sys.Topo, sys.Dev))
	if s1.RemoteGetBytes != s2.RemoteGetBytes || s1.RemoteAccumBytes != s2.RemoteAccumBytes {
		t.Fatalf("traffic differs: shmem %+v, simnet %+v", s1, s2)
	}
}

// TestGemmChargeMatchesDeviceModel pins the executor's ChargeGemm path:
// a 1-PE timed world multiplying two local tiles must spend exactly the
// device model's GEMM time (plus launch overheads and local accumulates).
func TestGemmChargeMatchesDeviceModel(t *testing.T) {
	topo := simnet.NewUniform(1, 1e9, 1e12, 0, "single")
	dev := gpusim.Device{PeakFlops: 1e12, MemBW: 1e12, AccumBWFactor: 1, GranM: 1, GranN: 1, GranK: 1}
	w := simbackend.New(topo, dev).NewWorld(1).(*simbackend.World)
	a := distmat.New(w, 32, 32, distmat.RowBlock{}, 1)
	b := distmat.New(w, 32, 32, distmat.RowBlock{}, 1)
	c := distmat.New(w, 32, 32, distmat.RowBlock{}, 1)
	w.Run(func(pe rt.PE) {
		a.FillRandom(pe, 1)
		b.FillRandom(pe, 2)
		universal.Multiply(pe, c, a, b, universal.DefaultConfig())
	})
	gemm := dev.GemmTime(32, 32, 32)
	pred := w.PredictedSeconds()
	if pred < gemm {
		t.Fatalf("predicted %g is below the single GEMM's device time %g", pred, gemm)
	}
	// One GEMM plus one local accumulate (2×bytes/MemBW) bounds the run.
	upper := gemm + 2*4*32*32/dev.MemBW + 10*dev.LaunchOverhead
	if pred > upper*1.01 {
		t.Fatalf("predicted %g exceeds modeled work %g", pred, upper)
	}
}

// TestPlanCacheConformanceAcrossBackends: executing from the compiled-plan
// cache must be a pure optimization on every backend — the cached C (both
// the compile-on-miss call and the pure hit re-execution) matches the
// fresh per-rank-rebuild C within the same 1e-4 relative tolerance the
// backend matrix itself is held to, and the hit re-runs zero slicing work.
func TestPlanCacheConformanceAcrossBackends(t *testing.T) {
	sys := universal.PVCSystem()
	p := sys.Topo.NumPE()
	for _, b := range conformanceBackends(sys) {
		for _, sc := range scenarios(p) {
			t.Run(b.Name()+"/"+sc.name, func(t *testing.T) {
				fresh, _ := runUniversal(b, p, sc)

				cfg := universal.DefaultConfig()
				cfg.SyncReplicas = true
				cfg.Plans = universal.NewPlanCache(8)
				w := b.NewWorld(p)
				cold, _ := runScenario(w, sc, cfg) // miss: compiles once
				before := universal.PlanBuildCount()
				warm, _ := runScenario(w, sc, cfg) // hit: zero slicing work
				if n := universal.PlanBuildCount() - before; n != 0 {
					t.Fatalf("cache hit ran %d slicing passes", n)
				}
				st := cfg.Plans.Stats()
				if st.Builds != 1 {
					t.Fatalf("compiled %d times across two runs, want 1", st.Builds)
				}
				if d := maxRelDiff(fresh, cold); d > 1e-4 {
					t.Fatalf("compile-on-miss C differs from fresh: max rel diff %g", d)
				}
				if d := maxRelDiff(fresh, warm); d > 1e-4 {
					t.Fatalf("cache-hit C differs from fresh: max rel diff %g", d)
				}
			})
		}
	}
}
