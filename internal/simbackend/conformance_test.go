package simbackend_test

// The backend conformance suite of the tentpole refactor: the universal
// algorithm must run unmodified on every runtime.Backend and produce the
// same C, and the simnet-timed backend must additionally emit a modeled
// wall-clock that is comparable with the §4.3 cost model's estimate for
// the same problem.

import (
	"math"
	"testing"

	"slicing/internal/costmodel"
	"slicing/internal/distmat"
	"slicing/internal/gpusim"
	rt "slicing/internal/runtime"
	"slicing/internal/shmem"
	"slicing/internal/simbackend"
	"slicing/internal/simnet"
	"slicing/internal/tile"
	"slicing/internal/universal"
)

// scenario is one partitioning/replication combination exercised on every
// backend.
type scenario struct {
	name                string
	m, n, k             int
	partA, partB, partC distmat.Partition
	ca, cb, cc          int
}

func scenarios(slots int) []scenario {
	pr, pc := distmat.NearSquareFactors(slots)
	return []scenario{
		{"aligned-2d", 96, 80, 64,
			distmat.Block2D{}, distmat.Block2D{}, distmat.Block2D{}, 1, 1, 1},
		{"misaligned", 90, 70, 50,
			distmat.RowBlock{}, distmat.ColBlock{},
			distmat.Custom{TileRows: 13, TileCols: 11, ProcRows: pr, ProcCols: pc}, 1, 1, 1},
		{"replicated-c", 64, 64, 96,
			distmat.RowBlock{}, distmat.RowBlock{}, distmat.RowBlock{}, 1, 1, 2},
	}
}

// runUniversal executes the universal algorithm for sc on a fresh world
// from backend and returns the gathered C and the resolved stationary.
func runUniversal(b rt.Backend, p int, sc scenario) (*tile.Matrix, universal.Stationary) {
	w := b.NewWorld(p)
	a := distmat.New(w, sc.m, sc.k, sc.partA, sc.ca)
	bm := distmat.New(w, sc.k, sc.n, sc.partB, sc.cb)
	c := distmat.New(w, sc.m, sc.n, sc.partC, sc.cc)
	var out *tile.Matrix
	var stat universal.Stationary
	cfg := universal.DefaultConfig()
	cfg.SyncReplicas = true
	w.Run(func(pe rt.PE) {
		a.FillRandom(pe, 11)
		bm.FillRandom(pe, 22)
		s := universal.Multiply(pe, c, a, bm, cfg)
		pe.Barrier()
		if pe.Rank() == 0 {
			stat = s
			out = c.Gather(pe, 0)
		}
	})
	return out, stat
}

func maxRelDiff(x, y *tile.Matrix) float64 {
	worst := 0.0
	for i := range x.Data {
		diff := math.Abs(float64(x.Data[i] - y.Data[i]))
		scale := math.Max(math.Abs(float64(x.Data[i])), 1)
		if d := diff / scale; d > worst {
			worst = d
		}
	}
	return worst
}

// TestUniversalConformanceAcrossBackends runs the same problems on the
// shmem backend and on simnet-timed PVC and H100 backends and requires
// identical results within 1e-4 relative tolerance.
func TestUniversalConformanceAcrossBackends(t *testing.T) {
	systems := []struct {
		name string
		sys  universal.SimSystem
	}{
		{"pvc", universal.PVCSystem()},
		{"h100", universal.H100System()},
	}
	for _, system := range systems {
		p := system.sys.Topo.NumPE()
		timed := simbackend.New(system.sys.Topo, system.sys.Dev)
		for _, sc := range scenarios(p) {
			t.Run(system.name+"/"+sc.name, func(t *testing.T) {
				want, _ := runUniversal(shmem.Backend{}, p, sc)
				got, _ := runUniversal(timed, p, sc)
				if d := maxRelDiff(want, got); d > 1e-4 {
					t.Fatalf("C differs across backends: max rel diff %g", d)
				}
			})
		}
	}
}

// TestSimnetBackendPredictsRuntimeComparableToCostModel checks the timed
// backend's modeled wall-clock against the §4.3 cost model: both price the
// same plans over the same topology and device, so they must land within a
// small factor of each other (the cost model assumes perfect overlap and no
// port contention; the timed run observes the executor's real schedule).
func TestSimnetBackendPredictsRuntimeComparableToCostModel(t *testing.T) {
	sys := universal.PVCSystem()
	p := sys.Topo.NumPE()
	sc := scenarios(p)[0]

	backend := simbackend.New(sys.Topo, sys.Dev)
	w := backend.NewWorld(p).(*simbackend.World)
	a := distmat.New(w, sc.m, sc.k, sc.partA, 1)
	b := distmat.New(w, sc.k, sc.n, sc.partB, 1)
	c := distmat.New(w, sc.m, sc.n, sc.partC, 1)
	cfg := universal.DefaultConfig()
	var stat universal.Stationary
	w.Run(func(pe rt.PE) {
		a.FillRandom(pe, 1)
		b.FillRandom(pe, 2)
		s := universal.Multiply(pe, c, a, b, cfg)
		if pe.Rank() == 0 {
			stat = s
		}
	})
	// Setup (FillRandom barriers) charges no time, so the whole timeline is
	// the multiply.
	pred := w.PredictedSeconds()
	if pred <= 0 {
		t.Fatal("timed backend predicted no runtime for a real multiply")
	}

	prob := universal.NewProblem(c, a, b)
	est := costmodel.New(sys.Topo, sys.Dev).ProblemCost(prob, stat)
	if est <= 0 {
		t.Fatal("cost model priced the problem at zero")
	}
	ratio := pred / est
	t.Logf("predicted %.3gs, cost model %.3gs (ratio %.2f)", pred, est, ratio)
	if ratio < 0.2 || ratio > 20 {
		t.Fatalf("predicted runtime %g not comparable to cost model %g (ratio %.2f)", pred, est, ratio)
	}
}

// TestTimedBackendCountsSameTrafficAsShmem pins the two backends to
// identical one-sided traffic for an identical run: the timed backend adds
// a clock, never communication.
func TestTimedBackendCountsSameTrafficAsShmem(t *testing.T) {
	sys := universal.H100System()
	p := sys.Topo.NumPE()
	sc := scenarios(p)[1]

	traffic := func(b rt.Backend) rt.Stats {
		w := b.NewWorld(p)
		a := distmat.New(w, sc.m, sc.k, sc.partA, 1)
		bm := distmat.New(w, sc.k, sc.n, sc.partB, 1)
		c := distmat.New(w, sc.m, sc.n, sc.partC, 1)
		cfg := universal.DefaultConfig()
		cfg.PrefetchDepth = 1
		cfg.MaxInflight = 1
		w.Run(func(pe rt.PE) {
			a.FillRandom(pe, 5)
			bm.FillRandom(pe, 6)
			universal.Multiply(pe, c, a, bm, cfg)
		})
		return w.Stats()
	}

	s1 := traffic(shmem.Backend{})
	s2 := traffic(simbackend.New(sys.Topo, sys.Dev))
	if s1.RemoteGetBytes != s2.RemoteGetBytes || s1.RemoteAccumBytes != s2.RemoteAccumBytes {
		t.Fatalf("traffic differs: shmem %+v, simnet %+v", s1, s2)
	}
}

// TestGemmChargeMatchesDeviceModel pins the executor's ChargeGemm path:
// a 1-PE timed world multiplying two local tiles must spend exactly the
// device model's GEMM time (plus launch overheads and local accumulates).
func TestGemmChargeMatchesDeviceModel(t *testing.T) {
	topo := simnet.NewUniform(1, 1e9, 1e12, 0, "single")
	dev := gpusim.Device{PeakFlops: 1e12, MemBW: 1e12, AccumBWFactor: 1, GranM: 1, GranN: 1, GranK: 1}
	w := simbackend.New(topo, dev).NewWorld(1).(*simbackend.World)
	a := distmat.New(w, 32, 32, distmat.RowBlock{}, 1)
	b := distmat.New(w, 32, 32, distmat.RowBlock{}, 1)
	c := distmat.New(w, 32, 32, distmat.RowBlock{}, 1)
	w.Run(func(pe rt.PE) {
		a.FillRandom(pe, 1)
		b.FillRandom(pe, 2)
		universal.Multiply(pe, c, a, b, universal.DefaultConfig())
	})
	gemm := dev.GemmTime(32, 32, 32)
	pred := w.PredictedSeconds()
	if pred < gemm {
		t.Fatalf("predicted %g is below the single GEMM's device time %g", pred, gemm)
	}
	// One GEMM plus one local accumulate (2×bytes/MemBW) bounds the run.
	upper := gemm + 2*4*32*32/dev.MemBW + 10*dev.LaunchOverhead
	if pred > upper*1.01 {
		t.Fatalf("predicted %g exceeds modeled work %g", pred, upper)
	}
}
