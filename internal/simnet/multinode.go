package simnet

import "fmt"

// MultiNode models a cluster of identical GPU nodes: PEs within one node
// communicate over the intra-node interconnect (NVLink/Xe Link class),
// PEs on different nodes over the inter-node fabric through each node's
// NIC (RDMA class). The paper's data structure explicitly supports this
// regime — accumulate_tile falls back to coarse-grained locking with
// remote get/put across nodes (§3) — and this topology lets the benchmark
// harness explore it.
type MultiNode struct {
	Nodes, PerNode int
	IntraBW        float64 // bytes/s within a node
	InterBW        float64 // bytes/s across nodes (per-pair share of the NIC)
	LocalBW        float64 // bytes/s for src == dst
	IntraLat       float64
	InterLat       float64
	TopoName       string
}

// NewMultiNode builds a cluster topology of nodes × perNode PEs.
func NewMultiNode(nodes, perNode int, intraBW, interBW, localBW, intraLat, interLat float64, name string) *MultiNode {
	if nodes <= 0 || perNode <= 0 {
		panic(fmt.Sprintf("simnet: invalid cluster %dx%d", nodes, perNode))
	}
	return &MultiNode{
		Nodes: nodes, PerNode: perNode,
		IntraBW: intraBW, InterBW: interBW, LocalBW: localBW,
		IntraLat: intraLat, InterLat: interLat, TopoName: name,
	}
}

// PresetH100Cluster returns a cluster of H100 nodes: 450 GB/s NVLink
// inside a node, a 400 Gb/s-class RDMA NIC (50 GB/s) between nodes, with
// microsecond-scale inter-node latency.
func PresetH100Cluster(nodes int) *MultiNode {
	return NewMultiNode(nodes, 8,
		450*gb, 50*gb, 2000*gb,
		3*us, 10*us, fmt.Sprintf("%dx8xH100 cluster", nodes))
}

func (t *MultiNode) NumPE() int { return t.Nodes * t.PerNode }

// NodeOf returns the node index hosting a PE.
func (t *MultiNode) NodeOf(pe int) int { return pe / t.PerNode }

func (t *MultiNode) Bandwidth(src, dst int) float64 {
	t.check(src, dst)
	switch {
	case src == dst:
		return t.LocalBW
	case t.NodeOf(src) == t.NodeOf(dst):
		return t.IntraBW
	default:
		return t.InterBW
	}
}

func (t *MultiNode) Latency(src, dst int) float64 {
	t.check(src, dst)
	switch {
	case src == dst:
		return 0
	case t.NodeOf(src) == t.NodeOf(dst):
		return t.IntraLat
	default:
		return t.InterLat
	}
}

func (t *MultiNode) Name() string { return t.TopoName }

func (t *MultiNode) check(src, dst int) {
	p := t.NumPE()
	if src < 0 || src >= p || dst < 0 || dst >= p {
		panic(fmt.Sprintf("simnet: pe pair (%d,%d) out of %d-PE cluster", src, dst, p))
	}
}
