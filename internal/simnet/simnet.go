// Package simnet models the intra-node interconnects of the paper's two
// evaluation systems (Table 2): the Xe Link fabric of the 12-tile Intel PVC
// node and the NVLink fabric of the 8-GPU H100 node.
//
// The model is link-level: every PE has one egress port and one ingress
// port; a transfer from src to dst occupies both ports for
// latency + bytes/bandwidth(src,dst) seconds. Serializing on ports is what
// produces the network hot-spotting that the paper's iteration offset
// (§4.2) exists to avoid, so the discrete-event simulation on top of this
// package reproduces that effect faithfully.
package simnet

import "fmt"

// Topology describes point-to-point bandwidth and latency between PEs.
type Topology interface {
	// NumPE returns the number of processing elements.
	NumPE() int
	// Bandwidth returns the unidirectional bandwidth in bytes/second for a
	// transfer from src to dst. src == dst means a device-local copy and
	// returns the local copy-engine bandwidth.
	Bandwidth(src, dst int) float64
	// Latency returns the transfer startup latency in seconds from src to dst.
	Latency(src, dst int) float64
	// Name returns a human-readable topology name.
	Name() string
}

// Routed is implemented by topologies that model individual fabric links
// (internal/fabric): every src→dst pair follows a static route of directed
// links, and timed backends reserve those links — rather than the legacy
// per-PE egress/ingress ports — so transfers that share a switch uplink, a
// NIC, or a rail contend with each other even when their endpoints differ.
// For a Routed topology, Bandwidth(src,dst) must return the route's
// bottleneck-link bandwidth and Latency(src,dst) the route's total latency,
// so the scalar consumers (costmodel, the plan-replay estimators) price the
// same numbers the link model charges.
type Routed interface {
	Topology
	// NumLinks returns the number of directed links in the fabric.
	NumLinks() int
	// LinkName names one link for stats and trace rendering.
	LinkName(link int) string
	// RouteIDs returns the static route from src to dst as link indices in
	// traversal order. It is empty for src == dst (device-local copies use
	// no fabric links). Callers must not modify the returned slice.
	RouteIDs(src, dst int) []int
}

// NodeMapper is implemented by multi-node topologies (MultiNode, fabric
// clusters): it maps each PE to the machine hosting it. Timed backends use
// it to route AccumulateAdd through the §3 get+put path automatically when
// src and dst sit on different machines, where the RDMA fabric offers no
// remote atomics.
type NodeMapper interface {
	// NodeOf returns the node (machine) index hosting a PE.
	NodeOf(pe int) int
}

// TransferTime returns the unloaded (contention-free) time in seconds to
// move bytes from src to dst over topo.
func TransferTime(topo Topology, src, dst int, bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return topo.Latency(src, dst) + bytes/topo.Bandwidth(src, dst)
}

const (
	gb = 1e9
	us = 1e-6
)

// Uniform is an all-to-all topology where every distinct pair of PEs enjoys
// the same link bandwidth and latency, and local copies run at LocalBW.
type Uniform struct {
	P        int
	LinkBW   float64 // bytes/s between distinct PEs
	LocalBW  float64 // bytes/s for src == dst copies
	LinkLat  float64 // seconds, distinct PEs
	TopoName string
}

// NewUniform builds a uniform all-to-all topology.
func NewUniform(p int, linkBW, localBW, latency float64, name string) *Uniform {
	if p <= 0 || linkBW <= 0 || localBW <= 0 {
		panic(fmt.Sprintf("simnet: invalid uniform topology p=%d link=%g local=%g", p, linkBW, localBW))
	}
	return &Uniform{P: p, LinkBW: linkBW, LocalBW: localBW, LinkLat: latency, TopoName: name}
}

func (u *Uniform) NumPE() int { return u.P }

func (u *Uniform) Bandwidth(src, dst int) float64 {
	u.check(src, dst)
	if src == dst {
		return u.LocalBW
	}
	return u.LinkBW
}

func (u *Uniform) Latency(src, dst int) float64 {
	u.check(src, dst)
	if src == dst {
		return 0
	}
	return u.LinkLat
}

func (u *Uniform) Name() string { return u.TopoName }

func (u *Uniform) check(src, dst int) {
	if src < 0 || src >= u.P || dst < 0 || dst >= u.P {
		panic(fmt.Sprintf("simnet: pe pair (%d,%d) out of %d-PE topology", src, dst, u.P))
	}
}

// TwoLevel is a hierarchical topology of groups (e.g. the two tiles of one
// PVC package) where intra-group transfers use a fast link and inter-group
// transfers use the node-level fabric.
type TwoLevel struct {
	P         int
	GroupSize int
	IntraBW   float64 // bytes/s within a group (PVC inter-tile: 230 GB/s)
	InterBW   float64 // bytes/s across groups (Xe Link)
	LocalBW   float64 // bytes/s for src == dst
	IntraLat  float64
	InterLat  float64
	TopoName  string
}

// NewTwoLevel builds a two-level topology of P PEs in groups of groupSize.
func NewTwoLevel(p, groupSize int, intraBW, interBW, localBW, intraLat, interLat float64, name string) *TwoLevel {
	if p <= 0 || groupSize <= 0 || p%groupSize != 0 {
		panic(fmt.Sprintf("simnet: invalid two-level topology p=%d group=%d", p, groupSize))
	}
	return &TwoLevel{
		P: p, GroupSize: groupSize,
		IntraBW: intraBW, InterBW: interBW, LocalBW: localBW,
		IntraLat: intraLat, InterLat: interLat, TopoName: name,
	}
}

func (t *TwoLevel) NumPE() int { return t.P }

func (t *TwoLevel) Bandwidth(src, dst int) float64 {
	t.check(src, dst)
	switch {
	case src == dst:
		return t.LocalBW
	case src/t.GroupSize == dst/t.GroupSize:
		return t.IntraBW
	default:
		return t.InterBW
	}
}

func (t *TwoLevel) Latency(src, dst int) float64 {
	t.check(src, dst)
	switch {
	case src == dst:
		return 0
	case src/t.GroupSize == dst/t.GroupSize:
		return t.IntraLat
	default:
		return t.InterLat
	}
}

func (t *TwoLevel) Name() string { return t.TopoName }

func (t *TwoLevel) check(src, dst int) {
	if src < 0 || src >= t.P || dst < 0 || dst >= t.P {
		panic(fmt.Sprintf("simnet: pe pair (%d,%d) out of %d-PE topology", src, dst, t.P))
	}
}

// PresetPVC returns the 12-tile Intel PVC node from Table 2: 6 dual-tile
// Data Center GPU Max 1550 packages. Tiles within a package communicate at
// 230 GB/s over the inter-tile interconnect; tiles in different packages use
// Xe Link at 26.5 GB/s per-device unidirectional bandwidth (Table 2). Local
// copies run at an HBM2e-class copy-engine rate.
func PresetPVC() *TwoLevel {
	return NewTwoLevel(12, 2,
		230*gb, 26.5*gb, 1000*gb,
		2*us, 5*us, "12xPVC XeLink")
}

// PresetH100 returns the 8-GPU Nvidia H100 node from Table 2: NVLink
// all-to-all at 450 GB/s unidirectional per device, HBM3-class local copies.
func PresetH100() *Uniform {
	return NewUniform(8, 450*gb, 2000*gb, 3*us, "8xH100 NVLink")
}
