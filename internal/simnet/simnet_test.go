package simnet

import (
	"math"
	"testing"
)

func TestUniformBandwidth(t *testing.T) {
	u := NewUniform(4, 100e9, 1000e9, 1e-6, "test")
	if u.NumPE() != 4 {
		t.Fatalf("NumPE = %d", u.NumPE())
	}
	if bw := u.Bandwidth(0, 1); bw != 100e9 {
		t.Fatalf("remote BW = %g", bw)
	}
	if bw := u.Bandwidth(2, 2); bw != 1000e9 {
		t.Fatalf("local BW = %g", bw)
	}
	if lat := u.Latency(0, 1); lat != 1e-6 {
		t.Fatalf("remote latency = %g", lat)
	}
	if lat := u.Latency(3, 3); lat != 0 {
		t.Fatalf("local latency = %g", lat)
	}
}

func TestUniformPanicsOutOfRange(t *testing.T) {
	u := NewUniform(2, 1e9, 1e9, 0, "t")
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range pair should panic")
		}
	}()
	u.Bandwidth(0, 2)
}

func TestTwoLevelTiers(t *testing.T) {
	tl := NewTwoLevel(12, 2, 230e9, 26.5e9, 1000e9, 2e-6, 5e-6, "pvc")
	// Same package (0,1), cross package (0,2), local (5,5).
	if bw := tl.Bandwidth(0, 1); bw != 230e9 {
		t.Fatalf("intra-group BW = %g", bw)
	}
	if bw := tl.Bandwidth(0, 2); bw != 26.5e9 {
		t.Fatalf("inter-group BW = %g", bw)
	}
	if bw := tl.Bandwidth(5, 5); bw != 1000e9 {
		t.Fatalf("local BW = %g", bw)
	}
	if lat := tl.Latency(10, 11); lat != 2e-6 {
		t.Fatalf("intra latency = %g", lat)
	}
	if lat := tl.Latency(0, 11); lat != 5e-6 {
		t.Fatalf("inter latency = %g", lat)
	}
}

func TestTwoLevelRequiresDivisibleGroups(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("p %% groupSize != 0 should panic")
		}
	}()
	NewTwoLevel(10, 3, 1e9, 1e9, 1e9, 0, 0, "bad")
}

func TestTransferTime(t *testing.T) {
	u := NewUniform(2, 100e9, 1000e9, 1e-6, "t")
	// 1 GB over 100 GB/s = 10 ms, plus 1 us latency.
	got := TransferTime(u, 0, 1, 1e9)
	want := 1e-6 + 1e9/100e9
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("TransferTime = %g, want %g", got, want)
	}
	if TransferTime(u, 0, 1, 0) != 0 {
		t.Fatal("zero-byte transfer should take no time")
	}
}

// E2: the Table 2 presets must match the paper's published system numbers.
func TestPresetPVCMatchesTable2(t *testing.T) {
	p := PresetPVC()
	if p.NumPE() != 12 {
		t.Fatalf("PVC devices = %d, want 12", p.NumPE())
	}
	if bw := p.Bandwidth(0, 4); bw != 26.5e9 {
		t.Fatalf("PVC Xe Link BW = %g, want 26.5 GB/s", bw)
	}
	if bw := p.Bandwidth(0, 1); bw != 230e9 {
		t.Fatalf("PVC inter-tile BW = %g, want 230 GB/s", bw)
	}
	// Tiles 2k and 2k+1 form one package.
	if p.Bandwidth(2, 3) != 230e9 || p.Bandwidth(3, 4) != 26.5e9 {
		t.Fatal("PVC package grouping wrong")
	}
}

func TestPresetH100MatchesTable2(t *testing.T) {
	h := PresetH100()
	if h.NumPE() != 8 {
		t.Fatalf("H100 devices = %d, want 8", h.NumPE())
	}
	if bw := h.Bandwidth(0, 7); bw != 450e9 {
		t.Fatalf("H100 NVLink BW = %g, want 450 GB/s", bw)
	}
}

func TestBandwidthSymmetricForPresets(t *testing.T) {
	for _, topo := range []Topology{PresetPVC(), PresetH100()} {
		p := topo.NumPE()
		for src := 0; src < p; src++ {
			for dst := 0; dst < p; dst++ {
				if topo.Bandwidth(src, dst) != topo.Bandwidth(dst, src) {
					t.Fatalf("%s: asymmetric BW (%d,%d)", topo.Name(), src, dst)
				}
				if topo.Latency(src, dst) != topo.Latency(dst, src) {
					t.Fatalf("%s: asymmetric latency (%d,%d)", topo.Name(), src, dst)
				}
			}
		}
	}
}

func TestMultiNodeTiers(t *testing.T) {
	c := NewMultiNode(2, 4, 450e9, 50e9, 2000e9, 3e-6, 10e-6, "cluster")
	if c.NumPE() != 8 {
		t.Fatalf("NumPE = %d", c.NumPE())
	}
	if c.NodeOf(3) != 0 || c.NodeOf(4) != 1 {
		t.Fatal("NodeOf wrong")
	}
	if bw := c.Bandwidth(0, 3); bw != 450e9 {
		t.Fatalf("intra-node BW = %g", bw)
	}
	if bw := c.Bandwidth(0, 4); bw != 50e9 {
		t.Fatalf("inter-node BW = %g", bw)
	}
	if bw := c.Bandwidth(5, 5); bw != 2000e9 {
		t.Fatalf("local BW = %g", bw)
	}
	if lat := c.Latency(0, 7); lat != 10e-6 {
		t.Fatalf("inter latency = %g", lat)
	}
}

func TestPresetH100Cluster(t *testing.T) {
	c := PresetH100Cluster(4)
	if c.NumPE() != 32 {
		t.Fatalf("4-node cluster has %d PEs", c.NumPE())
	}
	if c.Bandwidth(0, 8) >= c.Bandwidth(0, 1) {
		t.Fatal("inter-node must be slower than intra-node")
	}
}

func TestMultiNodeInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid cluster should panic")
		}
	}()
	NewMultiNode(0, 4, 1, 1, 1, 0, 0, "bad")
}
