package shmem

import (
	"fmt"
	"sync"

	rt "slicing/internal/runtime"
)

// getPutScratch pools the bounce buffer of AccumulateAddGetPut. Chunked
// accumulation bounds each critical section to one stripe block, so a
// single stripeBlock-sized buffer (16 KiB) serves any request size and the
// hot path performs no allocation.
var getPutScratch = sync.Pool{
	New: func() any {
		buf := make([]float32, stripeBlock)
		return &buf
	},
}

// addInto accumulates src into dst element-wise. The slices must have equal
// length. The 4-way unrolled body keeps the loop bounds-check-free and
// exposes four independent dependency chains, which is as
// vectorization-friendly as scalar Go gets.
func addInto(dst, src []float32) {
	dst = dst[:len(src)]
	i := 0
	for ; i+3 < len(src); i += 4 {
		dst[i] += src[i]
		dst[i+1] += src[i+1]
		dst[i+2] += src[i+2]
		dst[i+3] += src[i+3]
	}
	for ; i < len(src); i++ {
		dst[i] += src[i]
	}
}

// PE is a processing element's handle to the world. A PE value is only valid
// inside the World.Run body that created it and must not be shared across
// ranks.
type PE struct {
	world *World
	rank  int
}

// Rank returns this PE's rank in [0, NumPE).
func (pe *PE) Rank() int { return pe.rank }

// NumPE returns the world size.
func (pe *PE) NumPE() int { return pe.world.numPE }

// World returns the world this PE belongs to, satisfying runtime.Allocator.
func (pe *PE) World() rt.World { return pe.world }

// Local returns this PE's local storage for a segment. The returned slice
// aliases symmetric memory; other PEs may read or accumulate into it at any
// time, so callers must coordinate with barriers before assuming quiescence.
func (pe *PE) Local(seg SegmentID) []float32 {
	return pe.world.storage(seg, pe.rank)
}

// Get copies n = len(dst) elements starting at offset from the segment on
// the remote rank into dst. This is the one-sided remote read primitive.
func (pe *PE) Get(dst []float32, seg SegmentID, remote, offset int) {
	src := pe.world.storage(seg, remote)
	checkRange("Get", seg, remote, offset, len(dst), len(src))
	copy(dst, src[offset:offset+len(dst)])
	pe.world.count(remote != pe.rank, opGet, len(dst))
}

// Put copies src into the segment on the remote rank starting at offset.
// This is the one-sided remote write primitive.
func (pe *PE) Put(src []float32, seg SegmentID, remote, offset int) {
	dst := pe.world.storage(seg, remote)
	checkRange("Put", seg, remote, offset, len(src), len(dst))
	copy(dst[offset:offset+len(src)], src)
	pe.world.count(remote != pe.rank, opPut, len(src))
}

// AccumulateAdd atomically adds src element-wise into the segment on the
// remote rank starting at offset. The update is applied one stripe block at
// a time: accumulates into disjoint blocks proceed in parallel and spanning
// accumulates interleave block-by-block, mirroring the element-wise
// atomicity of the paper's GPU atomic accumulate kernel.
func (pe *PE) AccumulateAdd(src []float32, seg SegmentID, remote, offset int) {
	dst := pe.world.storage(seg, remote)
	checkRange("AccumulateAdd", seg, remote, offset, len(src), len(dst))
	pe.world.segLocks[seg].lockBlocks(offset, len(src), func(lo, hi int) {
		addInto(dst[lo:hi], src[lo-offset:hi-offset])
	})
	pe.world.count(remote != pe.rank, opAccum, len(src))
}

// AccumulateAddGetPut accumulates src into a remote region using the
// paper's inter-node scheme (§3): lock a block of the target range,
// remote-get the current values, add locally, and remote-put the result —
// the path used when the interconnect offers RDMA get/put but no remote
// atomics. The round trip is performed per stripe block under that block's
// lock, so it is element-wise equivalent to AccumulateAdd (both serialize
// through the same striped locks and the two paths can be mixed safely);
// the performance model charges it a full round trip. The bounce buffer is
// pooled, never allocated per call.
func (pe *PE) AccumulateAddGetPut(src []float32, seg SegmentID, remote, offset int) {
	dst := pe.world.storage(seg, remote)
	checkRange("AccumulateAddGetPut", seg, remote, offset, len(src), len(dst))
	scratch := getPutScratch.Get().(*[]float32)
	tmp := *scratch
	pe.world.segLocks[seg].lockBlocks(offset, len(src), func(lo, hi int) {
		t := tmp[:hi-lo]
		copy(t, dst[lo:hi])                  // remote get
		addInto(t, src[lo-offset:hi-offset]) // local add
		copy(dst[lo:hi], t)                  // remote put
	})
	getPutScratch.Put(scratch)
	pe.world.count(remote != pe.rank, opGet, len(src))
	pe.world.count(remote != pe.rank, opAccum, len(src))
}

// GetStrided copies a rows×cols block with the given row strides between a
// remote segment region and dst. It is the 2-D variant of Get used when a
// sub-tile (not a full tile) must be fetched.
func (pe *PE) GetStrided(dst []float32, dstStride int, seg SegmentID, remote, offset, srcStride, rows, cols int) {
	src := pe.world.storage(seg, remote)
	checkStrided("GetStrided", seg, remote, offset, srcStride, rows, cols, len(src))
	for r := 0; r < rows; r++ {
		copy(dst[r*dstStride:r*dstStride+cols], src[offset+r*srcStride:offset+r*srcStride+cols])
	}
	pe.world.count(remote != pe.rank, opGet, rows*cols)
}

// PutStrided writes a rows×cols block from src into a remote segment region.
func (pe *PE) PutStrided(src []float32, srcStride int, seg SegmentID, remote, offset, dstStride, rows, cols int) {
	dst := pe.world.storage(seg, remote)
	checkStrided("PutStrided", seg, remote, offset, dstStride, rows, cols, len(dst))
	for r := 0; r < rows; r++ {
		copy(dst[offset+r*dstStride:offset+r*dstStride+cols], src[r*srcStride:r*srcStride+cols])
	}
	pe.world.count(remote != pe.rank, opPut, rows*cols)
}

// AccumulateAddStrided atomically adds a rows×cols block from src into a
// remote segment region. Each destination row is a contiguous range and is
// accumulated stripe block by stripe block, like AccumulateAdd; the row
// gaps are never locked.
func (pe *PE) AccumulateAddStrided(src []float32, srcStride int, seg SegmentID, remote, offset, dstStride, rows, cols int) {
	dst := pe.world.storage(seg, remote)
	checkStrided("AccumulateAddStrided", seg, remote, offset, dstStride, rows, cols, len(dst))
	locks := pe.world.segLocks[seg]
	for r := 0; r < rows; r++ {
		rowOff := offset + r*dstStride
		s := src[r*srcStride : r*srcStride+cols]
		locks.lockBlocks(rowOff, cols, func(lo, hi int) {
			addInto(dst[lo:hi], s[lo-rowOff:hi-rowOff])
		})
	}
	pe.world.count(remote != pe.rank, opAccum, rows*cols)
}

// GetAsync performs the one-sided read and returns an already-completed
// Future. It models the host-initiated asynchronous tile copy
// (get_tile_async in Table 1); in this in-process backend a remote get is a
// memcpy, so performing it at issue time and returning the shared completed
// future is both legal under the contract (any moment between issue and
// Wait) and cheaper than a goroutine-and-channel future per fetch — the
// same choice the simbackend and gpubackend PEs make.
func (pe *PE) GetAsync(dst []float32, seg SegmentID, remote, offset int) rt.Future {
	pe.Get(dst, seg, remote, offset)
	return rt.CompletedFuture()
}

// GetStridedAsync is the asynchronous strided get; see GetAsync for the
// completion semantics.
func (pe *PE) GetStridedAsync(dst []float32, dstStride int, seg SegmentID, remote, offset, srcStride, rows, cols int) rt.Future {
	pe.GetStrided(dst, dstStride, seg, remote, offset, srcStride, rows, cols)
	return rt.CompletedFuture()
}

// AccumulateAddAsync is the asynchronous accumulate; see GetAsync for the
// completion semantics.
func (pe *PE) AccumulateAddAsync(src []float32, seg SegmentID, remote, offset int) rt.Future {
	pe.AccumulateAdd(src, seg, remote, offset)
	return rt.CompletedFuture()
}

// Barrier blocks until every PE in the world has entered the barrier.
func (pe *PE) Barrier() { pe.world.barrier.await() }

// AllocSymmetric performs a collective symmetric allocation from inside a
// PE body, with OpenSHMEM shmem_malloc semantics: every PE must call it in
// the same order with the same size, and the k-th call on every rank
// returns the same world-wide SegmentID. The first rank to reach call k
// creates the segment; the others adopt it.
func (pe *PE) AllocSymmetric(n int) SegmentID {
	w := pe.world
	w.collMu.Lock()
	defer w.collMu.Unlock()
	seq := w.peAllocSeq[pe.rank]
	w.peAllocSeq[pe.rank]++
	if seq == len(w.collSegs) {
		w.collSegs = append(w.collSegs, w.AllocSymmetric(n))
	} else if seq > len(w.collSegs) {
		panic(fmt.Sprintf("shmem: rank %d collective allocation %d ahead of world (%d created)",
			pe.rank, seq, len(w.collSegs)))
	}
	seg := w.collSegs[seq]
	if got := w.SegmentLen(seg); got != n {
		panic(fmt.Sprintf("shmem: mismatched collective allocation %d: rank %d wants %d elements, world created %d",
			seq, pe.rank, n, got))
	}
	return seg
}

func checkRange(op string, seg SegmentID, remote, offset, n, segLen int) {
	if offset < 0 || n < 0 || offset+n > segLen {
		panic(fmt.Sprintf("shmem: %s out of range: seg %d pe %d offset %d len %d (segment holds %d)",
			op, seg, remote, offset, n, segLen))
	}
}

func checkStrided(op string, seg SegmentID, remote, offset, stride, rows, cols, segLen int) {
	if rows < 0 || cols < 0 || offset < 0 || stride < cols {
		panic(fmt.Sprintf("shmem: %s invalid block: offset %d stride %d rows %d cols %d", op, offset, stride, rows, cols))
	}
	if rows > 0 && offset+(rows-1)*stride+cols > segLen {
		panic(fmt.Sprintf("shmem: %s out of range: seg %d pe %d offset %d stride %d rows %d cols %d (segment holds %d)",
			op, seg, remote, offset, stride, rows, cols, segLen))
	}
}
