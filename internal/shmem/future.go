package shmem

import "sync"

// Future represents an asynchronous one-sided operation in flight. Wait
// blocks until the operation (and the operations of any chained futures)
// has completed. Futures model the future objects returned by
// get_tile_async in Table 1 of the paper.
type Future struct {
	once sync.Once
	done chan struct{}
}

func newFuture(op func()) *Future {
	f := &Future{done: make(chan struct{})}
	go func() {
		defer close(f.done)
		op()
	}()
	return f
}

// CompletedFuture returns a Future that is already done. It is used when a
// tile happens to be local and no communication is necessary, so the
// prefetch pipeline can treat local and remote tiles uniformly.
func CompletedFuture() *Future {
	f := &Future{done: make(chan struct{})}
	close(f.done)
	return f
}

// After returns a Future that runs op once prev completes. A nil prev is
// treated as already satisfied. This expresses the GEMM→accumulate
// dependency chain of §4.2 (accumulate kernel dependent on the local GEMM).
func After(prev *Future, op func()) *Future {
	f := &Future{done: make(chan struct{})}
	go func() {
		defer close(f.done)
		if prev != nil {
			prev.Wait()
		}
		op()
	}()
	return f
}

// Wait blocks until the future's operation has completed. It is safe to call
// from multiple goroutines and more than once.
func (f *Future) Wait() { <-f.done }

// Done reports whether the future has completed without blocking.
func (f *Future) Done() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// WaitAll waits for every non-nil future in fs.
func WaitAll(fs []*Future) {
	for _, f := range fs {
		if f != nil {
			f.Wait()
		}
	}
}
