//go:build !race

package shmem

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions are skipped under -race because the
// instrumentation itself allocates and sync.Pool sheds items.
const raceEnabled = false
