package shmem

import (
	"sync/atomic"
	"testing"

	rt "slicing/internal/runtime"
)

func TestWorldBasics(t *testing.T) {
	w := NewWorld(4)
	if w.NumPE() != 4 {
		t.Fatalf("NumPE = %d", w.NumPE())
	}
	seg := w.AllocSymmetric(16)
	if w.SegmentLen(seg) != 16 {
		t.Fatalf("SegmentLen = %d", w.SegmentLen(seg))
	}
}

func TestNewWorldPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWorld(0) should panic")
		}
	}()
	NewWorld(0)
}

func TestRunAllRanksExecute(t *testing.T) {
	w := NewWorld(8)
	var seen [8]atomic.Bool
	w.Run(func(pe rt.PE) {
		if pe.NumPE() != 8 {
			t.Errorf("NumPE inside body = %d", pe.NumPE())
		}
		seen[pe.Rank()].Store(true)
	})
	for r := range seen {
		if !seen[r].Load() {
			t.Fatalf("rank %d did not run", r)
		}
	}
}

func TestPutThenGet(t *testing.T) {
	w := NewWorld(2)
	seg := w.AllocSymmetric(4)
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			pe.Put([]float32{1, 2, 3, 4}, seg, 1, 0)
		}
		pe.Barrier()
		if pe.Rank() == 1 {
			local := pe.Local(seg)
			if local[0] != 1 || local[3] != 4 {
				t.Errorf("remote put not visible: %v", local)
			}
		}
		got := make([]float32, 4)
		pe.Get(got, seg, 1, 0)
		if got[2] != 3 {
			t.Errorf("get from rank 1 wrong: %v", got)
		}
	})
}

func TestGetOffsetWindow(t *testing.T) {
	w := NewWorld(2)
	seg := w.AllocSymmetric(8)
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			pe.Put([]float32{10, 11, 12}, seg, 1, 4)
		}
		pe.Barrier()
		dst := make([]float32, 2)
		pe.Get(dst, seg, 1, 5)
		if dst[0] != 11 || dst[1] != 12 {
			t.Errorf("offset get wrong: %v", dst)
		}
	})
}

func TestAccumulateAddConcurrent(t *testing.T) {
	const p = 8
	const iters = 50
	w := NewWorld(p)
	seg := w.AllocSymmetric(4)
	w.Run(func(pe rt.PE) {
		for i := 0; i < iters; i++ {
			pe.AccumulateAdd([]float32{1, 1, 1, 1}, seg, 0, 0)
		}
		pe.Barrier()
		if pe.Rank() == 0 {
			local := pe.Local(seg)
			for i, v := range local {
				if v != p*iters {
					t.Errorf("element %d = %v, want %d", i, v, p*iters)
				}
			}
		}
	})
}

func TestAccumulateAddStridedConcurrent(t *testing.T) {
	const p = 6
	w := NewWorld(p)
	seg := w.AllocSymmetric(16)  // 4x4 tile
	src := []float32{1, 2, 3, 4} // 2x2 block
	w.Run(func(pe rt.PE) {
		// All PEs accumulate the same 2x2 block at (1,1) of rank 0's tile.
		pe.AccumulateAddStrided(src, 2, seg, 0, 1*4+1, 4, 2, 2)
		pe.Barrier()
		if pe.Rank() == 0 {
			local := pe.Local(seg)
			want := map[int]float32{5: p * 1, 6: p * 2, 9: p * 3, 10: p * 4}
			for i, v := range local {
				if v != want[i] {
					t.Errorf("offset %d = %v, want %v", i, v, want[i])
				}
			}
		}
	})
}

func TestStridedGetPut(t *testing.T) {
	w := NewWorld(2)
	seg := w.AllocSymmetric(12) // 3x4
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			// Write a 2x2 block into (1,1)..(2,2) of rank 1's 3x4 tile.
			pe.PutStrided([]float32{1, 2, 3, 4}, 2, seg, 1, 1*4+1, 4, 2, 2)
		}
		pe.Barrier()
		dst := make([]float32, 4)
		pe.GetStrided(dst, 2, seg, 1, 1*4+1, 4, 2, 2)
		if dst[0] != 1 || dst[1] != 2 || dst[2] != 3 || dst[3] != 4 {
			t.Errorf("strided round trip wrong: %v", dst)
		}
	})
}

func TestGetAsyncFuture(t *testing.T) {
	w := NewWorld(2)
	seg := w.AllocSymmetric(4)
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			pe.Put([]float32{7, 8, 9, 10}, seg, 1, 0)
		}
		pe.Barrier()
		dst := make([]float32, 4)
		f := pe.GetAsync(dst, seg, 1, 0)
		f.Wait()
		if dst[3] != 10 {
			t.Errorf("async get wrong: %v", dst)
		}
		if !f.Done() {
			t.Error("future should report done after Wait")
		}
	})
}

func TestBarrierOrdering(t *testing.T) {
	const p = 6
	w := NewWorld(p)
	seg := w.AllocSymmetric(1)
	w.Run(func(pe rt.PE) {
		pe.Put([]float32{float32(pe.Rank() + 1)}, seg, (pe.Rank()+1)%p, 0)
		pe.Barrier()
		// After the barrier, every PE must observe its neighbor's write.
		local := pe.Local(seg)
		want := float32((pe.Rank()-1+p)%p) + 1
		if local[0] != want {
			t.Errorf("rank %d saw %v, want %v", pe.Rank(), local[0], want)
		}
		pe.Barrier()
	})
}

func TestBarrierReusable(t *testing.T) {
	const p = 4
	w := NewWorld(p)
	seg := w.AllocSymmetric(1)
	w.Run(func(pe rt.PE) {
		for round := 0; round < 10; round++ {
			if pe.Rank() == 0 {
				pe.Put([]float32{float32(round)}, seg, p-1, 0)
			}
			pe.Barrier()
			got := make([]float32, 1)
			pe.Get(got, seg, p-1, 0)
			if got[0] != float32(round) {
				t.Errorf("round %d: saw %v", round, got[0])
			}
			pe.Barrier()
		}
	})
}

func TestStatsCounting(t *testing.T) {
	w := NewWorld(2)
	seg := w.AllocSymmetric(8)
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			dst := make([]float32, 8)
			pe.Get(dst, seg, 1, 0)               // remote: 32 bytes
			pe.Get(dst[:2], seg, 0, 0)           // local: 8 bytes
			pe.AccumulateAdd(dst[:4], seg, 1, 0) // remote accum: 16 bytes
		}
	})
	s := w.Stats()
	if s.RemoteGetBytes != 32 {
		t.Errorf("RemoteGetBytes = %d", s.RemoteGetBytes)
	}
	if s.LocalGetBytes != 8 {
		t.Errorf("LocalGetBytes = %d", s.LocalGetBytes)
	}
	if s.RemoteAccumBytes != 16 {
		t.Errorf("RemoteAccumBytes = %d", s.RemoteAccumBytes)
	}
	if s.RemoteOps != 2 || s.LocalOps != 1 {
		t.Errorf("ops = %d remote, %d local", s.RemoteOps, s.LocalOps)
	}
	w.ResetStats()
	if w.Stats().RemoteGetBytes != 0 {
		t.Error("ResetStats did not clear counters")
	}
}

func TestGetOutOfRangePanics(t *testing.T) {
	w := NewWorld(1)
	seg := w.AllocSymmetric(4)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Get should panic")
		}
	}()
	w.Run(func(pe rt.PE) {
		dst := make([]float32, 8)
		pe.Get(dst, seg, 0, 0)
	})
}

func TestAccumulateOutOfRangePanics(t *testing.T) {
	w := NewWorld(1)
	seg := w.AllocSymmetric(4)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range AccumulateAdd should panic")
		}
	}()
	w.Run(func(pe rt.PE) {
		pe.AccumulateAdd(make([]float32, 2), seg, 0, 3)
	})
}

func TestUnknownSegmentPanics(t *testing.T) {
	w := NewWorld(1)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown segment should panic")
		}
	}()
	w.Run(func(pe rt.PE) {
		pe.Get(make([]float32, 1), SegmentID(99), 0, 0)
	})
}

func TestInvalidRankPanics(t *testing.T) {
	w := NewWorld(2)
	seg := w.AllocSymmetric(4)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid rank should panic")
		}
	}()
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			pe.Get(make([]float32, 1), seg, 5, 0)
		}
	})
}

func TestPanicInOneRankPropagatesWithoutDeadlock(t *testing.T) {
	w := NewWorld(4)
	defer func() {
		if recover() == nil {
			t.Fatal("panic in PE body should propagate from Run")
		}
	}()
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 2 {
			panic("boom")
		}
		pe.Barrier() // would deadlock without barrier poisoning
	})
}

func TestWorldReusableAfterPanic(t *testing.T) {
	w := NewWorld(3)
	func() {
		defer func() { recover() }()
		w.Run(func(pe rt.PE) {
			if pe.Rank() == 0 {
				panic("first run dies")
			}
			pe.Barrier()
		})
	}()
	// The barrier must be reset so a subsequent Run works.
	var ran atomic.Int32
	w.Run(func(pe rt.PE) {
		pe.Barrier()
		ran.Add(1)
	})
	if ran.Load() != 3 {
		t.Fatalf("second Run executed %d ranks", ran.Load())
	}
}

func TestSymmetricSegmentsIndependentPerPE(t *testing.T) {
	w := NewWorld(3)
	seg := w.AllocSymmetric(2)
	w.Run(func(pe rt.PE) {
		local := pe.Local(seg)
		local[0] = float32(pe.Rank())
		pe.Barrier()
		for r := 0; r < pe.NumPE(); r++ {
			got := make([]float32, 1)
			pe.Get(got, seg, r, 0)
			if got[0] != float32(r) {
				t.Errorf("segment on rank %d holds %v", r, got[0])
			}
		}
	})
}

func TestCollectiveAllocSameSegment(t *testing.T) {
	w := NewWorld(4)
	segs := make([]SegmentID, 4)
	w.Run(func(pe rt.PE) {
		// Two collective allocations per PE, in the same order everywhere.
		s1 := pe.AllocSymmetric(8)
		s2 := pe.AllocSymmetric(16)
		segs[pe.Rank()] = s1
		if s1 == s2 {
			t.Errorf("distinct collective allocations must differ")
		}
		// Data written through the collective segment is visible world-wide.
		local := pe.Local(s2)
		local[0] = float32(pe.Rank())
		pe.Barrier()
		got := make([]float32, 1)
		pe.Get(got, s2, (pe.Rank()+1)%4, 0)
		if got[0] != float32((pe.Rank()+1)%4) {
			t.Errorf("rank %d read %v from neighbor", pe.Rank(), got[0])
		}
	})
	for r := 1; r < 4; r++ {
		if segs[r] != segs[0] {
			t.Fatalf("collective allocation differs across ranks: %v", segs)
		}
	}
}

func TestCollectiveAllocSizeMismatchPanics(t *testing.T) {
	w := NewWorld(2)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched collective sizes should panic")
		}
	}()
	w.Run(func(pe rt.PE) {
		pe.AllocSymmetric(4 + pe.Rank()) // ranks disagree on size
	})
}

// The get+put accumulate (inter-node path, §3) must be exactly equivalent
// to the atomic-add path, including when both are used concurrently on the
// same region.
func TestAccumulateGetPutEquivalent(t *testing.T) {
	const p = 8
	const iters = 25
	w := NewWorld(p)
	seg := w.AllocSymmetric(4)
	w.Run(func(pe rt.PE) {
		for i := 0; i < iters; i++ {
			if (pe.Rank()+i)%2 == 0 {
				pe.AccumulateAdd([]float32{1, 1, 1, 1}, seg, 0, 0)
			} else {
				pe.AccumulateAddGetPut([]float32{1, 1, 1, 1}, seg, 0, 0)
			}
		}
		pe.Barrier()
		if pe.Rank() == 0 {
			for i, v := range pe.Local(seg) {
				if v != p*iters {
					t.Errorf("element %d = %v, want %d", i, v, p*iters)
				}
			}
		}
	})
}

func TestAccumulateGetPutCountsBothDirections(t *testing.T) {
	w := NewWorld(2)
	seg := w.AllocSymmetric(8)
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			pe.AccumulateAddGetPut(make([]float32, 8), seg, 1, 0)
		}
	})
	s := w.Stats()
	if s.RemoteGetBytes != 32 || s.RemoteAccumBytes != 32 {
		t.Fatalf("get+put accumulate traffic: get=%d accum=%d, want 32/32", s.RemoteGetBytes, s.RemoteAccumBytes)
	}
}

// TestAccumulateStripeStress hammers the striped accumulate locks from many
// PEs into overlapping offsets of one segment: same-stripe collisions,
// stripe-spanning ranges (which take the whole lock set), and the get+put
// path all interleave. Run under -race this is the regression test for the
// 16-stripe design documented on stripedLock; the final sums also prove
// mutual exclusion (a lost update would break them).
func TestAccumulateStripeStress(t *testing.T) {
	const (
		p      = 12
		iters  = 40
		segLen = 3*stripeBlock + 128 // spans several stripe blocks
	)
	w := NewWorld(p)
	seg := w.AllocSymmetric(segLen)
	// Overlapping windows: every PE updates [rank*64, rank*64+2*stripeBlock),
	// so neighbours collide within stripes and long ranges span stripes.
	src := make([]float32, 2*stripeBlock)
	for i := range src {
		src[i] = 1
	}
	w.Run(func(pe rt.PE) {
		off := pe.Rank() * 64
		for i := 0; i < iters; i++ {
			switch i % 3 {
			case 0:
				pe.AccumulateAdd(src, seg, 0, off)
			case 1:
				pe.AccumulateAddGetPut(src, seg, 0, off)
			case 2:
				// Strided write landing in the same region.
				pe.AccumulateAddStrided(src[:256], 16, seg, 0, off, 16, 16, 16)
			}
		}
		pe.Barrier()
		if pe.Rank() == 0 {
			local := pe.Local(seg)
			// Element expected value: sum of contributions of each PE whose
			// window covers it. Full-range ops add 1 per iteration in the
			// window; the strided op covers only the first 256 elements.
			for i := 0; i < segLen; i++ {
				var want float32
				for r := 0; r < p; r++ {
					off := r * 64
					fullOps := (iters+2)/3 + (iters+1)/3 // cases 0 and 1
					strideOps := iters / 3               // case 2
					if i >= off && i < off+2*stripeBlock {
						want += float32(fullOps)
					}
					if i >= off && i < off+256 {
						want += float32(strideOps)
					}
				}
				if local[i] != want {
					t.Fatalf("element %d = %v, want %v (lost update under contention)", i, local[i], want)
					return
				}
			}
		}
	})
}

// Chunked accumulates must be element-wise exact for ranges that are not
// block-aligned and span several stripe blocks, including via the strided
// and get+put paths racing on the same region.
func TestAccumulateChunkedSpanningRanges(t *testing.T) {
	const p = 8
	const n = 2*stripeBlock + 777 // unaligned, spans 3 blocks
	w := NewWorld(p)
	seg := w.AllocSymmetric(n + 13)
	src := make([]float32, n)
	for i := range src {
		src[i] = float32(i%7) + 1
	}
	w.Run(func(pe rt.PE) {
		if pe.Rank()%2 == 0 {
			pe.AccumulateAdd(src, seg, 0, 13)
		} else {
			pe.AccumulateAddGetPut(src, seg, 0, 13)
		}
		pe.Barrier()
		if pe.Rank() == 0 {
			local := pe.Local(seg)
			for i := 0; i < n; i++ {
				want := float32(p) * (float32(i%7) + 1)
				if local[13+i] != want {
					t.Fatalf("element %d = %v, want %v", i, local[13+i], want)
				}
			}
			if local[0] != 0 || local[12] != 0 {
				t.Fatal("accumulate wrote below its offset")
			}
		}
	})
}

// The accumulate hot paths must not allocate in the steady state: the
// atomic-add path writes in place under per-block locks, and the get+put
// path bounces through a pooled stripe-block scratch buffer.
func TestAccumulatePathsAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates and sync.Pool sheds items; alloc counts only meaningful without -race")
	}
	w := NewWorld(2)
	seg := w.AllocSymmetric(3 * stripeBlock)
	src := make([]float32, 2*stripeBlock+100) // spans blocks
	w.Run(func(pe rt.PE) {
		if pe.Rank() != 0 {
			return
		}
		pe.AccumulateAddGetPut(src, seg, 1, 50) // warm the scratch pool
		if allocs := testing.AllocsPerRun(20, func() {
			pe.AccumulateAdd(src, seg, 1, 50)
		}); allocs > 0 {
			t.Errorf("AccumulateAdd allocates %v objects per call, want 0", allocs)
		}
		if allocs := testing.AllocsPerRun(20, func() {
			pe.AccumulateAddGetPut(src, seg, 1, 50)
		}); allocs > 0 {
			t.Errorf("AccumulateAddGetPut allocates %v objects per call, want 0", allocs)
		}
		if allocs := testing.AllocsPerRun(20, func() {
			pe.AccumulateAddStrided(src[:1024], 64, seg, 1, 50, 80, 16, 64)
		}); allocs > 0 {
			t.Errorf("AccumulateAddStrided allocates %v objects per call, want 0", allocs)
		}
	})
}
