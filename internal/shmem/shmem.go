// Package shmem implements an in-process PGAS (partitioned global address
// space) runtime that stands in for Intel SHMEM / NVSHMEM in the paper.
//
// A World holds p processing elements (PEs). Each PE runs as its own
// goroutine inside World.Run. Symmetric memory is allocated collectively:
// AllocSymmetric reserves a segment of the same size on every PE, returning
// a SegmentID valid world-wide, exactly like a symmetric-heap allocation in
// OpenSHMEM. PEs then communicate only through one-sided operations — Get,
// Put, and AccumulateAdd — addressed by (segment, remote rank, offset),
// never by message passing. This reproduces the communication model the
// universal algorithm requires: remote get and remote accumulate (§1, §3 of
// the paper).
//
// AccumulateAdd is atomic with respect to other accumulates to the same
// segment (striped locks play the role of the paper's atomic-add kernel /
// coarse-grained inter-node locking), so concurrent partial-result updates
// from many PEs are safe, as required by Stationary A/B data movement.
//
// The package is the reference implementation of the backend contract in
// internal/runtime; *World and *PE satisfy runtime.World and runtime.PE.
package shmem

import (
	"fmt"
	"sync"
	"sync/atomic"

	rt "slicing/internal/runtime"
)

// SegmentID names a symmetric allocation: the same logical segment exists on
// every PE in the world.
type SegmentID = rt.SegmentID

// Stats aggregates one-sided traffic counters for a world.
type Stats = rt.Stats

// Allocator abstracts symmetric-heap allocation; both *World and *PE
// satisfy it.
type Allocator = rt.Allocator

// Backend constructs in-process PGAS worlds, the first implementation of
// the runtime.Backend contract.
type Backend struct{}

// Name identifies the backend.
func (Backend) Name() string { return "shmem" }

// NewWorld creates a world of p processing elements.
func (Backend) NewWorld(p int) rt.World { return NewWorld(p) }

// Compile-time checks that the package satisfies the runtime contract.
var (
	_ rt.Backend = Backend{}
	_ rt.World   = (*World)(nil)
	_ rt.PE      = (*PE)(nil)
)

// World is a collection of PEs sharing a symmetric heap.
type World struct {
	numPE int

	mu       sync.Mutex
	segments [][][]float32 // segments[seg][pe] -> storage, allocated lazily
	segSizes []int
	segLocks []*stripedLock

	barrier *barrier

	// Collective-allocation bookkeeping: the k-th PE.AllocSymmetric call on
	// every rank resolves to the same segment (collSegs[k]); peAllocSeq
	// tracks each rank's next call index.
	collMu     sync.Mutex
	collSegs   []SegmentID
	peAllocSeq []int

	remoteGetBytes   atomic.Int64
	remotePutBytes   atomic.Int64
	remoteAccumBytes atomic.Int64
	localGetBytes    atomic.Int64
	localPutBytes    atomic.Int64
	localAccumBytes  atomic.Int64
	remoteOps        atomic.Int64
	localOps         atomic.Int64
}

// NewWorld creates a world with numPE processing elements.
func NewWorld(numPE int) *World {
	if numPE <= 0 {
		panic(fmt.Sprintf("shmem: invalid world size %d", numPE))
	}
	return &World{numPE: numPE, barrier: newBarrier(numPE), peAllocSeq: make([]int, numPE)}
}

// World returns the world itself, satisfying runtime.Allocator.
func (w *World) World() rt.World { return w }

// NumPE returns the number of processing elements in the world.
func (w *World) NumPE() int { return w.numPE }

// AllocSymmetric reserves a segment of n float32 elements on every PE and
// returns its world-wide ID. It may be called before Run or from inside a PE
// body; in the latter case the caller is responsible for ensuring all PEs
// agree on allocation order (typically by allocating before Run, as the
// distributed-matrix layer does).
func (w *World) AllocSymmetric(n int) SegmentID {
	if n < 0 {
		panic(fmt.Sprintf("shmem: invalid segment size %d", n))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	id := SegmentID(len(w.segments))
	// Backing arrays are allocated lazily on first access so that
	// metadata-only uses (the simulated-time backends, which never touch
	// element data) do not pay for multi-gigabyte matrices.
	w.segments = append(w.segments, make([][]float32, w.numPE))
	w.segSizes = append(w.segSizes, n)
	w.segLocks = append(w.segLocks, newStripedLock())
	return id
}

// SegmentStorage returns rank's backing array for a segment, for
// host-side initialization before the world runs (e.g. populating sparse
// tile buffers at construction). Using it while PEs are running bypasses
// the one-sided discipline and its traffic accounting; inside Run, use PE
// operations instead.
func (w *World) SegmentStorage(seg SegmentID, rank int) []float32 {
	return w.storage(seg, rank)
}

// SegmentLen returns the per-PE length of a segment.
func (w *World) SegmentLen(seg SegmentID) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.segSizes[seg]
}

// Run spawns one goroutine per PE, invokes body with each PE handle, and
// waits for all of them to return. Panics inside a PE body are re-raised on
// the caller after all other PEs have been allowed to finish or deadlock is
// avoided by the panic propagating first.
func (w *World) Run(body func(pe rt.PE)) {
	var wg sync.WaitGroup
	panics := make([]any, w.numPE)
	for rank := 0; rank < w.numPE; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[rank] = r
					// Release peers that may be stuck in a barrier.
					w.barrier.poison()
				}
			}()
			body(&PE{world: w, rank: rank})
		}(rank)
	}
	wg.Wait()
	w.barrier.reset()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// Stats returns a snapshot of the world's traffic counters.
func (w *World) Stats() Stats {
	return Stats{
		RemoteGetBytes:   w.remoteGetBytes.Load(),
		RemotePutBytes:   w.remotePutBytes.Load(),
		RemoteAccumBytes: w.remoteAccumBytes.Load(),
		LocalGetBytes:    w.localGetBytes.Load(),
		LocalPutBytes:    w.localPutBytes.Load(),
		LocalAccumBytes:  w.localAccumBytes.Load(),
		RemoteOps:        w.remoteOps.Load(),
		LocalOps:         w.localOps.Load(),
	}
}

// ResetStats zeroes the world's traffic counters.
func (w *World) ResetStats() {
	w.remoteGetBytes.Store(0)
	w.remotePutBytes.Store(0)
	w.remoteAccumBytes.Store(0)
	w.localGetBytes.Store(0)
	w.localPutBytes.Store(0)
	w.localAccumBytes.Store(0)
	w.remoteOps.Store(0)
	w.localOps.Store(0)
}

func (w *World) storage(seg SegmentID, pe int) []float32 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if int(seg) < 0 || int(seg) >= len(w.segments) {
		panic(fmt.Sprintf("shmem: unknown segment %d", seg))
	}
	if pe < 0 || pe >= w.numPE {
		panic(fmt.Sprintf("shmem: rank %d out of world of %d PEs", pe, w.numPE))
	}
	if w.segments[seg][pe] == nil && w.segSizes[seg] > 0 {
		w.segments[seg][pe] = make([]float32, w.segSizes[seg])
	}
	return w.segments[seg][pe]
}

func (w *World) count(remote bool, kind opKind, n int) {
	bytes := int64(n) * 4
	if remote {
		w.remoteOps.Add(1)
		switch kind {
		case opGet:
			w.remoteGetBytes.Add(bytes)
		case opPut:
			w.remotePutBytes.Add(bytes)
		case opAccum:
			w.remoteAccumBytes.Add(bytes)
		}
	} else {
		w.localOps.Add(1)
		switch kind {
		case opGet:
			w.localGetBytes.Add(bytes)
		case opPut:
			w.localPutBytes.Add(bytes)
		case opAccum:
			w.localAccumBytes.Add(bytes)
		}
	}
}

type opKind int

const (
	opGet opKind = iota
	opPut
	opAccum
)

// stripedLock guards concurrent accumulates into a segment. Striping by
// offset block lets accumulates into disjoint regions of a large tile
// proceed in parallel, approximating the fine-grained atomics of the paper's
// GPU accumulate kernel.
//
// Accumulates are applied one stripe block at a time (lockBlocks): a range
// spanning several blocks is split into per-block critical sections rather
// than acquiring every stripe at once, so a large accumulate never blocks
// the whole segment and two spanning accumulates interleave block-by-block
// instead of serializing end-to-end. Element-wise atomicity — the only
// guarantee a commutative `+=` reduction needs, and the one the paper's GPU
// atomic-add kernel provides — is preserved; whole-range atomicity is not,
// exactly as on real hardware. TestAccumulateStripeStress race-tests the
// no-lost-update invariant across same-stripe collisions, spanning ranges,
// and the get+put path.
//
// Why 16 stripes: accumulate concurrency into one segment is bounded by
// the world size times the per-PE chain concurrency (Config.MaxInflight,
// default 4), and worlds in this in-process runtime are node-scale (8–12
// PEs, the Table 2 systems). 16 stripes keep the expected collision rate
// for disjoint-block accumulates low at that concurrency, and with
// block-chunked acquisition there is no whole-set path left to pay for.
type stripedLock struct {
	stripes [16]sync.Mutex
}

func newStripedLock() *stripedLock { return &stripedLock{} }

const stripeBlock = 4096 // float32s per stripe block

// lockBlocks invokes f(lo, hi) for every stripe-block-aligned chunk of
// [offset, offset+n), holding exactly that block's stripe mutex during the
// call. Only one stripe is ever held at a time, so no acquisition ordering
// is needed and a spanning accumulate cannot deadlock or convoy the whole
// segment.
func (s *stripedLock) lockBlocks(offset, n int, f func(lo, hi int)) {
	for lo, end := offset, offset+n; lo < end; {
		hi := (lo/stripeBlock + 1) * stripeBlock
		if hi > end {
			hi = end
		}
		mu := &s.stripes[lo/stripeBlock%len(s.stripes)]
		mu.Lock()
		f(lo, hi)
		mu.Unlock()
		lo = hi
	}
}
