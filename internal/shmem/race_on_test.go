//go:build race

package shmem

// raceEnabled: see race_off_test.go.
const raceEnabled = true
