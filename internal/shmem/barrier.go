package shmem

import "sync"

// barrier is a reusable sense-reversing barrier for a fixed party count.
// poison releases all current and future waiters, which Run uses to unblock
// peers when one PE panics so the panic can propagate instead of
// deadlocking the test binary.
type barrier struct {
	mu       sync.Mutex
	cond     *sync.Cond
	parties  int
	waiting  int
	phase    uint64
	poisoned bool
}

func newBarrier(parties int) *barrier {
	b := &barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.poisoned {
		return
	}
	phase := b.phase
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.phase++
		b.cond.Broadcast()
		return
	}
	for b.phase == phase && !b.poisoned {
		b.cond.Wait()
	}
}

func (b *barrier) poison() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.poisoned = true
	b.cond.Broadcast()
}

func (b *barrier) reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.poisoned = false
	b.waiting = 0
}
