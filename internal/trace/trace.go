// Package trace renders benchmark results as text: aligned tables (the
// rows the paper's tables report) and ASCII approximations of the
// percent-of-peak figures, playing the role of the artifact's
// plot_mlp{1,2}.py scripts.
package trace

import (
	"fmt"
	"io"
	"strings"

	"slicing/internal/bench"
)

// WriteFigureTable renders a figure's series as an aligned text table with
// the replication annotation and stationary strategy per point, one row
// per series.
func WriteFigureTable(w io.Writer, fig bench.Figure) {
	fmt.Fprintf(w, "%s\n", fig.Title)
	batches := batchesOf(fig)
	fmt.Fprintf(w, "%-20s", "series")
	for _, b := range batches {
		fmt.Fprintf(w, " %14d", b)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 20+15*len(batches)))
	for _, s := range fig.Series {
		fmt.Fprintf(w, "%-20s", s.Name)
		for _, pt := range s.Points {
			label := fmt.Sprintf("%5.1f%% (%s)", pt.PercentOfPeak, pt.ReplLabel())
			fmt.Fprintf(w, " %14s", label)
		}
		fmt.Fprintln(w)
	}
}

// WriteFigureChart renders an ASCII chart of percent-of-peak versus batch
// size: one column group per batch, one marker per series, y axis 0-100%.
func WriteFigureChart(w io.Writer, fig bench.Figure, height int) {
	if height <= 0 {
		height = 20
	}
	batches := batchesOf(fig)
	markers := "ABCDEFGHIJKLMNOP"
	colWidth := 6

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", len(batches)*colWidth))
	}
	for si, s := range fig.Series {
		if si >= len(markers) {
			break
		}
		for bi, pt := range s.Points {
			row := height - 1 - int(pt.PercentOfPeak/100*float64(height-1)+0.5)
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			col := bi*colWidth + si%colWidth
			if grid[row][col] == ' ' {
				grid[row][col] = markers[si]
			}
		}
	}

	fmt.Fprintf(w, "%s\n", fig.Title)
	for i, line := range grid {
		pct := 100 * (height - 1 - i) / (height - 1)
		fmt.Fprintf(w, "%3d%% |%s\n", pct, string(line))
	}
	fmt.Fprintf(w, "     +%s\n", strings.Repeat("-", len(batches)*colWidth))
	fmt.Fprintf(w, "      ")
	for _, b := range batches {
		fmt.Fprintf(w, "%-*d", colWidth, b)
	}
	fmt.Fprintln(w)
	for si, s := range fig.Series {
		if si >= len(markers) {
			break
		}
		fmt.Fprintf(w, "  %c = %s\n", markers[si], s.Name)
	}
}

// WriteValidationTable renders estimator-vs-timed validation points as a
// table: the plan-replay estimate per UA series with its error bar (the
// spread of the two timed backends around it, in percent-of-peak points),
// the annotation the figure harness attaches under each estimator curve.
func WriteValidationTable(w io.Writer, pts []bench.ValidationPoint) {
	if len(pts) == 0 {
		return
	}
	fmt.Fprintf(w, "validation points (timed runs at 1/%d scale; error bar = timed - estimator, %%-of-peak points)\n",
		pts[0].Scale)
	fmt.Fprintf(w, "%-20s %6s %8s %15s %8s %8s\n", "series", "batch", "est", "err bar", "simbknd", "gpubknd")
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 70))
	for _, v := range pts {
		lo, hi := v.ErrBar()
		fmt.Fprintf(w, "%-20s %6d %7.1f%% [%+5.1f,%+5.1f] %7.1f%% %7.1f%%\n",
			v.Series, v.Batch, v.EstimatorPct, lo, hi, v.SimbackendPct, v.GpubackendPct)
	}
}

func batchesOf(fig bench.Figure) []int {
	if len(fig.Series) == 0 {
		return nil
	}
	var out []int
	for _, pt := range fig.Series[0].Points {
		out = append(out, pt.Batch)
	}
	return out
}

// Summary holds a compact comparison row used by EXPERIMENTS.md: the best
// UA series versus the best competitor at the largest batch.
type Summary struct {
	Figure       string
	BestUA       string
	BestUAPct    float64
	BestOther    string
	BestOtherPct float64
	UAWinsOrTies bool
}

// Summarize extracts the headline comparison from a figure at its largest
// batch size.
func Summarize(fig bench.Figure) Summary {
	sum := Summary{Figure: fig.Title}
	for _, s := range fig.Series {
		if len(s.Points) == 0 {
			continue
		}
		last := s.Points[len(s.Points)-1].PercentOfPeak
		if strings.HasPrefix(s.Name, "UA") {
			if last > sum.BestUAPct {
				sum.BestUAPct = last
				sum.BestUA = s.Name
			}
		} else {
			if last > sum.BestOtherPct {
				sum.BestOtherPct = last
				sum.BestOther = s.Name
			}
		}
	}
	// "Competitive" in the paper means within ~5%; count that as a tie.
	sum.UAWinsOrTies = sum.BestUAPct >= sum.BestOtherPct*0.95
	return sum
}
