package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"slicing/internal/sweep"
)

// WriteSweepPlot renders a cluster-sweep artifact as a deterministic
// ASCII scatter — the terminal-native view of the paper's figures.
// Artifacts carrying the availability axis plot availability (% of
// healthy throughput) against crashed ranks; classic artifacts plot
// percent-of-peak against cluster size. One glyph per series (a distinct
// cluster configuration), with a legend underneath. Output is a pure
// function of the artifact: same file, same bytes.
func WriteSweepPlot(w io.Writer, art *sweep.Artifact) {
	avail := false
	for _, pt := range art.Points {
		if pt.AvailabilityPct != 0 {
			avail = true
			break
		}
	}
	if avail {
		series := groupPoints(art, func(pt sweep.Point) (string, float64, float64, bool) {
			key := fmt.Sprintf("%dn x %dr ov%g dg%g", pt.Nodes, pt.Rails, pt.Oversub, pt.DegradeFactor)
			return key, float64(pt.CrashedRanks), pt.AvailabilityPct, pt.AvailabilityPct != 0
		})
		title := fmt.Sprintf("%s: availability vs crashed ranks (%s batch %d)", art.Name, art.Layer, art.Batch)
		renderPlot(w, title, "crashed ranks", "avail %", series)
	} else {
		series := groupPoints(art, func(pt sweep.Point) (string, float64, float64, bool) {
			key := fmt.Sprintf("%dr ov%g dg%g", pt.Rails, pt.Oversub, pt.DegradeFactor)
			return key, float64(pt.PEs), pt.PercentOfPeak, true
		})
		title := fmt.Sprintf("%s: percent of peak vs cluster size (%s batch %d)", art.Name, art.Layer, art.Batch)
		renderPlot(w, title, "PEs", "% peak", series)
	}
}

// plotSeries is one named point set of the plot.
type plotSeries struct {
	name   string
	xs, ys []float64
}

// groupPoints buckets the artifact's points into series via pick, which
// returns the series key, the (x, y) coordinates, and whether the point
// participates. Series come back sorted by name so glyph assignment is
// deterministic.
func groupPoints(art *sweep.Artifact, pick func(sweep.Point) (string, float64, float64, bool)) []plotSeries {
	byName := map[string]*plotSeries{}
	for _, pt := range art.Points {
		key, x, y, ok := pick(pt)
		if !ok {
			continue
		}
		s := byName[key]
		if s == nil {
			s = &plotSeries{name: key}
			byName[key] = s
		}
		s.xs = append(s.xs, x)
		s.ys = append(s.ys, y)
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]plotSeries, len(names))
	for i, name := range names {
		out[i] = *byName[name]
	}
	return out
}

// plotGlyphs are assigned to series in sorted-name order; overlapping
// points keep the earlier series' glyph (first write wins), so rendering
// order never depends on map iteration.
const plotGlyphs = "ox+*#@%&"

// renderPlot rasterizes the series onto a fixed-size character grid with
// y-axis labels, an x-axis ruler, and a legend.
func renderPlot(w io.Writer, title, xLabel, yLabel string, series []plotSeries) {
	const width, height = 58, 16
	if len(series) == 0 {
		fmt.Fprintf(w, "%s\n(no points to plot)\n", title)
		return
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.xs {
			minX, maxX = math.Min(minX, s.xs[i]), math.Max(maxX, s.xs[i])
			minY, maxY = math.Min(minY, s.ys[i]), math.Max(maxY, s.ys[i])
		}
	}
	// Degenerate spans still need a nonzero scale to land on the grid.
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := plotGlyphs[si%len(plotGlyphs)]
		for i := range s.xs {
			col := int(math.Round((s.xs[i] - minX) / (maxX - minX) * float64(width-1)))
			row := height - 1 - int(math.Round((s.ys[i]-minY)/(maxY-minY)*float64(height-1)))
			if grid[row][col] == ' ' {
				grid[row][col] = g
			}
		}
	}
	fmt.Fprintf(w, "%s\n\n", title)
	for r, line := range grid {
		label := ""
		switch r {
		case 0:
			label = fmt.Sprintf("%.4g", maxY)
		case height - 1:
			label = fmt.Sprintf("%.4g", minY)
		case (height - 1) / 2:
			label = fmt.Sprintf("%.4g", (maxY+minY)/2)
		}
		fmt.Fprintf(w, "%8s |%s\n", label, string(line))
	}
	fmt.Fprintf(w, "%8s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(w, "%8s  %-*g%*g\n", "", width/2, minX, width-width/2, maxX)
	fmt.Fprintf(w, "%8s  (%s vs %s)\n", "", yLabel, xLabel)
	for si, s := range series {
		fmt.Fprintf(w, "%10c %s\n", plotGlyphs[si%len(plotGlyphs)], s.name)
	}
}
