package trace

import (
	"fmt"
	"io"
	"strings"

	"slicing/internal/gpusim"
	rt "slicing/internal/runtime"
)

// WriteGantt renders a discrete-event schedule as an ASCII timeline: one
// row per resource, time flowing right, each op drawn as a run of its kind
// marker (C = compute, G = get, A = accumulate, o = other). It makes the
// overlap structure of §4.2/§4.3 schedules visible: a healthy
// direct-execution schedule shows the compute rows densely packed while
// the comm rows work in the background. A per-resource utilization figure
// is printed at the end of each row.
func WriteGantt(w io.Writer, eng *gpusim.Engine, res gpusim.Result, width int) {
	names := make([]string, eng.NumResources())
	util := make([]float64, len(names))
	for r := range names {
		names[r] = eng.ResourceName(gpusim.ResourceID(r))
		util[r] = res.Utilization(gpusim.ResourceID(r))
	}
	renderGantt(w, names, res.Timings, res.Makespan, util, width)
}

// WriteTimelineGantt renders an online stream/event schedule — a
// gpubackend World's Timeline() — in the same Gantt form as WriteGantt:
// one row per engine, port, or fabric link. On a world built over a
// link-routed topology the fabric links are timeline resources, so the
// rendering carries a per-link utilization lane alongside the compute and
// copy-engine lanes.
func WriteTimelineGantt(w io.Writer, tl *gpusim.Timeline, width int) {
	makespan := tl.End()
	names := make([]string, tl.NumResources())
	util := make([]float64, len(names))
	for r := range names {
		names[r] = tl.ResourceName(gpusim.ResourceID(r))
		if makespan > 0 {
			util[r] = tl.BusyFor(gpusim.ResourceID(r)) / makespan
		}
	}
	renderGantt(w, names, tl.Timings(), makespan, util, width)
}

func renderGantt(w io.Writer, names []string, timings []gpusim.OpTiming, makespan float64, util []float64, width int) {
	if width <= 0 {
		width = 80
	}
	if makespan <= 0 {
		fmt.Fprintln(w, "(empty schedule)")
		return
	}
	rows := make([][]byte, len(names))
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	for _, tm := range timings {
		if tm.End <= tm.Start {
			continue
		}
		from := int(tm.Start / makespan * float64(width))
		to := int(tm.End / makespan * float64(width))
		if to <= from {
			to = from + 1
		}
		if to > width {
			to = width
		}
		mark := markerFor(tm.Kind)
		for _, r := range tm.Resources {
			row := rows[r]
			for c := from; c < to; c++ {
				row[c] = mark
			}
		}
	}
	nameWidth := 8
	for _, n := range names {
		if len(n) > nameWidth {
			nameWidth = len(n)
		}
	}
	fmt.Fprintf(w, "makespan %.6fs  (C=compute G=get A=accum)\n", makespan)
	for r := range names {
		fmt.Fprintf(w, "%2d %-*s |%s| %5.1f%%\n", r, nameWidth, names[r], rows[r], util[r]*100)
	}
}

// WriteLinkUtilization renders the per-link fabric accounting of a timed
// run (runtime.FabricStatsOf) as one utilization bar per link: occupancy
// over the run, queue delay the link imposed, and payload carried. Links
// that never carried traffic are skipped so fat-tree reports stay
// readable; pass makespan = TimedWorld.PredictedSeconds().
func WriteLinkUtilization(w io.Writer, links []rt.LinkStats, makespan float64, width int) {
	if width <= 0 {
		width = 40
	}
	var shown []rt.LinkStats
	nameWidth := 8
	for _, l := range links {
		if l.Bytes == 0 && l.BusySeconds == 0 {
			continue
		}
		shown = append(shown, l)
		if len(l.Link) > nameWidth {
			nameWidth = len(l.Link)
		}
	}
	fmt.Fprintf(w, "per-link fabric utilization over %.6fs\n", makespan)
	for _, l := range shown {
		frac := 0.0
		if makespan > 0 {
			frac = l.BusySeconds / makespan
		}
		fill := int(frac*float64(width) + 0.5)
		if fill > width {
			fill = width
		}
		bar := strings.Repeat("#", fill) + strings.Repeat(".", width-fill)
		fmt.Fprintf(w, "%-*s |%s| %5.1f%%  %8.2f MB  queue %.3gs\n",
			nameWidth, l.Link, bar, frac*100, float64(l.Bytes)/1e6, l.QueueDelaySeconds)
	}
	if len(shown) == 0 {
		fmt.Fprintln(w, "(no fabric traffic)")
	}
}

func markerFor(k gpusim.OpKind) byte {
	switch k {
	case gpusim.OpCompute:
		return 'C'
	case gpusim.OpComm:
		return 'G'
	case gpusim.OpAccum:
		return 'A'
	default:
		return 'o'
	}
}
