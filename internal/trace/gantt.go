package trace

import (
	"fmt"
	"io"
	"strings"

	"slicing/internal/gpusim"
)

// WriteGantt renders a discrete-event schedule as an ASCII timeline: one
// row per resource, time flowing right, each op drawn as a run of its kind
// marker (C = compute, G = get, A = accumulate, o = other). It makes the
// overlap structure of §4.2/§4.3 schedules visible: a healthy
// direct-execution schedule shows the compute rows densely packed while
// the comm rows work in the background. A per-resource utilization figure
// is printed at the end of each row.
func WriteGantt(w io.Writer, eng *gpusim.Engine, res gpusim.Result, width int) {
	if width <= 0 {
		width = 80
	}
	if res.Makespan <= 0 {
		fmt.Fprintln(w, "(empty schedule)")
		return
	}
	rows := make([][]byte, eng.NumResources())
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	for _, tm := range res.Timings {
		if tm.End <= tm.Start {
			continue
		}
		from := int(tm.Start / res.Makespan * float64(width))
		to := int(tm.End / res.Makespan * float64(width))
		if to <= from {
			to = from + 1
		}
		if to > width {
			to = width
		}
		mark := markerFor(tm.Kind)
		for _, r := range tm.Resources {
			row := rows[r]
			for c := from; c < to; c++ {
				row[c] = mark
			}
		}
	}
	fmt.Fprintf(w, "makespan %.6fs  (C=compute G=get A=accum)\n", res.Makespan)
	for r := 0; r < eng.NumResources(); r++ {
		fmt.Fprintf(w, "%2d %-8s |%s| %5.1f%%\n",
			r, eng.ResourceName(gpusim.ResourceID(r)), rows[r],
			res.Utilization(gpusim.ResourceID(r))*100)
	}
}

func markerFor(k gpusim.OpKind) byte {
	switch k {
	case gpusim.OpCompute:
		return 'C'
	case gpusim.OpComm:
		return 'G'
	case gpusim.OpAccum:
		return 'A'
	default:
		return 'o'
	}
}
