package trace

import (
	"strings"
	"testing"

	"slicing/internal/sweep"
)

func TestWriteSweepTable(t *testing.T) {
	art := &sweep.Artifact{
		Schema: sweep.ArtifactSchema,
		Name:   "test",
		Layer:  "MLP-1",
		Batch:  1024,
		M:      1024, N: 49152, K: 12288,
		PlanBuilds: 2,
		Points: []sweep.Point{
			{
				Nodes: 2, PEs: 16, Rails: 4, Oversub: 1, DegradeFactor: 1,
				Partitioning: "Block", ReplAB: 1, ReplC: 1, Stationary: "C",
				CostSeconds: 1e-3, MakespanSeconds: 2e-3, PercentOfPeak: 42.5,
				AvgComputeUtil: 0.5, Ops: 64, RemoteGetBytes: 1 << 20,
			},
			{
				Nodes: 2, PEs: 16, Rails: 4, Oversub: 1,
				DegradedRail: sweep.DegradedRailName, DegradeFactor: 0.5,
				Partitioning: "Outer Prod.", ReplAB: 2, ReplC: 1, Stationary: "C",
				CostSeconds: 1e-3, MakespanSeconds: 3e-3, PercentOfPeak: 28.3,
				AvgComputeUtil: 0.4, Ops: 64, RemoteGetBytes: 1 << 20,
			},
		},
	}
	var sb strings.Builder
	WriteSweepTable(&sb, art)
	out := sb.String()
	for _, want := range []string{"MLP-1", "Block", "Outer Prod.", "0.50x", "42.5%", "2 plan builds"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 5 {
		t.Errorf("table has %d lines, want 5 (header x3 + 2 points):\n%s", lines, out)
	}
}
