package trace

import (
	"fmt"
	"io"
	"strings"

	"slicing/internal/sweep"
)

// WriteSweepTable renders a cluster-sweep artifact as an aligned text
// table: one row per grid point in sweep order, with the cluster shape,
// the autotuned layout, and the model-predicted makespan and
// percent-of-peak — the human-readable view of SWEEP_*.json.
func WriteSweepTable(w io.Writer, art *sweep.Artifact) {
	fmt.Fprintf(w, "%s: %s batch %d (%dx%dx%d), %d points, %d plan builds\n",
		art.Name, art.Layer, art.Batch, art.M, art.N, art.K, len(art.Points), art.PlanBuilds)
	fmt.Fprintf(w, "%6s %6s %6s %8s %8s  %-14s %-7s %-6s %12s %7s\n",
		"nodes", "pes", "rails", "oversub", "degrade", "partitioning", "repl", "stat", "makespan", "%peak")
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 90))
	for _, pt := range art.Points {
		degrade := "-"
		if pt.DegradedRail != "" {
			degrade = fmt.Sprintf("%.2fx", pt.DegradeFactor)
		}
		repl := fmt.Sprintf("%dx%d", pt.ReplAB, pt.ReplC)
		fmt.Fprintf(w, "%6d %6d %6d %8.2g %8s  %-14s %-7s %-6s %10.3fms %6.1f%%\n",
			pt.Nodes, pt.PEs, pt.Rails, pt.Oversub, degrade,
			pt.Partitioning, repl, pt.Stationary,
			pt.MakespanSeconds*1e3, pt.PercentOfPeak)
	}
}
