package trace

import (
	"strings"
	"testing"

	"slicing/internal/bench"
	"slicing/internal/gpusim"
	"slicing/internal/runtime"
	"slicing/internal/universal"
)

func sampleFigure() bench.Figure {
	return bench.Figure{
		Title: "test figure",
		Series: []bench.Series{
			{Name: "UA - Column", Points: []bench.Point{
				{Batch: 1024, PercentOfPeak: 80, ReplAB: 1, ReplC: 1, Stationary: universal.StationaryC},
				{Batch: 8192, PercentOfPeak: 95, ReplAB: 1, ReplC: 1, Stationary: universal.StationaryC},
			}},
			{Name: "DT - Row", Points: []bench.Point{
				{Batch: 1024, PercentOfPeak: 40, ReplAB: 1, ReplC: 1},
				{Batch: 8192, PercentOfPeak: 50, ReplAB: 1, ReplC: 1},
			}},
		},
	}
}

func TestWriteFigureTable(t *testing.T) {
	var sb strings.Builder
	WriteFigureTable(&sb, sampleFigure())
	out := sb.String()
	for _, want := range []string{"test figure", "UA - Column", "DT - Row", "1024", "8192", "95.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestWriteFigureChart(t *testing.T) {
	var sb strings.Builder
	WriteFigureChart(&sb, sampleFigure(), 10)
	out := sb.String()
	if !strings.Contains(out, "A = UA - Column") || !strings.Contains(out, "B = DT - Row") {
		t.Errorf("chart legend missing:\n%s", out)
	}
	if !strings.Contains(out, "100%") || !strings.Contains(out, "0%") {
		t.Errorf("chart axis missing:\n%s", out)
	}
	// The higher series' marker must appear above the lower one.
	aLine, bLine := -1, -1
	for i, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "A") && aLine < 0 && strings.Contains(line, "|") {
			aLine = i
		}
		if strings.Contains(line, "B") && bLine < 0 && strings.Contains(line, "|") {
			bLine = i
		}
	}
	if aLine < 0 || bLine < 0 || aLine >= bLine {
		t.Errorf("marker ordering wrong (A at %d, B at %d):\n%s", aLine, bLine, out)
	}
}

func TestSummarize(t *testing.T) {
	sum := Summarize(sampleFigure())
	if sum.BestUA != "UA - Column" || sum.BestOther != "DT - Row" {
		t.Fatalf("summary picked %q vs %q", sum.BestUA, sum.BestOther)
	}
	if !sum.UAWinsOrTies {
		t.Fatal("UA at 95% should beat DT at 50%")
	}
}

func TestChartDefaultHeight(t *testing.T) {
	var sb strings.Builder
	WriteFigureChart(&sb, sampleFigure(), 0) // default height must not panic
	if sb.Len() == 0 {
		t.Fatal("no chart output")
	}
}

func TestWriteGantt(t *testing.T) {
	eng := gpusim.NewEngine()
	comp := eng.AddResource("compute")
	net := eng.AddResource("net")
	g := eng.AddOp("get", gpusim.OpComm, 1.0, nil, []gpusim.ResourceID{net})
	eng.AddOp("gemm", gpusim.OpCompute, 2.0, []gpusim.OpID{g}, []gpusim.ResourceID{comp})
	res := eng.Run()
	var sb strings.Builder
	WriteGantt(&sb, eng, res, 30)
	out := sb.String()
	if !strings.Contains(out, "compute") || !strings.Contains(out, "net") {
		t.Fatalf("gantt missing resource rows:\n%s", out)
	}
	if !strings.Contains(out, "C") || !strings.Contains(out, "G") {
		t.Fatalf("gantt missing op markers:\n%s", out)
	}
	// The get occupies the first third, the gemm the rest: the compute row
	// must start idle.
	lines := strings.Split(out, "\n")
	var computeRow string
	for _, l := range lines {
		if strings.Contains(l, "compute") {
			computeRow = l
		}
	}
	bar := computeRow[strings.Index(computeRow, "|")+1:]
	if bar[0] == 'C' {
		t.Fatalf("compute should be idle while the get runs:\n%s", out)
	}
}

func TestWriteGanttEmpty(t *testing.T) {
	eng := gpusim.NewEngine()
	var sb strings.Builder
	WriteGantt(&sb, eng, eng.Run(), 20)
	if !strings.Contains(sb.String(), "empty") {
		t.Fatal("empty schedule not reported")
	}
}

func TestWriteTimelineGantt(t *testing.T) {
	tl := gpusim.NewTimeline()
	comp := tl.NewStream("pe0.compute")
	link := tl.AddResource("n0.nic0.ib>")
	tl.Submit(gpusim.StreamOp{Label: "get", Kind: gpusim.OpComm, Duration: 1.0,
		Resources: []gpusim.ResourceID{link}})
	comp.Enqueue(gpusim.StreamOp{Label: "gemm", Kind: gpusim.OpCompute, NotBefore: 1.0, Duration: 2.0})
	var sb strings.Builder
	WriteTimelineGantt(&sb, tl, 30)
	out := sb.String()
	if !strings.Contains(out, "pe0.compute") || !strings.Contains(out, "n0.nic0.ib>") {
		t.Fatalf("timeline gantt missing resource rows:\n%s", out)
	}
	if !strings.Contains(out, "C") || !strings.Contains(out, "G") {
		t.Fatalf("timeline gantt missing op markers:\n%s", out)
	}
	// The link worked 1s of a 3s makespan, the compute stream 2s.
	if !strings.Contains(out, "33.3%") || !strings.Contains(out, "66.7%") {
		t.Fatalf("timeline gantt missing utilization figures:\n%s", out)
	}

	sb.Reset()
	WriteTimelineGantt(&sb, gpusim.NewTimeline(), 20)
	if !strings.Contains(sb.String(), "empty") {
		t.Fatal("empty timeline not reported")
	}
}

func TestWriteLinkUtilization(t *testing.T) {
	links := []runtime.LinkStats{
		{Link: "n0.nic0.ib<", BusySeconds: 0.5, QueueDelaySeconds: 0.25, Bytes: 32e6},
		{Link: "rail0.spine1>", BusySeconds: 0, Bytes: 0}, // idle: skipped
	}
	var sb strings.Builder
	WriteLinkUtilization(&sb, links, 1.0, 20)
	out := sb.String()
	if !strings.Contains(out, "n0.nic0.ib<") || !strings.Contains(out, "50.0%") ||
		!strings.Contains(out, "32.00 MB") {
		t.Fatalf("link utilization missing the busy link:\n%s", out)
	}
	if strings.Contains(out, "rail0.spine1>") {
		t.Fatalf("idle link should be skipped:\n%s", out)
	}

	sb.Reset()
	WriteLinkUtilization(&sb, nil, 0, 20)
	if !strings.Contains(sb.String(), "no fabric traffic") {
		t.Fatal("empty link set not reported")
	}
}
