package trace

import (
	"strings"
	"testing"

	"slicing/internal/sweep"
)

// plotPoint builds a minimal valid classic point; callers layer the
// availability fields on top.
func plotPoint(nodes int, peak float64) sweep.Point {
	return sweep.Point{
		Nodes: nodes, PEs: 8 * nodes, Rails: 4, Oversub: 1, DegradeFactor: 1,
		Partitioning: "Block", ReplAB: 1, ReplC: 1, Stationary: "C",
		CostSeconds: 1e-3, MakespanSeconds: 2e-3, PercentOfPeak: peak,
		AvgComputeUtil: 0.5, Ops: 64, RemoteGetBytes: 1 << 20,
	}
}

func plotArtifact(points ...sweep.Point) *sweep.Artifact {
	return &sweep.Artifact{
		Schema: sweep.ArtifactSchema,
		Name:   "test-plot",
		Layer:  "MLP-1",
		Batch:  1024,
		M:      1024, N: 49152, K: 12288,
		Points: points,
	}
}

func TestWriteSweepPlotClassic(t *testing.T) {
	art := plotArtifact(plotPoint(2, 42.5), plotPoint(4, 38.1), plotPoint(8, 31.7))
	var sb strings.Builder
	WriteSweepPlot(&sb, art)
	out := sb.String()
	for _, want := range []string{"percent of peak vs cluster size", "% peak", "PEs", "4r ov1 dg1"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "o") < 3 {
		t.Errorf("plot rasterized fewer than 3 points:\n%s", out)
	}
}

func TestWriteSweepPlotAvailability(t *testing.T) {
	base := plotPoint(2, 42.5)
	base.AvailabilityPct, base.DegradationX = 100, 1
	one := plotPoint(2, 42.5)
	one.CrashedRanks, one.AvailabilityPct, one.DegradationX = 1, 61.2, 1.63
	four := plotPoint(2, 42.5)
	four.CrashedRanks, four.AvailabilityPct, four.DegradationX = 4, 34.9, 2.87
	art := plotArtifact(base, one, four)
	var sb strings.Builder
	WriteSweepPlot(&sb, art)
	out := sb.String()
	for _, want := range []string{"availability vs crashed ranks", "avail %", "2n x 4r ov1 dg1", "100", "34.9"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
}

// Equal artifacts must render identical bytes — the plot feeds CI logs
// and must not wobble across runs.
func TestWriteSweepPlotDeterministic(t *testing.T) {
	art := plotArtifact(plotPoint(2, 42.5), plotPoint(4, 38.1))
	var a, b strings.Builder
	WriteSweepPlot(&a, art)
	WriteSweepPlot(&b, art)
	if a.String() != b.String() {
		t.Fatal("same artifact rendered different plots")
	}
}

func TestWriteSweepPlotEmptySeries(t *testing.T) {
	art := plotArtifact(plotPoint(2, 42.5))
	art.Points = nil
	var sb strings.Builder
	WriteSweepPlot(&sb, art)
	if !strings.Contains(sb.String(), "no points to plot") {
		t.Errorf("empty artifact did not degrade gracefully:\n%s", sb.String())
	}
}
