package fabric_test

import (
	"math"
	"strings"
	"testing"

	"slicing/internal/fabric"
	"slicing/internal/simnet"
)

func approx(got, want float64) bool {
	return math.Abs(got-want) <= 1e-15+1e-12*math.Abs(want)
}

// chain builds pe0 → sw0 → sw1 → pe1 with distinct per-link bandwidth and
// latency, the minimal multi-hop fabric.
func chain(t *testing.T) *fabric.Fabric {
	t.Helper()
	f := fabric.New("chain", 1e12)
	a := f.AddPE("a", 0)
	b := f.AddPE("b", 0)
	s0 := f.AddSwitch("s0")
	s1 := f.AddSwitch("s1")
	f.Connect(a, s0, 100e9, 1e-6, "a.up")
	f.Connect(s0, s1, 50e9, 2e-6, "s0.s1")
	f.Connect(s1, b, 200e9, 3e-6, "s1.down")
	f.Connect(b, s1, 200e9, 3e-6, "b.up")
	f.Connect(s1, s0, 50e9, 2e-6, "s1.s0")
	f.Connect(s0, a, 100e9, 1e-6, "a.down")
	return f.Freeze()
}

// TestBottleneckPathPricing pins the adapter's scalar view of a multi-hop
// route: bandwidth is the bottleneck link's, latency the sum of hops, and
// locals run at the device-local rate.
func TestBottleneckPathPricing(t *testing.T) {
	topo := chain(t).Topology()
	if got := topo.Bandwidth(0, 1); got != 50e9 {
		t.Fatalf("bottleneck bandwidth = %g, want 50e9", got)
	}
	if got := topo.Latency(0, 1); !approx(got, 6e-6) {
		t.Fatalf("path latency = %g, want 6e-6", got)
	}
	if got := topo.Bandwidth(1, 1); got != 1e12 {
		t.Fatalf("local bandwidth = %g, want 1e12", got)
	}
	if got := topo.Latency(0, 0); got != 0 {
		t.Fatalf("local latency = %g, want 0", got)
	}
	if got := simnet.TransferTime(topo, 0, 1, 50e9); !approx(got, 1+6e-6) {
		t.Fatalf("transfer time = %g, want ~1s", got)
	}
}

// TestQueuesFIFOAndBottleneckOccupancy pins the per-link FIFO semantics:
// transfers sharing any link serialize in reservation order, the wait is
// attributed to the binding link, and disjoint routes do not interact.
func TestQueuesFIFOAndBottleneckOccupancy(t *testing.T) {
	f := chain(t)
	q := fabric.NewQueues(f.NumLinks())
	fwd := f.Route(0, 1)
	rev := f.Route(1, 0)

	s, e := q.Reserve(fwd, 0, 1e-3, 4000)
	if s != 0 || !approx(e, 1e-3) {
		t.Fatalf("first reservation [%g,%g], want [0,1e-3]", s, e)
	}
	// Same route again: queues behind the first on every link.
	s, e = q.Reserve(fwd, 0, 1e-3, 4000)
	if !approx(s, 1e-3) || !approx(e, 2e-3) {
		t.Fatalf("second reservation [%g,%g], want [1e-3,2e-3]", s, e)
	}
	// The reverse direction uses distinct links: no interaction.
	if s, _ = q.Reserve(rev, 0, 1e-3, 4000); s != 0 {
		t.Fatalf("reverse route queued at %g; directions must be independent", s)
	}
	total := 0.0
	for li := 0; li < f.NumLinks(); li++ {
		total += q.QueueDelayFor(li)
		if q.BusyFor(li) < 0 {
			t.Fatalf("negative busy on link %d", li)
		}
	}
	if !approx(total, 1e-3) {
		t.Fatalf("total queue delay %g, want 1e-3 (one queued transfer)", total)
	}
	for _, li := range fwd {
		if q.BytesFor(li) != 8000 {
			t.Fatalf("link %d carried %d bytes, want 8000", li, q.BytesFor(li))
		}
		if !approx(q.BusyFor(li), 2e-3) {
			t.Fatalf("link %d busy %g, want 2e-3", li, q.BusyFor(li))
		}
	}

	q.Reset()
	for li := 0; li < f.NumLinks(); li++ {
		if q.BusyFor(li) != 0 || q.QueueDelayFor(li) != 0 || q.BytesFor(li) != 0 {
			t.Fatalf("Reset left state on link %d", li)
		}
	}
}

// TestRoutesNeverTransitPEs checks the hardware constraint that GPUs do
// not forward fabric traffic: on every preset, every route's intermediate
// nodes are switches or NICs.
func TestRoutesNeverTransitPEs(t *testing.T) {
	for _, f := range []*fabric.Fabric{
		fabric.H100Node(), fabric.PVCNode(), fabric.H100FatTree(3, 8, 4),
		fabric.Degenerate(simnet.PresetPVC()),
	} {
		p := f.NumPE()
		for src := 0; src < p; src++ {
			for dst := 0; dst < p; dst++ {
				route := f.Route(src, dst)
				for i, li := range route[:max(0, len(route)-1)] {
					to := f.LinkAt(li).To
					if f.NodeAt(to).Kind == fabric.KindPE {
						t.Fatalf("%s: route %d→%d transits PE node %q at hop %d",
							f.Name(), src, dst, f.NodeAt(to).Name, i)
					}
				}
			}
		}
	}
}

// TestPVCRoutesPreferPackageBridge pins the PVC preset's routing: tiles
// of one package talk over the 230 GB/s MDFI bridge, tiles of different
// packages over their 26.5 GB/s Xe Link ports — and the two are distinct
// links, so a tile's bridge and Xe traffic no longer share one port the
// way the scalar model forces.
func TestPVCRoutesPreferPackageBridge(t *testing.T) {
	topo := fabric.PVCNode().Topology()
	if got := topo.Bandwidth(0, 1); got != 230e9 {
		t.Fatalf("intra-package bandwidth %g, want 230e9", got)
	}
	if got := topo.Latency(0, 1); !approx(got, 2e-6) {
		t.Fatalf("intra-package latency %g, want 2e-6", got)
	}
	if got := topo.Bandwidth(0, 2); got != 26.5e9 {
		t.Fatalf("inter-package bandwidth %g, want 26.5e9", got)
	}
	if got := topo.Latency(0, 2); !approx(got, 5e-6) {
		t.Fatalf("inter-package latency %g, want 5e-6", got)
	}
	scalar := simnet.PresetPVC()
	for src := 0; src < 12; src++ {
		for dst := 0; dst < 12; dst++ {
			if topo.Bandwidth(src, dst) != scalar.Bandwidth(src, dst) {
				t.Fatalf("pair (%d,%d): fabric bw %g != scalar %g",
					src, dst, topo.Bandwidth(src, dst), scalar.Bandwidth(src, dst))
			}
		}
	}
}

// TestDegenerateMatchesScalarExactly pins the degenerate construction to
// the scalar model bit-for-bit: same bandwidth, same latency, every route
// exactly [egress, pair, ingress].
func TestDegenerateMatchesScalarExactly(t *testing.T) {
	for _, topo := range []simnet.Topology{
		simnet.PresetPVC(), simnet.PresetH100(), simnet.PresetH100Cluster(2),
	} {
		ft := fabric.Degenerate(topo).Topology()
		p := topo.NumPE()
		for src := 0; src < p; src++ {
			for dst := 0; dst < p; dst++ {
				if ft.Bandwidth(src, dst) != topo.Bandwidth(src, dst) {
					t.Fatalf("%s (%d,%d): bandwidth %g != %g", topo.Name(), src, dst,
						ft.Bandwidth(src, dst), topo.Bandwidth(src, dst))
				}
				if ft.Latency(src, dst) != topo.Latency(src, dst) {
					t.Fatalf("%s (%d,%d): latency %g != %g", topo.Name(), src, dst,
						ft.Latency(src, dst), topo.Latency(src, dst))
				}
				if src != dst {
					if got := len(ft.RouteIDs(src, dst)); got != 3 {
						t.Fatalf("%s (%d,%d): degenerate route has %d links, want 3",
							topo.Name(), src, dst, got)
					}
				}
			}
		}
		if nm, ok := topo.(simnet.NodeMapper); ok {
			for pe := 0; pe < p; pe++ {
				if ft.NodeOf(pe) != nm.NodeOf(pe) {
					t.Fatalf("%s: degenerate NodeOf(%d) = %d, want %d",
						topo.Name(), pe, ft.NodeOf(pe), nm.NodeOf(pe))
				}
			}
		}
	}
}

// spineOf returns which spine plane a cross-rail fat-tree route uses, or
// "" when it stays on one rail.
func spineOf(f *fabric.Fabric, route []int) string {
	for _, li := range route {
		name := f.LinkAt(li).Name
		if i := strings.Index(name, "spine"); i >= 0 {
			return name[i : i+6]
		}
	}
	return ""
}

// TestECMPPathsStableAndSpread pins static ECMP: rebuilding the same
// fat-tree yields identical routes for every pair (a flow never migrates
// between planes), while across pairs both spine planes carry traffic.
func TestECMPPathsStableAndSpread(t *testing.T) {
	f1 := fabric.H100FatTree(3, 8, 4)
	f2 := fabric.H100FatTree(3, 8, 4)
	p := f1.NumPE()
	used := map[string]bool{}
	for src := 0; src < p; src++ {
		for dst := 0; dst < p; dst++ {
			r1, r2 := f1.Route(src, dst), f2.Route(src, dst)
			if len(r1) != len(r2) {
				t.Fatalf("route %d→%d differs across identical builds", src, dst)
			}
			for i := range r1 {
				if f1.LinkAt(r1[i]).Name != f2.LinkAt(r2[i]).Name {
					t.Fatalf("route %d→%d hop %d differs across identical builds", src, dst, i)
				}
			}
			if s := spineOf(f1, r1); s != "" {
				used[s] = true
			}
		}
	}
	if !used["spine0"] || !used["spine1"] {
		t.Fatalf("ECMP left a spine plane idle: used %v", used)
	}
}

// TestFatTreeRouteShape pins the rail-optimized routing: intra-node over
// NVLink only, same-rail inter-node over exactly one rail switch and no
// spine, cross-rail over a spine plane.
func TestFatTreeRouteShape(t *testing.T) {
	f := fabric.H100FatTree(3, 8, 4)
	topo := f.Topology()
	// Intra-node: 450 GB/s, 3 µs, no NIC links.
	if bw, lat := topo.Bandwidth(0, 1), topo.Latency(0, 1); bw != 450e9 || !approx(lat, 3e-6) {
		t.Fatalf("intra-node bw %g lat %g, want 450e9 / 3e-6", bw, lat)
	}
	// Same rail (GPU 0 of node 0 → GPU 0 of node 1): NIC-bound at 50 GB/s,
	// 10 µs, no spine hop.
	sameRail := f.Route(0, 8)
	if bw, lat := topo.Bandwidth(0, 8), topo.Latency(0, 8); bw != 50e9 || !approx(lat, 10e-6) {
		t.Fatalf("same-rail bw %g lat %g, want 50e9 / 10e-6", bw, lat)
	}
	if s := spineOf(f, sameRail); s != "" {
		t.Fatalf("same-rail route crosses %s", s)
	}
	// Cross rail (GPU 0 of node 0 → GPU 3 of node 1): via a spine plane.
	if s := spineOf(f, f.Route(0, 11)); s == "" {
		t.Fatal("cross-rail route avoided the spine")
	}
	if got := topo.NodeOf(11); got != 1 {
		t.Fatalf("NodeOf(11) = %d, want 1", got)
	}
	// Oversubscription: with enough nodes the uplink undercuts the NIC and
	// becomes the cross-rail bottleneck (9 nodes / 4:1 → 112.5 GB/s still
	// above NIC; 9 nodes / 16:1 → 28.125 GB/s below it).
	tight := fabric.H100FatTree(9, 8, 16).Topology()
	if got := tight.Bandwidth(0, 11); !approx(got, 9*50e9/16) {
		t.Fatalf("oversubscribed cross-rail bandwidth %g, want %g", got, 9*50e9/16)
	}
	// Single-NIC (DGX-style) nodes: GPUs sharing the NIC must still talk
	// NVLink intra-node — the PCIe detour through the NIC is never the
	// route — while all inter-node traffic funnels through the one NIC.
	dgx := fabric.H100FatTree(2, 1, 1)
	dtopo := dgx.Topology()
	if bw, lat := dtopo.Bandwidth(0, 1), dtopo.Latency(0, 1); bw != 450e9 || !approx(lat, 3e-6) {
		t.Fatalf("single-NIC intra-node bw %g lat %g, want 450e9 / 3e-6 (NVLink, not PCIe)", bw, lat)
	}
	if bw, lat := dtopo.Bandwidth(0, 8), dtopo.Latency(0, 8); bw != 50e9 || !approx(lat, 10e-6) {
		t.Fatalf("single-NIC inter-node bw %g lat %g, want 50e9 / 10e-6", bw, lat)
	}
}

// TestDegradeReducesPathBandwidth models a downtrained rail: degrading a
// route's bottleneck link shows up in the adapter's scalar pricing while
// the route itself is unchanged (routing is latency-static).
func TestDegradeReducesPathBandwidth(t *testing.T) {
	f := fabric.H100FatTree(3, 8, 4)
	topo := f.Topology()
	before := topo.Bandwidth(0, 8)
	routeBefore := append([]int(nil), f.Route(0, 8)...)
	f.Degrade(f.LinkID("n0.nic0.ib>"), 0.25)
	if got := topo.Bandwidth(0, 8); !approx(got, before/4) {
		t.Fatalf("degraded bandwidth %g, want %g", got, before/4)
	}
	for i, li := range f.Route(0, 8) {
		if li != routeBefore[i] {
			t.Fatal("degradation changed the static route")
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestQueuesTiedBlockerAttributionDeterministic (PR 5): when several route
// links tie as the binding constraint, the queue delay must be attributed
// to the lowest link index — a fixed rule independent of route traversal
// order, so per-link delay stats are reproducible across equivalent routes.
func TestQueuesTiedBlockerAttributionDeterministic(t *testing.T) {
	const dur = 1e-3
	run := func(route []int) *fabric.Queues {
		q := fabric.NewQueues(4)
		// Occupy links 1 and 3 until the same instant, so both tie as the
		// binding constraint of the next reservation.
		q.Reserve([]int{1}, 0, dur, 0)
		q.Reserve([]int{3}, 0, dur, 0)
		q.Reserve(route, 0, dur, 0)
		return q
	}
	for _, route := range [][]int{{1, 3}, {3, 1}, {3, 0, 1}} {
		q := run(route)
		if got := q.QueueDelayFor(1); !approx(got, dur) {
			t.Fatalf("route %v: delay on link 1 = %g, want %g (lowest tied index)", route, got, dur)
		}
		if got := q.QueueDelayFor(3); got != 0 {
			t.Fatalf("route %v: delay leaked to link 3 (%g); the lowest tied index must win", route, got)
		}
	}
	// A strictly later link must still win over a lower tied-but-earlier one.
	q := fabric.NewQueues(4)
	q.Reserve([]int{1}, 0, dur, 0)
	q.Reserve([]int{3}, 0, 2*dur, 0)
	q.Reserve([]int{1, 3}, 0, dur, 0)
	if got := q.QueueDelayFor(3); !approx(got, 2*dur) {
		t.Fatalf("delay on link 3 = %g, want %g (unique binding constraint)", got, 2*dur)
	}
	if got := q.QueueDelayFor(1); got != 0 {
		t.Fatalf("delay on link 1 = %g, want 0", got)
	}
}
