package fabric

import "slicing/internal/simnet"

// Topology adapts a frozen Fabric to the simnet topology contract, which
// is how every existing consumer prices through the fabric without
// knowing it exists:
//
//   - simnet.Topology: Bandwidth(src,dst) is the route's bottleneck-link
//     bandwidth and Latency(src,dst) its total latency, so costmodel, the
//     plan-replay estimators, autotune, and bench see exactly the numbers
//     the link model charges for an uncontended transfer.
//   - simnet.Routed: timed backends (simbackend, gpubackend) read the
//     per-pair link routes and reserve individual links instead of the
//     legacy per-PE ports, which is where per-link contention comes from.
//   - simnet.NodeMapper: multi-machine fabrics expose the PE→machine
//     mapping, switching AccumulateAdd to the §3 get+put path across node
//     boundaries.
type Topology struct {
	f *Fabric
}

var (
	_ simnet.Topology   = (*Topology)(nil)
	_ simnet.Routed     = (*Topology)(nil)
	_ simnet.NodeMapper = (*Topology)(nil)
)

// Topology returns the simnet adapter for a frozen fabric.
func (f *Fabric) Topology() *Topology {
	f.mustBeFrozen()
	return &Topology{f: f}
}

// Fabric returns the underlying link graph.
func (t *Topology) Fabric() *Fabric { return t.f }

// NumPE returns the number of processing elements.
func (t *Topology) NumPE() int { return t.f.NumPE() }

// Bandwidth returns the bottleneck-link bandwidth of the src→dst route,
// or the device-local copy bandwidth for src == dst.
func (t *Topology) Bandwidth(src, dst int) float64 {
	if src == dst {
		t.f.Route(src, dst) // bounds check
		return t.f.localBW
	}
	return t.f.PathBandwidth(t.f.Route(src, dst))
}

// Latency returns the total latency of the src→dst route (0 for local
// copies).
func (t *Topology) Latency(src, dst int) float64 {
	return t.f.RouteLatency(src, dst)
}

// Name returns the fabric's name.
func (t *Topology) Name() string { return t.f.Name() }

// NumLinks returns the number of directed links (simnet.Routed).
func (t *Topology) NumLinks() int { return t.f.NumLinks() }

// LinkName names one link (simnet.Routed).
func (t *Topology) LinkName(link int) string { return t.f.links[link].Name }

// RouteIDs returns the static src→dst route as link indices
// (simnet.Routed). Callers must not modify the returned slice.
func (t *Topology) RouteIDs(src, dst int) []int { return t.f.Route(src, dst) }

// NodeOf returns the machine hosting a PE (simnet.NodeMapper).
func (t *Topology) NodeOf(pe int) int { return t.f.MachineOf(pe) }
