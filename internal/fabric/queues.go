package fabric

// Queues is the mutable occupancy state of one fabric for one timed
// world: per-link FIFO availability plus busy/queue-delay/byte counters.
// The Fabric itself stays immutable and shareable; every world that
// models time over it owns a Queues.
//
// The queue discipline matches the repo's port and stream models
// (simbackend's ports, gpusim's Timeline): a transfer occupies every link
// of its route exclusively from its start to its end, its start is the
// earliest instant its initiator is ready and every link on the route is
// free, and the gap between ready and start is queue delay attributed to
// the last link to free up (the binding constraint). Reserving whole
// routes end-to-end (rather than per-hop store-and-forward) keeps the
// model consistent with the scalar backends so the degenerate fabric
// reproduces their numbers exactly; it also means a congested link
// serializes entire transfers rather than fair-sharing its bandwidth —
// the conservative FIFO reading of incast.
//
// Queues is not synchronized: callers serialize access (the timed
// backends already hold their world mutex while charging time).
type Queues struct {
	free  []float64 // per-link availability
	busy  []float64 // per-link occupied seconds
	wait  []float64 // per-link queue delay imposed on transfers
	bytes []int64   // per-link payload bytes carried
}

// NewQueues returns fresh (all-idle) occupancy state for numLinks links
// (a fabric's NumLinks, or any simnet.Routed topology's).
func NewQueues(numLinks int) *Queues {
	return &Queues{
		free:  make([]float64, numLinks),
		busy:  make([]float64, numLinks),
		wait:  make([]float64, numLinks),
		bytes: make([]int64, numLinks),
	}
}

// Reserve schedules a transfer of payload bytes over route: it starts at
// the earliest instant ≥ ready at which every link on the route is free,
// occupies all of them for dur seconds, and returns the start and end
// times. An empty route (device-local copy) starts at ready and touches
// no link state.
//
// The queue delay (start − ready) is attributed to the binding constraint:
// the route link whose availability set the start time. When several links
// tie as the binding constraint, the lowest link index wins — a fixed rule,
// so per-link delay attribution is independent of route traversal order.
func (q *Queues) Reserve(route []int, ready, dur float64, payload int64) (start, end float64) {
	start = ready
	blocker := -1
	for _, li := range route {
		switch {
		case q.free[li] > start:
			start = q.free[li]
			blocker = li
		case blocker >= 0 && q.free[li] == start && li < blocker:
			blocker = li
		}
	}
	if blocker >= 0 {
		q.wait[blocker] += start - ready
	}
	end = start + dur
	for _, li := range route {
		q.free[li] = end
		q.busy[li] += dur
		q.bytes[li] += payload
	}
	return start, end
}

// Reset rewinds every link to idle and zeroes the counters.
func (q *Queues) Reset() {
	for i := range q.free {
		q.free[i] = 0
		q.busy[i] = 0
		q.wait[i] = 0
		q.bytes[i] = 0
	}
}

// BusyFor returns the seconds one link was occupied.
func (q *Queues) BusyFor(link int) float64 { return q.busy[link] }

// QueueDelayFor returns the queue delay attributed to one link.
func (q *Queues) QueueDelayFor(link int) float64 { return q.wait[link] }

// BytesFor returns the payload bytes carried over one link.
func (q *Queues) BytesFor(link int) int64 { return q.bytes[link] }
