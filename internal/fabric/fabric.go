// Package fabric is the link-graph network model: a topology is nodes
// (PEs, switches, NICs) connected by directed links with individual
// bandwidth and latency, every src→dst transfer follows a statically
// routed path (latency-weighted shortest paths, equal-cost ties broken by
// a deterministic ECMP hash), and timed backends reserve the path's links
// as per-link FIFO queues — a transfer's start time is governed by the
// busiest link on its route, its duration by the bottleneck link's
// bandwidth.
//
// This refines package simnet's scalar model, whose single
// Bandwidth(src,dst) lookup plus per-PE port contention cannot express the
// regimes a production fabric congests in: incast into one node's NIC,
// oversubscribed leaf→spine uplinks, a degraded rail. Here those are just
// links shared by several routes. The scalar model survives as a
// degenerate fabric (Degenerate) with one pair link per ordered PE pair
// between per-PE port links, which reproduces the legacy numbers exactly
// and anchors the conformance suite.
//
// A Fabric is built once (AddPE/AddSwitch/AddNIC/Connect), frozen
// (Freeze computes all routes), and then shared read-only: the mutable
// queue occupancy lives in per-world Queues values. The simnet adapter is
// Topology(), which implements simnet.Topology (scalar consumers price
// the route's bottleneck bandwidth and total latency) and simnet.Routed
// (timed backends reserve the route's links).
package fabric

import (
	"fmt"
	"math"
	"sync/atomic"
)

// NodeKind classifies a fabric node.
type NodeKind uint8

const (
	// KindPE is a processing element: a route endpoint. Routes never
	// transit a PE — only switches and NICs forward traffic.
	KindPE NodeKind = iota
	// KindSwitch is a forwarding element with an ideal backplane:
	// contention exists only on its links.
	KindSwitch
	// KindNIC is a network interface: also a forwarding element, named
	// separately so traces read like the machine room.
	KindNIC
)

// Node is one vertex of the fabric graph.
type Node struct {
	Kind NodeKind
	Name string
	// PE is the rank for KindPE nodes, -1 otherwise.
	PE int
	// Machine is the machine index hosting a PE node (-1 for non-PE
	// nodes). PEs on different machines reach each other only through the
	// inter-node fabric, and timed backends switch AccumulateAdd to the
	// §3 get+put path across this boundary.
	Machine int
}

// Link is one directed edge: traffic From→To at BW bytes/s after Lat
// seconds of propagation/startup latency. BW may be math.Inf(1) for
// ideal port links (the degenerate fabric uses them).
type Link struct {
	From, To int
	BW       float64
	Lat      float64
	Name     string
}

// Fabric is the immutable-after-Freeze link graph plus its routing table.
// The one mutable-after-Freeze quantity is effective link bandwidth: it
// lives in the bw array as atomic float64 bits so Degrade/DegradeAt can
// downtrain a link while timed worlds are pricing transfers through
// PathBandwidth concurrently (links[i].BW keeps the as-built value).
type Fabric struct {
	name     string
	localBW  float64 // bytes/s for src == dst device-local copies
	nodes    []Node
	links    []Link
	peNodes  []int           // rank -> node id
	out      [][]int         // node id -> outgoing link indices
	routes   [][]int         // [src*P+dst] -> link indices; non-nil once frozen
	routeLat []float64       // [src*P+dst] -> summed route latency, frozen with routes
	bw       []atomic.Uint64 // effective per-link bandwidth, math.Float64bits
}

// New starts an empty fabric. localBW is the device-local copy bandwidth
// returned for src == dst (fabric links are never involved in local
// copies).
func New(name string, localBW float64) *Fabric {
	if localBW <= 0 {
		panic(fmt.Sprintf("fabric: invalid local bandwidth %g", localBW))
	}
	return &Fabric{name: name, localBW: localBW}
}

// Name returns the fabric's name.
func (f *Fabric) Name() string { return f.name }

// AddPE adds a processing element on the given machine and returns its
// node id. Ranks are assigned in call order: the i-th AddPE is rank i.
func (f *Fabric) AddPE(name string, machine int) int {
	f.mustBeOpen()
	rank := len(f.peNodes)
	f.nodes = append(f.nodes, Node{Kind: KindPE, Name: name, PE: rank, Machine: machine})
	id := len(f.nodes) - 1
	f.peNodes = append(f.peNodes, id)
	return id
}

// AddSwitch adds a forwarding switch node.
func (f *Fabric) AddSwitch(name string) int {
	f.mustBeOpen()
	f.nodes = append(f.nodes, Node{Kind: KindSwitch, Name: name, PE: -1, Machine: -1})
	return len(f.nodes) - 1
}

// AddNIC adds a network-interface node (a forwarding element like a
// switch; the distinct kind keeps traces readable).
func (f *Fabric) AddNIC(name string) int {
	f.mustBeOpen()
	f.nodes = append(f.nodes, Node{Kind: KindNIC, Name: name, PE: -1, Machine: -1})
	return len(f.nodes) - 1
}

// Connect adds one directed link and returns its index.
func (f *Fabric) Connect(from, to int, bw, lat float64, name string) int {
	f.mustBeOpen()
	if from < 0 || from >= len(f.nodes) || to < 0 || to >= len(f.nodes) || from == to {
		panic(fmt.Sprintf("fabric: bad link %s: %d -> %d", name, from, to))
	}
	if bw <= 0 || lat < 0 || math.IsNaN(bw) || math.IsNaN(lat) {
		panic(fmt.Sprintf("fabric: link %s has invalid bw %g / lat %g", name, bw, lat))
	}
	f.links = append(f.links, Link{From: from, To: to, BW: bw, Lat: lat, Name: name})
	return len(f.links) - 1
}

// BiConnect adds a symmetric pair of links a→b and b→a (full-duplex wire).
func (f *Fabric) BiConnect(a, b int, bw, lat float64, name string) (ab, ba int) {
	ab = f.Connect(a, b, bw, lat, name+">")
	ba = f.Connect(b, a, bw, lat, name+"<")
	return
}

// Freeze computes the static route of every ordered PE pair and seals the
// graph. It panics if any PE pair is unreachable. Returns f for chaining.
func (f *Fabric) Freeze() *Fabric {
	f.mustBeOpen()
	p := len(f.peNodes)
	if p == 0 {
		panic("fabric: no PEs")
	}
	f.out = make([][]int, len(f.nodes))
	for li, l := range f.links {
		f.out[l.From] = append(f.out[l.From], li)
	}
	f.routes = make([][]int, p*p)
	f.routeLat = make([]float64, p*p)
	scratch := newRouteScratch(len(f.nodes))
	for src := 0; src < p; src++ {
		f.routeFrom(src, scratch)
	}
	f.bw = make([]atomic.Uint64, len(f.links))
	for li := range f.links {
		f.bw[li].Store(math.Float64bits(f.links[li].BW))
	}
	return f
}

func (f *Fabric) frozen() bool { return f.routes != nil }

func (f *Fabric) mustBeOpen() {
	if f.frozen() {
		panic("fabric: frozen fabrics are immutable")
	}
}

func (f *Fabric) mustBeFrozen() {
	if !f.frozen() {
		panic("fabric: call Freeze before routing")
	}
}

// NumPE returns the number of processing elements.
func (f *Fabric) NumPE() int { return len(f.peNodes) }

// NumLinks returns the number of directed links.
func (f *Fabric) NumLinks() int { return len(f.links) }

// NumNodes returns the number of graph nodes.
func (f *Fabric) NumNodes() int { return len(f.nodes) }

// NodeAt returns one node's description.
func (f *Fabric) NodeAt(i int) Node { return f.nodes[i] }

// LinkAt returns one link's description.
func (f *Fabric) LinkAt(i int) Link { return f.links[i] }

// LinkID returns the index of the link with the given name; it panics if
// no link has it.
func (f *Fabric) LinkID(name string) int {
	for i, l := range f.links {
		if l.Name == name {
			return i
		}
	}
	panic(fmt.Sprintf("fabric: no link named %q", name))
}

// MachineOf returns the machine index hosting a PE.
func (f *Fabric) MachineOf(pe int) int { return f.nodes[f.peNodes[pe]].Machine }

// Route returns the static route from src to dst as link indices in
// traversal order (empty for src == dst). The slice is shared; callers
// must not modify it.
func (f *Fabric) Route(src, dst int) []int {
	f.mustBeFrozen()
	p := len(f.peNodes)
	if src < 0 || src >= p || dst < 0 || dst >= p {
		panic(fmt.Sprintf("fabric: pe pair (%d,%d) out of %d-PE fabric", src, dst, p))
	}
	return f.routes[src*p+dst]
}

// PathBandwidth returns the bottleneck bandwidth of a route in bytes/s.
// An empty route (local copy) runs at the device-local bandwidth. It
// reads the effective (possibly degraded) bandwidths through their
// atomic storage, so it is safe to call concurrently with DegradeAt.
func (f *Fabric) PathBandwidth(route []int) float64 {
	if len(route) == 0 {
		return f.localBW
	}
	bw := f.LinkBandwidth(route[0])
	for _, li := range route[1:] {
		if b := f.LinkBandwidth(li); b < bw {
			bw = b
		}
	}
	return bw
}

// LinkBandwidth returns one link's current effective bandwidth in
// bytes/s: the as-built Link.BW times every degradation applied since.
// Safe to call concurrently with DegradeAt; requires a frozen fabric.
func (f *Fabric) LinkBandwidth(link int) float64 {
	return math.Float64frombits(f.bw[link].Load())
}

// RouteLatency returns the total latency of the static src→dst route,
// precomputed at Freeze (equal to PathLatency(Route(src, dst)) without the
// per-query walk).
func (f *Fabric) RouteLatency(src, dst int) float64 {
	f.mustBeFrozen()
	p := len(f.peNodes)
	if src < 0 || src >= p || dst < 0 || dst >= p {
		panic(fmt.Sprintf("fabric: pe pair (%d,%d) out of %d-PE fabric", src, dst, p))
	}
	return f.routeLat[src*p+dst]
}

// PathLatency returns the total latency of a route in seconds.
func (f *Fabric) PathLatency(route []int) float64 {
	lat := 0.0
	for _, li := range route {
		lat += f.links[li].Lat
	}
	return lat
}

// Degrade multiplies one link's bandwidth by factor in (0, 1], modeling a
// partial failure (a flapping rail, a downtrained NIC). Routes are static
// — latency-based — so degradation changes pricing and queueing, not
// paths, exactly like a bandwidth-downtrained link in a real fat-tree.
//
// Concurrency contract: link bandwidth is the one knob that stays
// adjustable after Freeze. Effective bandwidths live in atomic storage
// (PathBandwidth/LinkBandwidth load them atomically), so on a frozen
// fabric Degrade is safe even while timed worlds built over it are
// running — it is DegradeAt. Before Freeze it simply rewrites the
// as-built Link.BW, which Freeze then snapshots.
func (f *Fabric) Degrade(link int, factor float64) {
	if !f.frozen() {
		checkDegradeFactor(factor)
		f.links[link].BW *= factor
		return
	}
	f.DegradeAt(link, factor)
}

// DegradeAt multiplies one link's effective bandwidth by factor in
// (0, 1] on a frozen fabric, safely while worlds built over the fabric
// are mid-run: the update is an atomic read-modify-write on the
// bandwidth bits that pricing reads through the same atomics, so a
// chaos rule (or an operator) can downtrain a rail in the middle of a
// timed execution without a data race. Transfers priced before the call
// keep their old duration — exactly the semantics of a link that
// downtrains between two DMAs. The as-built Link.BW is not modified.
func (f *Fabric) DegradeAt(link int, factor float64) {
	checkDegradeFactor(factor)
	f.mustBeFrozen()
	for {
		old := f.bw[link].Load()
		degraded := math.Float64bits(math.Float64frombits(old) * factor)
		if f.bw[link].CompareAndSwap(old, degraded) {
			return
		}
	}
}

func checkDegradeFactor(factor float64) {
	if factor <= 0 || factor > 1 || math.IsNaN(factor) {
		panic(fmt.Sprintf("fabric: invalid degradation factor %g", factor))
	}
}
