package fabric_test

// Backend-facing acceptance tests for the fabric subsystem: the
// degenerate fabric must reproduce the legacy scalar-simnet predicted
// runtimes within 1e-9, an incast storm must slow down under a fat-tree
// fabric where the scalar cluster model sees nothing, and AccumulateAdd
// must switch to the §3 get+put path exactly at a node boundary.

import (
	"math"
	"testing"

	"slicing/internal/bench"
	"slicing/internal/fabric"
	"slicing/internal/gpubackend"
	"slicing/internal/gpusim"
	rt "slicing/internal/runtime"
	"slicing/internal/simbackend"
	"slicing/internal/simnet"
)

// driveDeterministic issues a fixed one-sided workload whose modeled
// schedule does not depend on goroutine interleaving: rank 0 issues a
// mixed program-ordered sequence (sync, async, accumulate, round trip)
// while everyone else idles, then every rank performs one barriered
// neighbour-get round (disjoint port/link sets, so charge order is
// irrelevant). Returns the world's predicted seconds.
func driveDeterministic(w rt.TimedWorld) float64 {
	const n = 1 << 14
	seg := w.AllocSymmetric(4 * n)
	p := w.NumPE()
	w.Run(func(pe rt.PE) {
		buf := make([]float32, n)
		if pe.Rank() == 0 {
			pe.Get(buf, seg, 1%p, 0)
			pe.Put(buf, seg, 2%p, n)
			pe.AccumulateAdd(buf, seg, 1%p, 2*n)
			f1 := pe.GetAsync(buf, seg, 3%p, 0)
			f2 := pe.AccumulateAddAsync(buf, seg, 2%p, n)
			f1.Wait()
			f2.Wait()
			pe.AccumulateAddGetPut(buf, seg, 1%p, 0)
			pe.GetStrided(buf[:64*64], 64, seg, 2%p, 0, 64, 64, 64)
		}
		pe.Barrier()
		pe.Get(buf, seg, (pe.Rank()+1)%p, 0)
		pe.Barrier()
	})
	return w.PredictedSeconds()
}

// TestDegenerateFabricReproducesScalarBackends pins the acceptance bar:
// for both timed backends and several scalar topologies, running over
// fabric.Degenerate(topo) predicts the same wall-clock as running over
// topo itself, within 1e-9.
func TestDegenerateFabricReproducesScalarBackends(t *testing.T) {
	dev := gpusim.PresetH100Device()
	topos := []simnet.Topology{
		simnet.PresetH100(),
		simnet.PresetPVC(),
		simnet.PresetH100Cluster(2),
	}
	backends := []struct {
		name  string
		build func(topo simnet.Topology) rt.TimedWorld
	}{
		{"simbackend", func(topo simnet.Topology) rt.TimedWorld {
			return simbackend.New(topo, dev).NewWorld(topo.NumPE()).(rt.TimedWorld)
		}},
		{"gpubackend", func(topo simnet.Topology) rt.TimedWorld {
			return gpubackend.New(topo, dev).NewWorld(topo.NumPE()).(rt.TimedWorld)
		}},
	}
	for _, be := range backends {
		for _, topo := range topos {
			t.Run(be.name+"/"+topo.Name(), func(t *testing.T) {
				scalar := driveDeterministic(be.build(topo))
				routed := driveDeterministic(be.build(fabric.Degenerate(topo).Topology()))
				if scalar <= 0 {
					t.Fatal("scalar run predicted no time")
				}
				if diff := math.Abs(scalar - routed); diff > 1e-9*math.Max(1, scalar) {
					t.Fatalf("degenerate fabric diverges from scalar model: %.12g vs %.12g (diff %g)",
						scalar, routed, diff)
				}
			})
		}
	}
}

// TestIncastSlowsUnderFabricNotUnderScalar is the incast acceptance test:
// eight peers on eight different nodes push 4 MB each into distinct GPUs
// of node 0. Under the scalar cluster model every pair enjoys its private
// 50 GB/s share (distinct egress and ingress ports — full overlap); under
// a single-NIC fat-tree all eight transfers squeeze through node 0's one
// NIC downlink and serialize, so the predicted makespan must be at least
// 2× the scalar one (it is ~8× in practice).
func TestIncastSlowsUnderFabricNotUnderScalar(t *testing.T) {
	const nodes, perNode = 9, 8
	const n = 1 << 20 // 4 MB per transfer
	dev := gpusim.PresetH100Device()

	// GPU 0 of node i pushes into GPU i-1 of node 0, through the shared
	// storm driver the baseline anchor and the walkthrough also use.
	fromGPU0 := func(int) int { return 0 }
	scalar, scalarW := bench.IncastStorm(simnet.PresetH100Cluster(nodes), dev, perNode, n, fromGPU0)
	routed, fabricW := bench.IncastStorm(fabric.H100FatTree(nodes, 1, 1).Topology(), dev, perNode, n, fromGPU0)
	ratio := routed / scalar
	t.Logf("incast 8→node0: scalar %.3gs, single-NIC fabric %.3gs (%.1fx)", scalar, routed, ratio)
	if scalar <= 0 {
		t.Fatal("scalar incast predicted no time")
	}
	if ratio < 2 {
		t.Fatalf("single-NIC fabric shows only %.2fx incast slowdown, want >= 2x", ratio)
	}

	// The rail-optimized build with an oversubscribed spine: all senders
	// sit on rail 0, seven of the eight flows cross rails and share rail
	// 0's two spine uplinks, so the storm still slows ≥2× while the
	// scalar model keeps pricing it as fully parallel.
	over, _ := bench.IncastStorm(fabric.H100FatTree(nodes, 8, 4).Topology(), dev, perNode, n, fromGPU0)
	t.Logf("incast 8→node0: oversubscribed 8-rail fabric %.3gs (%.1fx)", over, over/scalar)
	if over/scalar < 2 {
		t.Fatalf("oversubscribed fat-tree shows only %.2fx incast slowdown, want >= 2x", over/scalar)
	}

	// The scalar world has no link model to report; the fabric world must
	// account every byte through node 0's NIC downlink.
	if _, ok := rt.FabricStatsOf(scalarW); ok {
		t.Fatal("scalar topology reported fabric link stats")
	}
	links, ok := rt.FabricStatsOf(fabricW)
	if !ok {
		t.Fatal("fabric world reported no link stats")
	}
	byName := map[string]rt.LinkStats{}
	for _, l := range links {
		byName[l.Link] = l
	}
	down := byName["n0.nic0.ib<"]
	if down.Bytes != 8*4*n {
		t.Fatalf("node 0 NIC downlink carried %d bytes, want %d", down.Bytes, 8*4*n)
	}
	if down.QueueDelaySeconds <= 0 {
		t.Fatal("serialized incast recorded no queue delay on the NIC downlink")
	}
}

// accumTraffic runs a single accumulate of n floats from src into dst on
// a fresh world over topo — contiguous or strided (n as a 2-row block) —
// and returns the world's traffic counters.
func accumTraffic(t *testing.T, b rt.Backend, p, src, dst, n int, strided bool) rt.Stats {
	t.Helper()
	w := b.NewWorld(p)
	seg := w.AllocSymmetric(n)
	w.Run(func(pe rt.PE) {
		if pe.Rank() != src {
			return
		}
		if strided {
			pe.AccumulateAddStrided(make([]float32, n), n/2, seg, dst, 0, n/2, 2, n/2)
		} else {
			pe.AccumulateAdd(make([]float32, n), seg, dst, 0)
		}
	})
	return w.Stats()
}

// TestAccumulateSwitchesToGetPutAtNodeBoundary pins the §3 routing rule
// on both timed backends and both multi-node topology flavours (scalar
// MultiNode and fabric fat-tree): an accumulate whose source and target
// share a node uses the atomic path (accumulate traffic only), while one
// that crosses the boundary — even between adjacent ranks 7 and 8 —
// performs the get+put round trip (get traffic appears).
func TestAccumulateSwitchesToGetPutAtNodeBoundary(t *testing.T) {
	const n = 1024
	dev := gpusim.PresetH100Device()
	topos := []simnet.Topology{
		simnet.PresetH100Cluster(2),
		fabric.H100FatTree(2, 8, 1).Topology(),
	}
	for _, topo := range topos {
		for _, b := range []rt.Backend{
			simbackend.New(topo, dev),
			gpubackend.New(topo, dev),
		} {
			p := topo.NumPE()
			for _, strided := range []bool{false, true} {
				intra := accumTraffic(t, b, p, 7, 0, n, strided) // same node: ranks 0..7
				if intra.RemoteAccumBytes != 4*n || intra.RemoteGetBytes != 0 {
					t.Fatalf("%s/%s intra-node accumulate (strided=%v): stats %+v, want pure accumulate",
						b.Name(), topo.Name(), strided, intra)
				}
				cross := accumTraffic(t, b, p, 7, 8, n, strided) // ranks 7|8 straddle the boundary
				if cross.RemoteGetBytes != 4*n || cross.RemoteAccumBytes != 4*n {
					t.Fatalf("%s/%s cross-node accumulate (strided=%v): stats %+v, want get+put round trip",
						b.Name(), topo.Name(), strided, cross)
				}
			}
		}
	}
}

// TestCrossNodeAccumulatePricedAsRoundTrip checks the timing half of the
// §3 switch on the simbackend: a cross-node AccumulateAdd (sync and
// async) costs exactly the get+put round trip, not the accumulate-kernel
// price.
func TestCrossNodeAccumulatePricedAsRoundTrip(t *testing.T) {
	const n = 1 << 16
	topo := simnet.PresetH100Cluster(2)
	dev := gpusim.PresetH100Device()
	cost := func(drive func(pe rt.PE, seg rt.SegmentID)) float64 {
		w := simbackend.New(topo, dev).NewWorld(topo.NumPE()).(rt.TimedWorld)
		seg := w.AllocSymmetric(n)
		w.Run(func(pe rt.PE) {
			if pe.Rank() == 0 {
				drive(pe, seg)
			}
		})
		return w.PredictedSeconds()
	}
	sync := cost(func(pe rt.PE, seg rt.SegmentID) {
		pe.AccumulateAdd(make([]float32, n), seg, 8, 0)
	})
	async := cost(func(pe rt.PE, seg rt.SegmentID) {
		pe.AccumulateAddAsync(make([]float32, n), seg, 8, 0).Wait()
	})
	explicit := cost(func(pe rt.PE, seg rt.SegmentID) {
		pe.AccumulateAddGetPut(make([]float32, n), seg, 8, 0)
	})
	if math.Abs(sync-explicit) > 1e-12 || math.Abs(async-explicit) > 1e-12 {
		t.Fatalf("cross-node accumulate priced %.12g (sync) / %.12g (async), want the %.12g round trip",
			sync, async, explicit)
	}
}
