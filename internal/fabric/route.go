package fabric

import "fmt"

// Routing: latency-weighted shortest paths from every source PE, computed
// once at Freeze. Transit is restricted to forwarding nodes (switches and
// NICs) — a route never passes through another PE, matching hardware
// where GPUs do not forward fabric traffic. When several shortest paths
// tie within floating-point tolerance, the choice at each junction is a
// deterministic hash of (src, dst, junction) — static ECMP: the same flow
// always takes the same path (so modeled runs are reproducible), while
// different pairs spread across the parallel planes of a fat-tree.

// routeEq is the tolerance for "equal cost" when collecting ECMP
// candidates: sums of the same latencies in different orders may differ in
// the last few ulps.
func routeEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	return d <= 1e-15+1e-12*m
}

// routeFrom fills f.routes[src*P+dst] for all dst with a Dijkstra pass
// from src's node. Graphs are small (tens to hundreds of nodes), so the
// O(V²) scan is simpler and deterministic.
func (f *Fabric) routeFrom(src int) {
	p := len(f.peNodes)
	start := f.peNodes[src]
	const unreached = -1

	dist := make([]float64, len(f.nodes))
	done := make([]bool, len(f.nodes))
	reached := make([]bool, len(f.nodes))
	// preds[v] lists the incoming link of every shortest path to v.
	preds := make([][]int, len(f.nodes))
	dist[start] = 0
	reached[start] = true

	for {
		u := unreached
		for v := range f.nodes {
			if reached[v] && !done[v] && (u == unreached || dist[v] < dist[u]) {
				u = v
			}
		}
		if u == unreached {
			break
		}
		done[u] = true
		// Only the source PE and forwarding nodes relay traffic onward.
		if u != start && f.nodes[u].Kind == KindPE {
			continue
		}
		for _, li := range f.out[u] {
			l := f.links[li]
			if done[l.To] {
				// A finalized node's distance cannot improve; appending an
				// equal-cost predecessor here could only be a zero-latency
				// tie, which risks a predecessor cycle — skip it.
				continue
			}
			d := dist[u] + l.Lat
			switch {
			case !reached[l.To] || d < dist[l.To] && !routeEq(d, dist[l.To]):
				reached[l.To] = true
				dist[l.To] = d
				preds[l.To] = append(preds[l.To][:0], li)
			case routeEq(d, dist[l.To]):
				preds[l.To] = append(preds[l.To], li)
			}
		}
	}

	for dst := 0; dst < p; dst++ {
		if dst == src {
			f.routes[src*p+dst] = nil
			continue
		}
		end := f.peNodes[dst]
		if !reached[end] {
			panic(fmt.Sprintf("fabric %s: PE %d cannot reach PE %d", f.name, src, dst))
		}
		// Walk predecessors back from dst, breaking ECMP ties by hash.
		var rev []int
		for v := end; v != start; {
			cands := preds[v]
			li := cands[int(ecmpHash(src, dst, v)%uint32(len(cands)))]
			rev = append(rev, li)
			v = f.links[li].From
		}
		route := make([]int, len(rev))
		for i, li := range rev {
			route[len(rev)-1-i] = li
		}
		f.routes[src*p+dst] = route
	}
}

// ecmpHash is FNV-1a over the flow identity and the junction node, the
// static per-flow spreading of hash-based ECMP.
func ecmpHash(src, dst, node int) uint32 {
	h := uint32(2166136261)
	for _, v := range [3]int{src, dst, node} {
		for i := 0; i < 4; i++ {
			h ^= uint32(v>>(8*i)) & 0xff
			h *= 16777619
		}
	}
	return h
}
