package fabric

import "fmt"

// Routing: latency-weighted shortest paths from every source PE, computed
// once at Freeze. Transit is restricted to forwarding nodes (switches and
// NICs) — a route never passes through another PE, matching hardware
// where GPUs do not forward fabric traffic. When several shortest paths
// tie within floating-point tolerance, the choice at each junction is a
// deterministic hash of (src, dst, junction) — static ECMP: the same flow
// always takes the same path (so modeled runs are reproducible), while
// different pairs spread across the parallel planes of a fat-tree.

// routeEq is the tolerance for "equal cost" when collecting ECMP
// candidates: sums of the same latencies in different orders may differ in
// the last few ulps.
func routeEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	return d <= 1e-15+1e-12*m
}

// heapEntry is a pending Dijkstra visit: a node and the distance it was
// enqueued at. Entries are ordered by (dist, node) — the node index breaks
// exact ties, reproducing the finalization order of the O(V²) linear scan
// this heap replaced, so routes (and the ECMP predecessor lists they hash
// over) are unchanged.
type heapEntry struct {
	dist float64
	node int
}

func heapLess(a, b heapEntry) bool {
	return a.dist < b.dist || (a.dist == b.dist && a.node < b.node)
}

// routeHeap is a lazy-deletion binary min-heap: decrease-key pushes a
// duplicate and pop discards entries for already-finalized nodes.
type routeHeap []heapEntry

func (h *routeHeap) push(e heapEntry) {
	*h = append(*h, e)
	s := *h
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if !heapLess(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *routeHeap) pop() heapEntry {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(s) && heapLess(s[l], s[min]) {
			min = l
		}
		if r < len(s) && heapLess(s[r], s[min]) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	*h = s
	return top
}

// routeScratch holds one Freeze's Dijkstra working state, reused across
// the per-source passes so a cluster-scale freeze (thousands of sources ×
// thousands of nodes) does not churn the garbage collector.
type routeScratch struct {
	dist    []float64
	done    []bool
	reached []bool
	// preds[v] lists the incoming link of every shortest path to v.
	preds [][]int
	heap  routeHeap
	rev   []int
}

func newRouteScratch(nodes int) *routeScratch {
	return &routeScratch{
		dist:    make([]float64, nodes),
		done:    make([]bool, nodes),
		reached: make([]bool, nodes),
		preds:   make([][]int, nodes),
		heap:    make(routeHeap, 0, nodes),
	}
}

func (s *routeScratch) reset() {
	for i := range s.done {
		s.done[i] = false
		s.reached[i] = false
		s.preds[i] = s.preds[i][:0]
	}
	s.heap = s.heap[:0]
}

// routeFrom fills f.routes[src*P+dst] for all dst with a Dijkstra pass
// from src's node, using a binary heap so cluster-scale fabrics
// (thousands of nodes, one pass per PE) stay O(E log V) per source
// rather than O(V²).
func (f *Fabric) routeFrom(src int, s *routeScratch) {
	p := len(f.peNodes)
	start := f.peNodes[src]

	s.reset()
	dist, done, reached, preds := s.dist, s.done, s.reached, s.preds
	dist[start] = 0
	reached[start] = true

	heap := s.heap
	heap.push(heapEntry{0, start})
	for len(heap) > 0 {
		u := heap.pop().node
		if done[u] {
			continue
		}
		done[u] = true
		// Only the source PE and forwarding nodes relay traffic onward.
		if u != start && f.nodes[u].Kind == KindPE {
			continue
		}
		for _, li := range f.out[u] {
			l := f.links[li]
			if done[l.To] {
				// A finalized node's distance cannot improve; appending an
				// equal-cost predecessor here could only be a zero-latency
				// tie, which risks a predecessor cycle — skip it.
				continue
			}
			d := dist[u] + l.Lat
			switch {
			case !reached[l.To] || d < dist[l.To] && !routeEq(d, dist[l.To]):
				reached[l.To] = true
				dist[l.To] = d
				preds[l.To] = append(preds[l.To][:0], li)
				heap.push(heapEntry{d, l.To})
			case routeEq(d, dist[l.To]):
				preds[l.To] = append(preds[l.To], li)
			}
		}
	}
	s.heap = heap

	for dst := 0; dst < p; dst++ {
		if dst == src {
			f.routes[src*p+dst] = nil
			continue
		}
		end := f.peNodes[dst]
		if !reached[end] {
			panic(fmt.Sprintf("fabric %s: PE %d cannot reach PE %d", f.name, src, dst))
		}
		// Walk predecessors back from dst, breaking ECMP ties by hash.
		rev := s.rev[:0]
		for v := end; v != start; {
			cands := preds[v]
			li := cands[int(ecmpHash(src, dst, v)%uint32(len(cands)))]
			rev = append(rev, li)
			v = f.links[li].From
		}
		route := make([]int, len(rev))
		lat := 0.0
		for i, li := range rev {
			route[len(rev)-1-i] = li
			lat += f.links[li].Lat
		}
		f.routes[src*p+dst] = route
		// Latencies are immutable after Freeze (only bandwidth degrades),
		// so the per-pair sum is computed once here instead of on every
		// Latency query — the cost model asks millions of times per
		// cluster-scale autotune pass.
		f.routeLat[src*p+dst] = lat
		s.rev = rev[:0]
	}
}

// ecmpHash is FNV-1a over the flow identity and the junction node, the
// static per-flow spreading of hash-based ECMP.
func ecmpHash(src, dst, node int) uint32 {
	h := uint32(2166136261)
	for _, v := range [3]int{src, dst, node} {
		for i := 0; i < 4; i++ {
			h ^= uint32(v>>(8*i)) & 0xff
			h *= 16777619
		}
	}
	return h
}
