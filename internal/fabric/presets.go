package fabric

import (
	"fmt"
	"math"

	"slicing/internal/simnet"
)

const (
	gb = 1e9
	us = 1e-6
)

// SingleSwitch builds the simplest routed node: p PEs hanging off one
// ideal switch, each with a full-duplex port of linkBW. Every transfer
// occupies the source's up-link and the destination's down-link — the
// same contention structure as the legacy per-PE ports, now expressed as
// links. The end-to-end latency of a PE→PE transfer is `latency` (split
// evenly across the two hops).
func SingleSwitch(p int, linkBW, localBW, latency float64, name string) *Fabric {
	f := New(name, localBW)
	sw := f.AddSwitch("sw")
	for i := 0; i < p; i++ {
		pe := f.AddPE(fmt.Sprintf("pe%d", i), 0)
		f.Connect(pe, sw, linkBW, latency/2, fmt.Sprintf("pe%d.up", i))
		f.Connect(sw, pe, linkBW, latency/2, fmt.Sprintf("pe%d.down", i))
	}
	return f.Freeze()
}

// H100Node is the routed 8-GPU H100 node of Table 2: every GPU owns a
// 450 GB/s full-duplex NVLink port into the node's NVSwitch complex,
// 3 µs end to end — the link-graph form of simnet.PresetH100.
func H100Node() *Fabric {
	return SingleSwitch(8, 450*gb, 2000*gb, 3*us, "8xH100 NVLink fabric")
}

// PVCNode is the routed 12-tile Intel PVC node of Table 2: 6 dual-tile
// packages whose tiles share a 230 GB/s inter-tile bridge, plus a
// 26.5 GB/s Xe Link port per tile into the node-level fabric. Unlike the
// scalar simnet.PresetPVC — where one egress port serializes a tile's
// inter-tile and Xe Link traffic — the two ports are distinct links here,
// as they are in hardware.
func PVCNode() *Fabric {
	f := New("12xPVC XeLink fabric", 1000*gb)
	xe := f.AddSwitch("xe")
	for pkg := 0; pkg < 6; pkg++ {
		hub := f.AddSwitch(fmt.Sprintf("pkg%d", pkg))
		for t := 0; t < 2; t++ {
			tile := f.AddPE(fmt.Sprintf("t%d", 2*pkg+t), 0)
			f.BiConnect(tile, hub, 230*gb, 1*us, fmt.Sprintf("t%d.mdfi", 2*pkg+t))
			f.BiConnect(tile, xe, 26.5*gb, 2.5*us, fmt.Sprintf("t%d.xe", 2*pkg+t))
		}
	}
	return f.Freeze()
}

// H100FatTree builds a cluster of H100 nodes behind a rail-optimized IB
// fat-tree:
//
//   - per node: 8 GPUs on an NVSwitch (450 GB/s ports, 3 µs end to end),
//     used for intra-node traffic only;
//   - railsPerNode NICs per node at 50 GB/s (400 Gb/s class); GPU j is
//     PCIe-attached to NIC j mod railsPerNode and all its inter-node
//     traffic enters the IB fabric there (GPUs do not forward, so there
//     is no NVLink detour onto another GPU's rail); NIC r of every node
//     connects to the shared rail switch r, so rail-aligned traffic (same
//     NIC index at both ends) crosses exactly one switch;
//   - when railsPerNode > 1, two spine planes join the rails for
//     cross-rail traffic; each rail→spine uplink carries
//     nodes·50 GB/s / oversub, so oversub is the fat-tree's
//     oversubscription ratio and the equal-cost spine planes are spread
//     across flows by ECMP hashing.
//
// railsPerNode = 1 is the DGX-style single-NIC node: the whole node's
// inter-node traffic squeezes through one 50 GB/s port pair, the regime
// where incast storms serialize. railsPerNode = 8 is the fully
// rail-optimized build (400 GB/s aggregate per node).
func H100FatTree(nodes, railsPerNode int, oversub float64) *Fabric {
	if nodes <= 1 || railsPerNode < 1 || railsPerNode > 8 || 8%railsPerNode != 0 {
		panic(fmt.Sprintf("fabric: invalid fat-tree %d nodes x %d rails", nodes, railsPerNode))
	}
	if oversub < 1 || math.IsNaN(oversub) {
		panic(fmt.Sprintf("fabric: invalid oversubscription %g", oversub))
	}
	if railsPerNode == 1 && oversub != 1 {
		// A single rail has no spine, so there is nothing to oversubscribe;
		// refusing the parameter beats silently labeling identical fabrics
		// with different ratios in a sweep.
		panic(fmt.Sprintf("fabric: single-rail fat-tree has no spine to oversubscribe (%g:1)", oversub))
	}
	const nicBW = 50 * gb
	name := fmt.Sprintf("%dx8xH100 fat-tree (%d rails, %g:1)", nodes, railsPerNode, oversub)
	if railsPerNode == 1 {
		name = fmt.Sprintf("%dx8xH100 fat-tree (single NIC)", nodes)
	}
	f := New(name, 2000*gb)

	rails := make([]int, railsPerNode)
	for r := range rails {
		rails[r] = f.AddSwitch(fmt.Sprintf("rail%d", r))
	}
	if railsPerNode > 1 {
		uplinkBW := float64(nodes) * nicBW / oversub
		for s := 0; s < 2; s++ {
			spine := f.AddSwitch(fmt.Sprintf("spine%d", s))
			for r, rail := range rails {
				f.BiConnect(rail, spine, uplinkBW, 1*us, fmt.Sprintf("rail%d.spine%d", r, s))
			}
		}
	}
	for n := 0; n < nodes; n++ {
		nvsw := f.AddSwitch(fmt.Sprintf("n%d.nvsw", n))
		nics := make([]int, railsPerNode)
		for r := range nics {
			nics[r] = f.AddNIC(fmt.Sprintf("n%d.nic%d", n, r))
			f.BiConnect(nics[r], rails[r], nicBW, 3.25*us, fmt.Sprintf("n%d.nic%d.ib", n, r))
		}
		for g := 0; g < 8; g++ {
			gpu := f.AddPE(fmt.Sprintf("n%d.gpu%d", n, g), n)
			f.BiConnect(gpu, nvsw, 450*gb, 1.5*us, fmt.Sprintf("n%d.gpu%d.nvl", n, g))
			// PCIe hop priced so that two GPUs sharing a NIC still prefer
			// NVLink for intra-node traffic (3.5 µs via the NIC vs 3 µs via
			// the NVSwitch) while the inter-node end-to-end stays at 10 µs.
			f.BiConnect(gpu, nics[g%railsPerNode], 450*gb, 1.75*us, fmt.Sprintf("n%d.gpu%d.pcie", n, g))
		}
	}
	return f.Freeze()
}

// Degenerate lifts a scalar topology into the fabric model with the exact
// legacy contention structure: each PE gets an ideal egress-port link and
// ingress-port link (infinite bandwidth, zero latency), and every ordered
// pair (s,d) gets a dedicated pair link carrying the scalar model's
// Bandwidth(s,d) and Latency(s,d). The unique s→d route is then
// [s.egress, pair, d.ingress], so a transfer contends on exactly the
// initiator's egress and the target's ingress — the legacy per-PE ports —
// and is priced at exactly the scalar numbers. The conformance suite uses
// this to pin the fabric-backed backends to the scalar ones within 1e-9.
//
// When topo is multi-node (simnet.NodeMapper), the node mapping carries
// over, so the §3 cross-node accumulate routing behaves identically.
func Degenerate(topo simnet.Topology) *Fabric {
	p := topo.NumPE()
	nodeOf := func(int) int { return 0 }
	if nm, ok := topo.(simnet.NodeMapper); ok {
		nodeOf = nm.NodeOf
	}
	f := New(topo.Name(), topo.Bandwidth(0, 0))
	eg := make([]int, p)
	in := make([]int, p)
	for i := 0; i < p; i++ {
		pe := f.AddPE(fmt.Sprintf("pe%d", i), nodeOf(i))
		eg[i] = f.AddSwitch(fmt.Sprintf("pe%d.eg", i))
		in[i] = f.AddSwitch(fmt.Sprintf("pe%d.in", i))
		f.Connect(pe, eg[i], math.Inf(1), 0, fmt.Sprintf("pe%d.egress", i))
		f.Connect(in[i], pe, math.Inf(1), 0, fmt.Sprintf("pe%d.ingress", i))
	}
	for s := 0; s < p; s++ {
		for d := 0; d < p; d++ {
			if s == d {
				continue
			}
			f.Connect(eg[s], in[d], topo.Bandwidth(s, d), topo.Latency(s, d),
				fmt.Sprintf("pe%d->pe%d", s, d))
		}
	}
	return f.Freeze()
}
