package fabric_test

// Mid-run degrade contract (docs/RESILIENCE.md): fabric.DegradeAt may be
// called from any goroutine while timed worlds are pricing transfers over
// the same fabric. Bandwidth reads and the degrade write both go through
// the per-link atomic, so these tests are primarily -race regressions;
// they also pin the visible effects (degraded runs slow down, unknown
// links are refused).

import (
	"sync"
	"testing"

	"slicing/internal/fabric"
	"slicing/internal/gpubackend"
	"slicing/internal/gpusim"
	rt "slicing/internal/runtime"
	"slicing/internal/simbackend"
)

// degradeBackends builds a fresh 2-node fat-tree fabric per call (Degrade
// mutates it) and the timed backends routed over it.
func degradeWorlds() map[string]func() rt.TimedWorld {
	return map[string]func() rt.TimedWorld{
		"simbackend": func() rt.TimedWorld {
			f := fabric.H100FatTree(2, 2, 1)
			return simbackend.New(f.Topology(), gpusim.PresetH100Device()).NewWorld(16).(rt.TimedWorld)
		},
		"gpubackend": func() rt.TimedWorld {
			f := fabric.H100FatTree(2, 2, 1)
			return gpubackend.New(f.Topology(), gpusim.PresetH100Device()).NewWorld(16).(rt.TimedWorld)
		},
	}
}

// TestDegradeLinkMidRunRace degrades a rail repeatedly from another
// goroutine while every rank hammers cross-node gets. Run with -race:
// a non-atomic bandwidth read anywhere on the pricing path fails here.
func TestDegradeLinkMidRunRace(t *testing.T) {
	for name, mk := range degradeWorlds() {
		t.Run(name, func(t *testing.T) {
			w := mk()
			const n = 1 << 12
			seg := w.AllocSymmetric(4 * n)
			var wg sync.WaitGroup
			wg.Add(1)
			stop := make(chan struct{})
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					// Alternate the two rails, shaving bandwidth each pass.
					if !rt.DegradeLinkOf(w, "n0.nic0.ib>", 0.99) {
						t.Error("DegradeLink refused a known link")
						return
					}
					rt.DegradeLinkOf(w, "n1.nic1.ib>", 0.99)
				}
			}()
			p := w.NumPE()
			w.Run(func(pe rt.PE) {
				buf := make([]float32, n)
				for round := 0; round < 8; round++ {
					// Cross-node neighbour: ranks 0-7 are node 0, 8-15 node 1.
					pe.Get(buf, seg, (pe.Rank()+8)%p, 0)
					pe.Barrier()
				}
			})
			close(stop)
			wg.Wait()
			if rt.DegradeLinkOf(w, "no-such-link", 0.5) {
				t.Error("DegradeLink accepted an unknown link name")
			}
		})
	}
}

// TestDegradedRailSlowsTransfers pins the modeled effect: the same
// cross-node workload priced after degrading both IB rails to 10% takes
// strictly longer than on the healthy fabric.
func TestDegradedRailSlowsTransfers(t *testing.T) {
	for name, mk := range degradeWorlds() {
		t.Run(name, func(t *testing.T) {
			run := func(degrade bool) float64 {
				w := mk()
				if degrade {
					for _, link := range []string{"n0.nic0.ib>", "n0.nic1.ib>", "n1.nic0.ib>", "n1.nic1.ib>"} {
						if !rt.DegradeLinkOf(w, link, 0.1) {
							t.Fatalf("cannot degrade %s", link)
						}
					}
				}
				const n = 1 << 14
				seg := w.AllocSymmetric(4 * n)
				p := w.NumPE()
				w.Run(func(pe rt.PE) {
					buf := make([]float32, n)
					pe.Get(buf, seg, (pe.Rank()+8)%p, 0)
					pe.Barrier()
				})
				return w.PredictedSeconds()
			}
			healthy, degraded := run(false), run(true)
			if degraded <= healthy {
				t.Fatalf("degraded rails predicted %.3gs, healthy %.3gs — degrade had no effect", degraded, healthy)
			}
		})
	}
}
