// Package modelworld provides the model-only execution substrate: a
// runtime.Backend whose worlds carry the full one-sided contract's
// *metadata* — world size and symmetric-segment lengths — but allocate no
// storage and execute nothing. It exists so the plan/estimate pipeline
// (distmat construction, BuildPlan, PlanKeyOf, costmodel pricing,
// universal.SimulateMultiply and the ModelExecutor) can run at full
// cluster scale: a 1024-PE MLP layer's matrices would need gigabytes of
// float32 under shmem, but every consumer on that pipeline reads only
// shapes, ownership, and replication. Anything that would touch data —
// SegmentStorage, Run — panics with a message naming this package, so an
// accidental attempt to really execute on a model world fails loudly at
// the call site instead of corrupting an estimate.
package modelworld

import (
	"fmt"

	rt "slicing/internal/runtime"
)

// Backend constructs model-only worlds. It satisfies runtime.Backend so
// harness code that is generic over backends (autotune, the sweep
// subsystem) can treat "model" as a fourth execution mode next to shmem,
// simbackend, and gpubackend.
type Backend struct{}

// Name identifies the backend.
func (Backend) Name() string { return "model" }

// NewWorld creates a model world of p processing elements.
func (Backend) NewWorld(p int) rt.World { return NewWorld(p) }

// World is a metadata-only world: allocation records per-PE segment
// lengths without reserving storage, and every data or execution path
// panics. It is not safe for concurrent AllocSymmetric calls (matching
// the host-side, pre-Run allocation discipline of the real backends).
type World struct {
	p       int
	seglens []int
}

// NewWorld returns a model world of p PEs.
func NewWorld(p int) *World {
	if p <= 0 {
		panic(fmt.Sprintf("modelworld: world size %d", p))
	}
	return &World{p: p}
}

// NumPE returns the number of processing elements.
func (w *World) NumPE() int { return w.p }

// World returns the world itself (the Allocator contract).
func (w *World) World() rt.World { return w }

// AllocSymmetric records a segment of n float32 on every PE — no memory is
// reserved, only the length, which is all plan construction reads.
func (w *World) AllocSymmetric(n int) rt.SegmentID {
	if n < 0 {
		panic(fmt.Sprintf("modelworld: negative segment length %d", n))
	}
	w.seglens = append(w.seglens, n)
	return rt.SegmentID(len(w.seglens) - 1)
}

// SegmentLen returns the per-PE length of a segment.
func (w *World) SegmentLen(seg rt.SegmentID) int { return w.seglens[seg] }

// SegmentStorage panics: a model world has no backing arrays.
func (w *World) SegmentStorage(seg rt.SegmentID, rank int) []float32 {
	panic("modelworld: model worlds hold no storage; use a real backend to execute")
}

// Run panics: a model world cannot execute PE bodies. Replay compiled
// plans through universal.ModelExecutor instead.
func (w *World) Run(body func(pe rt.PE)) {
	panic("modelworld: model worlds cannot execute; replay plans through the model executor")
}

// Stats returns zeroed traffic counters (nothing ever moves).
func (w *World) Stats() rt.Stats { return rt.Stats{} }

// ResetStats is a no-op.
func (w *World) ResetStats() {}
