package modelworld_test

import (
	"testing"

	"slicing/internal/distmat"
	"slicing/internal/modelworld"
	rt "slicing/internal/runtime"
	"slicing/internal/shmem"
	"slicing/internal/universal"
)

var _ rt.Backend = modelworld.Backend{}
var _ rt.World = (*modelworld.World)(nil)

// Plans built over a model world must be identical to plans built over a
// real backend: the slicing pass reads only metadata, and the model world
// must present exactly the same metadata.
func TestModelWorldPlansMatchShmem(t *testing.T) {
	build := func(alloc rt.Allocator) universal.Problem {
		a := distmat.New(alloc, 96, 128, distmat.RowBlock{}, 1)
		b := distmat.New(alloc, 128, 80, distmat.ColBlock{}, 1)
		c := distmat.New(alloc, 96, 80, distmat.Block2D{}, 2)
		return universal.NewProblem(c, a, b)
	}
	mw := modelworld.NewWorld(8)
	sw := shmem.NewWorld(8)
	mp := build(mw)
	sp := build(sw)

	cfg := universal.DefaultConfig()
	if universal.PlanKeyOf(mp, cfg) != universal.PlanKeyOf(sp, cfg) {
		t.Fatal("model-world plan key differs from shmem plan key")
	}
	for rank := 0; rank < 8; rank++ {
		pm := universal.BuildPlan(rank, mp, universal.StationaryC, 0)
		ps := universal.BuildPlan(rank, sp, universal.StationaryC, 0)
		if len(pm.Steps) != len(ps.Steps) {
			t.Fatalf("rank %d: %d steps on model world, %d on shmem", rank, len(pm.Steps), len(ps.Steps))
		}
		for i := range pm.Steps {
			if pm.Steps[i] != ps.Steps[i] {
				t.Fatalf("rank %d step %d differs: %+v vs %+v", rank, i, pm.Steps[i], ps.Steps[i])
			}
		}
	}
}

func TestModelWorldSegmentMetadata(t *testing.T) {
	w := modelworld.NewWorld(4)
	if w.NumPE() != 4 {
		t.Fatalf("NumPE = %d", w.NumPE())
	}
	s0 := w.AllocSymmetric(100)
	s1 := w.AllocSymmetric(0)
	if w.SegmentLen(s0) != 100 || w.SegmentLen(s1) != 0 {
		t.Fatalf("segment lengths %d, %d", w.SegmentLen(s0), w.SegmentLen(s1))
	}
	if w.World() != rt.World(w) {
		t.Fatal("World() must return the world itself")
	}
	if w.Stats() != (rt.Stats{}) {
		t.Fatal("model world must report zero traffic")
	}
}

func TestModelWorldDataPathsPanic(t *testing.T) {
	w := modelworld.NewWorld(2)
	seg := w.AllocSymmetric(8)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s on a model world should panic", name)
			}
		}()
		f()
	}
	mustPanic("SegmentStorage", func() { w.SegmentStorage(seg, 0) })
	mustPanic("Run", func() { w.Run(func(pe rt.PE) {}) })
}
