// Package cosma implements a COSMA-style baseline (Kwasniewski et al.,
// SC'19): given a problem size, a processor count, and a memory budget, it
// selects the processor-grid decomposition (pm × pn × pk) that minimizes
// per-processor communication volume — scaling automatically between 2D
// (pk = 1, no replication) and 2.5D (pk > 1, replicated grids with a final
// group all-reduce of C), which is exactly the behaviour the paper
// describes for its COSMA comparison in Figure 3.
//
// The optimizer is exact over all factorization triples of p (p is small
// on one node). Execution reuses the universal algorithm's distributed
// matrices: the decomposition instantiates A, B, C as 2D-blocked matrices
// on the pm×pn grid with replication pk; the paper's observation that
// COSMA's group collective can be suboptimal is modelled by a collective
// efficiency factor in the performance model.
package cosma

import (
	"fmt"
	"math"

	"slicing/internal/distmat"
	rt "slicing/internal/runtime"
	"slicing/internal/universal"
)

// Decomposition is a processor-grid choice for C = A·B on p = Pm·Pn·Pk
// processors: the m dimension is split Pm ways, n split Pn ways, and the k
// dimension split Pk ways across replicas.
type Decomposition struct {
	Pm, Pn, Pk int
	// CommVolume is the modelled per-processor communication volume in
	// elements (A and B brick gathers plus the C reduction when Pk > 1).
	CommVolume float64
	// MemElems is the per-processor memory footprint in elements.
	MemElems float64
}

func (d Decomposition) String() string {
	return fmt.Sprintf("grid %dx%dx%d (comm %.3g elems/proc)", d.Pm, d.Pn, d.Pk, d.CommVolume)
}

// volume models per-processor communication for a (pm, pn, pk) grid: each
// processor needs an (m/pm × k/pk) brick of A and a (k/pk × n/pn) brick of
// B (gathered from wherever they start), and with pk > 1 the C brick
// (m/pm × n/pn) is reduced across the pk replicas (counted twice for the
// reduce+broadcast round trip).
func volume(m, n, k, pm, pn, pk int) float64 {
	fm, fn, fk := float64(m), float64(n), float64(k)
	a := fm / float64(pm) * fk / float64(pk)
	b := fk / float64(pk) * fn / float64(pn)
	c := 0.0
	if pk > 1 {
		c = 2 * fm / float64(pm) * fn / float64(pn)
	}
	return a + b + c
}

// memory models the per-processor footprint: the local bricks of A, B, C.
func memory(m, n, k, pm, pn, pk int) float64 {
	fm, fn, fk := float64(m), float64(n), float64(k)
	return fm/float64(pm)*fk/float64(pk) + fk/float64(pk)*fn/float64(pn) + fm/float64(pm)*fn/float64(pn)
}

// Optimize returns the decomposition of p processors minimizing modelled
// communication volume subject to the per-processor memory budget (in
// elements; pass math.Inf(1) for unlimited, as the paper's COSMA runs do).
// Ties prefer smaller Pk (less replication machinery).
func Optimize(m, n, k, p int, memBudget float64) Decomposition {
	if m <= 0 || n <= 0 || k <= 0 || p <= 0 {
		panic(fmt.Sprintf("cosma: invalid problem %dx%dx%d on %d", m, n, k, p))
	}
	best := Decomposition{CommVolume: math.Inf(1)}
	found := false
	for pm := 1; pm <= p; pm++ {
		if p%pm != 0 {
			continue
		}
		rest := p / pm
		for pn := 1; pn <= rest; pn++ {
			if rest%pn != 0 {
				continue
			}
			pk := rest / pn
			mem := memory(m, n, k, pm, pn, pk)
			if mem > memBudget {
				continue
			}
			v := volume(m, n, k, pm, pn, pk)
			if !found || v < best.CommVolume ||
				(v == best.CommVolume && pk < best.Pk) {
				best = Decomposition{Pm: pm, Pn: pn, Pk: pk, CommVolume: v, MemElems: mem}
				found = true
			}
		}
	}
	if !found {
		panic(fmt.Sprintf("cosma: no decomposition of %d procs fits memory budget %g", p, memBudget))
	}
	return best
}

// Operands instantiates the decomposition's matrices over a world: A, B, C
// 2D-blocked on the Pm×Pn grid within each of the Pk replicas.
func (d Decomposition) Operands(alloc rt.Allocator, m, n, k int) (a, b, c *distmat.Matrix) {
	part := distmat.Block2D{ProcRows: d.Pm, ProcCols: d.Pn}
	a = distmat.New(alloc, m, k, part, d.Pk)
	b = distmat.New(alloc, k, n, part, d.Pk)
	c = distmat.New(alloc, m, n, part, d.Pk)
	return a, b, c
}

// Multiply executes the decomposition with the universal one-sided engine
// (the replicas split the k-range; reduce_replicas completes C), playing
// the role of COSMA's own comm-optimal executor. Collective.
func Multiply(pe rt.PE, c, a, b *distmat.Matrix) {
	cfg := universal.DefaultConfig()
	cfg.Stationary = universal.StationaryC
	cfg.SyncReplicas = true
	universal.Multiply(pe, c, a, b, cfg)
}

// CollectiveEfficiency discounts COSMA's group all-reduce bandwidth in the
// performance model, reflecting the paper's observation that the group
// collective's performance "is possibly suboptimal" on MLP-1 (§5.2).
const CollectiveEfficiency = 0.6

// Simulate estimates COSMA's time on the simulated system: the local brick
// GEMM (roofline) plus ring all-gathers for the A and B bricks within
// their gather groups and a ring all-reduce of C across the Pk replicas at
// discounted collective efficiency.
func Simulate(sys universal.SimSystem, m, n, k int) (Decomposition, universal.SimResult) {
	p := sys.Topo.NumPE()
	d := Optimize(m, n, k, p, math.Inf(1))
	// Slowest hop bottlenecks ring collectives.
	bw := math.Inf(1)
	for i := 0; i < p; i++ {
		if b := sys.Topo.Bandwidth(i, (i+1)%p); b < bw {
			bw = b
		}
	}
	bw *= CollectiveEfficiency

	bm := ceilDiv(m, d.Pm)
	bn := ceilDiv(n, d.Pn)
	bk := ceilDiv(k, d.Pk)
	gemmT := sys.Dev.GemmTime(bm, bn, bk)

	ring := func(group int, bytes float64) float64 {
		if group <= 1 {
			return 0
		}
		g := float64(group)
		return (g - 1) / g * bytes / bw
	}
	// A brick is gathered across the pn dimension, B across pm; C is
	// all-reduced across pk (2x for reduce + broadcast).
	commT := ring(d.Pn, 4*float64(bm)*float64(bk)) +
		ring(d.Pm, 4*float64(bk)*float64(bn)) +
		2*ring(d.Pk, 4*float64(bm)*float64(bn))

	total := gemmT + commT + sys.Dev.LaunchOverhead
	res := universal.SimResult{Makespan: total}
	flops := 2 * float64(m) * float64(n) * float64(k)
	res.PercentOfPeak = flops / (float64(p) * sys.Dev.PeakFlops * total) * 100
	return d, res
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
