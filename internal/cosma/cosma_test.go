package cosma

import (
	"math"
	"testing"

	rt "slicing/internal/runtime"
	"slicing/internal/shmem"
	"slicing/internal/tile"
	"slicing/internal/universal"
)

func TestOptimizeCoversAllProcessors(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8, 12, 16} {
		d := Optimize(4096, 4096, 4096, p, math.Inf(1))
		if d.Pm*d.Pn*d.Pk != p {
			t.Errorf("p=%d: grid %dx%dx%d does not multiply to p", p, d.Pm, d.Pn, d.Pk)
		}
	}
}

func TestOptimizeSquareProblemPrefers2D(t *testing.T) {
	// For a square problem on a square processor count with no memory
	// pressure, splitting m and n evenly beats heavy k-replication.
	d := Optimize(8192, 8192, 8192, 16, math.Inf(1))
	if d.Pm != 4 || d.Pn != 4 {
		t.Errorf("square problem picked %v, want 4x4 spatial grid", d)
	}
}

func TestOptimizeTallSkinnyUsesReplication(t *testing.T) {
	// MLP-2-like: enormous k. Splitting k (replication) saves the most
	// communication.
	d := Optimize(1024, 12288, 49152, 8, math.Inf(1))
	if d.Pk <= 1 {
		t.Errorf("huge-k problem should split k, got %v", d)
	}
}

func TestOptimizeRespectsMemoryBudget(t *testing.T) {
	m, n, k, p := 4096, 4096, 4096, 8
	unlimited := Optimize(m, n, k, p, math.Inf(1))
	// A budget just above the minimal 2D footprint forbids replication.
	tight := Optimize(m, n, k, p, memory(m, n, k, 2, 4, 1)+1)
	if tight.MemElems > memory(m, n, k, 2, 4, 1)+1 {
		t.Errorf("budgeted decomposition %v exceeds budget", tight)
	}
	if unlimited.CommVolume > tight.CommVolume {
		t.Errorf("unlimited budget (%v) should never be worse than tight (%v)", unlimited, tight)
	}
}

func TestOptimizeImpossibleBudgetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("impossible budget should panic")
		}
	}()
	Optimize(1024, 1024, 1024, 4, 10)
}

func TestVolumeModelSanity(t *testing.T) {
	// No replication: C term free; with replication it costs.
	v1 := volume(100, 100, 100, 2, 2, 1)
	v2 := volume(100, 100, 100, 2, 2, 2)
	if v2 >= v1 && v2-v1 < 1 {
		t.Logf("v1=%g v2=%g", v1, v2)
	}
	if volume(100, 100, 100, 1, 1, 1) <= 0 {
		t.Error("volume must be positive")
	}
}

func TestMultiplyMatchesReference(t *testing.T) {
	for _, tc := range []struct{ p, m, n, k int }{
		{4, 24, 28, 32},
		{8, 26, 30, 34},
		{12, 36, 24, 48},
	} {
		d := Optimize(tc.m, tc.n, tc.k, tc.p, math.Inf(1))
		w := shmem.NewWorld(tc.p)
		a, b, c := d.Operands(w, tc.m, tc.n, tc.k)
		var ref, got *tile.Matrix
		w.Run(func(pe rt.PE) {
			a.FillRandom(pe, 61)
			b.FillRandom(pe, 62)
		})
		w.Run(func(pe rt.PE) {
			if pe.Rank() == 0 {
				fa := a.Gather(pe, 0)
				fb := b.Gather(pe, 0)
				ref = tile.New(tc.m, tc.n)
				tile.GemmNaive(ref, fa, fb)
			}
		})
		w.Run(func(pe rt.PE) {
			Multiply(pe, c, a, b)
		})
		w.Run(func(pe rt.PE) {
			if pe.Rank() == 0 {
				got = c.Gather(pe, 0)
			}
		})
		if !got.AllClose(ref, 1e-3) {
			t.Fatalf("p=%d %v: mismatch %g", tc.p, d, got.MaxAbsDiff(ref))
		}
	}
}

func TestSimulateProducesSaneNumbers(t *testing.T) {
	d, res := Simulate(universal.H100System(), 4096, 4096, 4096)
	if d.Pm*d.Pn*d.Pk != 8 {
		t.Fatalf("decomposition %v does not cover 8 GPUs", d)
	}
	if res.PercentOfPeak <= 0 || res.PercentOfPeak > 100 {
		t.Fatalf("percent of peak = %g", res.PercentOfPeak)
	}
}

// Figure 3 shape: COSMA on MLP-1 should trail a communication-free
// column-parallel execution because of its group collective.
func TestSimulateCosmaTrailsOnMLP1(t *testing.T) {
	sys := universal.H100System()
	_, cosmaRes := Simulate(sys, 8192, 49152, 12288)
	colGemm := sys.Dev.GemmTime(8192, 49152/8, 12288) + sys.Dev.LaunchOverhead
	colPct := 2.0 * 8192 * 49152 * 12288 / (8 * sys.Dev.PeakFlops * colGemm) * 100
	if cosmaRes.PercentOfPeak >= colPct {
		t.Fatalf("COSMA (%.1f%%) should trail comm-free column parallel (%.1f%%) on MLP-1",
			cosmaRes.PercentOfPeak, colPct)
	}
}
