package runtime

import (
	"errors"
	"fmt"
	"time"
)

// This file is the fault-handling half of the runtime contract (PR 8,
// docs/RESILIENCE.md): a typed error taxonomy for one-sided operation
// failures, the panic-based delivery channel that lets an error-less PE
// interface surface faults without widening every method signature, and
// the optional capability interfaces a fault-injecting backend implements
// (fault scopes, per-op deadlines, mid-run link degradation).
//
// The PE primitives deliberately return no errors: on real hardware a
// failed get is an RDMA completion error surfaced out-of-band, and the
// hot path must not pay an error check per memcpy. A backend that CAN
// fail (the chaos decorator; a future real-network backend) instead
// panics with a *Fault before performing the operation. Code prepared to
// recover — the retrying executor in internal/universal — converts the
// panic back into an error at its op boundary with CatchFault and retries
// or aborts; code that is not prepared sees the ordinary panic it would
// see for any contract violation.

// Sentinel errors classifying one-sided operation failures. Everything
// wrapping ErrTransient is retryable (a dropped packet, a timed-out
// completion that may succeed on reissue); everything else is fatal to
// the current collective.
var (
	// ErrTransient marks a retryable one-sided op failure: reissuing the
	// operation may succeed.
	ErrTransient = errors.New("transient one-sided op failure")
	// ErrPEFailed marks a whole-PE failure: every subsequent operation
	// initiated by the rank will fail, so retrying is pointless.
	ErrPEFailed = errors.New("processing element failed")
	// ErrOpTimeout marks a one-sided op that exceeded its per-op deadline
	// (Config.Retry.OpTimeout). Treated as fatal: a hung op that already
	// ate its deadline once is assumed wedged, and escalating beats
	// stacking timeouts.
	ErrOpTimeout = errors.New("one-sided op deadline exceeded")
)

// Fault is the typed panic value a fault-capable backend raises in place
// of performing a one-sided operation. Err is one of the sentinels above
// (possibly wrapped); Op and Rank identify the failed call for error
// messages and logs.
type Fault struct {
	Err  error
	Op   string
	Rank int
}

// Error formats the fault; Fault satisfies error so CatchFault can hand
// it straight to callers.
func (f *Fault) Error() string {
	return fmt.Sprintf("runtime: rank %d %s: %v", f.Rank, f.Op, f.Err)
}

// Unwrap exposes the sentinel for errors.Is classification.
func (f *Fault) Unwrap() error { return f.Err }

// Fail raises a *Fault panic. Backends call it instead of performing an
// operation they have decided fails.
func Fail(err error, op string, rank int) {
	panic(&Fault{Err: err, Op: op, Rank: rank})
}

// CatchFault converts an in-flight *Fault panic into an error written to
// *errp, re-panicking on anything else. Use it as a deferred call in a
// named function so the no-fault path stays an open-coded defer (zero
// allocations):
//
//	func tryGet(...) (err error) {
//		defer rt.CatchFault(&err)
//		m.GetTileInto(...)
//		return nil
//	}
func CatchFault(errp *error) {
	if r := recover(); r != nil {
		if f, ok := r.(*Fault); ok {
			*errp = f
			return
		}
		panic(r)
	}
}

// IsTransient reports whether err is a retryable one-sided failure.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// IsFatal reports whether err is a one-sided failure not worth retrying
// (PE crash, per-op deadline, or any unclassified fault).
func IsFatal(err error) bool { return err != nil && !IsTransient(err) }

// FaultScoper is implemented by fault-injecting backends. Faults are only
// raised while the initiating PE is inside at least one fault scope; the
// retrying executor brackets its recoverable op region with Push/Pop, so
// collectives whose internal barriers cannot tolerate a mid-call unwind
// (reduce, broadcast, zeroing) never observe injected faults. Scopes
// nest; the backbone Barrier is never fault-injected regardless.
type FaultScoper interface {
	PushFaultScope()
	PopFaultScope()
}

// PushFaultScope opens a fault scope on pe; no-op on backends that never
// fail.
func PushFaultScope(pe PE) {
	if s, ok := pe.(FaultScoper); ok {
		s.PushFaultScope()
	}
}

// PopFaultScope closes the innermost fault scope on pe.
func PopFaultScope(pe PE) {
	if s, ok := pe.(FaultScoper); ok {
		s.PopFaultScope()
	}
}

// OpDeadliner is implemented by backends that can bound a single
// one-sided op's duration. A backend honoring the deadline truncates an
// injected (or real) stall at d and fails the op with ErrOpTimeout
// instead of letting it hang the worker crew. Zero disables the bound.
type OpDeadliner interface {
	SetOpDeadline(d time.Duration)
}

// SetOpDeadline bounds each one-sided op on pe to at most d; no-op on
// backends without the capability.
func SetOpDeadline(pe PE, d time.Duration) {
	if s, ok := pe.(OpDeadliner); ok {
		s.SetOpDeadline(d)
	}
}

// LinkDegrader is implemented by worlds that can downtrain a fabric link
// mid-run — timed worlds built over an internal/fabric routed topology,
// whose bandwidth reads go through the race-safe fabric.DegradeAt path.
type LinkDegrader interface {
	// DegradeLink multiplies the named link's bandwidth by factor in
	// (0, 1], returning false when the world has no such link (scalar
	// topology, or no link model at all).
	DegradeLink(name string, factor float64) bool
}

// DegradeLinkOf downtrains a fabric link on w mid-run, reporting whether
// the world could. Safe to call while the world is running.
func DegradeLinkOf(w World, name string, factor float64) bool {
	if d, ok := w.(LinkDegrader); ok {
		return d.DegradeLink(name, factor)
	}
	return false
}
