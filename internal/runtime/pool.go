package runtime

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEachIndex runs fn(0..n-1) across a worker pool sized to the machine.
// Each index must write only its own output slot, which keeps results
// deterministic regardless of completion order. It is the shared fan-out
// primitive behind the estimator's parallel plan building and the
// autotuner's concurrent candidate evaluation — every caller's unit of
// work owns its world/engine and shares nothing mutable.
func ForEachIndex(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
