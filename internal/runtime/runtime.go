// Package runtime defines the one-sided execution contract the paper's
// universal algorithm assumes (§1, §3): a symmetric heap allocated
// collectively across processing elements, and exactly two communication
// primitives — remote get and remote accumulate (plus put, their trivial
// dual) — addressed by (segment, rank, offset). Everything above this
// package (the distributed matrix, the universal algorithm, collectives,
// baselines, IR execution, the benchmark harness) is written against these
// interfaces, so the same algorithm runs unmodified on any backend:
//
//   - internal/shmem: the in-process PGAS backend (goroutine PEs, striped
//     atomic accumulates), the stand-in for Intel SHMEM / NVSHMEM.
//   - internal/simbackend: the simnet-timed backend, which performs the
//     same real data movement while weaving link-level discrete-event
//     timing (Xe Link / NVLink topologies, port contention) into every
//     operation, so one run yields both a numeric result and a modeled
//     wall-clock. Each PE carries a single virtual clock.
//   - internal/gpubackend: the gpusim stream/event-timed backend, which
//     refines simbackend's single clock per PE into per-device engines
//     (a compute stream, copy engines) scheduled on a gpusim.Timeline, so
//     timed runs additionally expose queue-depth contention and
//     accumulate/GEMM interference (paper §5.2).
//
// The contract has a small mandatory core (Backend, World, PE, Future) and
// optional capability interfaces timed backends add on top: Clock and
// GemmTimer (any timed backend), TimedWorld (worlds with a modeled
// wall-clock), and StreamTimer (stream/event-timed backends that can report
// queue-depth and interference delay). Helpers in this package (ChargeGemm,
// Elapse, PredictedTimeOf, StreamStatsOf) let algorithm and harness code
// use the hooks unconditionally; they no-op or report absence on backends
// that do not implement them.
//
// docs/BACKENDS.md is the authoritative prose version of this contract —
// per-method semantics, completion and memory-ordering guarantees, and the
// conformance suite a new backend must pass.
package runtime

// SegmentID names a symmetric allocation: the same logical segment exists
// on every PE in the world.
type SegmentID int

// Stats aggregates one-sided traffic counters for a world. Remote counts
// cover operations whose target rank differs from the initiating PE; local
// operations are also tracked since algorithms often read their own replica
// through the same primitives.
type Stats struct {
	RemoteGetBytes   int64
	RemotePutBytes   int64
	RemoteAccumBytes int64
	LocalGetBytes    int64
	LocalPutBytes    int64
	LocalAccumBytes  int64
	RemoteOps        int64
	LocalOps         int64
}

// Allocator abstracts symmetric-heap allocation so data structures can be
// built either ahead of Run (from the World, host-side) or collectively
// from inside PE bodies (from a PE, OpenSHMEM shmem_malloc-style). Both
// World and PE satisfy it.
type Allocator interface {
	// AllocSymmetric reserves a segment of n float32 on every PE.
	AllocSymmetric(n int) SegmentID
	// World returns the world the allocation lives in.
	World() World
}

// World is a collection of PEs sharing a symmetric heap.
type World interface {
	Allocator
	// NumPE returns the number of processing elements.
	NumPE() int
	// SegmentStorage returns rank's backing array for a segment, for
	// host-side initialization before the world runs. Using it while PEs
	// are running bypasses the one-sided discipline and its accounting.
	SegmentStorage(seg SegmentID, rank int) []float32
	// SegmentLen returns the per-PE length of a segment.
	SegmentLen(seg SegmentID) int
	// Run spawns one execution context per PE, invokes body with each PE
	// handle, and waits for all of them to return.
	Run(body func(pe PE))
	// Stats returns a snapshot of the world's traffic counters.
	Stats() Stats
	// ResetStats zeroes the world's traffic counters.
	ResetStats()
}

// PE is a processing element's handle to the world: the two one-sided
// primitives of the paper (remote get and remote accumulate), their strided
// and asynchronous variants, put, barrier, and collective allocation. A PE
// value is only valid inside the World.Run body that created it.
type PE interface {
	Allocator
	// Rank returns this PE's rank in [0, NumPE).
	Rank() int
	// NumPE returns the world size.
	NumPE() int
	// Local returns this PE's local storage for a segment. The returned
	// slice aliases symmetric memory (the zero-copy fast path); other PEs
	// may read or accumulate into it at any time, so callers must
	// coordinate with barriers before assuming quiescence.
	Local(seg SegmentID) []float32
	// Get copies len(dst) elements starting at offset from the segment on
	// the remote rank into dst — the one-sided remote read primitive.
	Get(dst []float32, seg SegmentID, remote, offset int)
	// Put copies src into the segment on the remote rank starting at
	// offset — the one-sided remote write primitive.
	Put(src []float32, seg SegmentID, remote, offset int)
	// AccumulateAdd atomically adds src element-wise into the segment on
	// the remote rank starting at offset — the remote accumulate primitive.
	AccumulateAdd(src []float32, seg SegmentID, remote, offset int)
	// AccumulateAddGetPut accumulates via the paper's inter-node scheme
	// (§3): coarse lock, remote get, local add, remote put. Semantically
	// identical to AccumulateAdd; priced as a full round trip.
	AccumulateAddGetPut(src []float32, seg SegmentID, remote, offset int)
	// GetStrided copies a rows×cols block with the given row strides from a
	// remote segment region into dst (2-D sub-tile fetch).
	GetStrided(dst []float32, dstStride int, seg SegmentID, remote, offset, srcStride, rows, cols int)
	// PutStrided writes a rows×cols block from src into a remote segment
	// region.
	PutStrided(src []float32, srcStride int, seg SegmentID, remote, offset, dstStride, rows, cols int)
	// AccumulateAddStrided atomically adds a rows×cols block from src into
	// a remote segment region.
	AccumulateAddStrided(src []float32, srcStride int, seg SegmentID, remote, offset, dstStride, rows, cols int)
	// GetAsync starts a one-sided read and returns a Future that completes
	// when dst has been filled (get_tile_async in Table 1).
	GetAsync(dst []float32, seg SegmentID, remote, offset int) Future
	// GetStridedAsync is the asynchronous strided get.
	GetStridedAsync(dst []float32, dstStride int, seg SegmentID, remote, offset, srcStride, rows, cols int) Future
	// AccumulateAddAsync starts a one-sided accumulate and returns a Future.
	AccumulateAddAsync(src []float32, seg SegmentID, remote, offset int) Future
	// Barrier blocks until every PE in the world has entered the barrier.
	Barrier()
}

// Backend constructs worlds of one runtime flavour. Backends are how the
// benchmark harness and conformance tests run the same algorithm over
// different execution substrates.
type Backend interface {
	// Name identifies the backend ("shmem", "simnet", ...).
	Name() string
	// NewWorld creates a world of p processing elements.
	NewWorld(p int) World
}

// Clock is implemented by timed backends whose PEs carry a modeled
// wall-clock. Untimed backends simply don't implement it.
type Clock interface {
	// Now returns the PE's current modeled time in seconds.
	Now() float64
	// Elapse advances the PE's modeled time by charging local busy work.
	Elapse(seconds float64)
}

// GemmTimer is implemented by timed backends that price local GEMM compute
// with a device model. The executor reports each local multiply through
// ChargeGemm so the modeled wall-clock covers compute as well as
// communication without the algorithm knowing device details.
type GemmTimer interface {
	// ElapseGemm charges the modeled duration of an m×n×k local GEMM.
	ElapseGemm(m, n, k int)
}

// ChargeGemm reports an m×n×k local GEMM to pe's backend. It is a no-op on
// untimed backends, so executors call it unconditionally.
func ChargeGemm(pe PE, m, n, k int) {
	if t, ok := pe.(GemmTimer); ok {
		t.ElapseGemm(m, n, k)
	}
}

// Elapse charges modeled busy time to pe when its backend is timed; no-op
// otherwise.
func Elapse(pe PE, seconds float64) {
	if c, ok := pe.(Clock); ok {
		c.Elapse(seconds)
	}
}

// TimedWorld is implemented by worlds of timed backends: they carry a
// modeled wall-clock alongside the real execution. Harness code uses it to
// run the same benchmark over any timed backend without naming one.
type TimedWorld interface {
	World
	// PredictedSeconds returns the modeled wall-clock so far: the furthest
	// point any PE's timeline has reached. Call it after Run.
	PredictedSeconds() float64
	// ResetTime rewinds the model to t=0 (clocks, engines, ports) without
	// touching data, so one world can time successive independent
	// measurements.
	ResetTime()
}

// PredictedTimeOf returns w's modeled wall-clock, and ok=false when w's
// backend is untimed.
func PredictedTimeOf(w World) (seconds float64, ok bool) {
	if tw, timed := w.(TimedWorld); timed {
		return tw.PredictedSeconds(), true
	}
	return 0, false
}

// StreamStats reports the delay signals only a stream/event-timed backend
// can observe. A single-clock timed backend (simbackend) serializes each
// PE's operations onto one virtual clock, so operations never queue behind
// one another on a device engine and remote accumulates never occupy the
// target's compute timeline — both fields are structurally zero there,
// which is why StreamStatsOf reports absence rather than zeros for such
// backends.
type StreamStats struct {
	// QueueDelaySeconds totals the time ops sat queued behind a busy
	// engine or port after their dependencies were already satisfied —
	// the queue-depth contention of deep prefetch pipelines.
	QueueDelaySeconds float64
	// AccumInterferenceSeconds totals the time remote accumulates occupied
	// victim devices' compute engines, the accumulate-kernel/GEMM
	// interference the paper measures on H100 (§5.2). Zero on devices
	// without Device.AccumComputeInterference.
	AccumInterferenceSeconds float64
	// StreamOps counts operations scheduled on device engines.
	StreamOps int
}

// StreamTimer is implemented by worlds of stream/event-timed backends.
type StreamTimer interface {
	// StreamStats returns a snapshot of the run's stream-level delay
	// signals. Call it after Run.
	StreamStats() StreamStats
}

// StreamStatsOf returns w's stream-level delay signals, and ok=false when
// w's backend does not model per-device streams (untimed backends and
// single-clock timed backends alike).
func StreamStatsOf(w World) (StreamStats, bool) {
	if st, ok := w.(StreamTimer); ok {
		return st.StreamStats(), true
	}
	return StreamStats{}, false
}

// LinkStats reports one fabric link's share of a timed run: how long it
// was occupied, how long transfers queued behind it, and the payload it
// carried. Only backends running over a link-routed topology
// (internal/fabric via simnet.Routed) can report these — the legacy
// scalar topologies have ports, not links.
type LinkStats struct {
	// Link is the fabric link's name (e.g. "n0.nic0.ib>", "rail0.spine1<").
	Link string
	// BusySeconds totals the time transfers occupied the link.
	BusySeconds float64
	// QueueDelaySeconds totals the time transfers sat queued because this
	// link was the binding constraint on their route.
	QueueDelaySeconds float64
	// Bytes totals the payload carried over the link.
	Bytes int64
}

// FabricTimer is implemented by worlds of timed backends that can report
// per-link fabric accounting. Worlds built over a scalar (non-routed)
// topology return nil — absence of a link model is information, mirroring
// the StreamTimer convention.
type FabricTimer interface {
	// FabricLinkStats returns one entry per fabric link, in link order, or
	// nil when the world's topology has no link model. Call it after Run.
	FabricLinkStats() []LinkStats
}

// FabricStatsOf returns w's per-link fabric accounting, and ok=false when
// w's backend is untimed or its topology has no link model.
func FabricStatsOf(w World) ([]LinkStats, bool) {
	if ft, ok := w.(FabricTimer); ok {
		if ls := ft.FabricLinkStats(); ls != nil {
			return ls, true
		}
	}
	return nil, false
}
