package runtime

import "testing"

func TestCompletedFuture(t *testing.T) {
	f := CompletedFuture()
	if !f.Done() {
		t.Fatal("CompletedFuture should be done immediately")
	}
	f.Wait() // must not block
}

func TestChargeHelpersNoOpOnUntimedPE(t *testing.T) {
	// A nil-free PE that implements neither Clock nor GemmTimer must pass
	// through ChargeGemm/Elapse untouched.
	ChargeGemm(nil, 8, 8, 8)
	Elapse(nil, 1e-3)
}
