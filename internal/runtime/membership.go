package runtime

import (
	"fmt"
	"sync"
)

// HealthReporter is the optional capability a world may implement to
// expose per-rank liveness: RankFailed reports whether the rank's
// initiations are currently failing fatally (ErrPEFailed). The chaos
// layer implements it from its sticky crash flags; a production backend
// would implement it from RDMA completion-queue health. Like every
// runtime capability it is discovered by type assertion — worlds without
// it are assumed fully healthy.
type HealthReporter interface {
	RankFailed(rank int) bool
}

// DeadRanksOf polls w's HealthReporter and returns the failed ranks in
// ascending order, nil when every rank is healthy or the world exposes no
// health view. The result is ready to use as universal.Config.Exclude.
func DeadRanksOf(w World) []int {
	hr, ok := w.(HealthReporter)
	if !ok {
		return nil
	}
	var dead []int
	for r := 0; r < w.NumPE(); r++ {
		if hr.RankFailed(r) {
			dead = append(dead, r)
		}
	}
	return dead
}

// Membership is a health view over one world's ranks: per-rank liveness
// flags plus monotone epochs that advance on every transition, so a
// consumer can tell "still dead" from "died again after a heal". It is
// the recovery subsystem's source of truth for which ranks a repaired
// plan may schedule work on (World.Exclude semantics: an excluded rank
// keeps participating in barriers and collectives — its memory stays
// reachable — but is assigned no plan steps).
//
// Membership itself observes nothing; feed it from a HealthReporter via
// Sync, or script transitions directly with Exclude/Revive.
type Membership struct {
	mu    sync.Mutex
	alive []bool
	epoch []uint64
}

// NewMembership returns a membership view of p ranks, all alive at
// epoch 0.
func NewMembership(p int) *Membership {
	if p <= 0 {
		panic(fmt.Sprintf("runtime: membership over %d ranks", p))
	}
	m := &Membership{alive: make([]bool, p), epoch: make([]uint64, p)}
	for r := range m.alive {
		m.alive[r] = true
	}
	return m
}

// NumPE returns the number of ranks tracked.
func (m *Membership) NumPE() int { return len(m.alive) }

// Exclude marks rank dead, advancing its epoch; it reports whether the
// rank was alive (false makes repeated exclusion idempotent).
func (m *Membership) Exclude(rank int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.alive[rank] {
		return false
	}
	m.alive[rank] = false
	m.epoch[rank]++
	return true
}

// Revive marks rank alive again, advancing its epoch; it reports whether
// the rank was dead.
func (m *Membership) Revive(rank int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.alive[rank] {
		return false
	}
	m.alive[rank] = true
	m.epoch[rank]++
	return true
}

// Alive reports rank liveness.
func (m *Membership) Alive(rank int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.alive[rank]
}

// Epoch returns rank's transition count: 0 = never transitioned, odd =
// currently dead, even = alive again after Epoch/2 kill/heal cycles.
func (m *Membership) Epoch(rank int) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch[rank]
}

// NumAlive returns the number of live ranks.
func (m *Membership) NumAlive() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, a := range m.alive {
		if a {
			n++
		}
	}
	return n
}

// Excluded returns the dead ranks in ascending order, nil when all are
// alive — the exact value universal.Config.Exclude consumes.
func (m *Membership) Excluded() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	var dead []int
	for r, a := range m.alive {
		if !a {
			dead = append(dead, r)
		}
	}
	return dead
}

// Survivors returns the live ranks in ascending order.
func (m *Membership) Survivors() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	live := make([]int, 0, len(m.alive))
	for r, a := range m.alive {
		if a {
			live = append(live, r)
		}
	}
	return live
}

// Sync reconciles the membership against w's HealthReporter, returning
// how many ranks newly died and how many healed. Worlds without the
// capability leave the view unchanged. Sync is how the serving loop picks
// up both crashes (before recompiling against the survivors) and heals
// (before re-including a revived rank in the next batch).
func (m *Membership) Sync(w World) (died, healed int) {
	hr, ok := w.(HealthReporter)
	if !ok {
		return 0, 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for r := range m.alive {
		failed := hr.RankFailed(r)
		switch {
		case failed && m.alive[r]:
			m.alive[r] = false
			m.epoch[r]++
			died++
		case !failed && !m.alive[r]:
			m.alive[r] = true
			m.epoch[r]++
			healed++
		}
	}
	return died, healed
}
