package runtime

import (
	"reflect"
	"testing"
)

// stubWorld satisfies World with inert methods so health-view tests can
// build worlds from scripted liveness alone.
type stubWorld struct{}

func (stubWorld) AllocSymmetric(int) SegmentID            { return 0 }
func (stubWorld) World() World                            { return nil }
func (stubWorld) NumPE() int                              { return 0 }
func (stubWorld) SegmentStorage(SegmentID, int) []float32 { return nil }
func (stubWorld) SegmentLen(SegmentID) int                { return 0 }
func (stubWorld) Run(func(PE))                            {}
func (stubWorld) Stats() Stats                            { return Stats{} }
func (stubWorld) ResetStats()                             {}

// fakeHealthWorld is a minimal World + HealthReporter for membership
// tests: liveness is scripted directly.
type fakeHealthWorld struct {
	stubWorld
	failed []bool
}

func (w *fakeHealthWorld) NumPE() int            { return len(w.failed) }
func (w *fakeHealthWorld) RankFailed(r int) bool { return w.failed[r] }

func TestMembershipTransitionsAndEpochs(t *testing.T) {
	m := NewMembership(4)
	if m.NumPE() != 4 || m.NumAlive() != 4 {
		t.Fatalf("fresh membership: NumPE %d NumAlive %d", m.NumPE(), m.NumAlive())
	}
	if m.Excluded() != nil {
		t.Fatalf("fresh membership excludes %v", m.Excluded())
	}
	if !m.Exclude(2) {
		t.Fatal("first Exclude reported no transition")
	}
	if m.Exclude(2) {
		t.Fatal("repeated Exclude reported a transition")
	}
	if m.Alive(2) || m.Epoch(2) != 1 {
		t.Fatalf("after exclude: alive=%v epoch=%d", m.Alive(2), m.Epoch(2))
	}
	if got := m.Excluded(); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("Excluded = %v", got)
	}
	if got := m.Survivors(); !reflect.DeepEqual(got, []int{0, 1, 3}) {
		t.Fatalf("Survivors = %v", got)
	}
	if !m.Revive(2) || m.Revive(2) {
		t.Fatal("Revive idempotence broken")
	}
	// Odd epoch = dead, even = alive after Epoch/2 kill/heal cycles.
	if !m.Alive(2) || m.Epoch(2) != 2 {
		t.Fatalf("after revive: alive=%v epoch=%d", m.Alive(2), m.Epoch(2))
	}
	m.Exclude(2)
	if m.Epoch(2) != 3 {
		t.Fatalf("second death epoch = %d, want 3", m.Epoch(2))
	}
}

func TestMembershipSyncFollowsHealthReporter(t *testing.T) {
	w := &fakeHealthWorld{failed: make([]bool, 4)}
	m := NewMembership(4)
	if died, healed := m.Sync(w); died != 0 || healed != 0 {
		t.Fatalf("healthy sync: died=%d healed=%d", died, healed)
	}
	w.failed[1], w.failed[3] = true, true
	if died, healed := m.Sync(w); died != 2 || healed != 0 {
		t.Fatalf("crash sync: died=%d healed=%d", died, healed)
	}
	if got := m.Excluded(); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Fatalf("Excluded = %v", got)
	}
	// Re-sync with no change is a no-op.
	if died, healed := m.Sync(w); died != 0 || healed != 0 {
		t.Fatalf("steady sync: died=%d healed=%d", died, healed)
	}
	w.failed[1] = false
	if died, healed := m.Sync(w); died != 0 || healed != 1 {
		t.Fatalf("heal sync: died=%d healed=%d", died, healed)
	}
	if got := m.Excluded(); !reflect.DeepEqual(got, []int{3}) {
		t.Fatalf("Excluded after heal = %v", got)
	}
	if m.Epoch(1) != 2 {
		t.Fatalf("rank 1 epoch = %d after one kill/heal cycle, want 2", m.Epoch(1))
	}
}

func TestMembershipSyncWithoutReporterIsInert(t *testing.T) {
	m := NewMembership(2)
	m.Exclude(0)
	// A world without the HealthReporter capability must leave the view
	// untouched.
	if died, healed := m.Sync(stubWorld{}); died != 0 || healed != 0 {
		t.Fatalf("capability-less sync: died=%d healed=%d", died, healed)
	}
	if got := m.Excluded(); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("Excluded = %v", got)
	}
}
