package runtime

// Future represents an asynchronous one-sided operation in flight. Wait
// blocks until the operation has completed; on timed backends it also
// advances the waiter's modeled clock to the operation's completion time.
// Futures model the future objects returned by get_tile_async in Table 1
// of the paper.
type Future interface {
	// Wait blocks until the operation has completed. Safe to call from
	// multiple goroutines and more than once.
	Wait()
	// Done reports whether the operation has completed without blocking.
	Done() bool
}

// goFuture is the goroutine-backed Future used by in-process backends.
type goFuture struct {
	done chan struct{}
}

// GoFuture runs op on its own goroutine and returns a Future that completes
// when op returns.
func GoFuture(op func()) Future {
	f := &goFuture{done: make(chan struct{})}
	go func() {
		defer close(f.done)
		op()
	}()
	return f
}

// completedFuture is the shared already-done Future. Being a zero-size
// value it never allocates, which matters because the execution hot path
// creates one per fetch on backends that complete copies at issue time.
type completedFuture struct{}

func (completedFuture) Wait()      {}
func (completedFuture) Done() bool { return true }

// CompletedFuture returns a Future that is already done. It is used when a
// tile happens to be local and no communication is necessary — so the
// prefetch pipeline can treat local and remote tiles uniformly — and by
// backends whose asynchronous operations complete at issue time.
func CompletedFuture() Future { return completedFuture{} }

func (f *goFuture) Wait() { <-f.done }

func (f *goFuture) Done() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}
