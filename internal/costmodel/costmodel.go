// Package costmodel implements the cost model of §4.3: a Roofline estimate
// for local GEMMs (based on the device's arithmetic peak and memory
// bandwidth) and a bandwidth-based estimate for communication (bytes
// divided by the link bandwidth between the process and the remote tile,
// which differs across network topology). The model prices whole execution
// plans, advises the stationary-matrix choice, and scores candidate IR
// schedules for the lowering strategies in package ir.
package costmodel

import (
	"slicing/internal/gpusim"
	"slicing/internal/simnet"
	"slicing/internal/universal"
)

// Model prices operations for one evaluation system.
type Model struct {
	Topo simnet.Topology
	Dev  gpusim.Device

	// gemmMemo, when non-nil (see Memoize), caches GemmCost by shape.
	gemmMemo map[gemmShape]float64
}

type gemmShape struct{ m, n, k int }

// New returns a cost model over the given system.
func New(topo simnet.Topology, dev gpusim.Device) *Model {
	return &Model{Topo: topo, Dev: dev}
}

// Memoize caches GemmCost results by shape and returns the model. A plan's
// steps reuse a handful of tile shapes, so pricing thousands of ranks ×
// steps during an autotune search collapses to a few Roofline evaluations.
// The cache is not synchronized: memoized models must stay on a single
// goroutine (the timed backends share one Model across concurrent PEs and
// therefore must not call this).
func (md *Model) Memoize() *Model {
	md.gemmMemo = make(map[gemmShape]float64)
	return md
}

// GemmCost returns the Roofline-estimated seconds for a local m×n×k GEMM.
func (md *Model) GemmCost(m, n, k int) float64 {
	if md.gemmMemo != nil {
		s := gemmShape{m, n, k}
		c, ok := md.gemmMemo[s]
		if !ok {
			c = md.Dev.GemmTime(m, n, k) + md.Dev.LaunchOverhead
			md.gemmMemo[s] = c
		}
		return c
	}
	return md.Dev.GemmTime(m, n, k) + md.Dev.LaunchOverhead
}

// FetchCost returns the seconds to copy bytes from src to dst.
func (md *Model) FetchCost(src, dst, bytes int) float64 {
	if src == dst {
		return float64(bytes) / md.Dev.MemBW
	}
	return simnet.TransferTime(md.Topo, src, dst, float64(bytes)) + md.Dev.LaunchOverhead
}

// AccumCost returns the seconds for an accumulate of bytes from rank into
// dst's memory, at the measured fraction of copy bandwidth. Across a node
// boundary (simnet.NodeMapper topologies) the accumulate is the §3
// get+put round trip — two full transfers — matching what the timed
// backends charge, so plan estimates and timed runs price the inter-node
// regime identically.
func (md *Model) AccumCost(rank, dst, bytes int) float64 {
	if rank == dst {
		return 2*float64(bytes)/md.Dev.MemBW + md.Dev.LaunchOverhead
	}
	if nm, ok := md.Topo.(simnet.NodeMapper); ok && nm.NodeOf(rank) != nm.NodeOf(dst) {
		return md.FetchCost(dst, rank, bytes) + md.FetchCost(rank, dst, bytes)
	}
	bw := md.Topo.Bandwidth(rank, dst)
	return md.Dev.AccumTime(float64(bytes), bw) + md.Topo.Latency(rank, dst) + md.Dev.LaunchOverhead
}

// StepCost breaks one plan step into its communication and compute parts.
type StepCost struct {
	Comm, Compute float64
}

// StepCost prices one step of a plan executed by rank.
func (md *Model) StepCost(rank int, s universal.Step) StepCost {
	var c StepCost
	if s.FetchA {
		c.Comm += md.FetchCost(s.ASrc, rank, s.ABytes)
	}
	if s.FetchB {
		c.Comm += md.FetchCost(s.BSrc, rank, s.BBytes)
	}
	op := s.Op
	c.Compute += md.GemmCost(op.M.Len(), op.N.Len(), op.K.Len())
	if s.CLocal {
		c.Compute += md.AccumCost(rank, rank, s.AccumBytes)
	} else {
		c.Comm += md.AccumCost(rank, s.CDst, s.AccumBytes)
	}
	return c
}

// PlanCost is the overlapped-execution estimate for a whole plan: with
// perfect communication/computation overlap the runtime of a schedule is
// the maximum of its total communication time and total computation time
// (§4.3 prices each output IR op as that same maximum).
type PlanCost struct {
	Comm, Compute float64
}

// Total returns the overlapped runtime estimate.
func (pc PlanCost) Total() float64 {
	if pc.Comm > pc.Compute {
		return pc.Comm
	}
	return pc.Compute
}

// Serial returns the no-overlap estimate (communication plus computation).
func (pc PlanCost) Serial() float64 { return pc.Comm + pc.Compute }

// PlanCost prices rank's whole plan.
func (md *Model) PlanCost(plan universal.Plan) PlanCost {
	var pc PlanCost
	for _, s := range plan.Steps {
		sc := md.StepCost(plan.Rank, s)
		pc.Comm += sc.Comm
		pc.Compute += sc.Compute
	}
	return pc
}

// ProblemCost prices a whole problem under a stationary strategy as the
// slowest rank's overlapped plan cost, plus the replica reduction of C when
// it is replicated.
func (md *Model) ProblemCost(prob universal.Problem, stat universal.Stationary) float64 {
	p := prob.A.World().NumPE()
	worst := 0.0
	for rank := 0; rank < p; rank++ {
		plan := universal.BuildPlan(rank, prob, stat, 0)
		if t := md.PlanCost(plan).Total(); t > worst {
			worst = t
		}
	}
	if prob.C.Replication() > 1 {
		worst += md.reduceCost(prob)
	}
	return worst
}

func (md *Model) reduceCost(prob universal.Problem) float64 {
	p := prob.A.World().NumPE()
	worst := 0.0
	for rank := 0; rank < p; rank++ {
		if prob.C.ReplicaOf(rank) == 0 {
			continue
		}
		dst := prob.C.RankFor(prob.C.SlotOf(rank), 0)
		var t float64
		for _, idx := range prob.C.OwnedTiles(rank) {
			t += md.AccumCost(rank, dst, prob.C.TileBounds(idx).Area()*4)
		}
		if t > worst {
			worst = t
		}
	}
	return worst
}

// ChooseStationary evaluates all three data movement strategies with the
// cost model and returns the cheapest, the "straightforward to verify via a
// cost model" selection the paper describes in §4.
func (md *Model) ChooseStationary(prob universal.Problem) (universal.Stationary, float64) {
	best := universal.StationaryC
	bestCost := md.ProblemCost(prob, universal.StationaryC)
	for _, s := range []universal.Stationary{universal.StationaryB, universal.StationaryA} {
		if c := md.ProblemCost(prob, s); c < bestCost {
			best, bestCost = s, c
		}
	}
	return best, bestCost
}
