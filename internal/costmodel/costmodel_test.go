package costmodel

import (
	"testing"

	"slicing/internal/distmat"
	"slicing/internal/gpusim"
	"slicing/internal/shmem"
	"slicing/internal/simnet"
	"slicing/internal/universal"
)

func model(p int) *Model {
	return New(simnet.NewUniform(p, 100e9, 1000e9, 1e-6, "test"), gpusim.PresetH100Device())
}

func problem(p, m, n, k int, pa, pb, pc distmat.Partition) universal.Problem {
	w := shmem.NewWorld(p)
	a := distmat.New(w, m, k, pa, 1)
	b := distmat.New(w, k, n, pb, 1)
	c := distmat.New(w, m, n, pc, 1)
	return universal.NewProblem(c, a, b)
}

func TestGemmCostPositive(t *testing.T) {
	md := model(4)
	if md.GemmCost(128, 128, 128) <= 0 {
		t.Fatal("gemm cost must be positive")
	}
	if md.GemmCost(1024, 1024, 1024) <= md.GemmCost(128, 128, 128) {
		t.Fatal("bigger gemm must cost more")
	}
}

func TestFetchCostLocalVsRemote(t *testing.T) {
	md := model(4)
	local := md.FetchCost(1, 1, 1<<20)
	remote := md.FetchCost(0, 1, 1<<20)
	if local >= remote {
		t.Fatalf("local fetch (%g) should be cheaper than remote (%g)", local, remote)
	}
}

func TestAccumCostSlowerThanFetch(t *testing.T) {
	md := model(4)
	fetch := md.FetchCost(0, 1, 1<<20)
	accum := md.AccumCost(0, 1, 1<<20)
	if accum <= fetch {
		t.Fatalf("remote accumulate (%g) should cost more than get (%g) at 0.8x bandwidth", accum, fetch)
	}
}

func TestPlanCostTotalIsMax(t *testing.T) {
	pc := PlanCost{Comm: 3, Compute: 5}
	if pc.Total() != 5 {
		t.Fatalf("Total = %g", pc.Total())
	}
	if pc.Serial() != 8 {
		t.Fatalf("Serial = %g", pc.Serial())
	}
}

func TestProblemCostPositiveAndScales(t *testing.T) {
	md := model(4)
	small := md.ProblemCost(problem(4, 256, 256, 256, distmat.RowBlock{}, distmat.ColBlock{}, distmat.Block2D{}), universal.StationaryC)
	big := md.ProblemCost(problem(4, 1024, 1024, 1024, distmat.RowBlock{}, distmat.ColBlock{}, distmat.Block2D{}), universal.StationaryC)
	if small <= 0 || big <= small {
		t.Fatalf("problem cost does not scale: small %g, big %g", small, big)
	}
}

// The advisor must pick a strategy that avoids moving the dominant matrix.
func TestChooseStationaryAvoidsMovingGiantMatrix(t *testing.T) {
	md := model(8)
	mdTopo := New(simnet.NewUniform(8, 26.5e9, 1000e9, 1e-6, "slow"), gpusim.PresetPVCDevice())
	_ = md
	// MLP-2-like: B is 48K x 12K (giant), C is small.
	prob := problem(8, 1024, 12288, 49152, distmat.ColBlock{}, distmat.RowBlock{}, distmat.Block2D{})
	best, cost := mdTopo.ChooseStationary(prob)
	if cost <= 0 {
		t.Fatal("cost must be positive")
	}
	costC := mdTopo.ProblemCost(prob, universal.StationaryC)
	costBest := mdTopo.ProblemCost(prob, best)
	if costBest > costC {
		t.Fatalf("advisor picked %v (%g) worse than StationaryC (%g)", best, costBest, costC)
	}
	if best == universal.StationaryC {
		t.Fatalf("with a giant B, advisor should not keep C stationary")
	}
}

// Cost-model ranking should broadly agree with the discrete-event
// simulation about which stationary strategy wins.
func TestCostModelAgreesWithSimulation(t *testing.T) {
	topo := simnet.PresetPVC()
	dev := gpusim.PresetPVCDevice()
	md := New(topo, dev)
	sys := universal.SimSystem{Topo: topo, Dev: dev}
	mk := func() universal.Problem {
		return problem(12, 1024, 12288, 49152, distmat.ColBlock{}, distmat.RowBlock{}, distmat.Block2D{})
	}
	best, _ := md.ChooseStationary(mk())

	simT := map[universal.Stationary]float64{}
	simBestT := -1.0
	for _, s := range []universal.Stationary{universal.StationaryA, universal.StationaryB, universal.StationaryC} {
		cfg := universal.DefaultConfig()
		cfg.Stationary = s
		res := universal.SimulateMultiply(mk(), cfg, sys)
		simT[s] = res.Makespan
		if simBestT < 0 || res.Makespan < simBestT {
			simBestT = res.Makespan
		}
	}
	// Strategies can be near-tied (here S-A and S-B both avoid moving the
	// giant B), so require the advisor's pick to be within 15% of the
	// simulation's best rather than an identical label.
	if simT[best] > simBestT*1.15 {
		t.Fatalf("cost model picked %v (simulated %.4gs), but best simulated is %.4gs", best, simT[best], simBestT)
	}
}

func TestStepCostSplitsCommCompute(t *testing.T) {
	md := model(4)
	prob := problem(4, 64, 64, 64, distmat.RowBlock{}, distmat.ColBlock{}, distmat.Block2D{})
	plan := universal.BuildPlan(0, prob, universal.StationaryC, 0)
	var sawComm, sawCompute bool
	for _, s := range plan.Steps {
		sc := md.StepCost(0, s)
		if sc.Compute > 0 {
			sawCompute = true
		}
		if sc.Comm > 0 {
			sawComm = true
		}
	}
	if !sawCompute {
		t.Fatal("no compute cost in any step")
	}
	if !sawComm {
		t.Fatal("no communication cost in any step (block2d C over 4 PEs must fetch)")
	}
}
