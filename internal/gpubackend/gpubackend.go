// Package gpubackend is the gpusim stream/event-timed execution backend:
// a runtime.Backend that performs the same real data movement as the
// in-process shmem backend while scheduling every operation on modeled
// per-device engines — a compute stream and directional copy engines per
// PE, plus the network ports of the simnet topology — on one shared
// gpusim.Timeline.
//
// Where internal/simbackend advances a single virtual clock per PE, this
// backend gives each device the engine structure of a real GPU runtime:
//
//   - one compute stream, which serializes the device's GEMMs (reported by
//     executors through runtime.ChargeGemm), its local accumulate kernels,
//     and — on devices with Device.AccumComputeInterference set (H100,
//     §5.2) — remote accumulate kernels other PEs launch into it;
//   - Device.CopyInEngines copy-in engines, which carry the DMA of gets
//     this PE issues (each op lands on the least-loaded engine and queues
//     only when all are busy — an H100 has more DMA engines than a PVC
//     tile, so the same prefetch depth queues on one device and overlaps
//     on the other);
//   - Device.CopyOutEngines copy-out engines, which carry puts and the
//     egress half of accumulates this PE issues;
//   - the network: per-PE egress/ingress ports on scalar topologies (the
//     same contention simbackend models), or — when the topology is
//     link-routed (internal/fabric via simnet.Routed) — one resource per
//     fabric link, with every transfer occupying its whole static route,
//     so transfers with different endpoints contend on shared switch
//     uplinks, NICs, and rails, and per-link accounting is reported
//     through runtime.FabricStatsOf.
//
// On multi-node topologies (simnet.NodeMapper), AccumulateAdd between PEs
// on different machines is automatically rerouted through the §3 get+put
// path — RDMA-only inter-node fabrics offer no remote atomics — with the
// put's stream op gated on the get's completion event.
//
// Every operation is enqueued as a gpusim.StreamOp: it may not start before
// the issuing PE's host clock (NotBefore), before the events it waits on
// have fired, or while any engine or port it occupies is busy. The gap
// between "ready" and "started" is queue delay, and the time remote
// accumulates occupy victim compute streams is interference — the two
// signals the paper's H100 results hinge on and a single-clock model is
// structurally blind to. Worlds report both through runtime.StreamStatsOf.
//
// Synchronous operations advance the caller's host clock to the op's
// completion; asynchronous operations enqueue at issue and advance the
// clock only when the future is waited on, so PrefetchDepth and MaxInflight
// shape the modeled pipeline exactly as they shape the real one — and,
// unlike simbackend, issuing more in-flight work than the engines can
// absorb shows up as measured queue delay rather than disappearing into a
// serialized clock. Durations come from the shared §4.3 cost tables
// (internal/costmodel), so the three timed estimators price identical work
// identically and differ only in contention structure.
package gpubackend

import (
	"fmt"
	"sync"

	"slicing/internal/costmodel"
	"slicing/internal/fabric"
	"slicing/internal/gpusim"
	rt "slicing/internal/runtime"
	"slicing/internal/shmem"
	"slicing/internal/simnet"
)

// Backend builds stream/event-timed worlds over one evaluation system (an
// interconnect topology plus a device model, e.g. Table 2's PVC or H100
// node).
type Backend struct {
	Topo simnet.Topology
	Dev  gpusim.Device
}

// New returns a backend for the given system.
func New(topo simnet.Topology, dev gpusim.Device) Backend {
	return Backend{Topo: topo, Dev: dev}
}

// Name identifies the backend.
func (b Backend) Name() string { return "gpusim:" + b.Topo.Name() }

// NewWorld creates a timed world of p PEs. p must match the topology.
func (b Backend) NewWorld(p int) rt.World {
	if p != b.Topo.NumPE() {
		panic(fmt.Sprintf("gpubackend: world of %d PEs over %d-PE topology %s",
			p, b.Topo.NumPE(), b.Topo.Name()))
	}
	w := &World{
		inner:    shmem.NewWorld(p),
		topo:     b.Topo,
		dev:      b.Dev,
		cost:     costmodel.New(b.Topo, b.Dev),
		tl:       gpusim.NewTimeline(),
		host:     make([]float64, p),
		snapshot: make([]float64, p),
		compute:  make([]*gpusim.Stream, p),
		copyIn:   make([][]*gpusim.Stream, p),
		copyOut:  make([][]*gpusim.Stream, p),
	}
	w.routed, _ = b.Topo.(simnet.Routed)
	w.nodes, _ = b.Topo.(simnet.NodeMapper)
	nIn, nOut := b.Dev.NumCopyInEngines(), b.Dev.NumCopyOutEngines()
	for i := 0; i < p; i++ {
		w.compute[i] = w.tl.NewStream(fmt.Sprintf("pe%d.compute", i))
		w.copyIn[i] = engineStreams(w.tl, fmt.Sprintf("pe%d.copy-in", i), nIn)
		w.copyOut[i] = engineStreams(w.tl, fmt.Sprintf("pe%d.copy-out", i), nOut)
	}
	if w.routed != nil {
		n := w.routed.NumLinks()
		w.linkRes = make([]gpusim.ResourceID, n)
		w.linkBytes = make([]int64, n)
		for i := 0; i < n; i++ {
			w.linkRes[i] = w.tl.AddResource(w.routed.LinkName(i))
		}
	} else {
		w.egress = make([]gpusim.ResourceID, p)
		w.ingress = make([]gpusim.ResourceID, p)
		for i := 0; i < p; i++ {
			w.egress[i] = w.tl.AddResource(fmt.Sprintf("pe%d.egress", i))
			w.ingress[i] = w.tl.AddResource(fmt.Sprintf("pe%d.ingress", i))
		}
	}
	return w
}

// engineStreams registers n same-role DMA engine streams for one PE. A
// single engine keeps the historical name; multiple engines are numbered.
func engineStreams(tl *gpusim.Timeline, base string, n int) []*gpusim.Stream {
	streams := make([]*gpusim.Stream, n)
	for e := 0; e < n; e++ {
		name := base
		if n > 1 {
			name = fmt.Sprintf("%s%d", base, e)
		}
		streams[e] = tl.NewStream(name)
	}
	return streams
}

// World is a stream/event-timed world: real symmetric memory (delegated to
// an inner shmem world) plus modeled per-device engines on a shared
// timeline and a host clock per PE.
type World struct {
	inner  *shmem.World
	topo   simnet.Topology
	dev    gpusim.Device
	cost   *costmodel.Model
	routed simnet.Routed     // non-nil when topo models individual links
	nodes  simnet.NodeMapper // non-nil when topo spans machines

	tl      *gpusim.Timeline
	compute []*gpusim.Stream    // per-PE compute stream (GEMMs, accumulate kernels)
	copyIn  [][]*gpusim.Stream  // per-PE get DMA engines (Device.CopyInEngines)
	copyOut [][]*gpusim.Stream  // per-PE put/accumulate-egress DMA engines
	egress  []gpusim.ResourceID // per-PE fabric egress port (scalar topologies)
	ingress []gpusim.ResourceID // per-PE fabric ingress port (scalar topologies)
	linkRes []gpusim.ResourceID // per-fabric-link resource (routed topologies)

	mu           sync.Mutex
	host         []float64 // per-PE host clock: when the PE's thread is at
	snapshot     []float64 // host-clock snapshots for barrier time-sync
	linkBytes    []int64   // per-link payload bytes (routed topologies)
	interference float64   // seconds remote accums occupied victim compute streams
}

// Compile-time checks against the runtime contract.
var (
	_ rt.Backend      = Backend{}
	_ rt.World        = (*World)(nil)
	_ rt.TimedWorld   = (*World)(nil)
	_ rt.StreamTimer  = (*World)(nil)
	_ rt.FabricTimer  = (*World)(nil)
	_ rt.LinkDegrader = (*World)(nil)
	_ rt.PE           = (*pe)(nil)
	_ rt.Clock        = (*pe)(nil)
	_ rt.GemmTimer    = (*pe)(nil)
)

// World returns the world itself, satisfying runtime.Allocator.
func (w *World) World() rt.World { return w }

// NumPE returns the number of processing elements.
func (w *World) NumPE() int { return w.inner.NumPE() }

// AllocSymmetric reserves a segment of n float32 on every PE.
func (w *World) AllocSymmetric(n int) rt.SegmentID { return w.inner.AllocSymmetric(n) }

// SegmentStorage returns rank's backing array for host-side initialization.
func (w *World) SegmentStorage(seg rt.SegmentID, rank int) []float32 {
	return w.inner.SegmentStorage(seg, rank)
}

// SegmentLen returns the per-PE length of a segment.
func (w *World) SegmentLen(seg rt.SegmentID) int { return w.inner.SegmentLen(seg) }

// Stats returns the world's traffic counters (identical to what the shmem
// backend would count for the same run).
func (w *World) Stats() rt.Stats { return w.inner.Stats() }

// ResetStats zeroes the traffic counters.
func (w *World) ResetStats() { w.inner.ResetStats() }

// Run executes body on every PE. Host clocks and engine schedules persist
// across calls so a multi-phase workload accumulates one timeline; use
// ResetTime between independent measurements.
func (w *World) Run(body func(pe rt.PE)) {
	w.inner.Run(func(inner rt.PE) {
		body(&pe{inner: inner, w: w, rank: inner.Rank()})
	})
}

// PredictedSeconds returns the modeled wall-clock so far: the furthest
// point reached by any PE's host clock or any engine's schedule (an
// enqueued op can outlive the host clock of the PE that issued it). Call
// it after Run.
func (w *World) PredictedSeconds() float64 {
	w.mu.Lock()
	worst := 0.0
	for _, c := range w.host {
		if c > worst {
			worst = c
		}
	}
	w.mu.Unlock()
	if end := w.tl.End(); end > worst {
		worst = end
	}
	return worst
}

// PETime returns one rank's host-clock time.
func (w *World) PETime(rank int) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.host[rank]
}

// ResetTime rewinds the model to t=0: host clocks, engine schedules, queue
// and interference accounting, and per-link byte counters.
func (w *World) ResetTime() {
	w.mu.Lock()
	for i := range w.host {
		w.host[i] = 0
	}
	for i := range w.linkBytes {
		w.linkBytes[i] = 0
	}
	w.interference = 0
	w.mu.Unlock()
	w.tl.Reset()
}

// FabricLinkStats reports per-link busy/queue/byte accounting from the
// timeline's link resources (runtime.FabricTimer). It returns nil on
// scalar topologies — absence is information, like StreamStatsOf.
func (w *World) FabricLinkStats() []rt.LinkStats {
	if w.routed == nil {
		return nil
	}
	out := make([]rt.LinkStats, len(w.linkRes))
	w.mu.Lock()
	for i := range out {
		out[i].Bytes = w.linkBytes[i]
	}
	w.mu.Unlock()
	for i, res := range w.linkRes {
		out[i].Link = w.routed.LinkName(i)
		out[i].BusySeconds = w.tl.BusyFor(res)
		out[i].QueueDelaySeconds = w.tl.QueueDelayFor(res)
	}
	return out
}

// crossNode reports whether two PEs live on different machines of a
// multi-node topology — the boundary past which remote atomics are
// unavailable and AccumulateAdd must take the §3 get+put path.
func (w *World) crossNode(a, b int) bool {
	return w.nodes != nil && w.nodes.NodeOf(a) != w.nodes.NodeOf(b)
}

// DegradeLink downtrains the named fabric link mid-run
// (runtime.LinkDegrader) via the race-safe fabric.DegradeAt path; ops
// priced after the call see the degraded rail. Returns false on scalar
// topologies or unknown link names.
func (w *World) DegradeLink(name string, factor float64) bool {
	ft, ok := w.topo.(interface{ Fabric() *fabric.Fabric })
	if !ok {
		return false
	}
	f := ft.Fabric()
	for li := 0; li < f.NumLinks(); li++ {
		if f.LinkAt(li).Name == name {
			f.DegradeAt(li, factor)
			return true
		}
	}
	return false
}

// netResources returns the network resources a src→dst transfer occupies:
// the whole static link route on a routed topology, or the legacy
// egress/ingress port pair on a scalar one. nil for device-local copies.
func (w *World) netResources(src, dst, bytes int) []gpusim.ResourceID {
	if src == dst {
		return nil
	}
	if w.routed == nil {
		return []gpusim.ResourceID{w.egress[src], w.ingress[dst]}
	}
	route := w.routed.RouteIDs(src, dst)
	res := make([]gpusim.ResourceID, len(route))
	w.mu.Lock()
	for i, li := range route {
		res[i] = w.linkRes[li]
		w.linkBytes[li] += int64(bytes)
	}
	w.mu.Unlock()
	return res
}

// nextCopyIn picks the engine for this PE's next get: the one whose
// queue drains earliest, the dispatch a hardware runtime's
// least-loaded engine selection approximates. Ops therefore queue only
// when every engine is busy.
func (w *World) nextCopyIn(rank int) *gpusim.Stream {
	return leastLoaded(w.copyIn[rank])
}

// nextCopyOut picks the engine for this PE's next put/accumulate egress.
func (w *World) nextCopyOut(rank int) *gpusim.Stream {
	return leastLoaded(w.copyOut[rank])
}

// leastLoaded returns the stream whose tail event fires earliest (ties
// go to the lowest-numbered engine, keeping schedules deterministic).
func leastLoaded(streams []*gpusim.Stream) *gpusim.Stream {
	best := streams[0]
	bestT := best.LastEvent().Time()
	for _, s := range streams[1:] {
		if t := s.LastEvent().Time(); t < bestT {
			best, bestT = s, t
		}
	}
	return best
}

// StreamStats reports the run's stream-level delay signals
// (runtime.StreamTimer).
func (w *World) StreamStats() rt.StreamStats {
	w.mu.Lock()
	interference := w.interference
	w.mu.Unlock()
	return rt.StreamStats{
		QueueDelaySeconds:        w.tl.QueueDelay(),
		AccumInterferenceSeconds: interference,
		StreamOps:                w.tl.NumOps(),
	}
}

// Timeline exposes the underlying schedule for tests and trace rendering.
func (w *World) Timeline() *gpusim.Timeline { return w.tl }

// Topology returns the modeled interconnect.
func (w *World) Topology() simnet.Topology { return w.topo }

// Device returns the modeled device.
func (w *World) Device() gpusim.Device { return w.dev }

// hostNow reads rank's host clock.
func (w *World) hostNow(rank int) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.host[rank]
}

// hostAdvanceTo raises rank's host clock to at least t (sync-op completion
// and future waits).
func (w *World) hostAdvanceTo(rank int, t float64) {
	w.mu.Lock()
	if t > w.host[rank] {
		w.host[rank] = t
	}
	w.mu.Unlock()
}

// hostElapse charges rank's host clock with busy time that bypasses the
// engines (runtime.Clock's Elapse).
func (w *World) hostElapse(rank int, dur float64) {
	w.mu.Lock()
	w.host[rank] += dur
	w.mu.Unlock()
}

// noteInterference records dur seconds of a remote accumulate occupying a
// victim compute stream.
func (w *World) noteInterference(dur float64) {
	w.mu.Lock()
	w.interference += dur
	w.mu.Unlock()
}
