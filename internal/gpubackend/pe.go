package gpubackend

import (
	"slicing/internal/gpusim"
	rt "slicing/internal/runtime"
)

// pe is a stream/event-timed processing element: every one-sided operation
// delegates the real data movement to the inner shmem PE and enqueues its
// modeled counterpart on the device engines involved.
type pe struct {
	inner rt.PE
	w     *World
	rank  int
}

func (p *pe) Rank() int  { return p.rank }
func (p *pe) NumPE() int { return p.w.NumPE() }

// World returns the timed world, satisfying runtime.Allocator.
func (p *pe) World() rt.World { return p.w }

// AllocSymmetric performs a collective symmetric allocation (free in the
// timing model, as allocation is in the real runtimes' setup phase).
func (p *pe) AllocSymmetric(n int) rt.SegmentID { return p.inner.AllocSymmetric(n) }

// Local returns the zero-copy view of this PE's segment storage. Reading
// through it is device-local and free, like dereferencing HBM.
func (p *pe) Local(seg rt.SegmentID) []float32 { return p.inner.Local(seg) }

// enqueueGet models an n-element get from remote on this PE's copy-in
// engine (plus the fabric ports when the source is another device) and
// returns the modeled completion time.
func (p *pe) enqueueGet(remote, n int) float64 {
	w := p.w
	op := gpusim.StreamOp{
		Label: "get", Kind: gpusim.OpComm,
		NotBefore: w.hostNow(p.rank),
		Duration:  w.cost.FetchCost(remote, p.rank, 4*n),
	}
	if remote != p.rank {
		op.Resources = []gpusim.ResourceID{w.egress[remote], w.ingress[p.rank]}
	}
	return w.copyIn[p.rank].Enqueue(op).Time()
}

// enqueuePut models an n-element put to remote on this PE's copy-out
// engine plus the fabric ports.
func (p *pe) enqueuePut(remote, n int) float64 {
	w := p.w
	op := gpusim.StreamOp{
		Label: "put", Kind: gpusim.OpComm,
		NotBefore: w.hostNow(p.rank),
		Duration:  w.cost.FetchCost(p.rank, remote, 4*n),
	}
	if remote != p.rank {
		op.Resources = []gpusim.ResourceID{w.egress[p.rank], w.ingress[remote]}
	}
	return w.copyOut[p.rank].Enqueue(op).Time()
}

// enqueueAccum models an n-element accumulate into remote. A local
// accumulate is a kernel on this device's own compute stream. A remote
// accumulate moves data through this PE's copy-out engine and the fabric
// ports; on devices that model accumulate/GEMM interference (§5.2) the
// accumulate kernel additionally occupies the *target's* compute engine
// for its whole duration, delaying the victim's own GEMMs.
func (p *pe) enqueueAccum(remote, n int) float64 {
	w := p.w
	dur := w.cost.AccumCost(p.rank, remote, 4*n)
	op := gpusim.StreamOp{
		Label: "accum", Kind: gpusim.OpAccum,
		NotBefore: w.hostNow(p.rank),
		Duration:  dur,
	}
	if remote == p.rank {
		return w.compute[p.rank].Enqueue(op).Time()
	}
	op.Resources = []gpusim.ResourceID{w.egress[p.rank], w.ingress[remote]}
	if w.dev.AccumComputeInterference {
		op.Resources = append(op.Resources, w.compute[remote].Resource())
		w.noteInterference(dur)
	}
	return w.copyOut[p.rank].Enqueue(op).Time()
}

func (p *pe) Get(dst []float32, seg rt.SegmentID, remote, offset int) {
	p.inner.Get(dst, seg, remote, offset)
	p.w.hostAdvanceTo(p.rank, p.enqueueGet(remote, len(dst)))
}

func (p *pe) Put(src []float32, seg rt.SegmentID, remote, offset int) {
	p.inner.Put(src, seg, remote, offset)
	p.w.hostAdvanceTo(p.rank, p.enqueuePut(remote, len(src)))
}

func (p *pe) AccumulateAdd(src []float32, seg rt.SegmentID, remote, offset int) {
	p.inner.AccumulateAdd(src, seg, remote, offset)
	p.w.hostAdvanceTo(p.rank, p.enqueueAccum(remote, len(src)))
}

// AccumulateAddGetPut is the inter-node path (§3): priced as the full
// get + put round trip it performs on RDMA-only fabrics, with the two
// halves serialized on the host as the coarse lock requires.
func (p *pe) AccumulateAddGetPut(src []float32, seg rt.SegmentID, remote, offset int) {
	p.inner.AccumulateAddGetPut(src, seg, remote, offset)
	n := len(src)
	p.w.hostAdvanceTo(p.rank, p.enqueueGet(remote, n))
	p.w.hostAdvanceTo(p.rank, p.enqueuePut(remote, n))
}

func (p *pe) GetStrided(dst []float32, dstStride int, seg rt.SegmentID, remote, offset, srcStride, rows, cols int) {
	p.inner.GetStrided(dst, dstStride, seg, remote, offset, srcStride, rows, cols)
	p.w.hostAdvanceTo(p.rank, p.enqueueGet(remote, rows*cols))
}

func (p *pe) PutStrided(src []float32, srcStride int, seg rt.SegmentID, remote, offset, dstStride, rows, cols int) {
	p.inner.PutStrided(src, srcStride, seg, remote, offset, dstStride, rows, cols)
	p.w.hostAdvanceTo(p.rank, p.enqueuePut(remote, rows*cols))
}

func (p *pe) AccumulateAddStrided(src []float32, srcStride int, seg rt.SegmentID, remote, offset, dstStride, rows, cols int) {
	p.inner.AccumulateAddStrided(src, srcStride, seg, remote, offset, dstStride, rows, cols)
	p.w.hostAdvanceTo(p.rank, p.enqueueAccum(remote, rows*cols))
}

// GetAsync performs the copy immediately (any moment between issue and Wait
// is a legal completion time for a one-sided read, and the source region is
// stable under the algorithms' barrier discipline) but enqueues the modeled
// DMA now — at the host clock of issue — and defers the clock charge to
// Wait. Back-to-back async gets queue on the copy-in engine, so prefetch
// depth beyond what the engine can absorb surfaces as queue delay.
func (p *pe) GetAsync(dst []float32, seg rt.SegmentID, remote, offset int) rt.Future {
	p.inner.Get(dst, seg, remote, offset)
	return &streamFuture{w: p.w, rank: p.rank, end: p.enqueueGet(remote, len(dst))}
}

func (p *pe) GetStridedAsync(dst []float32, dstStride int, seg rt.SegmentID, remote, offset, srcStride, rows, cols int) rt.Future {
	p.inner.GetStrided(dst, dstStride, seg, remote, offset, srcStride, rows, cols)
	return &streamFuture{w: p.w, rank: p.rank, end: p.enqueueGet(remote, rows*cols)}
}

func (p *pe) AccumulateAddAsync(src []float32, seg rt.SegmentID, remote, offset int) rt.Future {
	p.inner.AccumulateAdd(src, seg, remote, offset)
	return &streamFuture{w: p.w, rank: p.rank, end: p.enqueueAccum(remote, len(src))}
}

// Barrier synchronizes real execution and host clocks: after the barrier
// every PE's host clock is the maximum any PE had on entry, the semantics a
// hardware barrier has for wall time. Device engines keep their schedules —
// an accumulate still in flight on a victim's compute stream keeps
// occupying it across the barrier, which is exactly how a kernel launched
// before a host-side barrier behaves.
func (p *pe) Barrier() {
	w := p.w
	w.mu.Lock()
	w.snapshot[p.rank] = w.host[p.rank]
	w.mu.Unlock()
	p.inner.Barrier() // all snapshots published
	w.mu.Lock()
	worst := 0.0
	for _, c := range w.snapshot {
		if c > worst {
			worst = c
		}
	}
	if worst > w.host[p.rank] {
		w.host[p.rank] = worst
	}
	w.mu.Unlock()
	p.inner.Barrier() // all clocks synced before anyone re-publishes
}

// Now returns this PE's host-clock time (runtime.Clock).
func (p *pe) Now() float64 { return p.w.hostNow(p.rank) }

// Elapse charges host-side busy time that bypasses the device engines
// (runtime.Clock).
func (p *pe) Elapse(seconds float64) {
	if seconds > 0 {
		p.w.hostElapse(p.rank, seconds)
	}
}

// ElapseGemm enqueues a roofline-priced m×n×k GEMM on this device's compute
// stream (runtime.GemmTimer). The kernel serializes behind whatever else
// occupies the compute engine — earlier GEMMs, local accumulate kernels,
// and, on interference devices, remote accumulates other PEs launched into
// this device — and the host clock advances to its completion.
func (p *pe) ElapseGemm(m, n, k int) {
	w := p.w
	end := w.compute[p.rank].Enqueue(gpusim.StreamOp{
		Label: "gemm", Kind: gpusim.OpCompute,
		NotBefore: w.hostNow(p.rank),
		Duration:  w.cost.GemmCost(m, n, k),
	}).Time()
	w.hostAdvanceTo(p.rank, end)
}

// streamFuture is an already-materialized transfer whose modeled completion
// time is end; waiting advances the waiter's host clock to it.
type streamFuture struct {
	w    *World
	rank int
	end  float64
}

func (f *streamFuture) Wait() { f.w.hostAdvanceTo(f.rank, f.end) }

// Done reports data completion, which on this backend is immediate (the
// copy happens at issue); only Wait charges the modeled completion time.
// Returning true keeps backend-portable polling loops terminating.
func (f *streamFuture) Done() bool { return true }
