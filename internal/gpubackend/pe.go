package gpubackend

import (
	"slicing/internal/gpusim"
	rt "slicing/internal/runtime"
)

// pe is a stream/event-timed processing element: every one-sided operation
// delegates the real data movement to the inner shmem PE and enqueues its
// modeled counterpart on the device engines involved.
type pe struct {
	inner rt.PE
	w     *World
	rank  int
}

func (p *pe) Rank() int  { return p.rank }
func (p *pe) NumPE() int { return p.w.NumPE() }

// World returns the timed world, satisfying runtime.Allocator.
func (p *pe) World() rt.World { return p.w }

// AllocSymmetric performs a collective symmetric allocation (free in the
// timing model, as allocation is in the real runtimes' setup phase).
func (p *pe) AllocSymmetric(n int) rt.SegmentID { return p.inner.AllocSymmetric(n) }

// Local returns the zero-copy view of this PE's segment storage. Reading
// through it is device-local and free, like dereferencing HBM.
func (p *pe) Local(seg rt.SegmentID) []float32 { return p.inner.Local(seg) }

// enqueueGet models an n-element get from remote on one of this PE's
// copy-in engines (plus the route's fabric links, or the legacy port pair,
// when the source is another device) and returns its completion event.
// waits, when valid, gates the DMA on earlier modeled work (the §3
// get-before-put ordering).
func (p *pe) enqueueGet(remote, n int, waits ...gpusim.Event) gpusim.Event {
	w := p.w
	op := gpusim.StreamOp{
		Label: "get", Kind: gpusim.OpComm,
		NotBefore: w.hostNow(p.rank),
		Duration:  w.cost.FetchCost(remote, p.rank, 4*n),
		Waits:     waits,
		Resources: w.netResources(remote, p.rank, 4*n),
	}
	return w.nextCopyIn(p.rank).Enqueue(op)
}

// enqueuePut models an n-element put to remote on one of this PE's
// copy-out engines plus the route's network resources.
func (p *pe) enqueuePut(remote, n int, waits ...gpusim.Event) gpusim.Event {
	w := p.w
	op := gpusim.StreamOp{
		Label: "put", Kind: gpusim.OpComm,
		NotBefore: w.hostNow(p.rank),
		Duration:  w.cost.FetchCost(p.rank, remote, 4*n),
		Waits:     waits,
		Resources: w.netResources(p.rank, remote, 4*n),
	}
	return w.nextCopyOut(p.rank).Enqueue(op)
}

// enqueueAccum models an n-element accumulate into remote. A local
// accumulate is a kernel on this device's own compute stream. A remote
// accumulate moves data through one of this PE's copy-out engines and the
// route's network resources; on devices that model accumulate/GEMM
// interference (§5.2) the accumulate kernel additionally occupies the
// *target's* compute engine for its whole duration, delaying the victim's
// own GEMMs.
func (p *pe) enqueueAccum(remote, n int) float64 {
	w := p.w
	dur := w.cost.AccumCost(p.rank, remote, 4*n)
	op := gpusim.StreamOp{
		Label: "accum", Kind: gpusim.OpAccum,
		NotBefore: w.hostNow(p.rank),
		Duration:  dur,
	}
	if remote == p.rank {
		return w.compute[p.rank].Enqueue(op).Time()
	}
	op.Resources = w.netResources(p.rank, remote, 4*n)
	if w.dev.AccumComputeInterference {
		op.Resources = append(op.Resources, w.compute[remote].Resource())
		w.noteInterference(dur)
	}
	return w.nextCopyOut(p.rank).Enqueue(op).Time()
}

// enqueueAccumGetPut models the §3 inter-node accumulate: a get of the
// remote region, then — gated on the get's completion event, as the
// coarse lock requires — a put of the summed result. It returns the put's
// completion time.
func (p *pe) enqueueAccumGetPut(remote, n int) float64 {
	get := p.enqueueGet(remote, n)
	return p.enqueuePut(remote, n, get).Time()
}

func (p *pe) Get(dst []float32, seg rt.SegmentID, remote, offset int) {
	p.inner.Get(dst, seg, remote, offset)
	p.w.hostAdvanceTo(p.rank, p.enqueueGet(remote, len(dst)).Time())
}

func (p *pe) Put(src []float32, seg rt.SegmentID, remote, offset int) {
	p.inner.Put(src, seg, remote, offset)
	p.w.hostAdvanceTo(p.rank, p.enqueuePut(remote, len(src)).Time())
}

func (p *pe) AccumulateAdd(src []float32, seg rt.SegmentID, remote, offset int) {
	if p.w.crossNode(p.rank, remote) {
		// §3: across a node boundary the RDMA fabric offers no remote
		// atomics, so the accumulate is automatically rerouted through the
		// coarse-lock get+put scheme and priced as the round trip it is.
		p.AccumulateAddGetPut(src, seg, remote, offset)
		return
	}
	p.inner.AccumulateAdd(src, seg, remote, offset)
	p.w.hostAdvanceTo(p.rank, p.enqueueAccum(remote, len(src)))
}

// AccumulateAddGetPut is the inter-node path (§3): priced as the full
// get + put round trip it performs on RDMA-only fabrics, the put's stream
// op gated on the get's completion event as the coarse lock requires.
func (p *pe) AccumulateAddGetPut(src []float32, seg rt.SegmentID, remote, offset int) {
	p.inner.AccumulateAddGetPut(src, seg, remote, offset)
	p.w.hostAdvanceTo(p.rank, p.enqueueAccumGetPut(remote, len(src)))
}

func (p *pe) GetStrided(dst []float32, dstStride int, seg rt.SegmentID, remote, offset, srcStride, rows, cols int) {
	p.inner.GetStrided(dst, dstStride, seg, remote, offset, srcStride, rows, cols)
	p.w.hostAdvanceTo(p.rank, p.enqueueGet(remote, rows*cols).Time())
}

func (p *pe) PutStrided(src []float32, srcStride int, seg rt.SegmentID, remote, offset, dstStride, rows, cols int) {
	p.inner.PutStrided(src, srcStride, seg, remote, offset, dstStride, rows, cols)
	p.w.hostAdvanceTo(p.rank, p.enqueuePut(remote, rows*cols).Time())
}

func (p *pe) AccumulateAddStrided(src []float32, srcStride int, seg rt.SegmentID, remote, offset, dstStride, rows, cols int) {
	if p.w.crossNode(p.rank, remote) {
		// §3 applies to strided accumulates too: per-row get+put round
		// trips on the data path (each destination row is contiguous),
		// priced as one rows×cols round trip — and, unlike the atomic
		// path, no accumulate kernel lands on the victim's compute stream.
		for r := 0; r < rows; r++ {
			p.inner.AccumulateAddGetPut(src[r*srcStride:r*srcStride+cols], seg, remote, offset+r*dstStride)
		}
		p.w.hostAdvanceTo(p.rank, p.enqueueAccumGetPut(remote, rows*cols))
		return
	}
	p.inner.AccumulateAddStrided(src, srcStride, seg, remote, offset, dstStride, rows, cols)
	p.w.hostAdvanceTo(p.rank, p.enqueueAccum(remote, rows*cols))
}

// GetAsync performs the copy immediately (any moment between issue and Wait
// is a legal completion time for a one-sided read, and the source region is
// stable under the algorithms' barrier discipline) but enqueues the modeled
// DMA now — at the host clock of issue — and defers the clock charge to
// Wait. Back-to-back async gets queue on the copy-in engine, so prefetch
// depth beyond what the engine can absorb surfaces as queue delay.
func (p *pe) GetAsync(dst []float32, seg rt.SegmentID, remote, offset int) rt.Future {
	p.inner.Get(dst, seg, remote, offset)
	return &streamFuture{w: p.w, rank: p.rank, end: p.enqueueGet(remote, len(dst)).Time()}
}

func (p *pe) GetStridedAsync(dst []float32, dstStride int, seg rt.SegmentID, remote, offset, srcStride, rows, cols int) rt.Future {
	p.inner.GetStrided(dst, dstStride, seg, remote, offset, srcStride, rows, cols)
	return &streamFuture{w: p.w, rank: p.rank, end: p.enqueueGet(remote, rows*cols).Time()}
}

func (p *pe) AccumulateAddAsync(src []float32, seg rt.SegmentID, remote, offset int) rt.Future {
	if p.w.crossNode(p.rank, remote) {
		// §3 inter-node path, asynchronous flavour: the get DMA is enqueued
		// at issue and the put is event-gated on it; only Wait charges the
		// round trip to the host clock.
		p.inner.AccumulateAddGetPut(src, seg, remote, offset)
		return &streamFuture{w: p.w, rank: p.rank, end: p.enqueueAccumGetPut(remote, len(src))}
	}
	p.inner.AccumulateAdd(src, seg, remote, offset)
	return &streamFuture{w: p.w, rank: p.rank, end: p.enqueueAccum(remote, len(src))}
}

// Barrier synchronizes real execution and host clocks: after the barrier
// every PE's host clock is the maximum any PE had on entry, the semantics a
// hardware barrier has for wall time. Device engines keep their schedules —
// an accumulate still in flight on a victim's compute stream keeps
// occupying it across the barrier, which is exactly how a kernel launched
// before a host-side barrier behaves.
func (p *pe) Barrier() {
	w := p.w
	w.mu.Lock()
	w.snapshot[p.rank] = w.host[p.rank]
	w.mu.Unlock()
	p.inner.Barrier() // all snapshots published
	w.mu.Lock()
	worst := 0.0
	for _, c := range w.snapshot {
		if c > worst {
			worst = c
		}
	}
	if worst > w.host[p.rank] {
		w.host[p.rank] = worst
	}
	w.mu.Unlock()
	p.inner.Barrier() // all clocks synced before anyone re-publishes
}

// Now returns this PE's host-clock time (runtime.Clock).
func (p *pe) Now() float64 { return p.w.hostNow(p.rank) }

// Elapse charges host-side busy time that bypasses the device engines
// (runtime.Clock).
func (p *pe) Elapse(seconds float64) {
	if seconds > 0 {
		p.w.hostElapse(p.rank, seconds)
	}
}

// ElapseGemm enqueues a roofline-priced m×n×k GEMM on this device's compute
// stream (runtime.GemmTimer). The kernel serializes behind whatever else
// occupies the compute engine — earlier GEMMs, local accumulate kernels,
// and, on interference devices, remote accumulates other PEs launched into
// this device — and the host clock advances to its completion.
func (p *pe) ElapseGemm(m, n, k int) {
	w := p.w
	end := w.compute[p.rank].Enqueue(gpusim.StreamOp{
		Label: "gemm", Kind: gpusim.OpCompute,
		NotBefore: w.hostNow(p.rank),
		Duration:  w.cost.GemmCost(m, n, k),
	}).Time()
	w.hostAdvanceTo(p.rank, end)
}

// streamFuture is an already-materialized transfer whose modeled completion
// time is end; waiting advances the waiter's host clock to it.
type streamFuture struct {
	w    *World
	rank int
	end  float64
}

func (f *streamFuture) Wait() { f.w.hostAdvanceTo(f.rank, f.end) }

// Done reports data completion, which on this backend is immediate (the
// copy happens at issue); only Wait charges the modeled completion time.
// Returning true keeps backend-portable polling loops terminating.
func (f *streamFuture) Done() bool { return true }
