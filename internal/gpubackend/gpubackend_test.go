package gpubackend_test

import (
	"math"
	"testing"

	"slicing/internal/distmat"
	"slicing/internal/gpubackend"
	"slicing/internal/gpusim"
	rt "slicing/internal/runtime"
	"slicing/internal/simnet"
	"slicing/internal/universal"
)

// flatDevice is a device model with no shape penalty and no launch
// overhead, so op durations are exact closed forms.
func flatDevice(interference bool) gpusim.Device {
	return gpusim.Device{
		Name: "flat", PeakFlops: 1e12, MemBW: 1e12,
		AccumBWFactor:            1,
		AccumComputeInterference: interference,
	}
}

// pairTopo is a 2-PE zero-latency link at 1 GB/s.
func pairTopo() simnet.Topology {
	return simnet.NewUniform(2, 1e9, 1e12, 0, "pair")
}

func approx(got, want float64) bool {
	return math.Abs(got-want) <= 1e-12+1e-9*math.Abs(want)
}

// TestAsyncGetsQueueOnCopyEngine pins the queue-depth effect: two
// back-to-back async gets issued by one PE serialize on its copy-in engine,
// so the second completes a full transfer later and its wait is recorded as
// queue delay — the contention a single-clock backend cannot represent.
func TestAsyncGetsQueueOnCopyEngine(t *testing.T) {
	w := gpubackend.New(pairTopo(), flatDevice(false)).NewWorld(2).(*gpubackend.World)
	const n = 250 // 1000 bytes over 1 GB/s = 1 µs per get
	const dur = 1e-6
	seg := w.AllocSymmetric(n)
	w.Run(func(pe rt.PE) {
		if pe.Rank() != 0 {
			return
		}
		buf1, buf2 := make([]float32, n), make([]float32, n)
		f1 := pe.GetAsync(buf1, seg, 1, 0)
		f2 := pe.GetAsync(buf2, seg, 1, 0)
		f1.Wait()
		f2.Wait()
	})
	if got := w.PredictedSeconds(); !approx(got, 2*dur) {
		t.Fatalf("two serialized 1µs gets should end at 2µs, got %g", got)
	}
	ss := w.StreamStats()
	if !approx(ss.QueueDelaySeconds, dur) {
		t.Fatalf("second get should have queued for %g, recorded %g", dur, ss.QueueDelaySeconds)
	}
	if ss.StreamOps != 2 {
		t.Fatalf("expected 2 stream ops, got %d", ss.StreamOps)
	}
}

// TestRemoteAccumulateOccupiesVictimCompute pins the §5.2 interference
// model: an accumulate launched into a device with
// AccumComputeInterference set occupies that device's compute engine, so a
// GEMM the victim runs concurrently starts only after the accumulate
// kernel drains. The same schedule on a non-interference device overlaps
// fully.
func TestRemoteAccumulateOccupiesVictimCompute(t *testing.T) {
	const n = 500 // 2000 bytes over 1 GB/s at factor 1 = 2 µs accumulate
	const accumDur = 2e-6
	const gm = 100 // 100³ GEMM at 1 TFLOP/s = 2e6 flops / 1e12 = 2 µs
	const gemmDur = 2e-6

	run := func(interference bool) *gpubackend.World {
		w := gpubackend.New(pairTopo(), flatDevice(interference)).NewWorld(2).(*gpubackend.World)
		seg := w.AllocSymmetric(n)
		w.Run(func(pe rt.PE) {
			if pe.Rank() == 0 {
				// Launch the accumulate and only then release rank 1, without
				// advancing any host clock (the future is waited later), so
				// rank 1's GEMM is issued at host time 0 while the accumulate
				// kernel occupies (or not) its compute engine.
				f := pe.AccumulateAddAsync(make([]float32, n), seg, 1, 0)
				pe.Barrier()
				f.Wait()
			} else {
				pe.Barrier()
				rt.ChargeGemm(pe, gm, gm, gm)
			}
		})
		return w
	}

	victim := run(true)
	if got := victim.PredictedSeconds(); !approx(got, accumDur+gemmDur) {
		t.Fatalf("interference: GEMM should wait out the accumulate (%g), got %g", accumDur+gemmDur, got)
	}
	ss := victim.StreamStats()
	if !approx(ss.AccumInterferenceSeconds, accumDur) {
		t.Fatalf("interference seconds = %g, want %g", ss.AccumInterferenceSeconds, accumDur)
	}
	if !approx(ss.QueueDelaySeconds, accumDur) {
		t.Fatalf("the delayed GEMM should record %g queue delay, got %g", accumDur, ss.QueueDelaySeconds)
	}

	clean := run(false)
	if got := clean.PredictedSeconds(); !approx(got, math.Max(accumDur, gemmDur)) {
		t.Fatalf("no interference: accumulate and GEMM should overlap to %g, got %g", math.Max(accumDur, gemmDur), got)
	}
	if ss := clean.StreamStats(); ss.AccumInterferenceSeconds != 0 {
		t.Fatalf("non-interference device recorded interference %g", ss.AccumInterferenceSeconds)
	}
}

// TestCopyEngineCountFromDeviceModel pins the per-device DMA engine
// satellite: the same pair of back-to-back local gets serializes on a
// one-engine device and overlaps fully on a two-engine device (local
// copies touch no network ports, so the engines are the only resource).
func TestCopyEngineCountFromDeviceModel(t *testing.T) {
	const n = 250
	dev := flatDevice(false)
	dev.MemBW = 1e9 // 1000 bytes per local get = 1 µs
	const dur = 1e-6

	run := func(engines int) float64 {
		d := dev
		d.CopyInEngines = engines
		w := gpubackend.New(pairTopo(), d).NewWorld(2).(*gpubackend.World)
		seg := w.AllocSymmetric(n)
		w.Run(func(pe rt.PE) {
			if pe.Rank() != 0 {
				return
			}
			f1 := pe.GetAsync(make([]float32, n), seg, 0, 0)
			f2 := pe.GetAsync(make([]float32, n), seg, 0, 0)
			f1.Wait()
			f2.Wait()
		})
		return w.PredictedSeconds()
	}

	if got := run(1); !approx(got, 2*dur) {
		t.Fatalf("one copy engine: two local gets should serialize to %g, got %g", 2*dur, got)
	}
	if got := run(2); !approx(got, dur) {
		t.Fatalf("two copy engines: two local gets should overlap to %g, got %g", dur, got)
	}
	h100, pvc := gpusim.PresetH100Device(), gpusim.PresetPVCDevice()
	if h100.NumCopyInEngines() <= pvc.NumCopyInEngines() ||
		h100.NumCopyOutEngines() <= pvc.NumCopyOutEngines() {
		t.Fatalf("H100 must model more DMA engines than a PVC tile: %d/%d vs %d/%d",
			h100.NumCopyInEngines(), h100.NumCopyOutEngines(),
			pvc.NumCopyInEngines(), pvc.NumCopyOutEngines())
	}
}

// TestGemmChargeMatchesDeviceModel mirrors the simbackend test: a 1-PE
// world multiplying two local tiles must spend at least the device model's
// GEMM time and no more than GEMM + local accumulate + launch overheads.
func TestGemmChargeMatchesDeviceModel(t *testing.T) {
	topo := simnet.NewUniform(1, 1e9, 1e12, 0, "single")
	dev := flatDevice(false)
	w := gpubackend.New(topo, dev).NewWorld(1).(*gpubackend.World)
	a := distmat.New(w, 32, 32, distmat.RowBlock{}, 1)
	b := distmat.New(w, 32, 32, distmat.RowBlock{}, 1)
	c := distmat.New(w, 32, 32, distmat.RowBlock{}, 1)
	w.Run(func(pe rt.PE) {
		a.FillRandom(pe, 1)
		b.FillRandom(pe, 2)
		universal.Multiply(pe, c, a, b, universal.DefaultConfig())
	})
	gemm := dev.GemmTime(32, 32, 32)
	pred := w.PredictedSeconds()
	if pred < gemm {
		t.Fatalf("predicted %g is below the single GEMM's device time %g", pred, gemm)
	}
	upper := gemm + 2*4*32*32/dev.MemBW + 10*dev.LaunchOverhead
	if pred > upper*1.01 {
		t.Fatalf("predicted %g exceeds modeled work %g", pred, upper)
	}
}

// TestResetTimeRewindsModelOnly checks ResetTime zeroes clocks, engines,
// and delay accounting without touching data or traffic counters.
func TestResetTimeRewindsModelOnly(t *testing.T) {
	w := gpubackend.New(pairTopo(), flatDevice(false)).NewWorld(2).(*gpubackend.World)
	const n = 16
	seg := w.AllocSymmetric(n)
	w.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			pe.Put(make([]float32, n), seg, 1, 0)
		}
	})
	if w.PredictedSeconds() <= 0 {
		t.Fatal("put charged no modeled time")
	}
	before := w.Stats()
	w.ResetTime()
	if got := w.PredictedSeconds(); got != 0 {
		t.Fatalf("ResetTime left %g on the clock", got)
	}
	if ss := w.StreamStats(); ss.StreamOps != 0 || ss.QueueDelaySeconds != 0 {
		t.Fatalf("ResetTime left stream stats %+v", ss)
	}
	if after := w.Stats(); after != before {
		t.Fatalf("ResetTime changed traffic counters: %+v -> %+v", before, after)
	}
}

// TestWorldSizeMustMatchTopology pins the constructor contract shared with
// simbackend.
func TestWorldSizeMustMatchTopology(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for world size != topology size")
		}
	}()
	gpubackend.New(pairTopo(), flatDevice(false)).NewWorld(3)
}
