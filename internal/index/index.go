// Package index implements the slicing (index arithmetic) primitives at the
// heart of the universal one-sided algorithm: half-open 1-D intervals, 2-D
// rectangles, and regular tile grids with interval→tile overlap queries.
//
// All intervals are half-open [Begin, End) in global matrix coordinates,
// matching the bound() arithmetic of Algorithm 1/2 in the paper.
package index

import "fmt"

// Interval is a half-open range [Begin, End) of global indices.
type Interval struct {
	Begin, End int
}

// NewInterval returns the interval [begin, end). It panics if end < begin,
// which always indicates a logic error in slicing arithmetic.
func NewInterval(begin, end int) Interval {
	if end < begin {
		panic(fmt.Sprintf("index: invalid interval [%d, %d)", begin, end))
	}
	return Interval{Begin: begin, End: end}
}

// Len returns the number of indices covered by the interval.
func (iv Interval) Len() int { return iv.End - iv.Begin }

// Empty reports whether the interval covers no indices.
func (iv Interval) Empty() bool { return iv.End <= iv.Begin }

// Contains reports whether i lies within the interval.
func (iv Interval) Contains(i int) bool { return i >= iv.Begin && i < iv.End }

// ContainsInterval reports whether other lies entirely within iv.
func (iv Interval) ContainsInterval(other Interval) bool {
	if other.Empty() {
		return true
	}
	return other.Begin >= iv.Begin && other.End <= iv.End
}

// Intersect returns the intersection of two intervals. This is the bound()
// operation from Algorithm 1 (lines 29-31): the overlap of two tile extents.
// The result may be empty, in which case Empty() reports true and Len() is
// clamped to zero semantics by callers.
func (iv Interval) Intersect(other Interval) Interval {
	b := max(iv.Begin, other.Begin)
	e := min(iv.End, other.End)
	if e < b {
		return Interval{Begin: b, End: b}
	}
	return Interval{Begin: b, End: e}
}

// Overlaps reports whether the two intervals share at least one index.
func (iv Interval) Overlaps(other Interval) bool {
	return max(iv.Begin, other.Begin) < min(iv.End, other.End)
}

// Shift returns the interval translated by offset.
func (iv Interval) Shift(offset int) Interval {
	return Interval{Begin: iv.Begin + offset, End: iv.End + offset}
}

// Localize re-expresses iv relative to origin, i.e. the global-to-local
// offset conversion footnoted in §4.1 of the paper.
func (iv Interval) Localize(origin int) Interval {
	return iv.Shift(-origin)
}

func (iv Interval) String() string { return fmt.Sprintf("[%d:%d)", iv.Begin, iv.End) }

// Rect is an axis-aligned 2-D index region: a row interval × column interval.
type Rect struct {
	Rows, Cols Interval
}

// NewRect builds a rectangle from row and column bounds.
func NewRect(rowBegin, rowEnd, colBegin, colEnd int) Rect {
	return Rect{Rows: NewInterval(rowBegin, rowEnd), Cols: NewInterval(colBegin, colEnd)}
}

// Shape returns the (rows, cols) extent of the rectangle.
func (r Rect) Shape() (rows, cols int) { return r.Rows.Len(), r.Cols.Len() }

// Area returns the number of elements covered.
func (r Rect) Area() int {
	if r.Empty() {
		return 0
	}
	return r.Rows.Len() * r.Cols.Len()
}

// Empty reports whether the rectangle covers no elements.
func (r Rect) Empty() bool { return r.Rows.Empty() || r.Cols.Empty() }

// Intersect returns the overlap of two rectangles.
func (r Rect) Intersect(other Rect) Rect {
	return Rect{Rows: r.Rows.Intersect(other.Rows), Cols: r.Cols.Intersect(other.Cols)}
}

// Overlaps reports whether two rectangles share at least one element.
func (r Rect) Overlaps(other Rect) bool {
	return r.Rows.Overlaps(other.Rows) && r.Cols.Overlaps(other.Cols)
}

// ContainsRect reports whether other lies entirely within r.
func (r Rect) ContainsRect(other Rect) bool {
	return r.Rows.ContainsInterval(other.Rows) && r.Cols.ContainsInterval(other.Cols)
}

// Localize re-expresses the rectangle relative to an origin element.
func (r Rect) Localize(rowOrigin, colOrigin int) Rect {
	return Rect{Rows: r.Rows.Localize(rowOrigin), Cols: r.Cols.Localize(colOrigin)}
}

func (r Rect) String() string { return fmt.Sprintf("%v x %v", r.Rows, r.Cols) }

// TileIdx identifies a tile within a tile grid by (row, col) grid position.
type TileIdx struct {
	Row, Col int
}

func (t TileIdx) String() string { return fmt.Sprintf("(%d,%d)", t.Row, t.Col) }

// Grid describes a regular tiling of a Rows×Cols matrix into tiles of shape
// TileRows×TileCols. Edge tiles may be ragged (smaller) when the tile shape
// does not divide the matrix shape. Grid implements the tile_bounds and
// overlapping_tiles primitives from Table 1 of the paper.
type Grid struct {
	Rows, Cols         int // matrix shape
	TileRows, TileCols int // nominal tile shape
}

// NewGrid constructs a tile grid. It panics on non-positive dimensions,
// which always indicates a construction bug rather than a runtime condition.
func NewGrid(rows, cols, tileRows, tileCols int) Grid {
	if rows <= 0 || cols <= 0 || tileRows <= 0 || tileCols <= 0 {
		panic(fmt.Sprintf("index: invalid grid %dx%d tiles %dx%d", rows, cols, tileRows, tileCols))
	}
	return Grid{Rows: rows, Cols: cols, TileRows: tileRows, TileCols: tileCols}
}

// GridShape returns the number of tile rows and tile columns
// (the grid_shape() primitive).
func (g Grid) GridShape() (tileRows, tileCols int) {
	return ceilDiv(g.Rows, g.TileRows), ceilDiv(g.Cols, g.TileCols)
}

// NumTiles returns the total number of tiles in the grid.
func (g Grid) NumTiles() int {
	tr, tc := g.GridShape()
	return tr * tc
}

// Valid reports whether idx addresses a tile inside the grid.
func (g Grid) Valid(idx TileIdx) bool {
	tr, tc := g.GridShape()
	return idx.Row >= 0 && idx.Row < tr && idx.Col >= 0 && idx.Col < tc
}

// TileBounds returns the global index rectangle covered by tile idx
// (the tile_bounds() primitive). Edge tiles are clipped to the matrix shape.
func (g Grid) TileBounds(idx TileIdx) Rect {
	if !g.Valid(idx) {
		panic(fmt.Sprintf("index: tile %v out of grid", idx))
	}
	r0 := idx.Row * g.TileRows
	c0 := idx.Col * g.TileCols
	return NewRect(r0, min(r0+g.TileRows, g.Rows), c0, min(c0+g.TileCols, g.Cols))
}

// TileShape returns the (rows, cols) extent of tile idx after edge clipping.
func (g Grid) TileShape(idx TileIdx) (rows, cols int) {
	b := g.TileBounds(idx)
	return b.Shape()
}

// TileAt returns the index of the tile containing global element (row, col).
func (g Grid) TileAt(row, col int) TileIdx {
	if row < 0 || row >= g.Rows || col < 0 || col >= g.Cols {
		panic(fmt.Sprintf("index: element (%d,%d) outside %dx%d matrix", row, col, g.Rows, g.Cols))
	}
	return TileIdx{Row: row / g.TileRows, Col: col / g.TileCols}
}

// OverlappingTiles returns, in row-major order, every tile whose bounds
// intersect the given slice of the matrix (the overlapping_tiles()
// primitive). The slice is clipped to the matrix shape first; an empty
// clipped slice yields no tiles.
func (g Grid) OverlappingTiles(slice Rect) []TileIdx {
	clipped := slice.Intersect(NewRect(0, g.Rows, 0, g.Cols))
	if clipped.Empty() {
		return nil
	}
	rBegin := clipped.Rows.Begin / g.TileRows
	rEnd := (clipped.Rows.End-1)/g.TileRows + 1
	cBegin := clipped.Cols.Begin / g.TileCols
	cEnd := (clipped.Cols.End-1)/g.TileCols + 1
	out := make([]TileIdx, 0, (rEnd-rBegin)*(cEnd-cBegin))
	for r := rBegin; r < rEnd; r++ {
		for c := cBegin; c < cEnd; c++ {
			out = append(out, TileIdx{Row: r, Col: c})
		}
	}
	return out
}

// RowPanel returns the full-width slice covering the given row interval,
// i.e. M(rows, :) — used by Algorithm 1 line 13.
func (g Grid) RowPanel(rows Interval) Rect {
	return Rect{Rows: rows, Cols: NewInterval(0, g.Cols)}
}

// ColPanel returns the full-height slice covering the given column interval,
// i.e. M(:, cols) — used by Algorithm 2 line 13.
func (g Grid) ColPanel(cols Interval) Rect {
	return Rect{Rows: NewInterval(0, g.Rows), Cols: cols}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
