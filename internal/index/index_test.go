package index

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	iv := NewInterval(3, 10)
	if got := iv.Len(); got != 7 {
		t.Fatalf("Len = %d, want 7", got)
	}
	if iv.Empty() {
		t.Fatal("interval should not be empty")
	}
	if !iv.Contains(3) || !iv.Contains(9) {
		t.Fatal("endpoints containment wrong")
	}
	if iv.Contains(10) || iv.Contains(2) {
		t.Fatal("half-open semantics violated")
	}
}

func TestIntervalEmpty(t *testing.T) {
	iv := NewInterval(5, 5)
	if !iv.Empty() || iv.Len() != 0 {
		t.Fatalf("empty interval misbehaves: %v", iv)
	}
	if iv.Contains(5) {
		t.Fatal("empty interval should contain nothing")
	}
}

func TestIntervalPanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewInterval(10,3) should panic")
		}
	}()
	NewInterval(10, 3)
}

func TestIntervalIntersect(t *testing.T) {
	cases := []struct {
		a, b, want Interval
	}{
		{NewInterval(0, 10), NewInterval(5, 15), NewInterval(5, 10)},
		{NewInterval(0, 10), NewInterval(10, 20), Interval{10, 10}},
		{NewInterval(0, 10), NewInterval(20, 30), Interval{20, 20}},
		{NewInterval(3, 7), NewInterval(0, 100), NewInterval(3, 7)},
		{NewInterval(5, 5), NewInterval(0, 10), Interval{5, 5}},
	}
	for _, c := range cases {
		got := c.a.Intersect(c.b)
		if got.Empty() != c.want.Empty() {
			t.Errorf("%v ∩ %v emptiness = %v, want %v", c.a, c.b, got.Empty(), c.want.Empty())
		}
		if !got.Empty() && got != c.want {
			t.Errorf("%v ∩ %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestIntervalIntersectCommutative(t *testing.T) {
	f := func(a0, a1, b0, b1 uint8) bool {
		a := NewInterval(int(a0), int(a0)+int(a1))
		b := NewInterval(int(b0), int(b0)+int(b1))
		x, y := a.Intersect(b), b.Intersect(a)
		return x.Empty() == y.Empty() && (x.Empty() || x == y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: i ∈ a∩b  ⇔  i ∈ a && i ∈ b.
func TestIntervalIntersectMembership(t *testing.T) {
	f := func(a0, a1, b0, b1, probe uint8) bool {
		a := NewInterval(int(a0), int(a0)+int(a1))
		b := NewInterval(int(b0), int(b0)+int(b1))
		x := a.Intersect(b)
		i := int(probe)
		return x.Contains(i) == (a.Contains(i) && b.Contains(i))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestIntervalOverlapsConsistentWithIntersect(t *testing.T) {
	f := func(a0, a1, b0, b1 uint8) bool {
		a := NewInterval(int(a0), int(a0)+int(a1))
		b := NewInterval(int(b0), int(b0)+int(b1))
		return a.Overlaps(b) == !a.Intersect(b).Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntervalShiftLocalize(t *testing.T) {
	iv := NewInterval(10, 20)
	if got := iv.Shift(5); got != NewInterval(15, 25) {
		t.Fatalf("Shift = %v", got)
	}
	if got := iv.Localize(10); got != NewInterval(0, 10) {
		t.Fatalf("Localize = %v", got)
	}
}

func TestIntervalContainsInterval(t *testing.T) {
	outer := NewInterval(0, 100)
	if !outer.ContainsInterval(NewInterval(0, 100)) {
		t.Fatal("interval should contain itself")
	}
	if !outer.ContainsInterval(NewInterval(50, 50)) {
		t.Fatal("empty interval is contained anywhere")
	}
	if outer.ContainsInterval(NewInterval(50, 101)) {
		t.Fatal("should not contain overhanging interval")
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(0, 4, 2, 8)
	rows, cols := r.Shape()
	if rows != 4 || cols != 6 {
		t.Fatalf("Shape = (%d,%d), want (4,6)", rows, cols)
	}
	if r.Area() != 24 {
		t.Fatalf("Area = %d, want 24", r.Area())
	}
	if r.Empty() {
		t.Fatal("rect should not be empty")
	}
}

func TestRectIntersectAndOverlap(t *testing.T) {
	a := NewRect(0, 10, 0, 10)
	b := NewRect(5, 15, 5, 15)
	got := a.Intersect(b)
	if got != NewRect(5, 10, 5, 10) {
		t.Fatalf("Intersect = %v", got)
	}
	if !a.Overlaps(b) {
		t.Fatal("a and b overlap")
	}
	c := NewRect(0, 10, 10, 20) // shares an edge, no elements
	if a.Overlaps(c) {
		t.Fatal("edge-adjacent rects do not overlap")
	}
	if a.Intersect(c).Area() != 0 {
		t.Fatal("edge-adjacent intersection must be empty")
	}
}

func TestRectContainsAndLocalize(t *testing.T) {
	a := NewRect(10, 20, 30, 40)
	if !a.ContainsRect(NewRect(12, 18, 31, 39)) {
		t.Fatal("containment failed")
	}
	if a.ContainsRect(NewRect(12, 21, 31, 39)) {
		t.Fatal("should not contain row-overhanging rect")
	}
	loc := a.Localize(10, 30)
	if loc != NewRect(0, 10, 0, 10) {
		t.Fatalf("Localize = %v", loc)
	}
}

func TestGridShape(t *testing.T) {
	g := NewGrid(100, 100, 30, 40)
	tr, tc := g.GridShape()
	if tr != 4 || tc != 3 {
		t.Fatalf("GridShape = (%d,%d), want (4,3)", tr, tc)
	}
	if g.NumTiles() != 12 {
		t.Fatalf("NumTiles = %d", g.NumTiles())
	}
}

func TestGridTileBoundsRagged(t *testing.T) {
	g := NewGrid(100, 100, 30, 40)
	// Last row of tiles is ragged: rows 90..100.
	b := g.TileBounds(TileIdx{3, 2})
	if b != NewRect(90, 100, 80, 100) {
		t.Fatalf("ragged tile bounds = %v", b)
	}
	b = g.TileBounds(TileIdx{0, 0})
	if b != NewRect(0, 30, 0, 40) {
		t.Fatalf("first tile bounds = %v", b)
	}
}

func TestGridTileAt(t *testing.T) {
	g := NewGrid(100, 100, 30, 40)
	for _, c := range []struct {
		r, c int
		want TileIdx
	}{
		{0, 0, TileIdx{0, 0}},
		{29, 39, TileIdx{0, 0}},
		{30, 40, TileIdx{1, 1}},
		{99, 99, TileIdx{3, 2}},
	} {
		if got := g.TileAt(c.r, c.c); got != c.want {
			t.Errorf("TileAt(%d,%d) = %v, want %v", c.r, c.c, got, c.want)
		}
	}
}

func TestGridTileBoundsPanicOutOfRange(t *testing.T) {
	g := NewGrid(10, 10, 5, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("TileBounds on invalid index should panic")
		}
	}()
	g.TileBounds(TileIdx{2, 0})
}

func TestOverlappingTilesExact(t *testing.T) {
	g := NewGrid(100, 100, 30, 40)
	tiles := g.OverlappingTiles(NewRect(25, 35, 0, 100))
	want := []TileIdx{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}
	if len(tiles) != len(want) {
		t.Fatalf("got %v, want %v", tiles, want)
	}
	for i := range want {
		if tiles[i] != want[i] {
			t.Fatalf("got %v, want %v", tiles, want)
		}
	}
}

func TestOverlappingTilesEmptySlice(t *testing.T) {
	g := NewGrid(100, 100, 30, 40)
	if tiles := g.OverlappingTiles(NewRect(50, 50, 0, 100)); tiles != nil {
		t.Fatalf("empty slice should overlap no tiles, got %v", tiles)
	}
}

func TestOverlappingTilesClipsToMatrix(t *testing.T) {
	g := NewGrid(100, 100, 30, 40)
	tiles := g.OverlappingTiles(NewRect(95, 300, 95, 400))
	if len(tiles) != 1 || tiles[0] != (TileIdx{3, 2}) {
		t.Fatalf("clipped overlap = %v", tiles)
	}
}

// Property: a tile is returned by OverlappingTiles iff its bounds overlap
// the (clipped) query slice.
func TestOverlappingTilesSoundAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		rows := 1 + rng.Intn(200)
		cols := 1 + rng.Intn(200)
		g := NewGrid(rows, cols, 1+rng.Intn(50), 1+rng.Intn(50))
		r0 := rng.Intn(rows + 10)
		r1 := r0 + rng.Intn(rows+10)
		c0 := rng.Intn(cols + 10)
		c1 := c0 + rng.Intn(cols+10)
		query := NewRect(r0, r1, c0, c1)
		got := map[TileIdx]bool{}
		for _, idx := range g.OverlappingTiles(query) {
			got[idx] = true
		}
		tr, tc := g.GridShape()
		for r := 0; r < tr; r++ {
			for c := 0; c < tc; c++ {
				idx := TileIdx{r, c}
				want := g.TileBounds(idx).Overlaps(query)
				if got[idx] != want {
					t.Fatalf("grid %+v query %v tile %v: returned=%v want=%v",
						g, query, idx, got[idx], want)
				}
			}
		}
	}
}

// Property: tiles exactly partition the matrix — every element belongs to
// exactly one tile, and tile areas sum to the matrix area.
func TestGridTilesPartitionMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		rows := 1 + rng.Intn(150)
		cols := 1 + rng.Intn(150)
		g := NewGrid(rows, cols, 1+rng.Intn(60), 1+rng.Intn(60))
		area := 0
		tr, tc := g.GridShape()
		for r := 0; r < tr; r++ {
			for c := 0; c < tc; c++ {
				area += g.TileBounds(TileIdx{r, c}).Area()
			}
		}
		if area != rows*cols {
			t.Fatalf("tile areas sum to %d, want %d (grid %+v)", area, rows*cols, g)
		}
		// Spot-check element membership.
		for probe := 0; probe < 20; probe++ {
			er, ec := rng.Intn(rows), rng.Intn(cols)
			idx := g.TileAt(er, ec)
			if b := g.TileBounds(idx); !b.Rows.Contains(er) || !b.Cols.Contains(ec) {
				t.Fatalf("TileAt(%d,%d)=%v but bounds %v exclude it", er, ec, idx, b)
			}
		}
	}
}

func TestRowColPanels(t *testing.T) {
	g := NewGrid(100, 200, 10, 10)
	rp := g.RowPanel(NewInterval(5, 15))
	if rp != NewRect(5, 15, 0, 200) {
		t.Fatalf("RowPanel = %v", rp)
	}
	cp := g.ColPanel(NewInterval(20, 30))
	if cp != NewRect(0, 100, 20, 30) {
		t.Fatalf("ColPanel = %v", cp)
	}
}
