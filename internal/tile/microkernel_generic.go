//go:build !amd64 || purego

package tile

import "unsafe"

// microKernelAccum computes acc = Apanel·Bpanel for one mr×nr register
// tile: ap points at a packed mr-row strip (kc×mr, k-major), bp at a
// packed nr-column strip (kc×nr, k-major). acc is overwritten, not
// accumulated into. Portable fallback for the SSE2 kernel: fixed-size
// array accesses keep the inner loop bounds-check-free, and the 4-way K
// unroll amortizes loop overhead.
func microKernelAccum(acc *[mr * nr]float32, ap, bp *float32, kc int) {
	aps := unsafe.Slice(ap, kc*mr)
	bps := unsafe.Slice(bp, kc*nr)
	var acc0, acc1, acc2, acc3 [nr]float32
	kk := 0
	for ; kk+3 < kc; kk += 4 {
		a := (*[4 * mr]float32)(aps[kk*mr:])
		b0 := (*[nr]float32)(bps[kk*nr:])
		b1 := (*[nr]float32)(bps[(kk+1)*nr:])
		b2 := (*[nr]float32)(bps[(kk+2)*nr:])
		b3 := (*[nr]float32)(bps[(kk+3)*nr:])
		a00, a01, a02, a03 := a[0], a[1], a[2], a[3]
		a10, a11, a12, a13 := a[4], a[5], a[6], a[7]
		a20, a21, a22, a23 := a[8], a[9], a[10], a[11]
		a30, a31, a32, a33 := a[12], a[13], a[14], a[15]
		for j := 0; j < nr; j++ {
			v0, v1, v2, v3 := b0[j], b1[j], b2[j], b3[j]
			acc0[j] += a00*v0 + a10*v1 + a20*v2 + a30*v3
			acc1[j] += a01*v0 + a11*v1 + a21*v2 + a31*v3
			acc2[j] += a02*v0 + a12*v1 + a22*v2 + a32*v3
			acc3[j] += a03*v0 + a13*v1 + a23*v2 + a33*v3
		}
	}
	for ; kk < kc; kk++ {
		a := (*[mr]float32)(aps[kk*mr:])
		b0 := (*[nr]float32)(bps[kk*nr:])
		a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
		for j := 0; j < nr; j++ {
			v := b0[j]
			acc0[j] += a0 * v
			acc1[j] += a1 * v
			acc2[j] += a2 * v
			acc3[j] += a3 * v
		}
	}
	copy(acc[0*nr:1*nr], acc0[:])
	copy(acc[1*nr:2*nr], acc1[:])
	copy(acc[2*nr:3*nr], acc2[:])
	copy(acc[3*nr:4*nr], acc3[:])
}
