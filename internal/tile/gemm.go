package tile

import "fmt"

// GemmNaive computes C += A*B with the textbook triple loop. It is the
// correctness oracle for the optimized kernels and for every distributed
// algorithm in this repository.
func GemmNaive(c, a, b *Matrix) {
	checkGemmShapes(c, a, b)
	for i := 0; i < a.Rows; i++ {
		for l := 0; l < a.Cols; l++ {
			av := a.Data[i*a.Stride+l]
			if av == 0 {
				continue
			}
			brow := b.Data[l*b.Stride : l*b.Stride+b.Cols]
			crow := c.Data[i*c.Stride : i*c.Stride+c.Cols]
			for j := range brow {
				crow[j] += av * brow[j]
			}
		}
	}
}

// blockSize is the cache-blocking factor for GemmBlocked. 64×64 float32
// panels (16 KiB each) fit comfortably in L1/L2 on commodity CPUs.
const blockSize = 64

// packThreshold is the problem volume (m·k·n) below which Gemm skips the
// packed kernel: for tiny products the O(mk + kn) packing traffic and the
// micro-kernel's fixed setup are not amortized by the O(mnk) compute, so
// the cache-blocked kernel wins. Measured crossover on AVX2/FMA hardware
// is between 8³ and 12³ (the packed kernel is already ~1.5× faster at 12³
// and ~6× at 24³), so the threshold sits at ~10³.
const packThreshold = 1024

// Gemm computes C += A*B. It is the default single-goroutine local GEMM:
// large products go through the packed register-blocked kernel
// (GemmPacked); tiny ones, where packing cannot be amortized, through the
// cache-blocked kernel (GemmBlocked).
func Gemm(c, a, b *Matrix) {
	checkGemmShapes(c, a, b)
	if a.Rows*a.Cols*b.Cols < packThreshold {
		gemmBlocked(c, a, b)
		return
	}
	gemmPacked(c, a, b)
}

// GemmBlocked computes C += A*B with the cache-blocked, 2-way unrolled
// kernel (the repository's original local GEMM). It remains exported as the
// baseline the packed kernel is benchmarked against and as the small-case
// path of Gemm.
func GemmBlocked(c, a, b *Matrix) {
	checkGemmShapes(c, a, b)
	gemmBlocked(c, a, b)
}

func gemmBlocked(c, a, b *Matrix) {
	m, k, n := a.Rows, a.Cols, b.Cols
	for i0 := 0; i0 < m; i0 += blockSize {
		iMax := min(i0+blockSize, m)
		for l0 := 0; l0 < k; l0 += blockSize {
			lMax := min(l0+blockSize, k)
			for j0 := 0; j0 < n; j0 += blockSize {
				jMax := min(j0+blockSize, n)
				gemmBlock(c, a, b, i0, iMax, l0, lMax, j0, jMax)
			}
		}
	}
}

// gemmBlock computes the contribution of A[i0:iMax, l0:lMax]*B[l0:lMax,
// j0:jMax] into C[i0:iMax, j0:jMax] with a 2-way unrolled inner kernel.
func gemmBlock(c, a, b *Matrix, i0, iMax, l0, lMax, j0, jMax int) {
	for i := i0; i < iMax; i++ {
		crow := c.Data[i*c.Stride+j0 : i*c.Stride+jMax]
		arow := a.Data[i*a.Stride : i*a.Stride+a.Cols]
		l := l0
		for ; l+1 < lMax; l += 2 {
			a0, a1 := arow[l], arow[l+1]
			if a0 == 0 && a1 == 0 {
				continue
			}
			b0 := b.Data[l*b.Stride+j0 : l*b.Stride+jMax]
			b1 := b.Data[(l+1)*b.Stride+j0 : (l+1)*b.Stride+jMax]
			for j := range crow {
				crow[j] += a0*b0[j] + a1*b1[j]
			}
		}
		for ; l < lMax; l++ {
			a0 := arow[l]
			if a0 == 0 {
				continue
			}
			b0 := b.Data[l*b.Stride+j0 : l*b.Stride+jMax]
			for j := range crow {
				crow[j] += a0 * b0[j]
			}
		}
	}
}

func checkGemmShapes(c, a, b *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("tile: gemm shape mismatch C %dx%d = A %dx%d * B %dx%d",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// Flops returns the number of floating-point operations for an m×k by k×n
// GEMM (2*m*n*k: one multiply and one add per inner-product term).
func Flops(m, n, k int) float64 { return 2 * float64(m) * float64(n) * float64(k) }
