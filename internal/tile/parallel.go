package tile

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Shared-pack parallel GEMM. The PR 3 GemmParallel split C into row bands
// and ran the whole packed kernel per band — so every worker re-packed all
// of B, multiplying the O(k·n) packing traffic by the worker count. Here
// one (pc, jc) B panel is packed exactly once into shared scratch (the
// packing itself split across the crew by strip ranges), then the mc-row A
// panels of that block fan out to the crew: each worker packs its own A
// panel into pooled scratch and streams it over the shared packed B.
// Synchronization is two WaitGroup phases per (pc, jc) block; work is
// pulled from an atomic cursor, so load balance is dynamic and dispatching
// a unit allocates nothing.
//
// The crew is pooled and package-global: goroutines are spawned once
// (lazily, up to the largest worker count requested) and woken by pointer
// sends on a buffered channel, so steady-state GemmParallel calls spawn no
// goroutines and allocate nothing. A woken worker that finds the cursor
// exhausted simply goes back to sleep, which makes stale wake-ups after a
// phase (or call) has finished harmless.

// parPhase is what one fan-out executes: packing a B-panel strip range or
// one A panel's pack+multiply sweep.
type parPhase int8

const (
	phasePackB parPhase = iota
	phasePanels
)

// parState is one in-flight GemmParallel call's shared state. Pooled; a
// worker only touches fields after reading a unit index from the cursor,
// and begin() publishes all fields before opening the cursor.
type parState struct {
	kn *kernelImpl
	// Operand headers are stored by value (the Data slices still alias the
	// caller's buffers) so GemmParallel's *Matrix arguments do not escape to
	// the heap: the state itself is pooled and long-lived, and storing a
	// caller pointer into it would force every caller's header (e.g. a
	// stack-built partial-result view) to be heap-allocated.
	c, a, b Matrix
	bp      []float32 // shared packed B panel for the current (pc, jc) block

	// Current (pc, jc) block bounds.
	jc, pc, kc, nc int

	phase      parPhase
	unitStride int // strips (packB) or rows (panels) per unit
	// units is the current phase's fan-out width. Atomic because a stale
	// woken worker may read it while the next phase is being staged; the
	// parked cursor guarantees such a read never admits work, but the read
	// itself must not race the write.
	units  atomic.Int64
	cursor atomic.Int64
	wg     sync.WaitGroup
}

var parStatePool = sync.Pool{New: func() any {
	st := new(parState)
	st.cursor.Store(cursorExhausted) // born exhausted
	return st
}}

// The pooled crew. crewCh carries wake-up pointers, not work: all work
// assignment happens through the state's cursor.
var (
	crewCh   = make(chan *parState, 1024)
	crewSize atomic.Int64
)

const maxCrew = 256

func crewWorker() {
	for st := range crewCh {
		st.work()
	}
}

// ensureCrew grows the crew to at least n goroutines (capped at maxCrew).
func ensureCrew(n int) {
	if n > maxCrew {
		n = maxCrew
	}
	for {
		cur := crewSize.Load()
		if cur >= int64(n) {
			return
		}
		if crewSize.CompareAndSwap(cur, cur+1) {
			go crewWorker()
		}
	}
}

// cursorExhausted is the cursor's parked value between phases. It is far
// above any feasible unit count, so a stale worker's pull can never land
// inside a later phase's [0, units) window before that phase opens.
// Comparisons stay in int64 so 32-bit platforms cannot truncate it.
const cursorExhausted = 1 << 40

// work pulls unit indices until the current phase's cursor is exhausted.
// Safe to call at any time from any goroutine: if no phase is open the
// first pull fails and it returns immediately.
func (st *parState) work() {
	for {
		u := st.cursor.Add(1) - 1
		if u >= st.units.Load() {
			return
		}
		st.runUnit(int(u))
		st.wg.Done()
	}
}

func (st *parState) runUnit(u int) {
	switch st.phase {
	case phasePackB:
		strips := (st.nc + st.kn.nr - 1) / st.kn.nr
		s0 := u * st.unitStride
		s1 := min(s0+st.unitStride, strips)
		packBStrips(st.bp, &st.b, st.pc, st.jc, st.kc, st.nc, st.kn.nr, s0, s1)
	case phasePanels:
		lo := u * st.unitStride
		hi := min(lo+st.unitStride, st.a.Rows)
		s := gemmScratchPool.Get().(*gemmScratch)
		s.a = grow(s.a, st.kn.aScratchLen())
		// A unit may span several mc blocks (when there are few workers);
		// pack and multiply them one at a time to keep the packed A panel
		// L2-resident.
		for ic := lo; ic < hi; ic += st.kn.mc {
			mc := min(st.kn.mc, hi-ic)
			packA(s.a, &st.a, ic, st.pc, mc, st.kc, st.kn.mr)
			gemmPanels(&st.c, s.a, st.bp, ic, st.jc, mc, st.nc, st.kc, st.kn)
		}
		gemmScratchPool.Put(s)
	}
}

// runPhase opens a fan-out of units work items, wakes up to workers-1 crew
// members, helps from the calling goroutine, and waits for completion.
func (st *parState) runPhase(phase parPhase, units, unitStride, workers int) {
	if units <= 0 {
		return
	}
	st.phase = phase
	st.unitStride = unitStride
	st.units.Store(int64(units))
	st.wg.Add(units)
	st.cursor.Store(0) // publishes the fields above (sequentially consistent)
	for i := 0; i < workers-1 && i < units-1; i++ {
		select {
		case crewCh <- st:
		default: // crew backlogged; the caller and already-woken workers cover it
		}
	}
	st.work()
	st.wg.Wait()
	// Park the cursor so pulls between phases (or calls, once the state is
	// pooled) can never land in the next phase's window before it opens.
	st.cursor.Store(cursorExhausted)
}

// GemmParallel computes C += A*B with the packed kernel parallelized
// inside one PE across workers goroutines (0 means GOMAXPROCS): B panels
// are packed once and shared, A panels fan out to the pooled crew. Small
// products fall back to the single-goroutine Gemm.
func GemmParallel(c, a, b *Matrix, workers int) {
	checkGemmShapes(c, a, b)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m, k, n := a.Rows, a.Cols, b.Cols
	if m == 0 || k == 0 || n == 0 {
		return
	}
	kn := activeKern
	if workers > maxCrew+1 {
		workers = maxCrew + 1
	}
	// Below one A panel per extra worker the fan-out cannot win: fall back.
	if workers <= 1 || m*k*n < 64*64*64 || m <= kn.mr {
		Gemm(c, a, b)
		return
	}
	ensureCrew(workers - 1)

	st := parStatePool.Get().(*parState)
	st.kn = kn
	st.c, st.a, st.b = *c, *a, *b

	// Shared packed-B scratch: one panel, reused across (pc, jc) blocks.
	bs := gemmScratchPool.Get().(*gemmScratch)
	bs.b = grow(bs.b, kn.bScratchLen())
	st.bp = bs.b

	// Panel rows per fan-out unit: at least mc, grown so there are no more
	// than ~2 units per worker (keeps A-pack overhead amortized while
	// leaving slack for dynamic balance).
	unitRows := kn.mc
	for (m+unitRows-1)/unitRows > 2*workers {
		unitRows += kn.mc
	}

	for jc := 0; jc < n; jc += kn.nc {
		st.jc = jc
		st.nc = min(kn.nc, n-jc)
		for pc := 0; pc < k; pc += kn.kc {
			st.pc = pc
			st.kc = min(kn.kc, k-pc)

			// Phase 1: pack this B panel once, splitting its strips
			// across the crew in ~8-strip chunks.
			packBPanels.Add(1)
			strips := (st.nc + kn.nr - 1) / kn.nr
			const stripChunk = 8
			st.runPhase(phasePackB, (strips+stripChunk-1)/stripChunk, stripChunk, workers)

			// Phase 2: fan the A panels of this block out over the
			// shared packed B.
			st.runPhase(phasePanels, (m+unitRows-1)/unitRows, unitRows, workers)
		}
	}

	st.bp = nil
	st.c, st.a, st.b = Matrix{}, Matrix{}, Matrix{}
	gemmScratchPool.Put(bs)
	parStatePool.Put(st)
}

// gemmParallelRowBands is the PR 3 row-band parallel path, kept unexported
// as the benchmark baseline that shows the shared-pack win: every band
// re-packs all of B, so its packB panel count scales with the worker
// count.
func gemmParallelRowBands(c, a, b *Matrix, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m := a.Rows
	if workers > m {
		workers = m
	}
	if workers <= 1 || m*a.Cols*b.Cols < 64*64*64 {
		Gemm(c, a, b)
		return
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, m)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			cv := c.View(lo, 0, hi-lo, c.Cols)
			av := a.View(lo, 0, hi-lo, a.Cols)
			Gemm(cv, av, b)
		}(lo, hi)
	}
	wg.Wait()
}
