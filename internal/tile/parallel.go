package tile

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Shared-pack parallel GEMM. The PR 3 GemmParallel split C into row bands
// and ran the whole packed kernel per band — so every worker re-packed all
// of B, multiplying the O(k·n) packing traffic by the worker count. Here
// one (pc, jc) B panel is packed exactly once into shared scratch (the
// packing itself split across the crew by strip ranges), then the mc-row A
// panels of that block fan out to the crew: each worker packs its own A
// panel into pooled scratch and streams it over the shared packed B.
// Synchronization is two WaitGroup phases per (pc, jc) block; work is
// pulled from an atomic cursor, so load balance is dynamic and dispatching
// a unit allocates nothing.
//
// The crew is pooled and package-global: goroutines are spawned once
// (lazily, up to the largest worker count requested) and woken by pointer
// sends on a buffered channel, so steady-state GemmParallel calls spawn no
// goroutines and allocate nothing. A woken worker whose pull is rejected
// by the current phase window simply goes back to sleep, which makes stale
// wake-ups after a phase (or call) has finished harmless.

// parPhase is what one fan-out executes: packing a B-panel strip range or
// one A panel's pack+multiply sweep.
type parPhase int8

const (
	phasePackB parPhase = iota
	phasePanels
)

// parState is one in-flight GemmParallel call's shared state. Pooled; a
// worker only touches fields after a pull is admitted by the phase window,
// and runPhase publishes all fields before opening the cursor.
type parState struct {
	kn *kernelImpl
	// Operand headers are stored by value (the Data slices still alias the
	// caller's buffers) so GemmParallel's *Matrix arguments do not escape to
	// the heap: the state itself is pooled and long-lived, and storing a
	// caller pointer into it would force every caller's header (e.g. a
	// stack-built partial-result view) to be heap-allocated.
	c, a, b Matrix
	bp      []float32 // shared packed B panel for the current (pc, jc) block

	// Current (pc, jc) block bounds.
	jc, pc, kc, nc int

	phase      parPhase
	unitStride int // strips (packB) or rows (panels) per unit

	// Phase admission. cursor is monotonic for the life of the state —
	// never reset — with the phase generation in its high 32 bits and the
	// next unit index in its low 32, so a single atomic Add both claims an
	// index and records which phase it was claimed from. window packs the
	// open phase's generation (high bits) and unit count (low bits); a
	// pull is admitted only when its generation matches the window's and
	// its index is below the count. A pull that straddles a phase
	// transition — claimed from the old cursor value, checked against the
	// new window — therefore mismatches on generation and is rejected. (A
	// reset-to-zero cursor cannot give that guarantee: a worker preempted
	// between claiming an index and checking the width could have a stale
	// tail index admitted into a wider next phase once it resumed, running
	// one unit twice and over-signalling the WaitGroup. Generations also
	// cover reuse: the counter survives pooling, so a stale pull against a
	// later GemmParallel call's phases mismatches the same way.)
	cursor atomic.Uint64
	window atomic.Uint64
	wg     sync.WaitGroup
}

// The zero parState is born with generation 0 and a zero-count window, so
// every pull is rejected until the first runPhase opens generation 1.
var parStatePool = sync.Pool{New: func() any { return new(parState) }}

// The pooled crew. crewCh carries wake-up pointers, not work: all work
// assignment happens through the state's cursor.
var (
	crewCh   = make(chan *parState, 1024)
	crewSize atomic.Int64
)

const maxCrew = 256

func crewWorker() {
	for st := range crewCh {
		st.work()
	}
}

// ensureCrew grows the crew to at least n goroutines (capped at maxCrew).
func ensureCrew(n int) {
	if n > maxCrew {
		n = maxCrew
	}
	for {
		cur := crewSize.Load()
		if cur >= int64(n) {
			return
		}
		if crewSize.CompareAndSwap(cur, cur+1) {
			go crewWorker()
		}
	}
}

// work pulls unit indices until the phase window rejects one. Safe to
// call at any time from any goroutine: if no phase is open the first pull
// mismatches the window and it returns immediately. Each index of an open
// window is claimed by exactly one Add (the cursor is monotonic), so no
// unit can run twice and the WaitGroup receives exactly one Done per unit.
func (st *parState) work() {
	for {
		v := st.cursor.Add(1) - 1
		w := st.window.Load()
		if v>>32 != w>>32 || uint32(v) >= uint32(w) {
			return
		}
		st.runUnit(int(uint32(v)))
		st.wg.Done()
	}
}

func (st *parState) runUnit(u int) {
	switch st.phase {
	case phasePackB:
		strips := (st.nc + st.kn.nr - 1) / st.kn.nr
		s0 := u * st.unitStride
		s1 := min(s0+st.unitStride, strips)
		packBStrips(st.bp, &st.b, st.pc, st.jc, st.kc, st.nc, st.kn.nr, s0, s1)
	case phasePanels:
		lo := u * st.unitStride
		hi := min(lo+st.unitStride, st.a.Rows)
		s := gemmScratchPool.Get().(*gemmScratch)
		s.a = grow(s.a, st.kn.aScratchLen())
		// A unit may span several mc blocks (when there are few workers);
		// pack and multiply them one at a time to keep the packed A panel
		// L2-resident.
		for ic := lo; ic < hi; ic += st.kn.mc {
			mc := min(st.kn.mc, hi-ic)
			packA(s.a, &st.a, ic, st.pc, mc, st.kc, st.kn.mr)
			gemmPanels(&st.c, s.a, st.bp, ic, st.jc, mc, st.nc, st.kc, st.kn)
		}
		gemmScratchPool.Put(s)
	}
}

// runPhase opens a fan-out of units work items, wakes up to workers-1 crew
// members, helps from the calling goroutine, and waits for completion.
func (st *parState) runPhase(phase parPhase, units, unitStride, workers int) {
	if units <= 0 {
		return
	}
	st.phase = phase
	st.unitStride = unitStride
	st.wg.Add(units)
	// Open the next generation: the window store publishes the fields
	// above before any pull can be admitted (seq-cst atomics), and stale
	// pulls claimed from the pre-store cursor carry the old generation, so
	// they can never be admitted — or consume an index — in this phase.
	// Index overflow into the generation bits would take 2^32 pulls in one
	// phase; pulls are bounded by units plus one rejected pull per work()
	// invocation, and invocations by the crew size plus the wake-up
	// channel's capacity.
	gen := (st.cursor.Load()>>32 + 1) << 32
	st.window.Store(gen | uint64(uint32(units)))
	st.cursor.Store(gen)
	for i := 0; i < workers-1 && i < units-1; i++ {
		select {
		case crewCh <- st:
		default: // crew backlogged; the caller and already-woken workers cover it
		}
	}
	st.work()
	st.wg.Wait()
	// No parking needed between phases: every index below the closed
	// window's count has been claimed (wg.Wait returned), so later pulls
	// on this generation exceed the count and are rejected.
}

// GemmParallel computes C += A*B with the packed kernel parallelized
// inside one PE across workers goroutines (0 means GOMAXPROCS): B panels
// are packed once and shared, A panels fan out to the pooled crew. Small
// products fall back to the single-goroutine Gemm.
func GemmParallel(c, a, b *Matrix, workers int) {
	checkGemmShapes(c, a, b)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m, k, n := a.Rows, a.Cols, b.Cols
	if m == 0 || k == 0 || n == 0 {
		return
	}
	kn := activeKern
	if workers > maxCrew+1 {
		workers = maxCrew + 1
	}
	// Below one A panel per extra worker the fan-out cannot win: fall back.
	if workers <= 1 || m*k*n < 64*64*64 || m <= kn.mr {
		Gemm(c, a, b)
		return
	}
	ensureCrew(workers - 1)

	st := parStatePool.Get().(*parState)
	st.kn = kn
	st.c, st.a, st.b = *c, *a, *b

	// Shared packed-B scratch: one panel, reused across (pc, jc) blocks.
	bs := gemmScratchPool.Get().(*gemmScratch)
	bs.b = grow(bs.b, kn.bScratchLen())
	st.bp = bs.b

	// Panel rows per fan-out unit: at least mc, grown so there are no more
	// than ~2 units per worker (keeps A-pack overhead amortized while
	// leaving slack for dynamic balance).
	unitRows := kn.mc
	for (m+unitRows-1)/unitRows > 2*workers {
		unitRows += kn.mc
	}

	for jc := 0; jc < n; jc += kn.nc {
		st.jc = jc
		st.nc = min(kn.nc, n-jc)
		for pc := 0; pc < k; pc += kn.kc {
			st.pc = pc
			st.kc = min(kn.kc, k-pc)

			// Phase 1: pack this B panel once, splitting its strips
			// across the crew in ~8-strip chunks.
			packBPanels.Add(1)
			strips := (st.nc + kn.nr - 1) / kn.nr
			const stripChunk = 8
			st.runPhase(phasePackB, (strips+stripChunk-1)/stripChunk, stripChunk, workers)

			// Phase 2: fan the A panels of this block out over the
			// shared packed B.
			st.runPhase(phasePanels, (m+unitRows-1)/unitRows, unitRows, workers)
		}
	}

	st.bp = nil
	st.c, st.a, st.b = Matrix{}, Matrix{}, Matrix{}
	gemmScratchPool.Put(bs)
	parStatePool.Put(st)
}

// gemmParallelRowBands is the PR 3 row-band parallel path, kept unexported
// as the benchmark baseline that shows the shared-pack win: every band
// re-packs all of B, so its packB panel count scales with the worker
// count.
func gemmParallelRowBands(c, a, b *Matrix, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m := a.Rows
	if workers > m {
		workers = m
	}
	if workers <= 1 || m*a.Cols*b.Cols < 64*64*64 {
		Gemm(c, a, b)
		return
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, m)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			cv := c.View(lo, 0, hi-lo, c.Cols)
			av := a.View(lo, 0, hi-lo, a.Cols)
			Gemm(cv, av, b)
		}(lo, hi)
	}
	wg.Wait()
}
