//go:build amd64 && !purego

package tile

// The amd64 kernel table. Shapes and blocking per variant:
//
//   - avx512: 14×32 accumulator in ZMM0–ZMM27 (28 of 32 registers), two
//     ZMM B loads + 14 VBROADCASTSS + 28 VFMADD231PS per K step. kc=192
//     keeps the B micro-panel (kc×32×4 = 24 KiB) plus the A strip
//     (kc×14×4 ≈ 10.5 KiB) L1-resident; mc=140 (10 strips of 14) makes
//     the packed A panel ~105 KiB, safely L2-resident.
//   - avx2: 6×16 accumulator in YMM0–YMM11 (the classic FMA shape), two
//     YMM B loads + 6 VBROADCASTSS + 12 VFMADD231PS per K step. kc=256:
//     B micro-panel 16 KiB + A strip 6 KiB in L1; mc=132 (22 strips of
//     6) → ~132 KiB packed A panel in L2.
//   - sse2: the baseline 4×8 kernel (no feature detection needed),
//     unchanged from PR 3.
//
// buildKernelTable runs during package variable initialization (before any
// init function that could call Gemm), best variant first.
func buildKernelTable() []*kernelImpl {
	detectCPU()
	var t []*kernelImpl
	if hasAVX512 {
		t = append(t, &kernelImpl{
			name: "avx512",
			mr:   14, nr: 32,
			kc: 192, mc: 140, nc: 2048,
			id: kidAVX512,
		})
	}
	if hasAVX2FMA {
		t = append(t, &kernelImpl{
			name: "avx2",
			mr:   6, nr: 16,
			kc: 256, mc: 132, nc: 2048,
			id: kidAVX2,
		})
	}
	t = append(t, &kernelImpl{
		name: "sse2",
		mr:   4, nr: 8,
		kc: 256, mc: 128, nc: 1024,
		id: kidSSE2,
	}, goKernel)
	return t
}

// callKernel dispatches a micro-kernel id as a direct call so the
// //go:noescape annotations hold and acc stays on the caller's stack.
func callKernel(id kernID, acc, ap, bp *float32, kc int) {
	switch id {
	case kidAVX512:
		microKernelAVX512(acc, ap, bp, kc)
	case kidAVX2:
		microKernelAVX2(acc, ap, bp, kc)
	case kidSSE2:
		microKernelSSE2(acc, ap, bp, kc)
	default:
		microKernelGo(acc, ap, bp, kc)
	}
}

// callKernelC runs the direct-into-C interior-tile variant when the id has
// one, returning false to send the caller down the acc+masked-add path.
func callKernelC(id kernID, c *float32, ldc int, ap, bp *float32, kc int) bool {
	switch id {
	case kidAVX512:
		microKernelAVX512C(c, ldc, ap, bp, kc)
		return true
	case kidAVX2:
		microKernelAVX2C(c, ldc, ap, bp, kc)
		return true
	}
	return false
}
