package tile

import (
	"fmt"
	"os"
	"strings"
)

// The packed GEMM is built from interchangeable register-tile
// micro-kernels. Each variant owns its register-tile shape (mr×nr) and the
// cache-blocking parameters tuned for it; pack.go and parallel.go are
// written against this descriptor, so adding an ISA means adding one asm
// routine and one table entry.
type kernelImpl struct {
	name string
	// mr×nr is the register accumulator tile the micro-kernel keeps live
	// across the whole K panel.
	mr, nr int
	// Cache blocking: the B micro-panel (kc×nr) should be L1-resident, the
	// packed A panel (mc×kc) L2-resident, the packed B panel (kc×nc)
	// L2/L3-resident.
	kc, mc, nc int
	// id selects the micro-kernel routine via callKernel. An enum rather
	// than a func value so the call site stays a direct call behind a
	// switch: the //go:noescape micro-kernels then keep the accumulator
	// tile on the caller's stack, which a function-pointer call would
	// force to the heap.
	id kernID
}

// kernID enumerates the micro-kernel routines; callKernel (per-arch) maps
// an id to its routine, which computes acc[0:mr*nr] = Apanel·Bpanel from
// packed strips: ap is kc×mr k-major, bp is kc×nr k-major, acc is
// row-major with stride nr, overwritten, not accumulated into.
type kernID int8

const (
	kidGo kernID = iota
	kidSSE2
	kidAVX2
	kidAVX512
)

// maxAccTile bounds the stack accumulator in microTile: the largest mr*nr
// over every variant in the table (avx512's 14×32).
const maxAccTile = 14 * 32

// goKernel is the portable pure-Go variant, present in every build: the
// only variant on non-amd64 or under -tags purego, and a forceable
// reference everywhere else.
var goKernel = &kernelImpl{
	name: "go",
	mr:   4, nr: 8,
	kc: 256, mc: 128, nc: 1024,
	id: kidGo,
}

// kernelTable holds the variants usable on this machine, best first.
// buildKernelTable is per-arch (kernels_amd64.go / kernels_purego.go).
var kernelTable = buildKernelTable()

// activeKern is the variant Gemm/GemmPacked/GemmParallel currently drive.
// It is read per call without synchronization; SetKernel is for tests,
// benchmarks, and process start-up, not for flipping mid-multiply.
var activeKern = pickKernel()

// pickKernel selects the start-up variant: the SLICING_GEMM_KERNEL
// environment variable when it names an available variant (unknown or
// unavailable names are ignored), otherwise the best available one.
func pickKernel() *kernelImpl {
	if want := os.Getenv("SLICING_GEMM_KERNEL"); want != "" {
		for _, k := range kernelTable {
			if k.name == want {
				return k
			}
		}
		fmt.Fprintf(os.Stderr, "tile: SLICING_GEMM_KERNEL=%q not available (have %s); using %s\n",
			want, strings.Join(KernelVariants(), ","), kernelTable[0].name)
	}
	return kernelTable[0]
}

// KernelName reports the micro-kernel variant Gemm currently dispatches to
// ("avx512", "avx2", "sse2", or "go").
func KernelName() string { return activeKern.name }

// KernelVariants lists every micro-kernel variant usable on this machine,
// best first. Variants the CPU (or OS) cannot run are not listed.
func KernelVariants() []string {
	names := make([]string, len(kernelTable))
	for i, k := range kernelTable {
		names[i] = k.name
	}
	return names
}

// KernelDescription reports the active variant and its blocking
// parameters, e.g. "avx512 (14x32 register tile, kc=192 mc=140 nc=2048)".
func KernelDescription() string {
	k := activeKern
	return fmt.Sprintf("%s (%dx%d register tile, kc=%d mc=%d nc=%d)",
		k.name, k.mr, k.nr, k.kc, k.mc, k.nc)
}

// SetKernel forces a specific micro-kernel variant by name and returns the
// previously active one. It exists for tests, benchmarks, and start-up
// configuration; it must not race with in-flight Gemm calls. The
// SLICING_GEMM_KERNEL environment variable applies the same override at
// process start.
func SetKernel(name string) (prev string, err error) {
	for _, k := range kernelTable {
		if k.name == name {
			prev, activeKern = activeKern.name, k
			return prev, nil
		}
	}
	return activeKern.name, fmt.Errorf("tile: unknown or unavailable kernel %q (have %s)",
		name, strings.Join(KernelVariants(), ","))
}
