package tile

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
)

// forceKernel switches the dispatched variant for a test and restores it
// on cleanup.
func forceKernel(t *testing.T, name string) {
	t.Helper()
	prev, err := SetKernel(name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { SetKernel(prev) })
}

// Every dispatched variant — not just the one this machine would pick —
// must agree with the naive oracle on shapes that straddle its own
// blocking boundaries (mr, nr, kc, mc ± 1), primes, degenerate vectors,
// and empties.
func TestKernelVariantsMatchNaiveOddShapes(t *testing.T) {
	for _, name := range KernelVariants() {
		t.Run(name, func(t *testing.T) {
			forceKernel(t, name)
			kn := activeKern
			rng := rand.New(rand.NewSource(44))
			shapes := [][3]int{
				{1, 1, 1}, {1, 1, 64}, {1, 64, 1}, {64, 1, 1},
				{kn.mr - 1, 10, kn.nr - 1}, {kn.mr + 1, 10, kn.nr + 1},
				{kn.mr, kn.kc, kn.nr}, // exactly one interior register tile
				{2 * kn.mr, 2 * kn.kc, 2 * kn.nr},
				{kn.mc - 1, kn.kc - 1, kn.nr*3 - 1},
				{kn.mc + 1, kn.kc + 1, kn.nr*3 + 1},
				{3*kn.mr + 2, 2*kn.kc + 5, 3*kn.nr + 7},
				{97, 101, 103}, {31, 127, 61}, // primes
				{0, 5, 5}, {5, 0, 5}, {5, 5, 0},
			}
			for _, s := range shapes {
				m, k, n := s[0], s[1], s[2]
				a := randomMatrix(rng, m, k)
				b := randomMatrix(rng, k, n)
				want := New(m, n)
				GemmNaive(want, a, b)
				got := New(m, n)
				GemmPacked(got, a, b)
				if !got.AllClose(want, 1e-3) {
					t.Fatalf("%s mismatch for %dx%dx%d: maxdiff %v",
						name, m, k, n, got.MaxAbsDiff(want))
				}
			}
		})
	}
}

// Property: every variant handles random strided sub-views of larger
// buffers (A, B, and C all strided) and accumulates into C rather than
// overwriting it — the direct-into-C interior path must respect both.
func TestKernelVariantsPropertyStridedViews(t *testing.T) {
	for _, name := range KernelVariants() {
		t.Run(name, func(t *testing.T) {
			forceKernel(t, name)
			f := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				m, k, n := 1+r.Intn(60), 1+r.Intn(60), 1+r.Intn(60)
				bigA := randomMatrix(r, m+r.Intn(5), k+r.Intn(5))
				bigB := randomMatrix(r, k+r.Intn(5), n+r.Intn(5))
				bigC := randomMatrix(r, m+r.Intn(5), n+r.Intn(5))
				a := bigA.View(bigA.Rows-m, bigA.Cols-k, m, k)
				b := bigB.View(bigB.Rows-k, bigB.Cols-n, k, n)
				c := bigC.View(bigC.Rows-m, bigC.Cols-n, m, n)
				want := c.Clone()
				GemmNaive(want, a.Clone(), b.Clone())
				GemmPacked(c, a, b)
				return c.AllClose(want, 1e-3)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Error(err)
			}
		})
	}
}

// The shared-pack parallel path must agree with the oracle for every
// variant and worker count, including strided views and shapes that don't
// divide the blocking.
func TestGemmParallelSharedPackMatchesNaive(t *testing.T) {
	for _, name := range KernelVariants() {
		t.Run(name, func(t *testing.T) {
			forceKernel(t, name)
			rng := rand.New(rand.NewSource(45))
			for _, workers := range []int{2, 3, 5, 8} {
				for _, s := range [][3]int{{64, 64, 64}, {97, 101, 103}, {300, 257, 129}, {512, 96, 512}} {
					m, k, n := s[0], s[1], s[2]
					big := randomMatrix(rng, m+3, n+2)
					c := big.View(1, 1, m, n)
					a := randomMatrix(rng, m, k)
					b := randomMatrix(rng, k, n)
					want := c.Clone()
					GemmNaive(want, a, b)
					GemmParallel(c, a, b, workers)
					if !c.AllClose(want, 1e-3) {
						t.Fatalf("%s workers=%d mismatch for %dx%dx%d: maxdiff %v",
							name, workers, m, k, n, c.MaxAbsDiff(want))
					}
				}
			}
		})
	}
}

// The whole point of the shared-pack path: each (pc, jc) B panel is
// packed exactly once, no matter how many workers run — the row-band
// path packed it once per worker.
func TestGemmParallelPacksEachBPanelOnce(t *testing.T) {
	kn := activeKern
	m := 4 * kn.mc
	k := 2*kn.kc + 7
	n := kn.nr*5 + 3
	rng := rand.New(rand.NewSource(46))
	a := randomMatrix(rng, m, k)
	b := randomMatrix(rng, k, n)
	wantPanels := int64(((n + kn.nc - 1) / kn.nc) * ((k + kn.kc - 1) / kn.kc))
	for _, workers := range []int{2, 4, 8} {
		c := New(m, n)
		before := packBPanels.Load()
		GemmParallel(c, a, b, workers)
		got := packBPanels.Load() - before
		if got != wantPanels {
			t.Fatalf("workers=%d packed %d B panels, want %d (independent of workers)",
				workers, got, wantPanels)
		}
	}
	// The row-band baseline re-packs per band: with enough rows per band
	// to clear the fallback, the count must scale with the worker count.
	c := New(m, n)
	before := packBPanels.Load()
	gemmParallelRowBands(c, a, b, 4)
	got := packBPanels.Load() - before
	if got != 4*wantPanels {
		t.Fatalf("row-band baseline packed %d B panels, want %d (4 workers x %d panels)",
			got, 4*wantPanels, wantPanels)
	}
}

// The shared-pack parallel path must allocate nothing in the steady state:
// crew goroutines are pooled, state and scratch come from sync.Pools, and
// fan-out bookkeeping is a cursor plus a WaitGroup.
func TestGemmParallelSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates and sync.Pool sheds items; alloc counts only meaningful without -race")
	}
	rng := rand.New(rand.NewSource(47))
	a := randomMatrix(rng, 256, 256)
	b := randomMatrix(rng, 256, 256)
	c := New(256, 256)
	GemmParallel(c, a, b, 4) // warm crew, state pool, and scratch pool
	allocs := testing.AllocsPerRun(10, func() {
		GemmParallel(c, a, b, 4)
	})
	if allocs > 0 {
		t.Fatalf("GemmParallel allocates %v objects per call in steady state, want 0", allocs)
	}
}

// Regression guard for the phase-admission protocol: a pull that straddles
// a phase transition (claimed from one phase's cursor, checked against the
// next phase's window) must be rejected, not admitted into the wider next
// phase — admission would run a unit twice (double-accumulating into C)
// and over-signal the WaitGroup. Hammer transitions with many small calls
// from concurrent goroutines at oversubscribed worker counts, so crew
// wake-ups routinely arrive after their phase (or call) has closed.
func TestGemmParallelPhaseTransitionStress(t *testing.T) {
	iters := 400
	if testing.Short() || raceEnabled {
		iters = 50
	}
	const m, k, n = 70, 70, 70 // just above the serial-fallback threshold
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			a := randomMatrix(rng, m, k)
			b := randomMatrix(rng, k, n)
			want := New(m, n)
			GemmNaive(want, a, b)
			got := New(m, n)
			for i := 0; i < iters; i++ {
				clear(got.Data)
				GemmParallel(got, a, b, 64)
				if !got.AllClose(want, 1e-4) {
					done <- fmt.Errorf("seed %d iter %d: GemmParallel mismatch: maxdiff %v",
						seed, i, got.MaxAbsDiff(want))
					return
				}
			}
			done <- nil
		}(int64(49 + g))
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestKernelDispatchSmoke logs which micro-kernel the runtime dispatch
// selected and which are available — CI runs it with -v on every push so
// the selected ISA on the runner is visible in the log.
func TestKernelDispatchSmoke(t *testing.T) {
	t.Logf("GOARCH=%s GOMAXPROCS=%d", runtime.GOARCH, runtime.GOMAXPROCS(0))
	t.Logf("selected kernel: %s", KernelDescription())
	t.Logf("available variants: %v", KernelVariants())
	found := false
	for _, v := range KernelVariants() {
		if v == KernelName() {
			found = true
		}
	}
	if !found {
		t.Fatalf("selected kernel %q not among available variants %v", KernelName(), KernelVariants())
	}
}

func TestSetKernelUnknownRejected(t *testing.T) {
	prev := KernelName()
	if _, err := SetKernel("mmx"); err == nil {
		t.Fatal("SetKernel(\"mmx\") should fail")
	}
	if KernelName() != prev {
		t.Fatalf("failed SetKernel changed the active kernel: %s -> %s", prev, KernelName())
	}
}

// benchGemmParallel reports GFLOP/s and packed-B panel counts for the
// parallel paths at 512³, the satellite comparison showing the shared-pack
// rebuild removed the per-worker B re-packing.
func benchGemmParallel(b *testing.B, workers int, impl func(c, a, bm *Matrix, workers int)) {
	rng := rand.New(rand.NewSource(48))
	a := randomMatrix(rng, 512, 512)
	bm := randomMatrix(rng, 512, 512)
	c := New(512, 512)
	impl(c, a, bm, workers) // warm pools and crew
	flops := Flops(512, 512, 512)
	packsBefore := packBPanels.Load()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		impl(c, a, bm, workers)
	}
	b.StopTimer()
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
	b.ReportMetric(float64(packBPanels.Load()-packsBefore)/float64(b.N), "Bpacks/op")
}

func BenchmarkGemmParallelSharedPack4(b *testing.B) { benchGemmParallel(b, 4, GemmParallel) }
func BenchmarkGemmParallelRowBands4(b *testing.B)   { benchGemmParallel(b, 4, gemmParallelRowBands) }
