//go:build amd64 && !purego

package tile

// microKernelAccum computes acc = Apanel·Bpanel for one mr×nr register
// tile: ap points at a packed mr-row strip (kc×mr, k-major), bp at a packed
// nr-column strip (kc×nr, k-major). acc is overwritten, not accumulated
// into; the caller masks the valid window into C. Implemented in SSE2
// assembly (baseline on every amd64, no feature detection needed): the 4×8
// accumulator tile lives in XMM0-XMM7 for the whole K loop, with two
// 4-float B vectors and four broadcast A scalars per step.
//
//go:noescape
func microKernelAccum(acc *[mr * nr]float32, ap, bp *float32, kc int)
