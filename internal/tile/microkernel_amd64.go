//go:build amd64 && !purego

package tile

// The assembly micro-kernels (microkernel_amd64.s). All three share one
// contract: acc[0:mr*nr] = Apanel·Bpanel for their register-tile shape,
// where ap points at a packed mr-row strip (kc×mr, k-major), bp at a
// packed nr-column strip (kc×nr, k-major), and acc (row-major, stride nr)
// is overwritten, not accumulated into; the caller masks the valid window
// into C. Which one runs is decided by the dispatch table
// (kernels_amd64.go) from CPUID feature detection.

// microKernelSSE2 is the baseline 4×8 kernel: the accumulator tile lives
// in XMM0–XMM7 for the whole K loop, with two 4-float B loads and four
// broadcast A scalars per step (MULPS+ADDPS; SSE2 is architectural on
// amd64, so it needs no feature check).
//
//go:noescape
func microKernelSSE2(acc, ap, bp *float32, kc int)

// microKernelAVX2 is the 6×16 AVX2/FMA kernel: the accumulator tile lives
// in YMM0–YMM11, each K step is two 8-float B loads, six VBROADCASTSS of
// A, and twelve VFMADD231PS. Requires AVX2+FMA with OS-saved YMM state.
//
//go:noescape
func microKernelAVX2(acc, ap, bp *float32, kc int)

// microKernelAVX512 is the 14×32 AVX-512F kernel: the accumulator tile
// lives in ZMM0–ZMM27, each K step is two 16-float B loads, fourteen
// VBROADCASTSS of A, and twenty-eight VFMADD231PS. Uses only AVX-512F
// instructions; requires OS-saved opmask/ZMM state.
//
//go:noescape
func microKernelAVX512(acc, ap, bp *float32, kc int)

// microKernelAVX2C / microKernelAVX512C are the interior-tile variants:
// same K loop, but the register tile is added directly into C (row stride
// ldc floats) with vector loads/adds/stores — interior tiles skip the
// scalar acc→C pass entirely, which at AVX-512 speeds is worth tens of
// percent. Callers must guarantee a full mr×nr window at c.
//
//go:noescape
func microKernelAVX2C(c *float32, ldc int, ap, bp *float32, kc int)

//go:noescape
func microKernelAVX512C(c *float32, ldc int, ap, bp *float32, kc int)
