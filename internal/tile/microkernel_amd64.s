//go:build amd64 && !purego

#include "textflag.h"

// func microKernelAccum(acc *[32]float32, ap, bp *float32, kc int)
//
// Register-blocked 4x8 GEMM micro-kernel, SSE2 only. The accumulator tile
// occupies X0-X7 (row r, column half h in X(2r+h)); X8/X9 hold the current
// B vectors, X10-X15 are broadcast/product temporaries. Per K step:
// 2 vector loads of B, 4 scalar broadcasts of A, 8 MULPS and 8 ADDPS.
TEXT ·microKernelAccum(SB), NOSPLIT, $0-32
	MOVQ acc+0(FP), DI
	MOVQ ap+8(FP), SI
	MOVQ bp+16(FP), DX
	MOVQ kc+24(FP), CX

	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORPS X4, X4
	XORPS X5, X5
	XORPS X6, X6
	XORPS X7, X7

	TESTQ CX, CX
	JZ    store

loop:
	MOVUPS (DX), X8
	MOVUPS 16(DX), X9

	// row 0
	MOVSS  (SI), X10
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X0
	MULPS  X9, X11
	ADDPS  X11, X1

	// row 1
	MOVSS  4(SI), X12
	SHUFPS $0x00, X12, X12
	MOVAPS X12, X13
	MULPS  X8, X12
	ADDPS  X12, X2
	MULPS  X9, X13
	ADDPS  X13, X3

	// row 2
	MOVSS  8(SI), X14
	SHUFPS $0x00, X14, X14
	MOVAPS X14, X15
	MULPS  X8, X14
	ADDPS  X14, X4
	MULPS  X9, X15
	ADDPS  X15, X5

	// row 3
	MOVSS  12(SI), X10
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X6
	MULPS  X9, X11
	ADDPS  X11, X7

	ADDQ $16, SI
	ADDQ $32, DX
	DECQ CX
	JNZ  loop

store:
	MOVUPS X0, (DI)
	MOVUPS X1, 16(DI)
	MOVUPS X2, 32(DI)
	MOVUPS X3, 48(DI)
	MOVUPS X4, 64(DI)
	MOVUPS X5, 80(DI)
	MOVUPS X6, 96(DI)
	MOVUPS X7, 112(DI)
	RET
