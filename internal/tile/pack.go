package tile

import "sync"

// Packed register-blocked GEMM (COSMA/BLIS-style, §4.2's "keep the local
// GEMM saturated" requirement). The operand panels are copied once into
// contiguous, cache-friendly scratch — A in mr-row strips stored k-major, B
// in nr-column strips stored k-major — so the micro-kernel streams both
// with unit stride, no bounds checks, and no strided-view arithmetic. The
// micro-kernel holds an mr×nr accumulator tile in registers across the
// whole K panel (SSE2 on amd64, unrolled scalar elsewhere), touching each C
// element once per panel instead of once per K step.
//
// Blocking parameters: the B micro-panel (kcBlock×nr floats = 8 KiB) is
// L1-resident across the inner loop over A strips; the A panel
// (mcBlock×kcBlock = 128 KiB) is L2-resident across the loop over B
// strips; the packed B panel (kcBlock×ncBlock = 1 MiB) is L2/L3-resident
// across A panels.
const (
	mr      = 4 // micro-kernel rows
	nr      = 8 // micro-kernel cols (two 4-float vectors)
	kcBlock = 256
	mcBlock = 128
	ncBlock = 1024
)

// gemmScratch is one worker's packing buffers. Pooled so steady-state
// Gemm calls perform no allocation (the paper's single up-front allocation
// discipline, §4.2).
type gemmScratch struct {
	a []float32 // mcBlock×kcBlock, mr-padded
	b []float32 // kcBlock×ncBlock, nr-padded
}

var gemmScratchPool = sync.Pool{
	New: func() any {
		return &gemmScratch{
			a: make([]float32, (mcBlock+mr)*kcBlock),
			b: make([]float32, kcBlock*(ncBlock+nr)),
		}
	},
}

// GemmPacked computes C += A*B with the packed register-blocked kernel,
// regardless of problem size. Gemm dispatches here for all but tiny
// products; the export exists so tests and benchmarks can drive the packed
// path directly.
func GemmPacked(c, a, b *Matrix) {
	checkGemmShapes(c, a, b)
	gemmPacked(c, a, b)
}

func gemmPacked(c, a, b *Matrix) {
	m, k, n := a.Rows, a.Cols, b.Cols
	if m == 0 || k == 0 || n == 0 {
		return
	}
	s := gemmScratchPool.Get().(*gemmScratch)
	defer gemmScratchPool.Put(s)
	for jc := 0; jc < n; jc += ncBlock {
		nc := min(ncBlock, n-jc)
		for pc := 0; pc < k; pc += kcBlock {
			kc := min(kcBlock, k-pc)
			packB(s.b, b, pc, jc, kc, nc)
			for ic := 0; ic < m; ic += mcBlock {
				mc := min(mcBlock, m-ic)
				packA(s.a, a, ic, pc, mc, kc)
				gemmPanels(c, s.a, s.b, ic, jc, mc, nc, kc)
			}
		}
	}
}

// packA copies A[ic:ic+mc, pc:pc+kc] into ap as ceil(mc/mr) strips of mr
// rows, each strip stored k-major (ap[strip*kc*mr + kk*mr + r]). Rows past
// mc are zero-padded so the micro-kernel never branches on the row edge.
func packA(ap []float32, a *Matrix, ic, pc, mc, kc int) {
	for s0 := 0; s0 < mc; s0 += mr {
		base := (s0 / mr) * kc * mr
		for r := 0; r < mr; r++ {
			i := ic + s0 + r
			if s0+r >= mc {
				for kk := 0; kk < kc; kk++ {
					ap[base+kk*mr+r] = 0
				}
				continue
			}
			arow := a.Data[i*a.Stride+pc : i*a.Stride+pc+kc]
			for kk, v := range arow {
				ap[base+kk*mr+r] = v
			}
		}
	}
}

// packB copies B[pc:pc+kc, jc:jc+nc] into bp as ceil(nc/nr) strips of nr
// columns, each strip stored k-major (bp[strip*kc*nr + kk*nr + j]).
// Columns past nc are zero-padded.
func packB(bp []float32, b *Matrix, pc, jc, kc, nc int) {
	strips := (nc + nr - 1) / nr
	for s0 := 0; s0 < strips; s0++ {
		base := s0 * kc * nr
		j0 := jc + s0*nr
		w := min(nr, jc+nc-j0)
		for kk := 0; kk < kc; kk++ {
			brow := b.Data[(pc+kk)*b.Stride+j0 : (pc+kk)*b.Stride+j0+w]
			dst := bp[base+kk*nr : base+kk*nr+nr]
			copy(dst, brow)
			for j := w; j < nr; j++ {
				dst[j] = 0
			}
		}
	}
}

// gemmPanels multiplies the packed mc×kc A panel by the packed kc×nc B
// panel into C[ic:ic+mc, jc:jc+nc]. The loop over A strips is innermost so
// each B micro-panel (kc×nr, 8 KiB) stays L1-resident while every strip
// of A streams over it.
func gemmPanels(c *Matrix, ap, bp []float32, ic, jc, mc, nc, kc int) {
	if kc == 0 {
		return
	}
	for jr := 0; jr < nc; jr += nr {
		bpanel := bp[(jr/nr)*kc*nr:]
		cols := min(nr, nc-jr)
		for ir := 0; ir < mc; ir += mr {
			apanel := ap[(ir/mr)*kc*mr:]
			rows := min(mr, mc-ir)
			microTile(c, apanel, bpanel, kc, ic+ir, jc+jr, rows, cols)
		}
	}
}

// microTile computes a full mr×nr accumulator tile over kc steps from the
// packed panels (zero-padded at the edges) and adds the valid rows×cols
// window into C at (i0, j0).
func microTile(c *Matrix, ap, bp []float32, kc, i0, j0, rows, cols int) {
	var acc [mr * nr]float32
	microKernelAccum(&acc, &ap[0], &bp[0], kc)
	for r := 0; r < rows; r++ {
		arow := acc[r*nr : r*nr+nr]
		crow := c.Data[(i0+r)*c.Stride+j0 : (i0+r)*c.Stride+j0+cols]
		for j := range crow {
			crow[j] += arow[j]
		}
	}
}
