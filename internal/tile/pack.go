package tile

import (
	"sync"
	"sync/atomic"
)

// Packed register-blocked GEMM (COSMA/BLIS-style, §4.2's "keep the local
// GEMM saturated" requirement). The operand panels are copied once into
// contiguous, cache-friendly scratch — A in mr-row strips stored k-major,
// B in nr-column strips stored k-major — so the micro-kernel streams both
// with unit stride, no bounds checks, and no strided-view arithmetic. The
// micro-kernel holds an mr×nr accumulator tile in registers across the
// whole K panel, touching each C element once per panel instead of once
// per K step. The register-tile shape (mr×nr), the micro-kernel, and the
// cache-blocking parameters (kc/mc/nc) all come from the dispatched
// variant (dispatch.go): 14×32 AVX-512, 6×16 AVX2/FMA, 4×8 SSE2, or the
// portable Go kernel.

// gemmScratch is one worker's packing buffers. Pooled so steady-state
// Gemm calls perform no allocation (the paper's single up-front allocation
// discipline, §4.2). Buffers grow to the largest blocking in use and are
// then reused as-is.
type gemmScratch struct {
	a []float32 // (mc+mr)×kc, mr-padded
	b []float32 // kc×(nc+nr), nr-padded
}

var gemmScratchPool = sync.Pool{New: func() any { return new(gemmScratch) }}

// grow returns buf resized to n floats, reallocating only when capacity is
// insufficient (first use of a larger blocking).
func grow(buf []float32, n int) []float32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float32, n)
}

// aScratchLen/bScratchLen are the packing-buffer sizes a kernel variant
// needs: one mr-padded A panel, one nr-padded B panel.
func (kn *kernelImpl) aScratchLen() int { return (kn.mc + kn.mr) * kn.kc }
func (kn *kernelImpl) bScratchLen() int { return kn.kc * (kn.nc + kn.nr) }

// packBPanels counts packB panel-packing calls; the shared-pack parallel
// path's tests and benchmarks use it to show each B panel is packed once
// regardless of worker count.
var packBPanels atomic.Int64

// GemmPacked computes C += A*B with the packed register-blocked kernel,
// regardless of problem size. Gemm dispatches here for all but tiny
// products; the export exists so tests and benchmarks can drive the packed
// path directly.
func GemmPacked(c, a, b *Matrix) {
	checkGemmShapes(c, a, b)
	gemmPacked(c, a, b)
}

func gemmPacked(c, a, b *Matrix) {
	kn := activeKern
	m, k, n := a.Rows, a.Cols, b.Cols
	if m == 0 || k == 0 || n == 0 {
		return
	}
	s := gemmScratchPool.Get().(*gemmScratch)
	defer gemmScratchPool.Put(s)
	s.a = grow(s.a, kn.aScratchLen())
	s.b = grow(s.b, kn.bScratchLen())
	for jc := 0; jc < n; jc += kn.nc {
		nc := min(kn.nc, n-jc)
		for pc := 0; pc < k; pc += kn.kc {
			kc := min(kn.kc, k-pc)
			packB(s.b, b, pc, jc, kc, nc, kn.nr)
			for ic := 0; ic < m; ic += kn.mc {
				mc := min(kn.mc, m-ic)
				packA(s.a, a, ic, pc, mc, kc, kn.mr)
				gemmPanels(c, s.a, s.b, ic, jc, mc, nc, kc, kn)
			}
		}
	}
}

// packA copies A[ic:ic+mc, pc:pc+kc] into ap as ceil(mc/mr) strips of mr
// rows, each strip stored k-major (ap[strip*kc*mr + kk*mr + r]). Rows past
// mc are zero-padded so the micro-kernel never branches on the row edge.
func packA(ap []float32, a *Matrix, ic, pc, mc, kc, mr int) {
	for s0 := 0; s0 < mc; s0 += mr {
		base := (s0 / mr) * kc * mr
		for r := 0; r < mr; r++ {
			i := ic + s0 + r
			if s0+r >= mc {
				for kk := 0; kk < kc; kk++ {
					ap[base+kk*mr+r] = 0
				}
				continue
			}
			arow := a.Data[i*a.Stride+pc : i*a.Stride+pc+kc]
			for kk, v := range arow {
				ap[base+kk*mr+r] = v
			}
		}
	}
}

// packB copies B[pc:pc+kc, jc:jc+nc] into bp as ceil(nc/nr) strips of nr
// columns, each strip stored k-major (bp[strip*kc*nr + kk*nr + j]).
// Columns past nc are zero-padded.
func packB(bp []float32, b *Matrix, pc, jc, kc, nc, nr int) {
	packBPanels.Add(1)
	strips := (nc + nr - 1) / nr
	packBStrips(bp, b, pc, jc, kc, nc, nr, 0, strips)
}

// packBStrips packs the [s0, s1) strip range of a B panel; the shared-pack
// parallel path splits one panel's packing across the crew with it.
func packBStrips(bp []float32, b *Matrix, pc, jc, kc, nc, nr, s0, s1 int) {
	for s := s0; s < s1; s++ {
		base := s * kc * nr
		j0 := jc + s*nr
		w := min(nr, jc+nc-j0)
		for kk := 0; kk < kc; kk++ {
			brow := b.Data[(pc+kk)*b.Stride+j0 : (pc+kk)*b.Stride+j0+w]
			dst := bp[base+kk*nr : base+kk*nr+nr]
			copy(dst, brow)
			for j := w; j < nr; j++ {
				dst[j] = 0
			}
		}
	}
}

// gemmPanels multiplies the packed mc×kc A panel by the packed kc×nc B
// panel into C[ic:ic+mc, jc:jc+nc]. The loop over A strips is innermost so
// each B micro-panel (kc×nr) stays L1-resident while every strip of A
// streams over it.
func gemmPanels(c *Matrix, ap, bp []float32, ic, jc, mc, nc, kc int, kn *kernelImpl) {
	if kc == 0 {
		return
	}
	mr, nr := kn.mr, kn.nr
	for jr := 0; jr < nc; jr += nr {
		bpanel := bp[(jr/nr)*kc*nr:]
		cols := min(nr, nc-jr)
		for ir := 0; ir < mc; ir += mr {
			apanel := ap[(ir/mr)*kc*mr:]
			rows := min(mr, mc-ir)
			microTile(c, apanel, bpanel, kc, ic+ir, jc+jr, rows, cols, kn)
		}
	}
}

// microTile computes a full mr×nr accumulator tile over kc steps from the
// packed panels (zero-padded at the edges) and adds the valid rows×cols
// window into C at (i0, j0). Interior tiles (full mr×nr window) go
// through the direct-into-C kernel variant when the ISA has one; edge
// tiles take the accumulator path and mask the valid window in.
func microTile(c *Matrix, ap, bp []float32, kc, i0, j0, rows, cols int, kn *kernelImpl) {
	if rows == kn.mr && cols == kn.nr &&
		callKernelC(kn.id, &c.Data[i0*c.Stride+j0], c.Stride, &ap[0], &bp[0], kc) {
		return
	}
	var acc [maxAccTile]float32
	callKernel(kn.id, &acc[0], &ap[0], &bp[0], kc)
	nr := kn.nr
	for r := 0; r < rows; r++ {
		arow := acc[r*nr : r*nr+cols]
		crow := c.Data[(i0+r)*c.Stride+j0 : (i0+r)*c.Stride+j0+cols]
		for j := range crow {
			crow[j] += arow[j]
		}
	}
}
