package tile

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	m.FillRandom(rng)
	return m
}

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) not zero", i, j)
			}
		}
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	m := New(5, 7)
	m.Set(2, 3, 42)
	if m.At(2, 3) != 42 {
		t.Fatal("Set/At round trip failed")
	}
}

func TestAtPanicsOutOfBounds(t *testing.T) {
	m := New(2, 2)
	for _, idx := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d,%d) should panic", idx[0], idx[1])
				}
			}()
			m.At(idx[0], idx[1])
		}()
	}
}

func TestFromSliceAliases(t *testing.T) {
	buf := make([]float32, 6)
	m := FromSlice(2, 3, buf)
	m.Set(1, 2, 9)
	if buf[5] != 9 {
		t.Fatal("FromSlice must alias the buffer")
	}
}

func TestFromSliceTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with short buffer should panic")
		}
	}()
	FromSlice(3, 3, make([]float32, 8))
}

func TestViewAliasesAndStride(t *testing.T) {
	m := New(6, 6)
	v := m.View(2, 3, 2, 2)
	v.Set(0, 0, 5)
	v.Set(1, 1, 7)
	if m.At(2, 3) != 5 || m.At(3, 4) != 7 {
		t.Fatal("view writes must be visible in parent")
	}
	if v.IsDense() {
		t.Fatal("interior view should be strided, not dense")
	}
}

func TestViewZeroSized(t *testing.T) {
	m := New(4, 4)
	v := m.View(2, 1, 0, 3)
	if !v.IsDense() && v.Rows != 0 {
		t.Fatal("zero-row view misbehaves")
	}
	if v.Rows != 0 || v.Cols != 3 {
		t.Fatalf("zero view shape = %dx%d", v.Rows, v.Cols)
	}
}

func TestViewOutOfBoundsPanics(t *testing.T) {
	m := New(4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds view should panic")
		}
	}()
	m.View(2, 2, 3, 3)
}

func TestCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomMatrix(rng, 4, 5)
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone should equal source")
	}
	c.Set(0, 0, 999)
	if m.At(0, 0) == 999 {
		t.Fatal("clone must not alias source")
	}
}

func TestCopyFromStridedView(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomMatrix(rng, 8, 8)
	v := m.View(2, 2, 3, 3)
	dst := New(3, 3)
	dst.CopyFrom(v)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if dst.At(i, j) != m.At(2+i, 2+j) {
				t.Fatalf("copy mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestZeroAndFillRespectStride(t *testing.T) {
	m := New(4, 4)
	m.Fill(3)
	v := m.View(1, 1, 2, 2)
	v.Zero()
	if m.At(0, 0) != 3 || m.At(3, 3) != 3 {
		t.Fatal("Zero on view leaked outside the view")
	}
	if m.At(1, 1) != 0 || m.At(2, 2) != 0 {
		t.Fatal("Zero on view did not clear the view")
	}
}

func TestAddFromAndScale(t *testing.T) {
	a := New(2, 2)
	a.Fill(1)
	b := New(2, 2)
	b.Fill(2)
	a.AddFrom(b)
	if a.At(0, 0) != 3 {
		t.Fatal("AddFrom wrong")
	}
	a.Scale(2)
	if a.At(1, 1) != 6 {
		t.Fatal("Scale wrong")
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomMatrix(rng, 3, 5)
	tr := m.Transpose()
	if tr.Rows != 5 || tr.Cols != 3 {
		t.Fatalf("transpose shape = %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatal("transpose element mismatch")
			}
		}
	}
	if !m.Transpose().Transpose().Equal(m) {
		t.Fatal("double transpose should be identity")
	}
}

func TestMaxAbsDiffAndAllClose(t *testing.T) {
	a := New(2, 2)
	b := New(2, 2)
	b.Set(1, 1, 0.5)
	if d := a.MaxAbsDiff(b); d != 0.5 {
		t.Fatalf("MaxAbsDiff = %v", d)
	}
	if a.AllClose(b, 1e-3) {
		t.Fatal("AllClose should fail at tol 1e-3")
	}
	if !a.AllClose(b, 0.6) {
		t.Fatal("AllClose should pass at tol 0.6")
	}
}

func TestGemmNaiveKnownValues(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	c := New(2, 2)
	GemmNaive(c, a, b)
	want := FromSlice(2, 2, []float32{58, 64, 139, 154})
	if !c.Equal(want) {
		t.Fatalf("GemmNaive = %v, want %v", c.Data, want.Data)
	}
}

func TestGemmAccumulates(t *testing.T) {
	a := FromSlice(1, 1, []float32{2})
	b := FromSlice(1, 1, []float32{3})
	c := FromSlice(1, 1, []float32{10})
	Gemm(c, a, b)
	if c.At(0, 0) != 16 {
		t.Fatalf("Gemm must accumulate into C, got %v", c.At(0, 0))
	}
}

func TestGemmShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch should panic")
		}
	}()
	Gemm(New(2, 2), New(2, 3), New(4, 2))
}

func TestGemmMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	shapes := [][3]int{{1, 1, 1}, {2, 3, 4}, {64, 64, 64}, {65, 63, 67}, {128, 1, 128}, {1, 128, 1}, {100, 257, 33}}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := randomMatrix(rng, m, k)
		b := randomMatrix(rng, k, n)
		want := New(m, n)
		GemmNaive(want, a, b)
		got := New(m, n)
		Gemm(got, a, b)
		if !got.AllClose(want, 1e-4) {
			t.Fatalf("Gemm mismatch for %dx%dx%d: maxdiff %v", m, k, n, got.MaxAbsDiff(want))
		}
	}
}

func TestGemmParallelMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, workers := range []int{0, 1, 2, 5, 16} {
		a := randomMatrix(rng, 97, 83)
		b := randomMatrix(rng, 83, 71)
		want := New(97, 71)
		GemmNaive(want, a, b)
		got := New(97, 71)
		GemmParallel(got, a, b, workers)
		if !got.AllClose(want, 1e-4) {
			t.Fatalf("GemmParallel(%d workers) mismatch: %v", workers, got.MaxAbsDiff(want))
		}
	}
}

func TestGemmOnStridedViews(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	big := randomMatrix(rng, 50, 50)
	a := big.View(3, 5, 20, 15)
	b := big.View(10, 20, 15, 18)
	want := New(20, 18)
	GemmNaive(want, a.Clone(), b.Clone())
	cParent := New(40, 40)
	c := cParent.View(7, 9, 20, 18)
	Gemm(c, a, b)
	if !c.AllClose(want, 1e-4) {
		t.Fatalf("strided-view gemm mismatch: %v", c.MaxAbsDiff(want))
	}
	// Writes must not leak outside the C view.
	if cParent.At(0, 0) != 0 || cParent.At(39, 39) != 0 {
		t.Fatal("gemm wrote outside C view")
	}
}

// Property: GEMM is linear in A — (A1+A2)*B == A1*B + A2*B.
func TestGemmLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(20), 1+r.Intn(20), 1+r.Intn(20)
		a1 := randomMatrix(rng, m, k)
		a2 := randomMatrix(rng, m, k)
		b := randomMatrix(rng, k, n)
		sum := a1.Clone()
		sum.AddFrom(a2)
		lhs := New(m, n)
		Gemm(lhs, sum, b)
		rhs := New(m, n)
		Gemm(rhs, a1, b)
		Gemm(rhs, a2, b)
		return lhs.AllClose(rhs, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFlops(t *testing.T) {
	if Flops(2, 3, 4) != 48 {
		t.Fatalf("Flops(2,3,4) = %v", Flops(2, 3, 4))
	}
}

func BenchmarkGemm256(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	a := randomMatrix(rng, 256, 256)
	bm := randomMatrix(rng, 256, 256)
	c := New(256, 256)
	b.SetBytes(int64(Flops(256, 256, 256)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm(c, a, bm)
	}
}

func BenchmarkGemmParallel512(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	a := randomMatrix(rng, 512, 512)
	bm := randomMatrix(rng, 512, 512)
	c := New(512, 512)
	b.SetBytes(int64(Flops(512, 512, 512)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmParallel(c, a, bm, 0)
	}
}

func TestGemmTVariantsMatchExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	shapes := [][3]int{{5, 7, 9}, {64, 64, 64}, {33, 65, 17}, {1, 8, 3}}
	for _, s := range shapes {
		m, n, k := s[0], s[1], s[2]
		a := randomMatrix(rng, m, k)
		b := randomMatrix(rng, k, n)
		want := New(m, n)
		GemmNaive(want, a, b)

		at := a.Transpose() // k x m
		bt := b.Transpose() // n x k

		tn := New(m, n)
		GemmT(tn, at, b, Trans, NoTrans)
		if !tn.AllClose(want, 1e-4) {
			t.Fatalf("%dx%dx%d gemmTN mismatch: %g", m, n, k, tn.MaxAbsDiff(want))
		}
		nt := New(m, n)
		GemmT(nt, a, bt, NoTrans, Trans)
		if !nt.AllClose(want, 1e-4) {
			t.Fatalf("%dx%dx%d gemmNT mismatch: %g", m, n, k, nt.MaxAbsDiff(want))
		}
		tt := New(m, n)
		GemmT(tt, at, bt, Trans, Trans)
		if !tt.AllClose(want, 1e-4) {
			t.Fatalf("%dx%dx%d gemmTT mismatch: %g", m, n, k, tt.MaxAbsDiff(want))
		}
		nn := New(m, n)
		GemmT(nn, a, b, NoTrans, NoTrans)
		if !nn.AllClose(want, 1e-4) {
			t.Fatalf("%dx%dx%d gemmNN mismatch: %g", m, n, k, nn.MaxAbsDiff(want))
		}
	}
}

func TestGemmTAccumulates(t *testing.T) {
	a := FromSlice(1, 1, []float32{2}) // stored transposed: 1x1 either way
	b := FromSlice(1, 1, []float32{3})
	c := FromSlice(1, 1, []float32{10})
	GemmT(c, a, b, Trans, NoTrans)
	if c.At(0, 0) != 16 {
		t.Fatalf("GemmT must accumulate, got %v", c.At(0, 0))
	}
}

func TestGemmTShapeMismatchPanics(t *testing.T) {
	for _, flags := range [][2]TransFlag{{Trans, NoTrans}, {NoTrans, Trans}, {Trans, Trans}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("flags %v: shape mismatch should panic", flags)
				}
			}()
			GemmT(New(2, 2), New(3, 3), New(4, 4), flags[0], flags[1])
		}()
	}
}

func TestGemmTOnStridedViews(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	big := randomMatrix(rng, 40, 40)
	at := big.View(2, 3, 12, 9) // k=12 x m=9 (stores A^T)
	b := big.View(15, 1, 12, 11)
	want := New(9, 11)
	GemmNaive(want, at.Clone().Transpose(), b.Clone())
	got := New(9, 11)
	GemmT(got, at, b, Trans, NoTrans)
	if !got.AllClose(want, 1e-4) {
		t.Fatalf("strided gemmTN mismatch: %g", got.MaxAbsDiff(want))
	}
}

func TestCSRDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	c := RandomCSR(rng, 17, 23, 0.2)
	dense := c.ToDense()
	back := NewCSRFromDense(dense, 0)
	if !back.ToDense().Equal(dense) {
		t.Fatal("CSR <-> dense round trip failed")
	}
	if c.NNZ() == 0 {
		t.Fatal("random CSR has no entries")
	}
}

func TestCSRWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	c := RandomCSR(rng, 20, 20, 0.3)
	dense := c.ToDense()
	win := c.Window(3, 11, 5, 17)
	want := New(8, 12)
	want.CopyFrom(dense.View(3, 5, 8, 12))
	if !win.ToDense().Equal(want) {
		t.Fatal("CSR window mismatch")
	}
	// Degenerate windows.
	if empty := c.Window(5, 5, 0, 20); empty.NNZ() != 0 || empty.Rows != 0 {
		t.Fatal("empty row window should have no entries")
	}
}

func TestCSRWindowOutOfRangePanics(t *testing.T) {
	c := RandomCSR(rand.New(rand.NewSource(1)), 4, 4, 0.5)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range window should panic")
		}
	}()
	c.Window(0, 5, 0, 4)
}

func TestSpMMMatchesDenseGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, d := range []float64{0, 0.05, 0.3, 1.0} {
		a := RandomCSR(rng, 31, 27, d)
		b := randomMatrix(rng, 27, 19)
		want := New(31, 19)
		GemmNaive(want, a.ToDense(), b)
		got := New(31, 19)
		SpMM(got, a, b)
		if !got.AllClose(want, 1e-4) {
			t.Fatalf("density %g: SpMM mismatch %g", d, got.MaxAbsDiff(want))
		}
	}
}

func TestEncodeDecodeCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	c := RandomCSR(rng, 13, 29, 0.25)
	buf := EncodeCSR(c)
	if len(buf) != EncodedCSRLen(c.Rows, c.NNZ()) {
		t.Fatalf("encoded length %d, want %d", len(buf), EncodedCSRLen(c.Rows, c.NNZ()))
	}
	back := DecodeCSR(buf, 13, 29)
	if !back.ToDense().Equal(c.ToDense()) {
		t.Fatal("encode/decode round trip failed")
	}
}

func TestDecodeCSRShortBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short buffer should panic")
		}
	}()
	DecodeCSR(make([]float32, 3), 10, 10)
}
