//go:build race

package tile

// raceEnabled: see race_off_test.go.
const raceEnabled = true
