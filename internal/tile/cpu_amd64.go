//go:build amd64 && !purego

package tile

// Runtime CPU-feature detection for the GEMM micro-kernel dispatch. The
// module is dependency-free, so this is raw CPUID/XGETBV (two instructions
// of assembly, cpuid_amd64.s) rather than golang.org/x/sys/cpu. Detection
// covers exactly what the kernels need:
//
//   - avx2 kernel:   AVX2 + FMA, and the OS saving YMM state (XCR0[2:1]).
//   - avx512 kernel: AVX-512F (the kernel uses only F-level instructions:
//     VPXORQ/VBROADCASTSS/VFMADD231PS/VMOVUPS on ZMM), and the OS saving
//     opmask + ZMM state (XCR0[7:5]).
//
// SSE2 is architectural on amd64 and needs no check.

// cpuid executes CPUID for (leaf, sub); implemented in cpuid_amd64.s.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the XSAVE feature-enabled mask; implemented in
// cpuid_amd64.s. Only valid when CPUID.1:ECX.OSXSAVE is set.
func xgetbv0() (eax, edx uint32)

var (
	hasAVX2FMA bool // AVX2 + FMA usable (CPU and OS)
	hasAVX512  bool // AVX-512F usable (CPU and OS)
)

func detectCPU() {
	const (
		cpuid1FMA     = 1 << 12 // CPUID.1:ECX
		cpuid1OSXSAVE = 1 << 27
		cpuid1AVX     = 1 << 28
		cpuid7AVX2    = 1 << 5  // CPUID.7.0:EBX
		cpuid7AVX512F = 1 << 16 // CPUID.7.0:EBX
		xcr0YMM       = 0x6     // XMM (bit 1) + YMM (bit 2)
		xcr0ZMM       = 0xe6    // XMM+YMM + opmask (5) + ZMM_Hi256 (6) + Hi16_ZMM (7)
	)
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return
	}
	_, _, ecx1, _ := cpuid(1, 0)
	if ecx1&cpuid1OSXSAVE == 0 || ecx1&cpuid1AVX == 0 {
		return // OS does not manage extended state; stay on SSE2
	}
	xlo, _ := xgetbv0()
	_, ebx7, _, _ := cpuid(7, 0)
	hasAVX2FMA = ecx1&cpuid1FMA != 0 && ebx7&cpuid7AVX2 != 0 && xlo&xcr0YMM == xcr0YMM
	hasAVX512 = ebx7&cpuid7AVX512F != 0 && xlo&xcr0ZMM == xcr0ZMM
}
