package tile

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// The packed kernel must agree with the naive oracle on every shape class
// that shows up in the universal algorithm: degenerate vectors (1×N, N×1),
// single elements, shapes straddling every blocking boundary (mr, nr,
// kcBlock, mcBlock, ncBlock ± 1), and empty matrices.
func TestGemmPackedMatchesNaiveOddShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	kn := activeKern
	mr, nr := kn.mr, kn.nr
	shapes := [][3]int{
		{1, 1, 1}, {1, 1, 64}, {1, 64, 1}, {64, 1, 1},
		{1, 128, 128}, {128, 128, 1}, {128, 1, 128},
		{2, 3, 4}, {5, 7, 9},
		{mr - 1, 10, nr - 1}, {mr + 1, 10, nr + 1},
		{kn.mc - 1, kn.kc - 1, kn.nc/4 - 1},
		{kn.mc + 1, kn.kc + 1, 2*nr + 3},
		{3*mr + 2, 2*kn.kc + 5, 3*nr + 7},
		{100, 257, 33}, {65, 63, 67},
		{0, 5, 5}, {5, 0, 5}, {5, 5, 0},
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := randomMatrix(rng, m, k)
		b := randomMatrix(rng, k, n)
		want := New(m, n)
		GemmNaive(want, a, b)
		got := New(m, n)
		GemmPacked(got, a, b)
		if !got.AllClose(want, 1e-4) {
			t.Fatalf("GemmPacked mismatch for %dx%dx%d: maxdiff %v", m, k, n, got.MaxAbsDiff(want))
		}
	}
}

// Property: for random shapes and random strided sub-views of larger
// buffers (A, B, and C all strided), the packed kernel matches the oracle
// and accumulates into C rather than overwriting it.
func TestGemmPackedPropertyStridedViews(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(40), 1+r.Intn(40), 1+r.Intn(40)
		bigA := randomMatrix(r, m+r.Intn(5), k+r.Intn(5))
		bigB := randomMatrix(r, k+r.Intn(5), n+r.Intn(5))
		bigC := randomMatrix(r, m+r.Intn(5), n+r.Intn(5))
		a := bigA.View(bigA.Rows-m, bigA.Cols-k, m, k)
		b := bigB.View(bigB.Rows-k, bigB.Cols-n, k, n)
		c := bigC.View(bigC.Rows-m, bigC.Cols-n, m, n)
		want := c.Clone()
		GemmNaive(want, a.Clone(), b.Clone())
		GemmPacked(c, a, b)
		return c.AllClose(want, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The packed path must be allocation-free in the steady state: packing
// scratch comes from a pool, the accumulator tile lives on the stack.
func TestGemmPackedSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates and sync.Pool sheds items; alloc counts only meaningful without -race")
	}
	rng := rand.New(rand.NewSource(41))
	a := randomMatrix(rng, 96, 96)
	b := randomMatrix(rng, 96, 96)
	c := New(96, 96)
	GemmPacked(c, a, b) // warm the scratch pool
	allocs := testing.AllocsPerRun(10, func() {
		GemmPacked(c, a, b)
	})
	if allocs > 0 {
		t.Fatalf("GemmPacked allocates %v objects per call in steady state, want 0", allocs)
	}
}

// Gemm dispatches tiny products to the cache-blocked kernel and large ones
// to the packed kernel; both sides of the threshold must stay correct.
func TestGemmDispatchBothSidesOfThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, s := range [][3]int{{8, 8, 8}, {80, 80, 80}} {
		m, k, n := s[0], s[1], s[2]
		a := randomMatrix(rng, m, k)
		b := randomMatrix(rng, k, n)
		want := New(m, n)
		GemmNaive(want, a, b)
		got := New(m, n)
		Gemm(got, a, b)
		if !got.AllClose(want, 1e-4) {
			t.Fatalf("Gemm mismatch for %dx%dx%d", m, k, n)
		}
	}
}

// benchGemm reports GFLOP/s for one kernel at 512³, the acceptance
// comparison for the packed kernel (PR 3: packed ≥ 2× the seed kernel).
func benchGemm512(b *testing.B, kernel func(c, a, bm *Matrix)) {
	rng := rand.New(rand.NewSource(43))
	a := randomMatrix(rng, 512, 512)
	bm := randomMatrix(rng, 512, 512)
	c := New(512, 512)
	flops := Flops(512, 512, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernel(c, a, bm)
	}
	b.StopTimer()
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

// BenchmarkGemmPacked512 vs BenchmarkGemmBlockedSeed512 is the kernel
// acceptance pair: single-goroutine 512×512×512.
func BenchmarkGemmPacked512(b *testing.B)      { benchGemm512(b, GemmPacked) }
func BenchmarkGemmBlockedSeed512(b *testing.B) { benchGemm512(b, GemmBlocked) }
func BenchmarkGemmNaive512(b *testing.B)       { benchGemm512(b, GemmNaive) }
