//go:build !amd64 || purego

package tile

// Without amd64 assembly (foreign architectures, or -tags purego) the
// portable Go micro-kernel is the only variant.
func buildKernelTable() []*kernelImpl { return []*kernelImpl{goKernel} }

// callKernel has a single target here; the indirection mirrors the amd64
// dispatch so pack.go is identical across builds.
func callKernel(_ kernID, acc, ap, bp *float32, kc int) {
	microKernelGo(acc, ap, bp, kc)
}

// callKernelC: no direct-into-C variants without assembly; every tile
// takes the acc+masked-add path.
func callKernelC(kernID, *float32, int, *float32, *float32, int) bool { return false }
