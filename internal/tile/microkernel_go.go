package tile

import "unsafe"

// goMR/goNR is the register-tile shape of the portable Go micro-kernel
// (goKernel in dispatch.go).
const (
	goMR = 4
	goNR = 8
)

// microKernelGo computes acc = Apanel·Bpanel for one 4×8 register tile: ap
// points at a packed 4-row strip (kc×4, k-major), bp at a packed 8-column
// strip (kc×8, k-major). acc (row-major, stride 8) is overwritten, not
// accumulated into. Portable fallback and reference for the assembly
// kernels: fixed-size-array accesses keep the inner loop
// bounds-check-free, and the 4-way K unroll amortizes loop overhead.
func microKernelGo(acc, ap, bp *float32, kc int) {
	aps := unsafe.Slice(ap, kc*goMR)
	bps := unsafe.Slice(bp, kc*goNR)
	var acc0, acc1, acc2, acc3 [goNR]float32
	kk := 0
	for ; kk+3 < kc; kk += 4 {
		a := (*[4 * goMR]float32)(aps[kk*goMR:])
		b0 := (*[goNR]float32)(bps[kk*goNR:])
		b1 := (*[goNR]float32)(bps[(kk+1)*goNR:])
		b2 := (*[goNR]float32)(bps[(kk+2)*goNR:])
		b3 := (*[goNR]float32)(bps[(kk+3)*goNR:])
		a00, a01, a02, a03 := a[0], a[1], a[2], a[3]
		a10, a11, a12, a13 := a[4], a[5], a[6], a[7]
		a20, a21, a22, a23 := a[8], a[9], a[10], a[11]
		a30, a31, a32, a33 := a[12], a[13], a[14], a[15]
		for j := 0; j < goNR; j++ {
			v0, v1, v2, v3 := b0[j], b1[j], b2[j], b3[j]
			acc0[j] += a00*v0 + a10*v1 + a20*v2 + a30*v3
			acc1[j] += a01*v0 + a11*v1 + a21*v2 + a31*v3
			acc2[j] += a02*v0 + a12*v1 + a22*v2 + a32*v3
			acc3[j] += a03*v0 + a13*v1 + a23*v2 + a33*v3
		}
	}
	for ; kk < kc; kk++ {
		a := (*[goMR]float32)(aps[kk*goMR:])
		b0 := (*[goNR]float32)(bps[kk*goNR:])
		a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
		for j := 0; j < goNR; j++ {
			v := b0[j]
			acc0[j] += a0 * v
			acc1[j] += a1 * v
			acc2[j] += a2 * v
			acc3[j] += a3 * v
		}
	}
	out := unsafe.Slice(acc, goMR*goNR)
	copy(out[0*goNR:1*goNR], acc0[:])
	copy(out[1*goNR:2*goNR], acc1[:])
	copy(out[2*goNR:3*goNR], acc2[:])
	copy(out[3*goNR:4*goNR], acc3[:])
}
