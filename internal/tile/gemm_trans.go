package tile

import "fmt"

// Transpose flags for the general GEMM entry points. They follow BLAS
// conventions: with TransA, the A operand is stored as its transpose
// (k×m) and the multiplication uses Aᵀ.
type TransFlag bool

const (
	NoTrans TransFlag = false
	Trans   TransFlag = true
)

// GemmT computes C += op(A)·op(B) where op(X) is X or Xᵀ according to the
// flags. A is stored m×k when transA is NoTrans and k×m otherwise;
// likewise for B. These kernels exist for the backward pass of a linear
// layer (dX = dY·Wᵀ, dW = Xᵀ·dY), which the paper's sequence-parallelism
// discussion (§2.2) identifies as the moment weights must be communicated.
func GemmT(c, a, b *Matrix, transA, transB TransFlag) {
	switch {
	case transA == NoTrans && transB == NoTrans:
		Gemm(c, a, b)
	case transA == Trans && transB == NoTrans:
		gemmTN(c, a, b)
	case transA == NoTrans && transB == Trans:
		gemmNT(c, a, b)
	default:
		gemmTT(c, a, b)
	}
}

// gemmTN computes C += Aᵀ·B with A stored k×m. The loop order keeps B and
// C accesses row-contiguous; A is walked down columns, which the blocked
// outer loop keeps cache-resident.
func gemmTN(c, a, b *Matrix) {
	k, m := a.Rows, a.Cols
	if b.Rows != k || c.Rows != m || c.Cols != b.Cols {
		panic(fmt.Sprintf("tile: gemmTN shape mismatch C %dx%d = A^T(%dx%d) * B %dx%d",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	for l0 := 0; l0 < k; l0 += blockSize {
		lMax := min(l0+blockSize, k)
		for i := 0; i < m; i++ {
			crow := c.Data[i*c.Stride : i*c.Stride+c.Cols]
			for l := l0; l < lMax; l++ {
				av := a.Data[l*a.Stride+i]
				if av == 0 {
					continue
				}
				brow := b.Data[l*b.Stride : l*b.Stride+b.Cols]
				for j := range crow {
					crow[j] += av * brow[j]
				}
			}
		}
	}
}

// gemmNT computes C += A·Bᵀ with B stored n×k. Inner products of
// contiguous rows: both A and B rows stream sequentially.
func gemmNT(c, a, b *Matrix) {
	m, k := a.Rows, a.Cols
	n := b.Rows
	if b.Cols != k || c.Rows != m || c.Cols != n {
		panic(fmt.Sprintf("tile: gemmNT shape mismatch C %dx%d = A %dx%d * B^T(%dx%d)",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	for i := 0; i < m; i++ {
		arow := a.Data[i*a.Stride : i*a.Stride+k]
		crow := c.Data[i*c.Stride : i*c.Stride+c.Cols]
		for j := 0; j < n; j++ {
			brow := b.Data[j*b.Stride : j*b.Stride+k]
			var sum float32
			for l := range arow {
				sum += arow[l] * brow[l]
			}
			crow[j] += sum
		}
	}
}

// gemmTT computes C += Aᵀ·Bᵀ (A stored k×m, B stored n×k) via the identity
// (Aᵀ·Bᵀ)ᵢⱼ = Σ A[l,i]·B[j,l].
func gemmTT(c, a, b *Matrix) {
	k, m := a.Rows, a.Cols
	n := b.Rows
	if b.Cols != k || c.Rows != m || c.Cols != n {
		panic(fmt.Sprintf("tile: gemmTT shape mismatch C %dx%d = A^T(%dx%d) * B^T(%dx%d)",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	for i := 0; i < m; i++ {
		crow := c.Data[i*c.Stride : i*c.Stride+c.Cols]
		for j := 0; j < n; j++ {
			brow := b.Data[j*b.Stride : j*b.Stride+k]
			var sum float32
			for l := 0; l < k; l++ {
				sum += a.Data[l*a.Stride+i] * brow[l]
			}
			crow[j] += sum
		}
	}
}
