// Package tile implements local dense matrices and the GEMM kernels used for
// per-tile computation. Matrices are row-major float32, matching the FP32
// GEMMs evaluated in the paper. A Matrix may either own its storage or be a
// strided view into another matrix, which is how tile slices ("C(1,1)[...]"
// in Figure 1) are expressed without copying.
package tile

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a row-major float32 matrix, possibly a strided view into a
// larger buffer. Element (i, j) lives at Data[i*Stride+j].
type Matrix struct {
	Rows, Cols int
	Stride     int
	Data       []float32
}

// New allocates a zeroed rows×cols matrix with a dense (Stride == Cols)
// layout.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tile: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Stride: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps an existing buffer as a dense rows×cols matrix. The buffer
// must hold at least rows*cols elements; the matrix aliases it.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) < rows*cols {
		panic(fmt.Sprintf("tile: buffer of %d elements too small for %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Stride: cols, Data: data[:rows*cols]}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 {
	m.checkIndex(i, j)
	return m.Data[i*m.Stride+j]
}

// Set stores v at element (i, j).
func (m *Matrix) Set(i, j int, v float32) {
	m.checkIndex(i, j)
	m.Data[i*m.Stride+j] = v
}

func (m *Matrix) checkIndex(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("tile: index (%d,%d) out of %dx%d matrix", i, j, m.Rows, m.Cols))
	}
}

// View returns a strided view of the submatrix starting at (row, col) with
// the given shape. The view aliases m's storage: writes through the view are
// visible in m.
func (m *Matrix) View(row, col, rows, cols int) *Matrix {
	dst := new(Matrix)
	m.ViewInto(dst, row, col, rows, cols)
	return dst
}

// ViewInto fills dst with the view m.View(row, col, rows, cols) without
// allocating, for hot paths that keep view headers in recycled storage.
func (m *Matrix) ViewInto(dst *Matrix, row, col, rows, cols int) {
	if row < 0 || col < 0 || rows < 0 || cols < 0 || row+rows > m.Rows || col+cols > m.Cols {
		panic(fmt.Sprintf("tile: view (%d,%d)+%dx%d out of %dx%d matrix", row, col, rows, cols, m.Rows, m.Cols))
	}
	if rows == 0 || cols == 0 {
		*dst = Matrix{Rows: rows, Cols: cols, Stride: m.Stride}
		return
	}
	start := row*m.Stride + col
	end := (row+rows-1)*m.Stride + col + cols
	*dst = Matrix{Rows: rows, Cols: cols, Stride: m.Stride, Data: m.Data[start:end]}
}

// IsDense reports whether the matrix rows are contiguous in memory.
func (m *Matrix) IsDense() bool { return m.Stride == m.Cols || m.Rows <= 1 }

// Clone returns a dense deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	out.CopyFrom(m)
	return out
}

// CopyFrom copies src into m. Shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("tile: copy shape mismatch %dx%d <- %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Data[i*m.Stride:i*m.Stride+m.Cols], src.Data[i*src.Stride:i*src.Stride+src.Cols])
	}
}

// Zero sets every element of m to zero.
func (m *Matrix) Zero() {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			row[j] = 0
		}
	}
}

// Fill sets every element of m to v.
func (m *Matrix) Fill(v float32) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			row[j] = v
		}
	}
}

// FillRandom fills m with uniform values in [-1, 1) from rng.
func (m *Matrix) FillRandom(rng *rand.Rand) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			row[j] = rng.Float32()*2 - 1
		}
	}
}

// AddFrom accumulates src into m element-wise (m += src). Shapes must match.
func (m *Matrix) AddFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("tile: add shape mismatch %dx%d += %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		dst := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		s := src.Data[i*src.Stride : i*src.Stride+src.Cols]
		for j := range dst {
			dst[j] += s[j]
		}
	}
}

// Scale multiplies every element of m by alpha.
func (m *Matrix) Scale(alpha float32) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			row[j] *= alpha
		}
	}
}

// Transpose returns a newly allocated transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Stride+i] = m.Data[i*m.Stride+j]
		}
	}
	return out
}

// Equal reports whether m and other have identical shape and elements.
func (m *Matrix) Equal(other *Matrix) bool {
	return m.MaxAbsDiff(other) == 0
}

// MaxAbsDiff returns the max absolute element-wise difference between two
// equally shaped matrices. It panics on shape mismatch.
func (m *Matrix) MaxAbsDiff(other *Matrix) float64 {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("tile: diff shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	var worst float64
	for i := 0; i < m.Rows; i++ {
		a := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		b := other.Data[i*other.Stride : i*other.Stride+other.Cols]
		for j := range a {
			d := math.Abs(float64(a[j]) - float64(b[j]))
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

// AllClose reports whether every element of m is within tol of other,
// where tol scales with the magnitude of the values (mixed absolute/relative
// tolerance suitable for float32 GEMM verification).
func (m *Matrix) AllClose(other *Matrix, tol float64) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		a := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		b := other.Data[i*other.Stride : i*other.Stride+other.Cols]
		for j := range a {
			av, bv := float64(a[j]), float64(b[j])
			scale := math.Max(1, math.Max(math.Abs(av), math.Abs(bv)))
			if math.Abs(av-bv) > tol*scale {
				return false
			}
		}
	}
	return true
}

// Norm1 returns the sum of absolute values of all elements.
func (m *Matrix) Norm1() float64 {
	var s float64
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			s += math.Abs(float64(row[j]))
		}
	}
	return s
}

func (m *Matrix) String() string {
	return fmt.Sprintf("Matrix{%dx%d stride %d}", m.Rows, m.Cols, m.Stride)
}
