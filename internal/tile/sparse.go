package tile

import (
	"fmt"
	"math/rand"
	"sort"
)

// CSR is a compressed-sparse-row matrix, the local format for the
// sparse-times-dense (SpMM) extension. The paper's lineage includes
// one-sided algorithms for sparse matrix multiplication (Brock et al.,
// ICS'24 [5]; Koanantakool et al., IPDPS'16 [16]); the universal
// algorithm's slicing pass is format-agnostic, so supporting a sparse A
// only requires a sparse local kernel and sparse tile storage.
type CSR struct {
	Rows, Cols int
	RowPtr     []int32 // len Rows+1; RowPtr[i]..RowPtr[i+1] index row i's entries
	ColIdx     []int32 // len NNZ
	Values     []float32
}

// NNZ returns the number of stored entries.
func (c *CSR) NNZ() int { return len(c.Values) }

// NewCSRFromDense converts a dense matrix to CSR, keeping entries with
// absolute value above threshold (0 keeps exact non-zeros).
func NewCSRFromDense(m *Matrix, threshold float32) *CSR {
	out := &CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: make([]int32, m.Rows+1)}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			v := m.At(i, j)
			if v > threshold || v < -threshold || (threshold == 0 && v != 0) {
				out.ColIdx = append(out.ColIdx, int32(j))
				out.Values = append(out.Values, v)
			}
		}
		out.RowPtr[i+1] = int32(len(out.Values))
	}
	return out
}

// ToDense expands the CSR matrix to dense form.
func (c *CSR) ToDense() *Matrix {
	out := New(c.Rows, c.Cols)
	for i := 0; i < c.Rows; i++ {
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			out.Set(i, int(c.ColIdx[p]), c.Values[p])
		}
	}
	return out
}

// RandomCSR builds a uniformly sparse rows×cols matrix with approximately
// density fraction of entries set, values uniform in [-1, 1).
func RandomCSR(rng *rand.Rand, rows, cols int, density float64) *CSR {
	if density < 0 || density > 1 {
		panic(fmt.Sprintf("tile: invalid density %g", density))
	}
	out := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int32, rows+1)}
	for i := 0; i < rows; i++ {
		nnz := 0
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				nnz++
				out.ColIdx = append(out.ColIdx, int32(j))
				out.Values = append(out.Values, rng.Float32()*2-1)
			}
		}
		out.RowPtr[i+1] = out.RowPtr[i] + int32(nnz)
	}
	return out
}

// Window extracts the sub-matrix [r0:r1) × [c0:c1) as a fresh CSR with
// local (shifted) indices — the slicing operation of the universal
// algorithm applied to a sparse tile.
func (c *CSR) Window(r0, r1, c0, c1 int) *CSR {
	if r0 < 0 || r1 > c.Rows || c0 < 0 || c1 > c.Cols || r1 < r0 || c1 < c0 {
		panic(fmt.Sprintf("tile: CSR window [%d:%d)x[%d:%d) out of %dx%d", r0, r1, c0, c1, c.Rows, c.Cols))
	}
	out := &CSR{Rows: r1 - r0, Cols: c1 - c0, RowPtr: make([]int32, r1-r0+1)}
	for i := r0; i < r1; i++ {
		lo := int(c.RowPtr[i])
		hi := int(c.RowPtr[i+1])
		// Column indices within a row are sorted; binary search the window.
		start := lo + sort.Search(hi-lo, func(k int) bool { return c.ColIdx[lo+k] >= int32(c0) })
		end := lo + sort.Search(hi-lo, func(k int) bool { return c.ColIdx[lo+k] >= int32(c1) })
		for p := start; p < end; p++ {
			out.ColIdx = append(out.ColIdx, c.ColIdx[p]-int32(c0))
			out.Values = append(out.Values, c.Values[p])
		}
		out.RowPtr[i-r0+1] = int32(len(out.Values))
	}
	return out
}

// SpMM computes C += A·B with sparse A and dense B.
func SpMM(c *Matrix, a *CSR, b *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("tile: spmm shape mismatch C %dx%d = A %dx%d * B %dx%d",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		crow := c.Data[i*c.Stride : i*c.Stride+c.Cols]
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			av := a.Values[p]
			brow := b.Data[int(a.ColIdx[p])*b.Stride : int(a.ColIdx[p])*b.Stride+b.Cols]
			for j := range crow {
				crow[j] += av * brow[j]
			}
		}
	}
}

// EncodeCSR serializes a CSR tile into a float32 buffer for symmetric
// memory: [nnz, rowPtr..., colIdx..., values...], with the integer fields
// stored as exact float32 values (tile dimensions and nnz stay far below
// 2^24, the float32 exact-integer limit, for any realistic tile).
func EncodeCSR(c *CSR) []float32 {
	out := make([]float32, 0, 1+len(c.RowPtr)+2*c.NNZ())
	out = append(out, float32(c.NNZ()))
	for _, v := range c.RowPtr {
		out = append(out, float32(v))
	}
	for _, v := range c.ColIdx {
		out = append(out, float32(v))
	}
	out = append(out, c.Values...)
	return out
}

// EncodedCSRLen returns the buffer length EncodeCSR produces for a tile of
// the given shape and nnz.
func EncodedCSRLen(rows, nnz int) int { return 1 + rows + 1 + 2*nnz }

// DecodeCSR deserializes a buffer written by EncodeCSR into a rows×cols
// CSR tile.
func DecodeCSR(buf []float32, rows, cols int) *CSR {
	if len(buf) < 1+rows+1 {
		panic(fmt.Sprintf("tile: CSR buffer of %d too short for %d rows", len(buf), rows))
	}
	nnz := int(buf[0])
	if len(buf) < EncodedCSRLen(rows, nnz) {
		panic(fmt.Sprintf("tile: CSR buffer of %d too short for %d rows, %d nnz", len(buf), rows, nnz))
	}
	out := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int32, rows+1),
		ColIdx: make([]int32, nnz), Values: make([]float32, nnz)}
	pos := 1
	for i := range out.RowPtr {
		out.RowPtr[i] = int32(buf[pos])
		pos++
	}
	for i := range out.ColIdx {
		out.ColIdx[i] = int32(buf[pos])
		pos++
	}
	copy(out.Values, buf[pos:pos+nnz])
	return out
}
