package bench

// PR 5 acceptance: the fabric-aware plan-replay estimator must land in the
// timed backend's regime on the incast-style sweep exactly where the
// scalar estimator provably diverges, and the figure-point validation
// helper must produce comparable estimator/timed numbers.

import (
	"testing"

	"slicing/internal/universal"
)

func TestFabricEstimatorAgreesWithSimbackendOnIncast(t *testing.T) {
	const nodes = 3
	fabricSec, scalarSec := EstimatorIncast(nodes)
	if fabricSec <= 0 || scalarSec <= 0 {
		t.Fatalf("degenerate estimates: fabric %g, scalar %g", fabricSec, scalarSec)
	}
	timed := TimedIncastReduce(universal.H100FatTreeSystem(nodes, 1, 1), nodes).Makespan

	// The scalar estimator prices the single-NIC storm near-parallel and
	// must diverge from the timed run by at least 2x; the fabric-aware
	// estimator must land within a modest factor of it. (The estimator
	// replays static plans, the backend times a dynamic execution, so exact
	// agreement is not expected — regime agreement is.)
	if timed < 2*scalarSec {
		t.Fatalf("scalar estimator (%.6gs) should provably diverge >=2x from the timed storm (%.6gs): got %.2fx",
			scalarSec, timed, timed/scalarSec)
	}
	if ratio := fabricSec / timed; ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("fabric estimator (%.6gs) should agree with simbackend (%.6gs) within 2x: got %.2fx",
			fabricSec, timed, ratio)
	}
	if fabricSec < 2*scalarSec {
		t.Fatalf("fabric estimator (%.6gs) should price the storm >=2x the scalar estimator (%.6gs)",
			fabricSec, scalarSec)
	}
}

func TestValidatePointProducesComparableNumbers(t *testing.T) {
	sys := universal.H100System()
	pt := BestUA(sys, MLP1, 1024, PartOuterProd, Options{Replications: []int{1, 2}})
	v := ValidatePoint(sys, MLP1, PartOuterProd, pt, 16)
	if v.EstimatorPct <= 0 || v.SimbackendPct <= 0 || v.GpubackendPct <= 0 {
		t.Fatalf("validation point has non-positive percentages: %+v", v)
	}
	if v.EstimatorPct > 100 || v.SimbackendPct > 100 || v.GpubackendPct > 100 {
		t.Fatalf("validation point exceeds peak: %+v", v)
	}
	lo, hi := v.ErrBar()
	if lo > hi {
		t.Fatalf("error bar inverted: [%g, %g]", lo, hi)
	}
	// The estimator and the timed backends model the same §4.3 costs; at
	// validation scale they must agree within a small factor, or the error
	// bars would be meaningless decoration. The lower bound allows for
	// single-CPU runners: with GOMAXPROCS=1 the PE goroutines serialize, so
	// transfers arrive at the fabric's FIFO queues in bursts the estimator's
	// idealized replay does not model, and the timed backends price extra
	// queueing delay (measured ratio 0.23 on a 1-CPU container, ~0.5+ with
	// real parallelism).
	for _, timed := range []float64{v.SimbackendPct, v.GpubackendPct} {
		if r := timed / v.EstimatorPct; r < 0.15 || r > 4 {
			t.Fatalf("timed %.2f%% vs estimator %.2f%%: ratio %.2f outside [0.15, 4]", timed, v.EstimatorPct, r)
		}
	}
}
