package bench

import "testing"

// TestRunServeRecoveryAcceptance is the ISSUE acceptance check at reduced
// client count: a seeded storm crashes one rank mid-multiply under
// concurrent serving load with failover on, and the server must keep
// availability at 100% of requests with the crash absorbed by recovery.
func TestRunServeRecoveryAcceptance(t *testing.T) {
	// CrashAfter scales with load: the full 640-request bench uses the 200
	// default; this 64-request test arms the rule proportionally earlier.
	r := RunServeRecovery(ServeRecoveryOptions{Workers: 16, PerWorker: 4, CrashAfter: 20})
	if r.Crashes != 1 {
		t.Fatalf("crash rule fired %d times, want 1", r.Crashes)
	}
	if r.AvailabilityPct < 99 {
		t.Fatalf("availability %.2f%% below the 99%% acceptance floor (%+v)", r.AvailabilityPct, r)
	}
	if r.RecoveredReqs < 1 || r.Replans < 1 {
		t.Fatalf("crash was not absorbed by recovery: %+v", r)
	}
	if r.Replans > 0 && r.ReplanMsP99 <= 0 {
		t.Fatalf("replans recorded but no replan latency: %+v", r)
	}
	if r.Requests != 16*4 {
		t.Fatalf("issued %d requests, want 64", r.Requests)
	}
}
