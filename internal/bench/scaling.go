package bench

import (
	"fmt"

	"slicing/internal/distmat"
	"slicing/internal/gpusim"
	"slicing/internal/shmem"
	"slicing/internal/simnet"
	"slicing/internal/universal"
)

// ClusterSystem returns a multi-node H100 system (450 GB/s NVLink inside a
// node, RDMA-NIC class links between nodes), extending the paper's
// single-node evaluation to the regime its §3 inter-node accumulate path
// targets.
func ClusterSystem(nodes int) universal.SimSystem {
	return universal.SimSystem{
		Topo: simnet.PresetH100Cluster(nodes),
		Dev:  gpusim.PresetH100Device(),
	}
}

// ScalingPoint is one cluster size in a strong-scaling sweep.
type ScalingPoint struct {
	Nodes         int
	PEs           int
	Makespan      float64
	PercentOfPeak float64
	Speedup       float64 // relative to the smallest cluster in the sweep
	Efficiency    float64 // speedup / (PEs ratio)
}

// StrongScaling runs a fixed MLP problem across growing cluster sizes
// with the best partitioning found per size (quick replication sweep) and
// reports speedup and parallel efficiency.
func StrongScaling(layer Layer, batch int, nodeCounts []int) []ScalingPoint {
	var out []ScalingPoint
	m, n, k := layer.Dims(batch)
	for _, nodes := range nodeCounts {
		sys := ClusterSystem(nodes)
		p := sys.Topo.NumPE()
		best := -1.0
		var bestRes universal.SimResult
		for _, part := range []Partitioning{PartColumn, PartOuterProd, PartBlock} {
			for _, c := range []int{1, nodes} { // per-node replication is the natural cluster choice
				if p%c != 0 {
					continue
				}
				w := shmem.NewWorld(p)
				pa, pb, pc := part.Parts()
				a := distmat.New(w, m, k, pa, c)
				b := distmat.New(w, k, n, pb, c)
				cm := distmat.New(w, m, n, pc, 1)
				cfg := universal.DefaultConfig()
				res := universal.SimulateMultiply(universal.NewProblem(cm, a, b), cfg, sys)
				if res.RemoteGetBytes+res.RemoteAccumBytes == 0 {
					continue
				}
				if res.PercentOfPeak > best {
					best = res.PercentOfPeak
					bestRes = res
				}
			}
		}
		out = append(out, ScalingPoint{
			Nodes: nodes, PEs: p,
			Makespan: bestRes.Makespan, PercentOfPeak: bestRes.PercentOfPeak,
		})
	}
	if len(out) > 0 {
		base := out[0]
		for i := range out {
			out[i].Speedup = base.Makespan / out[i].Makespan
			out[i].Efficiency = out[i].Speedup * float64(base.PEs) / float64(out[i].PEs)
		}
	}
	return out
}

func (sp ScalingPoint) String() string {
	return fmt.Sprintf("%d nodes (%d PEs): %.4fs, %.1f%% peak, speedup %.2fx, efficiency %.0f%%",
		sp.Nodes, sp.PEs, sp.Makespan, sp.PercentOfPeak, sp.Speedup, sp.Efficiency*100)
}
