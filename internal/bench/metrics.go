package bench

import "strings"

// Throughput expresses one figure point in absolute units rather than
// percent of peak: aggregate modeled GFLOP/s across the node and the
// one-sided traffic rate the configuration sustains.
type Throughput struct {
	GFlops float64 // 2mnk / makespan, in GFLOP/s
	MBs    float64 // remote get+accumulate bytes / makespan, in MB/s
}

// PointThroughput converts a point measured for the given layer into
// absolute throughput. Points with no makespan (degenerate sweeps) report
// zeros.
func PointThroughput(layer Layer, pt Point) Throughput {
	if pt.Makespan <= 0 {
		return Throughput{}
	}
	m, n, k := layer.Dims(pt.Batch)
	flops := 2 * float64(m) * float64(n) * float64(k)
	return Throughput{
		GFlops: flops / pt.Makespan / 1e9,
		MBs:    pt.RemoteMB / pt.Makespan,
	}
}

// BestUAPoint returns the highest percent-of-peak point among the
// universal-algorithm series — the figure's headline configuration for the
// paper's claim. The comparison series (DTensor, COSMA) are excluded: they
// are reference lines and do not carry traffic measurements.
func (f Figure) BestUAPoint() Point {
	best := Point{PercentOfPeak: -1}
	for _, s := range f.Series {
		if !strings.HasPrefix(s.Name, "UA - ") {
			continue
		}
		for _, pt := range s.Points {
			if pt.PercentOfPeak > best.PercentOfPeak {
				best = pt
			}
		}
	}
	return best
}
