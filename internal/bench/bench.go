// Package bench is the experiment harness that regenerates the paper's
// evaluation (Figures 2-3 and the supporting ablations): MLP-1 and MLP-2
// GPT-like problem sizes across batch sizes, the six universal-algorithm
// partitionings (Block, Column, Outer Product, Inner Product, Row,
// Traditional), exhaustive replication-factor sweeps with the best result
// reported per partitioning (replication annotated, paper-style), and the
// DTensor and COSMA comparison series.
package bench

import (
	"fmt"
	"math"

	"slicing/internal/cosma"
	"slicing/internal/distmat"
	"slicing/internal/dtensor"
	"slicing/internal/gpusim"
	rt "slicing/internal/runtime"
	"slicing/internal/shmem"
	"slicing/internal/simbackend"
	"slicing/internal/universal"
)

// Layer selects which MLP matrix multiplication is benchmarked (§5.2.1):
// MLP-1 expands the hidden dimension (m=batch, n=4h, k=h), MLP-2 shrinks
// it back (m=batch, n=h, k=4h).
type Layer int

const (
	MLP1 Layer = iota
	MLP2
)

func (l Layer) String() string {
	if l == MLP1 {
		return "MLP-1"
	}
	return "MLP-2"
}

// Hidden is the paper's hidden dimension h = 12K, with r = 4.
const Hidden = 12288

// Dims returns (m, n, k) for the layer at the given batch size.
func (l Layer) Dims(batch int) (m, n, k int) {
	if l == MLP1 {
		return batch, 4 * Hidden, Hidden
	}
	return batch, Hidden, 4 * Hidden
}

// Batches are the batch sizes of Figures 2-3.
var Batches = []int{1024, 2048, 4096, 8192}

// Partitioning names one of the partitioning families evaluated for the
// universal algorithm ("UA - ..." series in the figures).
type Partitioning int

const (
	// PartBlock is a 2D block distribution for all three matrices.
	PartBlock Partitioning = iota
	// PartColumn is a 1D column block distribution for all three.
	PartColumn
	// PartOuterProd is column-block A times row-block B (outer-product
	// style, Megatron-MLP-second-layer-like); C is 2D blocked.
	PartOuterProd
	// PartInnerProd is row-block A times column-block B (inner-product
	// style, sequence-parallel-like); C is 2D blocked.
	PartInnerProd
	// PartRow is a 1D row block distribution for all three.
	PartRow
	// PartTraditional is the aligned 2D blocked layout classical
	// implementations require (one tile per process, tiles of A, B, C
	// aligned on the same process grid).
	PartTraditional
)

// UAPartitionings lists the six families in figure order.
var UAPartitionings = []Partitioning{PartBlock, PartColumn, PartOuterProd, PartInnerProd, PartRow, PartTraditional}

func (pk Partitioning) String() string {
	switch pk {
	case PartBlock:
		return "Block"
	case PartColumn:
		return "Column"
	case PartOuterProd:
		return "Outer Prod."
	case PartInnerProd:
		return "Inner Prod."
	case PartRow:
		return "Row"
	case PartTraditional:
		return "Traditional"
	}
	return "?"
}

// Parts returns the partition objects for (A, B, C).
func (pk Partitioning) Parts() (pa, pb, pc distmat.Partition) {
	switch pk {
	case PartBlock:
		return distmat.Block2D{}, distmat.Block2D{}, distmat.Block2D{}
	case PartColumn:
		return distmat.ColBlock{}, distmat.ColBlock{}, distmat.ColBlock{}
	case PartOuterProd:
		return distmat.ColBlock{}, distmat.RowBlock{}, distmat.Block2D{}
	case PartInnerProd:
		return distmat.RowBlock{}, distmat.ColBlock{}, distmat.Block2D{}
	case PartRow:
		return distmat.RowBlock{}, distmat.RowBlock{}, distmat.RowBlock{}
	case PartTraditional:
		return distmat.Block2D{}, distmat.Block2D{}, distmat.Block2D{}
	}
	panic("bench: unknown partitioning")
}

// Point is one measured configuration.
type Point struct {
	Batch         int
	PercentOfPeak float64
	// ReplAB and ReplC annotate the winning replication factors, printed
	// above each figure point ("2" or "2-1" style).
	ReplAB, ReplC int
	Stationary    universal.Stationary
	Makespan      float64
	// RemoteMB is the one-sided traffic (gets + accumulates) of the
	// configuration in megabytes, for absolute-throughput reporting.
	RemoteMB float64
}

// ReplLabel formats the replication annotation the way the figures do.
func (pt Point) ReplLabel() string {
	if pt.ReplAB == pt.ReplC {
		return fmt.Sprintf("%d", pt.ReplAB)
	}
	return fmt.Sprintf("%d-%d", pt.ReplAB, pt.ReplC)
}

// Series is one line in a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure is the full data behind one plot.
type Figure struct {
	Title  string
	System string
	Layer  Layer
	Series []Series
}

// Options tunes the sweep.
type Options struct {
	// Replications lists candidate replication factors; nil sweeps every
	// divisor of the PE count.
	Replications []int
	// Stationaries lists strategies to try; nil tries B and C (the two the
	// figures report).
	Stationaries []universal.Stationary
	// Batches overrides the batch sizes; nil uses the paper's four.
	Batches []int
}

func (o Options) withDefaults(p int) Options {
	if o.Replications == nil {
		for c := 1; c <= p; c++ {
			if p%c == 0 {
				o.Replications = append(o.Replications, c)
			}
		}
	}
	if o.Stationaries == nil {
		o.Stationaries = []universal.Stationary{universal.StationaryB, universal.StationaryC}
	}
	if o.Batches == nil {
		o.Batches = Batches
	}
	return o
}

// RunUA simulates one universal-algorithm configuration.
func RunUA(sys universal.SimSystem, m, n, k int, pk Partitioning, cAB, cC int, stat universal.Stationary) universal.SimResult {
	p := sys.Topo.NumPE()
	w := shmem.NewWorld(p)
	pa, pb, pc := pk.Parts()
	a := distmat.New(w, m, k, pa, cAB)
	b := distmat.New(w, k, n, pb, cAB)
	c := distmat.New(w, m, n, pc, cC)
	prob := universal.NewProblem(c, a, b)
	cfg := universal.DefaultConfig()
	cfg.Stationary = stat
	return universal.SimulateMultiply(prob, cfg, sys)
}

// RunUATimed executes one universal-algorithm configuration for real on
// the simnet-timed backend and reports the modeled wall-clock of the
// execution the runtime actually performed (dynamic prefetch, bounded
// chains, port contention), as opposed to RunUA's plan-replay estimate.
// Real arithmetic makes this far more expensive than RunUA, so the figure
// sweeps use it selectively for validation points.
func RunUATimed(sys universal.SimSystem, m, n, k int, pk Partitioning, cAB, cC int, stat universal.Stationary) universal.SimResult {
	cfg := universal.DefaultConfig()
	cfg.Stationary = stat
	return RunUATimedOn(simbackend.New(sys.Topo, sys.Dev), sys, m, n, k, pk, cAB, cC, cfg)
}

// RunUATimedOn is RunUATimed over any timed backend (simbackend or
// gpubackend) with a caller-supplied execution config, which is what lets
// the autotuner sweep PrefetchDepth/MaxInflight per backend. sys must be
// the system the backend was built over (it sizes the world and prices
// PercentOfPeak); the mismatch is caught when the backend's world exposes
// its device. The backend's worlds must implement runtime.TimedWorld; it
// panics otherwise. When the backend also implements the stream/event
// hooks (gpubackend), the result carries the run's queue-delay and
// interference seconds.
func RunUATimedOn(b rt.Backend, sys universal.SimSystem, m, n, k int, pk Partitioning, cAB, cC int, cfg universal.Config) universal.SimResult {
	p := sys.Topo.NumPE()
	world := b.NewWorld(p)
	w, ok := world.(rt.TimedWorld)
	if !ok {
		panic(fmt.Sprintf("bench: backend %q is not timed", b.Name()))
	}
	if dw, hasDev := world.(interface{ Device() gpusim.Device }); hasDev {
		if dev := dw.Device(); dev.PeakFlops != sys.Dev.PeakFlops {
			panic(fmt.Sprintf("bench: backend %q models %s but sys prices %s", b.Name(), dev.Name, sys.Dev.Name))
		}
	}
	pa, pb, pc := pk.Parts()
	a := distmat.New(w, m, k, pa, cAB)
	bm := distmat.New(w, k, n, pb, cAB)
	c := distmat.New(w, m, n, pc, cC)
	var resolved universal.Stationary
	w.Run(func(pe rt.PE) {
		a.FillRandom(pe, 1)
		bm.FillRandom(pe, 2)
		s, _ := universal.Multiply(pe, c, a, bm, cfg)
		if pe.Rank() == 0 {
			resolved = s
		}
	})
	stats := w.Stats()
	res := universal.SimResult{
		Makespan:         w.PredictedSeconds(),
		Stationary:       resolved,
		RemoteGetBytes:   int(stats.RemoteGetBytes),
		RemoteAccumBytes: int(stats.RemoteAccumBytes),
	}
	if ss, streamed := rt.StreamStatsOf(w); streamed {
		res.QueueDelaySeconds = ss.QueueDelaySeconds
		res.AccumInterferenceSeconds = ss.AccumInterferenceSeconds
	}
	if res.Makespan > 0 {
		flops := 2 * float64(m) * float64(n) * float64(k)
		res.PercentOfPeak = flops / (float64(p) * sys.Dev.PeakFlops * res.Makespan) * 100
	}
	return res
}

// BestUA sweeps replication factors and stationary strategies for one
// partitioning at one batch size and returns the best point, the paper's
// "for each partitioning strategy, we report the replication factor that
// achieved the highest performance" methodology.
func BestUA(sys universal.SimSystem, layer Layer, batch int, pk Partitioning, opt Options) Point {
	p := sys.Topo.NumPE()
	opt = opt.withDefaults(p)
	m, n, k := layer.Dims(batch)
	best := Point{Batch: batch, PercentOfPeak: -1}
	for _, cAB := range opt.Replications {
		for _, cC := range opt.Replications {
			for _, stat := range opt.Stationaries {
				res := RunUA(sys, m, n, k, pk, cAB, cC, stat)
				// §5.2.1: only partitionings that do not entirely eliminate
				// communication are considered (full input replication would
				// trivially win every sweep).
				if res.RemoteGetBytes+res.RemoteAccumBytes == 0 {
					continue
				}
				if res.PercentOfPeak > best.PercentOfPeak {
					best = Point{
						Batch: batch, PercentOfPeak: res.PercentOfPeak,
						ReplAB: cAB, ReplC: cC,
						Stationary: res.Stationary, Makespan: res.Makespan,
						RemoteMB: float64(res.RemoteGetBytes+res.RemoteAccumBytes) / 1e6,
					}
				}
			}
		}
	}
	return best
}

// UASeries produces one "UA - <partitioning>" line.
func UASeries(sys universal.SimSystem, layer Layer, pk Partitioning, opt Options) Series {
	opt = opt.withDefaults(sys.Topo.NumPE())
	s := Series{Name: "UA - " + pk.String()}
	for _, batch := range opt.Batches {
		s.Points = append(s.Points, BestUA(sys, layer, batch, pk, opt))
	}
	return s
}

// DTensorSeries produces the "DT - Row" and "DT - Column" lines. The paper
// reports DTensor without replication, its fastest configuration.
func DTensorSeries(sys universal.SimSystem, layer Layer, opt Options) []Series {
	opt = opt.withDefaults(sys.Topo.NumPE())
	row := Series{Name: "DT - Row"}
	col := Series{Name: "DT - Column"}
	for _, batch := range opt.Batches {
		m, n, k := layer.Dims(batch)
		r := dtensor.SimulateRowPartitioning(sys, m, n, k)
		c := dtensor.SimulateColPartitioning(sys, m, n, k)
		row.Points = append(row.Points, Point{Batch: batch, PercentOfPeak: r.PercentOfPeak, ReplAB: 1, ReplC: 1, Makespan: r.Seconds})
		col.Points = append(col.Points, Point{Batch: batch, PercentOfPeak: c.PercentOfPeak, ReplAB: 1, ReplC: 1, Makespan: c.Seconds})
	}
	return []Series{row, col}
}

// COSMASeries produces the "COSMA-NCCL" line of Figure 3.
func COSMASeries(sys universal.SimSystem, layer Layer, opt Options) Series {
	opt = opt.withDefaults(sys.Topo.NumPE())
	s := Series{Name: "COSMA-NCCL"}
	for _, batch := range opt.Batches {
		m, n, k := layer.Dims(batch)
		_, res := cosma.Simulate(sys, m, n, k)
		s.Points = append(s.Points, Point{Batch: batch, PercentOfPeak: res.PercentOfPeak, ReplAB: 1, ReplC: 1, Makespan: res.Makespan})
	}
	return s
}

// RunFigure regenerates one plot of Figure 2 (PVC) or Figure 3 (H100):
// the six UA partitionings, the two DTensor series, and COSMA on the H100
// system.
func RunFigure(sys universal.SimSystem, layer Layer, withCOSMA bool, opt Options) Figure {
	fig := Figure{
		Title:  fmt.Sprintf("%s, FP32 GEMM, %v H=12K", sys.Topo.Name(), layer),
		System: sys.Topo.Name(),
		Layer:  layer,
	}
	for _, pk := range UAPartitionings {
		fig.Series = append(fig.Series, UASeries(sys, layer, pk, opt))
	}
	fig.Series = append(fig.Series, DTensorSeries(sys, layer, opt)...)
	if withCOSMA {
		fig.Series = append(fig.Series, COSMASeries(sys, layer, opt))
	}
	return fig
}

// Best returns the series' highest point value (for shape assertions).
func (s Series) Best() float64 {
	best := math.Inf(-1)
	for _, pt := range s.Points {
		if pt.PercentOfPeak > best {
			best = pt.PercentOfPeak
		}
	}
	return best
}

// ByName finds a series in the figure; it panics if absent.
func (f Figure) ByName(name string) Series {
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	panic(fmt.Sprintf("bench: no series %q in %q", name, f.Title))
}
