package bench

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"slicing/internal/distmat"
	rt "slicing/internal/runtime"
	"slicing/internal/serve"
	"slicing/internal/shmem"
	"slicing/internal/universal"
)

// ServeOptions configures the serving-load measurement: many concurrent
// tenants issuing small same-shape GEMMs against one PE world — the
// steady-state regime the multiply-as-a-service layer exists for. The
// defaults are the committed BENCH_PR7 workload: 4 PEs, 16³ single-tile
// products, 128 closed-loop clients over 4 tenants, batches of 64.
type ServeOptions struct {
	// P is the PE count (default 4).
	P int
	// Dim is the square GEMM dimension m=n=k (default 16).
	Dim int
	// TileDim is the square tile dimension (default Dim: one tile per
	// matrix, the small-adapter serving shape).
	TileDim int
	// Workers is the number of concurrent closed-loop clients, each owning
	// its own result matrix (default 128).
	Workers int
	// Tenants is the number of tenant identities the workers cycle through
	// (default 4).
	Tenants int
	// PerWorker is the number of sequential requests each worker issues
	// (default 60).
	PerWorker int
	// Batch is the server's fused-batch size (default 64).
	Batch int
}

func (o ServeOptions) withDefaults() ServeOptions {
	if o.P <= 0 {
		o.P = 4
	}
	if o.Dim <= 0 {
		o.Dim = 16
	}
	if o.TileDim <= 0 {
		o.TileDim = o.Dim
	}
	if o.Workers <= 0 {
		o.Workers = 128
	}
	if o.Tenants <= 0 {
		o.Tenants = 4
	}
	if o.PerWorker <= 0 {
		o.PerWorker = 60
	}
	if o.Batch <= 0 {
		o.Batch = 64
	}
	return o
}

// ServeResult is one serving-load measurement.
type ServeResult struct {
	// Requests is the total number of multiplies measured.
	Requests int
	// RPS is completed requests per wall-clock second.
	RPS float64
	// P50Ms and P99Ms are request-latency percentiles in milliseconds
	// (enqueue to result for the served path; per-iteration wall time for
	// the naive loop).
	P50Ms, P99Ms float64
	// HitPct is the compiled-plan cache hit rate (0 for the naive loop).
	HitPct float64
	// AvgBatch is the realized fused-batch size (1 for the naive loop).
	AvgBatch float64
}

// serveFixture is the shared world and operand set both measurement modes
// run against.
type serveFixture struct {
	w  rt.World
	a  *distmat.Matrix
	b  *distmat.Matrix
	cs []*distmat.Matrix
}

func newServeFixture(o ServeOptions) *serveFixture {
	w := shmem.NewWorld(o.P)
	pr, pc := distmat.NearSquareFactors(o.P)
	part := distmat.Custom{TileRows: o.TileDim, TileCols: o.TileDim, ProcRows: pr, ProcCols: pc}
	f := &serveFixture{
		w: w,
		a: distmat.New(w, o.Dim, o.Dim, part, 1),
		b: distmat.New(w, o.Dim, o.Dim, part, 1),
	}
	f.cs = make([]*distmat.Matrix, o.Workers)
	for i := range f.cs {
		f.cs[i] = distmat.New(w, o.Dim, o.Dim, part, 1)
	}
	w.Run(func(pe rt.PE) {
		f.a.FillRandom(pe, 1)
		f.b.FillRandom(pe, 2)
	})
	return f
}

func percentiles(lat []time.Duration) (p50Ms, p99Ms float64) {
	if len(lat) == 0 {
		return 0, 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	at := func(q float64) float64 {
		return lat[int(q*float64(len(lat)-1))].Seconds() * 1e3
	}
	return at(0.50), at(0.99)
}

// RunServeLoad drives the multiply-as-a-service stack at the configured
// workload — concurrent tenants, compiled-plan cache, fused batching — and
// reports throughput and latency percentiles.
func RunServeLoad(o ServeOptions) ServeResult {
	o = o.withDefaults()
	f := newServeFixture(o)
	s := serve.NewServer(f.w, serve.Config{Batch: o.Batch, Queue: 2 * o.Workers * o.PerWorker})
	lats := make([][]time.Duration, o.Workers)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < o.Workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tn := fmt.Sprintf("tenant-%d", i%o.Tenants)
			lat := make([]time.Duration, 0, o.PerWorker)
			for j := 0; j < o.PerWorker; j++ {
				t0 := time.Now()
				if _, err := s.Multiply(context.Background(), tn, f.cs[i], f.a, f.b); err != nil {
					panic(fmt.Sprintf("bench: serve load request failed: %v", err))
				}
				lat = append(lat, time.Since(t0))
			}
			lats[i] = lat
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	st := s.Stats()
	s.Close()

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	res := ServeResult{
		Requests: len(all),
		RPS:      float64(len(all)) / elapsed,
		HitPct:   st.PlanCache.HitPct(),
	}
	res.P50Ms, res.P99Ms = percentiles(all)
	if st.Batches > 0 {
		res.AvgBatch = float64(st.BatchedRequests) / float64(st.Batches)
	}
	return res
}

// RunServeNaive measures the pre-serving baseline at the same workload: a
// sequential loop issuing one collective per request, each rebuilding its
// plans and fetch schedules from scratch with no cache, no batching, and
// per-request synchronization. This is what sharing the world across
// tenants looked like before the serving layer existed (concurrent callers
// must serialize their collectives).
func RunServeNaive(o ServeOptions) ServeResult {
	o = o.withDefaults()
	f := newServeFixture(o)
	prob := universal.NewProblem(f.cs[0], f.a, f.b)
	n := o.Workers * o.PerWorker
	lat := make([]time.Duration, 0, n)
	start := time.Now()
	for i := 0; i < n; i++ {
		t0 := time.Now()
		f.w.Run(func(pe rt.PE) {
			f.cs[0].Zero(pe)
			universal.MultiplyAccumulate(pe, prob, universal.Config{})
		})
		lat = append(lat, time.Since(t0))
	}
	elapsed := time.Since(start).Seconds()
	res := ServeResult{
		Requests: n,
		RPS:      float64(n) / elapsed,
		AvgBatch: 1,
	}
	res.P50Ms, res.P99Ms = percentiles(lat)
	return res
}
