package bench

import (
	"fmt"

	"slicing/internal/distmat"
	"slicing/internal/gpubackend"
	"slicing/internal/gpusim"
	"slicing/internal/shmem"
	"slicing/internal/simbackend"
	"slicing/internal/simnet"
	"slicing/internal/universal"
)

// ValidationPoint pairs the plan-replay estimate of one figure
// configuration with timed-execution measurements of the same
// configuration, run at a reduced scale (real arithmetic at full MLP
// dimensions is prohibitive on a development machine). The three numbers
// answer the question the figures beg: how far is the estimator from what
// the executor actually does?
//
// All three percentages are percent-of-peak at the validation scale, so
// they are directly comparable with each other; their spread is the error
// bar annotated onto the full-scale estimator curve.
type ValidationPoint struct {
	Series string // "UA - <partitioning>"
	Batch  int    // the figure point's batch (full scale)
	Scale  int    // dimensions were divided by this factor for validation
	// EstimatorPct is universal.SimulateMultiply's plan-replay estimate.
	EstimatorPct float64
	// SimbackendPct is the real execution timed by the single-clock
	// simnet backend; GpubackendPct by the stream/event backend.
	SimbackendPct float64
	GpubackendPct float64
}

// ErrBar returns the signed estimator error against the two timed
// backends, as percent-of-peak deltas (timed − estimator): lo is the most
// negative, hi the most positive. A tight [lo, hi] straddling zero means
// the estimator curve is trustworthy at that point.
func (v ValidationPoint) ErrBar() (lo, hi float64) {
	dSim := v.SimbackendPct - v.EstimatorPct
	dGpu := v.GpubackendPct - v.EstimatorPct
	if dSim < dGpu {
		return dSim, dGpu
	}
	return dGpu, dSim
}

func (v ValidationPoint) String() string {
	lo, hi := v.ErrBar()
	return fmt.Sprintf("%s @%d (1/%d scale): est %.1f%% [%+.1f, %+.1f] (sim %.1f%%, gpu %.1f%%)",
		v.Series, v.Batch, v.Scale, v.EstimatorPct, lo, hi, v.SimbackendPct, v.GpubackendPct)
}

// ValidatePoint runs one figure point's configuration — partitioning,
// replication factors, stationary strategy — through the estimator and
// both timed backends at dimensions divided by scale, and returns the
// three percent-of-peak numbers. The MLP dimensions are multiples of 16,
// so scale 16 keeps every dimension whole while shrinking the arithmetic
// by 4096×.
func ValidatePoint(sys universal.SimSystem, layer Layer, pk Partitioning, pt Point, scale int) ValidationPoint {
	if scale <= 0 {
		scale = 16
	}
	m, n, k := layer.Dims(pt.Batch)
	m, n, k = m/scale, n/scale, k/scale
	v := ValidationPoint{Series: "UA - " + pk.String(), Batch: pt.Batch, Scale: scale}
	stat := pt.Stationary

	v.EstimatorPct = RunUA(sys, m, n, k, pk, pt.ReplAB, pt.ReplC, stat).PercentOfPeak
	v.SimbackendPct = RunUATimed(sys, m, n, k, pk, pt.ReplAB, pt.ReplC, stat).PercentOfPeak
	cfg := universal.DefaultConfig()
	cfg.Stationary = stat
	v.GpubackendPct = RunUATimedOn(gpubackend.New(sys.Topo, sys.Dev), sys, m, n, k, pk, pt.ReplAB, pt.ReplC, cfg).PercentOfPeak
	return v
}

// ValidateFigure produces one validation point per UA series of a figure,
// at the largest batch each series was swept over.
func ValidateFigure(sys universal.SimSystem, fig Figure, scale int) []ValidationPoint {
	var out []ValidationPoint
	for _, pk := range UAPartitionings {
		s := fig.ByName("UA - " + pk.String())
		if len(s.Points) == 0 {
			continue
		}
		out = append(out, ValidatePoint(sys, fig.Layer, pk, s.Points[len(s.Points)-1], scale))
	}
	return out
}

// EstimatorIncast prices the reduce-replicas incast storm through the
// plan-replay estimator twice: over the single-NIC fat-tree fabric, where
// every flow into node 0 squeezes through one NIC downlink, and over the
// scalar cluster topology, where the same flows have distinct endpoint
// pairs and the port model runs them (mostly) in parallel. C is
// replicated once per node, so reduce_replicas concentrates every
// non-origin rank's C share onto node 0's GPUs — the estimator-level
// analogue of IncastStorm, and the anchor for
// `sim.fabric_incast_estimator_x` in cmd/bench_baseline.
//
// The returned ratio (fabric/scalar) is the incast slowdown only the
// fabric-aware estimator can see; the scalar estimator provably prices the
// storm near-parallel. Both estimates use identical per-transfer costs (the
// fat-tree's uncontended route numbers match the scalar cluster's), so the
// ratio isolates contention structure.
func EstimatorIncast(nodes int) (fabricSec, scalarSec float64) {
	const m, n, k = 4096, 4096, 64 // tiny K: the reduce storm dominates
	cfg := universal.DefaultConfig()
	cfg.Stationary = universal.StationaryC
	mk := func(p int) universal.Problem {
		w := shmem.NewWorld(p)
		a := distmat.New(w, m, k, distmat.Block2D{}, 1)
		b := distmat.New(w, k, n, distmat.Block2D{}, 1)
		c := distmat.New(w, m, n, distmat.Block2D{}, nodes)
		return universal.NewProblem(c, a, b)
	}
	p := nodes * 8
	fab := universal.H100FatTreeSystem(nodes, 1, 1)
	fabricSec = universal.SimulateMultiply(mk(p), cfg, fab).Makespan
	scalar := universal.SimSystem{Topo: simnet.PresetH100Cluster(nodes), Dev: fab.Dev}
	scalarSec = universal.SimulateMultiply(mk(p), cfg, scalar).Makespan
	return fabricSec, scalarSec
}

// FatTree64SchedulerDAG builds the PR 5 scheduler-throughput DAG: a 64-PE
// rail-optimized fat-tree estimate with fine tiles and per-node C
// replication, so the engine schedules ~10^5 ops over per-link fabric
// resources and the reduce_replicas storm floods the ready set with
// thousands of simultaneously-eligible cross-node round trips — the
// cluster-sweep shape whose O(ready) rescans made the seed list scheduler
// quadratic. The single definition is shared by BenchmarkSimulateFatTree64
// (+ its list-oracle baseline) and cmd/bench_baseline's sim.ops_per_sec
// anchor, so the CI benchmark and the committed baseline always measure
// the same DAG.
func FatTree64SchedulerDAG() (*gpusim.Engine, universal.SimResult) {
	sys := universal.H100FatTreeSystem(8, 8, 2)
	w := shmem.NewWorld(64)
	part := distmat.Custom{TileRows: 64, TileCols: 64, ProcRows: 8, ProcCols: 8}
	a := distmat.New(w, 2048, 2048, part, 1)
	b := distmat.New(w, 2048, 2048, part, 1)
	// One C replica per node: 8 replicas over 8-slot grids.
	cpart := distmat.Custom{TileRows: 64, TileCols: 64, ProcRows: 4, ProcCols: 2}
	c := distmat.New(w, 2048, 2048, cpart, 8)
	cfg := universal.DefaultConfig()
	cfg.Stationary = universal.StationaryC
	res, eng, _ := universal.SimulateMultiplyTrace(universal.NewProblem(c, a, b), cfg, sys)
	return eng, res
}

// TimedIncastReduce executes the same reduce-storm configuration for real
// on the simnet-timed backend over a topology, so tests can check that the
// fabric-aware estimator lands in the timed backend's regime exactly where
// the scalar estimator diverges. Real arithmetic: call with the smallest
// cluster that exhibits the storm.
func TimedIncastReduce(sys universal.SimSystem, nodes int) universal.SimResult {
	const m, n, k = 4096, 4096, 64
	cfg := universal.DefaultConfig()
	cfg.Stationary = universal.StationaryC
	return RunUATimedOn(simbackend.New(sys.Topo, sys.Dev), sys, m, n, k, PartBlock, 1, nodes, cfg)
}
