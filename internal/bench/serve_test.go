package bench

import "testing"

// smokeServeOpts is a scaled-down workload so the smoke test and the
// -benchtime=1x CI benchmarks finish in well under a second.
var smokeServeOpts = ServeOptions{Workers: 32, PerWorker: 10, Batch: 16}

// The serving harness must show the structural signature the baseline
// records: near-perfect plan-cache hit rate, realized batching, and higher
// throughput than the naive per-request rebuild loop. The committed ≥5×
// claim lives in BENCH_PR7.json (full workload, quiet machine); the smoke
// asserts a conservative floor so CI stays green on noisy runners.
func TestServeLoadBeatsNaive(t *testing.T) {
	if testing.Short() {
		t.Skip("serving load measurement is timing-based")
	}
	served := RunServeLoad(smokeServeOpts)
	naive := RunServeNaive(smokeServeOpts)
	if served.Requests != 320 || naive.Requests != 320 {
		t.Fatalf("request counts: served %d naive %d, want 320", served.Requests, naive.Requests)
	}
	if served.RPS <= 0 || naive.RPS <= 0 {
		t.Fatalf("non-positive throughput: served %v naive %v", served.RPS, naive.RPS)
	}
	// One distinct shape → one compilation; everything else must hit.
	if served.HitPct < 90 {
		t.Errorf("plan-cache hit rate %.1f%%, want >90%%", served.HitPct)
	}
	if served.AvgBatch < 2 {
		t.Errorf("realized batch %.1f, batching not engaging", served.AvgBatch)
	}
	if served.P99Ms < served.P50Ms {
		t.Errorf("p99 %.3fms below p50 %.3fms", served.P99Ms, served.P50Ms)
	}
	if served.RPS < 1.3*naive.RPS {
		t.Errorf("served %.0f rps vs naive %.0f rps: speedup %.2fx below 1.3x floor",
			served.RPS, naive.RPS, served.RPS/naive.RPS)
	}
}

func BenchmarkServeLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := RunServeLoad(smokeServeOpts)
		b.ReportMetric(res.RPS, "rps")
		b.ReportMetric(res.P99Ms, "p99ms")
	}
}

func BenchmarkServeNaiveLoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := RunServeNaive(smokeServeOpts)
		b.ReportMetric(res.RPS, "rps")
	}
}
