package bench

import (
	"testing"

	"slicing/internal/universal"
)

// quickOpt keeps sweep time reasonable in unit tests.
func quickOpt() Options {
	return Options{
		Replications: []int{1, 2, 4},
		Batches:      []int{1024, 8192},
	}
}

func TestLayerDims(t *testing.T) {
	m, n, k := MLP1.Dims(2048)
	if m != 2048 || n != 49152 || k != 12288 {
		t.Fatalf("MLP1 dims = %d,%d,%d", m, n, k)
	}
	m, n, k = MLP2.Dims(2048)
	if m != 2048 || n != 12288 || k != 49152 {
		t.Fatalf("MLP2 dims = %d,%d,%d", m, n, k)
	}
}

func TestReplLabel(t *testing.T) {
	if got := (Point{ReplAB: 2, ReplC: 2}).ReplLabel(); got != "2" {
		t.Fatalf("equal factors label = %q", got)
	}
	if got := (Point{ReplAB: 2, ReplC: 6}).ReplLabel(); got != "2-6" {
		t.Fatalf("mixed factors label = %q", got)
	}
}

func TestRunUASane(t *testing.T) {
	res := RunUA(universal.H100System(), 1024, 49152, 12288, PartColumn, 1, 1, universal.StationaryC)
	if res.PercentOfPeak <= 0 || res.PercentOfPeak > 100 {
		t.Fatalf("percent = %g", res.PercentOfPeak)
	}
}

func TestBestUAExcludesZeroComm(t *testing.T) {
	// Even allowing full replication in the sweep, the winner must move
	// bytes (§5.2.1 exclusion).
	opt := Options{Replications: []int{1, 8}, Batches: []int{1024}}
	pt := BestUA(universal.H100System(), MLP1, 1024, PartRow, opt)
	res := RunUA(universal.H100System(), 1024, 49152, 12288, PartRow, pt.ReplAB, pt.ReplC, pt.Stationary)
	if res.RemoteGetBytes+res.RemoteAccumBytes == 0 {
		t.Fatal("winning configuration eliminated communication entirely")
	}
}

// E4 (Figure 2 left) shape assertions on the PVC system, MLP-1.
func TestFigure2MLP1Shape(t *testing.T) {
	fig := RunFigure(universal.PVCSystem(), MLP1, false, quickOpt())
	col := fig.ByName("UA - Column")
	row := fig.ByName("UA - Row")
	dtRow := fig.ByName("DT - Row")

	// Column (moves only the small A) beats Row (moves the giant B) at
	// every batch size.
	for i := range col.Points {
		if col.Points[i].PercentOfPeak <= row.Points[i].PercentOfPeak {
			t.Errorf("batch %d: Column (%.1f%%) should beat Row (%.1f%%)",
				col.Points[i].Batch, col.Points[i].PercentOfPeak, row.Points[i].PercentOfPeak)
		}
	}
	// The best UA series matches or exceeds DT-Row everywhere.
	bestUA := 0.0
	for _, s := range fig.Series {
		if len(s.Name) > 2 && s.Name[:2] == "UA" && s.Best() > bestUA {
			bestUA = s.Best()
		}
	}
	if bestUA < dtRow.Best() {
		t.Errorf("best UA (%.1f%%) below DT-Row (%.1f%%)", bestUA, dtRow.Best())
	}
	// DT-Column is the strong DTensor config; UA-Column must be within the
	// paper's "competitive" margin at the largest batch.
	dtCol := fig.ByName("DT - Column")
	lastUA := col.Points[len(col.Points)-1].PercentOfPeak
	lastDT := dtCol.Points[len(dtCol.Points)-1].PercentOfPeak
	if lastUA < lastDT*0.90 {
		t.Errorf("UA-Column (%.1f%%) not competitive with DT-Column (%.1f%%)", lastUA, lastDT)
	}
}

// E5 (Figure 2 right) shape assertions: MLP-2 favours outer-product style
// and higher replication factors than MLP-1.
func TestFigure2MLP2Shape(t *testing.T) {
	opt := quickOpt()
	fig := RunFigure(universal.PVCSystem(), MLP2, false, opt)
	outer := fig.ByName("UA - Outer Prod.")
	row := fig.ByName("UA - Row")
	last := len(outer.Points) - 1
	if outer.Points[last].PercentOfPeak < row.Points[last].PercentOfPeak {
		t.Errorf("MLP-2: Outer Prod (%.1f%%) should be at least Row (%.1f%%) at large batch",
			outer.Points[last].PercentOfPeak, row.Points[last].PercentOfPeak)
	}
	// Replication should help somewhere on MLP-2 (the paper sees factors
	// above 1 across the board).
	sawRepl := false
	for _, s := range fig.Series {
		for _, pt := range s.Points {
			if pt.ReplAB > 1 || pt.ReplC > 1 {
				sawRepl = true
			}
		}
	}
	if !sawRepl {
		t.Error("no MLP-2 configuration benefited from replication")
	}
}

// E6 (Figure 3 left): on H100 the spread between partitionings compresses
// relative to PVC, and COSMA trails the best UA on MLP-1.
func TestFigure3MLP1Shape(t *testing.T) {
	opt := quickOpt()
	pvc := RunFigure(universal.PVCSystem(), MLP1, false, opt)
	h100 := RunFigure(universal.H100System(), MLP1, true, opt)

	spread := func(fig Figure, batchIdx int) float64 {
		lo, hi := 101.0, -1.0
		for _, s := range fig.Series {
			if len(s.Name) < 2 || s.Name[:2] != "UA" {
				continue
			}
			v := s.Points[batchIdx].PercentOfPeak
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return hi - lo
	}
	if spread(h100, 0) > spread(pvc, 0) {
		t.Errorf("H100 spread (%.1f) should be narrower than PVC (%.1f) at the smallest batch",
			spread(h100, 0), spread(pvc, 0))
	}

	cosmaS := h100.ByName("COSMA-NCCL")
	bestUA := 0.0
	for _, s := range h100.Series {
		if len(s.Name) > 2 && s.Name[:2] == "UA" && s.Best() > bestUA {
			bestUA = s.Best()
		}
	}
	if cosmaS.Best() >= bestUA {
		t.Errorf("COSMA (%.1f%%) should trail best UA (%.1f%%) on MLP-1", cosmaS.Best(), bestUA)
	}
}

// E7 (Figure 3 right): UA's best matches or exceeds DTensor on H100 MLP-2.
func TestFigure3MLP2Shape(t *testing.T) {
	fig := RunFigure(universal.H100System(), MLP2, true, quickOpt())
	bestUA, bestDT := 0.0, 0.0
	for _, s := range fig.Series {
		switch {
		case len(s.Name) > 2 && s.Name[:2] == "UA":
			if s.Best() > bestUA {
				bestUA = s.Best()
			}
		case len(s.Name) > 2 && s.Name[:2] == "DT":
			if s.Best() > bestDT {
				bestDT = s.Best()
			}
		}
	}
	if bestUA < bestDT*0.95 {
		t.Errorf("best UA (%.1f%%) not within 5%% of best DT (%.1f%%)", bestUA, bestDT)
	}
}

func TestFigureByNamePanics(t *testing.T) {
	fig := Figure{Title: "t"}
	defer func() {
		if recover() == nil {
			t.Fatal("missing series should panic")
		}
	}()
	fig.ByName("nope")
}

func TestPercentOfPeakIncreasesWithBatch(t *testing.T) {
	// Bigger batches amortize overheads: the Column series should be
	// non-decreasing in batch size.
	s := UASeries(universal.H100System(), MLP1, PartColumn, Options{
		Replications: []int{1}, Batches: []int{1024, 2048, 4096, 8192}})
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].PercentOfPeak+0.5 < s.Points[i-1].PercentOfPeak {
			t.Fatalf("percent of peak dropped with batch: %+v", s.Points)
		}
	}
}

func TestStrongScaling(t *testing.T) {
	pts := StrongScaling(MLP1, 8192, []int{1, 2, 4})
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].Speedup != 1.0 {
		t.Fatalf("base speedup = %g", pts[0].Speedup)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Makespan >= pts[i-1].Makespan {
			t.Errorf("no strong-scaling benefit from %d to %d nodes: %.4g vs %.4g",
				pts[i-1].Nodes, pts[i].Nodes, pts[i-1].Makespan, pts[i].Makespan)
		}
		if pts[i].Efficiency > 1.01 {
			t.Errorf("superlinear efficiency %.2f at %d nodes (model bug?)", pts[i].Efficiency, pts[i].Nodes)
		}
		if pts[i].Efficiency <= 0 {
			t.Errorf("non-positive efficiency at %d nodes", pts[i].Nodes)
		}
	}
	// Crossing node boundaries costs efficiency: 4 nodes must be below
	// perfect scaling.
	if pts[2].Efficiency >= 0.999 {
		t.Errorf("4-node efficiency %.3f suspiciously perfect despite slow inter-node links", pts[2].Efficiency)
	}
}

func TestRunUATimedAgreesWithEstimate(t *testing.T) {
	// A small problem where real timed execution is cheap: the timed
	// backend's observed makespan and the plan-replay estimator must land
	// within an order of magnitude (they price the same plans over the same
	// topology/device, but the estimator idealizes scheduling).
	sys := universal.H100System()
	timed := RunUATimed(sys, 128, 96, 64, PartBlock, 1, 1, universal.StationaryC)
	est := RunUA(sys, 128, 96, 64, PartBlock, 1, 1, universal.StationaryC)
	if timed.Makespan <= 0 || est.Makespan <= 0 {
		t.Fatalf("non-positive makespans: timed %g, estimate %g", timed.Makespan, est.Makespan)
	}
	ratio := timed.Makespan / est.Makespan
	if ratio < 0.1 || ratio > 10 {
		t.Fatalf("timed %g vs estimated %g makespan (ratio %.2f)", timed.Makespan, est.Makespan, ratio)
	}
	if timed.RemoteGetBytes == 0 {
		t.Fatal("timed run recorded no remote traffic")
	}
}
